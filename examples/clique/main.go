// NP-hardness demo: the CLIQUE reduction of Theorem 3.
//
// The source publishes an inequality relation D over k anchors, the
// equality relation S over graph vertices, and the edge relation E. The
// single source-to-target tgd forces a 4-ary P-fact per anchor pair;
// the target-to-source tgds force the invented values to trace out a
// k-clique of the graph. Deciding whether a solution exists therefore
// decides k-CLIQUE — which is why SOL(P) is NP-complete in general, and
// why this setting sits just outside the tractable class C_tract.
//
// Run with: go run ./examples/clique
package main

import (
	"fmt"
	"log"

	"repro/pde"
)

const settingSrc = `
setting clique
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
ts: P(x,z,y,w), P(y,z2,y2,w2) -> S(w,z2)
`

func main() {
	setting, err := pde.ParseSetting(settingSrc)
	if err != nil {
		log.Fatal(err)
	}
	rep := pde.Classify(setting)
	fmt.Println("classification:", rep.Summary())
	fmt.Println()

	// Two graphs on five vertices: C5 (no triangle) and C5 plus the
	// chord/extra edges closing the triangle 0-1-2.
	cycle := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	withTriangle := append(append([][2]int{}, cycle...), [2]int{0, 2})

	for _, tc := range []struct {
		name  string
		edges [][2]int
		k     int
	}{
		{"C5, k=3 (no triangle)", cycle, 3},
		{"C5 + chord {0,2}, k=3 (triangle 0-1-2)", withTriangle, 3},
	} {
		source := buildInstance(tc.edges, 5, tc.k)
		res, err := pde.FindSolution(setting, source, pde.NewInstance())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: solution exists = %v (strategy: %s)\n", tc.name, res.Exists, res.Strategy)
		if res.Exists {
			fmt.Println("  the witness solution maps the anchors onto a clique:")
			for _, line := range lines(pde.FormatInstance(res.Solution)) {
				fmt.Println("   ", line)
			}
		}
	}
}

// buildInstance constructs I(G, k) per the Theorem 3 reduction: D is
// the inequality relation on k anchors, S the equality relation on the
// vertices, E the symmetric edge relation.
func buildInstance(edges [][2]int, n, k int) *pde.Instance {
	i := pde.NewInstance()
	for a := 1; a <= k; a++ {
		for b := 1; b <= k; b++ {
			if a != b {
				i.Add("D", anchor(a), anchor(b))
			}
		}
	}
	for v := 0; v < n; v++ {
		i.Add("S", vertex(v), vertex(v))
	}
	for _, e := range edges {
		i.Add("E", vertex(e[0]), vertex(e[1]))
		i.Add("E", vertex(e[1]), vertex(e[0]))
	}
	return i
}

func anchor(a int) pde.Value { return pde.Const(fmt.Sprintf("a%d", a)) }
func vertex(v int) pde.Value { return pde.Const(fmt.Sprintf("v%d", v)) }

func lines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
