// Data exchange as a special case: Σts = ∅. This example walks the
// substrate the peer data exchange paper builds on (Fagin et al.):
// the canonical universal solution computed by the chase, its core
// (the smallest universal solution), and polynomial-time certain
// answers by naive evaluation — then contrasts the same source under a
// PDE setting with a target-to-source constraint, where solutions can
// disappear entirely.
//
// Run with: go run ./examples/dataexchange
package main

import (
	"fmt"
	"log"

	"repro/pde"
)

func main() {
	// A data-exchange setting: employees flow to a target schema that
	// wants each employee in some team (invented by the chase) and a
	// self-managed marker per manager.
	setting, err := pde.ParseSetting(`
setting staffing
source Emp/2
target Assigned/2, Manages/2
st: Emp(name, mgr) -> exists team: Assigned(name, team)
st: Emp(name, mgr) -> Manages(mgr, name)
t:  Manages(m, n)  -> exists t2: Assigned(m, t2)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, err := pde.ParseInstance(`
Emp(ada, grace)
Emp(linus, grace)
Emp(grace, barbara)
`)
	if err != nil {
		log.Fatal(err)
	}
	target := pde.NewInstance()

	universal, exists, err := pde.UniversalSolution(setting, source, target)
	if err != nil {
		log.Fatal(err)
	}
	if !exists {
		log.Fatal("chase failed; no solution")
	}
	fmt.Printf("canonical universal solution (%d facts; _N values are labeled nulls):\n%s\n\n",
		universal.NumFacts(), pde.FormatInstance(universal))

	core := pde.Core(universal)
	fmt.Printf("its core (%d facts — the smallest universal solution):\n%s\n\n",
		core.NumFacts(), pde.FormatInstance(core))

	// Certain answers in polynomial time: evaluate on the universal
	// solution and keep the null-free tuples.
	queries, err := pde.ParseQueries(`
managed(n)     :- Manages(m, n)
teamOf(n, t)   :- Assigned(n, t)
`)
	if err != nil {
		log.Fatal(err)
	}
	managed, err := pde.CertainAnswersDataExchange(setting, source, target, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certainly managed people: %v\n", managed.Answers)
	teams, err := pde.CertainAnswersDataExchange(setting, source, target, queries[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain (name, team) pairs: %v  <- teams are invented nulls, never certain\n\n", teams.Answers)

	// Contrast: add a target-to-source constraint (now a true PDE
	// setting): the target only accepts Manages facts for registered
	// managers. grace is registered, barbara is not -> no solution.
	pdeSetting, err := pde.ParseSetting(`
setting staffing-pde
source Emp/2, Registered/1
target Assigned/2, Manages/2
st: Emp(name, mgr) -> exists team: Assigned(name, team)
st: Emp(name, mgr) -> Manages(mgr, name)
ts: Manages(m, n)  -> Registered(m)
`)
	if err != nil {
		log.Fatal(err)
	}
	pdeSource := source.Clone()
	pdeSource.Add("Registered", pde.Const("grace"))
	res, err := pde.ExistsSolution(pdeSetting, pdeSource, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same data under the PDE setting (barbara unregistered): solution exists = %v\n", res.Exists)

	pdeSource.Add("Registered", pde.Const("barbara"))
	res, err = pde.ExistsSolution(pdeSetting, pdeSource, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after registering barbara:                              solution exists = %v\n", res.Exists)
}
