// Repair semantics: what to answer when no solution exists. The
// paper's conclusion points to repair-based semantics (Bertossi &
// Bravo) as the natural fallback; here the university database from
// the genomic scenario has accumulated local annotations that
// Swiss-Prot no longer vouches for, so the exchange has no solution —
// and the library computes the maximal repairable subsets of the
// university's data and the answers certain across all of them.
//
// Run with: go run ./examples/repairsemantics
package main

import (
	"fmt"
	"log"

	"repro/pde"
)

func main() {
	setting, err := pde.ParseSetting(`
setting genomic
source Protein/3
target GeneProduct/2
st: Protein(acc, name, org) -> GeneProduct(acc, name)
ts: GeneProduct(acc, name)  -> exists org: Protein(acc, name, org)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, err := pde.ParseInstance(`
Protein(P68871, 'hemoglobin beta', human)
Protein(P01308, insulin, human)
`)
	if err != nil {
		log.Fatal(err)
	}
	// Two stale local annotations: one renamed upstream, one withdrawn.
	target, err := pde.ParseInstance(`
GeneProduct(P01308, insulin)
GeneProduct(P99999, 'withdrawn entry')
GeneProduct(P68871, 'hemoglobin (old name)')
`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := pde.ExistsSolution(setting, source, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain PDE semantics: solution exists = %v\n\n", res.Exists)

	repairs, err := pde.Repairs(setting, source, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairs (maximal acceptable subsets of the university's data): %d\n", len(repairs.Repairs))
	for idx, r := range repairs.Repairs {
		fmt.Printf("repair %d (dropped %d fact(s)):\n%s\n", idx+1, r.Removed, pde.FormatInstance(r.Target))
	}
	fmt.Println()

	queries, err := pde.ParseQueries(`
keepsInsulin :- GeneProduct('P01308', insulin)
products(acc) :- GeneProduct(acc, n)
`)
	if err != nil {
		log.Fatal(err)
	}
	insulin, err := pde.CertainUnderRepairs(setting, source, target, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("insulin annotation certain under repairs: %v\n", insulin.Certain)
	products, err := pde.CertainUnderRepairs(setting, source, target, queries[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accessions certain under repairs: %v\n", products.Answers)
}
