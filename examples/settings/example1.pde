# Example 1 of the paper: flight routes. The source peer publishes
# direct edges E; the target peer accepts two-hop routes H and is
# willing to return any H-fact as a direct edge. This setting is in
# C_tract and `pdx vet` reports it clean.
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
