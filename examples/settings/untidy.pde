# A deliberately untidy (but legal) setting exercising the info-level
# checks: relation U is declared but never used, ts1 can never fire
# because no s-t tgd populates Z, ts3 is implied by ts2, and the st
# tgd's head variable w is implicitly existential. ts3 also violates
# C_tract condition 1: its marked variable y repeats in the body.
setting untidy
source E/2, U/1
target H/2, Z/2
st: E(x,y) -> H(x,w)
ts: Z(x,y) -> E(x,y)
ts: H(x,y) -> E(x,y)
ts: H(x,y), H(y,z) -> exists v: E(x,v)
