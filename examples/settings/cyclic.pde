# A target tgd whose dependency graph has the special self-loop
# H.1 →̂ H.1: not weakly acyclic (Definition 5), so the chase is not
# guaranteed to terminate. `pdx vet` renders the cycle witness. The
# target constraint also puts the setting outside C_tract.
setting cyclic
source E/2
target H/2
st: E(x,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
t: H(x,y) -> exists z: H(y,z)
