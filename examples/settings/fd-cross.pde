# A cross-relation equality constraint: T's second column must agree
# with U's second column whenever their first columns match. Unlike a
# key (a functional dependency within a single relation), this egd is
# not key-shaped, so chase results are non-resumable — every append to
# a served setting falls back to a full re-chase — and `pdx vet` warns
# about the lost incremental path (compare the keyed example, whose
# key-shaped egd resumes).
setting fd-cross
source A/2
target T/2, U/2
st: A(x,y) -> T(x,y)
ts: T(x,y) -> A(x,y)
t: T(x,y), U(x,z) -> y = z
