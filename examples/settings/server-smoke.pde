# Serving smoke setting: Example 1 of the paper, used by the pdxd e2e
# test (cmd/pdx/serve_test.go), the CI serve-smoke script, and the
# README curl walkthrough, together with the instances under
# examples/corpus/. In C_tract, so the daemon solves it with the
# polynomial Figure 3 algorithm.
setting server_smoke
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
