# The CLIQUE reduction of Theorem 3: a setting just outside C_tract.
# The existential variables z, w of the s-t tgd mark positions P.1 and
# P.3; the marked variables of the t-s tgds then co-occur in head
# conjuncts without co-occurring in a body conjunct, violating
# condition 2.2. `pdx vet` points at each offending head atom.
setting clique
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
ts: P(x,z,y,w), P(y,z2,y2,w2) -> S(w,z2)
