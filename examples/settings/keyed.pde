# A target schema with a key constraint: H's first column determines
# its second. Legal and solvable. The egd still costs membership in
# C_tract (target constraints must be empty, Definition 9), so `pdx
# vet` warns that the solver uses the complete backtracking search —
# but because the constraint is key-shaped, chase results remain
# resumable: the union-find egd engine retains the merge classes, so
# appends to a served setting continue incrementally instead of
# re-chasing (see the fd-cross example for an egd shape that does not).
setting keyed
source E/2
target H/2
st: E(x,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
t: H(x,y), H(x,z) -> y = z
