# A target schema with a key constraint: H's first column determines
# its second. Legal and solvable, but the egd costs two guarantees and
# `pdx vet` warns about both: the setting leaves C_tract (target
# constraints must be empty, Definition 9), and chase results stop
# being resumable — every append to a served setting falls back to a
# full re-chase because the egd may merge values (chase.Resume requires
# pure tgds).
setting keyed
source E/2
target H/2
st: E(x,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
t: H(x,y), H(x,z) -> y = z
