// Multi-PDE: several authoritative source peers feeding one target
// peer, as in Section 2 of the paper. Two registries (a European and an
// American one) both publish protein data into one university database;
// the university restricts each exchange with its own target-to-source
// constraints. The paper shows such a multi-PDE setting is equivalent
// to a single PDE whose source schema is the union of the peers' —
// which is exactly how this example solves it.
//
// Run with: go run ./examples/multipeer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/pde"
)

func main() {
	// Peer 1: the European registry.
	peer1, err := pde.ParseSetting(`
setting euro-registry
source EuroProtein/2
target Catalog/2
st: EuroProtein(acc, name) -> Catalog(acc, name)
ts: Catalog(acc, name) -> EuroProtein(acc, name)
`)
	if err != nil {
		log.Fatal(err)
	}
	// Peer 2: the American registry (separate schema, same target).
	peer2, err := pde.ParseSetting(`
setting us-registry
source UsProtein/2
target Catalog/2
st: UsProtein(acc, name) -> Catalog(acc, name)
ts: Catalog(acc, name) -> UsProtein(acc, name)
`)
	if err != nil {
		log.Fatal(err)
	}
	// Share one target schema object so the multi-setting validates.
	peer2.Target = peer1.Target

	multi := &core.MultiSetting{Name: "registries", Peers: []*core.Setting{peer1, peer2}}
	combined, err := multi.Combine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("combined setting:")
	fmt.Print(pde.FormatSetting(combined))
	fmt.Println()

	euro, err := pde.ParseInstance(`
EuroProtein(P68871, 'hemoglobin beta')
EuroProtein(P01308, insulin)
`)
	if err != nil {
		log.Fatal(err)
	}
	us, err := pde.ParseInstance(`
UsProtein(P68871, 'hemoglobin beta')
UsProtein(Q9H0H5, racgap1)
`)
	if err != nil {
		log.Fatal(err)
	}
	sources := []*pde.Instance{euro, us}
	union, err := multi.CombineSources(sources)
	if err != nil {
		log.Fatal(err)
	}
	target := pde.NewInstance()

	// Note the tension: each peer's ts constraint says every Catalog
	// entry must come from THAT peer, so only entries known to both
	// registries can be exchanged... and P01308 is known only to the
	// European registry, which its st constraint nevertheless forces
	// into the catalog. No solution can satisfy both peers.
	res, err := pde.ExistsSolution(combined, union, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange with strict mirror constraints: solution exists = %v\n", res.Exists)

	// Relax the target-to-source constraints: the university accepts an
	// entry if EITHER registry vouches for it. In PDE terms each peer's
	// ts-tgd gains the other registry's relation as an alternative —
	// expressible with a disjunctive ts dependency on the combined
	// setting.
	relaxed, err := pde.ParseSetting(`
setting registries-relaxed
source EuroProtein/2, UsProtein/2
target Catalog/2
st: EuroProtein(acc, name) -> Catalog(acc, name)
st: UsProtein(acc, name) -> Catalog(acc, name)
tsd: Catalog(acc, name) -> EuroProtein(acc, name) | UsProtein(acc, name)
`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := pde.FindSolution(relaxed, union, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange with either-registry vouching: solution exists = %v\n", res2.Exists)
	if res2.Exists {
		fmt.Println("the shared catalog:")
		fmt.Println(pde.FormatInstance(res2.Solution))
		ok, err := multi.IsSolution(sources, target, res2.Solution)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("also a solution of the strict multi-PDE setting: %v\n", ok)
	}
}
