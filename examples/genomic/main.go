// Genomic data exchange: the motivating scenario of the paper's
// introduction. Swiss-Prot (the authoritative source peer) feeds a
// university database (the target peer). The university is willing to
// receive new gene products and citations, but only those Swiss-Prot
// vouches for — it cannot change Swiss-Prot's data, and its local
// annotations must survive the exchange.
//
// Run with: go run ./examples/genomic
package main

import (
	"fmt"
	"log"

	"repro/pde"
)

const settingSrc = `
setting genomic
source Protein/3, Cites/2
target GeneProduct/2, PaperRef/2

# Swiss-Prot offers each protein as a gene product, and each citation
# as a paper reference.
st: Protein(acc, name, org) -> GeneProduct(acc, name)
st: Cites(acc, pmid)        -> PaperRef(acc, pmid)

# The university only accepts data that Swiss-Prot vouches for.
ts: GeneProduct(acc, name) -> exists org: Protein(acc, name, org)
ts: PaperRef(acc, pmid)    -> Cites(acc, pmid)
`

const swissProt = `
Protein(P68871, 'hemoglobin beta',  human)
Protein(P69905, 'hemoglobin alpha', human)
Protein(P01308, insulin,            human)
Cites(P68871, 4171645)
Cites(P69905, 4171645)
Cites(P01308, 13872667)
`

// The university's pre-existing annotations: one vouched-for entry and,
// in the second scenario, one home-grown entry Swiss-Prot knows nothing
// about.
const universityClean = `
GeneProduct(P01308, insulin)
`

const universityDirty = `
GeneProduct(P01308, insulin)
GeneProduct(LOCAL0001, 'mystery protein')
`

func main() {
	setting, err := pde.ParseSetting(settingSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("classification:", pde.Classify(setting).Summary())
	source, err := pde.ParseInstance(swissProt)
	if err != nil {
		log.Fatal(err)
	}

	for _, scenario := range []struct{ name, target string }{
		{"clean university instance", universityClean},
		{"with an unvouched local annotation", universityDirty},
	} {
		fmt.Printf("\n--- %s ---\n", scenario.name)
		target, err := pde.ParseInstance(scenario.target)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pde.FindSolution(setting, source, target)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Exists {
			fmt.Println("no solution: the university's data violates the exchange constraints")
			for _, reason := range pde.ExplainNonSolution(setting, source, target, target) {
				fmt.Println("  -", reason)
			}
			continue
		}
		fmt.Printf("exchange succeeds (%s algorithm); the augmented university database:\n", res.Strategy)
		fmt.Println(indent(pde.FormatInstance(res.Solution)))

		// What does the university certainly know after the exchange?
		queries, err := pde.ParseQueries(`
refs(acc, pmid) :- PaperRef(acc, pmid)
hasInsulin :- GeneProduct(acc, insulin)
`)
		if err != nil {
			log.Fatal(err)
		}
		refs, err := pde.CertainAnswers(setting, source, target, queries[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("certain paper references: %d\n", len(refs.Answers))
		boolRes, err := pde.CertainBool(setting, source, target, queries[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("certainly stores an insulin gene product: %v\n", boolRes.Certain)
	}
}

func indent(s string) string {
	out := "  "
	for i := 0; i < len(s); i++ {
		out += string(s[i])
		if s[i] == '\n' {
			out += "  "
		}
	}
	return out
}
