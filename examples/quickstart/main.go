// Quickstart: Example 1 of the peer data exchange paper, end to end.
//
// The source peer publishes a binary relation E; the target peer stores
// H. The source offers every E-path of length two as an H-edge
// (source-to-target tgd); the target only accepts H-edges that are
// themselves E-edges (target-to-source tgd). We ask, for three source
// instances, whether the target can be populated consistently — and
// what is certain about the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pde"
)

func main() {
	setting, err := pde.ParseSetting(`
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		log.Fatal(err)
	}

	rep := pde.Classify(setting)
	fmt.Println("classification:", rep.Summary())
	fmt.Println()

	cases := []struct{ name, facts string }{
		{"path a->b->c", "E(a,b). E(b,c)."},
		{"self-loop a->a", "E(a,a)."},
		{"closed triangle", "E(a,b). E(b,c). E(a,c)."},
	}
	for _, c := range cases {
		source, err := pde.ParseInstance(c.facts)
		if err != nil {
			log.Fatal(err)
		}
		target := pde.NewInstance() // the target starts empty

		res, err := pde.FindSolution(setting, source, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: solution exists = %v (strategy: %s)\n", c.name, res.Exists, res.Strategy)
		if res.Exists {
			fmt.Println("  one solution:")
			for _, line := range splitLines(pde.FormatInstance(res.Solution)) {
				fmt.Println("   ", line)
			}
		}
	}
	fmt.Println()

	// Certain answers: which H-facts hold in EVERY solution?
	queries, err := pde.ParseQueries("q(x, y) :- H(x, y)")
	if err != nil {
		log.Fatal(err)
	}
	source, _ := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	ans, err := pde.CertainAnswers(setting, source, pde.NewInstance(), queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain H-facts on the closed triangle:")
	for _, t := range ans.Answers {
		fmt.Println("  H" + t.String())
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
