package main

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/snap"
	"repro/internal/workload"
	"repro/pde"
)

// seedSnapshots builds valid snapshot encodings covering both artifact
// kinds, so the fuzzer starts from deep inside the format instead of
// spending its budget rediscovering the magic and checksum.
func seedSnapshots(f *testing.F) [][]byte {
	f.Helper()
	rng := rand.New(rand.NewSource(7))
	var seeds [][]byte

	li, lj := workload.LAVInstance(8, true, rng)
	trace, err := core.ChaseCanonicalTractable(workload.LAVSetting(), li, lj, core.TractableOptions{})
	if err != nil {
		f.Fatalf("lav trace: %v", err)
	}
	data, err := snap.Encode(&snap.Entry{
		SettingID: "sha256:s", SourceID: "sha256:i", TargetID: "sha256:j",
		Kind:       snap.KindTractable,
		SourceText: pde.FormatInstance(li), TargetText: pde.FormatInstance(lj),
		Tractable: trace,
	})
	if err != nil {
		f.Fatalf("encode tractable: %v", err)
	}
	seeds = append(seeds, data)

	ki, kj := workload.KeyedLAVInstance(12)
	ct, err := core.ChaseCanonicalTarget(workload.KeyedLAVSetting(), ki, kj, core.SolveOptions{})
	if err != nil {
		f.Fatalf("keyed canonical target: %v", err)
	}
	data, err = snap.Encode(&snap.Entry{
		SettingID: "sha256:s", SourceID: "sha256:k", TargetID: "sha256:l",
		Kind:       snap.KindGeneric,
		SourceText: pde.FormatInstance(ki), TargetText: pde.FormatInstance(kj),
		Generic: ct,
	})
	if err != nil {
		f.Fatalf("encode generic: %v", err)
	}
	seeds = append(seeds, data)
	return seeds
}

// FuzzSnapshotDecode pins the codec's two load-bearing guarantees on
// arbitrary input: Decode never panics, and anything it accepts
// re-encodes byte-identically (the canonical-form invariant the peer
// warm-transfer protocol relies on).
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range seedSnapshots(f) {
		f.Add(seed)
		// Truncations and a bit flip steer the corpus toward the
		// validation branches.
		f.Add(seed[:len(seed)/2])
		mut := append([]byte(nil), seed...)
		mut[len(mut)/3] ^= 1
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("\x89PDXSNAP"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := snap.Decode(data)
		if err != nil {
			return
		}
		again, err := snap.Encode(e)
		if err != nil {
			t.Fatalf("decoded entry does not re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("accepted input is not canonical: %d bytes in, %d bytes out", len(data), len(again))
		}
	})
}
