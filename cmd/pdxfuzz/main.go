// Command pdxfuzz differentially tests the solvers: it generates random
// tiny PDE settings and instances, decides SOL(P) with the complete
// backtracking solver (and, when the setting lands in C_tract, with the
// Figure 3 algorithm), and cross-checks both against a brute-force
// oracle that enumerates all small target instances. Any disagreement
// is printed with a full reproduction recipe and the process exits
// non-zero.
//
// Usage:
//
//	pdxfuzz [-trials N] [-seed S] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/depparse"
	"repro/internal/oracle"
)

func main() {
	trials := flag.Int("trials", 500, "number of random settings/instances to test")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every trial")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	mismatches := 0
	tractableChecked := 0
	for trial := 0; trial < *trials; trial++ {
		s := oracle.RandomSetting(rng)
		if err := s.Validate(); err != nil {
			fail(trial, s, nil, nil, fmt.Sprintf("generator produced invalid setting: %v", err))
			mismatches++
			continue
		}
		i, j := oracle.RandomInstance(rng)
		want, err := oracle.ExhaustiveSOL(s, i, j, oracle.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdxfuzz: trial %d: oracle error: %v\n", trial, err)
			os.Exit(1)
		}
		got, witness, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 10_000_000})
		if err != nil {
			fail(trial, s, i, j, fmt.Sprintf("solver error: %v", err))
			mismatches++
			continue
		}
		ok := true
		if got != want {
			fail(trial, s, i, j, fmt.Sprintf("generic solver = %v, oracle = %v", got, want))
			mismatches++
			ok = false
		}
		if got && !s.IsSolution(i, j, witness) {
			fail(trial, s, i, j, "witness is not a solution")
			mismatches++
			ok = false
		}
		if s.Classify().InCtract {
			tractableChecked++
			tr, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
			if err != nil {
				fail(trial, s, i, j, fmt.Sprintf("tractable solver error: %v", err))
				mismatches++
			} else if tr != want {
				fail(trial, s, i, j, fmt.Sprintf("Figure 3 algorithm = %v, oracle = %v", tr, want))
				mismatches++
			}
		}
		if *verbose && ok {
			fmt.Printf("trial %d ok: SOL=%v\n", trial, got)
		}
	}
	fmt.Printf("pdxfuzz: %d trials, %d with C_tract cross-check, %d mismatches\n",
		*trials, tractableChecked, mismatches)
	if mismatches > 0 {
		os.Exit(1)
	}
}

func fail(trial int, s *core.Setting, i, j any, msg string) {
	fmt.Fprintf(os.Stderr, "pdxfuzz: trial %d MISMATCH: %s\n", trial, msg)
	fmt.Fprintf(os.Stderr, "setting:\n%s", depparse.FormatSetting(s))
	if inst, ok := i.(interface{ String() string }); ok && inst != nil {
		fmt.Fprintf(os.Stderr, "source instance:\n%v\n", inst)
	}
	if inst, ok := j.(interface{ String() string }); ok && inst != nil {
		fmt.Fprintf(os.Stderr, "target instance:\n%v\n", inst)
	}
}
