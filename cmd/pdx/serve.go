package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/snap"
)

// cmdServe runs pdxd, the PDE serving daemon: an HTTP/JSON API over a
// compiled-setting registry with request deadlines and admission
// control (see internal/server). Positional arguments are .pde files
// preloaded into the registry at startup. The daemon prints one line,
// "pdxd listening on http://ADDR", once it accepts connections, and
// drains in-flight requests on SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "listen address (use :0 for an ephemeral port)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently executing solves (0 = GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 0, "max solves queued for a slot; beyond it requests are shed with 429 (0 = 2×max-inflight, -1 = no queue)")
	defaultDeadline := fs.Duration("default-deadline", 30*time.Second, "solve deadline when the request sends none")
	maxDeadline := fs.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
	maxNodes := fs.Int64("max-nodes", 0, "server-wide generic-solver node budget (0 = unbounded)")
	parallelism := fs.Int("parallelism", 0, "workers per solve (0 = GOMAXPROCS)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "chase-cache byte budget (0 = 256 MiB, -1 = no byte bound)")
	cacheMaxEntries := fs.Int("cache-max-entries", 0, "chase-cache entry budget (0 = 1024, -1 = disable the cache)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	snapshotDir := fs.String("snapshot-dir", "", "directory for durable chase-cache snapshots (empty = no persistence)")
	warmFrom := fs.String("warm-from", "", "peer daemon base URL to pull cache snapshots from at startup (e.g. http://10.0.0.2:8642)")
	clusterSelf := fs.String("cluster-self", "", "this shard's advertised base URL; enables cluster mode with -cluster-peers")
	clusterPeers := fs.String("cluster-peers", "", "comma-separated base URLs of every shard in the fleet (including or excluding this one; both work)")
	clusterVNodes := fs.Int("cluster-vnodes", 0, "virtual nodes per ring member (0 = 64)")
	clusterProbe := fs.Duration("cluster-probe", 0, "peer health-probe interval (0 = 2s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var warmURL *url.URL
	if *warmFrom != "" {
		u, err := url.Parse(*warmFrom)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("-warm-from %q is not an http(s) base URL", *warmFrom)
		}
		warmURL = u
	}
	clusterCfg, err := clusterConfig(*clusterSelf, *clusterPeers, *clusterVNodes, *clusterProbe)
	if err != nil {
		return err
	}
	var snapshots *snap.Store
	if *snapshotDir != "" {
		s, err := snap.Open(*snapshotDir)
		if err != nil {
			return fmt.Errorf("snapshot dir: %w", err)
		}
		snapshots = s
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := server.New(server.Config{
		Logger:          logger,
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		MaxNodes:        *maxNodes,
		Parallelism:     *parallelism,
		CacheMaxBytes:   *cacheMaxBytes,
		CacheMaxEntries: *cacheMaxEntries,
		Snapshots:       snapshots,
		Cluster:         clusterCfg,
	})
	defer srv.Close()
	for _, file := range fs.Args() {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		c, _, err := srv.Registry().Register(string(src))
		if err != nil {
			return fmt.Errorf("preloading %s: %w", file, err)
		}
		logger.Info("setting preloaded", "file", file, "id", c.ID, "name", c.Name, "strategy", c.Strategy)
	}
	// Warm start after preloading: a snapshot only installs when its
	// setting is already registered.
	if snapshots != nil {
		loaded, failed := srv.LoadSnapshots()
		logger.Info("snapshots loaded", "dir", snapshots.Dir(), "loaded", loaded, "rejected", failed)
	}
	if warmURL != nil {
		pulled, skipped, err := srv.WarmFrom(context.Background(), warmURL.String())
		if err != nil {
			logger.Warn("warm transfer failed", "peer", warmURL.String(), "err", err.Error())
		} else {
			logger.Info("warm transfer", "peer", warmURL.String(), "pulled", pulled, "skipped", skipped)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pdxd listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		logger.Info("draining", "timeout", drainTimeout.String())
		srv.StartDrain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		// Flush the write-behind snapshot queue before reporting the
		// drain complete: every admitted solve has finished by now.
		srv.Close()
		logger.Info("drained")
		return nil
	}
}
