package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/snap"
	"repro/pde/client"
)

// buildPdx compiles the pdx binary into a temp dir.
func buildPdx(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pdx")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building pdx: %v", err)
	}
	return bin
}

// startServe launches `pdx serve` and waits for the listening banner,
// returning the daemon base URL.
func startServe(t *testing.T, bin string, stderr *bytes.Buffer, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve"}, args...)...)
	cmd.Stderr = stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var banner string
	select {
	case banner = <-lines:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
	}
	base := strings.TrimPrefix(banner, "pdxd listening on ")
	if base == banner || !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected banner %q", banner)
	}
	return cmd, base
}

// sigtermAndWait drains the daemon and requires a clean exit.
func sigtermAndWait(t *testing.T, cmd *exec.Cmd, stderr *bytes.Buffer) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s; stderr:\n%s", stderr.String())
	}
}

// TestServeRestartWarm is the restart-warm end-to-end check: solve,
// SIGTERM, restart over the same -snapshot-dir, and the first solve of
// the new process must already hit the cache.
func TestServeRestartWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pdx binary")
	}
	bin := buildPdx(t)
	snapDir := filepath.Join(t.TempDir(), "snapshots")
	setting := "../../examples/settings/server-smoke.pde"
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var stderr1 bytes.Buffer
	cmd1, base1 := startServe(t, bin, &stderr1, "-addr", "127.0.0.1:0", "-snapshot-dir", snapDir, setting)
	c1 := client.New(base1)
	settings, err := c1.Settings(ctx)
	if err != nil || len(settings.Settings) != 1 {
		t.Fatalf("settings: %+v, %v", settings, err)
	}
	settingID := settings.Settings[0].ID

	facts, err := os.ReadFile("../../examples/corpus/triangle.facts")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c1.RegisterInstance(ctx, string(facts))
	if err != nil {
		t.Fatalf("register instance: %v", err)
	}
	res, err := c1.ExistsSolution(ctx, client.SolveRequest{SettingID: settingID, SourceID: inst.ID})
	if err != nil || res.CacheHit {
		t.Fatalf("first solve: %+v, %v", res, err)
	}
	sigtermAndWait(t, cmd1, &stderr1)

	// The drain flushed the write-behind queue to disk.
	store, err := snap.Open(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if keys, _ := store.List(); len(keys) == 0 {
		t.Fatalf("no snapshots after drain; stderr:\n%s", stderr1.String())
	}

	var stderr2 bytes.Buffer
	_, base2 := startServe(t, bin, &stderr2, "-addr", "127.0.0.1:0", "-snapshot-dir", snapDir, setting)
	c2 := client.New(base2)
	res, err = c2.ExistsSolution(ctx, client.SolveRequest{SettingID: settingID, SourceID: inst.ID})
	if err != nil {
		t.Fatalf("solve after restart: %v; stderr:\n%s", err, stderr2.String())
	}
	if !res.CacheHit {
		t.Fatalf("first solve after restart was cold: %+v; stderr:\n%s", res, stderr2.String())
	}
	metrics, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	if !strings.Contains(string(body), "pdxd_snapshot_loads_total 1") {
		t.Errorf("snapshot load counter missing from metrics:\n%s", body)
	}
}

// TestServeWarmFromPeer drives the peer warm-transfer path through the
// real binary: a second daemon started with -warm-from serves its first
// solve from the peer's cache.
func TestServeWarmFromPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pdx binary")
	}
	bin := buildPdx(t)
	setting := "../../examples/settings/server-smoke.pde"
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var stderr1 bytes.Buffer
	_, base1 := startServe(t, bin, &stderr1, "-addr", "127.0.0.1:0", setting)
	c1 := client.New(base1)
	settings, err := c1.Settings(ctx)
	if err != nil || len(settings.Settings) != 1 {
		t.Fatalf("settings: %+v, %v", settings, err)
	}
	settingID := settings.Settings[0].ID
	facts, err := os.ReadFile("../../examples/corpus/triangle.facts")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c1.RegisterInstance(ctx, string(facts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.ExistsSolution(ctx, client.SolveRequest{SettingID: settingID, SourceID: inst.ID}); err != nil {
		t.Fatalf("peer solve: %v", err)
	}

	var stderr2 bytes.Buffer
	_, base2 := startServe(t, bin, &stderr2, "-addr", "127.0.0.1:0", "-warm-from", base1, setting)
	c2 := client.New(base2)
	res, err := c2.ExistsSolution(ctx, client.SolveRequest{SettingID: settingID, SourceID: inst.ID})
	if err != nil {
		t.Fatalf("solve on warmed daemon: %v; stderr:\n%s", err, stderr2.String())
	}
	if !res.CacheHit {
		t.Fatalf("first solve after warm transfer was cold: %+v; stderr:\n%s", res, stderr2.String())
	}
}

// TestServeFlagValidation pins the startup failures: an unusable
// -snapshot-dir or a malformed -warm-from must abort with a clear error
// before the daemon listens.
func TestServeFlagValidation(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdServe([]string{"-snapshot-dir", occupied})
	if err == nil || !strings.Contains(err.Error(), "snapshot dir") {
		t.Fatalf("regular file as snapshot dir: %v", err)
	}

	newer := t.TempDir()
	// A snapshot header claiming format version 2: a newer daemon owns
	// this directory, so startup must refuse it.
	head := append([]byte("\x89PDXSNAP"), 2)
	name := strings.Repeat("a", 64) + ".pdxsnap"
	if err := os.WriteFile(filepath.Join(newer, name), head, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdServe([]string{"-snapshot-dir", newer})
	if err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("newer-version snapshot dir: %v", err)
	}

	for _, bad := range []string{"not a url", "ftp://host", "host:8642", "http://"} {
		if err := cmdServe([]string{"-warm-from", bad}); err == nil || !strings.Contains(err.Error(), "-warm-from") {
			t.Fatalf("-warm-from %q: %v", bad, err)
		}
	}
}
