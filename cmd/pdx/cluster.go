package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/url"
	"strings"
	"time"

	"repro/internal/server"
	"repro/pde/client"
)

// clusterConfig validates the serve command's cluster flags into a
// server.ClusterConfig, or nil when clustering is off (both flags
// empty). Setting only one of -cluster-self and -cluster-peers is a
// configuration error, not a single-node daemon.
func clusterConfig(self, peers string, vnodes int, probe time.Duration) (*server.ClusterConfig, error) {
	if self == "" && peers == "" {
		return nil, nil
	}
	if self == "" || peers == "" {
		return nil, fmt.Errorf("cluster mode needs both -cluster-self and -cluster-peers")
	}
	list := strings.Split(peers, ",")
	for i, p := range list {
		list[i] = strings.TrimSpace(p)
	}
	for _, u := range append([]string{self}, list...) {
		parsed, err := url.Parse(u)
		if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
			return nil, fmt.Errorf("cluster member %q is not an http(s) base URL", u)
		}
	}
	return &server.ClusterConfig{
		Self:          self,
		Peers:         list,
		VNodes:        vnodes,
		ProbeInterval: probe,
	}, nil
}

// cmdClusterStatus queries a shard's ring view (GET /v1/cluster) and
// prints the membership with liveness; given a cache identity it also
// prints — and with -owner-only, prints only — the owning shard, so
// scripts can route a request to its owner.
func cmdClusterStatus(args []string) error {
	fs := flag.NewFlagSet("cluster-status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8642", "base URL of any shard")
	settingID := fs.String("setting-id", "", "setting ID of the cache identity to locate")
	sourceID := fs.String("source-id", "", "source instance ID of the cache identity to locate")
	targetID := fs.String("target-id", "", "target instance ID (empty = the empty instance)")
	ownerOnly := fs.Bool("owner-only", false, "print only the owner URL (requires -setting-id and -source-id)")
	asJSON := fs.Bool("json", false, "emit the raw status response as JSON")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*settingID == "") != (*sourceID == "") {
		return fmt.Errorf("-setting-id and -source-id go together")
	}
	if *ownerOnly && *settingID == "" {
		return fmt.Errorf("-owner-only requires -setting-id and -source-id")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cs, err := client.New(*addr).ClusterStatus(ctx, *settingID, *sourceID, *targetID)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cs)
	}
	if !cs.Enabled {
		fmt.Fprintln(stdout, "clustering: disabled (single-node daemon)")
		return nil
	}
	if *ownerOnly {
		fmt.Fprintln(stdout, cs.Owner)
		return nil
	}
	fmt.Fprintf(stdout, "self: %s (ring version %d)\n", cs.Self, cs.Version)
	for _, m := range cs.Members {
		state := "dead"
		if m.Alive {
			state = "alive"
		}
		mark := " "
		if m.Self {
			mark = "*"
		}
		fmt.Fprintf(stdout, "%s %s %s\n", mark, m.URL, state)
	}
	if cs.Owner != "" {
		fmt.Fprintf(stdout, "owner: %s\n", cs.Owner)
	}
	return nil
}
