package main

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/pde/client"
)

// TestServeEndToEnd builds the pdx binary, starts `pdx serve` on an
// ephemeral port with the smoke setting preloaded, drives the register
// → exists-solution → certain-answers round trip with the typed
// client, and checks SIGTERM drains to a clean exit.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the pdx binary")
	}
	bin := filepath.Join(t.TempDir(), "pdx")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building pdx: %v", err)
	}

	var stderr bytes.Buffer
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "../../examples/settings/server-smoke.pde")
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The daemon prints exactly one line once it accepts connections.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var banner string
	select {
	case banner = <-lines:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
	}
	base := strings.TrimPrefix(banner, "pdxd listening on ")
	if base == banner || !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected banner %q", banner)
	}

	c := client.New(base)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// The preloaded setting makes registration an idempotent no-op.
	setting, err := os.ReadFile("../../examples/settings/server-smoke.pde")
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.Register(ctx, string(setting))
	if err != nil {
		t.Fatalf("register: %v; stderr:\n%s", err, stderr.String())
	}
	if reg.Created || reg.Name != "server_smoke" || reg.Strategy != "tractable" {
		t.Fatalf("preloaded setting registered oddly: %+v", reg)
	}

	for _, tc := range []struct {
		file string
		want bool
	}{
		{"path.facts", false},
		{"selfloop.facts", true},
		{"triangle.facts", true},
	} {
		src, err := os.ReadFile(filepath.Join("../../examples/corpus", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.ExistsSolution(ctx, client.SolveRequest{SettingID: reg.ID, Source: string(src)})
		if err != nil {
			t.Fatalf("solve %s: %v", tc.file, err)
		}
		if res.Exists != tc.want {
			t.Errorf("%s: exists=%v, want %v", tc.file, res.Exists, tc.want)
		}
	}

	tri, err := os.ReadFile("../../examples/corpus/triangle.facts")
	if err != nil {
		t.Fatal(err)
	}
	query, err := os.ReadFile("../../examples/corpus/queries.cq")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := c.CertainAnswers(ctx, client.CertainRequest{
		SettingID: reg.ID, Source: string(tri), Query: string(query),
	})
	if err != nil {
		t.Fatalf("certain: %v", err)
	}
	if len(ca.Answers) != 1 || ca.Answers[0][0] != "a" || ca.Answers[0][1] != "c" {
		t.Errorf("certain answers = %v, want [[a c]]", ca.Answers)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Settings != 1 {
		t.Fatalf("health: %+v, %v", h, err)
	}

	// Graceful drain: SIGTERM must produce a clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) || err != nil {
			t.Fatalf("daemon exited uncleanly: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), `"msg":"drained"`) {
		t.Errorf("drain log missing from stderr:\n%s", stderr.String())
	}
}
