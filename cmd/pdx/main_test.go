package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects the command output and exit hook for one test.
func capture(t *testing.T) (*bytes.Buffer, *int) {
	t.Helper()
	buf := &bytes.Buffer{}
	exitCode := -1
	oldStdout, oldExit := stdout, exit
	stdout = buf
	exit = func(code int) { exitCode = code }
	t.Cleanup(func() { stdout, exit = oldStdout, oldExit })
	return buf, &exitCode
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixtures(t *testing.T) (setting, source, queries string) {
	t.Helper()
	dir := t.TempDir()
	setting = writeFile(t, dir, "setting.pde", `
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	source = writeFile(t, dir, "source.facts", "E(a,b). E(b,c). E(a,c).")
	queries = writeFile(t, dir, "q.cq", "q(x,y) :- H(x,y)\nqb :- H(x,y), H(y,z)")
	return
}

func TestCmdSolve(t *testing.T) {
	setting, source, _ := fixtures(t)
	out, code := capture(t)
	if err := cmdSolve([]string{"-setting", setting, "-source", source, "-witness"}); err != nil {
		t.Fatal(err)
	}
	if *code != -1 {
		t.Errorf("exit called with %d on a solvable instance", *code)
	}
	got := out.String()
	if !strings.Contains(got, "solution exists: true (strategy: tractable)") {
		t.Errorf("output = %q", got)
	}
	if !strings.Contains(got, "H(a, c).") {
		t.Errorf("witness missing from output: %q", got)
	}
}

func TestCmdSolveNoSolution(t *testing.T) {
	setting, _, _ := fixtures(t)
	dir := t.TempDir()
	source := writeFile(t, dir, "path.facts", "E(a,b). E(b,c).")
	out, code := capture(t)
	if err := cmdSolve([]string{"-setting", setting, "-source", source}); err != nil {
		t.Fatal(err)
	}
	if *code != 3 {
		t.Errorf("exit code = %d, want 3", *code)
	}
	if !strings.Contains(out.String(), "solution exists: false") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCmdCertain(t *testing.T) {
	setting, source, queries := fixtures(t)
	out, _ := capture(t)
	if err := cmdCertain([]string{"-setting", setting, "-source", source, "-queries", queries}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "q: 1 certain answer(s)") {
		t.Errorf("open query output = %q", got)
	}
	if !strings.Contains(got, "(a, c)") {
		t.Errorf("certain tuple missing: %q", got)
	}
	if !strings.Contains(got, "qb: certain = false") {
		t.Errorf("boolean query output = %q", got)
	}
}

func TestCmdClassify(t *testing.T) {
	setting, _, _ := fixtures(t)
	out, _ := capture(t)
	if err := cmdClassify([]string{"-setting", setting}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "in C_tract") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCmdChase(t *testing.T) {
	setting, source, _ := fixtures(t)
	out, _ := capture(t)
	if err := cmdChase([]string{"-setting", setting, "-source", source}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "J_can (1 facts") || !strings.Contains(got, "H(a, c).") {
		t.Errorf("J_can missing: %q", got)
	}
	if !strings.Contains(got, "I_can (1 facts") || !strings.Contains(got, "E(a, c).") {
		t.Errorf("I_can missing: %q", got)
	}
}

func TestCmdCheck(t *testing.T) {
	setting, source, _ := fixtures(t)
	dir := t.TempDir()
	good := writeFile(t, dir, "good.facts", "H(a,c).")
	bad := writeFile(t, dir, "bad.facts", "H(c,a).")

	out, code := capture(t)
	if err := cmdCheck([]string{"-setting", setting, "-source", source, "-candidate", good}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "candidate IS a solution") || *code != -1 {
		t.Errorf("good candidate: output=%q code=%d", out.String(), *code)
	}

	out2, code2 := capture(t)
	if err := cmdCheck([]string{"-setting", setting, "-source", source, "-candidate", bad}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "candidate is NOT a solution") || *code2 != 3 {
		t.Errorf("bad candidate: output=%q code=%d", out2.String(), *code2)
	}
}

func TestCmdRepair(t *testing.T) {
	setting, _, _ := fixtures(t)
	dir := t.TempDir()
	source := writeFile(t, dir, "src.facts", "E(a,a).")
	target := writeFile(t, dir, "tgt.facts", "H(a,a). H(b,b).")
	queries := writeFile(t, dir, "q.cq", "q(x) :- H(x, x)")
	out, _ := capture(t)
	if err := cmdRepair([]string{"-setting", setting, "-source", source, "-target", target, "-queries", queries}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "repairs: 1") {
		t.Errorf("repair count missing: %q", got)
	}
	if !strings.Contains(got, "dropped 1 fact(s)") {
		t.Errorf("removed count missing: %q", got)
	}
	if !strings.Contains(got, "q: 1 certain answer(s) under repairs") {
		t.Errorf("repair-certain missing: %q", got)
	}
}

func TestCmdErrors(t *testing.T) {
	setting, source, _ := fixtures(t)
	if err := cmdSolve([]string{"-source", source}); err == nil {
		t.Error("missing -setting accepted")
	}
	if err := cmdSolve([]string{"-setting", setting}); err == nil {
		t.Error("missing -source accepted")
	}
	if err := cmdCertain([]string{"-setting", setting, "-source", source}); err == nil {
		t.Error("missing -queries accepted")
	}
	if err := cmdCheck([]string{"-setting", setting, "-source", source}); err == nil {
		t.Error("missing -candidate accepted")
	}
	dir := t.TempDir()
	broken := writeFile(t, dir, "broken.pde", "nonsense here")
	if err := cmdClassify([]string{"-setting", broken}); err == nil {
		t.Error("broken setting file accepted")
	}
}

func TestCmdDatalog(t *testing.T) {
	dir := t.TempDir()
	program := writeFile(t, dir, "tc.dl", "T(x, y) :- E(x, y)\nT(x, z) :- T(x, y), E(y, z)")
	edb := writeFile(t, dir, "edb.facts", "E(a,b). E(b,c).")
	out, _ := capture(t)
	if err := cmdDatalog([]string{"-program", program, "-edb", edb}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "5 facts (3 derived)") {
		t.Errorf("output = %q", got)
	}
	if !strings.Contains(got, "T(a, c).") {
		t.Errorf("closure fact missing: %q", got)
	}

	out2, _ := capture(t)
	if err := cmdDatalog([]string{"-program", program, "-edb", edb, "-idb-only"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2.String(), "E(a, b).") {
		t.Errorf("-idb-only leaked EDB facts: %q", out2.String())
	}
	if err := cmdDatalog([]string{"-program", program}); err == nil {
		t.Error("missing -edb accepted")
	}
}

func TestCmdCompile(t *testing.T) {
	setting, source, queries := fixtures(t)
	out, code := capture(t)
	if err := cmdCompile([]string{"-setting", setting, "-queries", queries, "-verify", "-source", source}); err != nil {
		t.Fatal(err)
	}
	if *code != -1 {
		t.Errorf("exit called with %d on a compilable setting", *code)
	}
	got := out.String()
	for _, want := range []string{
		"setting example1: compilable",
		"plan q: open",
		"q: verified against chase-backed path (1 answer(s))",
		"qb: verified against chase-backed path (0 answer(s))",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCmdCompileFallback(t *testing.T) {
	dir := t.TempDir()
	setting := writeFile(t, dir, "keyed.pde", `
setting keyed
source E/2
target H/2
st: E(x,y) -> H(x,y)
t: H(x,y), H(x,z) -> y = z
`)
	queries := writeFile(t, dir, "q.cq", "q(x,y) :- H(x,y)")
	out, code := capture(t)
	if err := cmdCompile([]string{"-setting", setting, "-queries", queries}); err != nil {
		t.Fatal(err)
	}
	if *code != 3 {
		t.Errorf("exit code = %d, want 3", *code)
	}
	if !strings.Contains(out.String(), "setting keyed: not compilable (target-deps)") {
		t.Errorf("output = %q", out.String())
	}
}
