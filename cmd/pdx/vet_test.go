package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/pde"
)

const nonCtractSetting = "source D/1, S/2\n" +
	"target P/2\n" +
	"st: D(c) -> exists z: P(z, c)\n" +
	"ts: P(x, c), P(y, c2) -> S(x, y)\n"

func TestCmdVetClean(t *testing.T) {
	setting, _, _ := fixtures(t)
	out, code := capture(t)
	if err := cmdVet([]string{"-setting", setting}); err != nil {
		t.Fatal(err)
	}
	if *code != -1 {
		t.Errorf("exit called with %d on a clean setting", *code)
	}
	if got, want := out.String(), setting+": ok\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

// TestCmdVetTextGolden pins the full text output on a non-C_tract
// setting: one positioned warning naming the violating atom, the marked
// variable pair, and the marking provenance, then the summary line.
func TestCmdVetTextGolden(t *testing.T) {
	path := writeFile(t, t.TempDir(), "nonctract.pde", nonCtractSetting)
	out, code := capture(t)
	if err := cmdVet([]string{"-setting", path}); err != nil {
		t.Fatal(err)
	}
	if *code != -1 {
		t.Errorf("exit called with %d; warnings alone must not fail the run", *code)
	}
	want := path + ":4:26: warn: condition 2.2: marked variables x and y co-occur in head conjunct S(x, y) of ts1 " +
		"but neither 2.2(a) nor 2.2(b) holds (x marked via position P.0 of P(x, c) by st1; " +
		"y marked via position P.0 of P(y, c2) by st1) [ctract-cond-2.2]\n" +
		path + ": 0 error(s), 1 warning(s), 0 info\n"
	if got := out.String(); got != want {
		t.Errorf("output = %q\nwant %q", got, want)
	}
}

func TestCmdVetErrorsExitOne(t *testing.T) {
	path := writeFile(t, t.TempDir(), "bad.pde",
		"source E/2\ntarget H/2\nst: E(x,y) -> G(x,y)\nts: H(x,y) -> E(x,y)\n")
	out, code := capture(t)
	if err := cmdVet([]string{"-setting", path}); err != nil {
		t.Fatal(err)
	}
	if *code != 1 {
		t.Errorf("exit code = %d, want 1 on errors", *code)
	}
	got := out.String()
	if !strings.Contains(got, path+":3:15: error: ") || !strings.Contains(got, "[undeclared-relation]") {
		t.Errorf("output = %q lacks the positioned undeclared-relation error", got)
	}
	if !strings.Contains(got, "1 error(s)") {
		t.Errorf("output = %q lacks the summary", got)
	}
}

func TestCmdVetParseErrorExitOne(t *testing.T) {
	path := writeFile(t, t.TempDir(), "syntax.pde", "sauce E/2\n")
	out, code := capture(t)
	if err := cmdVet([]string{"-setting", path}); err != nil {
		t.Fatal(err)
	}
	if *code != 1 {
		t.Errorf("exit code = %d, want 1 on a parse error", *code)
	}
	if !strings.Contains(out.String(), "[parse-error]") {
		t.Errorf("output = %q lacks the parse-error diagnostic", out.String())
	}
}

// TestCmdVetJSON checks that -json output is valid JSON that round-trips
// to exactly the report the library API produces.
func TestCmdVetJSON(t *testing.T) {
	path := writeFile(t, t.TempDir(), "nonctract.pde", nonCtractSetting)
	out, code := capture(t)
	if err := cmdVet([]string{"-setting", path, "-json"}); err != nil {
		t.Fatal(err)
	}
	if *code != -1 {
		t.Errorf("exit code = %d, want none", *code)
	}
	var got pde.VetReport
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	want := pde.Vet(nonCtractSetting, path)
	if !reflect.DeepEqual(got, *want) {
		t.Errorf("JSON round trip diverges from pde.Vet:\n%+v\nvs\n%+v", got, *want)
	}
	if len(got.Diagnostics) == 0 || got.Diagnostics[0].Witness == nil {
		t.Fatalf("diagnostics lost their witness payload: %+v", got)
	}
}

// TestCmdClassifyByteStable guards the determinism fix: repeated runs of
// classify over a multi-ts setting emit byte-identical output.
func TestCmdClassifyByteStable(t *testing.T) {
	path := writeFile(t, t.TempDir(), "multi.pde",
		"source D/1, S/2, R/2\n"+
			"target P/2, Q/2\n"+
			"st: D(c) -> exists z: P(z, c)\n"+
			"st: R(a,b) -> Q(a,b)\n"+
			"ts: Q(u,v) -> R(u,v)\n"+
			"ts: P(x, c), P(y, c2) -> S(x, y)\n"+
			"ts: P(x, c) -> exists w: S(x, w)\n")
	var first string
	for i := 0; i < 20; i++ {
		out, _ := capture(t)
		if err := cmdClassify([]string{"-setting", path}); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out.String()
			// The per-tgd verdicts must follow input order.
			i1 := strings.Index(first, "marked variables of ts1")
			i2 := strings.Index(first, "marked variables of ts2")
			i3 := strings.Index(first, "marked variables of ts3")
			if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
				t.Fatalf("per-tgd verdicts out of input order:\n%s", first)
			}
			continue
		}
		if out.String() != first {
			t.Fatalf("classify output changed between runs:\n%s\nvs\n%s", out.String(), first)
		}
	}
}
