// Command pdx is the peer data exchange command-line tool. It loads a
// setting and instances from text files and answers the paper's two
// algorithmic questions — existence of solutions and certain answers —
// plus classification and diagnostics.
//
// Usage:
//
//	pdx solve    -setting FILE -source FILE [-target FILE] [-witness] [-force-generic]
//	pdx certain  -setting FILE -source FILE [-target FILE] -queries FILE
//	pdx compile  -setting FILE -queries FILE [-verify -source FILE [-target FILE]]
//	pdx classify -setting FILE
//	pdx vet      -setting FILE [-json]
//	pdx chase    -setting FILE -source FILE [-target FILE]
//	pdx check    -setting FILE -source FILE [-target FILE] -candidate FILE
//	pdx repair   -setting FILE -source FILE [-target FILE] [-queries FILE]
//	pdx datalog  -program FILE -edb FILE [-idb-only]
//	pdx serve    [-addr HOST:PORT] [-max-inflight N] [-max-queue N] [-cluster-self URL -cluster-peers URLS] [SETTING.pde ...]
//	pdx cluster-status [-addr URL] [-setting-id ID -source-id ID [-target-id ID]] [-owner-only] [-json]
//
// File formats are documented in the repository README and on
// pde.ParseSetting / pde.ParseInstance / pde.ParseQueries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"

	"repro/internal/core"
	"repro/internal/datalog"
	"repro/internal/depparse"
	"repro/internal/rel"
	"repro/pde"
)

// stdout and exit are swapped by the tests.
var (
	stdout io.Writer = os.Stdout
	exit             = os.Exit
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "solve":
		err = cmdSolve(os.Args[2:])
	case "certain":
		err = cmdCertain(os.Args[2:])
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "vet":
		err = cmdVet(os.Args[2:])
	case "chase":
		err = cmdChase(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "repair":
		err = cmdRepair(os.Args[2:])
	case "datalog":
		err = cmdDatalog(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "cluster-status":
		err = cmdClusterStatus(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pdx: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdx: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pdx — peer data exchange (PODS 2005) tool

commands:
  solve     decide the existence-of-solutions problem SOL(P)
  certain   compute certain answers of target queries
  compile   compile certain-answer queries to chase-free evaluation plans
  classify  decide membership in the tractable class C_tract
  vet       run the static-analysis checks over a setting file
  chase     print the canonical instances J_can and I_can
  check     verify whether a candidate target instance is a solution
  repair    compute maximal repairable subsets of the target instance
  datalog   evaluate a positive Datalog program over an instance
  serve     run pdxd, the HTTP/JSON serving daemon
  cluster-status
            query a pdxd shard's ring view and locate cache-key owners
`)
}

type inputs struct {
	setting  string
	source   string
	target   string
	settingV *pde.Setting
	sourceV  *pde.Instance
	targetV  *pde.Instance
}

func (in *inputs) register(fs *flag.FlagSet) {
	fs.StringVar(&in.setting, "setting", "", "setting file (required)")
	fs.StringVar(&in.source, "source", "", "source instance file (required)")
	fs.StringVar(&in.target, "target", "", "target instance file (optional; empty instance if omitted)")
}

func (in *inputs) load(needSource bool) error {
	if in.setting == "" {
		return fmt.Errorf("-setting is required")
	}
	src, err := os.ReadFile(in.setting)
	if err != nil {
		return err
	}
	in.settingV, err = pde.ParseSetting(string(src))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", in.setting, err)
	}
	in.sourceV = pde.NewInstance()
	if in.source != "" {
		text, err := os.ReadFile(in.source)
		if err != nil {
			return err
		}
		in.sourceV, err = pde.ParseInstance(string(text))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", in.source, err)
		}
	} else if needSource {
		return fmt.Errorf("-source is required")
	}
	in.targetV = pde.NewInstance()
	if in.target != "" {
		text, err := os.ReadFile(in.target)
		if err != nil {
			return err
		}
		in.targetV, err = pde.ParseInstance(string(text))
		if err != nil {
			return fmt.Errorf("parsing %s: %w", in.target, err)
		}
	}
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	var in inputs
	in.register(fs)
	witness := fs.Bool("witness", false, "print a witness solution when one exists")
	forceGeneric := fs.Bool("force-generic", false, "always use the complete backtracking solver")
	maxNodes := fs.Int64("max-nodes", 0, "search node budget for the generic solver (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(true); err != nil {
		return err
	}
	opts := pde.Options{ForceGeneric: *forceGeneric}
	opts.Solve.MaxNodes = *maxNodes
	var res pde.Result
	var err error
	if *witness {
		res, err = pde.FindSolution(in.settingV, in.sourceV, in.targetV, opts)
	} else {
		res, err = pde.ExistsSolution(in.settingV, in.sourceV, in.targetV, opts)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "solution exists: %v (strategy: %s)\n", res.Exists, res.Strategy)
	if *witness && res.Solution != nil {
		fmt.Fprintln(stdout, "witness solution:")
		fmt.Fprintln(stdout, pde.FormatInstance(res.Solution))
	}
	if !res.Exists {
		exit(3) // distinguishable exit code for scripting
	}
	return nil
}

func cmdCertain(args []string) error {
	fs := flag.NewFlagSet("certain", flag.ExitOnError)
	var in inputs
	in.register(fs)
	queries := fs.String("queries", "", "query file (required)")
	maxNodes := fs.Int64("max-nodes", 0, "search node budget (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(true); err != nil {
		return err
	}
	if *queries == "" {
		return fmt.Errorf("-queries is required")
	}
	text, err := os.ReadFile(*queries)
	if err != nil {
		return err
	}
	qs, err := pde.ParseQueries(string(text))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *queries, err)
	}
	opts := pde.Options{}
	opts.Solve.MaxNodes = *maxNodes
	for _, q := range qs {
		if q[0].IsBoolean() {
			res, err := pde.CertainBool(in.settingV, in.sourceV, in.targetV, q, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s: certain = %v (solutions exist: %v)\n", q[0].Name, res.Certain, res.SolutionExists)
			continue
		}
		res, err := pde.CertainAnswers(in.settingV, in.sourceV, in.targetV, q, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: %d certain answer(s) (solutions exist: %v)\n", q[0].Name, len(res.Answers), res.SolutionExists)
		for _, t := range res.Answers {
			fmt.Fprintf(stdout, "  %s\n", t)
		}
	}
	return nil
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	var in inputs
	in.register(fs)
	queries := fs.String("queries", "", "query file (required)")
	verify := fs.Bool("verify", false, "evaluate each plan and cross-check against the chase-backed path (needs -source)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(*verify); err != nil {
		return err
	}
	if *queries == "" {
		return fmt.Errorf("-queries is required")
	}
	text, err := os.ReadFile(*queries)
	if err != nil {
		return err
	}
	qs, err := pde.ParseQueries(string(text))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *queries, err)
	}
	sp, err := pde.CompileSettingPlan(in.settingV)
	if err != nil {
		if reason := pde.CompiledFallbackReason(err); reason != "" {
			fmt.Fprintf(stdout, "setting %s: not compilable (%s)\n", in.settingV.Name, reason)
			exit(3) // same convention as solve: distinguishable for scripting
			return nil
		}
		return err
	}
	fmt.Fprintf(stdout, "setting %s: compilable\n", in.settingV.Name)
	for _, q := range qs {
		plan, err := sp.CompileQuery(q)
		if err != nil {
			if reason := pde.CompiledFallbackReason(err); reason != "" {
				fmt.Fprintf(stdout, "%s: not compilable (%s)\n", q[0].Name, reason)
				continue
			}
			return err
		}
		fmt.Fprintln(stdout, plan.String())
		if !*verify {
			continue
		}
		got, err := plan.Eval(in.sourceV, in.targetV, pde.CompiledEvalOptions{})
		if err != nil {
			return fmt.Errorf("%s: evaluating plan: %w", q[0].Name, err)
		}
		var want pde.CertainResult
		if q[0].IsBoolean() {
			want, err = pde.CertainBool(in.settingV, in.sourceV, in.targetV, q, pde.Options{})
		} else {
			want, err = pde.CertainAnswers(in.settingV, in.sourceV, in.targetV, q, pde.Options{})
		}
		if err != nil {
			return fmt.Errorf("%s: chase-backed check: %w", q[0].Name, err)
		}
		if got.SolutionExists != want.SolutionExists || got.Certain != want.Certain ||
			!reflect.DeepEqual(got.Answers, want.Answers) {
			return fmt.Errorf("%s: compiled result diverges from chase-backed path:\ncompiled: %+v\nchased:   %+v",
				q[0].Name, got, want)
		}
		fmt.Fprintf(stdout, "%s: verified against chase-backed path (%d answer(s))\n", q[0].Name, len(got.Answers))
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	var in inputs
	in.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(false); err != nil {
		return err
	}
	rep := pde.Classify(in.settingV)
	fmt.Fprintln(stdout, rep.Summary())
	fmt.Fprintf(stdout, "condition 1: %v, condition 2.1: %v, condition 2.2: %v\n", rep.Cond1, rep.Cond21, rep.Cond22)
	if len(rep.MarkedPositions) > 0 {
		fmt.Fprint(stdout, "marked positions:")
		for _, p := range rep.MarkedPositions {
			fmt.Fprintf(stdout, " %s", p)
		}
		fmt.Fprintln(stdout)
	}
	for _, label := range rep.TSOrder {
		fmt.Fprintf(stdout, "marked variables of %s: %v\n", label, rep.MarkedVarsByTGD[label])
	}
	return nil
}

func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ExitOnError)
	setting := fs.String("setting", "", "setting file (required)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *setting == "" {
		return fmt.Errorf("-setting is required")
	}
	src, err := os.ReadFile(*setting)
	if err != nil {
		return err
	}
	rep := pde.Vet(string(src), *setting)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		errs, warns, infos := rep.Counts()
		if errs+warns+infos == 0 {
			fmt.Fprintf(stdout, "%s: ok\n", *setting)
		} else {
			fmt.Fprintf(stdout, "%s: %d error(s), %d warning(s), %d info\n", *setting, errs, warns, infos)
		}
	}
	if rep.HasErrors() {
		exit(1)
	}
	return nil
}

func cmdChase(args []string) error {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	var in inputs
	in.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(true); err != nil {
		return err
	}
	ok, trace, err := core.ExistsSolutionTractable(in.settingV, in.sourceV, in.targetV, core.TractableOptions{SkipCondition1Check: true})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "J_can (%d facts, %d chase steps):\n%s\n\n", trace.JCan.NumFacts(), trace.StepsST, pde.FormatInstance(trace.JCan))
	fmt.Fprintf(stdout, "I_can (%d facts, %d chase steps):\n%s\n\n", trace.ICan.NumFacts(), trace.StepsTS, pde.FormatInstance(trace.ICan))
	fmt.Fprintf(stdout, "blocks: %d, max nulls per block: %d\n", trace.Blocks, trace.MaxBlockNulls)
	fmt.Fprintf(stdout, "homomorphism from every block of I_can into I: %v\n", ok)
	return nil
}

func cmdRepair(args []string) error {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	var in inputs
	in.register(fs)
	queries := fs.String("queries", "", "optional query file evaluated under the repair semantics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(true); err != nil {
		return err
	}
	res, err := pde.Repairs(in.settingV, in.sourceV, in.targetV)
	if err != nil {
		return err
	}
	if res.Intact {
		fmt.Fprintln(stdout, "target instance is intact: it is its own unique repair")
	} else {
		fmt.Fprintf(stdout, "repairs: %d\n", len(res.Repairs))
	}
	for idx, r := range res.Repairs {
		fmt.Fprintf(stdout, "repair %d (dropped %d fact(s)):\n%s\n", idx+1, r.Removed, pde.FormatInstance(r.Target))
	}
	if *queries == "" {
		return nil
	}
	text, err := os.ReadFile(*queries)
	if err != nil {
		return err
	}
	qs, err := pde.ParseQueries(string(text))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *queries, err)
	}
	for _, q := range qs {
		r, err := pde.CertainUnderRepairs(in.settingV, in.sourceV, in.targetV, q)
		if err != nil {
			return err
		}
		if q[0].IsBoolean() {
			fmt.Fprintf(stdout, "%s: certain under repairs = %v\n", q[0].Name, r.Certain)
			continue
		}
		fmt.Fprintf(stdout, "%s: %d certain answer(s) under repairs\n", q[0].Name, len(r.Answers))
		for _, t := range r.Answers {
			fmt.Fprintf(stdout, "  %s\n", t)
		}
	}
	return nil
}

func cmdDatalog(args []string) error {
	fs := flag.NewFlagSet("datalog", flag.ExitOnError)
	program := fs.String("program", "", "datalog program file (required)")
	edbPath := fs.String("edb", "", "extensional database file (required)")
	idbOnly := fs.Bool("idb-only", false, "print only the derived (IDB) facts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *program == "" || *edbPath == "" {
		return fmt.Errorf("-program and -edb are required")
	}
	ptext, err := os.ReadFile(*program)
	if err != nil {
		return err
	}
	prog, err := depparse.ParseDatalog(string(ptext))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *program, err)
	}
	etext, err := os.ReadFile(*edbPath)
	if err != nil {
		return err
	}
	edb, err := pde.ParseInstance(string(etext))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *edbPath, err)
	}
	res, err := prog.Eval(edb, datalog.Options{})
	if err != nil {
		return err
	}
	out := res
	if *idbOnly {
		idb := prog.IDB()
		schema := rel.NewSchema()
		for _, name := range res.RelationNames() {
			if idb[name] {
				schema.Add(name, res.Relation(name).Arity()) //nolint:errcheck // arities consistent by construction
			}
		}
		out = res.Restrict(schema)
	}
	fmt.Fprintf(stdout, "%d facts (%d derived):\n%s\n",
		res.NumFacts(), res.NumFacts()-edb.NumFacts(), pde.FormatInstance(out))
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var in inputs
	in.register(fs)
	candidate := fs.String("candidate", "", "candidate solution instance file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := in.load(true); err != nil {
		return err
	}
	if *candidate == "" {
		return fmt.Errorf("-candidate is required")
	}
	text, err := os.ReadFile(*candidate)
	if err != nil {
		return err
	}
	cand, err := pde.ParseInstance(string(text))
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *candidate, err)
	}
	reasons := pde.ExplainNonSolution(in.settingV, in.sourceV, in.targetV, cand)
	if len(reasons) == 0 {
		fmt.Fprintln(stdout, "candidate IS a solution")
		return nil
	}
	fmt.Fprintln(stdout, "candidate is NOT a solution:")
	for _, r := range reasons {
		fmt.Fprintf(stdout, "  %s\n", r)
	}
	exit(3)
	return nil
}
