// Command pdxlint runs the repro static-analysis suite
// (internal/lintgo): frozenmut, mapdet, ctxpoll, sentinelwrap, nondet,
// nilness. It runs two ways:
//
// Standalone, loading packages through the go toolchain:
//
//	pdxlint [-json] [packages]
//
// As a go vet backend, speaking the cmd/go vettool protocol:
//
//	go vet -vettool=$(pwd)/bin/pdxlint ./...
//
// In both modes the exit status is 0 iff no diagnostics were reported,
// which is what CI gates on. -json emits the diagnostics to stdout in
// the same shape as `pdx vet -json`: an object with a "diagnostics"
// array.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lintgo"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go handshakes: `pdxlint -flags` asks for the supported flag
	// set; `pdxlint -V=full` asks for a version line.
	for _, a := range args {
		switch {
		case a == "-flags":
			return printFlags()
		case strings.HasPrefix(a, "-V"):
			fmt.Println("pdxlint version v1 built with", "repro")
			return 0
		}
	}

	fs := flag.NewFlagSet("pdxlint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pdxlint [-json] [-checks a,b] [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=/path/to/pdxlint ./...\n\nanalyzers:\n")
		for _, a := range lintgo.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdxlint:", err)
		return 2
	}

	// vettool mode: cmd/go invokes `pdxlint <flags> <objdir>/vet.cfg`.
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetConfig(rest[0], analyzers, *jsonOut)
	}
	return runStandalone(rest, analyzers, *jsonOut)
}

// printFlags answers the cmd/go `-flags` handshake: a JSON array
// describing the flags the tool accepts, so `go vet -json` and
// friends can be forwarded.
func printFlags() int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "json", Bool: true, Usage: "emit diagnostics as JSON"},
		{Name: "checks", Bool: false, Usage: "comma-separated analyzer names to run"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		return 2
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

func selectAnalyzers(checks string) ([]*lintgo.Analyzer, error) {
	if checks == "" {
		return lintgo.Analyzers(), nil
	}
	var out []*lintgo.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := lintgo.AnalyzerByName(strings.TrimPrefix(name, "pdxlint/"))
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the package description cmd/go writes to
// <objdir>/vet.cfg for each package (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// runVetConfig analyzes one package as directed by a vet.cfg.
func runVetConfig(path string, analyzers []*lintgo.Analyzer, jsonOut bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdxlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pdxlint: parsing %s: %v\n", path, err)
		return 2
	}
	// cmd/go requires the facts file to exist before it will trust the
	// run; the suite carries no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "pdxlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// go vet also feeds the test variants (pkg_test, pkg [pkg.test]).
	// The suite deliberately skips test files — property tests use
	// seeded randomness, fixtures mutate instances freely — so a
	// package with nothing but test files has nothing to analyze.
	files := cfg.GoFiles[:0:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	pkg, err := lintgo.TypeCheck(cfg.ImportPath, cfg.Dir, files, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "pdxlint:", err)
		return 2
	}
	diags := lintgo.RunAnalyzers(pkg, analyzers)
	return report(diags, jsonOut)
}

// runStandalone loads packages through `go list` and analyzes them
// all.
func runStandalone(patterns []string, analyzers []*lintgo.Analyzer, jsonOut bool) int {
	pkgs, err := lintgo.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdxlint:", err)
		return 2
	}
	var diags []lintgo.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lintgo.RunAnalyzers(pkg, analyzers)...)
	}
	return report(diags, jsonOut)
}

// report prints the diagnostics (JSON on stdout, or vet-style lines on
// stderr) and converts their presence into the exit status.
func report(diags []lintgo.Diagnostic, jsonOut bool) int {
	if jsonOut {
		if diags == nil {
			diags = []lintgo.Diagnostic{}
		}
		out := struct {
			Diagnostics []lintgo.Diagnostic `json:"diagnostics"`
		}{Diagnostics: diags}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, shortenPath(d.String()))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// shortenPath rewrites an absolute file path at the start of a
// diagnostic line relative to the working directory, matching go
// vet's output style.
func shortenPath(line string) string {
	wd, err := os.Getwd()
	if err != nil {
		return line
	}
	if rel, err := filepath.Rel(wd, strings.SplitN(line, ":", 2)[0]); err == nil && !strings.HasPrefix(rel, "..") {
		if i := strings.Index(line, ":"); i >= 0 {
			return rel + line[i:]
		}
	}
	return line
}
