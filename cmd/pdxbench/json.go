package main

// The -json flag turns pdxbench into a machine-readable perf probe: a
// fixed suite of benchmark records (the hot paths the experiments
// exercise, measured via testing.Benchmark) is written as JSON so CI
// and future PRs can diff ns/op, allocs/op, step counts, and search
// nodes against the committed BENCH_PR<k>.json trajectory files.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/qplan"
	"repro/internal/reductions"
	"repro/internal/rel"
	"repro/internal/snap"
	"repro/internal/workload"
	"repro/pde"
)

type benchRecord struct {
	// Name is "<workload>/<variant>", stable across PRs.
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// Steps is the chase step count of one operation (0 when the
	// benchmark is not a chase).
	Steps int `json:"steps,omitempty"`
	// Nodes is the generic-solver search-node count of one operation
	// (0 when the benchmark does not search).
	Nodes int64 `json:"nodes,omitempty"`
	// Merges and Finds are the union-find egd-engine counters of one
	// operation (0 when the benchmark fires no egds).
	Merges int `json:"merges,omitempty"`
	Finds  int `json:"finds,omitempty"`
}

type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// record runs fn under testing.Benchmark and packages the result. fn
// reports domain metrics (steps, nodes) for a single operation through
// the returned pointers, which record reads after the timed runs.
func record(name string, steps *int, nodes *int64, fn func(b *testing.B)) benchRecord {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	rec := benchRecord{
		Name:        name,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}
	if steps != nil {
		rec.Steps = *steps
	}
	if nodes != nil {
		rec.Nodes = *nodes
	}
	return rec
}

// jsonBenchSuite runs the perf-trajectory suite. Each naive/delta pair
// measures the same work under both trigger-collection strategies and
// fails if their chase step counts diverge — the same invariant the
// delta gate test enforces, here on the benchmarked workloads.
func jsonBenchSuite() (*benchReport, error) {
	rep := &benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Theorem 4 LAV acceptance at the headline size.
	lavI, lavJ := workload.LAVInstance(1600, true, rand.New(rand.NewSource(7)))
	lavSteps := map[bool]int{}
	for _, naive := range []bool{true, false} {
		naive := naive
		var steps int
		rec := record(fmt.Sprintf("tractable-lav/n=1600/%s", modeName(naive)), &steps, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, trace, err := core.ExistsSolutionTractable(workload.LAVSetting(), lavI, lavJ,
					core.TractableOptions{NaiveChase: naive})
				if err != nil || !ok {
					b.Fatalf("lav n=1600 rejected: ok=%v err=%v", ok, err)
				}
				steps = trace.StepsST + trace.StepsTS
			}
		})
		lavSteps[naive] = steps
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}
	if lavSteps[true] != lavSteps[false] {
		return nil, fmt.Errorf("lav step counts diverged: naive %d, delta %d", lavSteps[true], lavSteps[false])
	}

	// Chase-only slice of the same LAV run (Σst chase, restrict, Σts
	// chase) — the acceptance number for the semi-naive rewrite,
	// isolated from I_can block analysis and homomorphism checking.
	{
		s := workload.LAVSetting()
		start := rel.Union(lavI, lavJ)
		chaseSteps := map[bool]int{}
		for _, naive := range []bool{true, false} {
			naive := naive
			var steps int
			rec := record(fmt.Sprintf("lav-chase/n=1600/%s", modeName(naive)), &steps, nil, func(b *testing.B) {
				for it := 0; it < b.N; it++ {
					res, err := chase.Run(start, s.StDeps(), chase.Options{NaiveTriggers: naive})
					if err != nil || res.Failed {
						b.Fatalf("lav Σst chase failed: %v", err)
					}
					jcan := res.Instance.Restrict(s.Target)
					res2, err := chase.Run(jcan, s.TsDeps(), chase.Options{NaiveTriggers: naive})
					if err != nil || res2.Failed {
						b.Fatalf("lav Σts chase failed: %v", err)
					}
					steps = res.Steps + res2.Steps
				}
			})
			chaseSteps[naive] = steps
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
		if chaseSteps[true] != chaseSteps[false] {
			return nil, fmt.Errorf("lav-chase step counts diverged: naive %d, delta %d", chaseSteps[true], chaseSteps[false])
		}
	}

	// Warm-path slice of the serving cache: the verdict phase alone,
	// running against a precomputed canonical-instance trace the way
	// pdxd answers a repeat /v1/exists-solution. The gap between this
	// and tractable-lav/n=1600/delta is what the cache saves per hit.
	{
		s := workload.LAVSetting()
		trace, err := core.ChaseCanonicalTractable(s, lavI, lavJ, core.TractableOptions{})
		if err != nil {
			return nil, fmt.Errorf("lav warm trace: %w", err)
		}
		rec := record("tractable-lav/n=1600/warm", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, _, err := core.ExistsSolutionTractableFrom(lavI, trace, core.TractableOptions{})
				if err != nil || !ok {
					b.Fatalf("lav warm verdict: ok=%v err=%v", ok, err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)

		// Incremental re-chase of a 16-fact append against the same
		// trace — the migration cost pdxd pays per cache entry on
		// /v1/instances/{id}/append, versus re-chasing 1600 facts.
		delta := rel.NewInstance()
		for k := 0; k < 16; k++ {
			delta.Add("Person", rel.Const(fmt.Sprintf("newp%d", k)), rel.Const(fmt.Sprintf("newg%d", k%4)))
		}
		var steps int
		rec = record("lav-resume/n=1600/append=16", &steps, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				next, resumed, _, err := core.ResumeCanonicalTractable(s, trace, delta, core.TractableOptions{})
				if err != nil || !resumed {
					b.Fatalf("lav resume: resumed=%v err=%v", resumed, err)
				}
				steps = next.StepsST + next.StepsTS
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)

		// Snapshot codec over the same warm trace: the encode is what the
		// write-behind worker pays per cache fill, the decode (which
		// revalidates the whole body and rebuilds the block
		// decomposition) is the per-entry warm-start price.
		se := &snap.Entry{
			SettingID:  "sha256:bench-setting",
			SourceID:   "sha256:bench-source",
			TargetID:   "sha256:bench-target",
			Kind:       snap.KindTractable,
			SourceText: pde.FormatInstance(lavI),
			TargetText: pde.FormatInstance(lavJ),
			Tractable:  trace,
		}
		data, err := snap.Encode(se)
		if err != nil {
			return nil, fmt.Errorf("snapshot encode: %w", err)
		}
		rec = record("snapshot-save/n=1600", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := snap.Encode(se); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		rec = record("snapshot-load/n=1600", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := snap.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	// Certain answers on the LAV workload: the warm chase-backed path
	// (canonical artifact precomputed, the way pdxd answered repeats
	// before plan compilation) versus the compiled plan that skips the
	// chase entirely. Open queries whose certain answers are non-empty
	// are out of reach for the enumeration path at this size (the
	// intersection never empties, so it must walk adom^nulls image
	// solutions), so the head-to-head record is a Boolean point query
	// falsified by the first image solution — the warm path's best
	// case. Results must agree exactly.
	{
		s := workload.LAVSetting()
		qb := certain.UCQ{{Name: "qb", Body: []dep.Atom{
			dep.NewAtom("Rec", dep.Cst("p0"), dep.Cst("g-none"), dep.Var("u"))}}}
		ct, err := core.ChaseCanonicalTarget(s, lavI, lavJ, core.SolveOptions{})
		if err != nil {
			return nil, fmt.Errorf("lav certain artifact: %w", err)
		}
		var warm, compiled certain.Result
		rec := record("certain-warm/n=1600", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := certain.Boolean(s, lavI, lavJ, qb, certain.Options{Canonical: ct})
				if err != nil {
					b.Fatal(err)
				}
				warm = res
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		if warm.Certain || !warm.SolutionExists || warm.SolutionsExamined != 1 {
			return nil, fmt.Errorf("certain-warm did not falsify on the first solution: %+v", warm)
		}

		plan, err := qplan.Compile(s, qb)
		if err != nil {
			return nil, fmt.Errorf("lav certain compile: %w", err)
		}
		rec = record("certain-compiled/n=1600", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := plan.Eval(lavI, lavJ, qplan.EvalOptions{})
				if err != nil {
					b.Fatal(err)
				}
				compiled = res
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		if compiled.Certain != warm.Certain || compiled.SolutionExists != warm.SolutionExists {
			return nil, fmt.Errorf("certain paths diverged: warm %+v, compiled %+v", warm, compiled)
		}

		// Batch serving slice: 256 open point queries answered from
		// cached plans — the solution probes run once, then each query
		// is one indexed scan. This is the per-request work of
		// /v1/certain-answers/batch after the plan cache warms. The
		// enumeration path cannot cross-check these at this size, so
		// the answers are verified against the generator's ground
		// truth (each person's group in the source instance).
		sp, err := qplan.CompileSetting(s)
		if err != nil {
			return nil, fmt.Errorf("lav setting plan: %w", err)
		}
		const nq = 256
		plans := make([]*qplan.Plan, nq)
		persons := make([]string, nq)
		for k := 0; k < nq; k++ {
			persons[k] = fmt.Sprintf("p%d", k*5+1)
			q := certain.UCQ{{
				Name: fmt.Sprintf("q%d", k),
				Head: []string{"g"},
				Body: []dep.Atom{dep.NewAtom("Rec",
					dep.Cst(persons[k]), dep.Var("g"), dep.Var("u"))},
			}}
			if plans[k], err = sp.CompileQuery(q); err != nil {
				return nil, fmt.Errorf("batch query %d: %w", k, err)
			}
		}
		results := make([]certain.Result, nq)
		rec = record("certain-batch/n=1600/q=256", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex, err := sp.SolutionExists(lavI, lavJ, qplan.EvalOptions{})
				if err != nil || !ex {
					b.Fatalf("batch probes: ex=%v err=%v", ex, err)
				}
				for k := range plans {
					if results[k], err = plans[k].EvalGiven(ex, lavI, lavJ, qplan.EvalOptions{}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		groups := map[string]string{}
		for _, t := range lavI.Relation("Person").Tuples() {
			groups[t[0].ConstText()] = t[1].ConstText()
		}
		for k := range results {
			if len(results[k].Answers) != 1 || results[k].Answers[0][0].ConstText() != groups[persons[k]] {
				return nil, fmt.Errorf("batch query %d: got %v, want group %q of %s",
					k, results[k].Answers, groups[persons[k]], persons[k])
			}
		}
	}

	// Deep recursion: one tgd layer per round, where naive trigger
	// collection is quadratic in depth.
	for _, depth := range []int{8, 16} {
		deps := workload.DeepChainDeps(depth)
		inst := workload.ChainInstance(200)
		chainSteps := map[bool]int{}
		for _, naive := range []bool{true, false} {
			naive := naive
			var steps int
			rec := record(fmt.Sprintf("deep-chain/depth=%d/%s", depth, modeName(naive)), &steps, nil, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := chase.Run(inst, deps, chase.Options{NaiveTriggers: naive})
					if err != nil {
						b.Fatal(err)
					}
					steps = res.Steps
				}
			})
			chainSteps[naive] = steps
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
		if chainSteps[true] != chainSteps[false] {
			return nil, fmt.Errorf("deep-chain depth=%d step counts diverged: naive %d, delta %d",
				depth, chainSteps[true], chainSteps[false])
		}
	}

	// Oblivious chase (fired-key dedup hot path) on the chain workload.
	for _, naive := range []bool{true, false} {
		naive := naive
		deps := workload.ChainDeps(3)
		inst := workload.ChainInstance(100)
		var steps int
		rec := record(fmt.Sprintf("oblivious-chain/depth=3/n=100/%s", modeName(naive)), &steps, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(inst, deps, chase.Options{Oblivious: true, NaiveTriggers: naive})
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Steps
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	// Union-find egd engine on the keyed LAV workload (EXP-UF): every
	// person contributes one key-egd merge, so merge cost dominates.
	// The rebuild record replays the legacy rebuild-on-merge engine
	// via Options.RebuildMerges; both engines must agree on steps and
	// merges or the probe fails.
	{
		s := workload.KeyedLAVSetting()
		deps := append(append([]dep.Dependency{}, s.StDeps()...), s.T...)
		keyedI, keyedJ := workload.KeyedLAVInstance(400)
		start := rel.Union(keyedI, keyedJ)
		keyedSteps := map[bool]int{}
		keyedMerges := map[bool]int{}
		for _, rebuild := range []bool{false, true} {
			rebuild := rebuild
			var steps, merges, finds int
			rec := record(fmt.Sprintf("keyed-chase/n=400/%s", engineName(rebuild)), &steps, nil, func(b *testing.B) {
				for it := 0; it < b.N; it++ {
					res, err := chase.Run(start, deps, chase.Options{RebuildMerges: rebuild})
					if err != nil || res.Failed {
						b.Fatalf("keyed chase failed=%v err=%v", res != nil && res.Failed, err)
					}
					steps, merges, finds = res.Steps, res.Merges, res.Finds
				}
			})
			rec.Merges, rec.Finds = merges, finds
			keyedSteps[rebuild] = steps
			keyedMerges[rebuild] = merges
			rep.Benchmarks = append(rep.Benchmarks, rec)
		}
		if keyedSteps[true] != keyedSteps[false] || keyedMerges[true] != keyedMerges[false] {
			return nil, fmt.Errorf("keyed-chase engines diverged: rebuild %d steps/%d merges, uf %d steps/%d merges",
				keyedSteps[true], keyedMerges[true], keyedSteps[false], keyedMerges[false])
		}

		// Warm keyed append: chase.Resume from the retained fixpoint +
		// union-find versus the keyed-chase cold numbers above. Before
		// the union-find engine this path always fell back.
		prev, err := chase.Run(start, deps, chase.Options{})
		if err != nil || prev.Failed {
			return nil, fmt.Errorf("keyed resume base chase: failed=%v err=%v", prev != nil && prev.Failed, err)
		}
		delta := workload.KeyedLAVAppend(400, 16)
		var steps, merges, finds int
		rec := record("keyed-resume/n=400/append=16", &steps, nil, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				res, resumed, err := chase.Resume(prev, deps, delta, chase.Options{})
				if err != nil || !resumed || res.Failed {
					b.Fatalf("keyed resume: resumed=%v err=%v", resumed, err)
				}
				steps, merges, finds = res.Steps, res.Merges, res.Finds
			}
		})
		rec.Merges, rec.Finds = merges, finds
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	// Cluster routing: the per-request placement lookup every sharded
	// pdxd pays to decide owner-vs-proxy, and the liveness flip that
	// rebuilds the placement on a ring change. The failover record's
	// Nodes field pins the relocation volume when one of three shards
	// dies — the fleet's handoff bill, which consistent hashing bounds
	// near 1/N. Keys that stay with a surviving owner must not move at
	// all, or the probe fails.
	{
		members := []string{
			"http://10.0.0.1:8642", "http://10.0.0.2:8642", "http://10.0.0.3:8642",
		}
		ring, err := cluster.New(members[0], members[1:], 0)
		if err != nil {
			return nil, fmt.Errorf("cluster ring: %w", err)
		}
		for _, m := range members[1:] {
			ring.SetAlive(m, true)
		}
		keys := workload.ClusterKeys(4096)
		before := make([]string, len(keys))
		for i, k := range keys {
			before[i] = ring.Owner(k)
		}
		var sink string
		rec := record("cluster-ring/shards=3/owner-lookup", nil, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink = ring.Owner(keys[i%len(keys)])
			}
		})
		_ = sink
		rep.Benchmarks = append(rep.Benchmarks, rec)

		ring.SetAlive(members[2], false)
		var moved int64
		for i, k := range keys {
			after := ring.Owner(k)
			if after == before[i] {
				continue
			}
			if before[i] != members[2] {
				return nil, fmt.Errorf("cluster-ring: key with a surviving owner relocated on failover")
			}
			moved++
		}
		ring.SetAlive(members[2], true)
		rec = record("cluster-ring/shards=3/failover-rebuild", nil, &moved, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ring.SetAlive(members[2], false)
				ring.SetAlive(members[2], true)
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		if lo, hi := int64(len(keys)/6), int64(len(keys)/2); moved < lo || moved > hi {
			return nil, fmt.Errorf("cluster-ring: failover relocated %d of %d keys, want near 1/3", moved, len(keys))
		}
	}

	// Generic solver on the Theorem 3 clique reduction: tracks search
	// nodes, the cost driver outside C_tract.
	{
		g := graph.Complete(4)
		i, j := reductions.CliqueInstance(g, 4)
		s := reductions.CliqueSetting()
		var nodes int64
		rec := record("clique/k=4/generic", nil, &nodes, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				ok, _, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 100_000_000})
				if err != nil || !ok {
					b.Fatalf("clique k=4 rejected: ok=%v err=%v", ok, err)
				}
				nodes = stats.Nodes
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
	}

	// Parallel tractable run at the headline size: the speculation path
	// over delta collections.
	{
		var steps int
		rec := record("tractable-lav/n=1600/delta-par4", &steps, nil, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, trace, err := core.ExistsSolutionTractable(workload.LAVSetting(), lavI, lavJ,
					core.TractableOptions{Parallelism: 4})
				if err != nil || !ok {
					b.Fatalf("lav n=1600 parallel rejected: ok=%v err=%v", ok, err)
				}
				steps = trace.StepsST + trace.StepsTS
			}
		})
		rep.Benchmarks = append(rep.Benchmarks, rec)
		if steps != lavSteps[false] {
			return nil, fmt.Errorf("lav parallel step count diverged: serial %d, par4 %d", lavSteps[false], steps)
		}
	}

	return rep, nil
}

func modeName(naive bool) string {
	if naive {
		return "naive"
	}
	return "delta"
}

func engineName(rebuild bool) string {
	if rebuild {
		return "rebuild"
	}
	return "uf"
}

// writeJSONReport runs the suite and writes the report to path.
func writeJSONReport(path string) error {
	rep, err := jsonBenchSuite()
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
