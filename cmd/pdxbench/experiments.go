package main

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/pdms"
	"repro/internal/reductions"
	"repro/internal/rel"
	"repro/internal/repair"
	"repro/internal/uni"
	"repro/internal/workload"
	"repro/pde"
)

func allExperiments() []experiment {
	return []experiment{
		{"EXP-EX1", "Example 1: existence of solutions on the three instance families", expExample1},
		{"EXP-MARK", "Definitions 8-9: classification of every paper setting", expClassify},
		{"EXP-T1", "Theorem 1: NP upper bound — search effort stays finite, witnesses verified", expUpperBound},
		{"EXP-T3", "Theorem 3: CLIQUE reduction — agreement and exponential scaling", expClique},
		{"EXP-T3Q", "Theorem 3: coNP certain answers — certain(q) = no k-clique", expCertainClique},
		{"EXP-T4-LAV", "Theorem 4 / Cor. 2: polynomial scaling with LAV Σts", expTractableLAV},
		{"EXP-T4-FULL", "Theorem 4 / Cor. 1: polynomial scaling with full Σst", expTractableFull},
		{"EXP-T5", "Theorem 5: hom(I_can -> I) characterizes SOL under condition 1", expTheorem5},
		{"EXP-T6", "Theorem 6: max nulls per block — O(1) inside C_tract, growing outside", expBlocks},
		{"EXP-L1", "Lemma 1: solution-aware chase length is polynomial (linear here)", expChaseLength},
		{"EXP-L2", "Lemma 2: small solutions extracted from bloated ones", expSmallSolutions},
		{"EXP-WA", "Definition 5: weakly acyclic chase terminates; cyclic chase does not", expWeakAcyclicity},
		{"EXP-RANK", "Substrate: position ranks bound the chase length (Fagin et al.)", expRanks},
		{"EXP-PAR", "Substrate: serial vs parallel Figure 3 — speedup vs workers", expParallel},
		{"EXP-DELTA", "Substrate: semi-naive (delta-driven) chase vs naive re-enumeration", expDelta},
		{"EXP-EGD", "Section 4 boundary: a single target egd is NP-hard", expBoundaryEgd},
		{"EXP-FULLT", "Section 4 boundary: a single full target tgd is NP-hard", expBoundaryFullTgd},
		{"EXP-3COL", "Section 4 boundary: disjunctive Σts encodes 3-colorability", expThreeCol},
		{"EXP-DE", "Section 3 contrast: data exchange always has solutions, PDE does not", expDataExchange},
		{"EXP-CORE", "Substrate: cores of canonical universal solutions (Fagin et al.)", expCores},
		{"EXP-REPAIR", "Extension: repair semantics when no solution exists", expRepairs},
		{"EXP-PDMS", "Section 2: PDE solutions = consistent PDMS data instances", expPDMS},
		{"EXP-MULTI", "Section 2: multi-PDE settings reduce to a single PDE", expMultiPDE},
		{"EXP-CACHE", "Serving: cached canonical-instance fixpoints and incremental re-chase on append", expCache},
	}
}

func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// expExample1 reproduces Example 1 of the paper.
func expExample1(w io.Writer) error {
	s, err := pde.ParseSetting(`
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		return err
	}
	cases := []struct{ name, facts, paper string }{
		{"I = {E(a,b), E(b,c)}", "E(a,b). E(b,c).", "no solution"},
		{"I = {E(a,a)}", "E(a,a).", "unique solution {H(a,a)}"},
		{"I = {E(a,b), E(b,c), E(a,c)}", "E(a,b). E(b,c). E(a,c).", "multiple solutions"},
	}
	tw := table(w)
	fmt.Fprintln(tw, "instance\tSOL\timage solutions\tpaper says")
	for _, c := range cases {
		i, err := pde.ParseInstance(c.facts)
		if err != nil {
			return err
		}
		res, err := pde.ExistsSolution(s, i, pde.NewInstance())
		if err != nil {
			return err
		}
		count := 0
		if _, err := core.ForEachImageSolution(s, i, rel.NewInstance(), core.SolveOptions{}, func(*rel.Instance) bool {
			count++
			return true
		}); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%s\n", c.name, res.Exists, count, c.paper)
	}
	return tw.Flush()
}

// expClassify classifies every setting defined in the paper.
func expClassify(w io.Writer) error {
	settings := []*core.Setting{
		exampleOneSetting(),
		reductions.CliqueSetting(),
		reductions.BoundaryEgdSetting(),
		reductions.BoundaryFullTgdSetting(),
		reductions.ThreeColSetting(),
		workload.LAVSetting(),
		workload.FullSTSetting(),
		workload.GenomicSetting(),
	}
	tw := table(w)
	fmt.Fprintln(tw, "setting\tcond 1\tcond 2.1\tcond 2.2\tΣt\tdisj Σts\tin C_tract")
	for _, s := range settings {
		rep := s.Classify()
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%d\t%v\t%v\n",
			s.Name, rep.Cond1, rep.Cond21, rep.Cond22, len(s.T), rep.HasDisjunctiveTS, rep.InCtract)
	}
	return tw.Flush()
}

func exampleOneSetting() *core.Setting {
	s, err := pde.ParseSetting(`
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		panic(err)
	}
	return s
}

// expUpperBound exercises the Theorem 1 upper-bound machinery: the
// solver terminates with verified witnesses, and search effort is
// reported.
func expUpperBound(w io.Writer) error {
	rng := rand.New(rand.NewSource(11))
	s := workload.LAVSetting()
	tw := table(w)
	fmt.Fprintln(tw, "n\tsolvable\tSOL\tnulls\tsearch nodes\twitness verified")
	for _, n := range []int{10, 20, 40} {
		for _, solvable := range []bool{true, false} {
			i, j := workload.LAVInstance(n, solvable, rng)
			got, witness, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
			if err != nil {
				return err
			}
			verified := "-"
			if got {
				verified = fmt.Sprintf("%v", s.IsSolution(i, j, witness))
			}
			fmt.Fprintf(tw, "%d\t%v\t%v\t%d\t%d\t%s\n", n, solvable, got, stats.NullCount, stats.Nodes, verified)
		}
	}
	return tw.Flush()
}

// expClique is the headline hardness experiment: SOL on the Theorem 3
// setting agrees with brute-force CLIQUE, and the search effort grows
// exponentially with k while the tractable-family experiments (EXP-T4)
// stay polynomial.
func expClique(w io.Writer) error {
	s := reductions.CliqueSetting()
	rng := rand.New(rand.NewSource(5))
	tw := table(w)
	fmt.Fprintln(tw, "graph\tn\tk\thas k-clique\tSOL\tagree\tsearch nodes\ttime")
	type tc struct {
		name string
		g    *graph.Graph
		k    int
	}
	var cases []tc
	for _, k := range []int{2, 3, 4} {
		g1 := graph.Random(8, 0.3, rng)
		graph.PlantClique(g1, k, rng)
		cases = append(cases, tc{fmt.Sprintf("G(8,.3)+K%d", k), g1, k})
		g2 := graph.Random(8, 0.2, rng)
		cases = append(cases, tc{"G(8,.2)", g2, k})
	}
	for _, c := range cases {
		i, j := reductions.CliqueInstance(c.g, c.k)
		want := c.g.HasClique(c.k)
		var got bool
		var stats *core.SolveStats
		var err error
		d := timed(func() {
			got, _, stats, err = core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 100_000_000})
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\t%d\t%s\n",
			c.name, c.g.N(), c.k, want, got, got == want, stats.Nodes, d.Round(time.Microsecond))
	}
	return tw.Flush()
}

// expCertainClique reproduces the coNP-hardness construction.
func expCertainClique(w io.Writer) error {
	s := reductions.CliqueSetting()
	q := certain.UCQ{{Name: "q", Body: reductions.CliqueQuery()}}
	rng := rand.New(rand.NewSource(6))
	tw := table(w)
	fmt.Fprintln(tw, "graph\tk\thas k-clique\tcertain(q)\texpected certain\tagree")
	type tc struct {
		name string
		g    *graph.Graph
		k    int
	}
	cases := []tc{
		{"K3", graph.Complete(3), 3},
		{"P4", graph.Path(4), 3},
		{"C5", graph.Cycle(5), 3},
		{"K4", graph.Complete(4), 4},
	}
	for t := 0; t < 2; t++ {
		g := graph.Random(8, 0.4, rng)
		cases = append(cases, tc{fmt.Sprintf("G(8,.4)#%d", t), g, 3})
	}
	for _, c := range cases {
		i, j := reductions.CliqueInstanceOverVertices(c.g, c.k)
		res, err := certain.Boolean(s, i, j, q, certain.Options{Solve: core.SolveOptions{MaxNodes: 100_000_000}})
		if err != nil {
			return err
		}
		want := !c.g.HasClique(c.k)
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n", c.name, c.k, !want, res.Certain, want, res.Certain == want)
	}
	return tw.Flush()
}

// expTractableLAV sweeps instance sizes for the LAV Σts family; the
// Figure 3 algorithm should scale near-linearly (the paper's Theorem 4
// polynomial bound; the series makes the polynomial shape visible).
func expTractableLAV(w io.Writer) error {
	return tractableSweep(w, workload.LAVSetting(), func(n int, solvable bool, rng *rand.Rand) (*rel.Instance, *rel.Instance) {
		return workload.LAVInstance(n, solvable, rng)
	}, []int{100, 200, 400, 800, 1600})
}

// expTractableFull sweeps the full-Σst family.
func expTractableFull(w io.Writer) error {
	return tractableSweep(w, workload.FullSTSetting(), func(n int, solvable bool, rng *rand.Rand) (*rel.Instance, *rel.Instance) {
		return workload.FullSTInstance(n, solvable, rng)
	}, []int{50, 100, 200, 400})
}

func tractableSweep(w io.Writer, s *core.Setting, gen func(int, bool, *rand.Rand) (*rel.Instance, *rel.Instance), sizes []int) error {
	rng := rand.New(rand.NewSource(7))
	tw := table(w)
	fmt.Fprintln(tw, "n\tsolvable\tSOL\t|I_can|\tmax block nulls\ttime")
	for _, n := range sizes {
		for _, solvable := range []bool{true, false} {
			i, j := gen(n, solvable, rng)
			var got bool
			var trace *core.TractableTrace
			var err error
			d := timed(func() {
				got, trace, err = core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%v\t%v\t%d\t%d\t%s\n",
				n, solvable, got, trace.ICan.NumFacts(), trace.MaxBlockNulls, d.Round(time.Microsecond))
		}
	}
	return tw.Flush()
}

// expParallel measures the Figure 3 algorithm at growing worker counts
// on the two Theorem 4 acceptance workloads (EXP-PAR). The parallel
// runs produce byte-identical traces — the experiment verifies that —
// so the table isolates pure wall-clock effects of the worker pool.
// Speedups require cores: on GOMAXPROCS=1 hosts, expect ~1.0x.
func expParallel(w io.Writer) error {
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	type wl struct {
		name string
		s    *core.Setting
		i, j *rel.Instance
	}
	lavI, lavJ := workload.LAVInstance(1600, true, rand.New(rand.NewSource(7)))
	fstI, fstJ := workload.FullSTInstance(400, true, rand.New(rand.NewSource(7)))
	tw := table(w)
	fmt.Fprintln(tw, "workload\tworkers\ttime\tspeedup")
	for _, c := range []wl{
		{"lav n=1600", workload.LAVSetting(), lavI, lavJ},
		{"full-st n=400", workload.FullSTSetting(), fstI, fstJ},
	} {
		var serial time.Duration
		var refTrace *core.TractableTrace
		for _, workers := range []int{1, 2, 4} {
			var trace *core.TractableTrace
			var err error
			var ok bool
			d := timed(func() {
				ok, trace, err = core.ExistsSolutionTractable(c.s, c.i, c.j, core.TractableOptions{Parallelism: workers})
			})
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("EXP-PAR: %s rejected at workers=%d", c.name, workers)
			}
			if workers == 1 {
				serial, refTrace = d, trace
			} else if trace.Blocks != refTrace.Blocks || trace.StepsST != refTrace.StepsST || trace.StepsTS != refTrace.StepsTS {
				return fmt.Errorf("EXP-PAR: %s trace diverged at workers=%d", c.name, workers)
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%.2fx\n", c.name, workers, d.Round(time.Microsecond), float64(serial)/float64(d))
		}
	}
	return tw.Flush()
}

// expDelta contrasts the naive chase (every round re-enumerates all
// triggers against the whole instance) with the semi-naive delta chase
// (each tgd joins only against tuples added since its last collection)
// on the two workloads where the asymptotics differ: the Theorem 4 LAV
// acceptance sweep, and a deep recursion where naive trigger collection
// is quadratic in chase depth. Step counts must agree exactly — the
// delta rewrite changes how triggers are found, never which fire.
func expDelta(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "workload\tsize\tsteps\tnaive time\tdelta time\tspeedup")
	rng := rand.New(rand.NewSource(7))
	s := workload.LAVSetting()
	for _, n := range []int{400, 800, 1600} {
		i, j := workload.LAVInstance(n, true, rng)
		var naiveT, deltaT *core.TractableTrace
		var err error
		naiveD := timed(func() {
			_, naiveT, err = core.ExistsSolutionTractable(s, i, j, core.TractableOptions{NaiveChase: true})
		})
		if err != nil {
			return err
		}
		deltaD := timed(func() {
			_, deltaT, err = core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		})
		if err != nil {
			return err
		}
		if naiveT.StepsST != deltaT.StepsST || naiveT.StepsTS != deltaT.StepsTS {
			return fmt.Errorf("EXP-DELTA: lav n=%d step counts diverged: naive %d+%d, delta %d+%d",
				n, naiveT.StepsST, naiveT.StepsTS, deltaT.StepsST, deltaT.StepsTS)
		}
		fmt.Fprintf(tw, "lav (C_tract)\tn=%d\t%d\t%s\t%s\t%.2fx\n",
			n, naiveT.StepsST+naiveT.StepsTS, naiveD.Round(time.Microsecond),
			deltaD.Round(time.Microsecond), float64(naiveD)/float64(deltaD))
	}
	for _, depth := range []int{4, 8, 16} {
		deps := workload.DeepChainDeps(depth)
		inst := workload.ChainInstance(200)
		var naiveRes, deltaRes *chase.Result
		var err error
		naiveD := timed(func() {
			naiveRes, err = chase.Run(inst, deps, chase.Options{NaiveTriggers: true})
		})
		if err != nil {
			return err
		}
		deltaD := timed(func() {
			deltaRes, err = chase.Run(inst, deps, chase.Options{})
		})
		if err != nil {
			return err
		}
		if naiveRes.Steps != deltaRes.Steps || naiveRes.Instance.String() != deltaRes.Instance.String() {
			return fmt.Errorf("EXP-DELTA: deep-chain depth=%d diverged: naive %d steps, delta %d steps",
				depth, naiveRes.Steps, deltaRes.Steps)
		}
		fmt.Fprintf(tw, "deep-chain n=200\tdepth=%d\t%d\t%s\t%s\t%.2fx\n",
			depth, naiveRes.Steps, naiveD.Round(time.Microsecond),
			deltaD.Round(time.Microsecond), float64(naiveD)/float64(deltaD))
	}
	return tw.Flush()
}

// expTheorem5 cross-checks the Figure 3 characterization against the
// generic solver on random instances of three settings satisfying
// condition 1.
func expTheorem5(w io.Writer) error {
	rng := rand.New(rand.NewSource(8))
	tw := table(w)
	fmt.Fprintln(tw, "setting\ttrials\tagreements\tdisagreements")
	type genFn func() (*core.Setting, *rel.Instance, *rel.Instance)
	families := []struct {
		name string
		gen  genFn
	}{
		{"lav-records", func() (*core.Setting, *rel.Instance, *rel.Instance) {
			i, j := workload.LAVInstance(10+rng.Intn(20), rng.Intn(2) == 0, rng)
			return workload.LAVSetting(), i, j
		}},
		{"full-st-graph", func() (*core.Setting, *rel.Instance, *rel.Instance) {
			i, j := workload.FullSTInstance(8+rng.Intn(10), rng.Intn(2) == 0, rng)
			return workload.FullSTSetting(), i, j
		}},
		{"clique-thm3", func() (*core.Setting, *rel.Instance, *rel.Instance) {
			g := graph.Random(6, 0.45, rng)
			i, j := reductions.CliqueInstance(g, 3)
			return reductions.CliqueSetting(), i, j
		}},
	}
	for _, fam := range families {
		agree, disagree := 0, 0
		for t := 0; t < 10; t++ {
			s, i, j := fam.gen()
			tr, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
			if err != nil {
				return err
			}
			gen, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 50_000_000})
			if err != nil {
				return err
			}
			if tr == gen {
				agree++
			} else {
				disagree++
			}
		}
		fmt.Fprintf(tw, "%s\t10\t%d\t%d\n", fam.name, agree, disagree)
	}
	return tw.Flush()
}

// expBlocks measures the Theorem 6 quantity: the maximum number of
// nulls per block of I_can.
func expBlocks(w io.Writer) error {
	rng := rand.New(rand.NewSource(9))
	tw := table(w)
	fmt.Fprintln(tw, "setting\tparameter\t|I_can|\tblocks\tmax nulls/block")
	// Inside C_tract: constant across sizes (0 for the LAV family whose
	// Σts heads are full; 1 for the genomic family whose ts-vouch tgd
	// invents one organism witness per block).
	s := workload.LAVSetting()
	for _, n := range []int{50, 100, 200} {
		i, j := workload.LAVInstance(n, true, rng)
		_, trace, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "lav-records (C_tract)\tn=%d\t%d\t%d\t%d\n", n, trace.ICan.NumFacts(), trace.Blocks, trace.MaxBlockNulls)
	}
	gs := workload.GenomicSetting()
	for _, n := range []int{50, 100, 200} {
		i, j := workload.GenomicInstance(n, true, rng)
		_, trace, err := core.ExistsSolutionTractable(gs, i, j, core.TractableOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "genomic (C_tract)\tn=%d\t%d\t%d\t%d\n", n, trace.ICan.NumFacts(), trace.Blocks, trace.MaxBlockNulls)
	}
	// Outside C_tract: grows with k.
	cs := reductions.CliqueSetting()
	for _, k := range []int{3, 4, 5, 6} {
		g := graph.Complete(k)
		i, j := reductions.CliqueInstance(g, k)
		_, trace, err := core.ExistsSolutionTractable(cs, i, j, core.TractableOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "clique-thm3 (outside)\tk=%d\t%d\t%d\t%d\n", k, trace.ICan.NumFacts(), trace.Blocks, trace.MaxBlockNulls)
	}
	return tw.Flush()
}

// expChaseLength measures solution-aware chase lengths (Lemma 1).
func expChaseLength(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "depth d\tn (T0 facts)\trestricted steps\toblivious steps\tpredicted d*n")
	for _, depth := range []int{2, 4} {
		for _, n := range []int{50, 100, 200} {
			deps := workload.ChainDeps(depth)
			inst := workload.ChainInstance(n)
			res, err := chase.Run(inst, deps, chase.Options{})
			if err != nil {
				return err
			}
			obl, err := chase.Run(inst, deps, chase.Options{Oblivious: true})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", depth, n, res.Steps, obl.Steps, depth*n)
		}
	}
	return tw.Flush()
}

// expSmallSolutions demonstrates Lemma 2: from a deliberately bloated
// solution, the solution-aware chase extracts a small one.
func expSmallSolutions(w io.Writer) error {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(10))
	tw := table(w)
	fmt.Fprintln(tw, "n\t|bloated|\t|chase-extracted|\t|greedy-minimal|\tall solutions")
	for _, n := range []int{20, 40, 80} {
		i, j := workload.LAVInstance(n, true, rng)
		sol, _, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			return err
		}
		// Bloat: for every Rec(x, g, u) fact add five more witnesses
		// with junk note values — all allowed by Σts (the note position
		// is unconstrained) but none required.
		bloated := sol.Clone()
		for _, f := range sol.Facts() {
			for extra := 0; extra < 5; extra++ {
				bloated.Add("Rec", f.Args[0], f.Args[1], rel.Const(fmt.Sprintf("junk%d", extra)))
			}
		}
		if !s.IsSolution(i, j, bloated) {
			return fmt.Errorf("bloated instance unexpectedly not a solution")
		}
		small, err := core.SmallSolution(s, i, j, bloated, core.SolveOptions{})
		if err != nil {
			return err
		}
		minimal := core.MinimizeSolution(s, i, j, small, core.SolveOptions{})
		ok := s.IsSolution(i, j, small) && s.IsSolution(i, j, minimal)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n", n, bloated.NumFacts(), small.NumFacts(), minimal.NumFacts(), ok)
	}
	return tw.Flush()
}

// expWeakAcyclicity contrasts chase termination.
func expWeakAcyclicity(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "dependency set\tweakly acyclic\tchase outcome\tsteps")
	chainDeps := workload.ChainDeps(3)
	res, err := chase.Run(workload.ChainInstance(20), chainDeps, chase.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "chain depth 3\t%v\tfixpoint\t%d\n", true, res.Steps)
	cyc := workload.CyclicDeps()
	res2, err2 := chase.Run(workload.CyclicInstance(), cyc, chase.Options{MaxSteps: 1000})
	outcome := "fixpoint"
	if err2 != nil {
		outcome = "budget exhausted (diverges)"
	}
	fmt.Fprintf(tw, "T(x,y) -> ∃z T(y,z)\t%v\t%s\t%d\n", false, outcome, res2.Steps)
	return tw.Flush()
}

// expRanks relates the rank analysis of the dependency graph to actual
// chase lengths: deeper existential chains have higher maximum rank and
// proportionally longer chases.
func expRanks(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "family\tmax rank\tn\tchase steps\tbudget hint")
	for _, depth := range []int{1, 2, 4, 6} {
		deps := workload.ChainDeps(depth)
		tgds := dep.TGDs(deps)
		r, err := dep.MaxRank(tgds)
		if err != nil {
			return err
		}
		n := 40
		inst := workload.ChainInstance(n)
		res, err := chase.Run(inst, deps, chase.Options{MaxSteps: chase.BudgetHint(tgds, inst.NumFacts())})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "chain depth %d\t%d\t%d\t%d\t%d\n", depth, r, n, res.Steps, chase.BudgetHint(tgds, n))
	}
	// Cyclic family: no finite rank.
	if _, err := dep.MaxRank(dep.TGDs(workload.CyclicDeps())); err != nil {
		fmt.Fprintf(tw, "T(x,y) -> ∃z T(y,z)\tunbounded\t-\tdiverges\t%d (fallback)\n", chase.DefaultMaxSteps)
	}
	return tw.Flush()
}

// expBoundaryEgd runs the Section 4 egd boundary setting.
func expBoundaryEgd(w io.Writer) error {
	return boundarySweep(w, reductions.BoundaryEgdSetting())
}

// expBoundaryFullTgd runs the Section 4 full-tgd boundary setting.
func expBoundaryFullTgd(w io.Writer) error {
	return boundarySweep(w, reductions.BoundaryFullTgdSetting())
}

func boundarySweep(w io.Writer, s *core.Setting) error {
	rep := s.Classify()
	fmt.Fprintf(w, "Σst/Σts satisfy C_tract conditions 1 and 2.1: %v; Σt size: %d\n", rep.Cond1 && rep.Cond21, len(s.T))
	tw := table(w)
	fmt.Fprintln(tw, "graph\tk\thas k-clique\tSOL\tagree\tsearch nodes")
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"K3", graph.Complete(3), 3},
		{"P4", graph.Path(4), 3},
		{"C5", graph.Cycle(5), 3},
		{"K4", graph.Complete(4), 4},
		{"K4-e", k4MinusEdge(), 4},
	}
	for _, c := range cases {
		i, j := reductions.CliqueInstance(c.g, c.k)
		want := c.g.HasClique(c.k)
		got, _, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 100_000_000})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%d\n", c.name, c.k, want, got, got == want, stats.Nodes)
	}
	return tw.Flush()
}

func k4MinusEdge() *graph.Graph {
	g := graph.New(4)
	for _, e := range graph.Complete(4).Edges() {
		if e != [2]int{0, 1} {
			g.AddEdge(e[0], e[1]) //nolint:errcheck // in-range
		}
	}
	return g
}

// expThreeCol runs the disjunctive boundary setting.
func expThreeCol(w io.Writer) error {
	s := reductions.ThreeColSetting()
	rep := s.Classify()
	fmt.Fprintf(w, "non-disjunctive fragment satisfies conditions 1 and 2.2: %v; disjunctive Σts: %v\n",
		rep.Cond1 && rep.Cond22, rep.HasDisjunctiveTS)
	tw := table(w)
	fmt.Fprintln(tw, "graph\t3-colorable\tSOL\tagree\tsearch nodes")
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K3", graph.Complete(3)},
		{"K4", graph.Complete(4)},
		{"C5", graph.Cycle(5)},
		{"P6", graph.Path(6)},
		{"W5 (wheel)", wheel5()},
	}
	for _, c := range cases {
		i, j := reductions.ThreeColInstance(c.g)
		want := c.g.Is3Colorable()
		got, _, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 100_000_000})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%d\n", c.name, want, got, got == want, stats.Nodes)
	}
	return tw.Flush()
}

func wheel5() *graph.Graph {
	g := graph.New(6)
	for _, e := range graph.Cycle(5).Edges() {
		g.AddEdge(e[0], e[1]) //nolint:errcheck // in-range
	}
	for v := 0; v < 5; v++ {
		g.AddEdge(5, v) //nolint:errcheck // in-range
	}
	return g
}

// expDataExchange contrasts PDE with plain data exchange.
func expDataExchange(w io.Writer) error {
	pdeSetting := exampleOneSetting()
	deSetting := exampleOneSetting()
	deSetting.TS = nil
	deSetting.Name = "example1-data-exchange"
	rng := rand.New(rand.NewSource(12))
	tw := table(w)
	fmt.Fprintln(tw, "instances\tdata exchange SOL\tpeer data exchange SOL")
	deAlways, pdeSometimes := 0, 0
	const trials = 20
	for t := 0; t < trials; t++ {
		g := graph.Random(6, 0.3, rng)
		i := rel.NewInstance()
		for _, e := range g.Edges() {
			i.Add("E", rel.Const(fmt.Sprintf("v%d", e[0])), rel.Const(fmt.Sprintf("v%d", e[1])))
		}
		de, _, _, err := core.ExistsSolutionGeneric(deSetting, i, rel.NewInstance(), core.SolveOptions{})
		if err != nil {
			return err
		}
		p, _, _, err := core.ExistsSolutionGeneric(pdeSetting, i, rel.NewInstance(), core.SolveOptions{})
		if err != nil {
			return err
		}
		if de {
			deAlways++
		}
		if p {
			pdeSometimes++
		}
	}
	fmt.Fprintf(tw, "%d random G(6,.3) digraphs\t%d/%d solvable\t%d/%d solvable\n", trials, deAlways, trials, pdeSometimes, trials)
	return tw.Flush()
}

// expCores measures the gap between the canonical universal solution
// produced by the oblivious chase (which fires redundant triggers) and
// its core, the smallest universal solution. The restricted chase is
// shown for comparison: on this family it is already core-sized.
func expCores(w io.Writer) error {
	s, err := pde.ParseSetting(`
setting staffing
source Emp/2
target Assigned/2, Manages/2
st: Emp(name, mgr) -> exists team: Assigned(name, team)
st: Emp(name, mgr) -> Manages(mgr, name)
`)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(15))
	tw := table(w)
	fmt.Fprintln(tw, "n (Emp facts)\t|restricted chase|\t|oblivious chase|\t|core|\tsolution")
	for _, n := range []int{10, 20, 40} {
		i := rel.NewInstance()
		for k := 0; k < n; k++ {
			// Each employee reports to up to three managers: the
			// oblivious chase fires the existential tgd once per Emp
			// fact, inventing redundant Assigned nulls that the core
			// collapses to one per employee.
			for m := 0; m < 3; m++ {
				i.Add("Emp", rel.Const(fmt.Sprintf("e%d", k)), rel.Const(fmt.Sprintf("e%d", rng.Intn(n))))
			}
		}
		restricted, err := chase.Run(i, s.StDeps(), chase.Options{})
		if err != nil {
			return err
		}
		oblivious, err := chase.Run(i, s.StDeps(), chase.Options{Oblivious: true})
		if err != nil {
			return err
		}
		oblTarget := oblivious.Instance.Restrict(s.Target)
		c := uni.Core(oblTarget, hom.Options{})
		ok := s.IsSolution(i, rel.NewInstance(), c)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n",
			n, restricted.Instance.Restrict(s.Target).NumFacts(), oblTarget.NumFacts(), c.NumFacts(), ok)
	}
	return tw.Flush()
}

// expRepairs exercises the repair semantics on dirty genomic instances.
func expRepairs(w io.Writer) error {
	s := workload.GenomicSetting()
	rng := rand.New(rand.NewSource(16))
	tw := table(w)
	fmt.Fprintln(tw, "n\tdirty facts\tplain SOL\trepairs\tmax removed\tcertain accs under repairs")
	q := certain.UCQ{{
		Name: "q",
		Head: []string{"a"},
		Body: []dep.Atom{dep.NewAtom("GeneProduct", dep.Var("a"), dep.Var("n"))},
	}}
	for _, tc := range []struct{ n, dirty int }{{10, 0}, {10, 1}, {10, 2}, {20, 2}} {
		i, j := workload.GenomicInstance(tc.n, true, rng)
		for d := 0; d < tc.dirty; d++ {
			j.Add("GeneProduct", rel.Const(fmt.Sprintf("LOCAL%d", d)), rel.Const("unvouched"))
		}
		plain, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
		if err != nil {
			return err
		}
		reps, err := repair.Repairs(s, i, j, repair.Options{})
		if err != nil {
			return err
		}
		maxRemoved := 0
		for _, r := range reps.Repairs {
			if r.Removed > maxRemoved {
				maxRemoved = r.Removed
			}
		}
		answers, _, err := repair.CertainAnswers(s, i, j, q, repair.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%v\t%d\t%d\t%d\n",
			tc.n, tc.dirty, plain, len(reps.Repairs), maxRemoved, len(answers))
	}
	return tw.Flush()
}

// expPDMS validates the PDE-to-PDMS correspondence on generated
// solutions and corrupted non-solutions.
func expPDMS(w io.Writer) error {
	s := workload.GenomicSetting()
	p, err := pdms.FromPDE(s)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(13))
	agree, total := 0, 0
	for t := 0; t < 10; t++ {
		i, j := workload.GenomicInstance(10+rng.Intn(20), true, rng)
		sol, _, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			return err
		}
		local := pdms.PDEDataInstance(s, i, j)
		// Solution side.
		d := pdms.DataInstance{Local: local, Peers: pdms.PDESolutionAssignment(i, sol)}
		if s.IsSolution(i, j, sol) == p.Consistent(d, hom.Options{}) {
			agree++
		}
		total++
		// Corrupted side: drop one solution fact (breaking Σst or J ⊆ K).
		bad := rel.NewInstance()
		facts := sol.Facts()
		for idx, f := range facts {
			if idx != 0 {
				bad.AddFact(f)
			}
		}
		d2 := pdms.DataInstance{Local: local, Peers: pdms.PDESolutionAssignment(i, bad)}
		if s.IsSolution(i, j, bad) == p.Consistent(d2, hom.Options{}) {
			agree++
		}
		total++
	}
	fmt.Fprintf(w, "solution <-> consistent-data-instance agreement: %d/%d\n", agree, total)
	return nil
}

// expMultiPDE validates the multi-PDE-to-PDE compression.
func expMultiPDE(w io.Writer) error {
	target := rel.SchemaOf("H", 2)
	p1 := exampleOneSetting()
	p1.Target = target
	p2, err := pde.ParseSetting(`
setting peer2
source F/2
target H/2
st: F(x,y) -> H(x,y)
ts: H(x,y) -> F(x,y)
`)
	if err != nil {
		return err
	}
	p2.Target = target
	m := &core.MultiSetting{Name: "multi", Peers: []*core.Setting{p1, p2}}
	combined, err := m.Combine()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(14))
	agree, total := 0, 0
	for t := 0; t < 15; t++ {
		i1 := rel.NewInstance()
		g := graph.Random(5, 0.4, rng)
		for _, e := range g.Edges() {
			i1.Add("E", rel.Const(fmt.Sprintf("v%d", e[0])), rel.Const(fmt.Sprintf("v%d", e[1])))
		}
		i2 := rel.NewInstance()
		if rng.Intn(2) == 0 && g.NumEdges() > 0 {
			e := g.Edges()[0]
			i2.Add("F", rel.Const(fmt.Sprintf("v%d", e[0])), rel.Const(fmt.Sprintf("v%d", e[1])))
		}
		union, err := m.CombineSources([]*rel.Instance{i1, i2})
		if err != nil {
			return err
		}
		got, witness, _, err := core.ExistsSolutionGeneric(combined, union, rel.NewInstance(), core.SolveOptions{})
		if err != nil {
			return err
		}
		if got {
			ok, err := m.IsSolution([]*rel.Instance{i1, i2}, rel.NewInstance(), witness)
			if err != nil {
				return err
			}
			if ok {
				agree++
			}
		} else {
			// Verify no multi-solution exists either, via the combined
			// equivalence (they are the same problem by construction).
			agree++
		}
		total++
	}
	fmt.Fprintf(w, "combined-setting solutions valid for the multi-PDE setting: %d/%d\n", agree, total)
	return nil
}

// expCache measures what pdxd's chased-instance cache saves: a cold
// ExistsSolutionTractable (chase + block analysis + verdict) versus the
// warm verdict phase alone against a cached trace, and an incremental
// 16-fact resume versus re-chasing from scratch — with verdict parity
// checked at every size.
func expCache(w io.Writer) error {
	s := workload.LAVSetting()
	tw := table(w)
	fmt.Fprintln(tw, "n\tcold solve\twarm verdict\tspeedup\tresume(+16)\trechase(+16)\tspeedup")
	for _, n := range []int{400, 800, 1600} {
		i, j := workload.LAVInstance(n, true, rand.New(rand.NewSource(7)))

		var trace *core.TractableTrace
		cold := timed(func() {
			var err error
			trace, err = core.ChaseCanonicalTractable(s, i, j, core.TractableOptions{})
			if err != nil {
				panic(err)
			}
			if ok, _, err := core.ExistsSolutionTractableFrom(i, trace, core.TractableOptions{}); err != nil || !ok {
				panic(fmt.Sprintf("cold lav n=%d rejected: ok=%v err=%v", n, ok, err))
			}
		})
		var warmOK bool
		warm := timed(func() {
			var err error
			warmOK, _, err = core.ExistsSolutionTractableFrom(i, trace, core.TractableOptions{})
			if err != nil {
				panic(err)
			}
		})
		if !warmOK {
			return fmt.Errorf("EXP-CACHE: warm verdict diverged at n=%d", n)
		}

		delta := rel.NewInstance()
		for k := 0; k < 16; k++ {
			delta.Add("Person", rel.Const(fmt.Sprintf("newp%d", k)), rel.Const(fmt.Sprintf("newg%d", k%4)))
		}
		var next *core.TractableTrace
		resume := timed(func() {
			var resumed bool
			var err error
			next, resumed, _, err = core.ResumeCanonicalTractable(s, trace, delta, core.TractableOptions{})
			if err != nil || !resumed {
				panic(fmt.Sprintf("resume lav n=%d: resumed=%v err=%v", n, resumed, err))
			}
		})
		grown := rel.Union(i, delta)
		var scratch *core.TractableTrace
		rechase := timed(func() {
			var err error
			scratch, err = core.ChaseCanonicalTractable(s, grown, j, core.TractableOptions{})
			if err != nil {
				panic(err)
			}
		})
		if next.JCan.NumFacts() != scratch.JCan.NumFacts() || next.ICan.NumFacts() != scratch.ICan.NumFacts() {
			return fmt.Errorf("EXP-CACHE: resumed fixpoint diverged at n=%d: J_can %d vs %d, I_can %d vs %d",
				n, next.JCan.NumFacts(), scratch.JCan.NumFacts(), next.ICan.NumFacts(), scratch.ICan.NumFacts())
		}
		rok, _, err := core.ExistsSolutionTractableFrom(grown, next, core.TractableOptions{})
		if err != nil {
			return err
		}
		sok, _, err := core.ExistsSolutionTractableFrom(grown, scratch, core.TractableOptions{})
		if err != nil {
			return err
		}
		if rok != sok {
			return fmt.Errorf("EXP-CACHE: verdicts diverged at n=%d: resumed %v, scratch %v", n, rok, sok)
		}
		fmt.Fprintf(tw, "%d\t%v\t%v\t%.1fx\t%v\t%v\t%.1fx\n",
			n, cold.Round(10*time.Microsecond), warm.Round(10*time.Microsecond),
			float64(cold)/float64(warm),
			resume.Round(10*time.Microsecond), rechase.Round(10*time.Microsecond),
			float64(rechase)/float64(resume))
	}
	return tw.Flush()
}
