// Command pdxbench regenerates every experiment of the reproduction:
// one experiment per theorem, lemma, example, and boundary construction
// of the peer data exchange paper (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	pdxbench              # run all experiments
//	pdxbench -exp EXP-T3  # run one experiment
//	pdxbench -list        # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

type experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

func main() {
	expID := flag.String("exp", "", "run a single experiment by id (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	ran := 0
	for _, e := range exps {
		if *expID != "" && e.ID != *expID {
			continue
		}
		ran++
		fmt.Printf("== %s — %s ==\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pdxbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pdxbench: unknown experiment %q (use -list)\n", *expID)
		os.Exit(2)
	}
}
