// Command pdxbench regenerates every experiment of the reproduction:
// one experiment per theorem, lemma, example, and boundary construction
// of the peer data exchange paper (see DESIGN.md for the index and
// EXPERIMENTS.md for recorded outputs).
//
// Usage:
//
//	pdxbench                        # run all experiments
//	pdxbench -exp EXP-T3            # run one experiment
//	pdxbench -experiment EXP-T3     # same, long spelling
//	pdxbench -list                  # list experiment ids
//	pdxbench -exp EXP-PAR -cpuprofile cpu.out -memprofile mem.out
//	pdxbench -json BENCH_PR4.json   # machine-readable perf suite
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

type experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

func main() {
	os.Exit(run())
}

// run carries the whole program so profile-flushing defers execute on
// every exit path (os.Exit in main would skip them).
func run() int {
	expID := flag.String("exp", "", "run a single experiment by id (default: all)")
	expLong := flag.String("experiment", "", "alias for -exp")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	jsonOut := flag.String("json", "", "run the perf suite and write machine-readable results to this file")
	flag.Parse()
	if *expID == "" {
		*expID = *expLong
	}

	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "pdxbench: -json: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return 0
	}

	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdxbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pdxbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pdxbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize a settled heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pdxbench: -memprofile: %v\n", err)
			}
		}()
	}

	ran := 0
	for _, e := range exps {
		if *expID != "" && e.ID != *expID {
			continue
		}
		ran++
		fmt.Printf("== %s — %s ==\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pdxbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "pdxbench: unknown experiment %q (use -list)\n", *expID)
		return 2
	}
	return 0
}
