// Package repro's root benchmark suite regenerates every experiment of
// the reproduction as a testing.B benchmark (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results). The same
// workloads are printed as tables by cmd/pdxbench; the benchmarks here
// measure them.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/pdms"
	"repro/internal/reductions"
	"repro/internal/rel"
	"repro/internal/repair"
	"repro/internal/uni"
	"repro/internal/workload"
	"repro/pde"
)

func example1Setting(b *testing.B) *pde.Setting {
	b.Helper()
	s, err := pde.ParseSetting(`
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkExample1 (EXP-EX1): SOL on the three Example 1 instances.
func BenchmarkExample1(b *testing.B) {
	s := example1Setting(b)
	instances := make([]*pde.Instance, 0, 3)
	for _, src := range []string{
		"E(a,b). E(b,c).",
		"E(a,a).",
		"E(a,b). E(b,c). E(a,c).",
	} {
		i, err := pde.ParseInstance(src)
		if err != nil {
			b.Fatal(err)
		}
		instances = append(instances, i)
	}
	j := pde.NewInstance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, i := range instances {
			if _, err := pde.ExistsSolution(s, i, j); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkClassify (EXP-MARK): C_tract classification of the paper's
// settings.
func BenchmarkClassify(b *testing.B) {
	settings := []*core.Setting{
		reductions.CliqueSetting(),
		reductions.BoundaryEgdSetting(),
		reductions.BoundaryFullTgdSetting(),
		reductions.ThreeColSetting(),
		workload.LAVSetting(),
		workload.FullSTSetting(),
		workload.GenomicSetting(),
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for _, s := range settings {
			rep := s.Classify()
			_ = rep.InCtract
		}
	}
}

// BenchmarkUpperBoundSmallSolutions (EXP-T1): the generic solver on a
// setting with existential Σst — effort stays linear on this family.
func BenchmarkUpperBoundSmallSolutions(b *testing.B) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(11))
	i, j := workload.LAVInstance(40, true, rng)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ok, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkCliqueReduction (EXP-T3): SOL via the Theorem 3 reduction,
// positive and negative instances, growing k — the NP behaviour shows
// as super-polynomial growth across the k sub-benchmarks.
func BenchmarkCliqueReduction(b *testing.B) {
	s := reductions.CliqueSetting()
	for _, k := range []int{2, 3, 4} {
		for _, planted := range []bool{true, false} {
			rng := rand.New(rand.NewSource(int64(17 * k)))
			g := graph.Random(8, 0.2, rng)
			if planted {
				graph.PlantClique(g, k, rng)
			}
			i, j := reductions.CliqueInstance(g, k)
			want := g.HasClique(k)
			name := fmt.Sprintf("k=%d/clique=%v", k, want)
			b.Run(name, func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					got, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 100_000_000})
					if err != nil || got != want {
						b.Fatalf("got=%v want=%v err=%v", got, want, err)
					}
				}
			})
		}
	}
}

// BenchmarkCertainClique (EXP-T3Q): coNP certain answers on the
// Theorem 3 query.
func BenchmarkCertainClique(b *testing.B) {
	s := reductions.CliqueSetting()
	q := certain.UCQ{{Name: "q", Body: reductions.CliqueQuery()}}
	g := graph.Cycle(5)
	i, j := reductions.CliqueInstanceOverVertices(g, 3)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := certain.Boolean(s, i, j, q, certain.Options{})
		if err != nil || !res.Certain {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}

// BenchmarkTractableLAV (EXP-T4-LAV): the Figure 3 algorithm on the LAV
// family; time per op should grow roughly linearly in n.
func BenchmarkTractableLAV(b *testing.B) {
	s := workload.LAVSetting()
	for _, n := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(7))
		i, j := workload.LAVInstance(n, true, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				ok, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkTractableFullST (EXP-T4-FULL): the Figure 3 algorithm on the
// full-Σst family.
func BenchmarkTractableFullST(b *testing.B) {
	s := workload.FullSTSetting()
	for _, n := range []int{50, 100, 200, 400} {
		rng := rand.New(rand.NewSource(7))
		i, j := workload.FullSTInstance(n, true, rng)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				ok, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkTheorem5Agreement (EXP-T5): Figure 3 vs the generic solver
// on a condition-1 setting outside C_tract.
func BenchmarkTheorem5Agreement(b *testing.B) {
	s := reductions.CliqueSetting()
	g := graph.Cycle(5)
	i, j := reductions.CliqueInstance(g, 3)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tr, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gen, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
		if err != nil || tr != gen {
			b.Fatalf("tractable=%v generic=%v err=%v", tr, gen, err)
		}
	}
}

// BenchmarkBlockNullCounts (EXP-T6): block decomposition of I_can; the
// quantity Theorem 6 bounds.
func BenchmarkBlockNullCounts(b *testing.B) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(9))
	i, j := workload.LAVInstance(200, true, rng)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		_, trace, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if trace.MaxBlockNulls > 1 {
			b.Fatalf("C_tract block with %d nulls", trace.MaxBlockNulls)
		}
	}
}

// BenchmarkSolutionAwareChase (EXP-L1): chase length on the weakly
// acyclic chain family.
func BenchmarkSolutionAwareChase(b *testing.B) {
	deps := workload.ChainDeps(4)
	for _, n := range []int{50, 100, 200} {
		inst := workload.ChainInstance(n)
		// Build a witness by chasing once with fresh nulls.
		res, err := chase.Run(inst, deps, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		witness := res.Instance
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				r, err := chase.RunSolutionAware(inst, deps, witness, chase.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if r.Steps != 4*n {
					b.Fatalf("steps=%d want %d", r.Steps, 4*n)
				}
			}
		})
	}
}

// BenchmarkSmallSolutions (EXP-L2): Lemma 2 extraction from a bloated
// solution.
func BenchmarkSmallSolutions(b *testing.B) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(10))
	i, j := workload.LAVInstance(50, true, rng)
	sol, _, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	bloated := sol.Clone()
	for _, f := range sol.Facts() {
		for extra := 0; extra < 5; extra++ {
			bloated.Add("Rec", f.Args[0], f.Args[1], rel.Const(fmt.Sprintf("junk%d", extra)))
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		small, err := core.SmallSolution(s, i, j, bloated, core.SolveOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if small.NumFacts() >= bloated.NumFacts() {
			b.Fatal("no shrinkage")
		}
	}
}

// BenchmarkWeakAcyclicity (EXP-WA): the Definition 5 test plus chase
// behaviour on both sides of it.
func BenchmarkWeakAcyclicity(b *testing.B) {
	chain := workload.ChainDeps(4)
	inst := workload.ChainInstance(25)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := chase.Run(inst, chain, chase.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := chase.Run(workload.CyclicInstance(), workload.CyclicDeps(), chase.Options{MaxSteps: 200}); err == nil {
			b.Fatal("cyclic chase should exhaust its budget")
		}
	}
}

// BenchmarkBoundaryEgd (EXP-EGD): the Section 4 single-egd boundary
// setting on a positive and a negative instance.
func BenchmarkBoundaryEgd(b *testing.B) {
	benchBoundary(b, reductions.BoundaryEgdSetting())
}

// BenchmarkBoundaryFullTgd (EXP-FULLT): the Section 4 single-full-tgd
// boundary setting.
func BenchmarkBoundaryFullTgd(b *testing.B) {
	benchBoundary(b, reductions.BoundaryFullTgdSetting())
}

func benchBoundary(b *testing.B, s *core.Setting) {
	pos, _ := reductions.CliqueInstance(graph.Complete(3), 3)
	neg, _ := reductions.CliqueInstance(graph.Path(4), 3)
	j := rel.NewInstance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		got, _, _, err := core.ExistsSolutionGeneric(s, pos, j, core.SolveOptions{})
		if err != nil || !got {
			b.Fatalf("positive instance: got=%v err=%v", got, err)
		}
		got, _, _, err = core.ExistsSolutionGeneric(s, neg, j, core.SolveOptions{})
		if err != nil || got {
			b.Fatalf("negative instance: got=%v err=%v", got, err)
		}
	}
}

// BenchmarkBoundary3Col (EXP-3COL): the disjunctive Σts boundary
// setting.
func BenchmarkBoundary3Col(b *testing.B) {
	s := reductions.ThreeColSetting()
	posI, posJ := reductions.ThreeColInstance(graph.Cycle(5))
	negI, negJ := reductions.ThreeColInstance(graph.Complete(4))
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		got, _, _, err := core.ExistsSolutionGeneric(s, posI, posJ, core.SolveOptions{})
		if err != nil || !got {
			b.Fatalf("C5 should be 3-colorable: got=%v err=%v", got, err)
		}
		got, _, _, err = core.ExistsSolutionGeneric(s, negI, negJ, core.SolveOptions{})
		if err != nil || got {
			b.Fatalf("K4 should not be 3-colorable: got=%v err=%v", got, err)
		}
	}
}

// BenchmarkDataExchangeContrast (EXP-DE): the same instances under a
// data exchange setting (Σts = ∅, always solvable) and the PDE setting.
func BenchmarkDataExchangeContrast(b *testing.B) {
	pdeS := example1Setting(b)
	deS := example1Setting(b)
	deS.TS = nil
	i, err := pde.ParseInstance("E(a,b). E(b,c).")
	if err != nil {
		b.Fatal(err)
	}
	j := pde.NewInstance()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		de, _, _, err := core.ExistsSolutionGeneric(deS, i, j, core.SolveOptions{})
		if err != nil || !de {
			b.Fatalf("data exchange must be solvable: %v %v", de, err)
		}
		p, _, _, err := core.ExistsSolutionGeneric(pdeS, i, j, core.SolveOptions{})
		if err != nil || p {
			b.Fatalf("PDE should be unsolvable here: %v %v", p, err)
		}
	}
}

// BenchmarkPDMSEquivalence (EXP-PDMS): translating to a PDMS and
// checking consistency of a solution assignment.
func BenchmarkPDMSEquivalence(b *testing.B) {
	s := workload.GenomicSetting()
	p, err := pdms.FromPDE(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	i, j := workload.GenomicInstance(30, true, rng)
	sol, _, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		b.Fatal(err)
	}
	local := pdms.PDEDataInstance(s, i, j)
	peers := pdms.PDESolutionAssignment(i, sol)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if !p.Consistent(pdms.DataInstance{Local: local, Peers: peers}, hom.Options{}) {
			b.Fatal("solution not consistent")
		}
	}
}

// BenchmarkMultiPDE (EXP-MULTI): combining and solving a two-peer
// multi-PDE setting.
func BenchmarkMultiPDE(b *testing.B) {
	p1 := example1Setting(b)
	p2, err := pde.ParseSetting(`
setting peer2
source F/2
target H/2
st: F(x,y) -> H(x,y)
`)
	if err != nil {
		b.Fatal(err)
	}
	p2.Target = p1.Target
	m := &core.MultiSetting{Name: "bench", Peers: []*core.Setting{p1, p2}}
	i1, _ := pde.ParseInstance("E(a,b). E(b,c). E(a,c). E(q,r).")
	i2, _ := pde.ParseInstance("F(q,r).")
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		combined, err := m.Combine()
		if err != nil {
			b.Fatal(err)
		}
		union, err := m.CombineSources([]*rel.Instance{i1, i2})
		if err != nil {
			b.Fatal(err)
		}
		got, witness, _, err := core.ExistsSolutionGeneric(combined, union, rel.NewInstance(), core.SolveOptions{})
		if err != nil || !got {
			b.Fatalf("got=%v err=%v", got, err)
		}
		ok, err := m.IsSolution([]*rel.Instance{i1, i2}, rel.NewInstance(), witness)
		if err != nil || !ok {
			b.Fatalf("multi-solution check failed: %v %v", ok, err)
		}
	}
}

// BenchmarkCore (EXP-CORE): core computation on an oblivious-chase
// result with redundant nulls.
func BenchmarkCore(b *testing.B) {
	s, err := pde.ParseSetting(`
setting staffing
source Emp/2
target Assigned/2, Manages/2
st: Emp(name, mgr) -> exists team: Assigned(name, team)
st: Emp(name, mgr) -> Manages(mgr, name)
`)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	i := rel.NewInstance()
	for k := 0; k < 30; k++ {
		for m := 0; m < 3; m++ {
			i.Add("Emp", rel.Const(fmt.Sprintf("e%d", k)), rel.Const(fmt.Sprintf("e%d", rng.Intn(30))))
		}
	}
	res, err := chase.Run(i, s.StDeps(), chase.Options{Oblivious: true})
	if err != nil {
		b.Fatal(err)
	}
	bloated := res.Instance.Restrict(s.Target)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c := uni.Core(bloated, hom.Options{})
		if c.NumFacts() >= bloated.NumFacts() {
			b.Fatal("core did not shrink the oblivious chase result")
		}
	}
}

// BenchmarkRepairs (EXP-REPAIR): repair computation on a dirty genomic
// instance.
func BenchmarkRepairs(b *testing.B) {
	s := workload.GenomicSetting()
	rng := rand.New(rand.NewSource(16))
	i, j := workload.GenomicInstance(15, false, rng)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := repair.Repairs(s, i, j, repair.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Repairs) != 1 || res.Intact {
			b.Fatalf("unexpected repair result: %+v", res)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkAblationWholeInstanceHom compares block-wise homomorphism
// checking (Proposition 1) with a whole-instance search.
func BenchmarkAblationWholeInstanceHom(b *testing.B) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(21))
	i, j := workload.LAVInstance(200, true, rng)
	for _, whole := range []bool{false, true} {
		name := "blockwise"
		if whole {
			name = "whole-instance"
		}
		b.Run(name, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				ok, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{WholeInstanceHom: whole})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkAblationNoIndex compares indexed and unindexed homomorphism
// search inside the Figure 3 algorithm.
func BenchmarkAblationNoIndex(b *testing.B) {
	s := workload.FullSTSetting()
	rng := rand.New(rand.NewSource(22))
	i, j := workload.FullSTInstance(100, true, rng)
	for _, noIndex := range []bool{false, true} {
		name := "indexed"
		if noIndex {
			name = "no-index"
		}
		b.Run(name, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				opts := core.TractableOptions{}
				opts.Hom.NoIndex = noIndex
				ok, _, err := core.ExistsSolutionTractable(s, i, j, opts)
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkAblationNaiveEnumeration compares the pruned backtracking
// solver with naive leaf-checked enumeration.
func BenchmarkAblationNaiveEnumeration(b *testing.B) {
	// k = 2 keeps the naive side feasible: the naive enumeration visits
	// every |domain|^nulls leaf, which is astronomically slower than the
	// pruned search already at k = 3.
	s := reductions.CliqueSetting()
	g := graph.Complete(3)
	i, j := reductions.CliqueInstance(g, 2)
	for _, naive := range []bool{false, true} {
		name := "pruned"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for it := 0; it < b.N; it++ {
				got, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{Naive: naive, MaxNodes: 1_000_000_000})
				if err != nil || !got {
					b.Fatalf("got=%v err=%v", got, err)
				}
			}
		})
	}
}

// BenchmarkAblationParallel (EXP-PAR) compares the serial and parallel
// execution of the Figure 3 algorithm on the two Theorem 4 acceptance
// workloads at growing worker counts. Results are byte-identical across
// the sub-benchmarks; only wall-clock changes. On a single-core host
// the w>1 rows measure the overhead of the worker pool rather than a
// speedup.
func BenchmarkAblationParallel(b *testing.B) {
	type bench struct {
		name string
		s    *core.Setting
		i, j *rel.Instance
	}
	lavI, lavJ := workload.LAVInstance(1600, true, rand.New(rand.NewSource(7)))
	fstI, fstJ := workload.FullSTInstance(400, true, rand.New(rand.NewSource(7)))
	for _, w := range []bench{
		{"lav/n=1600", workload.LAVSetting(), lavI, lavJ},
		{"fullst/n=400", workload.FullSTSetting(), fstI, fstJ},
	} {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", w.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for it := 0; it < b.N; it++ {
					ok, _, err := core.ExistsSolutionTractable(w.s, w.i, w.j, core.TractableOptions{Parallelism: workers})
					if err != nil || !ok {
						b.Fatalf("ok=%v err=%v", ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationObliviousChase compares restricted and oblivious
// chase step counts on the chain family.
func BenchmarkAblationObliviousChase(b *testing.B) {
	deps := workload.ChainDeps(3)
	inst := workload.ChainInstance(100)
	for _, oblivious := range []bool{false, true} {
		name := "restricted"
		if oblivious {
			name = "oblivious"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				if _, err := chase.Run(inst, deps, chase.Options{Oblivious: oblivious}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDeltaChase (EXP-DELTA): semi-naive (delta-driven)
// trigger collection against the naive full rescan, on the workloads
// where rounds dominate: the LAV tractable path (two chase phases per
// call) and the chain chase (depth+1 rounds, each adding one layer).
func BenchmarkAblationDeltaChase(b *testing.B) {
	lavS := workload.LAVSetting()
	lavI, lavJ := workload.LAVInstance(1600, true, rand.New(rand.NewSource(7)))
	for _, naive := range []bool{true, false} {
		mode := "delta"
		if naive {
			mode = "naive"
		}
		b.Run("lav/n=1600/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				ok, _, err := core.ExistsSolutionTractable(lavS, lavI, lavJ, core.TractableOptions{NaiveChase: naive})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
			}
		})
	}
	deps := workload.ChainDeps(3)
	inst := workload.ChainInstance(100)
	for _, naive := range []bool{true, false} {
		mode := "delta"
		if naive {
			mode = "naive"
		}
		b.Run("chain/depth=3/n=100/"+mode, func(b *testing.B) {
			b.ReportAllocs()
			for it := 0; it < b.N; it++ {
				if _, err := chase.Run(inst, deps, chase.Options{NaiveTriggers: naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChaseDeepRecursion (EXP-DELTA): the deep-recursion scaling
// series. DeepChainDeps lists the chain tgds deepest first, so each
// round fills exactly one layer and the chase takes depth+1 rounds;
// the naive chase re-enumerates every filled layer's body every round
// — Θ(depth²·n) tuple work — while the semi-naive chase skips
// unchanged layers via their watermarks and touches each layer's facts
// O(1) times. The gap widens linearly with depth.
func BenchmarkChaseDeepRecursion(b *testing.B) {
	for _, depth := range []int{4, 8, 16} {
		deps := workload.DeepChainDeps(depth)
		inst := workload.ChainInstance(200)
		for _, naive := range []bool{true, false} {
			mode := "delta"
			if naive {
				mode = "naive"
			}
			b.Run(fmt.Sprintf("depth=%d/n=200/%s", depth, mode), func(b *testing.B) {
				b.ReportAllocs()
				var steps int
				for it := 0; it < b.N; it++ {
					res, err := chase.Run(inst, deps, chase.Options{NaiveTriggers: naive})
					if err != nil {
						b.Fatal(err)
					}
					steps = res.Steps
				}
				if want := depth * 200; steps != want {
					b.Fatalf("chase fired %d steps, want %d", steps, want)
				}
			})
		}
	}
}

// BenchmarkChaseEgdMerge (EXP-UF): egd-merge scaling on the keyed LAV
// workload, where every person contributes exactly one key-egd merge.
// The union-find engine rewrites only the tuples that mention a merged
// value (near-linear total work), while the RebuildMerges ablation
// replays the legacy engine: each merge rebuilds the instance and
// resets every watermark, so the chase re-enumerates all triggers
// after every merge — Θ(n²) tuple work across n merges.
func BenchmarkChaseEgdMerge(b *testing.B) {
	s := workload.KeyedLAVSetting()
	deps := append(append([]dep.Dependency{}, s.StDeps()...), s.T...)
	for _, n := range []int{100, 400, 1600} {
		i, j := workload.KeyedLAVInstance(n)
		start := rel.Union(i, j)
		for _, rebuild := range []bool{false, true} {
			mode := "uf"
			if rebuild {
				mode = "rebuild"
			}
			b.Run(fmt.Sprintf("keyedlav/n=%d/%s", n, mode), func(b *testing.B) {
				b.ReportAllocs()
				for it := 0; it < b.N; it++ {
					res, err := chase.Run(start, deps, chase.Options{RebuildMerges: rebuild})
					if err != nil {
						b.Fatal(err)
					}
					if res.Failed || res.Merges != n {
						b.Fatalf("failed=%v merges=%d want %d", res.Failed, res.Merges, n)
					}
				}
			})
		}
	}
}

// BenchmarkChaseKeyedResume (EXP-UF): warm append on a keyed setting.
// The cold path re-chases the enlarged start from scratch; the warm
// path resumes from the retained fixpoint + union-find, canonicalizes
// the appended facts through the merge classes, and only chases the
// delta. Before the union-find engine, any egd-bearing setting forced
// the cold path.
func BenchmarkChaseKeyedResume(b *testing.B) {
	s := workload.KeyedLAVSetting()
	deps := append(append([]dep.Dependency{}, s.StDeps()...), s.T...)
	const n, k = 1600, 16
	i, j := workload.KeyedLAVInstance(n)
	start := rel.Union(i, j)
	prev, err := chase.Run(start, deps, chase.Options{})
	if err != nil || prev.Failed {
		b.Fatalf("base chase: failed=%v err=%v", prev != nil && prev.Failed, err)
	}
	delta := workload.KeyedLAVAppend(n, k)
	b.Run(fmt.Sprintf("keyedlav/n=%d/k=%d/warm", n, k), func(b *testing.B) {
		b.ReportAllocs()
		for it := 0; it < b.N; it++ {
			res, resumed, err := chase.Resume(prev, deps, delta, chase.Options{})
			if err != nil || !resumed || res.Failed {
				b.Fatalf("resumed=%v failed=%v err=%v", resumed, res != nil && res.Failed, err)
			}
		}
	})
	cold := rel.Union(start, delta)
	b.Run(fmt.Sprintf("keyedlav/n=%d/k=%d/cold", n, k), func(b *testing.B) {
		b.ReportAllocs()
		for it := 0; it < b.N; it++ {
			res, err := chase.Run(cold, deps, chase.Options{})
			if err != nil || res.Failed {
				b.Fatalf("failed=%v err=%v", res != nil && res.Failed, err)
			}
		}
	})
}
