// Package pde is the public API of the peer data exchange library, a
// reproduction of "Peer Data Exchange" (Fuxman, Kolaitis, Miller, Tan —
// PODS 2005).
//
// A peer data exchange (PDE) setting relates an authoritative source
// peer to a target peer through source-to-target tgds Σst (what the
// source offers), target-to-source tgds Σts (what the target is willing
// to accept), and target constraints Σt. Given a source instance I and
// a target instance J, the central questions are:
//
//   - SOL(P): can J be augmented to a solution J' so that (I, J')
//     satisfies every constraint? (Definition 3; NP-complete in general,
//     Theorem 3; polynomial for the class C_tract, Theorem 4.)
//   - certain answers: which query answers hold in every solution?
//     (Definition 4; coNP-complete for conjunctive queries.)
//
// # Quick start
//
//	s, _ := pde.ParseSetting(`
//	    source E/2
//	    target H/2
//	    st: E(x,z), E(z,y) -> H(x,y)
//	    ts: H(x,y) -> E(x,y)
//	`)
//	i, _ := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
//	j := pde.NewInstance()
//	res, _ := pde.ExistsSolution(s, i, j)
//	fmt.Println(res.Exists) // true
//
// The heavy lifting lives in the internal packages (chase, hom, core);
// this package re-exports the stable surface and picks the right
// algorithm per setting.
package pde

import (
	"context"
	"fmt"

	"repro/internal/certain"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/depparse"
	"repro/internal/lint"
	"repro/internal/par"
	"repro/internal/qplan"
	"repro/internal/rel"
)

// Typed sentinels for the failure modes of long-running calls. They
// round-trip through every façade entry point, so callers can match
// them with errors.Is:
//
//	res, err := pde.ExistsSolutionContext(ctx, s, i, j, opts)
//	switch {
//	case errors.Is(err, pde.ErrCanceled):     // ctx canceled or deadline hit
//	case errors.Is(err, pde.ErrSearchBudget): // Options.Solve.MaxNodes exhausted
//	case errors.Is(err, pde.ErrChaseBudget):  // chase step budget exhausted
//	}
//
// Errors matching ErrCanceled also match the context package's own
// context.Canceled or context.DeadlineExceeded, whichever applied.
var (
	// ErrSearchBudget reports that the generic solver exhausted its
	// node budget (Options.Solve.MaxNodes) before deciding.
	ErrSearchBudget = core.ErrSearchBudget
	// ErrCanceled reports that a context canceled the computation
	// before it completed.
	ErrCanceled = par.ErrCanceled
	// ErrChaseBudget reports that a chase phase exhausted its step
	// budget before reaching a fixpoint.
	ErrChaseBudget = chase.ErrBudgetExhausted
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Setting is a peer data exchange setting (S, T, Σst, Σts, Σt).
	Setting = core.Setting
	// MultiSetting is a family of settings sharing one target peer.
	MultiSetting = core.MultiSetting
	// Instance is a set of facts over a relational schema.
	Instance = rel.Instance
	// Schema declares relation names and arities.
	Schema = rel.Schema
	// Value is a constant or a labeled null.
	Value = rel.Value
	// Tuple is an ordered list of values.
	Tuple = rel.Tuple
	// Fact is a tuple tagged with its relation.
	Fact = rel.Fact
	// TGD is a tuple-generating dependency.
	TGD = dep.TGD
	// EGD is an equality-generating dependency.
	EGD = dep.EGD
	// CQ is a conjunctive query over the target schema.
	CQ = certain.CQ
	// UCQ is a union of conjunctive queries.
	UCQ = certain.UCQ
	// CtractReport explains a C_tract classification (Definition 9).
	CtractReport = dep.CtractReport
	// SolveOptions configures the generic (NP) solver.
	SolveOptions = core.SolveOptions
	// TractableOptions configures the Figure 3 algorithm.
	TractableOptions = core.TractableOptions
	// VetReport is the result of a static-analysis pass over a setting.
	VetReport = lint.Report
	// Plan is a compiled certain-answer plan; see CompileCertain.
	Plan = qplan.Plan
	// SettingPlan is the per-setting half of a compiled plan: the origin
	// table and solution probes shared by every query plan of a setting.
	SettingPlan = qplan.SettingPlan
	// CompiledEvalOptions tunes direct evaluation of a compiled plan
	// (Plan.Eval); the zero value is serial with no cancellation.
	CompiledEvalOptions = qplan.EvalOptions
	// Diagnostic is one vet finding with a stable check ID, a severity,
	// a file:line:col position, and a machine-readable witness.
	Diagnostic = lint.Diagnostic
	// Severity grades a diagnostic: error, warn, or info.
	Severity = lint.Severity
)

// The vet severity levels.
const (
	SeverityError = lint.SeverityError
	SeverityWarn  = lint.SeverityWarn
	SeverityInfo  = lint.SeverityInfo
)

// CompiledFallbackReasons lists every reason the compiled
// certain-answer path may decline a setting, query, or instance pair
// (see Options.Compiled); stable strings, suitable as metric labels.
var CompiledFallbackReasons = qplan.FallbackReasons

// ClassifyCompilable reports why the compiled certain-answer path
// declines the setting, or "" when CompileSettingPlan succeeds.
func ClassifyCompilable(s *Setting) string { return qplan.ClassifySetting(s) }

// CompileSettingPlan compiles the setting's origin table and solution
// probes once, for reuse across queries (see SettingPlan.CompileQuery).
// Settings outside the compilable fragment return an error whose
// CompiledFallbackReason is non-empty.
func CompileSettingPlan(s *Setting) (*SettingPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return qplan.CompileSetting(s)
}

// CompileCertain compiles a certain-answer plan for the query over the
// setting: evaluation over (I, J) returns exactly the answers of
// CertainBool / CertainAnswers without chasing or enumerating
// solutions. Settings outside the compilable fragment return an error
// whose CompiledFallbackReason is non-empty.
func CompileCertain(s *Setting, q UCQ) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return qplan.Compile(s, q)
}

// CompiledFallbackReason extracts the fallback reason from an error of
// the compiled path, or "" for nil and for genuine errors.
func CompiledFallbackReason(err error) string { return qplan.ReasonOf(err) }

// Const returns the constant with the given text.
func Const(s string) Value { return rel.Const(s) }

// NullValue returns the labeled null with the given label.
func NullValue(id int) Value { return rel.Null(id) }

// NewInstance returns an empty instance.
func NewInstance() *Instance { return rel.NewInstance() }

// ParseSetting parses the text form of a setting; see
// depparse.ParseSetting for the grammar.
func ParseSetting(src string) (*Setting, error) { return depparse.ParseSetting(src) }

// ParseInstance parses the text form of an instance (one fact per
// line).
func ParseInstance(src string) (*Instance, error) { return depparse.ParseInstance(src) }

// ParseQueries parses a query file into unions of conjunctive queries
// grouped by head name.
func ParseQueries(src string) ([]UCQ, error) { return depparse.ParseQueries(src) }

// FormatInstance renders an instance in the ParseInstance format.
func FormatInstance(inst *Instance) string { return depparse.FormatInstance(inst) }

// FormatSetting renders a setting in the ParseSetting format.
func FormatSetting(s *Setting) string { return depparse.FormatSetting(s) }

// Classify reports whether the setting belongs to the tractable class
// C_tract of Definition 9, with explanations.
func Classify(s *Setting) CtractReport { return s.Classify() }

// Vet runs the static-analysis pipeline over the text of a setting and
// returns positioned diagnostics: well-formedness errors, lost-guarantee
// warnings (outside C_tract, target tgds not weakly acyclic), and
// dead-weight findings. The file name is only used to label diagnostics.
// Parse failures are reported as a "parse-error" diagnostic, never as a
// Go error.
func Vet(src, file string) *VetReport { return lint.Vet(src, file) }

// Strategy names the algorithm ExistsSolution selected.
type Strategy string

const (
	// StrategyTractable is the polynomial-time algorithm of Figure 3,
	// used for settings in C_tract.
	StrategyTractable Strategy = "tractable"
	// StrategyGeneric is the complete backtracking solver, used outside
	// C_tract (exponential in the worst case, per Theorem 3).
	StrategyGeneric Strategy = "generic"
)

// Result reports an ExistsSolution or FindSolution call.
type Result struct {
	// Exists reports whether a solution exists.
	Exists bool
	// Solution is a witness solution (FindSolution always fills it when
	// Exists; ExistsSolution fills it when the generic solver ran).
	Solution *Instance
	// Strategy is the algorithm used.
	Strategy Strategy
	// Nodes is the number of search-tree nodes the generic solver
	// visited; 0 when the tractable algorithm ran (it searches no
	// assignment tree).
	Nodes int64
}

// Options configures ExistsSolution and FindSolution.
type Options struct {
	// ForceGeneric skips the C_tract dispatch and always runs the
	// complete solver.
	ForceGeneric bool
	// Parallelism bounds the workers of every parallel phase (chase
	// trigger search, block checks, the solver's violation scan): 0
	// means GOMAXPROCS, 1 forces the serial paths. It is folded into
	// Solve and Tractable wherever they do not set their own value;
	// results are byte-identical at every setting.
	Parallelism int
	// Seed perturbs parallel work distribution (never results); folded
	// like Parallelism.
	Seed int64
	// NaiveChase disables the semi-naive (delta-driven) trigger
	// collection in every chase the call runs, re-enumerating triggers
	// against the whole instance each round. Results are byte-identical
	// either way; the knob exists for ablation benchmarks and parity
	// gates. Folded into Solve and Tractable.
	NaiveChase bool
	// Compiled makes CertainBool and CertainAnswers try the compiled
	// plan path first (package qplan): for settings in the compilable
	// C_tract fragment the chase and solution enumeration are skipped
	// entirely. Outside the fragment the call falls back to the
	// enumeration path automatically and reports why in
	// CertainResult.FallbackReason. Results are byte-identical on both
	// paths (SolutionsExamined excepted: the compiled path examines
	// none).
	Compiled bool
	// Solve configures the generic solver.
	Solve SolveOptions
	// Tractable configures the Figure 3 algorithm.
	Tractable TractableOptions
}

// withContext folds a cancellation context plus the façade-level knobs
// into the per-algorithm option structs, preserving any value those
// structs already set.
func (o Options) withContext(ctx context.Context) Options {
	o = o.normalized()
	if ctx != nil {
		if o.Solve.Ctx == nil {
			o.Solve.Ctx = ctx
		}
		if o.Tractable.Ctx == nil {
			o.Tractable.Ctx = ctx
		}
	}
	return o
}

// normalized folds the façade-level knobs (Parallelism, Seed) into the
// per-algorithm option structs, preserving any value those structs
// already set.
func (o Options) normalized() Options {
	if o.Parallelism != 0 {
		if o.Solve.Parallelism == 0 {
			o.Solve.Parallelism = o.Parallelism
		}
		if o.Tractable.Parallelism == 0 {
			o.Tractable.Parallelism = o.Parallelism
		}
	}
	if o.Seed != 0 {
		if o.Solve.Seed == 0 {
			o.Solve.Seed = o.Seed
		}
		if o.Tractable.Seed == 0 {
			o.Tractable.Seed = o.Seed
		}
	}
	if o.NaiveChase {
		o.Solve.NaiveChase = true
		o.Tractable.NaiveChase = true
	}
	return o
}

// ExistsSolution decides SOL(P) for (I, J): it runs the polynomial
// Figure 3 algorithm when the setting is in C_tract and the complete
// backtracking solver otherwise.
func ExistsSolution(s *Setting, i, j *Instance, opts ...Options) (Result, error) {
	return solve(s, i, j, false, options(opts).normalized())
}

// ExistsSolutionContext is ExistsSolution with cancellation: when ctx
// is canceled or its deadline expires, the solver, the chase, and the
// homomorphism searches all stop promptly and the call returns an
// error matching pde.ErrCanceled (and the ctx's own error).
func ExistsSolutionContext(ctx context.Context, s *Setting, i, j *Instance, opts ...Options) (Result, error) {
	return solve(s, i, j, false, options(opts).withContext(ctx))
}

// FindSolution decides SOL(P) and constructs a witness solution when
// one exists.
func FindSolution(s *Setting, i, j *Instance, opts ...Options) (Result, error) {
	return solve(s, i, j, true, options(opts).normalized())
}

// FindSolutionContext is FindSolution with cancellation; see
// ExistsSolutionContext.
func FindSolutionContext(ctx context.Context, s *Setting, i, j *Instance, opts ...Options) (Result, error) {
	return solve(s, i, j, true, options(opts).withContext(ctx))
}

func options(opts []Options) Options {
	if len(opts) == 0 {
		return Options{}
	}
	if len(opts) > 1 {
		panic("pde: pass at most one Options")
	}
	return opts[0]
}

func solve(s *Setting, i, j *Instance, wantWitness bool, o Options) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := validateInstances(s, i, j); err != nil {
		return Result{}, err
	}
	if !o.ForceGeneric && s.Classify().InCtract {
		if wantWitness {
			sol, _, err := core.FindSolutionTractable(s, i, j, o.Tractable)
			if err != nil {
				return Result{}, err
			}
			return Result{Exists: sol != nil, Solution: sol, Strategy: StrategyTractable}, nil
		}
		ok, _, err := core.ExistsSolutionTractable(s, i, j, o.Tractable)
		if err != nil {
			return Result{}, err
		}
		return Result{Exists: ok, Strategy: StrategyTractable}, nil
	}
	ok, witness, stats, err := core.ExistsSolutionGeneric(s, i, j, o.Solve)
	if err != nil {
		return Result{}, err
	}
	res := Result{Exists: ok, Solution: witness, Strategy: StrategyGeneric}
	if stats != nil {
		res.Nodes = stats.Nodes
	}
	return res, nil
}

// IsSolution checks Definition 2 directly: J ⊆ J', (I, J') ⊨ Σst ∪ Σts,
// and J' ⊨ Σt.
func IsSolution(s *Setting, i, j, jp *Instance) bool {
	return s.IsSolution(i, j, jp)
}

// ExplainNonSolution lists the reasons J' fails to be a solution, in
// human-readable form; empty for solutions.
func ExplainNonSolution(s *Setting, i, j, jp *Instance) []string {
	var out []string
	for _, v := range s.SolutionViolations(i, j, jp) {
		out = append(out, v.String())
	}
	return out
}

// CertainResult reports a certain-answers computation.
type CertainResult struct {
	// SolutionExists is false when (I, J) has no solution at all; every
	// query is then vacuously certain.
	SolutionExists bool
	// Certain is the verdict for Boolean queries.
	Certain bool
	// Answers holds the certain tuples for open queries, sorted.
	Answers []Tuple
	// SolutionsExamined counts the image solutions the evaluator
	// enumerated before settling the verdict; always 0 on the compiled
	// path.
	SolutionsExamined int
	// Compiled reports that the compiled plan path produced the result
	// (Options.Compiled was set and the setting compiled).
	Compiled bool
	// FallbackReason is why the compiled path declined when
	// Options.Compiled was set but the enumeration path ran; "" when the
	// compiled path ran or was not requested.
	FallbackReason string
}

// CertainBool computes certain(q, (I, J)) for a Boolean union of
// conjunctive queries (Definition 4).
func CertainBool(s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	return certainBool(s, i, j, q, options(opts).normalized())
}

// CertainBoolContext is CertainBool with cancellation; see
// ExistsSolutionContext.
func CertainBoolContext(ctx context.Context, s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	return certainBool(s, i, j, q, options(opts).withContext(ctx))
}

func certainBool(s *Setting, i, j *Instance, q UCQ, o Options) (CertainResult, error) {
	if err := prepareCertain(s, i, j, q); err != nil {
		return CertainResult{}, err
	}
	var fallback string
	if o.Compiled {
		out, done, err := certainCompiled(s, i, j, q, o)
		if done {
			return out, err
		}
		fallback = out.FallbackReason
	}
	res, err := certain.Boolean(s, i, j, q, certain.Options{Solve: o.Solve})
	if err != nil {
		return CertainResult{}, err
	}
	return CertainResult{SolutionExists: res.SolutionExists, Certain: res.Certain, SolutionsExamined: res.SolutionsExamined, FallbackReason: fallback}, nil
}

// certainCompiled runs the compiled plan path. done reports that the
// returned result (or error) is final; otherwise the caller must run
// the enumeration path, carrying out.FallbackReason into its result.
func certainCompiled(s *Setting, i, j *Instance, q UCQ, o Options) (out CertainResult, done bool, err error) {
	p, err := qplan.Compile(s, q)
	if err != nil {
		if reason := qplan.ReasonOf(err); reason != "" {
			return CertainResult{FallbackReason: reason}, false, nil
		}
		return CertainResult{}, true, err
	}
	res, err := p.Eval(i, j, qplan.EvalOptions{Parallelism: o.Solve.Parallelism, Seed: o.Solve.Seed, Ctx: o.Solve.Ctx})
	if err != nil {
		if reason := qplan.ReasonOf(err); reason != "" {
			return CertainResult{FallbackReason: reason}, false, nil
		}
		return CertainResult{}, true, err
	}
	return CertainResult{
		SolutionExists: res.SolutionExists,
		Certain:        res.Certain,
		Answers:        res.Answers,
		Compiled:       true,
	}, true, nil
}

// CertainAnswers computes the certain answers of an open union of
// conjunctive queries on (I, J).
func CertainAnswers(s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	return certainAnswers(s, i, j, q, options(opts).normalized())
}

// CertainAnswersContext is CertainAnswers with cancellation; see
// ExistsSolutionContext.
func CertainAnswersContext(ctx context.Context, s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	return certainAnswers(s, i, j, q, options(opts).withContext(ctx))
}

func certainAnswers(s *Setting, i, j *Instance, q UCQ, o Options) (CertainResult, error) {
	if err := prepareCertain(s, i, j, q); err != nil {
		return CertainResult{}, err
	}
	var fallback string
	if o.Compiled {
		out, done, err := certainCompiled(s, i, j, q, o)
		if done {
			return out, err
		}
		fallback = out.FallbackReason
	}
	res, err := certain.Answers(s, i, j, q, certain.Options{Solve: o.Solve})
	if err != nil {
		return CertainResult{}, err
	}
	return CertainResult{SolutionExists: res.SolutionExists, Answers: res.Answers, SolutionsExamined: res.SolutionsExamined, FallbackReason: fallback}, nil
}

func prepareCertain(s *Setting, i, j *Instance, q UCQ) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := validateInstances(s, i, j); err != nil {
		return err
	}
	return q.Validate(s.Target)
}

func validateInstances(s *Setting, i, j *Instance) error {
	if err := i.ValidateAgainst(s.Source); err != nil {
		return fmt.Errorf("pde: source instance: %w", err)
	}
	if err := j.ValidateAgainst(s.Target); err != nil {
		return fmt.Errorf("pde: target instance: %w", err)
	}
	return nil
}
