package pde_test

import (
	"fmt"
	"log"

	"repro/pde"
)

// Example reproduces Example 1 of the paper end to end.
func Example() {
	setting, err := pde.ParseSetting(`
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, _ := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	res, err := pde.FindSolution(setting, source, pde.NewInstance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exists:", res.Exists)
	fmt.Println("strategy:", res.Strategy)
	fmt.Println(pde.FormatInstance(res.Solution))
	// Output:
	// exists: true
	// strategy: tractable
	// H(a, c).
}

// ExampleClassify shows the C_tract classification of the Theorem 3
// setting.
func ExampleClassify() {
	setting, err := pde.ParseSetting(`
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
ts: P(x,z,y,w), P(y,z2,y2,w2) -> S(w,z2)
`)
	if err != nil {
		log.Fatal(err)
	}
	rep := pde.Classify(setting)
	fmt.Println("in C_tract:", rep.InCtract)
	fmt.Println("condition 1:", rep.Cond1)
	fmt.Println("condition 2.1:", rep.Cond21)
	fmt.Println("condition 2.2:", rep.Cond22)
	// Output:
	// in C_tract: false
	// condition 1: true
	// condition 2.1: false
	// condition 2.2: false
}

// ExampleCertainAnswers computes the certain answers of an open query.
func ExampleCertainAnswers() {
	setting, err := pde.ParseSetting(`
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, _ := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	queries, _ := pde.ParseQueries("q(x, y) :- H(x, y)")
	res, err := pde.CertainAnswers(setting, source, pde.NewInstance(), queries[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Answers {
		fmt.Println(t)
	}
	// Output:
	// (a, c)
}

// ExampleExistsSolution_noSolution shows the PDE phenomenon the paper
// opens with: unlike data exchange, a solution may not exist.
func ExampleExistsSolution_noSolution() {
	setting, err := pde.ParseSetting(`
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, _ := pde.ParseInstance("E(a,b). E(b,c).")
	res, err := pde.ExistsSolution(setting, source, pde.NewInstance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("exists:", res.Exists)
	// Output:
	// exists: false
}

// ExampleRepairs shows the repair semantics on an unsolvable input.
func ExampleRepairs() {
	setting, err := pde.ParseSetting(`
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`)
	if err != nil {
		log.Fatal(err)
	}
	source, _ := pde.ParseInstance("E(a,a).")
	target, _ := pde.ParseInstance("H(a,a). H(b,b).") // H(b,b) is unacceptable
	res, err := pde.Repairs(setting, source, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("repairs:", len(res.Repairs))
	fmt.Println(pde.FormatInstance(res.Repairs[0].Target))
	// Output:
	// repairs: 1
	// H(a, a).
}
