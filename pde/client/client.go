package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// ForwardedHeader marks a request that already crossed one shard of a
// pdxd cluster. A daemon receiving it computes locally even when the
// ring says another shard owns the key — the one-hop guard that keeps
// transiently disagreeing ring views from proxying in circles.
const ForwardedHeader = "X-Pdxd-Forwarded"

// Client talks to a pdxd daemon.
type Client struct {
	base string
	http *http.Client
	hdr  http.Header // extra headers applied to every request; nil for none
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8642"). The optional http.Client overrides the
// default transport; per-request deadlines should normally travel in
// the request body (DeadlineMillis) so the server can budget the solve,
// with the context as a harder client-side stop.
func New(base string, hc ...*http.Client) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), http: http.DefaultClient}
	if len(hc) > 0 && hc[0] != nil {
		c.http = hc[0]
	}
	return c
}

// Base returns the daemon base URL the client talks to.
func (c *Client) Base() string { return c.base }

// WithHeader returns a copy of the client that sends the given header
// on every request (the original client is unchanged). Cluster shards
// use it to stamp ForwardedHeader on proxied traffic.
func (c *Client) WithHeader(key, value string) *Client {
	out := &Client{base: c.base, http: c.http, hdr: make(http.Header, len(c.hdr)+1)}
	for k, vs := range c.hdr {
		out.hdr[k] = vs
	}
	out.hdr.Set(key, value)
	return out
}

// Forwarded returns a copy of the client whose requests carry the
// cluster forwarding mark, so the receiving shard answers locally
// instead of proxying again.
func (c *Client) Forwarded() *Client { return c.WithHeader(ForwardedHeader, "1") }

// applyHeaders stamps the client's extra headers onto a request.
func (c *Client) applyHeaders(req *http.Request) {
	for k, vs := range c.hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
}

// Register compiles and registers a setting, returning its registry ID.
func (c *Client) Register(ctx context.Context, settingText string) (RegisterResponse, error) {
	var out RegisterResponse
	err := c.post(ctx, "/v1/settings", RegisterRequest{Setting: settingText}, &out)
	return out, err
}

// Settings lists the registered settings.
func (c *Client) Settings(ctx context.Context) (ListSettingsResponse, error) {
	var out ListSettingsResponse
	err := c.do(ctx, http.MethodGet, "/v1/settings", nil, &out)
	return out, err
}

// Evict removes a setting from the registry.
func (c *Client) Evict(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/settings/"+url.PathEscape(id), nil, nil)
}

// RegisterInstance stores an instance under its content hash,
// enabling solve-by-ID and the server's chased-result cache.
func (c *Client) RegisterInstance(ctx context.Context, instanceText string) (RegisterInstanceResponse, error) {
	var out RegisterInstanceResponse
	err := c.post(ctx, "/v1/instances", RegisterInstanceRequest{Instance: instanceText}, &out)
	return out, err
}

// Instances lists the stored instances.
func (c *Client) Instances(ctx context.Context) (ListInstancesResponse, error) {
	var out ListInstancesResponse
	err := c.do(ctx, http.MethodGet, "/v1/instances", nil, &out)
	return out, err
}

// EvictInstance removes a stored instance and drops its cached chase
// results.
func (c *Client) EvictInstance(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/instances/"+url.PathEscape(id), nil, nil)
}

// AppendInstance appends facts to a stored instance, producing a new
// instance ID and migrating cached chase results to it.
func (c *Client) AppendInstance(ctx context.Context, id string, req AppendRequest) (AppendResponse, error) {
	var out AppendResponse
	err := c.post(ctx, "/v1/instances/"+url.PathEscape(id)+"/append", req, &out)
	return out, err
}

// ExistsSolution decides SOL(P) for the given instances.
func (c *Client) ExistsSolution(ctx context.Context, req SolveRequest) (SolveResponse, error) {
	var out SolveResponse
	err := c.post(ctx, "/v1/exists-solution", req, &out)
	return out, err
}

// CertainAnswers computes the certain answers of a query.
func (c *Client) CertainAnswers(ctx context.Context, req CertainRequest) (CertainResponse, error) {
	var out CertainResponse
	err := c.post(ctx, "/v1/certain-answers", req, &out)
	return out, err
}

// CertainBatch computes the certain answers of many queries over one
// instance pair in a single round trip.
func (c *Client) CertainBatch(ctx context.Context, req CertainBatchRequest) (CertainBatchResponse, error) {
	var out CertainBatchResponse
	err := c.post(ctx, "/v1/certain-answers/batch", req, &out)
	return out, err
}

// Classify reports C_tract membership of a registered or inline
// setting.
func (c *Client) Classify(ctx context.Context, req ClassifyRequest) (ClassifyResponse, error) {
	var out ClassifyResponse
	err := c.post(ctx, "/v1/classify", req, &out)
	return out, err
}

// Vet runs the static-analysis checks over setting text.
func (c *Client) Vet(ctx context.Context, req VetRequest) (VetResponse, error) {
	var out VetResponse
	err := c.post(ctx, "/v1/vet", req, &out)
	return out, err
}

// Health reports daemon liveness.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// CacheKeys lists the daemon's cache entries available for warm
// transfer.
func (c *Client) CacheKeys(ctx context.Context) (CacheKeysResponse, error) {
	var out CacheKeysResponse
	err := c.do(ctx, http.MethodGet, "/v1/cache/keys", nil, &out)
	return out, err
}

// ClusterStatus reports the daemon's ring membership. When settingID
// and sourceID are non-empty the response also names the shard owning
// that cache identity (targetID empty means the empty target instance).
func (c *Client) ClusterStatus(ctx context.Context, settingID, sourceID, targetID string) (ClusterStatusResponse, error) {
	path := "/v1/cluster"
	if settingID != "" || sourceID != "" || targetID != "" {
		q := url.Values{}
		q.Set("setting_id", settingID)
		q.Set("source_id", sourceID)
		if targetID != "" {
			q.Set("target_id", targetID)
		}
		path += "?" + q.Encode()
	}
	var out ClusterStatusResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// PushCacheEntry hands one cache entry, in the binary snapshot wire
// format, to the daemon (cluster rebalancing handoff). The receiver
// re-validates the snapshot exactly like a warm start before
// installing it.
func (c *Client) PushCacheEntry(ctx context.Context, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v1/cache/entries/"+url.PathEscape(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.applyHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: PUT /v1/cache/entries: %w", err)
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err == nil && eb.Error != nil {
			eb.Error.Status = resp.StatusCode
			return eb.Error
		}
		return &APIError{
			Code:    CodeInternal,
			Message: fmt.Sprintf("non-JSON error response: %.200s", data),
			Status:  resp.StatusCode,
		}
	}
	return nil
}

// CacheEntry fetches one cache entry in the binary snapshot wire
// format (decode with internal/snap). The key comes from CacheKeys.
func (c *Client) CacheEntry(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cache/entries/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c.applyHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET /v1/cache/entries: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading snapshot: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err == nil && eb.Error != nil {
			eb.Error.Status = resp.StatusCode
			return nil, eb.Error
		}
		return nil, &APIError{
			Code:    CodeInternal,
			Message: fmt.Sprintf("non-JSON error response: %.200s", data),
			Status:  resp.StatusCode,
		}
	}
	return data, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, http.MethodPost, path, in, out)
}

// do sends one request and decodes the response into out (when
// non-nil). Non-2xx responses decode the error envelope and return it
// as an *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.applyHeaders(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err == nil && eb.Error != nil {
			eb.Error.Status = resp.StatusCode
			return eb.Error
		}
		return &APIError{
			Code:    CodeInternal,
			Message: fmt.Sprintf("non-JSON error response: %.200s", data),
			Status:  resp.StatusCode,
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}
