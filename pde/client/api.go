// Package client is the typed Go client for pdxd, the PDE serving
// daemon (cmd/pdx serve). It also defines the wire types of the
// HTTP/JSON API, shared with the server implementation so the two
// cannot drift.
//
// All requests and responses are JSON. Settings, instances, and
// queries travel as text in the same formats the library parsers
// accept (pde.ParseSetting, pde.ParseInstance, pde.ParseQueries), so
// anything that works with the pdx CLI works over the wire unchanged.
package client

import "fmt"

// RegisterRequest registers a PDE setting with the daemon. The setting
// is compiled once — parsed, vetted, classified — and stored under a
// content hash of its canonical text, so registering the same setting
// twice is idempotent and returns the same ID.
type RegisterRequest struct {
	// Setting is the setting source text (.pde format).
	Setting string `json:"setting"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// ID is the content-hash identifier ("sha256:<hex>") used by all
	// subsequent requests against this setting.
	ID string `json:"id"`
	// Name is the setting's declared name.
	Name string `json:"name"`
	// InCtract reports membership in the tractable class C_tract.
	InCtract bool `json:"in_ctract"`
	// Strategy is the algorithm solves against this setting will use
	// ("tractable" or "generic").
	Strategy string `json:"strategy"`
	// Warnings counts non-error vet diagnostics recorded at
	// registration (settings with vet errors are rejected).
	Warnings int `json:"warnings"`
	// Created is false when the setting was already registered and this
	// call was a no-op.
	Created bool `json:"created"`
}

// SettingSummary describes one registered setting.
type SettingSummary struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	InCtract bool   `json:"in_ctract"`
	Strategy string `json:"strategy"`
}

// ListSettingsResponse lists the registry contents in registration
// order.
type ListSettingsResponse struct {
	Settings []SettingSummary `json:"settings"`
}

// RegisterInstanceRequest registers an instance with the daemon. Like
// settings, instances are stored under a content hash of their
// canonical text, so registration is idempotent and the ID doubles as
// the key of the server's chased-result cache.
type RegisterInstanceRequest struct {
	// Instance is the instance as fact text ("E(a,b). E(b,c).").
	Instance string `json:"instance"`
}

// RegisterInstanceResponse acknowledges an instance registration.
type RegisterInstanceResponse struct {
	// ID is the content-hash identifier ("sha256:<hex>").
	ID string `json:"id"`
	// Facts is the number of distinct facts stored.
	Facts int `json:"facts"`
	// Created is false when the instance was already registered.
	Created bool `json:"created"`
}

// InstanceSummary describes one stored instance.
type InstanceSummary struct {
	ID    string `json:"id"`
	Facts int    `json:"facts"`
	// Parent is the instance this one was appended from, when any.
	Parent string `json:"parent,omitempty"`
}

// ListInstancesResponse lists the instance registry in registration
// order.
type ListInstancesResponse struct {
	Instances []InstanceSummary `json:"instances"`
}

// AppendRequest appends facts to a registered instance. Instances are
// immutable, so the append produces a new instance (base ∪ facts) under
// its own content hash; the response carries the new ID. Chased-result
// cache entries built over the base instance are migrated eagerly to
// the new instance by resuming their chases with just the appended
// facts (falling back to a full re-chase when egds are involved).
type AppendRequest struct {
	// Facts is the batch to append, as fact text.
	Facts string `json:"facts"`
	// DeadlineMillis bounds the cache migration work; 0 uses the server
	// default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// AppendResponse reports an append.
type AppendResponse struct {
	// ID identifies the appended-to instance (equal to the base ID when
	// the batch added nothing new).
	ID string `json:"id"`
	// Parent is the base instance ID.
	Parent string `json:"parent"`
	// Added is the number of genuinely new facts (batch minus
	// duplicates).
	Added int `json:"added"`
	// Facts is the total fact count of the new instance.
	Facts int `json:"facts"`
	// Migrated counts the cache entries carried over to the new
	// instance; Resumed of them continued their chase incrementally,
	// Fallbacks re-chased from scratch.
	Migrated  int `json:"migrated"`
	Resumed   int `json:"resumed"`
	Fallbacks int `json:"fallbacks"`
	// Created is false when the resulting instance was already
	// registered.
	Created bool `json:"created"`
}

// SolveRequest asks whether (I, J) has a solution under a registered
// setting (the SOL(P) problem). Each instance travels either inline
// (Source/Target, fact text) or by registry ID (SourceID/TargetID) —
// setting both for the same side is an error. Registered instances hit
// the server's chased-result cache by ID; inline instances are hashed
// and cached the same way.
type SolveRequest struct {
	// SettingID is the registry ID returned by Register.
	SettingID string `json:"setting_id"`
	// Source is the source instance I as fact text ("E(a,b). E(b,c).").
	Source string `json:"source,omitempty"`
	// SourceID is the registry ID of the source instance.
	SourceID string `json:"source_id,omitempty"`
	// Target is the target instance J; empty means ∅.
	Target string `json:"target,omitempty"`
	// TargetID is the registry ID of the target instance.
	TargetID string `json:"target_id,omitempty"`
	// DeadlineMillis bounds the solve; 0 uses the server default. The
	// server caps it at its configured maximum.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// MaxNodes bounds the generic solver's search tree; 0 means the
	// server default.
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// Witness requests a witness solution in the response.
	Witness bool `json:"witness,omitempty"`
}

// SolveResponse reports a SOL(P) verdict.
type SolveResponse struct {
	Exists bool `json:"exists"`
	// Strategy is the algorithm that ran ("tractable" or "generic").
	Strategy string `json:"strategy"`
	// Nodes is the number of search nodes the generic solver visited
	// (0 for the tractable algorithm).
	Nodes int64 `json:"nodes,omitempty"`
	// Solution is the witness solution as fact text, when requested and
	// one exists.
	Solution string `json:"solution,omitempty"`
	// CacheHit reports that the solve started from a cached chased
	// instance instead of chasing from scratch.
	CacheHit bool `json:"cache_hit,omitempty"`
	// ElapsedMillis is the server-side solve time.
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// CertainRequest asks for the certain answers of a query over every
// solution for (I, J).
type CertainRequest struct {
	SettingID string `json:"setting_id"`
	// Source/SourceID and Target/TargetID resolve exactly as in
	// SolveRequest: inline text or a registered instance ID per side.
	Source   string `json:"source,omitempty"`
	SourceID string `json:"source_id,omitempty"`
	Target   string `json:"target,omitempty"`
	TargetID string `json:"target_id,omitempty"`
	// Query is one conjunctive query, "q(x,y) :- H(x,y)" syntax; an
	// empty head makes it Boolean.
	Query          string `json:"query"`
	DeadlineMillis int64  `json:"deadline_ms,omitempty"`
}

// CertainResponse reports a certain-answers computation.
type CertainResponse struct {
	// SolutionExists is false when (I, J) has no solution at all (every
	// query is then vacuously certain).
	SolutionExists bool `json:"solution_exists"`
	// Certain is the verdict for Boolean queries.
	Certain bool `json:"certain"`
	// Answers holds the certain tuples of open queries, each a list of
	// constants, in sorted order.
	Answers [][]string `json:"answers,omitempty"`
	// SolutionsExamined counts the candidate solutions enumerated.
	SolutionsExamined int `json:"solutions_examined,omitempty"`
	// CacheHit reports that the enumeration started from a cached
	// chased instance.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Compiled reports that a compiled plan answered the query without
	// chasing or enumerating solutions.
	Compiled bool `json:"compiled,omitempty"`
	// FallbackReason is why the compiled path declined and the
	// enumeration ran instead ("" when the compiled path ran).
	FallbackReason string `json:"fallback_reason,omitempty"`
	ElapsedMillis  int64  `json:"elapsed_ms"`
}

// CertainBatchRequest asks for the certain answers of many queries
// over one (setting, I, J) triple in a single round trip. Compiled
// settings run their solution probes once and evaluate every query
// against the same verdict.
type CertainBatchRequest struct {
	SettingID string `json:"setting_id"`
	// Source/SourceID and Target/TargetID resolve exactly as in
	// SolveRequest.
	Source   string `json:"source,omitempty"`
	SourceID string `json:"source_id,omitempty"`
	Target   string `json:"target,omitempty"`
	TargetID string `json:"target_id,omitempty"`
	// Queries holds one conjunctive query per entry, "q(x,y) :- H(x,y)"
	// syntax.
	Queries        []string `json:"queries"`
	DeadlineMillis int64    `json:"deadline_ms,omitempty"`
}

// CertainBatchResult is the per-query result of a batch call.
type CertainBatchResult struct {
	// Name is the query's head name.
	Name           string     `json:"name"`
	SolutionExists bool       `json:"solution_exists"`
	Certain        bool       `json:"certain"`
	Answers        [][]string `json:"answers,omitempty"`
	Compiled       bool       `json:"compiled,omitempty"`
	FallbackReason string     `json:"fallback_reason,omitempty"`
}

// CertainBatchResponse reports a batch certain-answers computation.
type CertainBatchResponse struct {
	// Results holds one entry per request query, in request order.
	Results []CertainBatchResult `json:"results"`
	// CacheHit reports that an enumeration fallback started from a
	// cached chased instance (always false when every query compiled).
	CacheHit      bool  `json:"cache_hit,omitempty"`
	ElapsedMillis int64 `json:"elapsed_ms"`
}

// ClassifyRequest classifies a setting against C_tract (Definition 9).
// Exactly one of SettingID and Setting must be set.
type ClassifyRequest struct {
	SettingID string `json:"setting_id,omitempty"`
	// Setting is inline setting text, classified without registering.
	Setting string `json:"setting,omitempty"`
}

// ClassifyResponse mirrors pde.Classify's report.
type ClassifyResponse struct {
	InCtract   bool     `json:"in_ctract"`
	Cond1      bool     `json:"cond1"`
	Cond21     bool     `json:"cond21"`
	Cond22     bool     `json:"cond22"`
	Violations []string `json:"violations,omitempty"`
	Summary    string   `json:"summary"`
}

// VetRequest runs the static-analysis checks over setting text.
type VetRequest struct {
	Setting string `json:"setting"`
	// File names the setting in diagnostics; defaults to "<request>".
	File string `json:"file,omitempty"`
}

// Diagnostic is one vet finding on the wire.
type Diagnostic struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// VetResponse reports a vet run.
type VetResponse struct {
	File        string       `json:"file"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
	Infos       int          `json:"infos"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// CacheKeySummary describes one cache entry available for warm
// transfer. Key is the snapshot key (the hex sha256 of the composite
// cache identity) addressing /v1/cache/entries/{key}.
type CacheKeySummary struct {
	Key       string `json:"key"`
	SettingID string `json:"setting_id"`
	SourceID  string `json:"source_id"`
	TargetID  string `json:"target_id"`
	Kind      string `json:"kind"`
}

// CacheKeysResponse lists the transferable cache entries, sorted by
// key.
type CacheKeysResponse struct {
	Keys []CacheKeySummary `json:"keys"`
}

// ClusterMemberStatus describes one shard of a pdxd cluster.
type ClusterMemberStatus struct {
	// URL is the member's advertised base URL (its ring identity).
	URL string `json:"url"`
	// Alive reports whether the responding daemon currently sees the
	// member as up (dead members take no placements).
	Alive bool `json:"alive"`
	// Self marks the responding daemon's own entry.
	Self bool `json:"self,omitempty"`
}

// ClusterStatusResponse reports a daemon's view of the ring: the
// static membership with liveness, the placement version (bumped on
// every liveness change), and — when the request carried a cache
// identity — the shard owning that identity.
type ClusterStatusResponse struct {
	// Enabled is false for a single-node daemon (all other fields are
	// then zero).
	Enabled bool `json:"enabled"`
	// Self is the responding daemon's advertised base URL.
	Self string `json:"self,omitempty"`
	// Version is the current placement version.
	Version uint64 `json:"version,omitempty"`
	// Members is the static membership, sorted by URL.
	Members []ClusterMemberStatus `json:"members,omitempty"`
	// Owner is the base URL of the shard owning the queried
	// (setting_id, source_id, target_id) identity, when one was sent.
	Owner string `json:"owner,omitempty"`
}

// HealthResponse reports daemon liveness.
type HealthResponse struct {
	Status    string `json:"status"`
	Settings  int    `json:"settings"`
	Instances int    `json:"instances"`
	InFlight  int    `json:"in_flight"`
}

// Error codes carried in APIError.Code.
const (
	CodeBadRequest       = "bad_request"       // 400: malformed JSON or unparsable text
	CodeNotFound         = "not_found"         // 404: unknown setting ID
	CodeUnprocessable    = "unprocessable"     // 422: setting rejected by vet, or budget exhausted
	CodeOverloaded       = "overloaded"        // 429: admission queue full, retry later
	CodeShuttingDown     = "shutting_down"     // 503: daemon draining
	CodeCanceled         = "canceled"          // 503: request canceled before completion
	CodeDeadlineExceeded = "deadline_exceeded" // 504: solve exceeded its deadline
	CodeInternal         = "internal"          // 500
)

// APIError is the error envelope every non-2xx response carries, as
// {"error": {"code": ..., "message": ...}}. The client returns it as
// the error value, so callers can switch on Code or Status.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Status is the HTTP status code (filled by the client, not on the
	// wire).
	Status int `json:"-"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("pdxd: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// errorBody is the wire envelope for APIError.
type errorBody struct {
	Error *APIError `json:"error"`
}
