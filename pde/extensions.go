package pde

import (
	"repro/internal/chase"
	"repro/internal/hom"
	"repro/internal/rel"
	"repro/internal/repair"
	"repro/internal/uni"
)

// This file exposes the extensions built on top of the paper:
// data-exchange universal solutions and cores (the substrate of the
// paper's Lemmas 1–4, from Fagin et al.), and the repair-based
// alternative semantics the paper's conclusion points to.

// UniversalSolution computes the canonical universal solution of the
// data-exchange fragment of the setting (Σts is not allowed): the chase
// of (I, J) with Σst ∪ Σt. It returns nil with exists=false when the
// chase fails (a target egd equated two constants), meaning no solution
// exists. Options.Parallelism/Seed configure the chase's trigger
// search.
func UniversalSolution(s *Setting, i, j *Instance, opts ...Options) (sol *Instance, exists bool, err error) {
	o := options(opts).normalized()
	res, err := uni.CanonicalSolution(s, i, j, chaseOptions(o))
	if err != nil {
		return nil, false, err
	}
	if res.Failed {
		return nil, false, nil
	}
	return res.Solution, true, nil
}

// chaseOptions projects the façade options onto a chase configuration
// (used by the data-exchange helpers, which chase but never search).
func chaseOptions(o Options) chase.Options {
	return chase.Options{
		Parallelism:   o.Parallelism,
		Seed:          o.Seed,
		MaxSteps:      o.Solve.MaxChaseSteps,
		NaiveTriggers: o.Solve.NaiveChase,
		Hom:           o.Solve.Hom,
		Ctx:           o.Solve.Ctx,
	}
}

// Core computes the core of an instance with labeled nulls: its
// smallest retract, unique up to isomorphism. The core of a universal
// solution is the smallest universal solution.
func Core(inst *Instance) *Instance {
	return uni.Core(inst, hom.Options{})
}

// CertainAnswersDataExchange evaluates the certain answers of a union
// of conjunctive queries in the data-exchange fragment (Σts = ∅) in
// polynomial time, by naive evaluation on the canonical universal
// solution. This is the tractable contrast the paper draws with the
// coNP-complete PDE case.
func CertainAnswersDataExchange(s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	o := options(opts).normalized()
	if err := prepareCertain(s, i, j, q); err != nil {
		return CertainResult{}, err
	}
	answers, exists, err := uni.CertainAnswers(s, i, j, func(inst *rel.Instance) []rel.Tuple {
		return q.Eval(inst, o.Solve.Hom)
	}, chaseOptions(o))
	if err != nil {
		return CertainResult{}, err
	}
	return CertainResult{SolutionExists: exists, Answers: answers}, nil
}

// RepairResult reports the repair-semantics computations.
type RepairResult struct {
	// Intact reports that J itself admits a solution (the unique repair
	// is J and the semantics coincides with plain certain answers).
	Intact bool
	// Repairs holds the maximal subsets of J that admit solutions, each
	// with one witness solution.
	Repairs []repair.Repair
}

// Repairs computes the maximal subsets J” of the target instance for
// which (I, J”) has a solution — the alternative semantics for
// unsolvable inputs sketched in the paper's conclusion. The target
// instance must be small (the enumeration is exponential in |J|).
func Repairs(s *Setting, i, j *Instance, opts ...Options) (RepairResult, error) {
	o := options(opts).normalized()
	if err := s.Validate(); err != nil {
		return RepairResult{}, err
	}
	res, err := repair.Repairs(s, i, j, repair.Options{Solve: o.Solve})
	if err != nil {
		return RepairResult{}, err
	}
	return RepairResult{Intact: res.Intact, Repairs: res.Repairs}, nil
}

// CertainUnderRepairs computes repair-based certain answers: tuples (or
// the Boolean verdict) certain in every solution of every repair.
func CertainUnderRepairs(s *Setting, i, j *Instance, q UCQ, opts ...Options) (CertainResult, error) {
	o := options(opts).normalized()
	if err := prepareCertain(s, i, j, q); err != nil {
		return CertainResult{}, err
	}
	ropts := repair.Options{Solve: o.Solve}
	if q[0].IsBoolean() {
		cert, hasRepair, err := repair.CertainBool(s, i, j, q, ropts)
		if err != nil {
			return CertainResult{}, err
		}
		return CertainResult{SolutionExists: hasRepair, Certain: cert}, nil
	}
	answers, hasRepair, err := repair.CertainAnswers(s, i, j, q, ropts)
	if err != nil {
		return CertainResult{}, err
	}
	return CertainResult{SolutionExists: hasRepair, Answers: answers}, nil
}
