package pde_test

import (
	"strings"
	"testing"

	"repro/pde"
)

const example1 = `
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`

func mustSetting(t *testing.T, src string) *pde.Setting {
	t.Helper()
	s, err := pde.ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustInstance(t *testing.T, src string) *pde.Instance {
	t.Helper()
	inst, err := pde.ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestQuickstartFlow(t *testing.T) {
	s := mustSetting(t, example1)
	i := mustInstance(t, "E(a,b). E(b,c). E(a,c).")
	j := pde.NewInstance()

	res, err := pde.ExistsSolution(s, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exists {
		t.Fatal("solution should exist")
	}
	if res.Strategy != pde.StrategyTractable {
		t.Errorf("strategy = %s, want tractable (Example 1 is in C_tract)", res.Strategy)
	}

	found, err := pde.FindSolution(s, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if found.Solution == nil || !pde.IsSolution(s, i, j, found.Solution) {
		t.Errorf("FindSolution witness invalid: %v", found.Solution)
	}
}

func TestExistsSolutionNoSolution(t *testing.T) {
	s := mustSetting(t, example1)
	i := mustInstance(t, "E(a,b). E(b,c).")
	res, err := pde.ExistsSolution(s, i, pde.NewInstance())
	if err != nil {
		t.Fatal(err)
	}
	if res.Exists {
		t.Error("no solution expected")
	}
	if exp := pde.ExplainNonSolution(s, i, pde.NewInstance(), pde.NewInstance()); len(exp) == 0 {
		t.Error("empty target should be explained as non-solution (Σst violated)")
	}
}

func TestForceGenericAgrees(t *testing.T) {
	s := mustSetting(t, example1)
	for _, src := range []string{"E(a,b). E(b,c).", "E(a,a).", "E(a,b). E(b,c). E(a,c)."} {
		i := mustInstance(t, src)
		a, err := pde.ExistsSolution(s, i, pde.NewInstance())
		if err != nil {
			t.Fatal(err)
		}
		b, err := pde.ExistsSolution(s, i, pde.NewInstance(), pde.Options{ForceGeneric: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Exists != b.Exists {
			t.Errorf("%q: tractable=%v generic=%v", src, a.Exists, b.Exists)
		}
		if b.Strategy != pde.StrategyGeneric {
			t.Errorf("forced strategy = %s", b.Strategy)
		}
	}
}

func TestInstanceSchemaValidation(t *testing.T) {
	s := mustSetting(t, example1)
	badSource := mustInstance(t, "Zap(a).")
	if _, err := pde.ExistsSolution(s, badSource, pde.NewInstance()); err == nil {
		t.Error("source instance outside schema accepted")
	}
	badTarget := mustInstance(t, "E(a,b).")
	if _, err := pde.ExistsSolution(s, pde.NewInstance(), badTarget); err == nil {
		t.Error("target instance holding source relations accepted")
	}
}

func TestCertainFlow(t *testing.T) {
	s := mustSetting(t, example1)
	queries, err := pde.ParseQueries("q :- H(x,y), H(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	q := queries[0]

	res, err := pde.CertainBool(s, mustInstance(t, "E(a,a)."), pde.NewInstance(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain || !res.SolutionExists {
		t.Errorf("certain = %+v, want true", res)
	}

	res, err = pde.CertainBool(s, mustInstance(t, "E(a,b). E(b,c). E(a,c)."), pde.NewInstance(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Error("certain should be false on the triangle instance")
	}
}

func TestCertainAnswersOpenQuery(t *testing.T) {
	s := mustSetting(t, example1)
	queries, err := pde.ParseQueries("q(x, y) :- H(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pde.CertainAnswers(s, mustInstance(t, "E(a,b). E(b,c). E(a,c)."), pde.NewInstance(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0].String() != "(a, c)" {
		t.Errorf("answers = %v, want [(a, c)]", res.Answers)
	}
}

func TestCertainValidatesQuery(t *testing.T) {
	s := mustSetting(t, example1)
	queries, err := pde.ParseQueries("q :- Zap(x)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pde.CertainBool(s, pde.NewInstance(), pde.NewInstance(), queries[0]); err == nil {
		t.Error("query over unknown relation accepted")
	}
}

func TestClassifyAndFormat(t *testing.T) {
	s := mustSetting(t, example1)
	rep := pde.Classify(s)
	if !rep.InCtract {
		t.Errorf("Example 1 should be in C_tract: %s", rep.Summary())
	}
	text := pde.FormatSetting(s)
	if !strings.Contains(text, "st: E(x, z), E(z, y) -> H(x, y)") {
		t.Errorf("FormatSetting output unexpected:\n%s", text)
	}
	back, err := pde.ParseSetting(text)
	if err != nil {
		t.Fatalf("FormatSetting output does not re-parse: %v", err)
	}
	if !pde.Classify(back).InCtract {
		t.Error("round-tripped setting classified differently")
	}
}

func TestValueConstructors(t *testing.T) {
	inst := pde.NewInstance()
	inst.Add("H", pde.Const("a"), pde.NullValue(1))
	if inst.NumFacts() != 1 {
		t.Error("Add through facade failed")
	}
	if pde.FormatInstance(inst) != "H(a, _1)." {
		t.Errorf("FormatInstance = %q", pde.FormatInstance(inst))
	}
}
