package pde_test

import (
	"testing"

	"repro/pde"
)

const dataExchangeSrc = `
setting de
source Src/2
target T/2, U/2
st: Src(x,y) -> exists u: T(x,u)
t: T(x,u) -> U(x,x)
`

func TestUniversalSolutionAndCore(t *testing.T) {
	s := mustSetting(t, dataExchangeSrc)
	i := mustInstance(t, "Src(a,b). Src(a,c).")
	j := pde.NewInstance()
	sol, exists, err := pde.UniversalSolution(s, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if !exists || sol == nil {
		t.Fatal("universal solution should exist")
	}
	if !pde.IsSolution(s, i, j, sol) {
		t.Error("universal solution is not a solution")
	}
	// The restricted chase fires st once for x=a (the second trigger is
	// already satisfied), so the canonical solution here is already a
	// core; verify Core is at least idempotent and no larger.
	c := pde.Core(sol)
	if c.NumFacts() > sol.NumFacts() {
		t.Errorf("core grew: %d -> %d", sol.NumFacts(), c.NumFacts())
	}
	if !pde.IsSolution(s, i, j, c) {
		t.Error("core is not a solution")
	}
	if !pde.Core(c).Equal(c) {
		t.Error("core not idempotent")
	}
}

func TestUniversalSolutionFailingChase(t *testing.T) {
	s := mustSetting(t, `
setting dekey
source Src/2
target T/2
st: Src(x,y) -> T(x,y)
t: T(x,y), T(x,z) -> y = z
`)
	i := mustInstance(t, "Src(a,b). Src(a,c).")
	_, exists, err := pde.UniversalSolution(s, i, pde.NewInstance())
	if err != nil {
		t.Fatal(err)
	}
	if exists {
		t.Error("failing chase should report no solution")
	}
}

func TestCertainAnswersDataExchange(t *testing.T) {
	s := mustSetting(t, dataExchangeSrc)
	i := mustInstance(t, "Src(a,b). Src(c,d).")
	queries, err := pde.ParseQueries(`
qU(x) :- U(x, x)
qT(x, u) :- T(x, u)
`)
	if err != nil {
		t.Fatal(err)
	}
	// U(a,a), U(c,c) are certain; T's second column is a null, so no
	// T-tuple is certain.
	resU, err := pde.CertainAnswersDataExchange(s, i, pde.NewInstance(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(resU.Answers) != 2 {
		t.Errorf("qU answers = %v, want [(a) (c)]", resU.Answers)
	}
	resT, err := pde.CertainAnswersDataExchange(s, i, pde.NewInstance(), queries[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(resT.Answers) != 0 {
		t.Errorf("qT answers = %v, want none (nulls are not certain)", resT.Answers)
	}
}

func TestCertainAnswersDataExchangeRejectsTS(t *testing.T) {
	s := mustSetting(t, example1)
	queries, _ := pde.ParseQueries("q(x,y) :- H(x,y)")
	if _, err := pde.CertainAnswersDataExchange(s, pde.NewInstance(), pde.NewInstance(), queries[0]); err == nil {
		t.Error("PDE setting accepted by the data-exchange evaluator")
	}
}

func TestRepairsFacade(t *testing.T) {
	s := mustSetting(t, example1)
	i := mustInstance(t, "E(a,a).")
	j := mustInstance(t, "H(a,a). H(b,b).")
	res, err := pde.Repairs(s, i, j)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intact {
		t.Error("dirty target reported intact")
	}
	if len(res.Repairs) != 1 || res.Repairs[0].Removed != 1 {
		t.Errorf("repairs = %+v", res.Repairs)
	}
}

func TestCertainUnderRepairsFacade(t *testing.T) {
	s := mustSetting(t, example1)
	i := mustInstance(t, "E(a,a).")
	j := mustInstance(t, "H(a,a). H(b,b).")
	queries, err := pde.ParseQueries(`
qa :- H('a', 'a')
qb :- H('b', 'b')
open(x) :- H(x, x)
`)
	if err != nil {
		t.Fatal(err)
	}
	// Under repairs, H(a,a) survives (certain), H(b,b) is repaired away.
	resA, err := pde.CertainUnderRepairs(s, i, j, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Certain || !resA.SolutionExists {
		t.Errorf("qa = %+v, want certain", resA)
	}
	resB, err := pde.CertainUnderRepairs(s, i, j, queries[1])
	if err != nil {
		t.Fatal(err)
	}
	if resB.Certain {
		t.Error("qb should not be certain (its fact is repaired away)")
	}
	open, err := pde.CertainUnderRepairs(s, i, j, queries[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(open.Answers) != 1 || open.Answers[0].String() != "(a)" {
		t.Errorf("open answers = %v, want [(a)]", open.Answers)
	}
}

func TestQueriesWithConstantsInBody(t *testing.T) {
	s := mustSetting(t, example1)
	i := mustInstance(t, "E(a,a).")
	queries, err := pde.ParseQueries("q :- H('a', y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pde.CertainBool(s, i, pde.NewInstance(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain {
		t.Error("H(a,·) should be certain for the self-loop instance")
	}
}
