package pde_test

import (
	"context"
	"errors"
	"testing"

	"repro/pde"
)

// cliqueExample is the Theorem 3 clique reduction (outside C_tract), a
// setting on which the generic solver does real search work — the
// fixture for the budget and cancellation round-trip tests.
const cliqueExample = `
setting clique
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
ts: P(x,z,y,w), P(y,z2,y2,w2) -> S(w,z2)
`

// cliqueInstance encodes "does a path of 4 vertices contain a
// 3-clique?" (it does not), so the complete solver must exhaust an
// exponential search space to answer.
const cliqueInstance = `
D(a1,a2). D(a2,a1). D(a1,a3). D(a3,a1). D(a2,a3). D(a3,a2).
S(v0,v0). S(v1,v1). S(v2,v2). S(v3,v3).
E(v0,v1). E(v1,v0). E(v1,v2). E(v2,v1). E(v2,v3). E(v3,v2).
`

func TestErrSearchBudgetRoundTrip(t *testing.T) {
	s := mustSetting(t, cliqueExample)
	i, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	opts := pde.Options{}
	opts.Solve.MaxNodes = 5
	_, err = pde.ExistsSolution(s, i, pde.NewInstance(), opts)
	if err == nil {
		t.Fatal("want a budget error, got nil")
	}
	if !errors.Is(err, pde.ErrSearchBudget) {
		t.Errorf("errors.Is(err, pde.ErrSearchBudget) = false for %v", err)
	}
	if errors.Is(err, pde.ErrCanceled) {
		t.Errorf("budget error unexpectedly matches pde.ErrCanceled: %v", err)
	}
}

func TestErrCanceledRoundTripGeneric(t *testing.T) {
	s := mustSetting(t, cliqueExample)
	i, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the search starts
	_, err = pde.ExistsSolutionContext(ctx, s, i, pde.NewInstance())
	if err == nil {
		t.Fatal("want a cancellation error, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) {
		t.Errorf("errors.Is(err, pde.ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if errors.Is(err, pde.ErrSearchBudget) {
		t.Errorf("cancellation error unexpectedly matches pde.ErrSearchBudget: %v", err)
	}
}

func TestErrCanceledRoundTripTractable(t *testing.T) {
	s := mustSetting(t, example1)
	i, err := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pde.ExistsSolutionContext(ctx, s, i, pde.NewInstance())
	if err == nil {
		t.Fatal("want a cancellation error from the tractable path, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation identities missing from %v", err)
	}
}

func TestErrCanceledRoundTripCertain(t *testing.T) {
	s := mustSetting(t, example1)
	i, err := pde.ParseInstance("E(a,a).")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := pde.ParseQueries("q(x,y) :- H(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pde.CertainAnswersContext(ctx, s, i, pde.NewInstance(), qs[0])
	if err == nil {
		t.Fatal("want a cancellation error, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) {
		t.Errorf("errors.Is(err, pde.ErrCanceled) = false for %v", err)
	}
}

func TestContextVariantsAgreeWithPlainCalls(t *testing.T) {
	s := mustSetting(t, example1)
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"E(a,b). E(b,c).", false},
		{"E(a,a).", true},
		{"E(a,b). E(b,c). E(a,c).", true},
	} {
		i, err := pde.ParseInstance(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pde.ExistsSolutionContext(context.Background(), s, i, pde.NewInstance())
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if res.Exists != tc.want {
			t.Errorf("%s: exists = %v, want %v", tc.src, res.Exists, tc.want)
		}
	}
}

// TestParallelismKnobEndToEnd drives both strategies and the
// certain-answers evaluator through the façade-level Parallelism knob
// and checks the results are identical to the serial runs.
func TestParallelismKnobEndToEnd(t *testing.T) {
	par := pde.Options{Parallelism: 2, Seed: 13}
	ser := pde.Options{Parallelism: 1}

	s := mustSetting(t, example1)
	clique := mustSetting(t, cliqueExample)
	ci, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"E(a,b). E(b,c).", "E(a,a).", "E(a,b). E(b,c). E(a,c)."} {
		i, err := pde.ParseInstance(src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pde.ExistsSolution(s, i, pde.NewInstance(), ser)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pde.ExistsSolution(s, i, pde.NewInstance(), par)
		if err != nil {
			t.Fatal(err)
		}
		if a.Exists != b.Exists || a.Strategy != b.Strategy {
			t.Errorf("%s: serial (%v,%s) != parallel (%v,%s)", src, a.Exists, a.Strategy, b.Exists, b.Strategy)
		}
	}

	a, err := pde.ExistsSolution(clique, ci, pde.NewInstance(), ser)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pde.ExistsSolution(clique, ci, pde.NewInstance(), par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Exists != b.Exists || a.Nodes != b.Nodes {
		t.Errorf("clique: serial (exists=%v nodes=%d) != parallel (exists=%v nodes=%d)",
			a.Exists, a.Nodes, b.Exists, b.Nodes)
	}
	if a.Exists {
		t.Error("path graph has no 3-clique; solver says it does")
	}
	if a.Nodes == 0 {
		t.Error("generic solve reported 0 nodes; Result.Nodes is not wired")
	}

	tri, err := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := pde.ParseQueries("q(x,y) :- H(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := pde.CertainAnswers(s, tri, pde.NewInstance(), qs[0], ser)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := pde.CertainAnswers(s, tri, pde.NewInstance(), qs[0], par)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Answers) != len(cb.Answers) || len(ca.Answers) != 1 {
		t.Errorf("certain answers: serial %v parallel %v, want exactly [(a, c)]", ca.Answers, cb.Answers)
	}
}
