package pde_test

import (
	"context"
	"errors"
	"testing"

	"repro/pde"
)

// cliqueExample is the Theorem 3 clique reduction (outside C_tract), a
// setting on which the generic solver does real search work — the
// fixture for the budget and cancellation round-trip tests.
const cliqueExample = `
setting clique
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
ts: P(x,z,y,w), P(y,z2,y2,w2) -> S(w,z2)
`

// cliqueInstance encodes "does a path of 4 vertices contain a
// 3-clique?" (it does not), so the complete solver must exhaust an
// exponential search space to answer.
const cliqueInstance = `
D(a1,a2). D(a2,a1). D(a1,a3). D(a3,a1). D(a2,a3). D(a3,a2).
S(v0,v0). S(v1,v1). S(v2,v2). S(v3,v3).
E(v0,v1). E(v1,v0). E(v1,v2). E(v2,v1). E(v2,v3). E(v3,v2).
`

func TestErrSearchBudgetRoundTrip(t *testing.T) {
	s := mustSetting(t, cliqueExample)
	i, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	opts := pde.Options{}
	opts.Solve.MaxNodes = 5
	_, err = pde.ExistsSolution(s, i, pde.NewInstance(), opts)
	if err == nil {
		t.Fatal("want a budget error, got nil")
	}
	if !errors.Is(err, pde.ErrSearchBudget) {
		t.Errorf("errors.Is(err, pde.ErrSearchBudget) = false for %v", err)
	}
	if errors.Is(err, pde.ErrCanceled) {
		t.Errorf("budget error unexpectedly matches pde.ErrCanceled: %v", err)
	}
}

func TestErrCanceledRoundTripGeneric(t *testing.T) {
	s := mustSetting(t, cliqueExample)
	i, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the search starts
	_, err = pde.ExistsSolutionContext(ctx, s, i, pde.NewInstance())
	if err == nil {
		t.Fatal("want a cancellation error, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) {
		t.Errorf("errors.Is(err, pde.ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if errors.Is(err, pde.ErrSearchBudget) {
		t.Errorf("cancellation error unexpectedly matches pde.ErrSearchBudget: %v", err)
	}
}

func TestErrCanceledRoundTripTractable(t *testing.T) {
	s := mustSetting(t, example1)
	i, err := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pde.ExistsSolutionContext(ctx, s, i, pde.NewInstance())
	if err == nil {
		t.Fatal("want a cancellation error from the tractable path, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation identities missing from %v", err)
	}
}

func TestErrCanceledRoundTripCertain(t *testing.T) {
	s := mustSetting(t, example1)
	i, err := pde.ParseInstance("E(a,a).")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := pde.ParseQueries("q(x,y) :- H(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pde.CertainAnswersContext(ctx, s, i, pde.NewInstance(), qs[0])
	if err == nil {
		t.Fatal("want a cancellation error, got nil")
	}
	if !errors.Is(err, pde.ErrCanceled) {
		t.Errorf("errors.Is(err, pde.ErrCanceled) = false for %v", err)
	}
}

func TestContextVariantsAgreeWithPlainCalls(t *testing.T) {
	s := mustSetting(t, example1)
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"E(a,b). E(b,c).", false},
		{"E(a,a).", true},
		{"E(a,b). E(b,c). E(a,c).", true},
	} {
		i, err := pde.ParseInstance(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pde.ExistsSolutionContext(context.Background(), s, i, pde.NewInstance())
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if res.Exists != tc.want {
			t.Errorf("%s: exists = %v, want %v", tc.src, res.Exists, tc.want)
		}
	}
}

// TestParallelismKnobEndToEnd drives both strategies and the
// certain-answers evaluator through the façade-level Parallelism knob
// and checks the results are identical to the serial runs.
func TestParallelismKnobEndToEnd(t *testing.T) {
	par := pde.Options{Parallelism: 2, Seed: 13}
	ser := pde.Options{Parallelism: 1}

	s := mustSetting(t, example1)
	clique := mustSetting(t, cliqueExample)
	ci, err := pde.ParseInstance(cliqueInstance)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"E(a,b). E(b,c).", "E(a,a).", "E(a,b). E(b,c). E(a,c)."} {
		i, err := pde.ParseInstance(src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := pde.ExistsSolution(s, i, pde.NewInstance(), ser)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pde.ExistsSolution(s, i, pde.NewInstance(), par)
		if err != nil {
			t.Fatal(err)
		}
		if a.Exists != b.Exists || a.Strategy != b.Strategy {
			t.Errorf("%s: serial (%v,%s) != parallel (%v,%s)", src, a.Exists, a.Strategy, b.Exists, b.Strategy)
		}
	}

	a, err := pde.ExistsSolution(clique, ci, pde.NewInstance(), ser)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pde.ExistsSolution(clique, ci, pde.NewInstance(), par)
	if err != nil {
		t.Fatal(err)
	}
	if a.Exists != b.Exists || a.Nodes != b.Nodes {
		t.Errorf("clique: serial (exists=%v nodes=%d) != parallel (exists=%v nodes=%d)",
			a.Exists, a.Nodes, b.Exists, b.Nodes)
	}
	if a.Exists {
		t.Error("path graph has no 3-clique; solver says it does")
	}
	if a.Nodes == 0 {
		t.Error("generic solve reported 0 nodes; Result.Nodes is not wired")
	}

	tri, err := pde.ParseInstance("E(a,b). E(b,c). E(a,c).")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := pde.ParseQueries("q(x,y) :- H(x,y)")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := pde.CertainAnswers(s, tri, pde.NewInstance(), qs[0], ser)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := pde.CertainAnswers(s, tri, pde.NewInstance(), qs[0], par)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Answers) != len(cb.Answers) || len(ca.Answers) != 1 {
		t.Errorf("certain answers: serial %v parallel %v, want exactly [(a, c)]", ca.Answers, cb.Answers)
	}
}

// lavExample is a setting inside the compilable C_tract fragment: the
// st-tgd invents a null per person, and the ts obligation touches only
// the constant positions.
const lavExample = `
setting lav
source Person/2, Member/2
target Rec/3
st: Person(x,g) -> exists u: Rec(x,g,u)
ts: Rec(x,g,u) -> Member(x,g)
`

func TestCertainCompiledOption(t *testing.T) {
	s := mustSetting(t, lavExample)
	i, err := pde.ParseInstance("Person(p1,g1). Person(p2,g1). Member(p1,g1). Member(p2,g1).")
	if err != nil {
		t.Fatal(err)
	}
	j := pde.NewInstance()
	qs, err := pde.ParseQueries("q(x,g) :- Rec(x,g,u)")
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]

	plain, err := pde.CertainAnswers(s, i, j, q)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := pde.CertainAnswers(s, i, j, q, pde.Options{Compiled: true})
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.Compiled || compiled.FallbackReason != "" {
		t.Fatalf("compiled path did not run: %+v", compiled)
	}
	if len(compiled.Answers) != 2 || len(plain.Answers) != len(compiled.Answers) {
		t.Fatalf("answers differ: compiled %v, plain %v", compiled.Answers, plain.Answers)
	}
	for k := range plain.Answers {
		if plain.Answers[k].String() != compiled.Answers[k].String() {
			t.Fatalf("answers differ at %d: compiled %v, plain %v", k, compiled.Answers, plain.Answers)
		}
	}
	if got := pde.ClassifyCompilable(s); got != "" {
		t.Fatalf("ClassifyCompilable = %q, want compilable", got)
	}
}

func TestCertainCompiledFallback(t *testing.T) {
	// A target egd pushes the setting outside the compilable fragment:
	// the call must fall back to enumeration and say why.
	s := mustSetting(t, `
setting keyed
source Person/2
target Rec/2
st: Person(x,g) -> Rec(x,g)
t: Rec(x,g), Rec(x,h) -> g = h
`)
	i, err := pde.ParseInstance("Person(p1,g1).")
	if err != nil {
		t.Fatal(err)
	}
	j := pde.NewInstance()
	qs, err := pde.ParseQueries("q(x,g) :- Rec(x,g)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pde.CertainAnswers(s, i, j, qs[0], pde.Options{Compiled: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compiled || res.FallbackReason != "target-deps" {
		t.Fatalf("want enumeration fallback with reason target-deps, got %+v", res)
	}
	if !res.SolutionExists || len(res.Answers) != 1 {
		t.Fatalf("fallback result wrong: %+v", res)
	}
	if got := pde.ClassifyCompilable(s); got != "target-deps" {
		t.Fatalf("ClassifyCompilable = %q", got)
	}
	if _, err := pde.CompileCertain(s, qs[0]); pde.CompiledFallbackReason(err) != "target-deps" {
		t.Fatalf("CompileCertain err = %v", err)
	}
}
