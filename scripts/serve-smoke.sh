#!/usr/bin/env bash
# serve-smoke.sh — end-to-end smoke of pdxd over plain curl: build pdx,
# start the daemon on an ephemeral port, register the smoke setting,
# POST the corpus instances, check the EXP-EX1 verdicts and the certain
# answers, then SIGTERM and verify a clean drain. A second daemon then
# restarts over the same -snapshot-dir and must serve its first solve
# straight from the persisted chase cache. Run from the repo root; CI
# runs this after the test suite.
set -euo pipefail

workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/pdx" ./cmd/pdx

"$workdir/pdx" serve -addr 127.0.0.1:0 -snapshot-dir "$workdir/snapshots" \
  >"$workdir/stdout" 2>"$workdir/stderr" &
pid=$!

for _ in $(seq 1 100); do
  grep -q "pdxd listening on " "$workdir/stdout" 2>/dev/null && break
  kill -0 "$pid" 2>/dev/null || { echo "daemon died:"; cat "$workdir/stderr"; exit 1; }
  sleep 0.1
done
base=$(sed -n 's/^pdxd listening on //p' "$workdir/stdout")
[ -n "$base" ] || { echo "no listen banner"; cat "$workdir/stderr"; exit 1; }
echo "daemon at $base"

# json_text FILE — the file's contents as a JSON string literal.
json_text() {
  awk 'BEGIN{printf "\""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); printf "%s\\n", $0} END{printf "\""}' "$1"
}

id=$(curl -sS -X POST "$base/v1/settings" \
  -d "{\"setting\":$(json_text examples/settings/server-smoke.pde)}" |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "registration returned no id"; exit 1; }
echo "registered $id"

check_exists() { # check_exists FACTS_FILE WANT
  local got
  got=$(curl -sS -X POST "$base/v1/exists-solution" \
    -d "{\"setting_id\":\"$id\",\"source\":$(json_text "$1")}" |
    sed -n 's/.*"exists":\(true\|false\).*/\1/p')
  if [ "$got" != "$2" ]; then
    echo "FAIL: $1 -> exists=$got, want $2"
    exit 1
  fi
  echo "ok: $1 -> exists=$got"
}

check_exists examples/corpus/path.facts false
check_exists examples/corpus/selfloop.facts true
check_exists examples/corpus/triangle.facts true

answers=$(curl -sS -X POST "$base/v1/certain-answers" \
  -d "{\"setting_id\":\"$id\",\"source\":$(json_text examples/corpus/triangle.facts),\"query\":$(json_text examples/corpus/queries.cq)}")
case "$answers" in
  *'"answers":[["a","c"]]'*) echo "ok: certain answers = [[a,c]]" ;;
  *) echo "FAIL: certain answers response: $answers"; exit 1 ;;
esac
case "$answers" in
  *'"compiled":true'*) echo "ok: certain answers served by the compiled plan" ;;
  *) echo "FAIL: certain answers did not use the compiled plan: $answers"; exit 1 ;;
esac

# Batch certain answers: two queries in one round trip, both served
# from compiled plans (this setting is in the compilable fragment).
batch=$(curl -sS -X POST "$base/v1/certain-answers/batch" \
  -d "{\"setting_id\":\"$id\",\"source\":$(json_text examples/corpus/triangle.facts),\"queries\":[\"q1(x,y) :- H(x,y)\",\"q2 :- H(x,y)\"]}")
case "$batch" in
  *'"answers":[["a","c"]]'*) ;;
  *) echo "FAIL: batch certain answers response: $batch"; exit 1 ;;
esac
case "$batch" in
  *'"compiled":false'*) echo "FAIL: batch fell back to enumeration: $batch"; exit 1 ;;
  *'"compiled":true'*) echo "ok: batch certain answers compiled, [[a,c]] for q1" ;;
  *) echo "FAIL: batch certain answers response: $batch"; exit 1 ;;
esac
plan_misses=$(curl -sS "$base/metrics" | sed -n 's/^pdxd_plan_cache_misses_total \([0-9]*\)$/\1/p')
[ -n "$plan_misses" ] && [ "$plan_misses" -ge 1 ] || {
  echo "FAIL: plan cache counters missing from /metrics"; exit 1; }
echo "ok: plan cache compiled $plan_misses plan(s)"

# Chased-instance cache: register the path instance, solve twice by ID
# (the repeat must bump the cache-hit counter), append the closing edge,
# and re-solve against the migrated cache entry.
iid=$(curl -sS -X POST "$base/v1/instances" \
  -d "{\"instance\":$(json_text examples/corpus/path.facts)}" |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$iid" ] || { echo "FAIL: instance registration returned no id"; exit 1; }
echo "registered instance $iid"

check_exists_by_id() { # check_exists_by_id INSTANCE_ID WANT
  local got
  got=$(curl -sS -X POST "$base/v1/exists-solution" \
    -d "{\"setting_id\":\"$id\",\"source_id\":\"$1\"}" |
    sed -n 's/.*"exists":\(true\|false\).*/\1/p')
  if [ "$got" != "$2" ]; then
    echo "FAIL: solve by id $1 -> exists=$got, want $2"
    exit 1
  fi
}

cache_hits() {
  curl -sS "$base/metrics" | sed -n 's/^pdxd_chase_cache_hits_total \([0-9]*\)$/\1/p'
}

hits_before=$(cache_hits)
check_exists_by_id "$iid" false
check_exists_by_id "$iid" false
hits_after=$(cache_hits)
[ "$hits_after" -gt "$hits_before" ] || {
  echo "FAIL: cache hit counter did not move ($hits_before -> $hits_after)"; exit 1; }
echo "ok: warm repeat solve hit the chase cache ($hits_before -> $hits_after)"

append=$(curl -sS -X POST "$base/v1/instances/$iid/append" -d '{"facts":"E(a,c)."}')
newid=$(printf '%s' "$append" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
{ [ -n "$newid" ] && [ "$newid" != "$iid" ]; } || {
  echo "FAIL: append response: $append"; exit 1; }
case "$append" in
  *'"resumed":1'*) echo "ok: append migrated the cache entry incrementally" ;;
  *) echo "FAIL: append did not resume the cached chase: $append"; exit 1 ;;
esac
check_exists_by_id "$newid" true
echo "ok: re-solve after append (triangle closed -> solution exists)"

# One scrape, checked offline: grep -q on a curl pipe trips pipefail
# once the body outgrows the pipe buffer (grep exits at the match,
# curl gets EPIPE).
metrics=$(curl -sS "$base/metrics")
printf '%s\n' "$metrics" | grep -q '^pdxd_registry_settings 1$' || {
  echo "FAIL: metrics missing registry gauge"; exit 1; }
printf '%s\n' "$metrics" | grep -q '^pdxd_chase_cache_resumes_total 1$' || {
  echo "FAIL: metrics missing resume counter"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: daemon exited uncleanly"; cat "$workdir/stderr"; exit 1; }
grep -q '"msg":"drained"' "$workdir/stderr" || { echo "FAIL: no drain log"; exit 1; }

# Warm restart: the drain flushed the write-behind queue, so a second
# daemon over the same -snapshot-dir (with the setting preloaded, since
# snapshots only install for registered settings) must answer its first
# solve-by-id from the restored cache.
ls "$workdir/snapshots"/*.pdxsnap >/dev/null 2>&1 || {
  echo "FAIL: drain left no snapshot files"; exit 1; }

"$workdir/pdx" serve -addr 127.0.0.1:0 -snapshot-dir "$workdir/snapshots" \
  examples/settings/server-smoke.pde >"$workdir/stdout2" 2>"$workdir/stderr2" &
pid=$!
for _ in $(seq 1 100); do
  grep -q "pdxd listening on " "$workdir/stdout2" 2>/dev/null && break
  kill -0 "$pid" 2>/dev/null || { echo "restarted daemon died:"; cat "$workdir/stderr2"; exit 1; }
  sleep 0.1
done
base=$(sed -n 's/^pdxd listening on //p' "$workdir/stdout2")
[ -n "$base" ] || { echo "no listen banner after restart"; cat "$workdir/stderr2"; exit 1; }
echo "restarted daemon at $base"

loads=$(curl -sS "$base/metrics" | sed -n 's/^pdxd_snapshot_loads_total \([0-9]*\)$/\1/p')
[ -n "$loads" ] && [ "$loads" -ge 1 ] || {
  echo "FAIL: restarted daemon loaded no snapshots"; cat "$workdir/stderr2"; exit 1; }
warm=$(curl -sS -X POST "$base/v1/exists-solution" \
  -d "{\"setting_id\":\"$id\",\"source_id\":\"$newid\"}")
case "$warm" in
  *'"cache_hit":true'*) echo "ok: first solve after restart was warm ($loads snapshots loaded)" ;;
  *) echo "FAIL: first solve after restart was cold: $warm"; exit 1 ;;
esac

kill -TERM "$pid"
wait "$pid" || { echo "FAIL: restarted daemon exited uncleanly"; cat "$workdir/stderr2"; exit 1; }
echo "serve smoke passed"
