package main

import "testing"

// TestLatestBaseline pins the auto-selection rule CI relies on: the
// numerically highest BENCH_PR<k>.json wins, everything else in the
// repository root is ignored.
func TestLatestBaseline(t *testing.T) {
	for _, tc := range []struct {
		names  []string
		want   string
		wantOK bool
	}{
		// Numeric, not lexicographic: PR10 beats PR9.
		{[]string{"BENCH_PR4.json", "BENCH_PR10.json", "BENCH_PR9.json"}, "BENCH_PR10.json", true},
		{[]string{"BENCH_PR9.json", "BENCH_PR8.json"}, "BENCH_PR9.json", true},
		{[]string{"BENCH_PR7.json"}, "BENCH_PR7.json", true},
		// Near-miss names never match: wrong case, missing number,
		// wrong extension, extra prefix or suffix.
		{[]string{
			"bench_pr5.json", "BENCH_PRx.json", "BENCH_PR.json",
			"BENCH_PR5.json.bak", "OLD_BENCH_PR5.json", "BENCH_PR5.txt",
			"README.md", "go.mod",
		}, "", false},
		// Matches mixed into noise still win.
		{[]string{"README.md", "BENCH_PR2.json", "scripts", "BENCH_PR11.json", "BENCH_PR3.json.orig"}, "BENCH_PR11.json", true},
		{nil, "", false},
	} {
		got, ok := latestBaseline(tc.names)
		if got != tc.want || ok != tc.wantOK {
			t.Errorf("latestBaseline(%v) = %q, %v; want %q, %v", tc.names, got, ok, tc.want, tc.wantOK)
		}
	}
}
