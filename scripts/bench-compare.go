// Command bench-compare gates perf regressions in CI: it diffs a fresh
// `pdxbench -json` run against a committed baseline (BENCH_PR<k>.json)
// and fails when any benchmark present in both runs got more than
// -threshold slower in ns/op. Names only in one run are reported but
// never gate, so adding or retiring benchmarks doesn't break the gate.
//
// Without -baseline the highest-numbered BENCH_PR<k>.json in the
// repository root is used, so landing a fresh baseline automatically
// retargets the gate — no CI edit per PR.
//
// Usage:
//
//	go run ./scripts -current /tmp/bench.json
//	go run ./scripts -baseline BENCH_PR7.json -current /tmp/bench.json -threshold 0.40
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

type benchRecord struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	Steps       int    `json:"steps,omitempty"`
	Nodes       int64  `json:"nodes,omitempty"`
	Merges      int    `json:"merges,omitempty"`
	Finds       int    `json:"finds,omitempty"`
}

type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// baselinePattern matches committed baseline file names, capturing the
// PR number.
var baselinePattern = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline picks the name with the highest BENCH_PR<k>.json
// number from a directory listing (numerically, so PR10 beats PR9).
// Non-matching names are ignored; ok is false when nothing matches.
func latestBaseline(names []string) (best string, ok bool) {
	bestK := -1
	for _, n := range names {
		m := baselinePattern.FindStringSubmatch(filepath.Base(n))
		if m == nil {
			continue
		}
		k, err := strconv.Atoi(m[1])
		if err != nil || k <= bestK {
			continue
		}
		best, bestK = n, k
	}
	return best, bestK >= 0
}

// findBaseline scans dir for the latest committed baseline.
func findBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	name, ok := latestBaseline(names)
	if !ok {
		return "", fmt.Errorf("no BENCH_PR<k>.json baseline in %s", dir)
	}
	return filepath.Join(dir, name), nil
}

func load(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &rep, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (empty = highest-numbered BENCH_PR<k>.json in -baseline-dir)")
	baselineDir := flag.String("baseline-dir", ".", "directory scanned for BENCH_PR<k>.json when -baseline is empty")
	current := flag.String("current", "", "fresh pdxbench -json output to compare")
	threshold := flag.Float64("threshold", 0.25, "max tolerated ns/op regression (0.25 = +25%)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "bench-compare: -current is required")
		os.Exit(2)
	}
	if *baseline == "" {
		found, err := findBaseline(*baselineDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
			os.Exit(2)
		}
		*baseline = found
		fmt.Printf("baseline: %s (latest committed)\n", found)
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-compare: %v\n", err)
		os.Exit(2)
	}
	if base.GoVersion != cur.GoVersion || base.NumCPU != cur.NumCPU {
		fmt.Printf("note: environments differ (baseline %s/%d cpu, current %s/%d cpu); ns/op deltas include machine skew\n",
			base.GoVersion, base.NumCPU, cur.GoVersion, cur.NumCPU)
	}

	baseByName := make(map[string]benchRecord, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}

	var regressions []string
	names := make([]string, 0, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	curByName := make(map[string]benchRecord, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curByName[r.Name] = r
	}

	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "baseline ns", "current ns", "delta")
	for _, name := range names {
		c := curByName[name]
		b, ok := baseByName[name]
		if !ok {
			fmt.Printf("%-40s %14s %14d %8s\n", name, "(new)", c.NsPerOp, "-")
			continue
		}
		ratio := float64(c.NsPerOp)/float64(b.NsPerOp) - 1
		mark := ""
		if ratio > *threshold {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%+.1f%%, limit %+.0f%%)", name, b.NsPerOp, c.NsPerOp, 100*ratio, 100**threshold))
		}
		fmt.Printf("%-40s %14d %14d %+7.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, 100*ratio, mark)
		if b.Steps != 0 && c.Steps != 0 && b.Steps != c.Steps {
			fmt.Printf("%-40s   steps changed: %d -> %d\n", "", b.Steps, c.Steps)
		}
		if b.Nodes != 0 && c.Nodes != 0 && b.Nodes != c.Nodes {
			fmt.Printf("%-40s   nodes changed: %d -> %d\n", "", b.Nodes, c.Nodes)
		}
	}
	var retired []string
	for name := range baseByName {
		if _, ok := curByName[name]; !ok {
			retired = append(retired, name)
		}
	}
	sort.Strings(retired)
	for _, name := range retired {
		fmt.Printf("%-40s retired (baseline only)\n", name)
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbench-compare: %d regression(s) beyond the %.0f%% gate:\n", len(regressions), 100**threshold)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbench-compare: ok (%d compared, gate %.0f%%)\n", len(curByName), 100**threshold)
}
