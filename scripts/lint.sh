#!/usr/bin/env bash
# lint.sh — the full local lint stack, in the same order CI runs it.
#
#   gofmt          formatting (fails on any unformatted file)
#   go vet         the standard vet suite
#   go vet (extra) copylocks + lostcancel explicitly, so a vet-default
#                  change upstream can't silently drop them
#   pdxlint        the repo's own analyzers (internal/lintgo) run as a
#                  -vettool backend; zero diagnostics required
#   go test        the analyzer test suites themselves
#   staticcheck    only if installed (CI installs it; local runs skip)
#   govulncheck    only if installed (never installed by this script)
#
# The script installs nothing: optional tools are gated on `command -v`.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
unformatted=$(gofmt -l . 2>/dev/null | grep -v '^internal/lintgo/testdata/' || true)
if [ -n "$unformatted" ]; then
  echo "unformatted files:"
  echo "$unformatted"
  fail=1
fi

echo "== go vet ./..."
go vet ./... || fail=1

echo "== go vet -copylocks -lostcancel ./..."
go vet -copylocks -lostcancel ./... || fail=1

echo "== pdxlint (go vet -vettool)"
mkdir -p bin
go build -o bin/pdxlint ./cmd/pdxlint
if go vet -vettool="$PWD/bin/pdxlint" ./...; then
  echo "pdxlint: 0 diagnostics"
else
  fail=1
fi

echo "== go test ./internal/lintgo/... ./internal/lint/..."
go test ./internal/lintgo/... ./internal/lint/... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck ./..."
  staticcheck ./... || fail=1
else
  echo "== staticcheck: not installed, skipping"
fi

if command -v govulncheck >/dev/null 2>&1; then
  echo "== govulncheck ./..."
  govulncheck ./... || fail=1
else
  echo "== govulncheck: not installed, skipping"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAIL"
  exit 1
fi
echo "lint: OK"
