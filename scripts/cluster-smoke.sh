#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end smoke of a 3-shard pdxd cluster: build
# pdx, start three daemons peered over loopback, register the smoke
# setting on shard 1 (broadcast to the fleet), solve through a
# non-owner shard and assert the ring routed it (exactly one owner
# compute fleet-wide, a proxied hit on the caller), kill the owner and
# assert correct answers after the rebalance, then restart it and
# assert the surviving holder hands the cache entry home over the
# snapshot wire format. Run from the repo root; CI runs this after the
# test suite.
set -euo pipefail

workdir=$(mktemp -d)
pids=()
trap 'kill "${pids[@]}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/pdx" ./cmd/pdx

# Three shards need to know each other's URLs before any of them binds,
# so ephemeral :0 ports are out: probe for three free fixed ports and
# retry the whole launch on a lost race.
port_free() { ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; }

start_shard() { # start_shard N  (writes pid into pids[N-1])
  local n="$1"
  "$workdir/pdx" serve -addr "127.0.0.1:${ports[n-1]}" \
    -cluster-self "${urls[n-1]}" -cluster-peers "$peerlist" \
    -cluster-probe 100ms \
    >"$workdir/out$n" 2>"$workdir/err$n" &
  pids[n-1]=$!
}

wait_banner() { # wait_banner N
  local n="$1"
  for _ in $(seq 1 100); do
    grep -q "pdxd listening on " "$workdir/out$n" 2>/dev/null && return 0
    kill -0 "${pids[n-1]}" 2>/dev/null || return 1
    sleep 0.1
  done
  return 1
}

launched=false
for _ in $(seq 1 10); do
  base_port=$((20000 + RANDOM % 30000))
  ports=($base_port $((base_port + 1)) $((base_port + 2)))
  ok=true
  for p in "${ports[@]}"; do port_free "$p" || ok=false; done
  $ok || continue
  urls=()
  for p in "${ports[@]}"; do urls+=("http://127.0.0.1:$p"); done
  peerlist=$(IFS=,; echo "${urls[*]}")
  for n in 1 2 3; do start_shard "$n"; done
  ok=true
  for n in 1 2 3; do wait_banner "$n" || ok=false; done
  if $ok; then launched=true; break; fi
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  pids=()
done
$launched || { echo "FAIL: could not launch the fleet"; cat "$workdir"/err* 2>/dev/null; exit 1; }
echo "fleet at ${urls[*]}"

metric() { # metric BASE NAME -> value (0 when absent)
  local v
  v=$(curl -sS "$1/metrics" | sed -n "s/^$2 \([0-9]*\)\$/\1/p")
  echo "${v:-0}"
}

wait_metric() { # wait_metric BASE NAME WANT
  for _ in $(seq 1 100); do
    [ "$(metric "$1" "$2")" = "$3" ] && return 0
    sleep 0.1
  done
  echo "FAIL: $1 $2 never reached $3 (at $(metric "$1" "$2"))"
  return 1
}

for u in "${urls[@]}"; do wait_metric "$u" pdxd_cluster_peers_alive 3; done
echo "ok: every shard sees 3 live members"

# json_text FILE — the file's contents as a JSON string literal.
json_text() {
  awk 'BEGIN{printf "\""} {gsub(/\\/,"\\\\"); gsub(/"/,"\\\""); printf "%s\\n", $0} END{printf "\""}' "$1"
}

id=$(curl -sS -X POST "${urls[0]}/v1/settings" \
  -d "{\"setting\":$(json_text examples/settings/server-smoke.pde)}" |
  sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "FAIL: registration returned no id"; exit 1; }
echo "registered $id on shard 1"

# The broadcast is synchronous: every shard already has the setting.
for u in "${urls[@]}"; do
  curl -sS "$u/v1/settings" | grep -q "$id" || {
    echo "FAIL: $u missed the registration broadcast"; exit 1; }
done
echo "ok: registration broadcast reached the fleet"

# Register the instance everywhere (content-addressed, same ID), so any
# shard accepts a solve-by-id for it.
iid=""
for u in "${urls[@]}"; do
  iid=$(curl -sS -X POST "$u/v1/instances" \
    -d "{\"instance\":$(json_text examples/corpus/triangle.facts)}" |
    sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
  [ -n "$iid" ] || { echo "FAIL: instance registration on $u"; exit 1; }
done

owner=$("$workdir/pdx" cluster-status -addr "${urls[0]}" \
  -setting-id "$id" -source-id "$iid" -owner-only)
echo "owner of ($id, $iid) is $owner"
caller="" owner_n=0
for n in 1 2 3; do
  if [ "${urls[n-1]}" = "$owner" ]; then owner_n=$n; else caller=${caller:-${urls[n-1]}}; fi
done
[ "$owner_n" != 0 ] || { echo "FAIL: owner $owner is not a fleet member"; exit 1; }

got=$(curl -sS -X POST "$caller/v1/exists-solution" \
  -d "{\"setting_id\":\"$id\",\"source_id\":\"$iid\"}" |
  sed -n 's/.*"exists":\(true\|false\).*/\1/p')
[ "$got" = true ] || { echo "FAIL: triangle solve via non-owner -> exists=$got"; exit 1; }

# Exactly one chase fleet-wide, attributed to the owner; the caller
# proxied rather than computing.
computes=0
for u in "${urls[@]}"; do computes=$((computes + $(metric "$u" pdxd_cluster_owner_computes_total))); done
[ "$computes" = 1 ] || { echo "FAIL: fleet ran $computes chases, want 1"; exit 1; }
[ "$(metric "$owner" pdxd_cluster_owner_computes_total)" = 1 ] || {
  echo "FAIL: the one chase did not run on the owner"; exit 1; }
[ "$(metric "$caller" pdxd_cluster_proxied_total)" = 1 ] || {
  echo "FAIL: caller did not proxy the solve"; exit 1; }
echo "ok: one owner compute, one proxied hit"

# Kill the owner. Survivors drop it from the ring and the same request
# still answers correctly — recomputed once by the key's new owner.
kill -TERM "${pids[owner_n-1]}"
wait "${pids[owner_n-1]}" 2>/dev/null || true
survivors=()
for n in 1 2 3; do [ "$n" != "$owner_n" ] && survivors+=("${urls[n-1]}"); done
for u in "${survivors[@]}"; do wait_metric "$u" pdxd_cluster_peers_alive 2; done
echo "ok: survivors see the owner dead"

for u in "${survivors[@]}"; do
  got=$(curl -sS -X POST "$u/v1/exists-solution" \
    -d "{\"setting_id\":\"$id\",\"source_id\":\"$iid\"}" |
    sed -n 's/.*"exists":\(true\|false\).*/\1/p')
  [ "$got" = true ] || { echo "FAIL: post-kill solve via $u -> exists=$got"; exit 1; }
done
computes=0
for u in "${survivors[@]}"; do computes=$((computes + $(metric "$u" pdxd_cluster_owner_computes_total))); done
[ "$computes" = 1 ] || { echo "FAIL: survivors ran $computes chases after failover, want 1"; exit 1; }
echo "ok: correct answers after rebalance, exactly one recompute"

# Restart the dead shard cold. Once probed alive, the keys it owns flow
# home: the surviving holder pushes the entry over the snapshot wire
# format (healing the fresh shard's empty registry along the way).
start_shard "$owner_n"
wait_banner "$owner_n" || { echo "FAIL: restarted shard died"; cat "$workdir/err$owner_n"; exit 1; }
for u in "${urls[@]}"; do wait_metric "$u" pdxd_cluster_peers_alive 3; done

for _ in $(seq 1 100); do
  [ "$(metric "$owner" pdxd_snapshot_warm_transfers_total)" -ge 1 ] && break
  sleep 0.1
done
handoffs=0
for u in "${survivors[@]}"; do handoffs=$((handoffs + $(metric "$u" pdxd_cluster_handoffs_total))); done
[ "$handoffs" -ge 1 ] || { echo "FAIL: no survivor recorded a handoff"; exit 1; }
[ "$(metric "$owner" pdxd_snapshot_warm_transfers_total)" -ge 1 ] || {
  echo "FAIL: restarted shard installed no handoff"; exit 1; }
ringchanges=$(metric "${survivors[0]}" pdxd_cluster_ring_changes_total)
[ "$ringchanges" -ge 2 ] || { echo "FAIL: ring change counter at $ringchanges, want >= 2"; exit 1; }
echo "ok: handoff flowed home after the restart ($handoffs pushed)"

# The restarted owner serves the identity straight from the handed-off
# entry: cache hit, no new chase anywhere.
warm=$(curl -sS -X POST "$owner/v1/exists-solution" \
  -d "{\"setting_id\":\"$id\",\"source_id\":\"$iid\"}")
case "$warm" in
  *'"exists":true'*'"cache_hit":true'* | *'"cache_hit":true'*'"exists":true'*) ;;
  *) echo "FAIL: post-handoff solve was cold or wrong: $warm"; exit 1 ;;
esac
[ "$(metric "$owner" pdxd_cluster_owner_computes_total)" = 0 ] || {
  echo "FAIL: restarted owner re-chased a handed-off entry"; exit 1; }
echo "ok: restarted owner answers warm from the handoff"

for n in 1 2 3; do kill -TERM "${pids[n-1]}" 2>/dev/null || true; done
echo "cluster smoke passed"
