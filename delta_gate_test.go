package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chase"
	"repro/internal/rel"
	"repro/pde"
)

// TestDeltaChaseGateExamples is the CI parity gate for the semi-naive
// chase: for every checked-in example setting, chasing a deterministic
// synthetic source instance with Σst (plus Σt) and the resulting
// target instance with Σts must fire exactly the same steps — and
// produce byte-identical instances and failure verdicts — with
// semi-naive trigger collection as with the naive rescan, serially and
// in parallel. The cyclic example exhausts its step budget either way;
// the gate requires the budget error and the truncated instances to
// match too.
func TestDeltaChaseGateExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "settings", "*.pde"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example settings found: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, err := pde.ParseSetting(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		inst := syntheticSourceInstance(s.Source)
		inst.Freeze()

		stDeps := append(s.StDeps(), s.T...)
		t.Run(filepath.Base(file), func(t *testing.T) {
			for _, par := range []int{1, 4} {
				naive, nerr := chase.Run(inst, stDeps, chase.Options{MaxSteps: 2000, Parallelism: par, NaiveTriggers: true})
				semi, serr := chase.Run(inst, stDeps, chase.Options{MaxSteps: 2000, Parallelism: par})
				compareChaseRuns(t, fmt.Sprintf("Σst par=%d", par), naive, nerr, semi, serr)
				if nerr != nil || naive.Failed {
					continue
				}
				// Second phase: chase the target part back with Σts.
				jcan := naive.Instance.Restrict(s.Target)
				jcan.Freeze()
				n2, n2err := chase.Run(jcan, s.TsDeps(), chase.Options{MaxSteps: 2000, Parallelism: par, NaiveTriggers: true})
				s2, s2err := chase.Run(jcan, s.TsDeps(), chase.Options{MaxSteps: 2000, Parallelism: par})
				compareChaseRuns(t, fmt.Sprintf("Σts par=%d", par), n2, n2err, s2, s2err)
			}
		})
	}
}

func compareChaseRuns(t *testing.T, phase string, naive *chase.Result, nerr error, semi *chase.Result, serr error) {
	t.Helper()
	if (nerr == nil) != (serr == nil) {
		t.Fatalf("%s: naive err=%v, semi-naive err=%v", phase, nerr, serr)
	}
	if naive.Steps != semi.Steps {
		t.Fatalf("%s: semi-naive fired %d steps, naive fired %d", phase, semi.Steps, naive.Steps)
	}
	if naive.Failed != semi.Failed || naive.FailedOn != semi.FailedOn {
		t.Fatalf("%s: failure verdicts differ: naive (%v, %q), semi-naive (%v, %q)",
			phase, naive.Failed, naive.FailedOn, semi.Failed, semi.FailedOn)
	}
	if naive.Instance.String() != semi.Instance.String() {
		t.Fatalf("%s: instances differ\nnaive:\n%s\nsemi-naive:\n%s", phase, naive.Instance, semi.Instance)
	}
}

// syntheticSourceInstance populates every source relation with a small
// deterministic fact set over a three-value domain, enough to wake up
// joins and self-joins in the example bodies.
func syntheticSourceInstance(schema *rel.Schema) *rel.Instance {
	dom := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Const("c")}
	inst := rel.NewInstance()
	for _, name := range schema.Relations() {
		arity, _ := schema.Arity(name)
		for start := 0; start < len(dom); start++ {
			tup := make(rel.Tuple, arity)
			for pos := 0; pos < arity; pos++ {
				tup[pos] = dom[(start+pos)%len(dom)]
			}
			inst.AddTuple(name, tup)
		}
		// A diagonal fact exercises repeated-variable atoms.
		diag := make(rel.Tuple, arity)
		for pos := 0; pos < arity; pos++ {
			diag[pos] = dom[0]
		}
		inst.AddTuple(name, diag)
	}
	return inst
}
