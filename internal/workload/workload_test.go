package workload_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
	"repro/internal/workload"
)

func TestLAVSettingInCtract(t *testing.T) {
	s := workload.LAVSetting()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := s.Classify()
	if !rep.InCtract || !rep.Cond21 {
		t.Errorf("LAV setting should be in C_tract via 2.1: %s", rep.Summary())
	}
}

func TestLAVInstanceSolvability(t *testing.T) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(1))
	for _, solvable := range []bool{true, false} {
		i, j := workload.LAVInstance(30, solvable, rng)
		got, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != solvable {
			t.Errorf("solvable=%v but tractable SOL=%v", solvable, got)
		}
		// Generic solver must agree (EXP-T5 in miniature).
		gen, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gen != solvable {
			t.Errorf("solvable=%v but generic SOL=%v", solvable, gen)
		}
	}
}

func TestFullSTSettingInCtract(t *testing.T) {
	s := workload.FullSTSetting()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rep := s.Classify()
	if !rep.InCtract || !rep.Cond22 {
		t.Errorf("full-st setting should be in C_tract via 2.2: %s", rep.Summary())
	}
	for _, d := range s.ST {
		if !d.IsFull() {
			t.Errorf("st tgd %s not full", d.Label)
		}
	}
}

func TestFullSTInstanceSolvability(t *testing.T) {
	s := workload.FullSTSetting()
	rng := rand.New(rand.NewSource(2))
	for _, solvable := range []bool{true, false} {
		i, j := workload.FullSTInstance(20, solvable, rng)
		got, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != solvable {
			t.Errorf("solvable=%v but tractable SOL=%v", solvable, got)
		}
		gen, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gen != solvable {
			t.Errorf("solvable=%v but generic SOL=%v", solvable, gen)
		}
	}
}

func TestChainChaseStepsExactlyDepthTimesN(t *testing.T) {
	for _, tc := range []struct{ depth, n int }{{1, 5}, {3, 10}, {5, 4}} {
		deps := workload.ChainDeps(tc.depth)
		res, err := chase.Run(workload.ChainInstance(tc.n), deps, chase.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != tc.depth*tc.n {
			t.Errorf("depth=%d n=%d: steps=%d, want %d", tc.depth, tc.n, res.Steps, tc.depth*tc.n)
		}
	}
}

func TestCyclicDepsDiverge(t *testing.T) {
	_, err := chase.Run(workload.CyclicInstance(), workload.CyclicDeps(), chase.Options{MaxSteps: 500})
	if !errors.Is(err, chase.ErrBudgetExhausted) {
		t.Errorf("cyclic chase should exhaust budget, got %v", err)
	}
}

func TestGenomicScenario(t *testing.T) {
	s := workload.GenomicSetting()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Classify().InCtract {
		t.Errorf("genomic setting should be in C_tract: %s", s.Classify().Summary())
	}
	rng := rand.New(rand.NewSource(3))

	i, j := workload.GenomicInstance(50, true, rng)
	got, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("clean genomic instance should have a solution")
	}
	sol, _, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || !s.IsSolution(i, j, sol) {
		t.Error("constructed genomic solution invalid")
	}
	// The solution keeps the university's local annotations.
	if !sol.ContainsAll(j) {
		t.Error("solution dropped pre-existing target facts")
	}

	i2, j2 := workload.GenomicInstance(50, false, rng)
	got, _, err = core.ExistsSolutionTractable(s, i2, j2, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("dirty genomic instance should have no solution (unvouched annotation)")
	}
}

func TestKeyedLAVSetting(t *testing.T) {
	s := workload.KeyedLAVSetting()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Classify().InCtract {
		t.Fatal("keyed setting must leave C_tract (non-empty Σt)")
	}
	e, ok := s.T[0].(dep.EGD)
	if !ok || !e.KeyShaped() {
		t.Fatalf("target constraint %v is not a key-shaped egd", s.T[0])
	}
}

// TestKeyedLAVInstanceMerges: the generator really is egd-heavy — the
// chase of Union(i, j) performs one merge per person and reaches a
// clean fixpoint, and both engines agree byte-for-byte.
func TestKeyedLAVInstanceMerges(t *testing.T) {
	const n = 60
	s := workload.KeyedLAVSetting()
	i, j := workload.KeyedLAVInstance(n)
	start := rel.Union(i, j)
	deps := append(append([]dep.Dependency{}, s.StDeps()...), s.T...)
	res, err := chase.Run(start, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("keyed chase failed on %s", res.FailedOn)
	}
	if res.Merges != n {
		t.Fatalf("chase applied %d merges, want one per person (%d)", res.Merges, n)
	}
	if res.UnionFind == nil || res.UnionFind.Merges() != n {
		t.Fatalf("union-find state not retained: %v", res.UnionFind)
	}
	legacy, err := chase.Run(start, deps, chase.Options{RebuildMerges: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Instance.String() != res.Instance.String() || legacy.Steps != res.Steps {
		t.Fatal("rebuild and union-find engines diverged on the keyed workload")
	}
	if legacy.UnionFind != nil {
		t.Fatal("rebuild engine retained a union-find")
	}
}
