// Package workload generates the synthetic settings and instances used
// by the experiment harness and the benchmarks: C_tract families for the
// Theorem 4 scaling experiments (a LAV target-to-source family and a
// full source-to-target family), chain dependencies for the chase-length
// experiment (Lemma 1), cyclic dependencies for the weak-acyclicity
// experiment, and the Swiss-Prot-style genomic scenario that motivates
// the paper's introduction.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"repro/internal/certain"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// ClusterKeys generates n deterministic ring-placement keys shaped
// exactly like the chase-cache identities pdxd shards: sha256-hex
// content IDs for the setting, the source instance, and the target
// instance, combined by cluster.Key. The population models a serving
// fleet — eight registered settings, each solved against many distinct
// source instances and the empty target — so placement benchmarks see
// the real key distribution rather than sequential strings.
func ClusterKeys(n int) []string {
	contentID := func(text string) string {
		sum := sha256.Sum256([]byte(text))
		return "sha256:" + hex.EncodeToString(sum[:])
	}
	emptyTgt := contentID("instance:empty")
	settings := make([]string, 8)
	for s := range settings {
		settings[s] = contentID(fmt.Sprintf("setting:%d", s))
	}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = cluster.Key(settings[i%len(settings)], contentID(fmt.Sprintf("instance:%d", i)), emptyTgt)
	}
	return keys
}

// LAVSetting returns the Theorem 4 / Corollary 2 family: arbitrary
// source-to-target tgds (with existentials) and LAV target-to-source
// tgds, hence a member of C_tract via conditions 1 and 2.1.
//
//	Source: Person/2 (person, group), Member/2 (person, group)
//	Target: Rec/3 (person, group, note)
//	Σst: Person(x,g) -> exists u: Rec(x,g,u)
//	Σts: Rec(x,g,u)  -> Member(x,g)
//
// A solution exists iff every Person pair is also a Member pair.
func LAVSetting() *core.Setting {
	return &core.Setting{
		Name:   "lav-records",
		Source: rel.SchemaOf("Person", 2, "Member", 2),
		Target: rel.SchemaOf("Rec", 3),
		ST: []dep.TGD{{
			Label: "st-person",
			Body:  []dep.Atom{dep.NewAtom("Person", dep.Var("x"), dep.Var("g"))},
			Head:  []dep.Atom{dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u"))},
		}},
		TS: []dep.TGD{{
			Label: "ts-member",
			Body:  []dep.Atom{dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u"))},
			Head:  []dep.Atom{dep.NewAtom("Member", dep.Var("x"), dep.Var("g"))},
		}},
	}
}

// LAVInstance builds an instance pair for LAVSetting with n persons
// spread over max(1, n/10) groups. When solvable is false, one Member
// fact is withheld, so no solution exists.
func LAVInstance(n int, solvable bool, rng *rand.Rand) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	groups := n / 10
	if groups < 1 {
		groups = 1
	}
	for p := 0; p < n; p++ {
		person := rel.Const(fmt.Sprintf("p%d", p))
		group := rel.Const(fmt.Sprintf("g%d", rng.Intn(groups)))
		i.Add("Person", person, group)
		if solvable || p != n-1 {
			i.Add("Member", person, group)
		}
	}
	return i, rel.NewInstance()
}

// KeyedLAVSetting is LAVSetting plus a key on the target: a Rec's
// person and group determine its note. The key egd is key-shaped
// (dep.EGD.KeyShaped), so the setting is resume-eligible under the
// union-find egd engine while still leaving C_tract (non-empty Σt).
// This is the generator family behind the egd-merge and keyed-resume
// benchmarks.
//
//	Source: Person/2 (person, group), Member/2 (person, group)
//	Target: Rec/3 (person, group, note)
//	Σst: Person(x,g)            -> exists u: Rec(x,g,u)
//	Σts: Rec(x,g,u)             -> Member(x,g)
//	Σt:  Rec(x,g,u), Rec(x,g,v) -> u = v
func KeyedLAVSetting() *core.Setting {
	base := LAVSetting()
	return &core.Setting{
		Name:   "keyed-lav-records",
		Source: base.Source,
		Target: base.Target,
		ST:     base.ST,
		TS:     base.TS,
		T: []dep.Dependency{dep.EGD{
			Label: "rec-note-key",
			Body: []dep.Atom{
				dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("u")),
				dep.NewAtom("Rec", dep.Var("x"), dep.Var("g"), dep.Var("v")),
			},
			Left: "u", Right: "v",
		}},
	}
}

// KeyedLAVInstance builds an egd-heavy instance pair for
// KeyedLAVSetting: n persons, each in two groups (both memberships
// present, so a solution exists), and a target pre-seeded with two
// draft notes for every person's first group. The drafts violate the
// key, so the chase performs one merge per person — alternating
// null-into-null and null-into-constant merges — while the second
// group's Rec facts come from Σst with fresh nulls and never violate
// it. The chase of Union(i, j) therefore applies Θ(n) merges over a
// Θ(n)-tuple Rec relation: the workload where rebuild-per-merge costs
// Θ(n²) and the union-find engine stays near-linear.
func KeyedLAVInstance(n int) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	j := rel.NewInstance()
	groups := n / 10
	if groups < 1 {
		groups = 1
	}
	for p := 0; p < n; p++ {
		person := rel.Const(fmt.Sprintf("p%d", p))
		g1 := rel.Const(fmt.Sprintf("g%d", p%groups))
		g2 := rel.Const(fmt.Sprintf("g%d", (p+1)%groups))
		i.Add("Person", person, g1)
		i.Add("Person", person, g2)
		i.Add("Member", person, g1)
		i.Add("Member", person, g2)
		// Two drafts for (person, g1): the key egd merges them. Even
		// persons get two labeled nulls (null-into-null merge), odd ones
		// a null and a constant note (null-into-constant merge).
		j.Add("Rec", person, g1, rel.Null(2*p+1))
		if p%2 == 0 {
			j.Add("Rec", person, g1, rel.Null(2*p+2))
		} else {
			j.Add("Rec", person, g1, rel.Const(fmt.Sprintf("note%d", p)))
		}
	}
	return i, j
}

// KeyedLAVAppend builds a batch of k fresh persons (ids starting at n)
// over KeyedLAVSetting's source schema, each in one existing group with
// the matching membership: the append workload for the keyed-resume
// benchmark. The batch carries no drafts, so resuming it fires Σst and
// re-checks the key without any new merge.
func KeyedLAVAppend(n, k int) *rel.Instance {
	a := rel.NewInstance()
	groups := n / 10
	if groups < 1 {
		groups = 1
	}
	for p := n; p < n+k; p++ {
		person := rel.Const(fmt.Sprintf("p%d", p))
		g := rel.Const(fmt.Sprintf("g%d", p%groups))
		a.Add("Person", person, g)
		a.Add("Member", person, g)
	}
	return a
}

// FullSTSetting returns the Theorem 4 / Corollary 1 family: full
// source-to-target tgds with join-heavy, existential target-to-source
// tgds; a member of C_tract via conditions 1 and 2.2.
//
//	Source: E/2, P2/2, Adj/2
//	Target: H/2
//	Σst: E(x,y)         -> H(x,y)
//	Σts: H(x,y), H(y,z) -> P2(x,z)
//	     H(x,y)         -> exists u: Adj(x,u)
func FullSTSetting() *core.Setting {
	return &core.Setting{
		Name:   "full-st-graph",
		Source: rel.SchemaOf("E", 2, "P2", 2, "Adj", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st-copy",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{
			{
				Label: "ts-compose",
				Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y")), dep.NewAtom("H", dep.Var("y"), dep.Var("z"))},
				Head:  []dep.Atom{dep.NewAtom("P2", dep.Var("x"), dep.Var("z"))},
			},
			{
				Label: "ts-adj",
				Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom("Adj", dep.Var("x"), dep.Var("u"))},
			},
		},
	}
}

// FullSTInstance builds a random sparse digraph with n vertices and
// roughly 2n edges, its length-2 composition in P2, and a witness in
// Adj per vertex. When solvable is false one required P2 fact is
// withheld.
func FullSTInstance(n int, solvable bool, rng *rand.Rand) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	type edge struct{ u, v int }
	var edges []edge
	seen := make(map[edge]bool)
	for e := 0; e < 2*n; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		ed := edge{u, v}
		if u == v || seen[ed] {
			continue
		}
		seen[ed] = true
		edges = append(edges, ed)
		i.Add("E", vtx(u), vtx(v))
		i.Add("Adj", vtx(u), rel.Const("w"))
	}
	// P2 = composition of E with itself.
	succ := make(map[int][]int)
	for _, e := range edges {
		succ[e.u] = append(succ[e.u], e.v)
	}
	var comp []edge
	for _, e := range edges {
		for _, z := range succ[e.v] {
			comp = append(comp, edge{e.u, z})
		}
	}
	for idx, c := range comp {
		if !solvable && idx == len(comp)-1 {
			continue
		}
		i.Add("P2", vtx(c.u), vtx(c.v))
	}
	if !solvable && len(comp) == 0 {
		// Degenerate graph without length-2 paths: withhold an Adj
		// witness instead so the instance is still unsolvable.
		if len(edges) > 0 {
			return FullSTInstance(n, solvable, rng) // retry with fresh edges
		}
	}
	return i, rel.NewInstance()
}

func vtx(v int) rel.Value { return rel.Const(fmt.Sprintf("v%d", v)) }

// ChainDeps returns the weakly acyclic chain
//
//	T0(x,y) -> exists z: T1(y,z), ..., T_{d-1}(x,y) -> exists z: T_d(y,z)
//
// used by the chase-length experiment (Lemma 1): the chase of an
// instance with n T0-facts terminates in exactly d*n steps.
func ChainDeps(depth int) []dep.Dependency {
	out := make([]dep.Dependency, 0, depth)
	for lvl := 0; lvl < depth; lvl++ {
		out = append(out, dep.TGD{
			Label: fmt.Sprintf("chain-%d", lvl),
			Body:  []dep.Atom{dep.NewAtom(chainRel(lvl), dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom(chainRel(lvl+1), dep.Var("y"), dep.Var("z"))},
		})
	}
	return out
}

func chainRel(lvl int) string { return fmt.Sprintf("T%d", lvl) }

// DeepChainDeps is ChainDeps with the dependencies listed deepest
// first. The chase processes a round's dependencies in order, so the
// forward listing cascades the whole chain inside a single round; the
// reversed listing fills exactly one layer per round, making the chase
// take depth+1 rounds. This is the deep-recursion shape where the
// naive chase re-enumerates every filled layer every round — Θ(depth²)
// body scans — while the semi-naive chase touches each layer's facts
// O(1) times (EXP-DELTA).
func DeepChainDeps(depth int) []dep.Dependency {
	fwd := ChainDeps(depth)
	out := make([]dep.Dependency, 0, len(fwd))
	for i := len(fwd) - 1; i >= 0; i-- {
		out = append(out, fwd[i])
	}
	return out
}

// ChainInstance builds an instance with n distinct T0 facts.
func ChainInstance(n int) *rel.Instance {
	inst := rel.NewInstance()
	for k := 0; k < n; k++ {
		inst.Add("T0", rel.Const(fmt.Sprintf("a%d", k)), rel.Const(fmt.Sprintf("b%d", k)))
	}
	return inst
}

// CyclicDeps returns the non-weakly-acyclic tgd
// T(x,y) -> exists z: T(y,z), whose chase diverges.
func CyclicDeps() []dep.Dependency {
	return []dep.Dependency{dep.TGD{
		Label: "cyclic",
		Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
	}}
}

// CyclicInstance builds a seed instance for CyclicDeps.
func CyclicInstance() *rel.Instance {
	inst := rel.NewInstance()
	inst.Add("T", rel.Const("a"), rel.Const("b"))
	return inst
}

// GenomicSetting returns the Swiss-Prot scenario from the paper's
// introduction: an authoritative source peer (Swiss-Prot) feeding a
// university target peer that restricts what it accepts.
//
//	Source: Protein/3 (acc, name, organism), Cites/2 (acc, pmid)
//	Target: GeneProduct/2 (acc, name), PaperRef/2 (acc, pmid)
//	Σst: Protein(a,n,o) -> GeneProduct(a,n)
//	     Cites(a,p)     -> PaperRef(a,p)
//	Σts: GeneProduct(a,n) -> exists o: Protein(a,n,o)
//	     PaperRef(a,p)    -> Cites(a,p)
//
// The target-to-source constraints say the university only keeps gene
// products and citations that Swiss-Prot vouches for; the setting is in
// C_tract (full Σst and LAV-shaped Σts).
func GenomicSetting() *core.Setting {
	return &core.Setting{
		Name:   "genomic",
		Source: rel.SchemaOf("Protein", 3, "Cites", 2),
		Target: rel.SchemaOf("GeneProduct", 2, "PaperRef", 2),
		ST: []dep.TGD{
			{
				Label: "st-protein",
				Body:  []dep.Atom{dep.NewAtom("Protein", dep.Var("a"), dep.Var("n"), dep.Var("o"))},
				Head:  []dep.Atom{dep.NewAtom("GeneProduct", dep.Var("a"), dep.Var("n"))},
			},
			{
				Label: "st-cites",
				Body:  []dep.Atom{dep.NewAtom("Cites", dep.Var("a"), dep.Var("p"))},
				Head:  []dep.Atom{dep.NewAtom("PaperRef", dep.Var("a"), dep.Var("p"))},
			},
		},
		TS: []dep.TGD{
			{
				Label: "ts-vouch",
				Body:  []dep.Atom{dep.NewAtom("GeneProduct", dep.Var("a"), dep.Var("n"))},
				Head:  []dep.Atom{dep.NewAtom("Protein", dep.Var("a"), dep.Var("n"), dep.Var("o"))},
			},
			{
				Label: "ts-cites",
				Body:  []dep.Atom{dep.NewAtom("PaperRef", dep.Var("a"), dep.Var("p"))},
				Head:  []dep.Atom{dep.NewAtom("Cites", dep.Var("a"), dep.Var("p"))},
			},
		},
	}
}

// GenomicInstance builds a source with n proteins (each with one
// citation) and a target with a few pre-existing local annotations.
// When clean is false, the target holds one GeneProduct unknown to the
// source, so no solution exists — the university's restriction rejects
// the exchange.
func GenomicInstance(n int, clean bool, rng *rand.Rand) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	j := rel.NewInstance()
	for k := 0; k < n; k++ {
		acc := rel.Const(fmt.Sprintf("P%05d", k))
		name := rel.Const(fmt.Sprintf("kinase-%d", k))
		org := rel.Const(fmt.Sprintf("org%d", rng.Intn(5)))
		pmid := rel.Const(fmt.Sprintf("pmid%d", 10000+k))
		i.Add("Protein", acc, name, org)
		i.Add("Cites", acc, pmid)
		if k%7 == 0 {
			// Pre-existing local annotation that the source vouches for.
			j.Add("GeneProduct", acc, name)
		}
	}
	if !clean {
		j.Add("GeneProduct", rel.Const("LOCAL1"), rel.Const("unvouched-protein"))
	}
	return i, j
}

// RandomWeaklyAcyclicDeps generates a random mix of full tgds, acyclic
// inclusion dependencies with existentials, and key egds over a layered
// schema L0, L1, L2 (edges only go up the layers, so the set is weakly
// acyclic by construction). It is the generator behind the chase
// property suites: soundness, determinism, parallel-vs-serial parity,
// and semi-naive-vs-naive parity.
func RandomWeaklyAcyclicDeps(rng *rand.Rand) []dep.Dependency {
	layers := []string{"L0", "L1", "L2"}
	var out []dep.Dependency
	n := 1 + rng.Intn(4)
	for k := 0; k < n; k++ {
		from := rng.Intn(len(layers) - 1)
		to := from + 1 + rng.Intn(len(layers)-from-1)
		switch rng.Intn(3) {
		case 0: // full copy up
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("full%d", k),
				Body:  []dep.Atom{dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom(layers[to], dep.Var("x"), dep.Var("y"))},
			})
		case 1: // inclusion with existential
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("inc%d", k),
				Body:  []dep.Atom{dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom(layers[to], dep.Var("y"), dep.Var("z"))},
			})
		default: // join body, full head
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("join%d", k),
				Body: []dep.Atom{
					dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y")),
					dep.NewAtom(layers[from], dep.Var("y"), dep.Var("z")),
				},
				Head: []dep.Atom{dep.NewAtom(layers[to], dep.Var("x"), dep.Var("z"))},
			})
		}
	}
	if rng.Intn(2) == 0 {
		lvl := layers[rng.Intn(len(layers))]
		out = append(out, dep.EGD{
			Label: "key-" + lvl,
			Body:  []dep.Atom{dep.NewAtom(lvl, dep.Var("x"), dep.Var("y")), dep.NewAtom(lvl, dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		})
	}
	return out
}

// RandomLayerInstance generates a small random instance over the
// layered schema of RandomWeaklyAcyclicDeps.
func RandomLayerInstance(rng *rand.Rand) *rel.Instance {
	inst := rel.NewInstance()
	dom := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Const("c")}
	for f := 0; f < 1+rng.Intn(5); f++ {
		inst.Add("L0", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
	}
	if rng.Intn(3) == 0 {
		inst.Add("L1", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
	}
	return inst
}

// compilableVars is the variable pool of the random compilable-fragment
// generator.
var compilableVars = []string{"x", "y", "z", "w"}

// RandomCompilableSetting generates a random setting inside the
// compiled-plan fragment (package qplan): in C_tract via conditions 1
// and 2.1 (single-literal Σts bodies with all-distinct variables), no
// target constraints, and no marked variable in any Σts head, so the
// canonical target's nulls can never be forced to constants. The
// source-to-target side is unconstrained — full and LAV tgds, joins,
// multi-atom heads, repeated existentials — which is what exercises the
// unfolding.
func RandomCompilableSetting(rng *rand.Rand) *core.Setting {
	source := rel.SchemaOf("S1", 1, "S2", 2, "S3", 3)
	target := rel.SchemaOf("T1", 1, "T2", 2, "T3", 3)
	srcRels := []struct {
		name  string
		arity int
	}{{"S1", 1}, {"S2", 2}, {"S3", 3}}
	tgtRels := []struct {
		name  string
		arity int
	}{{"T1", 1}, {"T2", 2}, {"T3", 3}}

	s := &core.Setting{Name: "random-compilable", Source: source, Target: target}
	nST := 1 + rng.Intn(3)
	for k := 0; k < nST; k++ {
		var body []dep.Atom
		var bodyVars []string
		for b := 0; b < 1+rng.Intn(2); b++ {
			r := srcRels[rng.Intn(len(srcRels))]
			args := make([]dep.Term, r.arity)
			for i := range args {
				v := compilableVars[rng.Intn(len(compilableVars))]
				args[i] = dep.Var(v)
				bodyVars = append(bodyVars, v)
			}
			body = append(body, dep.NewAtom(r.name, args...))
		}
		var head []dep.Atom
		for h := 0; h < 1+rng.Intn(2); h++ {
			r := tgtRels[rng.Intn(len(tgtRels))]
			args := make([]dep.Term, r.arity)
			for i := range args {
				if rng.Intn(10) < 6 {
					args[i] = dep.Var(bodyVars[rng.Intn(len(bodyVars))])
				} else {
					// Existential; reusing e1/e2 across positions and
					// head atoms links nulls within the trigger.
					args[i] = dep.Var(fmt.Sprintf("e%d", 1+rng.Intn(2)))
				}
			}
			head = append(head, dep.NewAtom(r.name, args...))
		}
		s.ST = append(s.ST, dep.TGD{Label: fmt.Sprintf("st%d", k), Body: body, Head: head})
	}

	markedPos := dep.MarkedPositions(s.ST)
	nTS := 1 + rng.Intn(2)
	for k := 0; k < nTS; k++ {
		r := tgtRels[rng.Intn(len(tgtRels))]
		args := make([]dep.Term, r.arity)
		var safe []string // body vars at unmarked positions only
		for i := range args {
			v := fmt.Sprintf("b%d", i)
			args[i] = dep.Var(v)
			if !markedPos[dep.Position{Rel: r.name, Idx: i}] {
				safe = append(safe, v)
			}
		}
		body := []dep.Atom{dep.NewAtom(r.name, args...)}
		hr := srcRels[rng.Intn(len(srcRels))]
		hargs := make([]dep.Term, hr.arity)
		for i := range hargs {
			switch {
			case len(safe) > 0 && rng.Intn(10) < 7:
				hargs[i] = dep.Var(safe[rng.Intn(len(safe))])
			case rng.Intn(2) == 0:
				hargs[i] = dep.Cst([]string{"a", "b"}[rng.Intn(2)])
			default:
				// Existential in the ts head: allowed (it is searched
				// for in I, never bound to a target null).
				hargs[i] = dep.Var(fmt.Sprintf("f%d", 1+rng.Intn(2)))
			}
		}
		s.TS = append(s.TS, dep.TGD{Label: fmt.Sprintf("ts%d", k), Body: body, Head: []dep.Atom{dep.NewAtom(hr.name, hargs...)}})
	}
	return s
}

// RandomCompilableInstance generates a small (I, J) pair for
// RandomCompilableSetting — small enough that the chase-backed
// image-solution enumeration stays cheap, so parity suites can compare
// it against the compiled path.
func RandomCompilableInstance(rng *rand.Rand) (*rel.Instance, *rel.Instance) {
	dom := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Const("c")}
	pick := func() rel.Value { return dom[rng.Intn(len(dom))] }
	i := rel.NewInstance()
	for f := 0; f < 1+rng.Intn(3); f++ {
		switch rng.Intn(3) {
		case 0:
			i.Add("S1", pick())
		case 1:
			i.Add("S2", pick(), pick())
		default:
			i.Add("S3", pick(), pick(), pick())
		}
	}
	j := rel.NewInstance()
	for f := 0; f < rng.Intn(3); f++ {
		switch rng.Intn(3) {
		case 0:
			j.Add("T1", pick())
		case 1:
			j.Add("T2", pick(), pick())
		default:
			j.Add("T3", pick(), pick(), pick())
		}
	}
	i.Freeze()
	j.Freeze()
	return i, j
}

// RandomTargetQuery generates a random UCQ over the target schema of
// RandomCompilableSetting: 1–2 disjuncts of 1–2 atoms each, an
// occasional constant, and (for open queries) a shared head arity of
// 1–2 variables.
func RandomTargetQuery(rng *rand.Rand, boolean bool) certain.UCQ {
	tgtRels := []struct {
		name  string
		arity int
	}{{"T1", 1}, {"T2", 2}, {"T3", 3}}
	headArity := 0
	if !boolean {
		headArity = 1 + rng.Intn(2)
	}
	var u certain.UCQ
	for d := 0; d < 1+rng.Intn(2); d++ {
		var body []dep.Atom
		var vars []string
		for b := 0; b < 1+rng.Intn(2); b++ {
			r := tgtRels[rng.Intn(len(tgtRels))]
			args := make([]dep.Term, r.arity)
			for i := range args {
				if rng.Intn(10) < 8 {
					v := compilableVars[rng.Intn(len(compilableVars))]
					args[i] = dep.Var(v)
					vars = append(vars, v)
				} else {
					args[i] = dep.Cst([]string{"a", "b"}[rng.Intn(2)])
				}
			}
			body = append(body, dep.NewAtom(r.name, args...))
		}
		if len(vars) == 0 {
			// Guarantee at least one variable so open heads resolve.
			body = append(body, dep.NewAtom("T1", dep.Var("x")))
			vars = append(vars, "x")
		}
		head := make([]string, headArity)
		for i := range head {
			head[i] = vars[rng.Intn(len(vars))]
		}
		u = append(u, certain.CQ{Name: "q", Head: head, Body: body})
	}
	return u
}
