// Package par is the worker-pool execution layer shared by the parallel
// hot paths of the reproduction: block-homomorphism checks, chase
// trigger search, and the complete solver's violation scan.
//
// Every helper in this package is deterministic from the caller's point
// of view: the set of tasks executed and the value returned are
// identical at any worker count (and any Seed), so callers can expose a
// Parallelism knob without changing observable output. The only
// nondeterminism is internal scheduling — which worker runs which task,
// and how much early-cancellation saves.
//
// Callers must ensure that the task functions are safe to run
// concurrently; in this codebase that means they only read shared
// instances (see the freeze-after-build discipline documented in
// DESIGN.md §8 and rel.Instance.Freeze).
package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrCanceled is the shared identity of context-cancellation failures
// across the execution layer: the chase, the generic solver, and the
// tractable path all wrap it (together with the context's own error)
// when a context supplied through their options is canceled or its
// deadline expires, so callers can match cancellation uniformly with
// errors.Is regardless of which hot loop noticed it first.
var ErrCanceled = errors.New("execution canceled")

// Degree resolves a Parallelism knob to a worker count: 0 means
// GOMAXPROCS (use all available cores), anything below 1 means serial,
// and a positive value is taken literally.
func Degree(parallelism int) int {
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if parallelism < 1 {
		return 1
	}
	return parallelism
}

// Do runs fn(task) exactly once for every task in [0, n), using up to
// degree workers. It returns after all tasks complete. A panic in any
// task is re-raised on the calling goroutine after the pool drains.
//
// seed rotates the order in which tasks are claimed (task visiting
// order is (claim+offset) mod n); it exists so load-balancing
// sensitivity can be probed without affecting results, which never
// depend on execution order.
func Do(n, degree int, seed int64, fn func(task int)) {
	if n <= 0 {
		return
	}
	if degree > n {
		degree = n
	}
	if degree <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	offset := int(seed % int64(n))
	if offset < 0 {
		offset += n
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn((i + offset) % n)
		}
	}
	spawn(degree, run)
}

// FirstReject returns the smallest task index in [0, n) for which check
// returns false, or -1 when every check passes. Workers claim tasks in
// ascending order and skip any task above the best rejection found so
// far, so a failure near the front cancels most of the remaining work.
// The returned index is deterministic: it is always the minimum
// rejected index, exactly what a serial left-to-right scan returns.
func FirstReject(n, degree int, check func(task int) bool) int {
	if n <= 0 {
		return -1
	}
	if degree > n {
		degree = n
	}
	if degree <= 1 {
		for i := 0; i < n; i++ {
			if !check(i) {
				return i
			}
		}
		return -1
	}
	var next atomic.Int64
	var best atomic.Int64
	best.Store(int64(n))
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) || i >= best.Load() {
				return
			}
			if !check(int(i)) {
				for {
					cur := best.Load()
					if i >= cur || best.CompareAndSwap(cur, i) {
						break
					}
				}
			}
		}
	}
	spawn(degree, run)
	if r := best.Load(); r < int64(n) {
		return int(r)
	}
	return -1
}

// spawn runs fn on degree goroutines, waits for all of them, and
// re-raises the first panic (if any) on the calling goroutine so worker
// panics surface like serial ones instead of crashing the process.
func spawn(degree int, fn func()) {
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < degree; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
				}
			}()
			fn()
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Chunks splits n items into at most maxChunks contiguous ranges of
// near-equal size, returning the half-open [start, end) bounds. It is
// the partitioning used to fan a large scan out over workers while
// keeping per-chunk results mergeable in input order.
func Chunks(n, maxChunks int) [][2]int {
	if n <= 0 || maxChunks < 1 {
		return nil
	}
	if maxChunks > n {
		maxChunks = n
	}
	out := make([][2]int, 0, maxChunks)
	for c := 0; c < maxChunks; c++ {
		start := c * n / maxChunks
		end := (c + 1) * n / maxChunks
		if start < end {
			out = append(out, [2]int{start, end})
		}
	}
	return out
}
