package par

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Degree(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, tc := range []struct{ in, want int }{{1, 1}, {4, 4}, {-3, 1}} {
		if got := Degree(tc.in); got != tc.want {
			t.Errorf("Degree(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDoCoversEveryTaskOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, degree := range []int{1, 2, 4, 13} {
			for _, seed := range []int64{0, 1, -5, 12345} {
				counts := make([]atomic.Int32, n)
				Do(n, degree, seed, func(task int) {
					counts[task].Add(1)
				})
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("n=%d degree=%d seed=%d: task %d ran %d times", n, degree, seed, i, got)
					}
				}
			}
		}
	}
}

func TestFirstRejectMatchesSerialScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		reject := make([]bool, n)
		for i := range reject {
			reject[i] = rng.Intn(4) == 0
		}
		want := -1
		for i, r := range reject {
			if r {
				want = i
				break
			}
		}
		for _, degree := range []int{1, 3, 8} {
			got := FirstReject(n, degree, func(i int) bool { return !reject[i] })
			if got != want {
				t.Fatalf("trial %d degree %d: FirstReject = %d, want %d (rejects %v)", trial, degree, got, want, reject)
			}
		}
	}
}

func TestFirstRejectNeverMissesEarlierRejection(t *testing.T) {
	// Even when a late rejection is observed first, the minimum must win.
	var order []int
	var mu sync.Mutex
	got := FirstReject(50, 4, func(i int) bool {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return i != 3 && i != 40
	})
	if got != 3 {
		t.Fatalf("FirstReject = %d, want 3 (order %v)", got, order)
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want boom", p)
		}
	}()
	Do(16, 4, 0, func(task int) {
		if task == 5 {
			panic("boom")
		}
	})
	t.Fatal("Do returned without panicking")
}

func TestChunksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 100} {
		for _, m := range []int{1, 2, 3, 7, 200} {
			chunks := Chunks(n, m)
			covered := 0
			prev := 0
			for _, c := range chunks {
				if c[0] != prev {
					t.Fatalf("n=%d m=%d: chunk starts at %d, want %d", n, m, c[0], prev)
				}
				if c[1] <= c[0] {
					t.Fatalf("n=%d m=%d: empty chunk %v", n, m, c)
				}
				covered += c[1] - c[0]
				prev = c[1]
			}
			if covered != n {
				t.Fatalf("n=%d m=%d: chunks cover %d items", n, m, covered)
			}
			if len(chunks) > m {
				t.Fatalf("n=%d m=%d: %d chunks exceed max", n, m, len(chunks))
			}
		}
	}
}
