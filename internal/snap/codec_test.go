package snap_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/rel"
	"repro/internal/snap"
	"repro/internal/workload"
	"repro/pde"
)

func fakeID(kind string, n int) string {
	return fmt.Sprintf("sha256:%s%060d", kind, n)
}

// roundTrip asserts the codec's central guarantee on one entry:
// Encode → Decode → Encode is byte-identical, and the decoded entry
// carries the same identity.
func roundTrip(t *testing.T, e *snap.Entry) *snap.Entry {
	t.Helper()
	data, err := snap.Encode(e)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := snap.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.SettingID != e.SettingID || got.SourceID != e.SourceID || got.TargetID != e.TargetID ||
		got.Kind != e.Kind || got.SourceText != e.SourceText || got.TargetText != e.TargetText {
		t.Fatalf("decoded identity diverged: %+v", got)
	}
	again, err := snap.Encode(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(data), len(again))
	}
	return got
}

// TestCodecRoundTripRandomWorkloads is the property test of the
// acceptance criteria: 60 random workloads — tractable LAV traces,
// random generic settings (with Σt egds, full tgds, failing chases),
// and keyed-egd fixpoints whose chases merged nulls through the
// union-find engine and tombstoned collisions — must all round-trip
// byte-identically, and the decoded artifact must solve exactly like
// the original.
func TestCodecRoundTripRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 0

	// Tractable traces over the LAV workload at varying sizes.
	s := workload.LAVSetting()
	for k := 0; k < 20; k++ {
		n := 5 + rng.Intn(40)
		solvable := k%2 == 0
		i, j := workload.LAVInstance(n, solvable, rng)
		trace, err := core.ChaseCanonicalTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatalf("lav trace n=%d: %v", n, err)
		}
		e := &snap.Entry{
			SettingID:  fakeID("a", k),
			SourceID:   fakeID("b", k),
			TargetID:   fakeID("c", k),
			Kind:       snap.KindTractable,
			SourceText: pde.FormatInstance(i),
			TargetText: pde.FormatInstance(j),
			Tractable:  trace,
		}
		got := roundTrip(t, e)
		wantOK, _, err := core.ExistsSolutionTractableFrom(i, trace, core.TractableOptions{})
		if err != nil {
			t.Fatalf("verdict on original: %v", err)
		}
		gotOK, _, err := core.ExistsSolutionTractableFrom(i, got.Tractable, core.TractableOptions{})
		if err != nil {
			t.Fatalf("verdict on decoded: %v", err)
		}
		if gotOK != wantOK || got.Tractable.Blocks != trace.Blocks {
			t.Fatalf("decoded trace diverged: ok %v vs %v, blocks %d vs %d",
				gotOK, wantOK, got.Tractable.Blocks, trace.Blocks)
		}
		trials++
	}

	// Random generic settings: join tgds, disjunctive Σts, Σt egds and
	// full tgds, occasionally failing Σt chases.
	sawFailed := false
	for k := 0; k < 20; k++ {
		rs := oracle.RandomSetting(rng)
		i, j := oracle.RandomInstance(rng)
		ct, err := core.ChaseCanonicalTarget(rs, i, j, core.SolveOptions{})
		if err != nil {
			t.Fatalf("random canonical target: %v", err)
		}
		sawFailed = sawFailed || ct.TFailed
		e := &snap.Entry{
			SettingID:  fakeID("d", k),
			SourceID:   fakeID("e", k),
			TargetID:   fakeID("f", k),
			Kind:       snap.KindGeneric,
			SourceText: pde.FormatInstance(i),
			TargetText: pde.FormatInstance(j),
			Generic:    ct,
		}
		got := roundTrip(t, e)
		sopts := core.SolveOptions{MaxNodes: 1_000_000}
		wantOK, _, _, err := core.ExistsSolutionGenericFrom(rs, i, j, ct, sopts)
		if err != nil {
			t.Fatalf("generic verdict on original: %v", err)
		}
		gotOK, _, _, err := core.ExistsSolutionGenericFrom(rs, i, j, got.Generic, sopts)
		if err != nil {
			t.Fatalf("generic verdict on decoded: %v", err)
		}
		if gotOK != wantOK {
			t.Fatalf("decoded canonical target diverged: %v vs %v", gotOK, wantOK)
		}
		trials++
	}

	// Keyed-egd fixpoints: the Σt key egds merge one null per person, so
	// the retained chase results carry union-find state and the merges
	// tombstoned colliding tuples before Compact.
	ks := workload.KeyedLAVSetting()
	sawUF := false
	for k := 0; k < 20; k++ {
		n := 8 + 4*k
		i, j := workload.KeyedLAVInstance(n)
		ct, err := core.ChaseCanonicalTarget(ks, i, j, core.SolveOptions{})
		if err != nil {
			t.Fatalf("keyed canonical target n=%d: %v", n, err)
		}
		if ct.TResult != nil && ct.TResult.UnionFind != nil {
			sawUF = true
		}
		e := &snap.Entry{
			SettingID:  fakeID("0", k),
			SourceID:   fakeID("1", k),
			TargetID:   fakeID("2", k),
			Kind:       snap.KindGeneric,
			SourceText: pde.FormatInstance(i),
			TargetText: pde.FormatInstance(j),
			Generic:    ct,
		}
		got := roundTrip(t, e)

		// A decoded artifact must resume exactly like the original:
		// same incremental-path eligibility, same fixpoint.
		delta := workload.KeyedLAVAppend(n, 4)
		want, wantResumed, _, err := core.ResumeCanonicalTarget(ks, ct, delta, core.SolveOptions{})
		if err != nil {
			t.Fatalf("resume original: %v", err)
		}
		have, haveResumed, _, err := core.ResumeCanonicalTarget(ks, got.Generic, delta, core.SolveOptions{})
		if err != nil {
			t.Fatalf("resume decoded: %v", err)
		}
		if wantResumed != haveResumed {
			t.Fatalf("resume eligibility diverged: %v vs %v", haveResumed, wantResumed)
		}
		if (want.JCan == nil) != (have.JCan == nil) {
			t.Fatalf("resumed JCan presence diverged")
		}
		if want.JCan != nil && want.JCan.String() != have.JCan.String() {
			t.Fatalf("resumed fixpoints diverged:\n%s\nvs\n%s", want.JCan, have.JCan)
		}
		trials++
	}
	if !sawUF {
		t.Fatalf("keyed workloads never produced union-find state; the property test lost its egd coverage")
	}
	if !sawFailed {
		t.Logf("note: no random setting produced a failing Σt chase this seed")
	}
	if trials < 50 {
		t.Fatalf("only %d round-trip trials ran; acceptance requires 50+", trials)
	}
}

// buildEntry returns a small valid snapshot for the rejection tests.
func buildEntry(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	i, j := workload.LAVInstance(6, true, rng)
	trace, err := core.ChaseCanonicalTractable(workload.LAVSetting(), i, j, core.TractableOptions{})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	data, err := snap.Encode(&snap.Entry{
		SettingID:  fakeID("a", 1),
		SourceID:   fakeID("b", 1),
		TargetID:   fakeID("c", 1),
		Kind:       snap.KindTractable,
		SourceText: pde.FormatInstance(i),
		TargetText: pde.FormatInstance(j),
		Tractable:  trace,
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := buildEntry(t)
	for n := 0; n < len(data); n++ {
		if _, err := snap.Decode(data[:n]); err == nil {
			t.Fatalf("decode accepted a %d-byte prefix of a %d-byte snapshot", n, len(data))
		}
	}
}

func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	data := buildEntry(t)
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 0x40
		if _, err := snap.Decode(mut); err == nil {
			t.Fatalf("decode accepted a snapshot with byte %d flipped", i)
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	data := buildEntry(t)
	ver, err := snap.HeaderVersion(data)
	if err != nil || ver != snap.Version {
		t.Fatalf("header version: %d, %v", ver, err)
	}
	// Bump the version byte (it sits right after the 8-byte magic) and
	// refresh the checksum so only the version is wrong.
	mut := append([]byte(nil), data...)
	mut[8] = snap.Version + 1
	mut = refreshChecksum(mut)
	if _, err := snap.Decode(mut); !errors.Is(err, snap.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if ver, err := snap.HeaderVersion(mut); err != nil || ver != snap.Version+1 {
		t.Fatalf("header version after bump: %d, %v", ver, err)
	}
}

func TestDecodeRejectsBadMagicAndEmpty(t *testing.T) {
	if _, err := snap.Decode(nil); !errors.Is(err, snap.ErrTruncated) {
		t.Fatalf("nil input: want ErrTruncated, got %v", err)
	}
	data := buildEntry(t)
	mut := append([]byte(nil), data...)
	mut[0] = 'X'
	if _, err := snap.Decode(mut); !errors.Is(err, snap.ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := snap.HeaderVersion([]byte("tiny")); !errors.Is(err, snap.ErrTruncated) {
		t.Fatalf("short header: want ErrTruncated, got %v", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := buildEntry(t)
	// Splice an extra zero byte before the footer and refresh the
	// checksum: the body no longer ends exactly at the footer boundary.
	body := append([]byte(nil), data[:len(data)-32]...)
	body = append(body, 0)
	mut := refreshChecksum(append(body, make([]byte, 32)...))
	if _, err := snap.Decode(mut); !errors.Is(err, snap.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for trailing bytes, got %v", err)
	}
}

// TestEncodeRejectsIncompleteArtifacts pins the encoder's refusal to
// serialize artifacts that could not be validated back.
func TestEncodeRejectsIncompleteArtifacts(t *testing.T) {
	if _, err := snap.Encode(&snap.Entry{Kind: "weird"}); err == nil {
		t.Fatal("encode accepted an unknown kind")
	}
	if _, err := snap.Encode(&snap.Entry{Kind: snap.KindTractable}); err == nil {
		t.Fatal("encode accepted a nil tractable trace")
	}
	if _, err := snap.Encode(&snap.Entry{Kind: snap.KindGeneric, Generic: &core.CanonicalTarget{}}); err == nil {
		t.Fatal("encode accepted a canonical target without JCan or failure")
	}
}

// TestCodecHandlesEmptyInstances pins the degenerate case: a chase of
// empty instances produces empty fixpoints, which must round-trip too.
func TestCodecHandlesEmptyInstances(t *testing.T) {
	i, j := rel.NewInstance(), rel.NewInstance()
	trace, err := core.ChaseCanonicalTractable(workload.LAVSetting(), i, j, core.TractableOptions{})
	if err != nil {
		t.Fatalf("empty trace: %v", err)
	}
	roundTrip(t, &snap.Entry{
		SettingID: fakeID("a", 9), SourceID: fakeID("b", 9), TargetID: fakeID("c", 9),
		Kind: snap.KindTractable, Tractable: trace,
	})
}

func TestKeyShape(t *testing.T) {
	k := snap.Key("sha256:s", "sha256:i", "sha256:j", snap.KindTractable)
	if len(k) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(k))
	}
	if k == snap.Key("sha256:s", "sha256:i", "sha256:j", snap.KindGeneric) {
		t.Fatal("kind does not separate keys")
	}
}

// refreshChecksum recomputes the sha256 footer over the body so tests
// can corrupt specific fields without tripping the checksum first.
func refreshChecksum(data []byte) []byte {
	return snap.AppendChecksum(data[:len(data)-32])
}
