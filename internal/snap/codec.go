// Package snap implements the durable snapshot format for chased
// artifacts: a versioned, deterministic binary codec for the
// core.TractableTrace and core.CanonicalTarget values pdxd caches, plus
// a directory store with atomic writes (see Store).
//
// A snapshot file is
//
//	magic (8 bytes) | format version (uvarint) | body | sha256 footer
//
// where the footer covers every preceding byte. The body embeds the
// cache identity (setting and instance content hashes), the canonical
// text of both instances (so a warm start can re-register them and
// verify the hashes), and the artifact itself: chase results with their
// fixpoint instances (live tuples only — fixpoints are post-Compact),
// semi-naive resume watermarks (hom.Delta), union-find merge state
// (rel.UnionFind snapshots), and null-source high-water marks.
//
// The codec is canonical in both directions: Encode emits one unique
// byte string per artifact (relations sorted by name, watermarks sorted,
// union-find pairs in rel.UnionFind.Snapshot order, minimal varints),
// and Decode rejects any input that is not exactly what Encode would
// produce — non-minimal varints, unsorted or duplicate relations,
// duplicate tuples, non-canonical union-find pairs, trailing bytes, or
// a checksum mismatch. Decoding a truncated, corrupted, or
// newer-versioned file fails with an error wrapping ErrTruncated,
// ErrCorrupt, or ErrVersion; a successful Decode therefore guarantees
// Encode(Decode(data)) == data, the invariant the fuzz target and the
// peer warm-transfer protocol rely on.
package snap

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/hom"
	"repro/internal/rel"
)

// magic identifies a snapshot file; the leading non-ASCII byte keeps
// text tools from mistaking snapshots for text.
const magic = "\x89PDXSNAP"

// Version is the format version this build reads and writes. Decode
// rejects any other version; Store.Open refuses directories holding a
// newer one.
const Version = 1

// Artifact kinds, matching the server's cache-kind labels.
const (
	KindTractable = "tractable"
	KindGeneric   = "generic"
)

const (
	kindByteTractable = 1
	kindByteGeneric   = 2

	tagConst = 0
	tagNull  = 1

	// maxCounter bounds every decoded integer that is not directly
	// limited by the remaining input: step/merge/find counters, null
	// ids, and null-source states. Far above anything a real chase
	// produces, low enough that arithmetic on decoded values never
	// overflows.
	maxCounter = 1 << 40

	// maxArity bounds decoded relation arities.
	maxArity = 1 << 16
)

// Decode error sentinels. Every Decode failure wraps exactly one of
// them, so callers can distinguish a short read from active corruption
// from a format-version skew.
var (
	ErrTruncated = errors.New("snap: truncated snapshot")
	ErrBadMagic  = errors.New("snap: not a snapshot file")
	ErrVersion   = errors.New("snap: unsupported snapshot format version")
	ErrCorrupt   = errors.New("snap: corrupt snapshot")
)

// Entry is one cached chased artifact together with everything a cold
// daemon needs to validate and re-install it: the content hashes that
// key the cache and the canonical instance texts behind the hashes.
// Exactly one of Tractable/Generic is set, per Kind.
type Entry struct {
	// SettingID, SourceID, TargetID are the content hashes
	// ("sha256:<hex>") keying the server's chase cache.
	SettingID string
	SourceID  string
	TargetID  string
	// Kind is KindTractable or KindGeneric.
	Kind string
	// SourceText and TargetText are the canonical instance texts
	// (pde.FormatInstance output). A warm start re-hashes them against
	// SourceID/TargetID before trusting the artifact.
	SourceText string
	TargetText string
	// Tractable is the artifact when Kind == KindTractable.
	Tractable *core.TractableTrace
	// Generic is the artifact when Kind == KindGeneric.
	Generic *core.CanonicalTarget
}

// Key returns the snapshot key for a cached artifact: the hex sha256 of
// the composite cache identity. It names the file inside a Store and
// the entry in the peer warm-transfer API, and is safe as both a file
// name and a URL path segment.
func Key(settingID, srcID, tgtID, kind string) string {
	h := sha256.Sum256([]byte(settingID + "\x00" + srcID + "\x00" + tgtID + "\x00" + kind))
	return hex.EncodeToString(h[:])
}

// Encode serializes the entry. The output is canonical: encoding the
// result of Decode reproduces the decoded bytes exactly.
func Encode(e *Entry) ([]byte, error) {
	w := &writer{buf: make([]byte, 0, 4096)}
	w.raw([]byte(magic))
	w.uvarint(Version)
	w.str(e.SettingID)
	w.str(e.SourceID)
	w.str(e.TargetID)
	switch e.Kind {
	case KindTractable:
		w.byteVal(kindByteTractable)
	case KindGeneric:
		w.byteVal(kindByteGeneric)
	default:
		return nil, fmt.Errorf("snap: encode: unknown artifact kind %q", e.Kind)
	}
	w.str(e.SourceText)
	w.str(e.TargetText)
	switch e.Kind {
	case KindTractable:
		w.tractable(e.Tractable)
	case KindGeneric:
		w.generic(e.Generic)
	}
	if w.err != nil {
		return nil, w.err
	}
	sum := sha256.Sum256(w.buf)
	w.raw(sum[:])
	return w.buf, nil
}

// Decode parses and validates a snapshot. It never panics on arbitrary
// input; failures wrap ErrTruncated, ErrBadMagic, ErrVersion, or
// ErrCorrupt. The returned artifact is ready for the solve paths: its
// canonical instances are frozen and a tractable trace has its block
// decomposition recomputed.
func Decode(data []byte) (*Entry, error) {
	if len(data) < len(magic)+1+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	body := data[:len(data)-sha256.Size]
	r := &reader{buf: body, off: len(magic)}
	v := r.uvarint("format version")
	if r.err != nil {
		return nil, r.err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	e := &Entry{
		SettingID: r.str("setting id"),
		SourceID:  r.str("source id"),
		TargetID:  r.str("target id"),
	}
	switch k := r.byteVal("artifact kind"); {
	case r.err != nil:
	case k == kindByteTractable:
		e.Kind = KindTractable
	case k == kindByteGeneric:
		e.Kind = KindGeneric
	default:
		r.fail(ErrCorrupt, "unknown artifact kind byte %d", k)
	}
	e.SourceText = r.str("source instance text")
	e.TargetText = r.str("target instance text")
	switch e.Kind {
	case KindTractable:
		e.Tractable = r.tractable()
	case KindGeneric:
		e.Generic = r.generic()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes before checksum", ErrCorrupt, len(body)-r.off)
	}
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[len(body):]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return e, nil
}

// AppendChecksum appends the sha256 footer over body and returns the
// complete snapshot bytes. It exists for tests and fuzz harnesses that
// construct or mutate snapshot bodies directly; Encode calls the same
// arithmetic internally.
func AppendChecksum(body []byte) []byte {
	sum := sha256.Sum256(body)
	return append(body, sum[:]...)
}

// HeaderVersion reads just the magic and format version, for directory
// scans that must detect newer formats without decoding bodies.
func HeaderVersion(data []byte) (uint64, error) {
	if len(data) < len(magic)+1 {
		return 0, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, ErrBadMagic
	}
	v, n := binary.Uvarint(data[len(magic):])
	if n <= 0 {
		return 0, fmt.Errorf("%w: unreadable format version", ErrCorrupt)
	}
	return v, nil
}

// fixpointWatermark builds the semi-naive resume watermark of a chase
// fixpoint: one count per relation, equal to its live tuple length. At
// a fixpoint every dependency's per-tgd watermark has caught up to the
// full instance, so the single Delta stands for all of them; a resumed
// chase re-derives its per-dependency marks from exactly these counts.
func fixpointWatermark(inst *rel.Instance) hom.Delta {
	d := make(hom.Delta)
	for _, name := range inst.RelationNames() {
		d[name] = inst.Relation(name).LiveLen()
	}
	return d
}

// writer accumulates the encoding with a sticky error.
type writer struct {
	buf []byte
	err error
}

func (w *writer) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("snap: encode: "+format, args...)
	}
}

func (w *writer) raw(p []byte)     { w.buf = append(w.buf, p...) }
func (w *writer) byteVal(b byte)   { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *writer) count(n int, what string) {
	if n < 0 || n > maxCounter {
		w.fail("%s %d out of range", what, n)
		return
	}
	w.uvarint(uint64(n))
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) boolVal(b bool) {
	if b {
		w.byteVal(1)
	} else {
		w.byteVal(0)
	}
}

func (w *writer) value(v rel.Value) {
	if v.IsNull() {
		w.byteVal(tagNull)
		w.count(v.NullID(), "null id")
		return
	}
	w.byteVal(tagConst)
	w.str(v.ConstText())
}

// instance encodes the live tuples of an instance: relations sorted by
// name (empty ones omitted), tuples in slot order skipping tombstones.
func (w *writer) instance(inst *rel.Instance) {
	names := inst.RelationNames()
	w.count(len(names), "relation count")
	for _, name := range names {
		r := inst.Relation(name)
		w.str(name)
		w.count(r.Arity(), "arity")
		w.count(r.LiveLen(), "tuple count")
		for i := 0; i < r.Len(); i++ {
			if !r.Live(i) {
				continue
			}
			for _, v := range r.TupleAt(i) {
				w.value(v)
			}
		}
	}
}

// watermark encodes the fixpoint's resume watermark in sorted order.
func (w *writer) watermark(inst *rel.Instance) {
	d := fixpointWatermark(inst)
	names := d.Names()
	w.count(len(names), "watermark entries")
	for _, name := range names {
		w.str(name)
		w.count(d[name], "watermark count")
	}
}

// result encodes a chase.Result: fixpoint, watermark, start instance,
// counters, and the union-find merge state when the run retained one.
func (w *writer) result(res *chase.Result) {
	if res == nil || res.Instance == nil || res.Start == nil {
		w.fail("chase result is missing its instances")
		return
	}
	w.instance(res.Instance)
	w.watermark(res.Instance)
	w.instance(res.Start)
	w.count(res.Steps, "steps")
	w.boolVal(res.Failed)
	w.str(res.FailedOn)
	w.boolVal(res.EgdFired)
	w.count(res.Merges, "merges")
	w.count(res.Finds, "finds")
	w.boolVal(res.UnionFind != nil)
	if res.UnionFind != nil {
		pairs := res.UnionFind.Snapshot()
		w.count(len(pairs), "union-find pairs")
		for _, p := range pairs {
			w.value(p[0])
			w.value(p[1])
		}
	}
}

func (w *writer) tractable(t *core.TractableTrace) {
	if t == nil || t.JCan == nil || t.ICan == nil {
		w.fail("tractable trace is missing its canonical instances")
		return
	}
	w.result(t.STResult)
	w.result(t.TSResult)
	w.count(t.NullState, "null state")
	w.instance(t.JCan)
	w.instance(t.ICan)
}

func (w *writer) generic(ct *core.CanonicalTarget) {
	if ct == nil {
		w.fail("canonical target is nil")
		return
	}
	if ct.TFailed == (ct.JCan != nil) {
		w.fail("canonical target presence inconsistent with failure flag")
		return
	}
	if ct.TFailed && ct.TResult == nil {
		w.fail("failed target chase without its result")
		return
	}
	w.result(ct.STResult)
	w.boolVal(ct.TResult != nil)
	if ct.TResult != nil {
		w.result(ct.TResult)
	}
	w.boolVal(ct.TFailed)
	w.boolVal(ct.JCan != nil)
	if ct.JCan != nil {
		w.instance(ct.JCan)
	}
	w.count(ct.NullState, "null state")
}

// reader parses the encoding with bounds checks and a sticky error. No
// allocation is sized from an untrusted count without first bounding
// the count by the remaining input.
type reader struct {
	buf []byte
	off int
	err error
	// interned dedups constant Values across the whole snapshot: chase
	// artifacts repeat the same constants in fixpoints, starts, and
	// canonical instances, so decoding allocates each text once.
	interned map[string]rel.Value
}

func (r *reader) fail(sentinel error, format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

// uvarintLen returns the number of bytes the minimal encoding of v
// occupies.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n == 0:
		r.fail(ErrTruncated, "reading %s", what)
		return 0
	case n < 0:
		r.fail(ErrCorrupt, "varint overflow in %s", what)
		return 0
	case n != uvarintLen(v):
		r.fail(ErrCorrupt, "non-minimal varint in %s", what)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) count(what string, max int) int {
	v := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.fail(ErrCorrupt, "%s %d exceeds limit %d", what, v, max)
		return 0
	}
	return int(v)
}

func (r *reader) str(what string) string {
	v := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if v > uint64(r.remaining()) {
		r.fail(ErrTruncated, "%s of %d bytes with %d remaining", what, v, r.remaining())
		return ""
	}
	s := string(r.buf[r.off : r.off+int(v)])
	r.off += int(v)
	return s
}

func (r *reader) byteVal(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail(ErrTruncated, "reading %s", what)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) boolVal(what string) bool {
	b := r.byteVal(what)
	if r.err != nil {
		return false
	}
	if b > 1 {
		r.fail(ErrCorrupt, "%s byte %d is not a bool", what, b)
		return false
	}
	return b == 1
}

func (r *reader) value(what string) rel.Value {
	switch tag := r.byteVal(what + " tag"); {
	case r.err != nil:
		return rel.Value{}
	case tag == tagConst:
		return r.constValue(what + " constant")
	case tag == tagNull:
		return rel.Null(r.count(what+" null id", maxCounter))
	default:
		r.fail(ErrCorrupt, "unknown %s tag %d", what, tag)
		return rel.Value{}
	}
}

// constValue reads a constant's text and returns its interned Value:
// the map lookup keyed by the raw bytes allocates nothing on a hit.
func (r *reader) constValue(what string) rel.Value {
	v := r.uvarint(what + " length")
	if r.err != nil {
		return rel.Value{}
	}
	if v > uint64(r.remaining()) {
		r.fail(ErrTruncated, "%s of %d bytes with %d remaining", what, v, r.remaining())
		return rel.Value{}
	}
	b := r.buf[r.off : r.off+int(v)]
	r.off += int(v)
	if val, ok := r.interned[string(b)]; ok {
		return val
	}
	if r.interned == nil {
		r.interned = make(map[string]rel.Value)
	}
	val := rel.Const(string(b))
	r.interned[val.ConstText()] = val
	return val
}

func (r *reader) instance(what string) *rel.Instance {
	inst := rel.NewInstance()
	nrels := r.count(what+" relation count", r.remaining())
	prev := ""
	for k := 0; k < nrels && r.err == nil; k++ {
		name := r.str(what + " relation name")
		if r.err != nil {
			break
		}
		if k > 0 && name <= prev {
			r.fail(ErrCorrupt, "%s relation %q out of order", what, name)
			break
		}
		prev = name
		arity := r.count(what+" arity", maxArity)
		n := r.count(what+" tuple count", maxCounter)
		if r.err != nil {
			break
		}
		if n == 0 {
			r.fail(ErrCorrupt, "%s relation %q with no tuples", what, name)
			break
		}
		// Every value occupies at least two bytes; a nullary relation
		// has exactly one distinct tuple.
		if arity == 0 && n > 1 {
			r.fail(ErrCorrupt, "%s nullary relation %q with %d tuples", what, name, n)
			break
		}
		if arity > 0 && n > r.remaining()/(2*arity) {
			r.fail(ErrTruncated, "%s relation %q claims %d tuples of arity %d", what, name, n, arity)
			break
		}
		// n is bounded by the remaining input, so the slab and the
		// reserved containers are sized by trusted counts. The slab
		// backs every tuple of the relation; ownership transfers to the
		// instance via AddOwnedTuple.
		inst.Reserve(name, arity, n)
		slab := make(rel.Tuple, n*arity)
		for t := 0; t < n && r.err == nil; t++ {
			tup := slab[:arity:arity]
			slab = slab[arity:]
			for a := 0; a < arity; a++ {
				tup[a] = r.value(what)
			}
			if r.err != nil {
				break
			}
			if !inst.AddOwnedTuple(name, tup) {
				r.fail(ErrCorrupt, "%s relation %q holds a duplicate tuple", what, name)
			}
		}
	}
	return inst
}

// watermark reads the resume watermark and checks it against the
// fixpoint it was stored with: sorted, and every count equal to the
// relation's live length. The watermark carries no information beyond
// the fixpoint — exactly the invariant a resume depends on — so a
// mismatch means corruption.
func (r *reader) watermark(inst *rel.Instance) {
	n := r.count("watermark entries", r.remaining())
	got := make(hom.Delta, n)
	prev := ""
	for k := 0; k < n && r.err == nil; k++ {
		name := r.str("watermark relation")
		c := r.count("watermark count", maxCounter)
		if r.err != nil {
			break
		}
		if k > 0 && name <= prev {
			r.fail(ErrCorrupt, "watermark relation %q out of order", name)
			break
		}
		prev = name
		got[name] = c
	}
	if r.err != nil {
		return
	}
	want := fixpointWatermark(inst)
	if len(got) != len(want) {
		r.fail(ErrCorrupt, "watermark covers %d relations, fixpoint has %d", len(got), len(want))
		return
	}
	for _, name := range want.Names() {
		if got[name] != want[name] {
			r.fail(ErrCorrupt, "watermark of %q is %d, fixpoint holds %d live tuples", name, got[name], want[name])
			return
		}
	}
}

// unionFind reads a canonical rel.UnionFind snapshot: pairs sorted
// strictly by member, member != representative, and no representative
// merged away itself. These are exactly the properties
// rel.UnionFind.Snapshot guarantees, so accepting only them keeps the
// re-encode byte-identical.
func (r *reader) unionFind() *rel.UnionFind {
	n := r.count("union-find pairs", r.remaining()/4)
	pairs := make([][2]rel.Value, 0, n)
	members := make(map[rel.Value]struct{}, n)
	var prev rel.Value
	for k := 0; k < n && r.err == nil; k++ {
		m := r.value("union-find member")
		rep := r.value("union-find representative")
		if r.err != nil {
			break
		}
		if m == rep {
			r.fail(ErrCorrupt, "union-find pair maps %s to itself", m)
			break
		}
		if k > 0 && !prev.Less(m) {
			r.fail(ErrCorrupt, "union-find member %s out of order", m)
			break
		}
		prev = m
		members[m] = struct{}{}
		pairs = append(pairs, [2]rel.Value{m, rep})
	}
	if r.err != nil {
		return nil
	}
	for _, p := range pairs {
		if _, ok := members[p[1]]; ok {
			r.fail(ErrCorrupt, "union-find representative %s is itself merged away", p[1])
			return nil
		}
	}
	return rel.UnionFindFromSnapshot(pairs)
}

func (r *reader) result(what string) *chase.Result {
	inst := r.instance(what + " fixpoint")
	r.watermark(inst)
	start := r.instance(what + " start")
	steps := r.count(what+" steps", maxCounter)
	failed := r.boolVal(what + " failed flag")
	failedOn := r.str(what + " failed-on label")
	egd := r.boolVal(what + " egd flag")
	merges := r.count(what+" merges", maxCounter)
	finds := r.count(what+" finds", maxCounter)
	var uf *rel.UnionFind
	if r.boolVal(what+" union-find flag") && r.err == nil {
		uf = r.unionFind()
	}
	if r.err != nil {
		return nil
	}
	return &chase.Result{
		Instance:  inst,
		Steps:     steps,
		Failed:    failed,
		FailedOn:  failedOn,
		Start:     start,
		EgdFired:  egd,
		UnionFind: uf,
		Merges:    merges,
		Finds:     finds,
	}
}

func (r *reader) tractable() *core.TractableTrace {
	st := r.result("Σst")
	ts := r.result("Σts")
	nullState := r.count("null state", maxCounter)
	jcan := r.instance("canonical target")
	ican := r.instance("canonical source")
	if r.err != nil {
		return nil
	}
	jcan.Freeze()
	ican.Freeze()
	t := &core.TractableTrace{
		JCan:      jcan,
		ICan:      ican,
		StepsST:   st.Steps,
		StepsTS:   ts.Steps,
		STResult:  st,
		TSResult:  ts,
		NullState: nullState,
	}
	t.FillBlocks()
	return t
}

func (r *reader) generic() *core.CanonicalTarget {
	ct := &core.CanonicalTarget{}
	ct.STResult = r.result("Σst")
	if r.boolVal("Σt flag") && r.err == nil {
		ct.TResult = r.result("Σt")
	}
	ct.TFailed = r.boolVal("Σt failed flag")
	hasJCan := r.boolVal("canonical target flag")
	if hasJCan && r.err == nil {
		ct.JCan = r.instance("canonical target")
	}
	ct.NullState = r.count("null state", maxCounter)
	if r.err != nil {
		return nil
	}
	if ct.TFailed == hasJCan {
		r.fail(ErrCorrupt, "canonical target presence inconsistent with failure flag")
		return nil
	}
	if ct.TFailed && ct.TResult == nil {
		r.fail(ErrCorrupt, "failed target chase without its result")
		return nil
	}
	if ct.JCan != nil {
		ct.JCan.Freeze()
	}
	return ct
}
