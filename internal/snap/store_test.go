package snap_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snap"
)

func testKey(b byte) string {
	return strings.Repeat(string([]byte{b}), 64)
}

func TestStoreSaveLoadListRemove(t *testing.T) {
	dir := t.TempDir()
	s, err := snap.Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if s.Dir() != dir {
		t.Fatalf("dir: %s", s.Dir())
	}
	keys, err := s.List()
	if err != nil || len(keys) != 0 {
		t.Fatalf("fresh list: %v, %v", keys, err)
	}

	ka, kb := testKey('a'), testKey('b')
	if err := s.Save(kb, []byte("beta")); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := s.Save(ka, []byte("alpha")); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := s.Save(ka, []byte("alpha2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	keys, err = s.List()
	if err != nil || len(keys) != 2 || keys[0] != ka || keys[1] != kb {
		t.Fatalf("list: %v, %v", keys, err)
	}
	data, err := s.Load(ka)
	if err != nil || string(data) != "alpha2" {
		t.Fatalf("load: %q, %v", data, err)
	}
	if err := s.Remove(ka); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := s.Remove(ka); err != nil {
		t.Fatalf("double remove: %v", err)
	}
	if _, err := s.Load(ka); err == nil {
		t.Fatal("load after remove succeeded")
	}

	// No stray temp files survive the save cycle.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasPrefix(e.Name(), ".probe-") {
			t.Fatalf("stray temp file %s", e.Name())
		}
	}
}

func TestStoreRejectsInvalidKeys(t *testing.T) {
	s, err := snap.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, key := range []string{"", "short", testKey('A'), testKey('z'), "../" + testKey('a')[3:], testKey('a') + "x"} {
		if err := s.Save(key, []byte("x")); err == nil {
			t.Fatalf("save accepted key %q", key)
		}
		if _, err := s.Load(key); err == nil {
			t.Fatalf("load accepted key %q", key)
		}
		if err := s.Remove(key); err == nil {
			t.Fatalf("remove accepted key %q", key)
		}
	}
}

func TestStoreListIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := snap.Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, name := range []string{"README", "short.pdxsnap", testKey('A') + ".pdxsnap", testKey('c') + ".bak"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(testKey('d'), []byte("x")); err != nil {
		t.Fatalf("save: %v", err)
	}
	keys, err := s.List()
	if err != nil || len(keys) != 1 || keys[0] != testKey('d') {
		t.Fatalf("list: %v, %v", keys, err)
	}
}

// TestOpenRejectsUnwritableDir uses an existing regular file as the
// directory path — the one unwritability mode that holds even when the
// tests run as root (permission bits do not).
func TestOpenRejectsUnwritableDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Open(path); err == nil {
		t.Fatal("open accepted a regular file as snapshot dir")
	}
}

func TestOpenRefusesNewerFormatVersion(t *testing.T) {
	dir := t.TempDir()
	data := buildEntry(t)
	newer := append([]byte(nil), data...)
	newer[8] = snap.Version + 1 // version byte sits after the 8-byte magic
	if err := os.WriteFile(filepath.Join(dir, testKey('e')+".pdxsnap"), newer, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Open(dir); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("open of newer-version dir: %v", err)
	}

	// The same bytes under the current version are fine to open (Load
	// still validates bodies individually).
	ok := t.TempDir()
	if err := os.WriteFile(filepath.Join(ok, testKey('e')+".pdxsnap"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Open(ok); err != nil {
		t.Fatalf("open of current-version dir: %v", err)
	}
}
