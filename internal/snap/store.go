package snap

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fileExt is the extension of snapshot files inside a Store directory.
const fileExt = ".pdxsnap"

// Store is a directory of snapshot files, one per cache entry, named
// "<Key>.pdxsnap". Writes are atomic (temp file + fsync + rename), so a
// crash mid-save never leaves a torn snapshot behind — readers see
// either the old bytes or the new ones. The Store itself performs no
// locking: pdxd funnels all writes through one write-behind goroutine.
type Store struct {
	dir string
}

// Open prepares dir as a snapshot directory: it creates it if missing,
// probes that it is writable, and scans the headers of existing
// snapshot files. A file carrying a newer format version is an error —
// a newer daemon owns that directory, and silently ignoring (or later
// clobbering) its snapshots would corrupt the newer fleet's warm state.
// Files with unreadable headers are left for Load to reject
// individually.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snap: creating snapshot dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("snap: snapshot dir %s is not writable: %w", dir, err)
	}
	name := probe.Name()
	probe.Close()
	if err := os.Remove(name); err != nil {
		return nil, fmt.Errorf("snap: snapshot dir %s is not writable: %w", dir, err)
	}
	s := &Store{dir: dir}
	keys, err := s.List()
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		head := make([]byte, len(magic)+10) // magic + maximal uvarint
		f, err := os.Open(s.path(key))
		if err != nil {
			continue // racing deletion; Load will report if it matters
		}
		n, _ := f.Read(head)
		f.Close()
		v, err := HeaderVersion(head[:n])
		if err != nil {
			continue
		}
		if v > Version {
			return nil, fmt.Errorf("snap: %s has format version %d, this build reads %d; refusing the snapshot dir", s.path(key), v, Version)
		}
	}
	return s, nil
}

// Dir returns the directory backing the store.
func (s *Store) Dir() string { return s.dir }

// validKey reports whether key has the shape Key produces: 64 lowercase
// hex characters. Everything else is rejected before it can touch the
// filesystem — keys arrive over the warm-transfer API from peers.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+fileExt)
}

// List returns the keys of the stored snapshots, sorted. File names
// that do not look like snapshot keys are ignored.
func (s *Store) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snap: listing snapshot dir: %w", err)
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		key := strings.TrimSuffix(name, fileExt)
		if validKey(key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Save atomically writes one snapshot under its key.
func (s *Store) Save(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("snap: invalid snapshot key %q", key)
	}
	f, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("snap: saving snapshot: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(key))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snap: saving snapshot %s: %w", key, err)
	}
	return nil
}

// Load reads one snapshot's bytes. The caller decodes and validates.
func (s *Store) Load(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("snap: invalid snapshot key %q", key)
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("snap: loading snapshot %s: %w", key, err)
	}
	return data, nil
}

// Remove deletes one snapshot; a missing file is not an error.
func (s *Store) Remove(key string) error {
	if !validKey(key) {
		return fmt.Errorf("snap: invalid snapshot key %q", key)
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("snap: removing snapshot %s: %w", key, err)
	}
	return nil
}
