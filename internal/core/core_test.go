package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// example1Setting is Example 1 of the paper:
//
//	Σst: E(x,z), E(z,y) -> H(x,y)
//	Σts: H(x,y) -> E(x,y)
//	Σt:  ∅
func example1Setting() *core.Setting {
	return &core.Setting{
		Name:   "example1",
		Source: rel.SchemaOf("E", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		}},
	}
}

func edges(pairs ...[2]string) *rel.Instance {
	inst := rel.NewInstance()
	for _, p := range pairs {
		inst.Add("E", rel.Const(p[0]), rel.Const(p[1]))
	}
	return inst
}

func TestSettingValidate(t *testing.T) {
	s := example1Setting()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid setting rejected: %v", err)
	}
	bad := example1Setting()
	bad.Target = rel.SchemaOf("E", 2) // overlaps source
	if err := bad.Validate(); err == nil {
		t.Error("overlapping schemas accepted")
	}
	bad2 := example1Setting()
	bad2.ST[0].Body = []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))} // body over target
	if err := bad2.Validate(); err == nil {
		t.Error("st tgd with target body accepted")
	}
	bad3 := example1Setting()
	bad3.T = []dep.Dependency{dep.TGD{
		Label: "t",
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}, // source relation in Σt
		Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
	}}
	if err := bad3.Validate(); err == nil {
		t.Error("Σt over source relation accepted")
	}
}

// TestExample1 reproduces all three instance families of Example 1.
func TestExample1(t *testing.T) {
	s := example1Setting()
	j := rel.NewInstance()

	cases := []struct {
		name string
		i    *rel.Instance
		want bool
	}{
		{"path-no-solution", edges([2]string{"a", "b"}, [2]string{"b", "c"}), false},
		{"self-loop-unique-solution", edges([2]string{"a", "a"}), true},
		{"triangle-closed", edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"}), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, witness, _, err := core.ExistsSolutionGeneric(s, tc.i, j, core.SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("generic SOL = %v, want %v", got, tc.want)
			}
			if got && !s.IsSolution(tc.i, j, witness) {
				t.Errorf("witness is not a solution:\n%s\nviolations: %v",
					witness, s.SolutionViolations(tc.i, j, witness))
			}
			// The setting is in C_tract (LAV Σts): the Figure 3
			// algorithm must agree.
			tr, _, err := core.ExistsSolutionTractable(s, tc.i, j, core.TractableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if tr != tc.want {
				t.Errorf("tractable SOL = %v, want %v", tr, tc.want)
			}
		})
	}
}

func TestExample1KnownSolutions(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	j := rel.NewInstance()

	sol1 := rel.NewInstance()
	sol1.Add("H", rel.Const("a"), rel.Const("c"))
	if !s.IsSolution(i, j, sol1) {
		t.Errorf("{H(a,c)} must be a solution: %v", s.SolutionViolations(i, j, sol1))
	}
	sol2 := sol1.Clone()
	sol2.Add("H", rel.Const("a"), rel.Const("b"))
	sol2.Add("H", rel.Const("b"), rel.Const("c"))
	if !s.IsSolution(i, j, sol2) {
		t.Errorf("{H(a,b),H(b,c),H(a,c)} must be a solution: %v", s.SolutionViolations(i, j, sol2))
	}
	notSol := rel.NewInstance()
	notSol.Add("H", rel.Const("c"), rel.Const("a"))
	if s.IsSolution(i, j, notSol) {
		t.Error("{H(c,a)} must not be a solution (violates Σts and Σst)")
	}
}

func TestExample1SelfLoopUniqueSolution(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "a"})
	j := rel.NewInstance()
	want := rel.NewInstance()
	want.Add("H", rel.Const("a"), rel.Const("a"))

	count := 0
	var got *rel.Instance
	_, err := core.ForEachImageSolution(s, i, j, core.SolveOptions{}, func(sol *rel.Instance) bool {
		count++
		got = sol
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("image solutions = %d, want exactly 1", count)
	}
	if got == nil || !got.Equal(want) {
		t.Errorf("solution = %v, want {H(a,a)}", got)
	}
}

func TestNonEmptyTargetInstance(t *testing.T) {
	// J already holds H(a,c); target must keep it, and Σts requires
	// E(a,c) in the source.
	s := example1Setting()
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("c"))

	// Source without E(a,c): J itself violates Σts and no augmentation
	// can fix it (facts are never removed).
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	got, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("solution should not exist: J's fact violates Σts")
	}

	// Source with E(a,c): J' = J works.
	i2 := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	got, witness, _, err := core.ExistsSolutionGeneric(s, i2, j, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("solution should exist")
	}
	if !witness.ContainsAll(j) {
		t.Error("witness does not contain J")
	}
}

func TestFindSolutionTractable(t *testing.T) {
	s := example1Setting()
	j := rel.NewInstance()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	sol, trace, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("no solution constructed")
	}
	if !s.IsSolution(i, j, sol) {
		t.Errorf("J_img is not a solution: %v", s.SolutionViolations(i, j, sol))
	}
	if trace.JCan == nil || trace.ICan == nil {
		t.Error("trace not populated")
	}

	// Unsolvable case returns nil without error.
	sol, _, err = core.FindSolutionTractable(s, edges([2]string{"a", "b"}, [2]string{"b", "c"}), j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol != nil {
		t.Error("solution constructed for unsolvable instance")
	}
}

func TestTractableRefusesTargetConstraints(t *testing.T) {
	s := example1Setting()
	s.T = []dep.Dependency{dep.EGD{
		Label: "e",
		Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y")), dep.NewAtom("H", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}}
	if _, _, err := core.ExistsSolutionTractable(s, rel.NewInstance(), rel.NewInstance(), core.TractableOptions{}); err == nil {
		t.Error("tractable solver accepted target constraints")
	}
}

func TestTractableRefusesCondition1Violation(t *testing.T) {
	s := &core.Setting{
		Name:   "cond1-violation",
		Source: rel.SchemaOf("A", 2, "U", 2),
		Target: rel.SchemaOf("T1", 2, "T2", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"), dep.Var("v"))},
			Head:  []dep.Atom{dep.NewAtom("T1", dep.Var("x"), dep.Var("y")), dep.NewAtom("T2", dep.Var("y"), dep.Var("v"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T1", dep.Var("x"), dep.Var("y")), dep.NewAtom("T2", dep.Var("y"), dep.Var("z"))},
			Head:  []dep.Atom{dep.NewAtom("U", dep.Var("x"), dep.Var("z"))},
		}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, err := core.ExistsSolutionTractable(s, rel.NewInstance(), rel.NewInstance(), core.TractableOptions{})
	if err == nil {
		t.Error("condition 1 violation not rejected")
	}
	// With the escape hatch it runs.
	_, _, err = core.ExistsSolutionTractable(s, rel.NewInstance(), rel.NewInstance(), core.TractableOptions{SkipCondition1Check: true})
	if err != nil {
		t.Errorf("forced run failed: %v", err)
	}
}

func TestGenericSolverBudget(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	_, _, _, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{MaxNodes: 0})
	if err != nil {
		t.Fatalf("unbounded run errored: %v", err)
	}
	// A budget of 0 nodes is "no bound"; 1 node must trip on any search
	// with at least one null... Example 1 has no nulls in J_can, so use
	// a setting with existentials.
	s2 := &core.Setting{
		Name:   "nulls",
		Source: rel.SchemaOf("A", 1, "B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("w"))},
		}},
	}
	i2 := rel.NewInstance()
	for k := 0; k < 5; k++ {
		i2.Add("A", rel.Const(string(rune('a'+k))))
		i2.Add("B", rel.Const(string(rune('a'+k))), rel.Const("z"))
	}
	_, _, _, err = core.ExistsSolutionGeneric(s2, i2, rel.NewInstance(), core.SolveOptions{MaxNodes: 2})
	if !errors.Is(err, core.ErrSearchBudget) {
		t.Errorf("expected search budget error, got %v", err)
	}
}

func TestNaiveModeAgrees(t *testing.T) {
	s := example1Setting()
	cases := []*rel.Instance{
		edges([2]string{"a", "b"}, [2]string{"b", "c"}),
		edges([2]string{"a", "a"}),
		edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"}),
	}
	for idx, i := range cases {
		fast, _, _, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		naive, _, _, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{Naive: true})
		if err != nil {
			t.Fatal(err)
		}
		if fast != naive {
			t.Errorf("case %d: pruned=%v naive=%v", idx, fast, naive)
		}
	}
}

func TestMultiSettingCombineEquivalence(t *testing.T) {
	// Two source peers feeding one target: peer 1 as in Example 1, peer
	// 2 copies a relation F into H... F -> H directly.
	target := rel.SchemaOf("H", 2)
	p1 := example1Setting()
	p1.Target = target
	p2 := &core.Setting{
		Name:   "peer2",
		Source: rel.SchemaOf("F", 2),
		Target: target,
		ST: []dep.TGD{{
			Label: "st2",
			Body:  []dep.Atom{dep.NewAtom("F", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
	}
	m := &core.MultiSetting{Name: "multi", Peers: []*core.Setting{p1, p2}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	combined, err := m.Combine()
	if err != nil {
		t.Fatal(err)
	}
	if err := combined.Validate(); err != nil {
		t.Fatal(err)
	}

	i1 := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	i2 := rel.NewInstance()
	i2.Add("F", rel.Const("q"), rel.Const("r"))
	j := rel.NewInstance()

	// A solution of the combined setting must be a multi-solution and
	// vice versa. H(q,r) is forced by peer 2; Σts of peer 1 then needs
	// E(q,r) in peer 1's source — absent, so there is NO solution.
	got, _, _, err := core.ExistsSolutionGeneric(combined, rel.Union(i1, i2), j, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("combined setting should have no solution (H(q,r) violates peer 1's Σts)")
	}

	// Add E(q,r) to peer 1: now solutions exist and multi/combined agree.
	i1.Add("E", rel.Const("q"), rel.Const("r"))
	got, witness, _, err := core.ExistsSolutionGeneric(combined, rel.Union(i1, i2), j, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("combined setting should have a solution")
	}
	ok, err := m.IsSolution([]*rel.Instance{i1, i2}, j, witness)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("combined witness is not a multi-PDE solution")
	}
}

func TestMultiSettingValidation(t *testing.T) {
	p1 := example1Setting()
	p2 := example1Setting() // same source schema: overlap
	m := &core.MultiSetting{Name: "bad", Peers: []*core.Setting{p1, p2}}
	if err := m.Validate(); err == nil {
		t.Error("overlapping peer sources accepted")
	}
	empty := &core.MultiSetting{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty multi-setting accepted")
	}
}

func TestSmallSolutionLemma2(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	j := rel.NewInstance()
	// A deliberately bloated solution.
	big := rel.NewInstance()
	big.Add("H", rel.Const("a"), rel.Const("c"))
	big.Add("H", rel.Const("a"), rel.Const("b"))
	big.Add("H", rel.Const("b"), rel.Const("c"))
	if !s.IsSolution(i, j, big) {
		t.Fatal("setup: big is not a solution")
	}
	small, err := core.SmallSolution(s, i, j, big, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !big.ContainsAll(small) {
		t.Error("small solution not contained in the given solution")
	}
	if !s.IsSolution(i, j, small) {
		t.Errorf("small solution is not a solution: %v", s.SolutionViolations(i, j, small))
	}
	if small.NumFacts() > 1 {
		t.Errorf("expected the 1-fact chase core, got %d facts:\n%s", small.NumFacts(), small)
	}
}

func TestSmallSolutionRejectsNonSolution(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	notSol := rel.NewInstance() // empty: violates Σst
	if _, err := core.SmallSolution(s, i, rel.NewInstance(), notSol, core.SolveOptions{}); err == nil {
		t.Error("SmallSolution accepted a non-solution")
	}
}

func TestMinimizeSolution(t *testing.T) {
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	j := rel.NewInstance()
	big := rel.NewInstance()
	big.Add("H", rel.Const("a"), rel.Const("c"))
	big.Add("H", rel.Const("a"), rel.Const("b"))
	big.Add("H", rel.Const("b"), rel.Const("c"))
	minimal := core.MinimizeSolution(s, i, j, big, core.SolveOptions{})
	if !s.IsSolution(i, j, minimal) {
		t.Fatal("minimized instance is not a solution")
	}
	if minimal.NumFacts() != 1 {
		t.Errorf("minimal solution has %d facts, want 1:\n%s", minimal.NumFacts(), minimal)
	}
	// J facts are never removed.
	j2 := rel.NewInstance()
	j2.Add("H", rel.Const("a"), rel.Const("b"))
	big2 := big.Clone()
	minimal2 := core.MinimizeSolution(s, i, j2, big2, core.SolveOptions{})
	if !minimal2.Contains(rel.Fact{Rel: "H", Args: rel.Tuple{rel.Const("a"), rel.Const("b")}}) {
		t.Error("minimization removed a J fact")
	}
}

func TestClassifyIncludesTargetConstraintRule(t *testing.T) {
	s := example1Setting()
	rep := s.Classify()
	if !rep.InCtract {
		t.Errorf("Example 1 setting should be in C_tract: %s", rep.Summary())
	}
	s.T = []dep.Dependency{dep.EGD{
		Label: "e",
		Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y")), dep.NewAtom("H", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}}
	rep = s.Classify()
	if rep.InCtract {
		t.Error("setting with Σt must not be in C_tract")
	}
}

func TestDataExchangeContrast(t *testing.T) {
	// With Σts = ∅ and Σt = ∅ (pure data exchange), a solution always
	// exists — the sharp contrast the paper draws in Section 3.
	s := example1Setting()
	s.TS = nil
	for _, i := range []*rel.Instance{
		edges([2]string{"a", "b"}, [2]string{"b", "c"}),
		edges([2]string{"a", "a"}),
		edges(),
	} {
		got, _, _, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("data exchange setting must always have a solution")
		}
	}
}

func TestMinimizeSolutionCanceledContextReturnsEarly(t *testing.T) {
	// A pre-canceled context stops the greedy fixpoint before any
	// removal round: the result is the (cloned) input, and callers that
	// set Ctx must check Ctx.Err and discard it.
	s := example1Setting()
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"})
	j := rel.NewInstance()
	big := rel.NewInstance()
	big.Add("H", rel.Const("a"), rel.Const("c"))
	big.Add("H", rel.Const("a"), rel.Const("b"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := core.MinimizeSolution(s, i, j, big, core.SolveOptions{Ctx: ctx})
	if got.NumFacts() != big.NumFacts() {
		t.Errorf("canceled MinimizeSolution still removed facts: %d -> %d", big.NumFacts(), got.NumFacts())
	}
	if big.NumFacts() != 2 {
		t.Errorf("input mutated: %d facts", big.NumFacts())
	}
}
