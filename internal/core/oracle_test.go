package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/oracle"
	"repro/internal/rel"
)

// TestSolverAgainstExhaustiveOracle cross-validates the complete solver
// against brute-force enumeration of all small target instances, over
// randomly generated tiny settings (including target egds, full target
// tgds, and disjunctive target-to-source dependencies). The cmd/pdxfuzz
// tool runs the same harness at much larger trial counts.
func TestSolverAgainstExhaustiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		s := oracle.RandomSetting(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid setting: %v", trial, err)
		}
		i, j := oracle.RandomInstance(rng)
		want, err := oracle.ExhaustiveSOL(s, i, j, oracle.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, witness, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 10_000_000})
		if err != nil {
			t.Fatalf("trial %d: solver error: %v", trial, err)
		}
		if got != want {
			t.Errorf("trial %d: solver=%v oracle=%v\nst: %v\nts: %v / %v\nT: %v\nI:\n%s\nJ:\n%s",
				trial, got, want, s.ST, s.TS, s.TSDisj, s.T, i, j)
		}
		if got && !s.IsSolution(i, j, witness) {
			t.Errorf("trial %d: witness not a solution", trial)
		}
	}
}

// TestTractableAgainstExhaustiveOracle cross-validates the Figure 3
// algorithm on the random settings that land in C_tract.
func TestTractableAgainstExhaustiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	checked := 0
	for trial := 0; trial < 300 && checked < 60; trial++ {
		s := oracle.RandomSetting(rng)
		i, j := oracle.RandomInstance(rng)
		if !s.Classify().InCtract {
			continue
		}
		checked++
		want, err := oracle.ExhaustiveSOL(s, i, j, oracle.Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Errorf("trial %d: tractable=%v oracle=%v\nst: %v\nts: %v\nI:\n%s\nJ:\n%s",
				trial, got, want, s.ST, s.TS, i, j)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d C_tract settings generated; generator drifted", checked)
	}
}

// TestSolverOracleFixedSeeds re-runs a few interesting shapes with
// deterministic instances, so regressions localize without the random
// layer.
func TestSolverOracleFixedSeeds(t *testing.T) {
	// Existential st + join ts + egd: the shape most likely to stress
	// the pre-chase + backjumping machinery.
	s := &core.Setting{
		Name:   "fixed",
		Source: rel.SchemaOf("A", 1, "B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
			Head:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "t-key",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		}},
	}
	for _, tc := range []struct {
		name  string
		build func() (*rel.Instance, *rel.Instance)
	}{
		{"A(a) only", func() (*rel.Instance, *rel.Instance) {
			i := rel.NewInstance()
			i.Add("A", rel.Const("a"))
			return i, rel.NewInstance()
		}},
		{"A(a) with J=T(a,a)", func() (*rel.Instance, *rel.Instance) {
			i := rel.NewInstance()
			i.Add("A", rel.Const("a"))
			j := rel.NewInstance()
			j.Add("T", rel.Const("a"), rel.Const("a"))
			return i, j
		}},
		{"A(a),A(b) with J=T(a,b)", func() (*rel.Instance, *rel.Instance) {
			i := rel.NewInstance()
			i.Add("A", rel.Const("a"))
			i.Add("A", rel.Const("b"))
			j := rel.NewInstance()
			j.Add("T", rel.Const("a"), rel.Const("b"))
			return i, j
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			i, j := tc.build()
			want, err := oracle.ExhaustiveSOL(s, i, j, oracle.Config{MaxFacts: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, _, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("solver=%v oracle=%v", got, want)
			}
		})
	}
}
