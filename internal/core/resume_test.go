package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/oracle"
	"repro/internal/rel"
	"repro/internal/workload"
)

// randomLAVAppend builds a small random batch of new facts over
// LAVSetting's source schema, using constants disjoint from the base
// instance for some facts and overlapping ones for others.
func randomLAVAppend(rng *rand.Rand, round int) *rel.Instance {
	a := rel.NewInstance()
	for k := 0; k < 1+rng.Intn(3); k++ {
		person := rel.Const(fmt.Sprintf("q%d_%d", round, k))
		group := rel.Const(fmt.Sprintf("g%d", rng.Intn(3)))
		a.Add("Person", person, group)
		if rng.Intn(3) > 0 {
			a.Add("Member", person, group)
		}
	}
	return a
}

// TestResumeCanonicalTractableProperty: resuming a tractable trace
// after an append yields the same Figure 3 verdict as re-chasing from
// scratch, across repeated append batches (the resumed trace of round
// k feeds round k+1).
func TestResumeCanonicalTractableProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	opts := core.TractableOptions{}
	for trial := 0; trial < 25; trial++ {
		s := workload.LAVSetting()
		i, j := workload.LAVInstance(6+rng.Intn(10), rng.Intn(2) == 0, rng)
		trace, err := core.ChaseCanonicalTractable(s, i, j, opts)
		if err != nil {
			t.Fatalf("trial %d: base chase: %v", trial, err)
		}
		for round := 0; round < 3; round++ {
			appended := randomLAVAppend(rng, round)
			appended.Freeze()
			next, resumed, _, err := core.ResumeCanonicalTractable(s, trace, appended, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: resume: %v", trial, round, err)
			}
			if !resumed {
				t.Fatalf("trial %d round %d: pure-tgd tractable resume fell back", trial, round)
			}
			i = rel.Union(i, appended)
			gotOK, _, err := core.ExistsSolutionTractableFrom(i, next, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: verdict from resumed trace: %v", trial, round, err)
			}
			wantOK, wantTrace, err := core.ExistsSolutionTractable(s, i, j, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: scratch verdict: %v", trial, round, err)
			}
			if gotOK != wantOK {
				t.Fatalf("trial %d round %d: resumed verdict %v, scratch %v", trial, round, gotOK, wantOK)
			}
			// The canonical instances are chase results of the same input,
			// so their sizes must agree even though null labels differ.
			if got, want := next.ICan.NumFacts(), wantTrace.ICan.NumFacts(); got != want {
				t.Fatalf("trial %d round %d: resumed ICan has %d facts, scratch %d", trial, round, got, want)
			}
			if next.Blocks != wantTrace.Blocks {
				t.Fatalf("trial %d round %d: resumed trace has %d blocks, scratch %d", trial, round, next.Blocks, wantTrace.Blocks)
			}
			trace = next
		}
	}
}

// TestResumeCanonicalTargetProperty: over random settings (including
// target egds, full target tgds, and disjunctive Σts) and random
// append batches, solving from a resumed canonical target agrees with
// the from-scratch generic solver, and witnesses are real solutions.
func TestResumeCanonicalTargetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	opts := core.SolveOptions{}
	resumedSome, fellBack := false, false
	for trial := 0; trial < 60; trial++ {
		s := oracle.RandomSetting(rng)
		i, j := oracle.RandomInstance(rng)
		ct, err := core.ChaseCanonicalTarget(s, i, j, opts)
		if err != nil {
			t.Fatalf("trial %d: base chase: %v", trial, err)
		}
		for round := 0; round < 2; round++ {
			appended := rel.NewInstance()
			dom := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Const(fmt.Sprintf("c%d", round))}
			for k := 0; k < 1+rng.Intn(2); k++ {
				switch rng.Intn(3) {
				case 0:
					appended.Add("A", dom[rng.Intn(len(dom))])
				case 1:
					appended.Add("B", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
				default:
					appended.Add("T", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
				}
			}
			// Split the batch onto the right sides for the from-scratch call.
			i = rel.Union(i, appended.Restrict(s.Source))
			j = rel.Union(j, appended.Restrict(s.Target))
			appended.Freeze()
			next, resumed, _, err := core.ResumeCanonicalTarget(s, ct, appended, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: resume: %v", trial, round, err)
			}
			if resumed {
				resumedSome = true
			} else {
				fellBack = true
			}
			gotOK, gotWit, _, err := core.ExistsSolutionGenericFrom(s, i, j, next, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: solve from resumed target: %v", trial, round, err)
			}
			wantOK, _, _, err := core.ExistsSolutionGeneric(s, i, j, opts)
			if err != nil {
				t.Fatalf("trial %d round %d: scratch solve: %v", trial, round, err)
			}
			if gotOK != wantOK {
				t.Fatalf("trial %d round %d: resumed verdict %v, scratch %v\nsetting: %+v", trial, round, gotOK, wantOK, s)
			}
			if gotOK && !s.IsSolution(i, j, gotWit) {
				t.Fatalf("trial %d round %d: resumed witness is not a solution", trial, round)
			}
			ct = next
		}
	}
	if !resumedSome {
		t.Fatal("no trial exercised the incremental path")
	}
	if !fellBack {
		t.Fatal("no trial exercised the egd fallback path")
	}
}

// instWith builds a one-fact instance.
func instWith(r string, vs ...rel.Value) *rel.Instance {
	in := rel.NewInstance()
	in.Add(r, vs...)
	return in
}

// TestResumeCanonicalTargetKeyedResume pins the relaxed eligibility: a
// setting whose Σt egd is key-shaped resumes the Σt phase
// incrementally even though the egd fired during the base chase, and
// the resumed artifact still solves correctly.
func TestResumeCanonicalTargetKeyedResume(t *testing.T) {
	s := &core.Setting{
		Name:   "keyed-resume",
		Source: rel.SchemaOf("A", 1, "B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "t-key",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		}},
	}
	i := instWith("A", rel.Const("a"))
	// The labeled null makes the base Σt chase merge _N1 into b, so the
	// previous result really carries merge state into the resume.
	j := instWith("T", rel.Const("a"), rel.Null(1))
	j.Add("T", rel.Const("a"), rel.Const("b"))
	opts := core.SolveOptions{}
	ct, err := core.ChaseCanonicalTarget(s, i, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ct.TResult == nil || !ct.TResult.EgdFired {
		t.Fatal("base chase did not exercise the Σt key egd")
	}
	if ct.TResult.UnionFind == nil {
		t.Fatal("merged Σt run retained no union-find")
	}
	appended := instWith("A", rel.Const("c"))
	appended.Freeze()
	next, resumed, reason, err := core.ResumeCanonicalTarget(s, ct, appended, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || reason != chase.FallbackNone {
		t.Fatalf("key-shaped Σt egd fell back: resumed=%v reason=%q", resumed, reason)
	}
	i2 := rel.Union(i, appended)
	gotOK, _, _, err := core.ExistsSolutionGenericFrom(s, i2, j, next, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantOK, _, _, err := core.ExistsSolutionGeneric(s, i2, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != wantOK {
		t.Fatalf("resumed verdict %v, scratch %v", gotOK, wantOK)
	}
}

// TestResumeCanonicalTargetEgdFallback pins the remaining fallback
// rule: a Σt egd that is not key-shaped (its body joins two relations)
// must not resume incrementally, the reason is "egd", and the resumed
// artifact still solves correctly.
func TestResumeCanonicalTargetEgdFallback(t *testing.T) {
	s := &core.Setting{
		Name:   "egd-fallback",
		Source: rel.SchemaOf("A", 1, "B", 2),
		Target: rel.SchemaOf("T", 2, "U", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "t-cross",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("U", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		}},
	}
	i := instWith("A", rel.Const("a"))
	j := instWith("T", rel.Const("a"), rel.Const("b"))
	j.Add("U", rel.Const("a"), rel.Const("b"))
	opts := core.SolveOptions{}
	ct, err := core.ChaseCanonicalTarget(s, i, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	appended := instWith("A", rel.Const("c"))
	appended.Freeze()
	next, resumed, reason, err := core.ResumeCanonicalTarget(s, ct, appended, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("non-key Σt egd reported a fully incremental resume")
	}
	if reason != chase.FallbackEgd {
		t.Fatalf("fallback reason = %q, want %q", reason, chase.FallbackEgd)
	}
	i2 := rel.Union(i, appended)
	gotOK, _, _, err := core.ExistsSolutionGenericFrom(s, i2, j, next, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantOK, _, _, err := core.ExistsSolutionGeneric(s, i2, j, opts)
	if err != nil {
		t.Fatal(err)
	}
	if gotOK != wantOK {
		t.Fatalf("resumed verdict %v, scratch %v", gotOK, wantOK)
	}
}
