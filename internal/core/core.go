// Package core implements peer data exchange settings (Definition 1 of
// the paper), solutions (Definition 2), and the algorithms for the
// existence-of-solutions problem SOL(P) (Definition 3): the
// polynomial-time algorithm of Figure 3 for the tractable class C_tract,
// and a complete backtracking solver that exhibits the NP behaviour of
// Theorem 3 on settings outside C_tract.
package core

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// Setting is a peer data exchange setting P = (S, T, Σst, Σts, Σt):
// a source schema, a target schema disjoint from it, source-to-target
// tgds, target-to-source tgds, and target constraints (tgds and egds
// over the target schema). The optional disjunctive target-to-source
// dependencies model the boundary example of Section 4.
type Setting struct {
	// Name identifies the setting in traces and error messages.
	Name string
	// Source and Target are the peer schemas; they must be disjoint.
	Source, Target *rel.Schema
	// ST are the source-to-target tgds Σst.
	ST []dep.TGD
	// TS are the target-to-source tgds Σts.
	TS []dep.TGD
	// TSDisj are target-to-source tgds with disjunctive heads; they are
	// outside the paper's core language and exist for the Section 4
	// boundary experiment (3-colorability).
	TSDisj []dep.DisjunctiveTGD
	// T are the target constraints Σt: target tgds and target egds.
	T []dep.Dependency
}

// Validate checks the well-formedness of the setting: disjoint schemas,
// source-to-target tgds with bodies over S and heads over T,
// target-to-source tgds the other way around, and target constraints
// entirely over T.
func (s *Setting) Validate() error {
	if s.Source == nil || s.Target == nil {
		return fmt.Errorf("core: setting %s: nil schema", s.Name)
	}
	if !s.Source.Disjoint(s.Target) {
		return fmt.Errorf("core: setting %s: source and target schemas overlap", s.Name)
	}
	for _, d := range s.ST {
		if err := d.Validate(s.Source, s.Target); err != nil {
			return fmt.Errorf("core: setting %s: Σst: %w", s.Name, err)
		}
	}
	for _, d := range s.TS {
		if err := d.Validate(s.Target, s.Source); err != nil {
			return fmt.Errorf("core: setting %s: Σts: %w", s.Name, err)
		}
	}
	for _, d := range s.TSDisj {
		if err := d.Validate(s.Target, s.Source); err != nil {
			return fmt.Errorf("core: setting %s: Σts (disjunctive): %w", s.Name, err)
		}
	}
	for _, d := range s.T {
		switch d := d.(type) {
		case dep.TGD:
			if err := d.Validate(s.Target, s.Target); err != nil {
				return fmt.Errorf("core: setting %s: Σt: %w", s.Name, err)
			}
		case dep.EGD:
			if err := d.Validate(s.Target, nil); err != nil {
				return fmt.Errorf("core: setting %s: Σt: %w", s.Name, err)
			}
		default:
			return fmt.Errorf("core: setting %s: Σt contains unsupported dependency type %T", s.Name, d)
		}
	}
	return nil
}

// HasTargetConstraints reports whether Σt is nonempty.
func (s *Setting) HasTargetConstraints() bool { return len(s.T) > 0 }

// TargetTGDsWeaklyAcyclic reports whether the tgds of Σt form a weakly
// acyclic set (Definition 5). Theorem 1 requires this for the NP upper
// bound; the chase requires it for guaranteed termination.
func (s *Setting) TargetTGDsWeaklyAcyclic() bool {
	return dep.WeaklyAcyclic(dep.TGDs(s.T))
}

// TargetTGDsAllFull reports whether every tgd of Σt is full. The generic
// solver is complete for Σt consisting of egds and full tgds.
func (s *Setting) TargetTGDsAllFull() bool {
	for _, d := range dep.TGDs(s.T) {
		if !d.IsFull() {
			return false
		}
	}
	return true
}

// Classify decides membership of the setting in C_tract (Definition 9).
// C_tract is defined for settings without target constraints; a setting
// with Σt != ∅ is never in C_tract (Section 4 shows even a single target
// egd or a single full target tgd crosses the intractability boundary).
func (s *Setting) Classify() dep.CtractReport {
	rep := dep.ClassifyCtract(s.ST, s.TS, s.TSDisj)
	if len(s.T) > 0 {
		rep.InCtract = false
		rep.Violations = append(rep.Violations,
			"C_tract requires no target constraints (Σt must be empty)")
	}
	return rep
}

// StDeps returns Σst as a dependency list for the chase.
func (s *Setting) StDeps() []dep.Dependency {
	out := make([]dep.Dependency, len(s.ST))
	for i, d := range s.ST {
		out[i] = d
	}
	return out
}

// TsDeps returns the (non-disjunctive) Σts as a dependency list.
func (s *Setting) TsDeps() []dep.Dependency {
	out := make([]dep.Dependency, len(s.TS))
	for i, d := range s.TS {
		out[i] = d
	}
	return out
}

// ExchangeDeps returns Σst ∪ Σts ∪ disjunctive Σts as a dependency list,
// for satisfaction checking over a combined (source, target) instance.
func (s *Setting) ExchangeDeps() []dep.Dependency {
	out := s.StDeps()
	out = append(out, s.TsDeps()...)
	for _, d := range s.TSDisj {
		out = append(out, d)
	}
	return out
}

// IsSolution decides whether Jp is a solution for (I, J) in the setting
// (Definition 2): J ⊆ Jp, (I, Jp) satisfies Σst and Σts, and Jp
// satisfies Σt. Labeled nulls in Jp are treated as distinct fresh
// values.
func (s *Setting) IsSolution(i, j, jp *rel.Instance) bool {
	return len(s.SolutionViolations(i, j, jp)) == 0
}

// SolutionViolations explains why Jp fails to be a solution for (I, J);
// it returns an empty slice when Jp is a solution.
func (s *Setting) SolutionViolations(i, j, jp *rel.Instance) []chase.Violation {
	var out []chase.Violation
	for _, f := range j.Facts() {
		if !jp.Contains(f) {
			out = append(out, chase.Violation{
				Dep:    "containment",
				Detail: fmt.Sprintf("J fact %s missing from candidate solution", f),
			})
		}
	}
	combined := rel.Union(i, jp)
	out = append(out, chase.Violations(combined, s.ExchangeDeps(), hom.Options{})...)
	out = append(out, chase.Violations(jp, s.T, hom.Options{})...)
	return out
}

// MultiSetting is a family of PDE settings sharing one target peer, as
// in the multi-PDE construction of Section 2. The peers' source schemas
// must be pairwise disjoint.
type MultiSetting struct {
	Name  string
	Peers []*Setting
}

// Validate checks each peer setting and the pairwise disjointness of
// the source schemas and the shared target schema.
func (m *MultiSetting) Validate() error {
	if len(m.Peers) == 0 {
		return fmt.Errorf("core: multi-setting %s has no peers", m.Name)
	}
	target := m.Peers[0].Target
	for idx, p := range m.Peers {
		if err := p.Validate(); err != nil {
			return err
		}
		if p.Target != target && p.Target.String() != target.String() {
			return fmt.Errorf("core: multi-setting %s: peer %d has a different target schema", m.Name, idx)
		}
		for jdx := idx + 1; jdx < len(m.Peers); jdx++ {
			if !p.Source.Disjoint(m.Peers[jdx].Source) {
				return fmt.Errorf("core: multi-setting %s: source schemas of peers %d and %d overlap", m.Name, idx, jdx)
			}
		}
	}
	return nil
}

// Combine builds the single PDE setting that simulates the multi-PDE
// setting: the union of the source schemas and of all dependency sets.
// Per Section 2, the combined setting has exactly the same space of
// solutions as the multi-PDE setting.
func (m *MultiSetting) Combine() (*Setting, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	src := rel.NewSchema()
	combined := &Setting{Name: m.Name + "-combined", Target: m.Peers[0].Target}
	for _, p := range m.Peers {
		var err error
		src, err = src.Union(p.Source)
		if err != nil {
			return nil, err
		}
		combined.ST = append(combined.ST, p.ST...)
		combined.TS = append(combined.TS, p.TS...)
		combined.TSDisj = append(combined.TSDisj, p.TSDisj...)
		combined.T = append(combined.T, p.T...)
	}
	combined.Source = src
	return combined, nil
}

// IsSolution decides whether Jp is a solution for ((I1,...,In), J) in
// the multi-PDE setting: Jp must be a solution for (Im, J) in every peer
// setting.
func (m *MultiSetting) IsSolution(sources []*rel.Instance, j, jp *rel.Instance) (bool, error) {
	if len(sources) != len(m.Peers) {
		return false, fmt.Errorf("core: multi-setting %s: %d source instances for %d peers", m.Name, len(sources), len(m.Peers))
	}
	for idx, p := range m.Peers {
		if !p.IsSolution(sources[idx], j, jp) {
			return false, nil
		}
	}
	return true, nil
}

// CombineSources unions the per-peer source instances into the source
// instance of the combined setting.
func (m *MultiSetting) CombineSources(sources []*rel.Instance) (*rel.Instance, error) {
	if len(sources) != len(m.Peers) {
		return nil, fmt.Errorf("core: multi-setting %s: %d source instances for %d peers", m.Name, len(sources), len(m.Peers))
	}
	out := rel.NewInstance()
	for _, src := range sources {
		out.AddAll(src)
	}
	return out, nil
}
