package core_test

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestTractableScalesToThousands: the Figure 3 algorithm handles
// thousands of facts in well under a second — the polynomial promise of
// Theorem 4 at a usable scale (not just asymptotically).
func TestTractableScalesToThousands(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(61))
	i, j := workload.LAVInstance(5000, true, rng)
	start := time.Now()
	ok, trace, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !ok {
		t.Fatal("solvable instance rejected")
	}
	if trace.JCan.NumFacts() != 5000 {
		t.Errorf("|J_can| = %d", trace.JCan.NumFacts())
	}
	if elapsed > 20*time.Second {
		t.Errorf("5000-person instance took %v; the polynomial algorithm regressed", elapsed)
	}
	t.Logf("n=5000 decided in %v (|I_can|=%d, %d blocks)", elapsed, trace.ICan.NumFacts(), trace.Blocks)
}

// TestGenericScalesOnEasyFamily: the complete solver with backjumping
// handles hundreds of independent nulls quickly on both solvable and
// unsolvable instances (no exponential blowup on structurally easy
// inputs).
func TestGenericScalesOnEasyFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(62))
	for _, solvable := range []bool{true, false} {
		i, j := workload.LAVInstance(300, solvable, rng)
		start := time.Now()
		got, _, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 10_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if got != solvable {
			t.Errorf("solvable=%v got=%v", solvable, got)
		}
		if elapsed := time.Since(start); elapsed > 20*time.Second {
			t.Errorf("solvable=%v took %v (nodes=%d)", solvable, elapsed, stats.Nodes)
		}
		// Backjumping keeps the node count linear in the null count.
		if stats.Nodes > int64(4*stats.NullCount+8) {
			t.Errorf("solvable=%v: nodes=%d for %d nulls; backjumping regressed", solvable, stats.Nodes, stats.NullCount)
		}
	}
}

// TestGenomicEndToEndScale: the full motivating scenario at a few
// thousand proteins, through the public-path pieces (solve + witness +
// verification).
func TestGenomicEndToEndScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	s := workload.GenomicSetting()
	rng := rand.New(rand.NewSource(63))
	i, j := workload.GenomicInstance(2000, true, rng)
	sol, trace, err := core.FindSolutionTractable(s, i, j, core.TractableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil {
		t.Fatal("no solution at scale")
	}
	if !s.IsSolution(i, j, sol) {
		t.Fatal("scale witness invalid")
	}
	// 2000 gene products + 2000 paper refs expected.
	if sol.NumFacts() != 4000 {
		t.Errorf("|solution| = %d, want 4000", sol.NumFacts())
	}
	if trace.MaxBlockNulls > 1 {
		t.Errorf("C_tract block bound violated: %d", trace.MaxBlockNulls)
	}
}
