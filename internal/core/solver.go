package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/par"
	"repro/internal/rel"
)

// ErrSearchBudget is returned when the generic solver exceeds its node
// budget before deciding. On settings outside C_tract the search is
// exponential in the worst case (Theorem 3), so a budget is essential.
var ErrSearchBudget = errors.New("core: generic solver search budget exhausted")

// ErrCanceled is the identity of context-cancellation errors from both
// solvers (and, transitively, the chase runs they issue). It is the
// execution layer's shared sentinel; errors wrapping it also wrap the
// context's own error, so errors.Is matches context.DeadlineExceeded
// and context.Canceled as well.
var ErrCanceled = par.ErrCanceled

// canceled returns a wrapped cancellation error when ctx is non-nil and
// done, nil otherwise.
func canceled(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s: %w: %w", what, ErrCanceled, err)
	}
	return nil
}

// SolveOptions configures the generic solver.
type SolveOptions struct {
	// MaxNodes bounds the number of search nodes; 0 means no bound.
	MaxNodes int64
	// Hom configures homomorphism search.
	Hom hom.Options
	// Naive disables violation-driven pruning: constraints are checked
	// only at the leaves. Exists for the ablation benchmark.
	Naive bool
	// MaxChaseSteps bounds each chase; 0 means the chase default.
	MaxChaseSteps int
	// NaiveChase disables the semi-naive (delta-driven) trigger
	// collection in the chases the solver runs. Results are
	// byte-identical either way; exists for ablation and parity gates.
	NaiveChase bool
	// Parallelism bounds the workers of the parallel phases (chase
	// trigger search, the candidate-violation scan over the Σts
	// dependencies): 0 means GOMAXPROCS, 1 forces the serial paths.
	// Verdicts, witnesses, and search statistics are byte-identical at
	// every setting. When nonzero it overrides Hom.Parallelism.
	Parallelism int
	// Seed perturbs parallel work distribution (never results); when
	// nonzero it overrides Hom.Seed.
	Seed int64
	// Ctx, when non-nil, cancels the search: the solver checks it at
	// every node, the chase phases check it at every step, and the
	// homomorphism searches poll it, so per-request deadlines and
	// client disconnects stop work promptly with an error wrapping
	// ErrCanceled. nil means never canceled.
	Ctx context.Context
}

// homOpts folds the option-level parallelism knobs into the hom options
// handed to the searches.
func (o SolveOptions) homOpts() hom.Options {
	h := o.Hom
	if o.Parallelism != 0 {
		h.Parallelism = o.Parallelism
	}
	if o.Seed != 0 {
		h.Seed = o.Seed
	}
	if h.Ctx == nil {
		h.Ctx = o.Ctx
	}
	return h
}

// SolveStats reports search effort.
type SolveStats struct {
	// Nodes is the number of search-tree nodes visited.
	Nodes int64
	// NullCount is the number of labeled nulls of J_can the search
	// assigned.
	NullCount int
	// DomainSize is the number of candidate values per null (including
	// the keep-as-fresh option).
	DomainSize int
	// Solutions is the number of accepting leaves visited (1 when the
	// search stops at the first solution).
	Solutions int64
}

// ExistsSolutionGeneric decides SOL(P) with a complete backtracking
// search and returns a witness solution when one exists.
//
// Method. Let (I, J_can) be the restricted chase of (I, J) with Σst.
// By Lemma 3 of the paper, every solution J_sol admits a homomorphism
// g : J_can -> J_sol that is the identity on constants — and the image
// g(J_can) is itself a solution: it contains J (J ⊆ J_can is null-free),
// satisfies Σst (homomorphic images of the chase result do), and
// satisfies Σts because g(J_can) ⊆ J_sol and target-to-source
// dependencies are inherited by subsets (their heads are over the fixed
// source instance I). Moreover the image may be normalized so that every
// null of J_can is either kept as itself (a fresh value) or mapped to a
// value of adom(I) ∪ adom(J): mapping a null to any other value can be
// replaced by keeping it fresh without breaking any constraint, because
// a Σts trigger whose head position carries a non-adom(I) value is
// unsatisfiable either way. Hence
//
//	SOL(P)  ⇔  some assignment h : nulls(J_can) -> adom(I) ∪ adom(J) ∪ {keep}
//	           makes (I, h(J_can)) satisfy Σts.
//
// With target constraints Σt consisting of egds and full tgds, each
// assignment is additionally chased with Σt (full tgds create no new
// nulls; egds merge or fail) and all constraints are re-checked on the
// result; the same subset/normalization argument shows completeness for
// that class. For Σt with existential tgds the solver is sound but may
// miss solutions requiring fresh Σt witnesses to be merged; it reports
// such settings via ErrUnsupportedTargetTGDs unless they are weakly
// acyclic, in which case it proceeds (and remains sound).
//
// The search is exponential in the number of nulls of J_can in the worst
// case — the NP behaviour Theorem 3 proves unavoidable (unless P = NP).
func ExistsSolutionGeneric(s *Setting, i, j *rel.Instance, opts SolveOptions) (bool, *rel.Instance, *SolveStats, error) {
	var witness *rel.Instance
	stats, err := forEachImageSolution(s, i, j, opts, func(sol *rel.Instance) bool {
		witness = sol
		return false // stop at the first solution
	})
	if err != nil {
		return false, nil, stats, err
	}
	return witness != nil, witness, stats, nil
}

// ForEachImageSolution enumerates the image solutions h(J_can) (chased
// with Σt when present) that satisfy all constraints, calling fn for
// each; fn returns false to stop. For Σt = ∅ this family is a complete
// set of "minimal-information" solutions: every solution contains one of
// them, which is what the certain-answers evaluator relies on for
// monotone queries.
func ForEachImageSolution(s *Setting, i, j *rel.Instance, opts SolveOptions, fn func(*rel.Instance) bool) (*SolveStats, error) {
	return forEachImageSolution(s, i, j, opts, fn)
}

// ErrUnsupportedTargetTGDs reports target constraints outside the class
// the generic solver is complete for.
var ErrUnsupportedTargetTGDs = errors.New("core: Σt has existential tgds that are not weakly acyclic; the generic solver cannot handle them")

func forEachImageSolution(s *Setting, i, j *rel.Instance, opts SolveOptions, fn func(*rel.Instance) bool) (*SolveStats, error) {
	ct, err := ChaseCanonicalTarget(s, i, j, opts)
	if err != nil {
		return nil, err
	}
	return ForEachImageSolutionFrom(s, i, j, ct, opts, fn)
}

// imageSearch is the backtracking state for the assignment search over
// the nulls of J_can.
type imageSearch struct {
	s     *Setting
	i     *rel.Instance
	j     *rel.Instance
	opts  SolveOptions
	copts chase.Options
	stats SolveStats

	nulls  []rel.Value // nulls of J_can in assignment order
	domain []rel.Value // shared candidate constants (adom(I) [∪ adom(J)])

	// facts of J_can and their null structure
	facts     []rel.Fact
	factNulls [][]int // indexes into nulls, per fact
	readyAt   [][]int // facts becoming fully assigned at null index k

	assignment map[rel.Value]rel.Value // null -> value (may map null to itself)
	cur        *rel.Instance           // grounded target facts assigned so far
	curSrc     *rel.Instance           // i ∪ cur, maintained incrementally
	levelAdded [][]rel.Fact            // facts grounded per level, for LIFO undo
	factResp   map[string][]int        // grounded fact key -> responsible null indexes
	stopped    bool
}

// noConflict marks a subtree that produced solutions (or whose failures
// carry no usable conflict information); no candidate skipping applies.
const noConflict = int(^uint(0) >> 1)

func newImageSearch(s *Setting, i, j, jcan *rel.Instance, opts SolveOptions, copts chase.Options) *imageSearch {
	sv := &imageSearch{
		s:          s,
		i:          i,
		j:          j,
		opts:       opts,
		copts:      copts,
		assignment: make(map[rel.Value]rel.Value),
		cur:        rel.NewInstance(),
		curSrc:     i.Clone(),
		factResp:   make(map[string][]int),
	}

	nullSet := jcan.Nulls()
	for n := range nullSet {
		sv.nulls = append(sv.nulls, n)
	}
	sort.Slice(sv.nulls, func(a, b int) bool { return sv.nulls[a].Less(sv.nulls[b]) })
	nullIdx := make(map[rel.Value]int, len(sv.nulls))
	for idx, n := range sv.nulls {
		nullIdx[n] = idx
	}

	// Candidate constants: adom(I), plus adom(J) when target constraints
	// may force J-values onto nulls (see the completeness argument in
	// the ExistsSolutionGeneric doc comment).
	domSet := make(map[rel.Value]bool)
	for v := range i.ActiveDomain() {
		if v.IsConst() {
			domSet[v] = true
		}
	}
	if len(s.T) > 0 {
		for v := range j.ActiveDomain() {
			if v.IsConst() {
				domSet[v] = true
			}
		}
	}
	for v := range domSet {
		sv.domain = append(sv.domain, v)
	}
	sort.Slice(sv.domain, func(a, b int) bool { return sv.domain[a].Less(sv.domain[b]) })

	sv.facts = jcan.Facts()
	sv.factNulls = make([][]int, len(sv.facts))
	sv.readyAt = make([][]int, len(sv.nulls)+1)
	for fi, f := range sv.facts {
		maxIdx := -1
		seen := map[int]bool{}
		for _, v := range f.Args {
			if v.IsNull() {
				k := nullIdx[v]
				if !seen[k] {
					seen[k] = true
					sv.factNulls[fi] = append(sv.factNulls[fi], k)
				}
				if k > maxIdx {
					maxIdx = k
				}
			}
		}
		sv.readyAt[maxIdx+1] = append(sv.readyAt[maxIdx+1], fi)
	}

	sv.stats.NullCount = len(sv.nulls)
	sv.stats.DomainSize = len(sv.domain) + 1
	return sv
}

func (sv *imageSearch) run(fn func(*rel.Instance) bool) error {
	// Ground facts with no nulls (ready at level 0).
	if ok, _ := sv.groundLevel(0); !ok {
		return nil // ground facts alone violate Σts: no image can fix it
	}
	_, err := sv.dfs(0, fn)
	return err
}

// dfs assigns the null at index k and recurses. Facts become grounded at
// the level of their last-assigned null; each newly grounded batch is
// checked incrementally against Σts unless pruning is disabled.
//
// The return value drives conflict-directed backjumping. When the
// subtree rooted at k fails exhaustively, dfs returns the largest null
// index j < k whose assignment participated in some violated trigger
// (-1 when every conflict involved only null k and the fixed instances);
// callers above level j may then skip their remaining candidates,
// because no choice for nulls in (j, k) can remove the conflicts. When
// the subtree found a solution — or failed in a way that carries no
// conflict information, such as a leaf-level Σt check — dfs returns
// noConflict and no skipping happens. The backjump is sound for full
// enumeration too: a conflict confined to nulls <= j persists under any
// values of the skipped nulls, so the skipped subtrees are empty.
func (sv *imageSearch) dfs(k int, fn func(*rel.Instance) bool) (int, error) {
	if sv.stopped {
		return noConflict, nil
	}
	if err := canceled(sv.opts.Ctx, "generic solver"); err != nil {
		return noConflict, fmt.Errorf("%w (after %d nodes)", err, sv.stats.Nodes)
	}
	if sv.opts.MaxNodes > 0 && sv.stats.Nodes >= sv.opts.MaxNodes {
		return noConflict, fmt.Errorf("%w (after %d nodes)", ErrSearchBudget, sv.stats.Nodes)
	}
	sv.stats.Nodes++

	if k == len(sv.nulls) {
		return noConflict, sv.leaf(fn)
	}
	n := sv.nulls[k]
	best := -1
	sawNoConflict := false
	// Candidates: every adom constant, then keep-as-fresh.
	for ci := 0; ci <= len(sv.domain); ci++ {
		var v rel.Value
		if ci < len(sv.domain) {
			v = sv.domain[ci]
		} else {
			v = n // keep as fresh
		}
		sv.assignment[n] = v
		conf := noConflict
		local := false
		var err error
		if ok, resp := sv.groundLevel(k + 1); !ok {
			// Local violation: the trigger involved the fact(s) grounded
			// by this assignment, so null k is responsible together with
			// the earlier nulls of the trigger.
			local = true
			conf = maxBelow(resp, k)
		} else {
			conf, err = sv.dfs(k+1, fn)
		}
		sv.ungroundLevel(k + 1)
		delete(sv.assignment, n)
		if err != nil {
			return noConflict, err
		}
		if sv.stopped {
			return noConflict, nil
		}
		switch {
		case conf == noConflict:
			sawNoConflict = true
		case local || conf == k:
			// This candidate failed for a reason involving null k
			// (directly, or a child exhausted with conflicts reaching
			// our null): other candidates may still succeed. Track the
			// deepest earlier null implicated.
			bound := conf
			if !local {
				// Child reported k; which earlier nulls participated is
				// unknown, so assume all of them.
				bound = k - 1
			}
			if bound > best {
				best = bound
			}
		default:
			// conf < k from a child: the deeper exhaustion never
			// involved null k, so it repeats for every remaining
			// candidate — skip them (unless earlier candidates already
			// produced solutions, in which case keep enumerating).
			if conf > best {
				best = conf
			}
			if !sawNoConflict {
				return best, nil
			}
			if k-1 > best {
				best = k - 1 // mixed outcome: no skipping above
			}
		}
	}
	if sawNoConflict {
		return noConflict, nil
	}
	return best, nil
}

func maxBelow(resp []int, k int) int {
	best := -1
	for _, r := range resp {
		if r < k && r > best {
			best = r
		}
	}
	return best
}

// groundLevel grounds the facts that become fully assigned at level k,
// adds them to cur/curSrc, and — unless Naive — checks each new fact's
// Σts triggers. On a violation it returns false together with the
// responsible null indexes of the violated trigger. Grounded facts are
// tracked per level for LIFO undo.
func (sv *imageSearch) groundLevel(k int) (bool, []int) {
	added := sv.levelAdds(k)
	*added = (*added)[:0]
	okAll := true
	var resp []int
	for _, fi := range sv.readyAt[k] {
		f := sv.facts[fi]
		t := f.Args.Clone()
		for ai, v := range t {
			if v.IsNull() {
				t[ai] = sv.assignment[v]
			}
		}
		gf := rel.Fact{Rel: f.Rel, Args: t}
		if sv.cur.AddFact(gf) {
			sv.curSrc.AddFact(gf)
			*added = append(*added, gf)
			key := gf.String()
			if _, dup := sv.factResp[key]; !dup {
				sv.factResp[key] = sv.factNulls[fi]
			}
			if okAll && !sv.opts.Naive {
				if viol := sv.newFactViolation(gf); viol != nil {
					okAll = false
					resp = viol
					// keep grounding the rest so undo stays uniform
				}
			}
		}
	}
	return okAll, resp
}

func (sv *imageSearch) ungroundLevel(k int) {
	added := sv.levelAdds(k)
	for idx := len(*added) - 1; idx >= 0; idx-- {
		f := (*added)[idx]
		sv.cur.RemoveLastTuple(f.Rel)
		sv.curSrc.RemoveLastTuple(f.Rel)
		delete(sv.factResp, f.String())
	}
	*added = (*added)[:0]
}

// levelAdds returns the per-level list of facts added, growing the
// backing store on demand.
func (sv *imageSearch) levelAdds(k int) *[]rel.Fact {
	for len(sv.levelAdded) <= k {
		sv.levelAdded = append(sv.levelAdded, nil)
	}
	return &sv.levelAdded[k]
}

// newFactViolation checks every Σts trigger that uses the new fact: the
// body homomorphisms of each target-to-source dependency in which some
// body atom is mapped exactly onto gf. A violated trigger can never be
// repaired later (facts are only added and values never change when Σt
// has no egds), so it prunes the subtree; the responsible null indexes
// of the trigger's facts are returned for conflict-directed
// backjumping. With egds in Σt, only triggers whose values are all
// constants are pruned on (egd chasing could later merge a kept null
// into a constant). Returns nil when every trigger is satisfied.
func (sv *imageSearch) newFactViolation(gf rel.Fact) []int {
	pruneOnNulls := len(dep.EGDs(sv.s.T)) == 0
	total := len(sv.s.TS) + len(sv.s.TSDisj)
	// check runs the violation scan of the di-th dependency (Σts tgds
	// first, then the disjunctive ones). It only reads search state, so
	// the scans for different dependencies can run concurrently.
	check := func(di int) []int {
		if di < len(sv.s.TS) {
			d := sv.s.TS[di]
			return sv.violatedTriggerThroughFact(d.Body, func(b hom.Binding) bool {
				return sv.tsTriggerSatisfied(d, b)
			}, gf, pruneOnNulls)
		}
		d := sv.s.TSDisj[di-len(sv.s.TS)]
		return sv.violatedTriggerThroughFact(d.Body, func(b hom.Binding) bool {
			for _, disj := range d.Disjuncts {
				if hom.Exists(disj, sv.i, b, sv.opts.Hom) {
					return true
				}
			}
			return false
		}, gf, pruneOnNulls)
	}
	if degree := par.Degree(sv.opts.Hom.Parallelism); degree > 1 && total > 1 {
		// Fan out per dependency; FirstReject returns the minimal
		// violated index, so the responsibility set returned is the one
		// the serial scan would find — backjumping stays deterministic.
		resps := make([][]int, total)
		idx := par.FirstReject(total, degree, func(di int) bool {
			resps[di] = check(di)
			return resps[di] == nil
		})
		if idx >= 0 {
			return resps[idx]
		}
		return nil
	}
	for di := 0; di < total; di++ {
		if resp := check(di); resp != nil {
			return resp
		}
	}
	return nil
}

// violatedTriggerThroughFact enumerates body homomorphisms into cur that
// map at least one designated atom onto gf; on the first trigger that
// satisfied rejects, it returns the responsible null indexes of the
// trigger's facts (never nil — a violation with no responsible nulls
// yields an empty, non-nil slice).
func (sv *imageSearch) violatedTriggerThroughFact(body []dep.Atom, satisfied func(hom.Binding) bool, gf rel.Fact, pruneOnNulls bool) []int {
	for ai, a := range body {
		if a.Rel != gf.Rel {
			continue
		}
		init := unifyAtomWithFact(a, gf)
		if init == nil {
			continue
		}
		rest := make([]dep.Atom, 0, len(body)-1)
		rest = append(rest, body[:ai]...)
		rest = append(rest, body[ai+1:]...)
		var resp []int
		hom.ForEach(rest, sv.cur, init, sv.opts.Hom, func(b hom.Binding) bool {
			if !pruneOnNulls {
				for _, v := range b {
					if v.IsNull() {
						return true // cannot prune: Σt may merge this null later
					}
				}
			}
			if !satisfied(b) {
				resp = sv.triggerResponsibility(body, b)
				return false
			}
			return true
		})
		if resp != nil {
			return resp
		}
	}
	return nil
}

// triggerResponsibility collects the null indexes responsible for the
// presence of the trigger's facts, by grounding each body atom under the
// binding and looking up the producer fact's null set.
func (sv *imageSearch) triggerResponsibility(body []dep.Atom, b hom.Binding) []int {
	seen := make(map[int]bool)
	resp := []int{}
	for _, a := range body {
		t := make(rel.Tuple, len(a.Args))
		for idx, term := range a.Args {
			if term.IsConst {
				t[idx] = rel.Const(term.Name)
			} else {
				t[idx] = b[term.Name]
			}
		}
		key := rel.Fact{Rel: a.Rel, Args: t}.String()
		for _, nullIdx := range sv.factResp[key] {
			if !seen[nullIdx] {
				seen[nullIdx] = true
				resp = append(resp, nullIdx)
			}
		}
	}
	return resp
}

// unifyAtomWithFact matches an atom against a ground fact, returning the
// induced binding or nil when they do not unify (constant mismatch or a
// repeated variable bound to two different values).
func unifyAtomWithFact(a dep.Atom, f rel.Fact) hom.Binding {
	if a.Rel != f.Rel || len(a.Args) != len(f.Args) {
		return nil
	}
	b := make(hom.Binding)
	for idx, term := range a.Args {
		v := f.Args[idx]
		if term.IsConst {
			if !v.IsConst() || v.ConstText() != term.Name {
				return nil
			}
			continue
		}
		if prev, ok := b[term.Name]; ok {
			if prev != v {
				return nil
			}
			continue
		}
		b[term.Name] = v
	}
	return b
}

// tsTriggerSatisfied checks I ⊨ ∃w β(c, w) for the trigger binding.
func (sv *imageSearch) tsTriggerSatisfied(d dep.TGD, b hom.Binding) bool {
	uvars := d.UniversalVars()
	init := make(hom.Binding, len(uvars))
	for _, v := range uvars {
		init[v] = b[v]
	}
	return hom.Exists(d.Head, sv.i, init, sv.opts.Hom)
}

// leaf handles a fully assigned image: with Σt = ∅ the incremental
// checks already guarantee a solution (or, in Naive mode, a full check
// runs here); with Σt nonempty the image is chased with Σt and all
// constraints are re-verified on the result.
func (sv *imageSearch) leaf(fn func(*rel.Instance) bool) error {
	candidate := sv.cur.Clone()
	if len(sv.s.T) > 0 {
		res, err := chase.Run(candidate, sv.s.T, sv.copts)
		if err != nil {
			return fmt.Errorf("core: chasing Σt at leaf: %w", err)
		}
		if res.Failed {
			return nil
		}
		candidate = res.Instance
		if !sv.s.IsSolution(sv.i, sv.j, candidate) {
			return nil
		}
	} else if sv.opts.Naive {
		if !sv.s.IsSolution(sv.i, sv.j, candidate) {
			return nil
		}
	}
	sv.stats.Solutions++
	if !fn(candidate) {
		sv.stopped = true
	}
	return nil
}
