package core

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/rel"
)

// SmallSolution implements the constructive content of Lemma 2: given
// any solution jsol for (I, J), it extracts a solution J* contained in
// jsol whose size is bounded by a polynomial in the size of (I, J).
//
// J* is the target part of the solution-aware chase of (I, J) with
// Σst ∪ Σt, witnessed by (I, jsol): existential variables are witnessed
// by values of jsol instead of fresh nulls, so the result stays inside
// jsol, and Lemma 1 bounds the number of chase steps polynomially. The
// result satisfies Σst and Σt by chase termination, contains J, and
// inherits Σts from jsol because target-to-source dependencies are
// preserved under subsets of the target instance.
func SmallSolution(s *Setting, i, j, jsol *rel.Instance, opts SolveOptions) (*rel.Instance, error) {
	if len(s.TSDisj) > 0 {
		return nil, fmt.Errorf("core: SmallSolution does not support disjunctive Σts")
	}
	deps := s.StDeps()
	deps = append(deps, s.T...)
	witness := rel.Union(i, jsol)
	copts := chase.Options{Hom: opts.Hom, MaxSteps: opts.MaxChaseSteps, NaiveTriggers: opts.NaiveChase}
	res, err := chase.RunSolutionAware(rel.Union(i, j), deps, witness, copts)
	if err != nil {
		return nil, fmt.Errorf("core: solution-aware chase: %w", err)
	}
	if res.Failed {
		return nil, fmt.Errorf("core: solution-aware chase failed on %s; jsol is not a solution", res.FailedOn)
	}
	small := res.Instance.Restrict(s.Target)
	if !s.IsSolution(i, j, small) {
		return nil, fmt.Errorf("core: extracted instance is not a solution; jsol was not a solution for (I, J)")
	}
	return small, nil
}

// MinimizeSolution greedily removes facts from jsol (never the facts of
// j) while the result remains a solution for (I, J), until no single
// fact can be removed. The result is a subset-minimal solution between
// j and jsol; it is generally not of minimum cardinality (finding that
// is NP-hard), but it is what the small-solution experiments measure.
//
// The greedy fixpoint polls opts.Ctx between rounds: a canceled run
// returns the solution minimized so far, which need not be
// subset-minimal — callers that set Ctx MUST check Ctx.Err()
// afterwards and discard the result when non-nil.
func MinimizeSolution(s *Setting, i, j, jsol *rel.Instance, opts SolveOptions) *rel.Instance {
	cur := jsol.Clone()
	for {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return cur
		}
		removed := false
		for _, f := range cur.Facts() {
			if j.Contains(f) {
				continue
			}
			cand := rel.NewInstance()
			for _, g := range cur.Facts() {
				if g.Rel == f.Rel && g.Args.String() == f.Args.String() {
					continue
				}
				cand.AddFact(g)
			}
			if s.IsSolution(i, j, cand) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}
