package core

// Precomputed chase state for the generic solver, mirroring what
// TractableTrace is for the Figure 3 algorithm: everything the image
// search needs that depends only on (setting, I, J), not on the
// individual solve. pdxd caches these so repeat solves over the same
// (setting, instance) pair skip the chase phases entirely, and resumes
// them after instance appends.

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/rel"
)

// CanonicalTarget holds the chased canonical target of (I, J): the Σst
// chase result, the (optionally Σt-chased) J_can the image search runs
// over, and the null-naming state after all chases. Instances are
// frozen; a CanonicalTarget may be shared by concurrent solves.
type CanonicalTarget struct {
	// STResult is the Σst chase of I ∪ J, retained for chase.Resume
	// after an instance append.
	STResult *chase.Result
	// TResult is the Σt chase of J_can (nil when Σt is empty).
	TResult *chase.Result
	// TFailed reports a failing Σt chase: no solution exists for any
	// image, so solves short-circuit to an empty search.
	TFailed bool
	// JCan is the instance the image search assigns nulls over: the
	// target restriction of STResult, further chased with Σt when
	// present. nil when TFailed.
	JCan *rel.Instance
	// NullState is the null source's high-water mark after the chases;
	// per-solve leaf chases continue from it so resumed solves draw
	// exactly the labels a from-scratch run would.
	NullState int
}

// ChaseCanonicalTarget runs the chase phases of the generic solver for
// (s, i, j) and packages them for repeated ForEachImageSolutionFrom
// calls. It performs the same Σt class check as the solver.
func ChaseCanonicalTarget(s *Setting, i, j *rel.Instance, opts SolveOptions) (*CanonicalTarget, error) {
	if len(s.T) > 0 && !s.TargetTGDsWeaklyAcyclic() {
		return nil, ErrUnsupportedTargetTGDs
	}
	opts.Hom = opts.homOpts()
	nulls := &rel.NullSource{}
	nulls.SeenIn(i)
	nulls.SeenIn(j)
	copts := chase.Options{Nulls: nulls, Hom: opts.Hom, MaxSteps: opts.MaxChaseSteps, NaiveTriggers: opts.NaiveChase, Ctx: opts.Ctx}
	res, err := chase.Run(rel.Union(i, j), s.StDeps(), copts)
	if err != nil {
		return nil, fmt.Errorf("core: chasing Σst: %w", err)
	}
	ct := &CanonicalTarget{STResult: res}
	jcan := res.Instance.Restrict(s.Target)

	if len(s.T) > 0 {
		// Pre-chase J_can with Σt. The chase result is universal for the
		// solutions of (I, J) under Σst ∪ Σt (Lemmas 3 and 4 of the
		// paper / Lemma 3.4 of Fagin et al.), so running the image
		// search over its nulls preserves completeness while egd merges
		// shrink the search space and full-tgd consequences become
		// incrementally checkable facts. A failing chase proves that no
		// solution exists at all.
		tres, err := chase.Run(jcan, s.T, copts)
		if err != nil {
			return nil, fmt.Errorf("core: chasing Σt: %w", err)
		}
		ct.TResult = tres
		if tres.Failed {
			ct.TFailed = true
			ct.NullState = nulls.State()
			return ct, nil
		}
		jcan = tres.Instance
	}
	jcan.Freeze()
	ct.JCan = jcan
	ct.NullState = nulls.State()
	return ct, nil
}

// ForEachImageSolutionFrom is ForEachImageSolution over a precomputed
// canonical target: it runs only the image search, starting the
// per-solve null source from ct.NullState so leaf Σt chases never
// collide with the cached J_can's nulls. ct is not mutated.
func ForEachImageSolutionFrom(s *Setting, i, j *rel.Instance, ct *CanonicalTarget, opts SolveOptions, fn func(*rel.Instance) bool) (*SolveStats, error) {
	opts.Hom = opts.homOpts()
	nulls := &rel.NullSource{}
	nulls.SetState(ct.NullState)
	copts := chase.Options{Nulls: nulls, Hom: opts.Hom, MaxSteps: opts.MaxChaseSteps, NaiveTriggers: opts.NaiveChase, Ctx: opts.Ctx}
	if ct.TFailed {
		sv := newImageSearch(s, i, j, rel.NewInstance(), opts, copts)
		sv.stats.Nodes = 0
		return &sv.stats, nil
	}
	sv := newImageSearch(s, i, j, ct.JCan, opts, copts)
	err := sv.run(fn)
	return &sv.stats, err
}

// ExistsSolutionGenericFrom is ExistsSolutionGeneric over a precomputed
// canonical target (see ChaseCanonicalTarget).
func ExistsSolutionGenericFrom(s *Setting, i, j *rel.Instance, ct *CanonicalTarget, opts SolveOptions) (bool, *rel.Instance, *SolveStats, error) {
	var witness *rel.Instance
	stats, err := ForEachImageSolutionFrom(s, i, j, ct, opts, func(sol *rel.Instance) bool {
		witness = sol
		return false // stop at the first solution
	})
	if err != nil {
		return false, nil, stats, err
	}
	return witness != nil, witness, stats, nil
}
