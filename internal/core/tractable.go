package core

import (
	"context"
	"fmt"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// TractableTrace records the intermediate artifacts of the
// ExistsSolution algorithm of Figure 3, for inspection, testing, and the
// block-size experiment of Theorem 6.
type TractableTrace struct {
	// JCan is the canonical target instance: the target part of the
	// chase of (I, J) with Σst.
	JCan *rel.Instance
	// ICan is the canonical source instance: the source part of the
	// chase of (JCan, ∅) with Σts.
	ICan *rel.Instance
	// Blocks is the number of blocks of ICan.
	Blocks int
	// MaxBlockNulls is the largest number of nulls in any block of ICan;
	// Theorem 6 bounds it by a constant for settings in C_tract.
	MaxBlockNulls int
	// FailedBlock is the index of the first block with no homomorphism
	// into I, or -1 if all blocks mapped.
	FailedBlock int
	// StepsST and StepsTS count the chase steps of the two phases.
	StepsST, StepsTS int
	// BlockList is the block decomposition of ICan, computed eagerly by
	// ChaseCanonicalTractable so cached traces skip it on the warm
	// path. The blocks reference ICan's frozen tuples and are read-only.
	BlockList []hom.Block
	// STResult and TSResult are the full chase results of the two
	// phases, retained so a cached trace can be resumed after an
	// instance append (chase.Resume).
	STResult, TSResult *chase.Result
	// NullState is the null source's high-water mark after both chase
	// phases; resumed chases continue from it so appended runs never
	// collide with the trace's existing nulls.
	NullState int
}

// TractableOptions configures ExistsSolutionTractable.
type TractableOptions struct {
	// Hom configures homomorphism search (NoIndex enables the ablation).
	Hom hom.Options
	// WholeInstanceHom skips the block decomposition and searches one
	// homomorphism from the whole ICan into I. Semantically equivalent
	// (Proposition 1) but exponentially slower in general; exists for
	// the ablation benchmark.
	WholeInstanceHom bool
	// SkipCondition1Check runs the algorithm even when condition 1 of
	// C_tract fails. The answer may then be incorrect (Theorem 5 needs
	// condition 1); used only by tests demonstrating exactly that.
	SkipCondition1Check bool
	// MaxChaseSteps bounds each chase phase; 0 means the chase default.
	MaxChaseSteps int
	// NaiveChase disables the semi-naive (delta-driven) trigger
	// collection in both chase phases, re-enumerating every trigger
	// against the whole instance each round. Results are byte-identical
	// either way; exists for the ablation benchmarks and parity gates.
	NaiveChase bool
	// Parallelism bounds the workers of the parallel phases (chase
	// trigger search, per-block homomorphism checks): 0 means GOMAXPROCS,
	// 1 forces the serial paths. The verdict and the whole trace are
	// byte-identical at every setting. When nonzero it overrides
	// Hom.Parallelism.
	Parallelism int
	// Seed perturbs parallel work distribution (never results); when
	// nonzero it overrides Hom.Seed.
	Seed int64
	// Ctx, when non-nil, cancels the run: both chase phases check it at
	// every step and the block-homomorphism checks poll it, so
	// per-request deadlines stop work promptly with an error wrapping
	// ErrCanceled. nil means never canceled.
	Ctx context.Context
}

// homOpts folds the option-level parallelism knobs into the hom options
// handed to the searches.
func (o TractableOptions) homOpts() hom.Options {
	h := o.Hom
	if o.Parallelism != 0 {
		h.Parallelism = o.Parallelism
	}
	if o.Seed != 0 {
		h.Seed = o.Seed
	}
	if h.Ctx == nil {
		h.Ctx = o.Ctx
	}
	return h
}

// ExistsSolutionTractable implements the algorithm of Figure 3 of the
// paper: chase (I, J) with Σst to obtain J_can, chase (J_can, ∅) with
// Σts to obtain I_can, and accept iff every block of I_can has a
// homomorphism into I.
//
// Correctness requires condition 1 of C_tract (Theorem 5) and Σt = ∅;
// polynomial running time additionally requires condition 2 (Theorems 4
// and 6). The function refuses settings with target constraints or
// disjunctive target-to-source dependencies, and — unless
// SkipCondition1Check is set — settings violating condition 1.
func ExistsSolutionTractable(s *Setting, i, j *rel.Instance, opts TractableOptions) (bool, *TractableTrace, error) {
	if len(s.T) > 0 {
		return false, nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s has target constraints", s.Name)
	}
	if len(s.TSDisj) > 0 {
		return false, nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s has disjunctive Σts", s.Name)
	}
	if !opts.SkipCondition1Check {
		if rep := dep.ClassifyCtract(s.ST, s.TS, nil); !rep.Cond1 {
			return false, nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s violates condition 1 of C_tract; the algorithm would be unsound: %s", s.Name, rep.Summary())
		}
	}

	trace, err := canonicalInstances(s, i, j, opts)
	if err != nil {
		return false, nil, err
	}
	return ExistsSolutionTractableFrom(i, trace, opts)
}

// ChaseCanonicalTractable runs the two chase phases of Figure 3 and the
// block decomposition of I_can, returning a trace ready for repeated
// ExistsSolutionTractableFrom calls against different (or identical)
// source instances. It performs the same setting checks as
// ExistsSolutionTractable. The trace's instances are frozen and its
// block list is read-only, so the trace may be shared concurrently.
func ChaseCanonicalTractable(s *Setting, i, j *rel.Instance, opts TractableOptions) (*TractableTrace, error) {
	if len(s.T) > 0 {
		return nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s has target constraints", s.Name)
	}
	if len(s.TSDisj) > 0 {
		return nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s has disjunctive Σts", s.Name)
	}
	if !opts.SkipCondition1Check {
		if rep := dep.ClassifyCtract(s.ST, s.TS, nil); !rep.Cond1 {
			return nil, fmt.Errorf("core: ExistsSolutionTractable: setting %s violates condition 1 of C_tract; the algorithm would be unsound: %s", s.Name, rep.Summary())
		}
	}
	return canonicalInstances(s, i, j, opts)
}

// ExistsSolutionTractableFrom runs the verdict phase of the Figure 3
// algorithm against a precomputed trace: the per-block homomorphism
// checks of I_can into i. The input trace is not mutated — the returned
// trace is a copy with the per-run fields (FailedBlock) filled in — so
// a cached trace may serve concurrent solves.
func ExistsSolutionTractableFrom(i *rel.Instance, trace *TractableTrace, opts TractableOptions) (bool, *TractableTrace, error) {
	t := *trace
	trace = &t
	trace.FailedBlock = -1
	h := opts.homOpts()

	if opts.WholeInstanceHom {
		ok := hom.Exists(hom.InstanceAtoms(trace.ICan), i, nil, h)
		if err := canceled(opts.Ctx, "tractable algorithm"); err != nil {
			return false, trace, err // the aborted search's verdict is meaningless
		}
		if !ok {
			trace.FailedBlock = 0
		}
		return ok, trace, nil
	}

	// The per-block checks fan out across workers with early cancellation
	// and a memoizing cache keyed on the canonical block signature; the
	// reported index is the minimal failing one, exactly as the serial
	// left-to-right scan returns (see hom.CheckBlocks).
	idx := hom.CheckBlocks(trace.BlockList, i, h)
	if err := canceled(opts.Ctx, "tractable algorithm"); err != nil {
		return false, trace, err // a canceled CheckBlocks index is meaningless
	}
	if idx >= 0 {
		trace.FailedBlock = idx
		return false, trace, nil
	}
	return true, trace, nil
}

// canonicalInstances runs the two chase phases of Figure 3 and fills in
// JCan, ICan, and the step counts.
func canonicalInstances(s *Setting, i, j *rel.Instance, opts TractableOptions) (*TractableTrace, error) {
	nulls := &rel.NullSource{}
	nulls.SeenIn(i)
	nulls.SeenIn(j)
	copts := chase.Options{
		Nulls:         nulls,
		Hom:           opts.Hom,
		MaxSteps:      opts.MaxChaseSteps,
		NaiveTriggers: opts.NaiveChase,
		Parallelism:   opts.Parallelism,
		Seed:          opts.Seed,
		Ctx:           opts.Ctx,
	}

	// Phase 1: (I, J_can) := chase of (I, J) with Σst.
	res1, err := chase.Run(rel.Union(i, j), s.StDeps(), copts)
	if err != nil {
		return nil, fmt.Errorf("core: chasing Σst: %w", err)
	}
	jcan := res1.Instance.Restrict(s.Target)

	// Phase 2: (J_can, I_can) := chase of (J_can, ∅) with Σts.
	res2, err := chase.Run(jcan, s.TsDeps(), copts)
	if err != nil {
		return nil, fmt.Errorf("core: chasing Σts: %w", err)
	}
	ican := res2.Instance.Restrict(s.Source)

	// Freeze-after-build: both canonical instances are now shared with
	// concurrent block-check workers and must never be mutated again.
	jcan.Freeze()
	ican.Freeze()

	trace := &TractableTrace{
		JCan:      jcan,
		ICan:      ican,
		StepsST:   res1.Steps,
		StepsTS:   res2.Steps,
		STResult:  res1,
		TSResult:  res2,
		NullState: nulls.State(),
	}
	trace.FillBlocks()
	return trace, nil
}

// FillBlocks computes the block decomposition of ICan and the derived
// statistics. It runs eagerly so the decomposition is part of the
// cacheable chase work, not the per-solve verdict phase; snapshot
// decoding calls it to rebuild the derived fields a stored trace omits.
func (t *TractableTrace) FillBlocks() {
	t.BlockList = hom.Blocks(t.ICan)
	t.Blocks = len(t.BlockList)
	t.MaxBlockNulls = 0
	for _, b := range t.BlockList {
		if len(b.Nulls) > t.MaxBlockNulls {
			t.MaxBlockNulls = len(b.Nulls)
		}
	}
}

// FindSolutionTractable runs the Figure 3 algorithm and, on acceptance,
// constructs the witness solution J_img of the Theorem 5 proof: it finds
// a homomorphism h from I_can to I, extends it to h_J (identity outside
// Dom(I_can)), and returns h_J(J_can).
func FindSolutionTractable(s *Setting, i, j *rel.Instance, opts TractableOptions) (*rel.Instance, *TractableTrace, error) {
	trace, err := ChaseCanonicalTractable(s, i, j, opts)
	if err != nil {
		return nil, nil, err
	}
	return FindSolutionTractableFrom(i, trace, opts)
}

// FindSolutionTractableFrom is FindSolutionTractable over a precomputed
// trace (see ChaseCanonicalTractable). The input trace is not mutated.
func FindSolutionTractableFrom(i *rel.Instance, trace *TractableTrace, opts TractableOptions) (*rel.Instance, *TractableTrace, error) {
	ok, trace, err := ExistsSolutionTractableFrom(i, trace, opts)
	if err != nil {
		return nil, trace, err
	}
	if !ok {
		return nil, trace, nil
	}
	h, found := hom.FindInstanceHom(trace.ICan, i, opts.homOpts())
	if err := canceled(opts.Ctx, "tractable algorithm"); err != nil {
		return nil, trace, err
	}
	if !found {
		// Cannot happen: ExistsSolutionTractable accepted.
		return nil, trace, fmt.Errorf("core: internal inconsistency: accepted but no homomorphism from I_can to I")
	}
	// h_J: apply h on the shared nulls, identity elsewhere. MapValues
	// ignores values absent from the map, which is exactly the identity
	// default.
	jimg := trace.JCan.MapValues(h)
	return jimg, trace, nil
}
