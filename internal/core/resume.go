package core

// Resuming cached chase state after an instance append. Both helpers
// wrap chase.Resume phase by phase: the Σst chase continues with the
// appended facts as its delta, and the downstream phase (Σts or Σt) is
// handed the re-restricted canonical target wholesale — AddTuple
// dedups, so only the genuinely new facts land past the seeded
// watermark. Null labels continue from the stored NullState, so a
// resumed artifact never collides with the labels it already contains.
// The returned bool reports whether every phase took the incremental
// path; a false still returns a correct artifact (the fallback phases
// re-chased from their true starts), and the returned reason string —
// one of the chase.Fallback* constants — names the first blocking
// condition, for the server's cache metrics.

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/rel"
)

// ResumeCanonicalTractable continues a ChaseCanonicalTractable trace
// after appending facts to the source/target instances it was chased
// from. The input trace is not mutated; the returned trace is a fresh
// artifact ready for ExistsSolutionTractableFrom. Both phases are pure
// tgds for any setting the tractable algorithm accepts, so the
// incremental path always applies and the bool is true (reason "")
// unless a previous result was unexpectedly non-resumable.
func ResumeCanonicalTractable(s *Setting, trace *TractableTrace, appended *rel.Instance, opts TractableOptions) (*TractableTrace, bool, string, error) {
	if trace == nil || trace.STResult == nil || trace.TSResult == nil {
		return nil, false, chase.FallbackNoPrev, fmt.Errorf("core: cannot resume a tractable trace without its chase results")
	}
	ns := &rel.NullSource{}
	ns.SetState(trace.NullState)
	copts := chase.Options{
		Nulls:         ns,
		Hom:           opts.Hom,
		MaxSteps:      opts.MaxChaseSteps,
		NaiveTriggers: opts.NaiveChase,
		Parallelism:   opts.Parallelism,
		Seed:          opts.Seed,
		Ctx:           opts.Ctx,
	}

	res1, r1, err := chase.Resume(trace.STResult, s.StDeps(), appended, copts)
	if err != nil {
		return nil, false, chase.FallbackNone, fmt.Errorf("core: resuming Σst: %w", err)
	}
	reason := chase.FallbackNone
	if !r1 {
		reason = chase.FallbackReason(trace.STResult, s.StDeps(), copts)
	}
	jcan := res1.Instance.Restrict(s.Target)

	// Phase 2's "appended" facts are the whole new J_can: its start was
	// the old J_can, a subset, and the dedup on insert makes exactly the
	// new target facts the delta.
	res2, r2, err := chase.Resume(trace.TSResult, s.TsDeps(), jcan, copts)
	if err != nil {
		return nil, false, chase.FallbackNone, fmt.Errorf("core: resuming Σts: %w", err)
	}
	if !r2 && reason == chase.FallbackNone {
		reason = chase.FallbackReason(trace.TSResult, s.TsDeps(), copts)
	}
	ican := res2.Instance.Restrict(s.Source)

	jcan.Freeze()
	ican.Freeze()
	next := &TractableTrace{
		JCan:      jcan,
		ICan:      ican,
		StepsST:   res1.Steps,
		StepsTS:   res2.Steps,
		STResult:  res1,
		TSResult:  res2,
		NullState: ns.State(),
	}
	next.FillBlocks()
	return next, r1 && r2, reason, nil
}

// ResumeCanonicalTarget continues a ChaseCanonicalTarget after
// appending facts. Σst is always pure tgds and resumes incrementally;
// the Σt phase resumes when its egds are all key-shaped and the
// previous run retained its merge state (see chase.Resumable) —
// otherwise chase.Resume transparently re-chases the new J_can from
// scratch, which also revalidates a previously failing Σt chase. The
// input is not mutated. The reason string names the first blocking
// condition when the bool is false.
func ResumeCanonicalTarget(s *Setting, ct *CanonicalTarget, appended *rel.Instance, opts SolveOptions) (*CanonicalTarget, bool, string, error) {
	if ct == nil || ct.STResult == nil {
		return nil, false, chase.FallbackNoPrev, fmt.Errorf("core: cannot resume a canonical target without its chase results")
	}
	opts.Hom = opts.homOpts()
	ns := &rel.NullSource{}
	ns.SetState(ct.NullState)
	copts := chase.Options{Nulls: ns, Hom: opts.Hom, MaxSteps: opts.MaxChaseSteps, NaiveTriggers: opts.NaiveChase, Ctx: opts.Ctx}

	res, r1, err := chase.Resume(ct.STResult, s.StDeps(), appended, copts)
	if err != nil {
		return nil, false, chase.FallbackNone, fmt.Errorf("core: resuming Σst: %w", err)
	}
	reason := chase.FallbackNone
	if !r1 {
		reason = chase.FallbackReason(ct.STResult, s.StDeps(), copts)
	}
	next := &CanonicalTarget{STResult: res}
	jcan := res.Instance.Restrict(s.Target)
	resumed := r1

	if len(s.T) > 0 {
		tres, r2, err := chase.Resume(ct.TResult, s.T, jcan, copts)
		if err != nil {
			return nil, false, chase.FallbackNone, fmt.Errorf("core: resuming Σt: %w", err)
		}
		if !r2 && reason == chase.FallbackNone {
			reason = chase.FallbackReason(ct.TResult, s.T, copts)
		}
		resumed = resumed && r2
		next.TResult = tres
		if tres.Failed {
			next.TFailed = true
			next.NullState = ns.State()
			return next, resumed, reason, nil
		}
		jcan = tres.Instance
	}
	jcan.Freeze()
	next.JCan = jcan
	next.NullState = ns.State()
	return next, resumed, reason, nil
}
