package core_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// parallelWorkloads enumerates random instances of the three workload
// families with both solvable and unsolvable variants — at least 50
// workloads in total.
func parallelWorkloads(rng *rand.Rand) []struct {
	name string
	run  func(opts core.TractableOptions) (bool, *core.TractableTrace, error)
} {
	type wl = struct {
		name string
		run  func(opts core.TractableOptions) (bool, *core.TractableTrace, error)
	}
	var out []wl
	for trial := 0; trial < 18; trial++ {
		n := 10 + rng.Intn(60)
		good := trial%2 == 0
		seed := rng.Int63()
		{
			s := workload.LAVSetting()
			i, j := workload.LAVInstance(n, good, rand.New(rand.NewSource(seed)))
			i.Freeze()
			j.Freeze()
			out = append(out, wl{
				name: fmt.Sprintf("lav/n=%d/solvable=%v", n, good),
				run: func(opts core.TractableOptions) (bool, *core.TractableTrace, error) {
					return core.ExistsSolutionTractable(s, i, j, opts)
				},
			})
		}
		{
			s := workload.FullSTSetting()
			i, j := workload.FullSTInstance(n, good, rand.New(rand.NewSource(seed)))
			i.Freeze()
			j.Freeze()
			out = append(out, wl{
				name: fmt.Sprintf("fullst/n=%d/solvable=%v", n, good),
				run: func(opts core.TractableOptions) (bool, *core.TractableTrace, error) {
					return core.ExistsSolutionTractable(s, i, j, opts)
				},
			})
		}
		{
			s := workload.GenomicSetting()
			i, j := workload.GenomicInstance(n, good, rand.New(rand.NewSource(seed)))
			i.Freeze()
			j.Freeze()
			out = append(out, wl{
				name: fmt.Sprintf("genomic/n=%d/clean=%v", n, good),
				run: func(opts core.TractableOptions) (bool, *core.TractableTrace, error) {
					return core.ExistsSolutionTractable(s, i, j, opts)
				},
			})
		}
	}
	return out
}

// TestTractableParallelMatchesSerial: on 60 random workloads from the
// three families, the parallel Figure 3 algorithm returns the same
// verdict AND the same full trace (canonical instances, block counts,
// failing block index, step counts) as the serial run.
func TestTractableParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	wls := parallelWorkloads(rng)
	if len(wls) < 50 {
		t.Fatalf("only %d workloads generated, want >= 50", len(wls))
	}
	for _, wl := range wls {
		refOK, refTr, refErr := wl.run(core.TractableOptions{Parallelism: 1})
		for _, par := range []int{2, 4} {
			gotOK, gotTr, err := wl.run(core.TractableOptions{Parallelism: par, Seed: 5})
			if (refErr == nil) != (err == nil) {
				t.Fatalf("%s par=%d: err=%v, serial err=%v", wl.name, par, err, refErr)
			}
			if refErr != nil {
				continue
			}
			if gotOK != refOK {
				t.Fatalf("%s par=%d: verdict %v, serial %v", wl.name, par, gotOK, refOK)
			}
			if gotTr.Blocks != refTr.Blocks || gotTr.MaxBlockNulls != refTr.MaxBlockNulls ||
				gotTr.FailedBlock != refTr.FailedBlock ||
				gotTr.StepsST != refTr.StepsST || gotTr.StepsTS != refTr.StepsTS {
				t.Fatalf("%s par=%d: trace %+v, serial %+v", wl.name, par,
					struct{ B, M, F, S1, S2 int }{gotTr.Blocks, gotTr.MaxBlockNulls, gotTr.FailedBlock, gotTr.StepsST, gotTr.StepsTS},
					struct{ B, M, F, S1, S2 int }{refTr.Blocks, refTr.MaxBlockNulls, refTr.FailedBlock, refTr.StepsST, refTr.StepsTS})
			}
			if gotTr.JCan.String() != refTr.JCan.String() || gotTr.ICan.String() != refTr.ICan.String() {
				t.Fatalf("%s par=%d: canonical instances differ from serial run", wl.name, par)
			}
		}
	}
}

// TestGenericSolverParallelMatchesSerial: the generic solver's verdict
// and node count are identical under parallelism (the violation scan
// returns the minimal violated dependency, so backjumping follows the
// same path).
func TestGenericSolverParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(15)
		good := trial%2 == 0
		seed := rng.Int63()
		s := workload.GenomicSetting()
		i, j := workload.GenomicInstance(n, good, rand.New(rand.NewSource(seed)))
		refOK, _, refStats, refErr := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{Parallelism: 1})
		for _, par := range []int{2, 4} {
			gotOK, _, gotStats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{Parallelism: par})
			if (refErr == nil) != (err == nil) {
				t.Fatalf("trial %d par=%d: err=%v, serial err=%v", trial, par, err, refErr)
			}
			if refErr != nil {
				continue
			}
			if gotOK != refOK || gotStats.Nodes != refStats.Nodes || gotStats.Solutions != refStats.Solutions {
				t.Fatalf("trial %d par=%d: (ok=%v nodes=%d sols=%d), serial (ok=%v nodes=%d sols=%d)",
					trial, par, gotOK, gotStats.Nodes, gotStats.Solutions, refOK, refStats.Nodes, refStats.Solutions)
			}
		}
	}
}

// TestTractableConcurrentStress: N goroutines run the Figure 3
// algorithm concurrently over shared frozen settings and instances.
// Under -race this validates that the solver takes no hidden write
// locks on its inputs.
func TestTractableConcurrentStress(t *testing.T) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(97))
	i, j := workload.LAVInstance(120, true, rng)
	i.Freeze()
	j.Freeze()
	refOK, refTr, refErr := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{Parallelism: 1})
	if refErr != nil || !refOK {
		t.Fatalf("reference run failed: ok=%v err=%v", refOK, refErr)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	failures := make([]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ok, tr, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{Parallelism: 2, Seed: int64(g + 1)})
			switch {
			case err != nil:
				failures[g] = fmt.Sprintf("err=%v", err)
			case ok != refOK:
				failures[g] = fmt.Sprintf("verdict %v, want %v", ok, refOK)
			case tr.Blocks != refTr.Blocks || tr.StepsST != refTr.StepsST || tr.StepsTS != refTr.StepsTS:
				failures[g] = "trace diverged"
			}
		}(g)
	}
	wg.Wait()
	for g, f := range failures {
		if f != "" {
			t.Fatalf("goroutine %d: %s", g, f)
		}
	}
}
