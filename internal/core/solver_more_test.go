package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
	"repro/internal/workload"
)

// TestForEachImageSolutionStops: returning false from the callback ends
// the enumeration immediately.
func TestForEachImageSolutionStops(t *testing.T) {
	s := &core.Setting{
		Name:   "many",
		Source: rel.SchemaOf("A", 1, "B", 1),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		}},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	i.Add("B", rel.Const("c1"))
	i.Add("B", rel.Const("c2")) // enlarge the domain: many image solutions
	calls := 0
	stats, err := core.ForEachImageSolution(s, i, rel.NewInstance(), core.SolveOptions{}, func(*rel.Instance) bool {
		calls++
		return calls < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("callback ran %d times after requesting stop at 2", calls)
	}
	if stats.Solutions != 2 {
		t.Errorf("stats.Solutions = %d", stats.Solutions)
	}
}

// TestSolveStatsShape: the reported search dimensions match the
// instance.
func TestSolveStatsShape(t *testing.T) {
	s := workload.LAVSetting()
	rng := rand.New(rand.NewSource(51))
	i, j := workload.LAVInstance(12, true, rng)
	_, _, stats, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NullCount != 12 {
		t.Errorf("NullCount = %d, want 12 (one per person)", stats.NullCount)
	}
	// Domain: adom(I) constants plus keep-as-fresh.
	wantDomain := len(i.ActiveDomain()) + 1
	if stats.DomainSize != wantDomain {
		t.Errorf("DomainSize = %d, want %d", stats.DomainSize, wantDomain)
	}
	if stats.Nodes <= 0 || stats.Solutions != 1 {
		t.Errorf("Nodes=%d Solutions=%d", stats.Nodes, stats.Solutions)
	}
}

// TestGenericSolverGroundJcanShortcut: when J_can has no nulls the
// solver decides by direct constraint checks without search.
func TestGenericSolverGroundJcanShortcut(t *testing.T) {
	s := &core.Setting{
		Name:   "ground",
		Source: rel.SchemaOf("B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("y"), dep.Var("x"))},
		}},
	}
	// Symmetric pair: solvable.
	i := rel.NewInstance()
	i.Add("B", rel.Const("a"), rel.Const("b"))
	i.Add("B", rel.Const("b"), rel.Const("a"))
	got, _, stats, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{})
	if err != nil || !got {
		t.Fatalf("got=%v err=%v", got, err)
	}
	if stats.NullCount != 0 {
		t.Errorf("NullCount = %d, want 0", stats.NullCount)
	}
	// Asymmetric fact: the ground check fails before any search.
	i2 := rel.NewInstance()
	i2.Add("B", rel.Const("a"), rel.Const("b"))
	got, _, stats, err = core.ExistsSolutionGeneric(s, i2, rel.NewInstance(), core.SolveOptions{})
	if err != nil || got {
		t.Fatalf("got=%v err=%v", got, err)
	}
	if stats.Nodes != 0 {
		t.Errorf("Nodes = %d, want 0 (pruned at grounding)", stats.Nodes)
	}
}

// TestPreChaseFailureMeansNoSolution: a target egd failing already on
// J_can proves unsolvability without search.
func TestPreChaseFailureMeansNoSolution(t *testing.T) {
	s := &core.Setting{
		Name:   "prechase-fail",
		Source: rel.SchemaOf("B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "key",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y")), dep.NewAtom("T", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		}},
	}
	i := rel.NewInstance()
	i.Add("B", rel.Const("a"), rel.Const("b"))
	i.Add("B", rel.Const("a"), rel.Const("c"))
	got, _, stats, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("key-violating instance reported solvable")
	}
	if stats.Nodes != 0 {
		t.Errorf("Nodes = %d, want 0 (failing pre-chase)", stats.Nodes)
	}
}

// TestUnsupportedTargetTGDsRejected: non-weakly-acyclic Σt is refused
// up front rather than looping.
func TestUnsupportedTargetTGDsRejected(t *testing.T) {
	s := &core.Setting{
		Name:   "cyclic-t",
		Source: rel.SchemaOf("B", 2),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		T: []dep.Dependency{dep.TGD{
			Label: "t-cyc",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
		}},
	}
	_, _, _, err := core.ExistsSolutionGeneric(s, rel.NewInstance(), rel.NewInstance(), core.SolveOptions{})
	if err == nil {
		t.Fatal("non-weakly-acyclic Σt accepted")
	}
}

// TestWeaklyAcyclicExistentialTargetTGDs: weakly acyclic Σt with
// existential tgds is handled (soundly) — the chase invents the
// witnesses.
func TestWeaklyAcyclicExistentialTargetTGDs(t *testing.T) {
	s := &core.Setting{
		Name:   "wa-exist-t",
		Source: rel.SchemaOf("B", 2),
		Target: rel.SchemaOf("T", 2, "U", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		}},
		T: []dep.Dependency{dep.TGD{
			Label: "t-ex",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("U", dep.Var("y"), dep.Var("w"))},
		}},
	}
	i := rel.NewInstance()
	i.Add("B", rel.Const("a"), rel.Const("b"))
	got, witness, _, err := core.ExistsSolutionGeneric(s, i, rel.NewInstance(), core.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("solvable setting reported unsolvable")
	}
	if !s.IsSolution(i, rel.NewInstance(), witness) {
		t.Errorf("witness invalid:\n%s", witness)
	}
	if witness.Relation("U") == nil {
		t.Error("Σt witness missing from solution")
	}
}

// TestWholeInstanceHomAgreesWithBlockwise (Proposition 1) on random
// C_tract instances.
func TestWholeInstanceHomAgreesWithBlockwise(t *testing.T) {
	s := workload.FullSTSetting()
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 10; trial++ {
		i, j := workload.FullSTInstance(10+rng.Intn(10), rng.Intn(2) == 0, rng)
		block, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		whole, _, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{WholeInstanceHom: true})
		if err != nil {
			t.Fatal(err)
		}
		if block != whole {
			t.Errorf("trial %d: blockwise=%v whole=%v", trial, block, whole)
		}
	}
}
