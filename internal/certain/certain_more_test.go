package certain_test

import (
	"testing"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// TestSolutionsExaminedCounts: the evaluator reports how many image
// solutions it inspected and short-circuits on a counterexample.
func TestSolutionsExaminedCounts(t *testing.T) {
	s := &core.Setting{
		Name:   "many",
		Source: rel.SchemaOf("A", 1, "B", 1),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		}},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	i.Add("B", rel.Const("c1"))
	i.Add("B", rel.Const("c2"))
	// Query true in every solution: T(a, ·) exists by Σst.
	qTrue := certain.UCQ{{Name: "q", Body: []dep.Atom{dep.NewAtom("T", dep.Cst("a"), dep.Var("y"))}}}
	res, err := certain.Boolean(s, i, rel.NewInstance(), qTrue, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain || res.SolutionsExamined < 2 {
		t.Errorf("res = %+v, want certain over several image solutions", res)
	}
	// Query false in some solution: T(a, c1) fails when the null keeps
	// fresh or maps elsewhere; the evaluator must stop early.
	qSometimes := certain.UCQ{{Name: "q2", Body: []dep.Atom{dep.NewAtom("T", dep.Cst("a"), dep.Cst("c1"))}}}
	res2, err := certain.Boolean(s, i, rel.NewInstance(), qSometimes, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Certain {
		t.Error("q2 should not be certain")
	}
	if res2.SolutionsExamined < 1 {
		t.Errorf("res2 = %+v", res2)
	}
}

// TestUnionCertain: a union is certain when every solution satisfies
// SOME disjunct, even if no single disjunct is certain by itself.
func TestUnionCertain(t *testing.T) {
	// Σst forces T(a, u) with u existential; Σts restricts u to c1 or c2
	// via a disjunctive-free trick: B(x) relations for both candidates
	// and ts: T(x,y) -> B2(y)... simpler: use the egd-free setting where
	// u can be kept fresh, and craft a union with one disjunct matching
	// any T fact.
	s := &core.Setting{
		Name:   "union",
		Source: rel.SchemaOf("A", 1),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	u := certain.UCQ{
		{Name: "q", Body: []dep.Atom{dep.NewAtom("T", dep.Cst("a"), dep.Cst("a"))}},
		{Name: "q", Body: []dep.Atom{dep.NewAtom("T", dep.Cst("a"), dep.Var("y"))}},
	}
	res, err := certain.Boolean(s, i, rel.NewInstance(), u, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain {
		t.Error("union with a universally-true disjunct should be certain")
	}
	// The first disjunct alone is not certain.
	res1, err := certain.Boolean(s, i, rel.NewInstance(), u[:1], certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Certain {
		t.Error("T(a,a) alone should not be certain")
	}
}

// TestAnswersExcludeNullTuples: open-query answers carrying nulls are
// never certain.
func TestAnswersExcludeNullTuples(t *testing.T) {
	s := &core.Setting{
		Name:   "nulls",
		Source: rel.SchemaOf("A", 1),
		Target: rel.SchemaOf("T", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		}},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	q := certain.UCQ{{Name: "q", Head: []string{"x", "y"}, Body: []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))}}}
	res, err := certain.Answers(s, i, rel.NewInstance(), q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("answers = %v; the second column is never a fixed constant", res.Answers)
	}
	// Projecting only the constant column yields a certain answer.
	q2 := certain.UCQ{{Name: "q2", Head: []string{"x"}, Body: []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))}}}
	res2, err := certain.Answers(s, i, rel.NewInstance(), q2, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) != 1 || res2.Answers[0].String() != "(a)" {
		t.Errorf("answers = %v, want [(a)]", res2.Answers)
	}
}

// TestCertainWithDisjunctiveTS: certain answers work over settings with
// disjunctive target-to-source dependencies (the solver enumerates
// image solutions for them too).
func TestCertainWithDisjunctiveTS(t *testing.T) {
	s := &core.Setting{
		Name:   "disj",
		Source: rel.SchemaOf("A", 1, "R", 1, "G", 1),
		Target: rel.SchemaOf("C", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("C", dep.Var("x"), dep.Var("u"))},
		}},
		TSDisj: []dep.DisjunctiveTGD{{
			Label: "tsd",
			Body:  []dep.Atom{dep.NewAtom("C", dep.Var("x"), dep.Var("u"))},
			Disjuncts: [][]dep.Atom{
				{dep.NewAtom("R", dep.Var("u"))},
				{dep.NewAtom("G", dep.Var("u"))},
			},
		}},
	}
	i := rel.NewInstance()
	i.Add("A", rel.Const("a"))
	i.Add("R", rel.Const("red"))
	i.Add("G", rel.Const("green"))
	// Every solution colors a with red or green: the union is certain,
	// neither single color is.
	union := certain.UCQ{
		{Name: "q", Body: []dep.Atom{dep.NewAtom("C", dep.Cst("a"), dep.Cst("red"))}},
		{Name: "q", Body: []dep.Atom{dep.NewAtom("C", dep.Cst("a"), dep.Cst("green"))}},
	}
	res, err := certain.Boolean(s, i, rel.NewInstance(), union, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain {
		t.Error("red-or-green should be certain")
	}
	red := union[:1]
	resRed, err := certain.Boolean(s, i, rel.NewInstance(), red, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resRed.Certain {
		t.Error("red alone should not be certain")
	}
}
