package certain_test

import (
	"testing"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/hom"
	"repro/internal/reductions"
	"repro/internal/rel"
)

func example1Setting() *core.Setting {
	return &core.Setting{
		Name:   "example1",
		Source: rel.SchemaOf("E", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		}},
	}
}

func edges(pairs ...[2]string) *rel.Instance {
	inst := rel.NewInstance()
	for _, p := range pairs {
		inst.Add("E", rel.Const(p[0]), rel.Const(p[1]))
	}
	return inst
}

// pathQuery is the Boolean query of Section 2:
// q = exists x, y, z: H(x,y) ∧ H(y,z).
func pathQuery() certain.UCQ {
	return certain.UCQ{{
		Name: "q",
		Body: []dep.Atom{
			dep.NewAtom("H", dep.Var("x"), dep.Var("y")),
			dep.NewAtom("H", dep.Var("y"), dep.Var("z")),
		},
	}}
}

// TestPaperSection2CertainExamples reproduces the two certain-answer
// evaluations stated right after Definition 4:
// certain(q, ({E(a,a)}, ∅)) = true and
// certain(q, ({E(a,b), E(b,c), E(a,c)}, ∅)) = false.
func TestPaperSection2CertainExamples(t *testing.T) {
	s := example1Setting()
	q := pathQuery()
	if err := q.Validate(s.Target); err != nil {
		t.Fatal(err)
	}

	res, err := certain.Boolean(s, edges([2]string{"a", "a"}), rel.NewInstance(), q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certain || !res.SolutionExists {
		t.Errorf("certain(q, ({E(a,a)}, ∅)) = %v, want true", res.Certain)
	}

	res, err = certain.Boolean(s, edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"}), rel.NewInstance(), q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain {
		t.Error("certain(q, (triangle, ∅)) should be false: {H(a,c)} is a solution without an H-path of length 2")
	}
}

func TestCertainVacuousWhenNoSolution(t *testing.T) {
	s := example1Setting()
	res, err := certain.Boolean(s, edges([2]string{"a", "b"}, [2]string{"b", "c"}), rel.NewInstance(), pathQuery(), certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SolutionExists {
		t.Fatal("path instance should have no solution")
	}
	if !res.Certain {
		t.Error("certain over an empty set of solutions must be true")
	}
}

func TestCertainOpenQuery(t *testing.T) {
	s := example1Setting()
	q := certain.UCQ{{
		Name: "q",
		Head: []string{"x", "y"},
		Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
	}}
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	res, err := certain.Answers(s, i, rel.NewInstance(), q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SolutionExists {
		t.Fatal("solutions exist")
	}
	// Every solution must contain H(a,c) (forced by Σst); nothing else
	// is certain.
	if len(res.Answers) != 1 || res.Answers[0].String() != "(a, c)" {
		t.Errorf("certain answers = %v, want [(a, c)]", res.Answers)
	}
}

func TestCertainOpenQueryWithJFacts(t *testing.T) {
	s := example1Setting()
	q := certain.UCQ{{
		Name: "q",
		Head: []string{"x", "y"},
		Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
	}}
	i := edges([2]string{"a", "b"}, [2]string{"b", "c"}, [2]string{"a", "c"})
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("b"))
	res, err := certain.Answers(s, i, j, q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// J's facts persist in every solution: both (a,b) and (a,c) certain.
	if len(res.Answers) != 2 {
		t.Errorf("certain answers = %v, want [(a, b) (a, c)]", res.Answers)
	}
}

// TestTheorem3CertainClique reproduces the coNP-hardness construction:
// with anchors drawn from V and q = exists x: P(x,x,x,x),
// certain(q, (I(G,k), ∅)) = false iff G has a k-clique.
func TestTheorem3CertainClique(t *testing.T) {
	s := reductions.CliqueSetting()
	q := certain.UCQ{{Name: "q", Body: reductions.CliqueQuery()}}
	if err := q.Validate(s.Target); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"triangle-k3", graph.Complete(3), 3},
		{"path4-k3", graph.Path(4), 3},
		{"k4-k4", graph.Complete(4), 4},
		{"cycle5-k3", graph.Cycle(5), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i, j := reductions.CliqueInstanceOverVertices(tc.g, tc.k)
			res, err := certain.Boolean(s, i, j, q, certain.Options{Solve: core.SolveOptions{MaxNodes: 50_000_000}})
			if err != nil {
				t.Fatal(err)
			}
			hasClique := tc.g.HasClique(tc.k)
			if res.Certain != !hasClique {
				t.Errorf("certain=%v, want %v (HasClique=%v)", res.Certain, !hasClique, hasClique)
			}
		})
	}
}

func TestCQValidate(t *testing.T) {
	target := rel.SchemaOf("H", 2)
	good := certain.CQ{Name: "q", Head: []string{"x"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}}
	if err := good.Validate(target); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	badRel := certain.CQ{Name: "q", Body: []dep.Atom{dep.NewAtom("Z", dep.Var("x"))}}
	if err := badRel.Validate(target); err == nil {
		t.Error("unknown relation accepted")
	}
	badHead := certain.CQ{Name: "q", Head: []string{"z"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}}
	if err := badHead.Validate(target); err == nil {
		t.Error("unbound head variable accepted")
	}
	badArity := certain.CQ{Name: "q", Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"))}}
	if err := badArity.Validate(target); err == nil {
		t.Error("arity violation accepted")
	}
	empty := certain.CQ{Name: "q"}
	if err := empty.Validate(target); err == nil {
		t.Error("empty body accepted")
	}
}

func TestUCQValidateHeadArity(t *testing.T) {
	target := rel.SchemaOf("H", 2)
	u := certain.UCQ{
		{Name: "q", Head: []string{"x"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}},
		{Name: "q", Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}},
	}
	if err := u.Validate(target); err == nil {
		t.Error("mixed head arities accepted")
	}
	if err := (certain.UCQ{}).Validate(target); err == nil {
		t.Error("empty UCQ accepted")
	}
}

func TestCQEvalDirect(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("H", rel.Const("a"), rel.Const("b"))
	inst.Add("H", rel.Const("b"), rel.Const("c"))
	q := certain.CQ{Name: "q", Head: []string{"x"}, Body: []dep.Atom{
		dep.NewAtom("H", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("H", dep.Var("y"), dep.Var("z")),
	}}
	got := q.Eval(inst, hom.Options{})
	if len(got) != 1 || got[0][0] != rel.Const("a") {
		t.Errorf("Eval = %v, want [(a)]", got)
	}
	if !q.EvalBool(inst, hom.Options{}) {
		t.Error("EvalBool = false")
	}
}

func TestUCQEvalUnion(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("H", rel.Const("a"), rel.Const("b"))
	u := certain.UCQ{
		{Name: "q1", Head: []string{"x"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}},
		{Name: "q2", Head: []string{"y"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}},
	}
	got := u.Eval(inst, hom.Options{})
	if len(got) != 2 {
		t.Errorf("union eval = %v, want [(a) (b)]", got)
	}
}

func TestCQStringRendering(t *testing.T) {
	q := certain.CQ{Name: "q", Head: []string{"x"}, Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}}
	if got := q.String(); got != "q(x) :- H(x, y)" {
		t.Errorf("String = %q", got)
	}
	b := certain.CQ{Name: "p", Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("x"))}}
	if got := b.String(); got != "p :- H(x, x)" {
		t.Errorf("String = %q", got)
	}
	if b.IsBoolean() != true || q.IsBoolean() {
		t.Error("IsBoolean wrong")
	}
}
