// Package certain implements the certain-answers semantics of
// Definition 4 of the peer data exchange paper: a tuple is a certain
// answer of a target query q on (I, J) if it belongs to q(J') for every
// solution J' for (I, J).
//
// The evaluator enumerates the image solutions produced by the generic
// solver (package core). For monotone queries — conjunctive queries and
// unions thereof — this is complete: every solution contains an image
// solution, and monotone queries only gain answers on supersets, so the
// intersection of q over the image solutions equals the intersection
// over all solutions. The data complexity is coNP (Theorem 2) and the
// enumeration is exponential in the worst case, matching the
// coNP-hardness of Theorem 3.
package certain

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// CQ is a conjunctive query over the target schema:
//
//	q(head) :- body
//
// An empty head makes the query Boolean. Body variables not in the head
// are existentially quantified.
type CQ struct {
	// Name identifies the query (for files and reports).
	Name string
	// Head lists the answer variables; each must occur in the body.
	Head []string
	// Body is the conjunction of target atoms.
	Body []dep.Atom
}

// Validate checks the query against the target schema.
func (q CQ) Validate(target *rel.Schema) error {
	if len(q.Body) == 0 {
		return fmt.Errorf("certain: query %s has an empty body", q.Name)
	}
	bodyVars := make(map[string]bool)
	for _, a := range q.Body {
		ar, ok := target.Arity(a.Rel)
		if !ok {
			return fmt.Errorf("certain: query %s uses relation %s not in the target schema", q.Name, a.Rel)
		}
		if ar != len(a.Args) {
			return fmt.Errorf("certain: query %s: atom %s has %d arguments, relation has arity %d", q.Name, a, len(a.Args), ar)
		}
		for _, v := range a.Vars() {
			bodyVars[v] = true
		}
	}
	for _, h := range q.Head {
		if !bodyVars[h] {
			return fmt.Errorf("certain: query %s: head variable %s does not occur in the body", q.Name, h)
		}
	}
	return nil
}

// IsBoolean reports whether the query has an empty head.
func (q CQ) IsBoolean() bool { return len(q.Head) == 0 }

// String renders the query in rule syntax.
func (q CQ) String() string {
	s := q.Name
	if len(q.Head) > 0 {
		s += "("
		for i, h := range q.Head {
			if i > 0 {
				s += ", "
			}
			s += h
		}
		s += ")"
	}
	s += " :- "
	for i, a := range q.Body {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s
}

// Eval returns the distinct head tuples of q on the instance. Tuples
// containing labeled nulls are included; callers computing certain
// answers filter them out (certain answers are tuples of constants).
func (q CQ) Eval(inst *rel.Instance, opts hom.Options) []rel.Tuple {
	seen := make(map[rel.TupleKey]bool)
	var out []rel.Tuple
	hom.ForEach(q.Body, inst, nil, opts, func(b hom.Binding) bool {
		t := make(rel.Tuple, len(q.Head))
		for i, h := range q.Head {
			t[i] = b[h]
		}
		if k := rel.KeyOf(t); !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
		return true
	})
	sortTuples(out)
	return out
}

// EvalBool reports whether the Boolean query holds on the instance.
func (q CQ) EvalBool(inst *rel.Instance, opts hom.Options) bool {
	return hom.Exists(q.Body, inst, nil, opts)
}

// UCQ is a union of conjunctive queries with the same head arity.
type UCQ []CQ

// Validate checks every disjunct and the head arity agreement.
func (u UCQ) Validate(target *rel.Schema) error {
	if len(u) == 0 {
		return fmt.Errorf("certain: empty union of conjunctive queries")
	}
	for _, q := range u {
		if err := q.Validate(target); err != nil {
			return err
		}
		if len(q.Head) != len(u[0].Head) {
			return fmt.Errorf("certain: query %s has head arity %d, expected %d", q.Name, len(q.Head), len(u[0].Head))
		}
	}
	return nil
}

// Eval returns the union of the disjuncts' answers.
func (u UCQ) Eval(inst *rel.Instance, opts hom.Options) []rel.Tuple {
	seen := make(map[rel.TupleKey]bool)
	var out []rel.Tuple
	for _, q := range u {
		for _, t := range q.Eval(inst, opts) {
			if k := rel.KeyOf(t); !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	sortTuples(out)
	return out
}

// EvalBool reports whether any disjunct holds.
func (u UCQ) EvalBool(inst *rel.Instance, opts hom.Options) bool {
	for _, q := range u {
		if q.EvalBool(inst, opts) {
			return true
		}
	}
	return false
}

// Options configures certain-answer computation.
type Options struct {
	// Solve configures the underlying solution enumeration.
	Solve core.SolveOptions
	// Canonical, when non-nil, is a precomputed chased canonical target
	// for (s, i, j) (see core.ChaseCanonicalTarget); the enumeration
	// then skips the chase phases. It must have been computed for the
	// same setting and instances.
	Canonical *core.CanonicalTarget
}

// forEach dispatches the image-solution enumeration to the cached or
// from-scratch path.
func (o Options) forEach(s *core.Setting, i, j *rel.Instance, fn func(*rel.Instance) bool) (*core.SolveStats, error) {
	if o.Canonical != nil {
		return core.ForEachImageSolutionFrom(s, i, j, o.Canonical, o.Solve, fn)
	}
	return core.ForEachImageSolution(s, i, j, o.Solve, fn)
}

// Result reports a certain-answers computation.
type Result struct {
	// SolutionExists is false when (I, J) has no solution; then every
	// Boolean query is vacuously certain and every tuple is vacuously a
	// certain answer (the paper quantifies over an empty set of
	// solutions).
	SolutionExists bool
	// Certain is the Boolean verdict (Boolean queries only).
	Certain bool
	// Answers are the certain answer tuples (open queries only), sorted.
	Answers []rel.Tuple
	// SolutionsExamined counts the image solutions enumerated.
	SolutionsExamined int
}

// Boolean computes certain(q, (I, J)) for a Boolean union of
// conjunctive queries.
func Boolean(s *core.Setting, i, j *rel.Instance, q UCQ, opts Options) (Result, error) {
	res := Result{Certain: true}
	_, err := opts.forEach(s, i, j, func(sol *rel.Instance) bool {
		res.SolutionExists = true
		res.SolutionsExamined++
		if !q.EvalBool(sol, opts.Solve.Hom) {
			res.Certain = false
			return false // one counterexample solution settles it
		}
		return true
	})
	if err != nil {
		return res, err
	}
	return res, nil
}

// Answers computes the certain answers of an open union of conjunctive
// queries: the constant tuples in q(J') for every solution J'.
func Answers(s *core.Setting, i, j *rel.Instance, q UCQ, opts Options) (Result, error) {
	res := Result{}
	var inter map[rel.TupleKey]rel.Tuple
	_, err := opts.forEach(s, i, j, func(sol *rel.Instance) bool {
		res.SolutionExists = true
		res.SolutionsExamined++
		cur := make(map[rel.TupleKey]rel.Tuple)
		for _, t := range q.Eval(sol, opts.Solve.Hom) {
			if tupleGround(t) {
				cur[rel.KeyOf(t)] = t
			}
		}
		if inter == nil {
			inter = cur
		} else {
			for k := range inter {
				if _, ok := cur[k]; !ok {
					delete(inter, k)
				}
			}
		}
		return len(inter) > 0 // empty intersection can never grow back
	})
	if err != nil {
		return res, err
	}
	for _, t := range inter {
		res.Answers = append(res.Answers, t)
	}
	sortTuples(res.Answers)
	return res, nil
}

func tupleGround(t rel.Tuple) bool {
	for _, v := range t {
		if v.IsNull() {
			return false
		}
	}
	return true
}

func sortTuples(ts []rel.Tuple) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].String() < ts[b].String() })
}
