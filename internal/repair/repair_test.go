package repair_test

import (
	"math/rand"
	"testing"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
	"repro/internal/repair"
	"repro/internal/workload"
)

func example1Setting() *core.Setting {
	return &core.Setting{
		Name:   "example1",
		Source: rel.SchemaOf("E", 2),
		Target: rel.SchemaOf("H", 2),
		ST: []dep.TGD{{
			Label: "st",
			Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
		}},
		TS: []dep.TGD{{
			Label: "ts",
			Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
		}},
	}
}

func TestIntactInstanceIsUniqueRepair(t *testing.T) {
	s := example1Setting()
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("b"))
	i.Add("E", rel.Const("b"), rel.Const("c"))
	i.Add("E", rel.Const("a"), rel.Const("c"))
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("c"))
	res, err := repair.Repairs(s, i, j, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Intact || len(res.Repairs) != 1 {
		t.Fatalf("expected J itself as unique repair, got %+v", res)
	}
	if !res.Repairs[0].Target.Equal(j) || res.Repairs[0].Removed != 0 {
		t.Errorf("repair = %v removed=%d", res.Repairs[0].Target, res.Repairs[0].Removed)
	}
}

func TestRepairDropsOffendingFact(t *testing.T) {
	// I = {E(a,a)}; J = {H(a,a), H(b,b)}: H(b,b) violates Σts and must
	// be repaired away; the rest survives.
	s := example1Setting()
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("a"))
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("a"))
	j.Add("H", rel.Const("b"), rel.Const("b"))
	res, err := repair.Repairs(s, i, j, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intact {
		t.Fatal("J should not be solvable intact")
	}
	if len(res.Repairs) != 1 {
		t.Fatalf("repairs = %d, want 1", len(res.Repairs))
	}
	r := res.Repairs[0]
	if r.Removed != 1 {
		t.Errorf("removed = %d, want 1", r.Removed)
	}
	if !r.Target.Contains(rel.Fact{Rel: "H", Args: rel.Tuple{rel.Const("a"), rel.Const("a")}}) {
		t.Error("repair dropped the innocent fact")
	}
	if !s.IsSolution(i, r.Target, r.Witness) {
		t.Error("repair witness is not a solution")
	}
}

func TestNoRepairWhenSourceItselfUnacceptable(t *testing.T) {
	// The path instance of Example 1: even J'' = ∅ has no solution, so
	// there are no repairs at all.
	s := example1Setting()
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("b"))
	i.Add("E", rel.Const("b"), rel.Const("c"))
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("c"))
	res, err := repair.Repairs(s, i, j, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs) != 0 {
		t.Errorf("expected no repairs, got %d", len(res.Repairs))
	}
	// Certain answers are vacuous.
	q := certain.UCQ{{Name: "q", Body: []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}}}
	cert, hasRepair, err := repair.CertainBool(s, i, j, q, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hasRepair || !cert {
		t.Errorf("cert=%v hasRepair=%v, want vacuous true / false", cert, hasRepair)
	}
}

func TestMultipleIncomparableRepairs(t *testing.T) {
	// Target egd forces a choice between two J facts: both maximal
	// subsets are repairs.
	s := example1Setting()
	s.T = []dep.Dependency{dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y")), dep.NewAtom("H", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}}
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("b"))
	i.Add("E", rel.Const("a"), rel.Const("c"))
	j := rel.NewInstance()
	j.Add("H", rel.Const("a"), rel.Const("b"))
	j.Add("H", rel.Const("a"), rel.Const("c"))
	res, err := repair.Repairs(s, i, j, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Repairs) != 2 {
		t.Fatalf("repairs = %d, want 2 (drop either fact)", len(res.Repairs))
	}
	for _, r := range res.Repairs {
		if r.Target.NumFacts() != 1 || r.Removed != 1 {
			t.Errorf("unexpected repair shape: %v removed=%d", r.Target, r.Removed)
		}
	}

	// Under the repair semantics, neither H(a,b) nor H(a,c) is certain,
	// but ∃y H(a,y) is.
	open := certain.UCQ{{Name: "q", Head: []string{"y"}, Body: []dep.Atom{dep.NewAtom("H", dep.Cst("a"), dep.Var("y"))}}}
	answers, hasRepair, err := repair.CertainAnswers(s, i, j, open, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasRepair || len(answers) != 0 {
		t.Errorf("answers = %v (hasRepair=%v), want none", answers, hasRepair)
	}
	boolQ := certain.UCQ{{Name: "b", Body: []dep.Atom{dep.NewAtom("H", dep.Cst("a"), dep.Var("y"))}}}
	cert, _, err := repair.CertainBool(s, i, j, boolQ, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert {
		t.Error("∃y H(a,y) should be certain under repairs")
	}
}

func TestRepairCoincidesWithCertainWhenIntact(t *testing.T) {
	s := workload.GenomicSetting()
	rng := rand.New(rand.NewSource(41))
	i, j := workload.GenomicInstance(10, true, rng)
	q := certain.UCQ{{
		Name: "q",
		Head: []string{"a"},
		Body: []dep.Atom{dep.NewAtom("GeneProduct", dep.Var("a"), dep.Var("n"))},
	}}
	plain, err := certain.Answers(s, i, j, q, certain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	viaRepairs, hasRepair, err := repair.CertainAnswers(s, i, j, q, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hasRepair {
		t.Fatal("clean instance must have a repair")
	}
	if len(plain.Answers) != len(viaRepairs) {
		t.Fatalf("plain=%v repairs=%v", plain.Answers, viaRepairs)
	}
}

func TestRepairGenomicDirtyInstance(t *testing.T) {
	s := workload.GenomicSetting()
	rng := rand.New(rand.NewSource(42))
	i, j := workload.GenomicInstance(10, false, rng) // one unvouched fact
	res, err := repair.Repairs(s, i, j, repair.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intact {
		t.Fatal("dirty instance should not be intact")
	}
	if len(res.Repairs) != 1 {
		t.Fatalf("repairs = %d, want 1", len(res.Repairs))
	}
	if res.Repairs[0].Removed != 1 {
		t.Errorf("removed = %d, want exactly the unvouched fact", res.Repairs[0].Removed)
	}
}

func TestRepairFactCap(t *testing.T) {
	s := example1Setting()
	j := rel.NewInstance()
	for k := 0; k < 8; k++ {
		j.Add("H", rel.Const(string(rune('a'+k))), rel.Const(string(rune('a'+k))))
	}
	if _, err := repair.Repairs(s, rel.NewInstance(), j, repair.Options{MaxTargetFacts: 5}); err == nil {
		t.Error("oversized target accepted below the cap")
	}
	// With the cap raised, the computation runs; with an empty source,
	// every H fact violates Σts, so the empty instance is the unique
	// repair.
	res, err := repair.Repairs(s, rel.NewInstance(), j, repair.Options{MaxTargetFacts: 10})
	if err != nil {
		t.Fatalf("explicit cap raise rejected: %v", err)
	}
	if len(res.Repairs) != 1 || res.Repairs[0].Target.NumFacts() != 0 {
		t.Errorf("expected the empty repair, got %+v", res)
	}
}
