// Package repair implements an alternative semantics for peer data
// exchange when no solution exists, in the spirit the paper's
// conclusion sketches (citing Bertossi and Bravo's repair-based
// semantics): the source peer is authoritative and immutable, so the
// only repairable data is the target peer's own instance J. A *repair*
// is a maximal subset J” ⊆ J such that (I, J”) admits a solution;
// query answers are those certain in every solution of every repair.
//
// This semantics degrades gracefully: when (I, J) itself has a
// solution, J is the unique repair and the semantics coincides with the
// paper's certain answers. When even (I, ∅) has no solution — the
// source's offerings themselves violate the target's restrictions — no
// repair exists and answers are vacuously certain, mirroring the
// paper's convention for empty solution spaces.
//
// Complexity: the paper notes the repair-based semantics is
// Π₂ᵖ-complete, one level above the coNP-complete certain answers; the
// implementation is accordingly exponential in |J| (subset enumeration)
// on top of the solution search, and is intended for the small target
// instances of the experiments.
package repair

import (
	"fmt"
	"sort"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/rel"
)

// Options configures repair computations.
type Options struct {
	// Solve configures the underlying solution searches.
	Solve core.SolveOptions
	// MaxTargetFacts caps |J| to keep the subset enumeration honest;
	// 0 means the default of 20.
	MaxTargetFacts int
}

func (o Options) maxTargetFacts() int {
	if o.MaxTargetFacts > 0 {
		return o.MaxTargetFacts
	}
	return 20
}

// Result reports a repair computation.
type Result struct {
	// Repairs are the maximal solvable subsets of J, each paired with
	// one witness solution. Empty when even (I, ∅) has no solution.
	Repairs []Repair
	// Intact reports that J itself is solvable, making it the unique
	// repair (the semantics then coincides with plain certain answers).
	Intact bool
}

// Repair is one maximal solvable subset of the target instance.
type Repair struct {
	// Target is the repaired target instance J'' ⊆ J.
	Target *rel.Instance
	// Witness is one solution for (I, Target).
	Witness *rel.Instance
	// Removed counts the facts of J deleted by the repair.
	Removed int
}

// Repairs computes all maximal subsets J” ⊆ J for which (I, J”) has a
// solution.
func Repairs(s *core.Setting, i, j *rel.Instance, opts Options) (*Result, error) {
	facts := j.Facts()
	if len(facts) > opts.maxTargetFacts() {
		return nil, fmt.Errorf("repair: target instance has %d facts, cap is %d (raise Options.MaxTargetFacts deliberately)", len(facts), opts.maxTargetFacts())
	}
	n := len(facts)
	res := &Result{}

	// Enumerate subsets by descending size (combinations per size via
	// Gosper's hack), so maximality checks only need to look at
	// already-accepted repairs: a solvable subset not contained in an
	// accepted repair is maximal, because all of its strict supersets
	// were already processed and found unsolvable or dominated.
	accepted := make([]uint64, 0, 4)
	for size := n; size >= 0; size-- {
		for mask := range combinations(n, size) {
			dominated := false
			for _, big := range accepted {
				if big&mask == mask {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			sub := rel.NewInstance()
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					sub.AddFact(facts[b])
				}
			}
			ok, witness, _, err := core.ExistsSolutionGeneric(s, i, sub, opts.Solve)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			accepted = append(accepted, mask)
			res.Repairs = append(res.Repairs, Repair{Target: sub, Witness: witness, Removed: n - size})
			if size == n {
				res.Intact = true
			}
		}
	}
	return res, nil
}

// combinations yields every n-bit mask with exactly k bits set, in
// increasing numeric order (Gosper's hack).
func combinations(n, k int) func(func(uint64) bool) {
	return func(yield func(uint64) bool) {
		if k == 0 {
			yield(0)
			return
		}
		if k > n {
			return
		}
		mask := uint64(1)<<k - 1
		limit := uint64(1) << n
		for mask < limit {
			if !yield(mask) {
				return
			}
			// Gosper: next mask with the same popcount.
			c := mask & (^mask + 1)
			r := mask + c
			mask = (((r ^ mask) >> 2) / c) | r
		}
	}
}

// CertainBool computes the repair-based certain answer of a Boolean
// union of conjunctive queries: true iff q holds in every solution of
// every repair. hasRepair reports whether any repair exists; when it is
// false the verdict is vacuously true.
func CertainBool(s *core.Setting, i, j *rel.Instance, q certain.UCQ, opts Options) (bool, bool, error) {
	reps, err := Repairs(s, i, j, opts)
	if err != nil {
		return false, false, err
	}
	for _, r := range reps.Repairs {
		res, err := certain.Boolean(s, i, r.Target, q, certain.Options{Solve: opts.Solve})
		if err != nil {
			return false, true, err
		}
		if !res.Certain {
			return false, true, nil
		}
	}
	return true, len(reps.Repairs) > 0, nil
}

// CertainAnswers computes the repair-based certain answers of an open
// union of conjunctive queries: the tuples certain in every repair.
func CertainAnswers(s *core.Setting, i, j *rel.Instance, q certain.UCQ, opts Options) ([]rel.Tuple, bool, error) {
	reps, err := Repairs(s, i, j, opts)
	if err != nil {
		return nil, false, err
	}
	if len(reps.Repairs) == 0 {
		return nil, false, nil
	}
	var inter map[string]rel.Tuple
	for _, r := range reps.Repairs {
		res, err := certain.Answers(s, i, r.Target, q, certain.Options{Solve: opts.Solve})
		if err != nil {
			return nil, true, err
		}
		cur := make(map[string]rel.Tuple, len(res.Answers))
		for _, t := range res.Answers {
			cur[t.String()] = t
		}
		if inter == nil {
			inter = cur
			continue
		}
		for k := range inter {
			if _, ok := cur[k]; !ok {
				delete(inter, k)
			}
		}
	}
	out := make([]rel.Tuple, 0, len(inter))
	for _, t := range inter {
		out = append(out, t)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].String() < out[b].String() })
	return out, true, nil
}
