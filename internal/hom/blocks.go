package hom

import (
	"sort"

	"repro/internal/rel"
)

// Block is a block of tuples per Definition 10 of the paper: either a
// maximal set of tuples whose nulls all come from one connected
// component of the graph of nulls, or the set of all null-free tuples.
type Block struct {
	// Facts are the tuples of the block.
	Facts []rel.Fact
	// Nulls are the labeled nulls occurring in the block, sorted by
	// label; empty exactly for the null-free block.
	Nulls []rel.Value
}

// Blocks decomposes an instance into its blocks of tuples
// (Definition 10). The graph of the nulls of K has the nulls of K as
// nodes and an edge between two nulls whenever they co-occur in some
// tuple; each connected component induces one block, and the null-free
// tuples (if any) form one additional block.
//
// Theorem 6 of the paper shows that for settings in C_tract, every block
// of the chased instance I_can has a constant number of nulls — which is
// what makes the per-block homomorphism checks of ExistsSolution run in
// polynomial time.
func Blocks(k *rel.Instance) []Block {
	// Union-find over null labels.
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	facts := k.Facts()
	factNulls := make([][]int, len(facts))
	for i, f := range facts {
		var nulls []int
		seen := make(map[int]bool)
		for _, v := range f.Args {
			if v.IsNull() && !seen[v.NullID()] {
				seen[v.NullID()] = true
				nulls = append(nulls, v.NullID())
			}
		}
		factNulls[i] = nulls
		for j := 1; j < len(nulls); j++ {
			union(nulls[0], nulls[j])
		}
	}

	groups := make(map[int]*Block)
	var ground *Block
	for i, f := range facts {
		if len(factNulls[i]) == 0 {
			if ground == nil {
				ground = &Block{}
			}
			ground.Facts = append(ground.Facts, f)
			continue
		}
		root := find(factNulls[i][0])
		b, ok := groups[root]
		if !ok {
			b = &Block{}
			groups[root] = b
		}
		b.Facts = append(b.Facts, f)
	}

	var out []Block
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		b := groups[r]
		b.Nulls = blockNulls(b.Facts)
		out = append(out, *b)
	}
	if ground != nil {
		out = append(out, *ground)
	}
	return out
}

func blockNulls(facts []rel.Fact) []rel.Value {
	set := make(map[int]bool)
	for _, f := range facts {
		for _, v := range f.Args {
			if v.IsNull() {
				set[v.NullID()] = true
			}
		}
	}
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]rel.Value, len(ids))
	for i, id := range ids {
		out[i] = rel.Null(id)
	}
	return out
}

// MaxBlockNulls returns the maximum number of nulls in any block of k,
// or 0 if k has no blocks. It is the quantity Theorem 6 bounds by a
// constant for C_tract settings.
func MaxBlockNulls(k *rel.Instance) int {
	max := 0
	for _, b := range Blocks(k) {
		if len(b.Nulls) > max {
			max = len(b.Nulls)
		}
	}
	return max
}
