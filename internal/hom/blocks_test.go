package hom

import (
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

func TestBlocksGroundOnly(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	inst.Add("E", rel.Const("b"), rel.Const("c"))
	blocks := Blocks(inst)
	if len(blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(blocks))
	}
	if len(blocks[0].Nulls) != 0 || len(blocks[0].Facts) != 2 {
		t.Errorf("ground block wrong: %+v", blocks[0])
	}
}

func TestBlocksConnectedComponents(t *testing.T) {
	inst := rel.NewInstance()
	// Component {1,2} via co-occurrence; component {3}; one ground fact.
	inst.Add("E", rel.Null(1), rel.Null(2))
	inst.Add("E", rel.Null(2), rel.Const("a"))
	inst.Add("E", rel.Null(3), rel.Const("b"))
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	blocks := Blocks(inst)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3:\n%v", len(blocks), blocks)
	}
	// First block: nulls {1,2} with two facts.
	if len(blocks[0].Nulls) != 2 || len(blocks[0].Facts) != 2 {
		t.Errorf("block 0 wrong: %+v", blocks[0])
	}
	// Second block: null {3}, one fact.
	if len(blocks[1].Nulls) != 1 || blocks[1].Nulls[0] != rel.Null(3) {
		t.Errorf("block 1 wrong: %+v", blocks[1])
	}
	// Ground block last.
	last := blocks[len(blocks)-1]
	if len(last.Nulls) != 0 || len(last.Facts) != 1 {
		t.Errorf("ground block wrong: %+v", last)
	}
}

func TestBlocksTransitiveComponent(t *testing.T) {
	inst := rel.NewInstance()
	// 1-2, 2-3 co-occur: all three nulls in one component.
	inst.Add("E", rel.Null(1), rel.Null(2))
	inst.Add("E", rel.Null(2), rel.Null(3))
	blocks := Blocks(inst)
	if len(blocks) != 1 || len(blocks[0].Nulls) != 3 {
		t.Fatalf("expected one block with 3 nulls, got %+v", blocks)
	}
	if MaxBlockNulls(inst) != 3 {
		t.Errorf("MaxBlockNulls = %d", MaxBlockNulls(inst))
	}
}

func TestMaxBlockNullsEmpty(t *testing.T) {
	if MaxBlockNulls(rel.NewInstance()) != 0 {
		t.Error("empty instance should have 0 max block nulls")
	}
}

func TestInstanceHomExistsIdentity(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	if !InstanceHomExists(inst, inst, Options{}) {
		t.Error("identity homomorphism not found")
	}
}

func TestInstanceHomNullsMapAnywhere(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("b"))
	if !InstanceHomExists(k, i, Options{}) {
		t.Error("null should map to b")
	}
	m, ok := FindInstanceHom(k, i, Options{})
	if !ok || m[rel.Null(1)] != rel.Const("b") {
		t.Errorf("FindInstanceHom = %v, %v", m, ok)
	}
}

func TestInstanceHomConstantsFixed(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Const("b"))
	i := rel.NewInstance()
	i.Add("E", rel.Const("c"), rel.Const("d"))
	if InstanceHomExists(k, i, Options{}) {
		t.Error("homomorphism must be identity on constants")
	}
}

func TestInstanceHomJoinConstraint(t *testing.T) {
	// k: E(a,N1), E(N1,b) requires a value x with E(a,x) and E(x,b) in i.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Null(1), rel.Const("b"))
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("m"))
	i.Add("E", rel.Const("m"), rel.Const("b"))
	if !InstanceHomExists(k, i, Options{}) {
		t.Error("join through null not found")
	}
	i2 := rel.NewInstance()
	i2.Add("E", rel.Const("a"), rel.Const("m"))
	i2.Add("E", rel.Const("q"), rel.Const("b"))
	if InstanceHomExists(k, i2, Options{}) {
		t.Error("broken join matched")
	}
}

func TestInstanceHomBlocksIndependent(t *testing.T) {
	// Two independent blocks can map to different witnesses even if no
	// single joint assignment exists... actually blocks never share
	// nulls, so independence is sound (Proposition 1). Check a case with
	// two blocks where each maps.
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Null(1))
	k.Add("E", rel.Const("b"), rel.Null(2))
	i := rel.NewInstance()
	i.Add("E", rel.Const("a"), rel.Const("x"))
	i.Add("E", rel.Const("b"), rel.Const("y"))
	if !InstanceHomExists(k, i, Options{}) {
		t.Error("independent blocks should map")
	}
}

// Property: Blocks partitions the facts of the instance.
func TestBlocksPartitionProperty(t *testing.T) {
	f := func(spec []struct{ A, B uint8 }) bool {
		inst := rel.NewInstance()
		for _, s := range spec {
			var va, vb rel.Value
			if s.A%2 == 0 {
				va = rel.Const(string(rune('a' + s.A%5)))
			} else {
				va = rel.Null(int(s.A % 7))
			}
			if s.B%2 == 0 {
				vb = rel.Const(string(rune('a' + s.B%5)))
			} else {
				vb = rel.Null(int(s.B % 7))
			}
			inst.Add("R", va, vb)
		}
		total := 0
		seen := make(map[string]bool)
		for _, b := range Blocks(inst) {
			for _, f := range b.Facts {
				total++
				if seen[f.String()] {
					return false // fact in two blocks
				}
				seen[f.String()] = true
			}
		}
		return total == inst.NumFacts()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: nulls never cross blocks.
func TestBlocksNullDisjointnessProperty(t *testing.T) {
	f := func(spec []struct{ A, B uint8 }) bool {
		inst := rel.NewInstance()
		for _, s := range spec {
			inst.Add("R", rel.Null(int(s.A%10)), rel.Null(int(s.B%10)))
		}
		seen := make(map[rel.Value]bool)
		for _, b := range Blocks(inst) {
			for _, n := range b.Nulls {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: blockwise homomorphism agrees with whole-instance
// homomorphism search (Proposition 1).
func TestProposition1Property(t *testing.T) {
	f := func(kSpec, iSpec []struct{ A, B uint8 }) bool {
		k := rel.NewInstance()
		for _, s := range kSpec {
			var va, vb rel.Value
			if s.A%3 == 0 {
				va = rel.Null(int(s.A%4) + 1)
			} else {
				va = rel.Const(string(rune('a' + s.A%3)))
			}
			if s.B%3 == 0 {
				vb = rel.Null(int(s.B%4) + 1)
			} else {
				vb = rel.Const(string(rune('a' + s.B%3)))
			}
			k.Add("R", va, vb)
		}
		i := rel.NewInstance()
		for _, s := range iSpec {
			i.Add("R", rel.Const(string(rune('a'+s.A%3))), rel.Const(string(rune('a'+s.B%3))))
		}
		blockwise := InstanceHomExists(k, i, Options{})
		whole := Exists(InstanceAtoms(k), i, nil, Options{})
		if k.NumFacts() == 0 {
			// Empty k: both must be true.
			return blockwise && whole
		}
		return blockwise == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
