package hom

import (
	"testing"

	"repro/internal/dep"
	"repro/internal/rel"
)

func edgeInstance(edges ...[2]string) *rel.Instance {
	inst := rel.NewInstance()
	for _, e := range edges {
		inst.Add("E", rel.Const(e[0]), rel.Const(e[1]))
	}
	return inst
}

func TestExistsSimplePattern(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	path2 := []dep.Atom{
		dep.NewAtom("E", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("E", dep.Var("y"), dep.Var("z")),
	}
	if !Exists(path2, inst, nil, Options{}) {
		t.Error("path of length 2 not found")
	}
	triangle := []dep.Atom{
		dep.NewAtom("E", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("E", dep.Var("y"), dep.Var("z")),
		dep.NewAtom("E", dep.Var("z"), dep.Var("x")),
	}
	if Exists(triangle, inst, nil, Options{}) {
		t.Error("triangle found in a path graph")
	}
}

func TestExistsWithConstants(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"})
	atom := []dep.Atom{dep.NewAtom("E", dep.Cst("a"), dep.Var("y"))}
	if !Exists(atom, inst, nil, Options{}) {
		t.Error("constant match failed")
	}
	atom = []dep.Atom{dep.NewAtom("E", dep.Cst("b"), dep.Var("y"))}
	if Exists(atom, inst, nil, Options{}) {
		t.Error("constant mismatch matched")
	}
}

func TestExistsWithInitialBinding(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"}, [2]string{"c", "d"})
	atom := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}
	if !Exists(atom, inst, Binding{"x": rel.Const("a")}, Options{}) {
		t.Error("bound search failed")
	}
	if Exists(atom, inst, Binding{"x": rel.Const("b")}, Options{}) {
		t.Error("bound search over-matched")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"}, [2]string{"c", "c"})
	loop := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("x"))}
	b, ok := FindOne(loop, inst, nil, Options{})
	if !ok {
		t.Fatal("self-loop not found")
	}
	if b["x"] != rel.Const("c") {
		t.Errorf("bound x = %v, want c", b["x"])
	}
}

func TestForEachEnumeratesAll(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"}, [2]string{"a", "c"}, [2]string{"b", "c"})
	atom := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}
	count := 0
	done := ForEach(atom, inst, nil, Options{}, func(Binding) bool {
		count++
		return true
	})
	if !done || count != 3 {
		t.Errorf("enumerated %d bindings (done=%v), want 3", count, done)
	}
	// Early stop.
	count = 0
	done = ForEach(atom, inst, nil, Options{}, func(Binding) bool {
		count++
		return count < 2
	})
	if done || count != 2 {
		t.Errorf("early stop enumerated %d (done=%v)", count, done)
	}
}

func TestForEachEmptyPattern(t *testing.T) {
	inst := edgeInstance()
	calls := 0
	ForEach(nil, inst, nil, Options{}, func(b Binding) bool {
		calls++
		return true
	})
	if calls != 1 {
		t.Errorf("empty pattern yielded %d bindings, want 1 (empty hom)", calls)
	}
}

func TestMissingRelationNoMatch(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"})
	atom := []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))}
	if Exists(atom, inst, nil, Options{}) {
		t.Error("matched against absent relation")
	}
}

func TestNoIndexAgreesWithIndexed(t *testing.T) {
	inst := rel.NewInstance()
	vals := []string{"a", "b", "c", "d"}
	for _, x := range vals {
		for _, y := range vals {
			if x != y {
				inst.Add("E", rel.Const(x), rel.Const(y))
			}
		}
	}
	pattern := []dep.Atom{
		dep.NewAtom("E", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("E", dep.Var("y"), dep.Var("z")),
		dep.NewAtom("E", dep.Var("z"), dep.Var("x")),
	}
	countWith := 0
	ForEach(pattern, inst, nil, Options{}, func(Binding) bool { countWith++; return true })
	countWithout := 0
	ForEach(pattern, inst, nil, Options{NoIndex: true}, func(Binding) bool { countWithout++; return true })
	if countWith != countWithout {
		t.Errorf("indexed=%d unindexed=%d disagree", countWith, countWithout)
	}
	if countWith == 0 {
		t.Error("no triangles found in K4")
	}
}

func TestBindingsAreFreshCopies(t *testing.T) {
	inst := edgeInstance([2]string{"a", "b"}, [2]string{"b", "c"})
	atom := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}
	var collected []Binding
	ForEach(atom, inst, nil, Options{}, func(b Binding) bool {
		collected = append(collected, b)
		return true
	})
	if len(collected) != 2 {
		t.Fatalf("got %d bindings", len(collected))
	}
	if collected[0]["x"] == collected[1]["x"] && collected[0]["y"] == collected[1]["y"] {
		t.Error("bindings alias the same map")
	}
}

func TestMatchAgainstNullValues(t *testing.T) {
	// Nulls in the instance are plain values for pattern matching.
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Null(1))
	atom := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}
	b, ok := FindOne(atom, inst, nil, Options{})
	if !ok || b["y"] != rel.Null(1) {
		t.Errorf("null not matched: %v %v", b, ok)
	}
	// A constant term never matches a null value.
	atomC := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Cst("b"))}
	if Exists(atomC, inst, nil, Options{}) {
		t.Error("constant term matched a null")
	}
}
