package hom

import (
	"sort"

	"repro/internal/dep"
	"repro/internal/par"
	"repro/internal/rel"
)

// Delta is a per-relation watermark splitting an instance into an old
// and a new (delta) segment: delta[R] is the number of tuples of R that
// are old — the prefix of R's tuple list, since instances append new
// tuples at the end. Relations absent from the map have no old tuples,
// i.e. every tuple counts as new. A nil Delta means "no watermark": the
// delta-constrained entry points then degrade to full enumeration.
//
// The chase maintains one Delta per dependency, recording the instance
// sizes at the dependency's previous trigger collection. Equality
// merges (egd steps) rewrite tuples in place without shuffling indexes
// (rel.Instance.MergeValue), so counts stay valid across merges; the
// rewritten old tuples are carried separately as the Changed lists of a
// DeltaSpec. Only the legacy rebuild path (chase.Options.RebuildMerges)
// still invalidates watermarks back to nil.
type Delta map[string]int

// Names returns the watermark's relation names in sorted order — the
// deterministic iteration the codec and the exposition paths need when
// walking a Delta.
func (d Delta) Names() []string {
	names := make([]string, 0, len(d))
	for n := range d {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DeltaSpec is the full semi-naive watermark: the per-relation counts
// splitting each relation into old and new segments, plus the
// merged-value delta — for each relation, the sorted indexes of old
// tuples whose content was rewritten by egd merges since the counts
// were taken. A binding is "new" if it touches a new tuple or a changed
// one; bindings over unchanged old tuples were either fired or
// satisfied when the watermark was taken, and both properties survive
// merges (substitution maps satisfied instances onto satisfied
// instances).
//
// Changed lists must hold live (non-tombstoned) indexes strictly below
// the corresponding Old count; a nil Old requests full enumeration
// regardless of Changed.
type DeltaSpec struct {
	Old     Delta
	Changed map[string][]int
}

// oldCount returns the old-segment length for the relation, clamped to
// the relation's current size (a stale watermark must never make the
// delta segment negative).
func (d Delta) oldCount(r *rel.Relation) int {
	n := d[r.Name()]
	if l := r.Len(); n > l {
		return l
	}
	return n
}

// deltaHit pairs a collected binding with the tuple-index vector the
// search chose along the join order. Because every candidate list is
// scanned in ascending tuple order, the unconstrained enumeration emits
// bindings exactly in lexicographic vector order — sorting the
// per-slot results by vector therefore reproduces the order Enumerate
// (and ForEach) would produce.
type deltaHit struct {
	vec []int
	b   Binding
}

// EnumerateDelta is the semi-naive counterpart of Enumerate: it returns
// every homomorphism from the atoms into the instance that uses at
// least one new tuple (per the delta watermark), in exactly the
// relative order Enumerate produces them. Bindings whose atoms all
// match old tuples are skipped without being enumerated — the caller
// guarantees it has already processed them (this is the chase's
// invariant: a trigger over round-k facts was either satisfied or fired
// by round k+1, and egd merges reset the watermark).
//
// A nil delta requests a full enumeration; so does an all-zero one
// (the first chase round seeds the delta with the whole instance). The
// keep filter follows the Enumerate contract: it may run concurrently
// and must only read shared state.
//
// The decomposition is the textbook one: for each position s in the
// join order, pin atom s to the delta segment, atoms before s to the
// old segment, and leave atoms after s unconstrained. The slots
// partition the wanted bindings by the first join position that touches
// a new tuple, so no deduplication is needed; slots run in parallel
// under opts.Parallelism and the merged result is re-sorted into the
// serial enumeration order.
func EnumerateDelta(atoms []dep.Atom, inst *rel.Instance, init Binding, delta Delta, opts Options, keep func(Binding) bool) []Binding {
	return EnumerateDeltaSpec(atoms, inst, init, DeltaSpec{Old: delta}, opts, keep)
}

// deltaSlot is one pinned search of the semi-naive decomposition: atom
// `atom` of the join order restricted either to the new segment of its
// relation (changed == nil) or to the explicit changed-index list.
type deltaSlot struct {
	atom    int
	changed []int
}

// EnumerateDeltaSpec is EnumerateDelta extended with the merged-value
// delta: it returns every homomorphism that uses at least one new tuple
// or one changed (merge-rewritten) tuple, in exactly the relative order
// Enumerate produces them, and each such binding exactly once.
//
// The decomposition generalizes the textbook one: count slots pin atom
// s to the delta segment and atoms before s to the old segment; changed
// slots pin atom s to the changed-index list instead. Count slots are
// mutually disjoint as before, but a binding can combine changed tuples
// with new ones and so surface from several slots — the merged,
// vector-sorted result is deduplicated by vector (equal vectors denote
// the same binding).
func EnumerateDeltaSpec(atoms []dep.Atom, inst *rel.Instance, init Binding, spec DeltaSpec, opts Options, keep func(Binding) bool) []Binding {
	if spec.Old == nil {
		return Enumerate(atoms, inst, init, opts, keep)
	}
	if len(atoms) == 0 {
		// An empty body has a single (empty) trigger, independent of any
		// facts; it was handled when the watermark was first taken.
		return nil
	}
	hasNew, allNew := false, true
	for _, a := range atoms {
		r := inst.Relation(a.Rel)
		if r == nil || r.Len() == 0 {
			return nil // an empty body relation admits no homomorphism at all
		}
		old := spec.Old.oldCount(r)
		if old < r.Len() || len(spec.Changed[a.Rel]) > 0 {
			hasNew = true
		}
		if old > 0 {
			allNew = false
		}
	}
	if !hasNew {
		return nil
	}
	if allNew {
		// Whole instance is delta: the plain enumeration is equivalent
		// and fans out with better granularity (per-candidate chunks).
		return Enumerate(atoms, inst, init, opts, keep)
	}

	base := Binding{}
	for k, v := range init {
		base[k] = v
	}
	order := orderAtoms(atoms, base)

	// Viable slots: the pinned atom needs a nonempty delta segment (or
	// changed list) and every atom before it a nonempty old segment.
	slots := make([]deltaSlot, 0, len(order))
	for s := range order {
		ok := true
		for i := 0; i < s; i++ {
			if spec.Old.oldCount(inst.Relation(order[i].Rel)) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rs := inst.Relation(order[s].Rel)
		if spec.Old.oldCount(rs) < rs.Len() {
			slots = append(slots, deltaSlot{atom: s})
		}
		if ch := spec.Changed[order[s].Rel]; len(ch) > 0 {
			slots = append(slots, deltaSlot{atom: s, changed: ch})
		}
	}
	if len(slots) == 0 {
		return nil
	}

	results := make([][]deltaHit, len(slots))
	if degree := par.Degree(opts.Parallelism); degree > 1 && len(slots) > 1 {
		par.Do(len(slots), degree, opts.Seed, func(k int) {
			results[k] = enumerateSlot(order, inst, opts, base.Clone(), spec.Old, slots[k], keep)
		})
	} else {
		for k, s := range slots {
			results[k] = enumerateSlot(order, inst, opts, base, spec.Old, s, keep)
		}
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	hits := make([]deltaHit, 0, total)
	for _, rs := range results {
		hits = append(hits, rs...)
	}
	sort.Slice(hits, func(i, j int) bool { return lexLess(hits[i].vec, hits[j].vec) })
	out := make([]Binding, 0, len(hits))
	for i, h := range hits {
		if i > 0 && lexEqual(hits[i-1].vec, h.vec) {
			continue // same vector ⇒ same binding, surfaced by another slot
		}
		out = append(out, h.b)
	}
	return out
}

// enumerateSlot runs one slot of the semi-naive decomposition: a
// backtracking search with the slot atom pinned to the delta segment or
// to the changed-index list, earlier atoms pinned to the old segment,
// later atoms unconstrained. Each hit carries its tuple-index vector
// for the merge sort.
func enumerateSlot(order []dep.Atom, inst *rel.Instance, opts Options, base Binding, delta Delta, slot deltaSlot, keep func(Binding) bool) []deltaHit {
	n := len(order)
	low := make([]int, n)
	high := make([]int, n)
	vec := make([]int, n)
	const maxInt = int(^uint(0) >> 1)
	for i, a := range order {
		low[i], high[i] = 0, maxInt
		old := delta.oldCount(inst.Relation(a.Rel))
		switch {
		case i < slot.atom:
			high[i] = old
		case i == slot.atom && slot.changed == nil:
			low[i] = old
		}
	}
	var hits []deltaHit
	s := newSearcher(inst, opts, false, nil)
	defer s.release()
	s.low, s.high, s.vec = low, high, vec
	if slot.changed != nil {
		only := make([][]int, n)
		only[slot.atom] = slot.changed
		s.only = only
	}
	s.fn = func(b Binding) bool {
		if keep == nil || keep(b) {
			hits = append(hits, deltaHit{vec: append([]int(nil), vec...), b: b.Clone()})
		}
		return true
	}
	s.match(order, 0, base)
	return hits
}

// lexEqual reports whether two tuple-index vectors are identical.
func lexEqual(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lexLess orders tuple-index vectors lexicographically; vectors of the
// same enumeration always have equal length.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
