package hom

import (
	"sort"

	"repro/internal/dep"
	"repro/internal/par"
	"repro/internal/rel"
)

// Delta is a per-relation watermark splitting an instance into an old
// and a new (delta) segment: delta[R] is the number of tuples of R that
// are old — the prefix of R's tuple list, since instances append new
// tuples at the end. Relations absent from the map have no old tuples,
// i.e. every tuple counts as new. A nil Delta means "no watermark": the
// delta-constrained entry points then degrade to full enumeration.
//
// The chase maintains one Delta per dependency, recording the instance
// sizes at the dependency's previous trigger collection; equality
// merges (egd steps) rebuild the instance and shuffle tuple indexes, so
// they must invalidate every watermark back to nil.
type Delta map[string]int

// oldCount returns the old-segment length for the relation, clamped to
// the relation's current size (a stale watermark must never make the
// delta segment negative).
func (d Delta) oldCount(r *rel.Relation) int {
	n := d[r.Name()]
	if l := r.Len(); n > l {
		return l
	}
	return n
}

// deltaHit pairs a collected binding with the tuple-index vector the
// search chose along the join order. Because every candidate list is
// scanned in ascending tuple order, the unconstrained enumeration emits
// bindings exactly in lexicographic vector order — sorting the
// per-slot results by vector therefore reproduces the order Enumerate
// (and ForEach) would produce.
type deltaHit struct {
	vec []int
	b   Binding
}

// EnumerateDelta is the semi-naive counterpart of Enumerate: it returns
// every homomorphism from the atoms into the instance that uses at
// least one new tuple (per the delta watermark), in exactly the
// relative order Enumerate produces them. Bindings whose atoms all
// match old tuples are skipped without being enumerated — the caller
// guarantees it has already processed them (this is the chase's
// invariant: a trigger over round-k facts was either satisfied or fired
// by round k+1, and egd merges reset the watermark).
//
// A nil delta requests a full enumeration; so does an all-zero one
// (the first chase round seeds the delta with the whole instance). The
// keep filter follows the Enumerate contract: it may run concurrently
// and must only read shared state.
//
// The decomposition is the textbook one: for each position s in the
// join order, pin atom s to the delta segment, atoms before s to the
// old segment, and leave atoms after s unconstrained. The slots
// partition the wanted bindings by the first join position that touches
// a new tuple, so no deduplication is needed; slots run in parallel
// under opts.Parallelism and the merged result is re-sorted into the
// serial enumeration order.
func EnumerateDelta(atoms []dep.Atom, inst *rel.Instance, init Binding, delta Delta, opts Options, keep func(Binding) bool) []Binding {
	if delta == nil {
		return Enumerate(atoms, inst, init, opts, keep)
	}
	if len(atoms) == 0 {
		// An empty body has a single (empty) trigger, independent of any
		// facts; it was handled when the watermark was first taken.
		return nil
	}
	hasNew, allNew := false, true
	for _, a := range atoms {
		r := inst.Relation(a.Rel)
		if r == nil || r.Len() == 0 {
			return nil // an empty body relation admits no homomorphism at all
		}
		old := delta.oldCount(r)
		if old < r.Len() {
			hasNew = true
		}
		if old > 0 {
			allNew = false
		}
	}
	if !hasNew {
		return nil
	}
	if allNew {
		// Whole instance is delta: the plain enumeration is equivalent
		// and fans out with better granularity (per-candidate chunks).
		return Enumerate(atoms, inst, init, opts, keep)
	}

	base := Binding{}
	for k, v := range init {
		base[k] = v
	}
	order := orderAtoms(atoms, base)

	// Viable slots: the pinned atom needs a nonempty delta segment and
	// every atom before it a nonempty old segment.
	slots := make([]int, 0, len(order))
	for s := range order {
		rs := inst.Relation(order[s].Rel)
		if delta.oldCount(rs) == rs.Len() {
			continue
		}
		ok := true
		for i := 0; i < s; i++ {
			if delta.oldCount(inst.Relation(order[i].Rel)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			slots = append(slots, s)
		}
	}
	if len(slots) == 0 {
		return nil
	}

	results := make([][]deltaHit, len(slots))
	if degree := par.Degree(opts.Parallelism); degree > 1 && len(slots) > 1 {
		par.Do(len(slots), degree, opts.Seed, func(k int) {
			results[k] = enumerateSlot(order, inst, opts, base.Clone(), delta, slots[k], keep)
		})
	} else {
		for k, s := range slots {
			results[k] = enumerateSlot(order, inst, opts, base, delta, s, keep)
		}
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	hits := make([]deltaHit, 0, total)
	for _, rs := range results {
		hits = append(hits, rs...)
	}
	sort.Slice(hits, func(i, j int) bool { return lexLess(hits[i].vec, hits[j].vec) })
	out := make([]Binding, len(hits))
	for i, h := range hits {
		out[i] = h.b
	}
	return out
}

// enumerateSlot runs one slot of the semi-naive decomposition: a
// backtracking search with atom `slot` pinned to the delta segment,
// earlier atoms pinned to the old segment, later atoms unconstrained.
// Each hit carries its tuple-index vector for the merge sort.
func enumerateSlot(order []dep.Atom, inst *rel.Instance, opts Options, base Binding, delta Delta, slot int, keep func(Binding) bool) []deltaHit {
	n := len(order)
	low := make([]int, n)
	high := make([]int, n)
	vec := make([]int, n)
	const maxInt = int(^uint(0) >> 1)
	for i, a := range order {
		low[i], high[i] = 0, maxInt
		old := delta.oldCount(inst.Relation(a.Rel))
		switch {
		case i < slot:
			high[i] = old
		case i == slot:
			low[i] = old
		}
	}
	var hits []deltaHit
	s := newSearcher(inst, opts, false, nil)
	defer s.release()
	s.low, s.high, s.vec = low, high, vec
	s.fn = func(b Binding) bool {
		if keep == nil || keep(b) {
			hits = append(hits, deltaHit{vec: append([]int(nil), vec...), b: b.Clone()})
		}
		return true
	}
	s.match(order, 0, base)
	return hits
}

// lexLess orders tuple-index vectors lexicographically; vectors of the
// same enumeration always have equal length.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
