package hom

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/par"
	"repro/internal/rel"
)

// blockCacheMinBlocks gates the memoizing cache: with few blocks the
// signature hashing costs more than the duplicate checks it saves. A
// variable so tests can force caching on small decompositions.
var blockCacheMinBlocks = 16

// containsChunkMin gates the chunked containment scan for large
// null-free blocks. A variable so tests can force chunking.
var containsChunkMin = 256

// BlockSignature returns a canonical encoding of the block, invariant
// under renaming of its labeled nulls: nulls are renumbered by first
// occurrence across the block's facts. Two blocks with equal signatures
// are isomorphic up to a bijective null renaming, and therefore have a
// homomorphism into any fixed instance either both or neither — the
// property the memoizing block cache relies on. (The converse does not
// hold: isomorphic blocks whose facts are ordered differently may get
// different signatures; that only costs a cache miss, never a wrong
// verdict.)
func BlockSignature(b Block) string {
	var sb strings.Builder
	ren := make(map[int]int, len(b.Nulls))
	for _, f := range b.Facts {
		sb.WriteByte(0)
		sb.WriteString(f.Rel)
		for _, v := range f.Args {
			if v.IsNull() {
				id, ok := ren[v.NullID()]
				if !ok {
					id = len(ren)
					ren[v.NullID()] = id
				}
				sb.WriteByte(1)
				sb.WriteString(strconv.Itoa(id))
			} else {
				sb.WriteByte(2)
				sb.WriteString(v.ConstText())
			}
		}
	}
	return sb.String()
}

// blockCache memoizes per-signature verdicts of block-into-instance
// homomorphism checks. Blocks that are copies of each other up to null
// renaming — thousands of them in the LAV and genomic chase results —
// share a single search. A cache is scoped to one target instance; it
// is safe for concurrent use by the workers of one CheckBlocks call.
type blockCache struct {
	mu sync.RWMutex
	m  map[string]bool
}

func (c *blockCache) lookup(sig string) (verdict, ok bool) {
	c.mu.RLock()
	verdict, ok = c.m[sig]
	c.mu.RUnlock()
	return verdict, ok
}

func (c *blockCache) store(sig string, verdict bool) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]bool)
	}
	c.m[sig] = verdict
	c.mu.Unlock()
}

// CheckBlocks reports the index of the first block (in input order)
// with no homomorphism into inst that is the identity on constants, or
// -1 when every block maps. It is the per-block loop of the Figure 3
// algorithm (via Proposition 1), run across opts.Parallelism workers
// with early cancellation once a failing block is found, and memoized
// so blocks isomorphic up to null renaming are checked once. The result
// is deterministic — always the minimal failing index, exactly what a
// serial left-to-right scan returns.
//
// inst must not be mutated for the duration of the call (the
// freeze-after-build discipline of DESIGN.md §8).
//
// When opts.Ctx is canceled mid-call the returned index is meaningless
// (cancellation is surfaced as a rejection so the early-cancellation
// machinery stops the remaining workers); callers that set Ctx must
// check Ctx.Err() after the call and discard the result when non-nil.
func CheckBlocks(blocks []Block, inst *rel.Instance, opts Options) int {
	degree := par.Degree(opts.Parallelism)
	var cache *blockCache
	if len(blocks) >= blockCacheMinBlocks {
		cache = &blockCache{}
	}
	check := func(i int) bool {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			return false
		}
		b := blocks[i]
		if cache == nil || len(b.Nulls) == 0 {
			// Null-free blocks are containment checks; memoizing them
			// would cache a scan cheaper than the signature itself.
			return blockHomExists(b, inst, opts)
		}
		sig := BlockSignature(b)
		if verdict, ok := cache.lookup(sig); ok {
			return verdict
		}
		verdict := blockHomExists(b, inst, opts)
		cache.store(sig, verdict)
		return verdict
	}
	return par.FirstReject(len(blocks), degree, check)
}

// blockHomExists checks one block; per Proposition 1 of the paper, a
// homomorphism from k to i exists iff each block maps independently.
func blockHomExists(block Block, i *rel.Instance, opts Options) bool {
	if len(block.Nulls) == 0 {
		// A null-free block maps by the identity: containment check,
		// chunked across workers when the block is large (the common
		// shape for families with full Σts heads, where I_can is one
		// giant ground block).
		degree := par.Degree(opts.Parallelism)
		if degree > 1 && len(block.Facts) >= containsChunkMin {
			chunks := par.Chunks(len(block.Facts), degree*enumerateChunksPerWorker)
			return par.FirstReject(len(chunks), degree, func(c int) bool {
				for _, f := range block.Facts[chunks[c][0]:chunks[c][1]] {
					if !i.Contains(f) {
						return false
					}
				}
				return true
			}) < 0
		}
		for _, f := range block.Facts {
			if !i.Contains(f) {
				return false
			}
		}
		return true
	}
	return Exists(blockAtoms(block), i, nil, opts)
}
