package hom

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/dep"
	"repro/internal/rel"
)

func bindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%v;", k, b[k])
	}
	return sb.String()
}

// deltaReference computes what EnumerateDelta must return: the full
// enumeration order, minus the bindings that already exist against the
// old prefix of the instance (distinct tuple-index vectors yield
// distinct bindings here because relations deduplicate tuples, so the
// set difference is exact).
func deltaReference(atoms []dep.Atom, full, old *rel.Instance, opts Options) []Binding {
	seen := map[string]bool{}
	for _, b := range Enumerate(atoms, old, nil, opts, nil) {
		seen[bindingKey(b)] = true
	}
	var out []Binding
	for _, b := range Enumerate(atoms, full, nil, opts, nil) {
		if !seen[bindingKey(b)] {
			out = append(out, b)
		}
	}
	return out
}

// buildSplitInstance adds nOld then nNew random edges to R (and a few
// to S), returning the instance, the old-prefix copy, and the delta
// watermark taken between the two phases.
func buildSplitInstance(rng *rand.Rand, nOld, nNew int) (full, old *rel.Instance, delta Delta) {
	full = rel.NewInstance()
	old = rel.NewInstance()
	for k := 0; k < nOld; k++ {
		a := rel.Const(fmt.Sprintf("v%d", rng.Intn(8)))
		b := rel.Const(fmt.Sprintf("v%d", rng.Intn(8)))
		full.Add("R", a, b)
		old.Add("R", a, b)
		if k%3 == 0 {
			full.Add("S", b, a)
			old.Add("S", b, a)
		}
	}
	delta = Delta(full.TupleCounts())
	for k := 0; k < nNew; k++ {
		full.Add("R", rel.Const(fmt.Sprintf("v%d", rng.Intn(8))), rel.Const(fmt.Sprintf("v%d", rng.Intn(8))))
		if k%4 == 0 {
			full.Add("S", rel.Const(fmt.Sprintf("v%d", rng.Intn(8))), rel.Const(fmt.Sprintf("w%d", rng.Intn(4))))
		}
	}
	return full, old, delta
}

var deltaTestPatterns = [][]dep.Atom{
	{dep.NewAtom("R", dep.Var("x"), dep.Var("y"))},
	{dep.NewAtom("R", dep.Var("x"), dep.Var("y")), dep.NewAtom("R", dep.Var("y"), dep.Var("z"))},
	{dep.NewAtom("R", dep.Var("x"), dep.Var("y")), dep.NewAtom("S", dep.Var("y"), dep.Var("z"))},
	{dep.NewAtom("R", dep.Var("x"), dep.Var("x"))},
	{dep.NewAtom("S", dep.Var("x"), dep.Var("y")), dep.NewAtom("R", dep.Var("y"), dep.Var("z")), dep.NewAtom("R", dep.Var("z"), dep.Var("w"))},
}

// TestEnumerateDeltaMatchesReference: on random old/new instance
// splits, EnumerateDelta returns exactly the full enumeration minus the
// old-only bindings, in the full enumeration's order, at every
// parallelism setting and with and without indexes.
func TestEnumerateDeltaMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		full, old, delta := buildSplitInstance(rng, 2+rng.Intn(12), rng.Intn(10))
		full.Freeze()
		old.Freeze()
		for pi, atoms := range deltaTestPatterns {
			want := deltaReference(atoms, full, old, Options{})
			for _, opts := range []Options{{}, {Parallelism: 4}, {NoIndex: true}, {NoIndex: true, Parallelism: 4}} {
				got := EnumerateDelta(atoms, full, nil, delta, opts, nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d pattern %d opts %+v: got %d bindings, want %d", trial, pi, opts, len(got), len(want))
				}
				for i := range got {
					if bindingKey(got[i]) != bindingKey(want[i]) {
						t.Fatalf("trial %d pattern %d opts %+v: binding %d is %s, want %s (order or content diverged)",
							trial, pi, opts, i, bindingKey(got[i]), bindingKey(want[i]))
					}
				}
			}
		}
	}
}

// TestEnumerateDeltaDegenerateCases: nil and all-zero deltas degrade to
// the full enumeration; a delta with no new tuples returns nothing; a
// keep filter applies on top of the delta constraint.
func TestEnumerateDeltaDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	full, _, delta := buildSplitInstance(rng, 6, 5)
	full.Freeze()
	atoms := deltaTestPatterns[1]
	fullEnum := Enumerate(atoms, full, nil, Options{}, nil)

	if got := EnumerateDelta(atoms, full, nil, nil, Options{}, nil); len(got) != len(fullEnum) {
		t.Fatalf("nil delta: got %d bindings, want full %d", len(got), len(fullEnum))
	}
	if got := EnumerateDelta(atoms, full, nil, Delta{}, Options{}, nil); len(got) != len(fullEnum) {
		t.Fatalf("all-new delta: got %d bindings, want full %d", len(got), len(fullEnum))
	}
	if got := EnumerateDelta(atoms, full, nil, Delta(full.TupleCounts()), Options{}, nil); len(got) != 0 {
		t.Fatalf("no-new delta: got %d bindings, want none", len(got))
	}
	if got := EnumerateDelta(nil, full, nil, delta, Options{}, nil); got != nil {
		t.Fatalf("empty atom list with a watermark: got %d bindings, want none", len(got))
	}

	all := EnumerateDelta(atoms, full, nil, delta, Options{}, nil)
	kept := EnumerateDelta(atoms, full, nil, delta, Options{}, func(b Binding) bool {
		return b["x"] == rel.Const("v0")
	})
	for _, b := range kept {
		if b["x"] != rel.Const("v0") {
			t.Fatalf("keep filter leaked binding %s", bindingKey(b))
		}
	}
	if len(kept) > len(all) {
		t.Fatalf("keep filter grew the result: %d > %d", len(kept), len(all))
	}

	// A stale watermark larger than the relation (possible after an
	// instance shrinks) clamps instead of panicking.
	over := Delta{"R": 1 << 30, "S": 1 << 30}
	if got := EnumerateDelta(atoms, full, nil, over, Options{}, nil); len(got) != 0 {
		t.Fatalf("oversized watermark: got %d bindings, want none", len(got))
	}
}
