// Package hom implements homomorphism search: satisfaction of
// conjunctions of atoms in instances (the workhorse of the chase, of
// conjunctive-query evaluation, and of the ExistsSolution algorithm),
// homomorphisms between instances with labeled nulls, and the block
// decomposition of Definition 10 of the peer data exchange paper.
package hom

import (
	"context"
	"sort"
	"sync"

	"repro/internal/dep"
	"repro/internal/rel"
)

// Binding maps variable names to values. Bindings returned by the
// search functions are fresh copies and may be retained by callers.
type Binding map[string]rel.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Options controls the homomorphism search.
type Options struct {
	// NoIndex disables the per-position indexes of relations, forcing
	// full scans. It exists only for the ablation benchmarks.
	NoIndex bool
	// Parallelism bounds the worker count of the parallel entry points
	// (Enumerate, CheckBlocks, InstanceHomExists): 0 means GOMAXPROCS,
	// 1 forces the serial path, n > 1 uses n workers. Results are
	// byte-identical at every setting; the knob only trades wall-clock
	// for cores. Single-homomorphism searches (Exists, FindOne,
	// ForEach) always run serially — they are the inner loops the
	// parallel layers fan out over.
	Parallelism int
	// Seed perturbs how parallel work is distributed across workers
	// (see par.Do). It never affects results; 0 is the deterministic
	// default distribution.
	Seed int64
	// Ctx, when non-nil, lets long searches be abandoned: the
	// backtracking searcher polls it periodically and stops enumerating
	// once it is canceled. A search cut short this way may return a
	// spurious "no homomorphism" — callers that set Ctx MUST check
	// Ctx.Err() after the search and discard the result when it is
	// non-nil (this is what the chase, the solvers, and CheckBlocks
	// do). nil means never canceled.
	Ctx context.Context
}

// ForEach enumerates homomorphisms from the conjunction of atoms into
// the instance, extending the initial binding (which may be nil). It
// calls fn with each complete binding; fn returns false to stop the
// enumeration. ForEach reports whether the enumeration ran to
// completion (true) or was stopped by fn (false).
//
// Variables already present in init are fixed; constants in atoms must
// match constant values in the instance exactly. Labeled nulls in the
// instance are matched like any other value.
func ForEach(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options, fn func(Binding) bool) bool {
	if len(atoms) == 0 {
		b := init
		if b == nil {
			b = Binding{}
		}
		return fn(b.Clone())
	}
	s := newSearcher(inst, opts, true, fn)
	defer s.release()
	b := Binding{}
	for k, v := range init {
		b[k] = v
	}
	order := orderAtoms(atoms, b)
	return s.match(order, 0, b)
}

// Exists reports whether at least one homomorphism from the atoms into
// the instance extends init. When init is non-nil it is used as the
// live search binding — extended and fully restored before Exists
// returns — so the hot satisfaction checks of the chase pay no map
// copy. Callers must not read init from other goroutines during the
// call.
func Exists(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options) bool {
	if sat, ok := groundSatisfied(atoms, inst, init); ok {
		return sat
	}
	found := false
	// Internal no-clone path: the callback discards the binding, so the
	// per-solution copy of the public ForEach contract is wasted work.
	s := newSearcher(inst, opts, false, func(Binding) bool {
		found = true
		return false
	})
	defer s.release()
	b := init
	if b == nil {
		b = Binding{}
	}
	order := orderAtoms(atoms, b)
	s.match(order, 0, b)
	return found
}

// groundSatisfied handles the fully bound case without a backtracking
// search: when every term of every atom is a constant or bound by init,
// a homomorphism exists iff each grounded atom is a fact of the
// instance. This is the hot shape of the restricted chase's
// satisfaction re-checks for full tgds.
func groundSatisfied(atoms []dep.Atom, inst *rel.Instance, init Binding) (sat, ok bool) {
	for _, a := range atoms {
		for _, term := range a.Args {
			if term.IsConst {
				continue
			}
			if _, bound := init[term.Name]; !bound {
				return false, false
			}
		}
	}
	var t rel.Tuple
	for _, a := range atoms {
		t = t[:0]
		for _, term := range a.Args {
			if term.IsConst {
				t = append(t, rel.Const(term.Name))
			} else {
				t = append(t, init[term.Name])
			}
		}
		r := inst.Relation(a.Rel)
		if r == nil || !r.Contains(t) {
			return false, true
		}
	}
	return true, true
}

// FindOne returns one homomorphism extending init, if any.
func FindOne(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options) (Binding, bool) {
	var out Binding
	ForEach(atoms, inst, init, opts, func(b Binding) bool {
		out = b
		return false
	})
	return out, out != nil
}

// orderAtoms produces a join order: greedily pick the atom with the
// most bound variables (breaking ties toward fewer unbound variables),
// simulating the bindings it would introduce. A good order keeps the
// backtracking search close to linear on the acyclic patterns that
// dominate chase bodies.
func orderAtoms(atoms []dep.Atom, init Binding) []dep.Atom {
	if len(atoms) <= 1 {
		// Nothing to order; the callers never mutate the slice. This is
		// the hot shape of the chase's per-trigger head checks.
		return atoms
	}
	bound := make(map[string]bool, len(init))
	for v := range init {
		bound[v] = true
	}
	remaining := make([]dep.Atom, len(atoms))
	copy(remaining, atoms)
	out := make([]dep.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		best, bestScore := 0, -1<<30
		for i, a := range remaining {
			nb, nu := 0, 0
			for _, t := range a.Args {
				switch {
				case t.IsConst:
					nb++
				case bound[t.Name]:
					nb++
				default:
					nu++
				}
			}
			score := nb*16 - nu
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		out = append(out, a)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if !t.IsConst {
				bound[t.Name] = true
			}
		}
	}
	return out
}

// searcher carries the state of one backtracking search: the target
// instance, options, the solution callback, and per-depth scratch
// buffers reused across candidates so the inner loop stays
// allocation-free. Searchers are pooled; each concurrent search uses
// its own.
type searcher struct {
	inst  *rel.Instance
	opts  Options
	fn    func(Binding) bool
	clone bool // hand fn a fresh copy (public ForEach contract)

	// newly[i] holds the variables bound at depth i, reset per
	// candidate; allIdx[i] is the full-scan candidate buffer for depth
	// i, used when no position index applies.
	newly  [][]string
	allIdx [][]int

	// low/high, when non-nil, constrain the tuple indexes tried at each
	// depth to [low[i], high[i]) — the semi-naive enumeration pins atoms
	// to the old or the new (delta) segment of their relation this way.
	// only, when non-nil, pins a depth with a non-nil entry to exactly
	// that sorted list of tuple indexes — the merged-value delta pins an
	// atom to the tuples rewritten by egd merges this way. vec, when
	// non-nil, records the tuple index chosen at each depth, so complete
	// bindings can be merged back into the order the unconstrained
	// search would produce (see EnumerateDeltaSpec).
	low, high []int
	only      [][]int
	vec       []int

	// ctxTick counts match calls between polls of opts.Ctx; canceled
	// latches a cancellation observed mid-search so the whole search
	// unwinds without further polling.
	ctxTick  int
	canceled bool
}

// ctxPollEvery is how many match calls pass between polls of the
// search context. Polling costs a mutex acquisition inside the context,
// so it is amortized; the bound keeps worst-case cancellation latency
// in the microseconds on any realistic instance.
const ctxPollEvery = 1024

// cancelSearch reports whether the search's context has been canceled,
// polling it every ctxPollEvery calls.
func (s *searcher) cancelSearch() bool {
	if s.opts.Ctx == nil {
		return false
	}
	if s.canceled {
		return true
	}
	s.ctxTick++
	if s.ctxTick%ctxPollEvery != 0 {
		return false
	}
	if s.opts.Ctx.Err() != nil {
		s.canceled = true
	}
	return s.canceled
}

var searcherPool = sync.Pool{New: func() any { return &searcher{} }}

func newSearcher(inst *rel.Instance, opts Options, clone bool, fn func(Binding) bool) *searcher {
	s := searcherPool.Get().(*searcher)
	s.inst, s.opts, s.clone, s.fn = inst, opts, clone, fn
	s.ctxTick, s.canceled = 0, false
	s.low, s.high, s.only, s.vec = nil, nil, nil, nil
	return s
}

func (s *searcher) release() {
	s.inst, s.fn, s.opts.Ctx = nil, nil, nil
	s.low, s.high, s.only, s.vec = nil, nil, nil, nil
	searcherPool.Put(s)
}

// match extends the binding over atoms[i:], calling the searcher's fn
// with every complete extension. It reports whether the enumeration ran
// to completion (true) or was stopped by fn (false).
func (s *searcher) match(atoms []dep.Atom, i int, b Binding) bool {
	if s.cancelSearch() {
		return false // abandon: caller must check opts.Ctx.Err()
	}
	if i == len(atoms) {
		if s.clone {
			return s.fn(b.Clone())
		}
		return s.fn(b)
	}
	a := atoms[i]
	r := s.inst.Relation(a.Rel)
	if r == nil {
		return true // no tuples: no matches for this atom; enumeration complete
	}
	for _, idx := range s.candidateTuples(r, a, b, i) {
		if !s.tryTuple(atoms, i, r, idx, b) {
			return false
		}
	}
	return true
}

// tryTuple attempts to unify atoms[i] with tuple idx of its relation
// under b and, on success, recurses into the remaining atoms. It
// reports whether the enumeration should continue.
func (s *searcher) tryTuple(atoms []dep.Atom, i int, r *rel.Relation, idx int, b Binding) bool {
	a := atoms[i]
	t := r.TupleAt(idx)
	if s.vec != nil {
		s.vec[i] = idx
	}
	for len(s.newly) <= i {
		s.newly = append(s.newly, nil)
	}
	newly := s.newly[i][:0]
	ok := true
	for j, term := range a.Args {
		v := t[j]
		if term.IsConst {
			if !v.IsConst() || v.ConstText() != term.Name {
				ok = false
				break
			}
			continue
		}
		if bv, bound := b[term.Name]; bound {
			if bv != v {
				ok = false
				break
			}
			continue
		}
		b[term.Name] = v
		newly = append(newly, term.Name)
	}
	s.newly[i] = newly
	cont := true
	if ok {
		cont = s.match(atoms, i+1, b)
	}
	for _, v := range s.newly[i] {
		delete(b, v)
	}
	return cont
}

// candidateTuples returns indexes of tuples possibly matching the atom
// under the current binding, using the most selective position index
// available, clipped to the searcher's per-depth index bounds when set.
// The returned slice is only valid until the next call at the same
// depth.
func (s *searcher) candidateTuples(r *rel.Relation, a dep.Atom, b Binding, depth int) []int {
	lo, hi := 0, r.Len()
	if s.low != nil {
		if l := s.low[depth]; l > lo {
			lo = l
		}
		if h := s.high[depth]; h < hi {
			hi = h
		}
		if lo >= hi {
			return nil
		}
	}
	if s.only != nil {
		if list := s.only[depth]; list != nil {
			// Pinned to an explicit (sorted, live) index list; clip to the
			// bounds like the position-index path does.
			list = list[sort.SearchInts(list, lo):]
			return list[:sort.SearchInts(list, hi)]
		}
	}
	if !s.opts.NoIndex {
		bestPos, bestVal, bestLen := -1, rel.Value{}, -1
		for j, term := range a.Args {
			var v rel.Value
			if term.IsConst {
				v = rel.Const(term.Name)
			} else if bv, bound := b[term.Name]; bound {
				v = bv
			} else {
				continue
			}
			l := len(r.MatchingAt(j, v))
			if bestLen == -1 || l < bestLen {
				bestPos, bestVal, bestLen = j, v, l
			}
		}
		if bestPos >= 0 {
			// Position-index lists hold ascending tuple indexes (they are
			// append-only as tuples arrive), so the bound clip is a binary
			// search, not a scan.
			list := r.MatchingAt(bestPos, bestVal)
			if s.low != nil {
				list = list[sort.SearchInts(list, lo):]
				list = list[:sort.SearchInts(list, hi)]
			}
			return list
		}
	}
	for len(s.allIdx) <= depth {
		s.allIdx = append(s.allIdx, nil)
	}
	all := s.allIdx[depth][:0]
	for i := lo; i < hi; i++ {
		// Tuple slots tombstoned by egd merges stay in [0, Len) but must
		// never match; the position-index path is clean by construction.
		if r.Live(i) {
			all = append(all, i)
		}
	}
	s.allIdx[depth] = all
	return all
}
