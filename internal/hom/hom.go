// Package hom implements homomorphism search: satisfaction of
// conjunctions of atoms in instances (the workhorse of the chase, of
// conjunctive-query evaluation, and of the ExistsSolution algorithm),
// homomorphisms between instances with labeled nulls, and the block
// decomposition of Definition 10 of the peer data exchange paper.
package hom

import (
	"repro/internal/dep"
	"repro/internal/rel"
)

// Binding maps variable names to values. Bindings returned by the
// search functions are fresh copies and may be retained by callers.
type Binding map[string]rel.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Options controls the homomorphism search.
type Options struct {
	// NoIndex disables the per-position indexes of relations, forcing
	// full scans. It exists only for the ablation benchmarks.
	NoIndex bool
}

// ForEach enumerates homomorphisms from the conjunction of atoms into
// the instance, extending the initial binding (which may be nil). It
// calls fn with each complete binding; fn returns false to stop the
// enumeration. ForEach reports whether the enumeration ran to
// completion (true) or was stopped by fn (false).
//
// Variables already present in init are fixed; constants in atoms must
// match constant values in the instance exactly. Labeled nulls in the
// instance are matched like any other value.
func ForEach(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options, fn func(Binding) bool) bool {
	if len(atoms) == 0 {
		b := init
		if b == nil {
			b = Binding{}
		}
		return fn(b.Clone())
	}
	b := Binding{}
	for k, v := range init {
		b[k] = v
	}
	order := orderAtoms(atoms, b)
	return match(order, 0, inst, b, opts, fn)
}

// Exists reports whether at least one homomorphism from the atoms into
// the instance extends init.
func Exists(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options) bool {
	found := false
	ForEach(atoms, inst, init, opts, func(Binding) bool {
		found = true
		return false
	})
	return found
}

// FindOne returns one homomorphism extending init, if any.
func FindOne(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options) (Binding, bool) {
	var out Binding
	ForEach(atoms, inst, init, opts, func(b Binding) bool {
		out = b
		return false
	})
	return out, out != nil
}

// orderAtoms produces a join order: greedily pick the atom with the
// most bound variables (breaking ties toward fewer unbound variables),
// simulating the bindings it would introduce. A good order keeps the
// backtracking search close to linear on the acyclic patterns that
// dominate chase bodies.
func orderAtoms(atoms []dep.Atom, init Binding) []dep.Atom {
	bound := make(map[string]bool, len(init))
	for v := range init {
		bound[v] = true
	}
	remaining := make([]dep.Atom, len(atoms))
	copy(remaining, atoms)
	out := make([]dep.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		best, bestScore := 0, -1<<30
		for i, a := range remaining {
			nb, nu := 0, 0
			for _, t := range a.Args {
				switch {
				case t.IsConst:
					nb++
				case bound[t.Name]:
					nb++
				default:
					nu++
				}
			}
			score := nb*16 - nu
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		a := remaining[best]
		out = append(out, a)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, t := range a.Args {
			if !t.IsConst {
				bound[t.Name] = true
			}
		}
	}
	return out
}

func match(atoms []dep.Atom, i int, inst *rel.Instance, b Binding, opts Options, fn func(Binding) bool) bool {
	if i == len(atoms) {
		return fn(b.Clone())
	}
	a := atoms[i]
	r := inst.Relation(a.Rel)
	if r == nil {
		return true // no tuples: no matches for this atom; enumeration complete
	}

	candidates := candidateTuples(r, a, b, opts)
	for _, idx := range candidates {
		t := r.TupleAt(idx)
		var newly []string
		ok := true
		for j, term := range a.Args {
			v := t[j]
			if term.IsConst {
				if !v.IsConst() || v.ConstText() != term.Name {
					ok = false
					break
				}
				continue
			}
			if bv, bound := b[term.Name]; bound {
				if bv != v {
					ok = false
					break
				}
				continue
			}
			b[term.Name] = v
			newly = append(newly, term.Name)
		}
		if ok {
			if !match(atoms, i+1, inst, b, opts, fn) {
				for _, v := range newly {
					delete(b, v)
				}
				return false
			}
		}
		for _, v := range newly {
			delete(b, v)
		}
	}
	return true
}

// candidateTuples returns indexes of tuples possibly matching the atom
// under the current binding, using the most selective position index
// available.
func candidateTuples(r *rel.Relation, a dep.Atom, b Binding, opts Options) []int {
	if opts.NoIndex {
		all := make([]int, r.Len())
		for i := range all {
			all[i] = i
		}
		return all
	}
	bestPos, bestVal, bestLen := -1, rel.Value{}, -1
	for j, term := range a.Args {
		var v rel.Value
		if term.IsConst {
			v = rel.Const(term.Name)
		} else if bv, bound := b[term.Name]; bound {
			v = bv
		} else {
			continue
		}
		l := len(r.MatchingAt(j, v))
		if bestLen == -1 || l < bestLen {
			bestPos, bestVal, bestLen = j, v, l
		}
	}
	if bestPos >= 0 {
		return r.MatchingAt(bestPos, bestVal)
	}
	all := make([]int, r.Len())
	for i := range all {
		all[i] = i
	}
	return all
}
