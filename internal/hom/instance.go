package hom

import (
	"strconv"

	"repro/internal/dep"
	"repro/internal/rel"
)

// nullVarName encodes a labeled null as a variable name that cannot
// collide with user variable names (which never start with "\x00").
func nullVarName(id int) string { return "\x00n" + strconv.Itoa(id) }

// InstanceAtoms renders the facts of an instance as a conjunction of
// atoms in which constants become constant terms and labeled nulls
// become variables. A homomorphism from the resulting conjunction into
// an instance I is exactly a homomorphism K -> I that is the identity on
// constants, as used throughout the paper.
func InstanceAtoms(k *rel.Instance) []dep.Atom {
	facts := k.Facts()
	atoms := make([]dep.Atom, 0, len(facts))
	for _, f := range facts {
		atoms = append(atoms, factAtom(f))
	}
	return atoms
}

// FactAtom renders one fact as an atom: constants become constant
// terms, labeled nulls become variables.
func FactAtom(f rel.Fact) dep.Atom { return factAtom(f) }

// NullVar returns the variable name FactAtom uses for the labeled null
// with the given label; it cannot collide with user variable names.
func NullVar(id int) string { return nullVarName(id) }

// BlockHomExists reports whether the block has a homomorphism into i
// that is the identity on constants. Null-free blocks reduce to a
// containment check.
func BlockHomExists(block Block, i *rel.Instance, opts Options) bool {
	return blockHomExists(block, i, opts)
}

func factAtom(f rel.Fact) dep.Atom {
	args := make([]dep.Term, len(f.Args))
	for i, v := range f.Args {
		if v.IsNull() {
			args[i] = dep.Var(nullVarName(v.NullID()))
		} else {
			args[i] = dep.Cst(v.ConstText())
		}
	}
	return dep.Atom{Rel: f.Rel, Args: args}
}

// InstanceHomExists reports whether there is a homomorphism from k to i
// that is the identity on constants (nulls of k may map to any value
// of i). The per-block checks run across opts.Parallelism workers (see
// CheckBlocks); the verdict is identical at any setting.
func InstanceHomExists(k, i *rel.Instance, opts Options) bool {
	return CheckBlocks(Blocks(k), i, opts) < 0
}

// FindInstanceHom returns a homomorphism from k to i as a map from the
// nulls of k to values of i, if one exists. Nulls absent from the map
// were not constrained (they do not occur in k).
func FindInstanceHom(k, i *rel.Instance, opts Options) (map[rel.Value]rel.Value, bool) {
	out := make(map[rel.Value]rel.Value)
	for _, block := range Blocks(k) {
		b, ok := FindOne(blockAtoms(block), i, nil, opts)
		if !ok {
			return nil, false
		}
		for name, v := range b {
			if id, isNull := decodeNullVar(name); isNull {
				out[rel.Null(id)] = v
			}
		}
	}
	return out, true
}

func blockAtoms(block Block) []dep.Atom {
	atoms := make([]dep.Atom, 0, len(block.Facts))
	for _, f := range block.Facts {
		atoms = append(atoms, factAtom(f))
	}
	return atoms
}

func decodeNullVar(name string) (int, bool) {
	if len(name) < 3 || name[0] != '\x00' || name[1] != 'n' {
		return 0, false
	}
	id, err := strconv.Atoi(name[2:])
	if err != nil {
		return 0, false
	}
	return id, true
}
