package hom

import (
	"repro/internal/dep"
	"repro/internal/par"
	"repro/internal/rel"
)

// enumerateMinCandidates gates the parallel fan-out: below this many
// top-level candidates the chunk bookkeeping costs more than it saves
// and Enumerate falls back to the serial scan. A variable so tests can
// force the parallel path on small inputs.
var enumerateMinCandidates = 128

// enumerateChunksPerWorker controls load balancing: more chunks than
// workers lets fast workers steal the tail of a skewed candidate list.
const enumerateChunksPerWorker = 4

// Enumerate returns every homomorphism from the conjunction of atoms
// into the instance extending init, in exactly the order ForEach
// produces them, regardless of opts.Parallelism. When keep is non-nil,
// only bindings it accepts are returned; keep may be called
// concurrently from multiple workers and must therefore be safe for
// concurrent use (in practice: it must only read shared state). The
// binding passed to keep is live search state — it must not be retained
// or mutated; the returned slice holds fresh copies.
//
// This is the trigger-collection primitive of the chase: the expensive
// enumeration (including keep's satisfaction checks) fans out across
// workers over the candidate tuples of the first join atom, while the
// merged result stays deterministic.
func Enumerate(atoms []dep.Atom, inst *rel.Instance, init Binding, opts Options, keep func(Binding) bool) []Binding {
	if len(atoms) == 0 {
		b := init
		if b == nil {
			b = Binding{}
		}
		if keep != nil && !keep(b) {
			return nil
		}
		return []Binding{b.Clone()}
	}
	base := Binding{}
	for k, v := range init {
		base[k] = v
	}
	order := orderAtoms(atoms, base)
	r := inst.Relation(order[0].Rel)
	if r == nil {
		return nil
	}

	// The top-level candidate list is computed once, exactly as the
	// serial search would, then either scanned in place or chunked
	// across workers.
	scratch := newSearcher(inst, opts, false, nil)
	candidates := scratch.candidateTuples(r, order[0], base, 0)

	degree := par.Degree(opts.Parallelism)
	if degree <= 1 || len(candidates) < enumerateMinCandidates {
		out := enumerateRange(order, inst, opts, base, r, candidates, keep)
		scratch.release()
		return out
	}
	// The scratch searcher owns the candidate buffer in the NoIndex
	// case; copy before handing ranges to workers.
	owned := make([]int, len(candidates))
	copy(owned, candidates)
	scratch.release()
	candidates = owned

	chunks := par.Chunks(len(candidates), degree*enumerateChunksPerWorker)
	results := make([][]Binding, len(chunks))
	par.Do(len(chunks), degree, opts.Seed, func(c int) {
		lo, hi := chunks[c][0], chunks[c][1]
		results[c] = enumerateRange(order, inst, opts, base.Clone(), r, candidates[lo:hi], keep)
	})
	var total int
	for _, rs := range results {
		total += len(rs)
	}
	out := make([]Binding, 0, total)
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out
}

// enumerateRange runs the serial backtracking search over the given
// top-level candidates, collecting (filtered) complete bindings. Each
// call uses its own searcher, so ranges can run concurrently.
func enumerateRange(order []dep.Atom, inst *rel.Instance, opts Options, b Binding, r *rel.Relation, candidates []int, keep func(Binding) bool) []Binding {
	var out []Binding
	s := newSearcher(inst, opts, false, func(b Binding) bool {
		if keep == nil || keep(b) {
			out = append(out, b.Clone())
		}
		return true
	})
	defer s.release()
	for _, idx := range candidates {
		s.tryTuple(order, 0, r, idx, b)
	}
	return out
}
