package hom

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dep"
	"repro/internal/rel"
)

// forceParallel shrinks the fan-out thresholds so the parallel paths
// are exercised on the small inputs tests use, restoring them on
// cleanup.
func forceParallel(t *testing.T) {
	t.Helper()
	oldEnum, oldCache, oldChunk := enumerateMinCandidates, blockCacheMinBlocks, containsChunkMin
	enumerateMinCandidates, blockCacheMinBlocks, containsChunkMin = 1, 1, 1
	t.Cleanup(func() {
		enumerateMinCandidates, blockCacheMinBlocks, containsChunkMin = oldEnum, oldCache, oldChunk
	})
}

func randomJoinInstance(rng *rand.Rand, n int) *rel.Instance {
	inst := rel.NewInstance()
	for k := 0; k < n; k++ {
		inst.Add("R", rel.Const(fmt.Sprintf("a%d", rng.Intn(n/2+1))), rel.Const(fmt.Sprintf("b%d", rng.Intn(n/2+1))))
	}
	for k := 0; k < n; k++ {
		inst.Add("S", rel.Const(fmt.Sprintf("b%d", rng.Intn(n/2+1))), rel.Const(fmt.Sprintf("c%d", rng.Intn(n/2+1))))
	}
	return inst
}

func bindingsEqual(a, b Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestEnumerateMatchesForEachOrder: Enumerate returns exactly the
// ForEach enumeration — same bindings, same order — at every
// parallelism level and seed, with and without a keep filter.
func TestEnumerateMatchesForEachOrder(t *testing.T) {
	forceParallel(t)
	atoms := []dep.Atom{
		dep.NewAtom("R", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("S", dep.Var("y"), dep.Var("z")),
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		inst := randomJoinInstance(rng, 10+rng.Intn(40))
		inst.Freeze()
		var want []Binding
		ForEach(atoms, inst, nil, Options{}, func(b Binding) bool {
			want = append(want, b)
			return true
		})
		keep := func(b Binding) bool { return b["x"] != b["z"] }
		var wantKept []Binding
		for _, b := range want {
			if keep(b) {
				wantKept = append(wantKept, b)
			}
		}
		for _, par := range []int{1, 2, 4} {
			for _, seed := range []int64{0, 7} {
				opts := Options{Parallelism: par, Seed: seed}
				got := Enumerate(atoms, inst, nil, opts, nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d par=%d seed=%d: %d bindings, want %d", trial, par, seed, len(got), len(want))
				}
				for i := range got {
					if !bindingsEqual(got[i], want[i]) {
						t.Fatalf("trial %d par=%d seed=%d: binding %d = %v, want %v", trial, par, seed, i, got[i], want[i])
					}
				}
				gotKept := Enumerate(atoms, inst, nil, opts, keep)
				if len(gotKept) != len(wantKept) {
					t.Fatalf("trial %d par=%d seed=%d: %d kept bindings, want %d", trial, par, seed, len(gotKept), len(wantKept))
				}
				for i := range gotKept {
					if !bindingsEqual(gotKept[i], wantKept[i]) {
						t.Fatalf("trial %d par=%d seed=%d: kept binding %d = %v, want %v", trial, par, seed, i, gotKept[i], wantKept[i])
					}
				}
			}
		}
	}
}

// TestEnumerateWithInitBinding: init bindings constrain the parallel
// enumeration exactly as they constrain ForEach.
func TestEnumerateWithInitBinding(t *testing.T) {
	forceParallel(t)
	atoms := []dep.Atom{
		dep.NewAtom("R", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("S", dep.Var("y"), dep.Var("z")),
	}
	inst := randomJoinInstance(rand.New(rand.NewSource(33)), 40)
	init := Binding{"x": rel.Const("a1")}
	var want []Binding
	ForEach(atoms, inst, init, Options{}, func(b Binding) bool {
		want = append(want, b)
		return true
	})
	got := Enumerate(atoms, inst, init, Options{Parallelism: 4}, nil)
	if len(got) != len(want) {
		t.Fatalf("got %d bindings, want %d", len(got), len(want))
	}
	for i := range got {
		if !bindingsEqual(got[i], want[i]) {
			t.Fatalf("binding %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestBlockSignatureRenamingInvariance: renaming the nulls of a block
// bijectively leaves the signature unchanged, and structurally
// different blocks get different signatures.
func TestBlockSignatureRenamingInvariance(t *testing.T) {
	mk := func(ids ...int) Block {
		inst := rel.NewInstance()
		inst.Add("Rec", rel.Const("p"), rel.Const("g"), rel.Null(ids[0]))
		inst.Add("Rec", rel.Const("p"), rel.Null(ids[1]), rel.Null(ids[0]))
		blocks := Blocks(inst)
		if len(blocks) != 1 {
			t.Fatalf("expected one block, got %d", len(blocks))
		}
		return blocks[0]
	}
	a := mk(1, 2)
	b := mk(70, 90)
	if BlockSignature(a) != BlockSignature(b) {
		t.Fatalf("signatures differ under null renaming:\n%q\n%q", BlockSignature(a), BlockSignature(b))
	}
	other := rel.NewInstance()
	other.Add("Rec", rel.Const("q"), rel.Const("g"), rel.Null(1))
	other.Add("Rec", rel.Const("q"), rel.Null(2), rel.Null(1))
	ob := Blocks(other)[0]
	if BlockSignature(a) == BlockSignature(ob) {
		t.Fatal("different blocks share a signature")
	}
	// Constant/null confusion must not collide: Rec(n1, "0") vs Rec("0", n1)
	// style mixes differ.
	x := rel.NewInstance()
	x.Add("T", rel.Null(1), rel.Const("0"))
	y := rel.NewInstance()
	y.Add("T", rel.Const("0"), rel.Null(1))
	if BlockSignature(Blocks(x)[0]) == BlockSignature(Blocks(y)[0]) {
		t.Fatal("signature confuses null and constant positions")
	}
}

// TestCheckBlocksMatchesSerial: on random instances, CheckBlocks at
// every parallelism level (with the cache and chunked-containment paths
// forced) returns exactly the first failing index of a serial scan.
func TestCheckBlocksMatchesSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		// k: many near-isomorphic single-null blocks plus ground facts;
		// i: a target that randomly misses some values, so some blocks
		// fail to map.
		k := rel.NewInstance()
		i := rel.NewInstance()
		nulls := 2 + rng.Intn(10)
		for nid := 1; nid <= nulls; nid++ {
			p := rel.Const(fmt.Sprintf("p%d", rng.Intn(6)))
			k.Add("Rec", p, rel.Null(nid))
		}
		for g := 0; g < rng.Intn(5); g++ {
			k.Add("G", rel.Const(fmt.Sprintf("g%d", g)))
			if rng.Intn(3) > 0 {
				i.Add("G", rel.Const(fmt.Sprintf("g%d", g)))
			}
		}
		for p := 0; p < 6; p++ {
			if rng.Intn(3) > 0 {
				i.Add("Rec", rel.Const(fmt.Sprintf("p%d", p)), rel.Const("v"))
			}
		}
		i.Freeze()
		blocks := Blocks(k)
		want := -1
		for idx, b := range blocks {
			if !blockHomExists(b, i, Options{Parallelism: 1}) {
				want = idx
				break
			}
		}
		for _, par := range []int{1, 2, 4} {
			got := CheckBlocks(blocks, i, Options{Parallelism: par})
			if got != want {
				t.Fatalf("trial %d par=%d: CheckBlocks=%d, serial scan=%d (%d blocks)", trial, par, got, want, len(blocks))
			}
		}
		if got := InstanceHomExists(k, i, Options{Parallelism: 4}); got != (want < 0) {
			t.Fatalf("trial %d: InstanceHomExists=%v, want %v", trial, got, want < 0)
		}
	}
}

// TestChunkedContainmentMatchesSerial: the chunked containment path for
// large null-free blocks agrees with the serial scan, including on the
// failing side.
func TestChunkedContainmentMatchesSerial(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		k := rel.NewInstance()
		i := rel.NewInstance()
		n := 50 + rng.Intn(100)
		missing := rng.Intn(n + 1) // index of a fact possibly withheld from i
		for f := 0; f < n; f++ {
			v := rel.Const(fmt.Sprintf("v%d", f))
			k.Add("F", v)
			if f != missing {
				i.Add("F", v)
			}
		}
		i.Freeze()
		blocks := Blocks(k)
		if len(blocks) != 1 || len(blocks[0].Nulls) != 0 {
			t.Fatalf("trial %d: expected one null-free block", trial)
		}
		want := missing >= n // contained iff nothing was withheld
		for _, par := range []int{1, 2, 4} {
			if got := blockHomExists(blocks[0], i, Options{Parallelism: par}); got != want {
				t.Fatalf("trial %d par=%d: got %v, want %v", trial, par, got, want)
			}
		}
	}
}
