package hom

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dep"
	"repro/internal/rel"
)

// TestFindOneRespectsInit: FindOne extends the initial binding rather
// than rebinding.
func TestFindOneRespectsInit(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	inst.Add("E", rel.Const("c"), rel.Const("d"))
	atoms := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))}
	b, ok := FindOne(atoms, inst, Binding{"x": rel.Const("c")}, Options{})
	if !ok || b["y"] != rel.Const("d") {
		t.Errorf("binding = %v ok=%v", b, ok)
	}
	if b["x"] != rel.Const("c") {
		t.Error("initial binding lost")
	}
}

// TestCrossProductPattern: disconnected atoms enumerate the full cross
// product.
func TestCrossProductPattern(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a1"))
	inst.Add("A", rel.Const("a2"))
	inst.Add("B", rel.Const("b1"))
	inst.Add("B", rel.Const("b2"))
	inst.Add("B", rel.Const("b3"))
	atoms := []dep.Atom{dep.NewAtom("A", dep.Var("x")), dep.NewAtom("B", dep.Var("y"))}
	count := 0
	ForEach(atoms, inst, nil, Options{}, func(Binding) bool { count++; return true })
	if count != 6 {
		t.Errorf("cross product = %d bindings, want 6", count)
	}
}

// TestSharedVariableAcrossAtoms: a variable shared between atoms of
// different relations constrains the join.
func TestSharedVariableAcrossAtoms(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("k"))
	inst.Add("B", rel.Const("k"), rel.Const("v"))
	inst.Add("B", rel.Const("m"), rel.Const("w"))
	atoms := []dep.Atom{dep.NewAtom("A", dep.Var("x")), dep.NewAtom("B", dep.Var("x"), dep.Var("y"))}
	count := 0
	ForEach(atoms, inst, nil, Options{}, func(b Binding) bool {
		if b["y"] != rel.Const("v") {
			t.Errorf("wrong join result: %v", b)
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("join produced %d results, want 1", count)
	}
}

// TestOrderAtomsCorrectness: the join-order heuristic never changes the
// result set, only the exploration order. Compare against a permutation
// of the same pattern on random instances.
func TestOrderAtomsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pattern := []dep.Atom{
		dep.NewAtom("E", dep.Var("x"), dep.Var("y")),
		dep.NewAtom("E", dep.Var("y"), dep.Var("z")),
		dep.NewAtom("F", dep.Var("z"), dep.Var("x")),
	}
	permuted := []dep.Atom{pattern[2], pattern[0], pattern[1]}
	for trial := 0; trial < 30; trial++ {
		inst := rel.NewInstance()
		for f := 0; f < 10; f++ {
			inst.Add("E", rel.Const(fmt.Sprintf("v%d", rng.Intn(4))), rel.Const(fmt.Sprintf("v%d", rng.Intn(4))))
			inst.Add("F", rel.Const(fmt.Sprintf("v%d", rng.Intn(4))), rel.Const(fmt.Sprintf("v%d", rng.Intn(4))))
		}
		count1, count2 := 0, 0
		ForEach(pattern, inst, nil, Options{}, func(Binding) bool { count1++; return true })
		ForEach(permuted, inst, nil, Options{}, func(Binding) bool { count2++; return true })
		if count1 != count2 {
			t.Fatalf("trial %d: atom order changed result count: %d vs %d", trial, count1, count2)
		}
	}
}

// TestInstanceAtomsRoundTrip: InstanceAtoms + matching against the same
// instance always succeeds (the identity homomorphism).
func TestInstanceAtomsRoundTrip(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Null(1))
	inst.Add("E", rel.Null(1), rel.Null(2))
	atoms := InstanceAtoms(inst)
	if len(atoms) != 2 {
		t.Fatalf("atoms = %d", len(atoms))
	}
	if !Exists(atoms, inst, nil, Options{}) {
		t.Error("identity homomorphism not found")
	}
}

// TestNullVarStability: NullVar is injective over labels and matches
// what FactAtom generates.
func TestNullVarStability(t *testing.T) {
	if NullVar(1) == NullVar(2) {
		t.Error("NullVar not injective")
	}
	f := rel.Fact{Rel: "R", Args: rel.Tuple{rel.Null(7)}}
	a := FactAtom(f)
	if a.Args[0].IsConst || a.Args[0].Name != NullVar(7) {
		t.Errorf("FactAtom arg = %+v, want var %q", a.Args[0], NullVar(7))
	}
}

// TestBlockHomExistsGroundBlock: the null-free block check is a plain
// containment test.
func TestBlockHomExistsGroundBlock(t *testing.T) {
	k := rel.NewInstance()
	k.Add("E", rel.Const("a"), rel.Const("b"))
	blocks := Blocks(k)
	if len(blocks) != 1 {
		t.Fatal("expected one ground block")
	}
	target := rel.NewInstance()
	target.Add("E", rel.Const("a"), rel.Const("b"))
	if !BlockHomExists(blocks[0], target, Options{}) {
		t.Error("containment check failed")
	}
	if BlockHomExists(blocks[0], rel.NewInstance(), Options{}) {
		t.Error("empty target accepted")
	}
}

// TestSelectivityWithBoundVariable: the candidate scan uses whichever
// position is most selective; correctness is what we verify (three
// matches through a skewed index).
func TestSelectivityWithBoundVariable(t *testing.T) {
	inst := rel.NewInstance()
	for k := 0; k < 50; k++ {
		inst.Add("E", rel.Const("hub"), rel.Const(fmt.Sprintf("v%d", k)))
	}
	inst.Add("E", rel.Const("x1"), rel.Const("rare"))
	inst.Add("E", rel.Const("x2"), rel.Const("rare"))
	inst.Add("E", rel.Const("x3"), rel.Const("rare"))
	atoms := []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Cst("rare"))}
	count := 0
	ForEach(atoms, inst, nil, Options{}, func(Binding) bool { count++; return true })
	if count != 3 {
		t.Errorf("matches = %d, want 3", count)
	}
}
