package hom

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rel"
)

// buildMergedInstance builds an instance in three phases — old tuples,
// egd-style merges, appended tuples — returning the instance, the
// watermark taken after the old phase, and the changed-index lists the
// merges produced (filtered the way the chase does: live, below the
// watermark, sorted, deduplicated).
func buildMergedInstance(rng *rand.Rand, nOld, nMerges, nNew int) (*rel.Instance, Delta, map[string][]int) {
	inst := rel.NewInstance()
	val := func() rel.Value {
		if rng.Intn(3) == 0 {
			return rel.Null(1 + rng.Intn(5))
		}
		return rel.Const(fmt.Sprintf("v%d", rng.Intn(6)))
	}
	for k := 0; k < nOld; k++ {
		inst.Add("R", val(), val())
		if k%3 == 0 {
			inst.Add("S", val(), val())
		}
	}
	counts := Delta(inst.TupleCounts())
	changedRaw := map[string]map[int]bool{}
	for m := 0; m < nMerges; m++ {
		from := rel.Null(1 + rng.Intn(5))
		to := val()
		if from == to {
			continue
		}
		for name, idxs := range inst.MergeValue(from, to) {
			if changedRaw[name] == nil {
				changedRaw[name] = map[int]bool{}
			}
			for _, i := range idxs {
				changedRaw[name][i] = true
			}
		}
	}
	for k := 0; k < nNew; k++ {
		inst.Add("R", val(), val())
		if k%4 == 0 {
			inst.Add("S", val(), val())
		}
	}
	changed := map[string][]int{}
	for name, set := range changedRaw {
		r := inst.Relation(name)
		var lst []int
		for i := range set {
			if i < counts[name] && r.Live(i) {
				lst = append(lst, i)
			}
		}
		if len(lst) > 0 {
			sort.Ints(lst)
			changed[name] = lst
		}
	}
	return inst, counts, changed
}

// oldUnchangedCopy extracts the sub-instance of live old-segment tuples
// that no merge rewrote — the tuples whose bindings the chase has
// already handled.
func oldUnchangedCopy(inst *rel.Instance, counts Delta, changed map[string][]int) *rel.Instance {
	out := rel.NewInstance()
	for _, name := range inst.RelationNames() {
		r := inst.Relation(name)
		ch := changed[name]
		for i := 0; i < counts[name] && i < r.Len(); i++ {
			if !r.Live(i) {
				continue
			}
			at := sort.SearchInts(ch, i)
			if at < len(ch) && ch[at] == i {
				continue
			}
			out.AddTuple(name, r.TupleAt(i))
		}
	}
	return out
}

// TestEnumerateDeltaSpecMatchesReference: on random instances with an
// old segment, in-place merges, and appended tuples,
// EnumerateDeltaSpec returns exactly the full enumeration minus the
// bindings realizable over unchanged old tuples, in the full
// enumeration's order, at every parallelism setting and with and
// without indexes.
func TestEnumerateDeltaSpecMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 60; trial++ {
		inst, counts, changed := buildMergedInstance(rng, 3+rng.Intn(12), 1+rng.Intn(3), rng.Intn(8))
		oldUnchanged := oldUnchangedCopy(inst, counts, changed)
		inst.Freeze()
		oldUnchanged.Freeze()
		for pi, atoms := range deltaTestPatterns {
			want := deltaReference(atoms, inst, oldUnchanged, Options{})
			for _, opts := range []Options{{}, {Parallelism: 4}, {NoIndex: true}, {NoIndex: true, Parallelism: 4}} {
				spec := DeltaSpec{Old: counts, Changed: changed}
				got := EnumerateDeltaSpec(atoms, inst, nil, spec, opts, nil)
				if len(got) != len(want) {
					t.Fatalf("trial %d pattern %d opts %+v: got %d bindings, want %d", trial, pi, opts, len(got), len(want))
				}
				for i := range got {
					if bindingKey(got[i]) != bindingKey(want[i]) {
						t.Fatalf("trial %d pattern %d opts %+v: binding %d is %s, want %s (order or content diverged)",
							trial, pi, opts, i, bindingKey(got[i]), bindingKey(want[i]))
					}
				}
			}
		}
	}
}

// TestEnumerateDeltaSpecChangedOnly: with no appended tuples at all, a
// non-empty changed list alone re-enumerates the affected bindings (the
// merged-value delta), and an empty spec returns nothing.
func TestEnumerateDeltaSpecChangedOnly(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("a"), rel.Null(1))
	inst.Add("R", rel.Const("c"), rel.Const("d"))
	counts := Delta(inst.TupleCounts())
	changedMap := inst.MergeValue(rel.Null(1), rel.Const("c"))
	inst.Freeze()
	atoms := deltaTestPatterns[1] // R(x,y), R(y,z)
	spec := DeltaSpec{Old: counts, Changed: changedMap}
	got := EnumerateDeltaSpec(atoms, inst, nil, spec, Options{}, nil)
	// After the merge R = {(a,c), (c,d)}: the merge created the join
	// x=a, y=c, z=d between two OLD tuples — exactly the binding a pure
	// count watermark can never surface. It must appear here, and the
	// binding over the unchanged tuple alone must stay skipped.
	want := deltaReference(atoms, inst, oldUnchangedCopy(inst, counts, changedMap), Options{})
	if len(want) != 1 {
		t.Fatalf("reference sanity: %d bindings, want exactly the merge-created join", len(want))
	}
	if len(got) != 1 || bindingKey(got[0]) != bindingKey(want[0]) {
		t.Fatalf("changed-only: got %v, want %s", got, bindingKey(want[0]))
	}
	empty := EnumerateDeltaSpec(atoms, inst, nil, DeltaSpec{Old: counts}, Options{}, nil)
	if len(empty) != 0 {
		t.Fatalf("no-new no-changed spec returned %d bindings", len(empty))
	}
}
