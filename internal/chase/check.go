package chase

import (
	"fmt"
	"sort"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// Violation describes one unsatisfied trigger of a dependency in an
// instance.
type Violation struct {
	// Dep is the label of the violated dependency.
	Dep string
	// Trigger is the body homomorphism with no valid head extension (or,
	// for an egd, a body homomorphism equating distinct values).
	Trigger hom.Binding
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Dep, v.Detail)
}

// Check reports whether the instance satisfies all dependencies.
// Dependencies may be tgds, egds, or disjunctive tgds. For dependencies
// whose body and head range over different schemas (source-to-target or
// target-to-source tgds), pass the union instance holding both sides.
func Check(inst *rel.Instance, deps []dep.Dependency, opts hom.Options) bool {
	return len(FirstViolation(inst, deps, opts)) == 0
}

// FirstViolation returns at most one violation, or an empty slice if the
// instance satisfies every dependency.
func FirstViolation(inst *rel.Instance, deps []dep.Dependency, opts hom.Options) []Violation {
	return violations(inst, deps, opts, true)
}

// Violations returns every violated trigger of every dependency.
func Violations(inst *rel.Instance, deps []dep.Dependency, opts hom.Options) []Violation {
	return violations(inst, deps, opts, false)
}

func violations(inst *rel.Instance, deps []dep.Dependency, opts hom.Options, firstOnly bool) []Violation {
	var out []Violation
	for _, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			uvars := d.UniversalVars()
			hom.ForEach(d.Body, inst, nil, opts, func(b hom.Binding) bool {
				bu := restrict(b, uvars)
				if !hom.Exists(d.Head, inst, bu, opts) {
					out = append(out, Violation{
						Dep:     d.Label,
						Trigger: bu,
						Detail:  fmt.Sprintf("trigger %v has no head extension for %s", bindingString(bu), d),
					})
					return !firstOnly
				}
				return true
			})
		case dep.EGD:
			hom.ForEach(d.Body, inst, nil, opts, func(b hom.Binding) bool {
				if b[d.Left] != b[d.Right] {
					bu := restrict(b, []string{d.Left, d.Right})
					out = append(out, Violation{
						Dep:     d.Label,
						Trigger: bu,
						Detail:  fmt.Sprintf("egd %s equates %v and %v", d.Label, b[d.Left], b[d.Right]),
					})
					return !firstOnly
				}
				return true
			})
		case dep.DisjunctiveTGD:
			uvars := varNamesOf(d.Body)
			hom.ForEach(d.Body, inst, nil, opts, func(b hom.Binding) bool {
				bu := restrict(b, uvars)
				for _, disj := range d.Disjuncts {
					if hom.Exists(disj, inst, bu, opts) {
						return true
					}
				}
				out = append(out, Violation{
					Dep:     d.Label,
					Trigger: bu,
					Detail:  fmt.Sprintf("trigger %v satisfies no disjunct of %s", bindingString(bu), d.Label),
				})
				return !firstOnly
			})
		}
		if firstOnly && len(out) > 0 {
			return out
		}
	}
	return out
}

func varNamesOf(atoms []dep.Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func bindingString(b hom.Binding) string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	// Deterministic rendering for errors and tests.
	sort.Strings(names)
	s := "{"
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n + "=" + b[n].String()
	}
	return s + "}"
}
