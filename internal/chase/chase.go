// Package chase implements the chase procedure used by the peer data
// exchange paper: the standard (restricted) chase with tgds and egds of
// Fagin, Kolaitis, Miller, Popa, an oblivious variant for ablation
// studies, and the solution-aware chase of Definitions 6 and 7, which
// witnesses existential variables with values drawn from a given
// solution instead of fresh labeled nulls.
package chase

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/par"
	"repro/internal/rel"
)

// ErrBudgetExhausted is returned when the chase did not reach a fixpoint
// within the configured step budget. With weakly acyclic tgds this never
// happens for the default budget (the chase terminates in polynomially
// many steps, Lemma 1); with cyclic tgds it is the expected outcome.
var ErrBudgetExhausted = errors.New("chase: step budget exhausted before fixpoint")

// DefaultMaxSteps is the step budget applied when Options.MaxSteps is 0.
const DefaultMaxSteps = 200000

// BudgetHint suggests a step budget for chasing an instance of the
// given size with a weakly acyclic set of tgds, derived from the
// maximum position rank r (dep.MaxRank): the chase creates at most
// polynomially many facts with the polynomial degree governed by r, so
// the hint grows as size^(r+2), clamped to at least DefaultMaxSteps.
// For non-weakly-acyclic sets it returns DefaultMaxSteps — no finite
// budget is guaranteed to suffice, and hitting it is the expected
// diagnosis. The hint is a heuristic ceiling for honest termination
// detection, not a tight bound.
func BudgetHint(tgds []dep.TGD, size int) int {
	r, err := dep.MaxRank(tgds)
	if err != nil {
		return DefaultMaxSteps
	}
	if size < 2 {
		size = 2
	}
	budget := 1
	for e := 0; e < r+2; e++ {
		if budget > 1<<40/size {
			return 1 << 40 // saturate well below overflow
		}
		budget *= size
	}
	if budget < DefaultMaxSteps {
		return DefaultMaxSteps
	}
	return budget
}

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of chase steps; 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Oblivious switches tgd steps to the oblivious chase: a trigger
	// fires once regardless of whether the head is already satisfied.
	// Exists for the ablation benchmarks; the paper's constructions use
	// the restricted chase.
	Oblivious bool
	// NaiveTriggers disables the semi-naive (delta-driven) trigger
	// collection and re-enumerates every tgd's triggers against the
	// whole instance each round. The chase produces byte-identical
	// results either way — steps, null labels, instances, verdicts —
	// so the knob exists only for the ablation benchmarks and the
	// delta-vs-naive parity gates.
	NaiveTriggers bool
	// RebuildMerges reverts egd steps to the legacy rebuild engine:
	// every merge rebuilds the whole instance (rel.ReplaceValue) and
	// resets every delta watermark to a full rescan, instead of the
	// union-find engine's in-place rewrite that preserves watermarks.
	// Results are byte-identical either way — the knob exists for the
	// ablation benchmarks and the union-find parity gates. Runs under
	// RebuildMerges retain no union-find state, so their results are
	// never resumable once an egd fired.
	RebuildMerges bool
	// Nulls supplies fresh labeled nulls; if nil, a source seeded past
	// the nulls of the start instance is created.
	Nulls *rel.NullSource
	// Hom configures the homomorphism searches.
	Hom hom.Options
	// Parallelism bounds the workers used for trigger search: 0 means
	// GOMAXPROCS, 1 forces the serial path. Triggers for the
	// dependencies of a round are collected in parallel against the
	// round-start instance and applied serially, so restricted-chase
	// semantics, step counts, and fresh-null labels are byte-identical
	// to the serial chase at every setting. When nonzero it overrides
	// Hom.Parallelism for the searches the chase issues.
	Parallelism int
	// Seed perturbs parallel work distribution (never results); when
	// nonzero it overrides Hom.Seed.
	Seed int64
	// Ctx, when non-nil, cancels the chase: every step checks it, and
	// the trigger searches poll it, so a canceled context stops the run
	// promptly with an error wrapping par.ErrCanceled and the context's
	// own error. nil means never canceled.
	Ctx context.Context
}

// Result reports the outcome of a chase run.
type Result struct {
	// Instance is the chased instance: the fixpoint on success, the
	// instance at failure or budget exhaustion otherwise.
	Instance *rel.Instance
	// Steps is the number of chase steps applied.
	Steps int
	// Failed reports a failing chase: an egd tried to equate two
	// distinct constants.
	Failed bool
	// FailedOn is the label of the dependency that failed.
	FailedOn string
	// Start is the instance the run was chased from (the caller's
	// argument, not the working clone; for a resumed run, the union of
	// the previous Start and the appended facts). Resume re-chases from
	// it whenever the incremental path is unsound.
	Start *rel.Instance
	// EgdFired reports that at least one egd merge was applied. The
	// fixpoint's facts are then not a superset of every intermediate
	// state; Resume stays sound regardless, because it reasons from the
	// fixpoint itself and canonicalizes appended facts through the
	// retained union-find (see Resumable for the exact eligibility).
	EgdFired bool
	// UnionFind records the equivalence classes the run's egd merges
	// created, with the surviving value of each class as its
	// representative. It is nil when no merge happened or when the run
	// used Options.RebuildMerges. Resume uses it to canonicalize
	// appended facts; callers must treat it as read-only (Clone first).
	UnionFind *rel.UnionFind
	// Merges counts the egd merge steps applied; Finds counts the
	// union-find lookups they and any resumed continuation performed.
	// Both feed the pdxbench counters.
	Merges int
	Finds  int
}

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// homOpts folds the chase-level parallelism knobs into the hom options
// used for trigger search.
func (o Options) homOpts() hom.Options {
	h := o.Hom
	if o.Parallelism != 0 {
		h.Parallelism = o.Parallelism
	}
	if o.Seed != 0 {
		h.Seed = o.Seed
	}
	if h.Ctx == nil {
		h.Ctx = o.Ctx
	}
	return h
}

func (o Options) nulls(start *rel.Instance) *rel.NullSource {
	if o.Nulls != nil {
		return o.Nulls
	}
	ns := &rel.NullSource{}
	ns.SeenIn(start)
	return ns
}

// Run chases the start instance with the dependencies until fixpoint,
// failure, or budget exhaustion. The start instance is not mutated.
// Disjunctive tgds cannot be chased and cause an error.
func Run(start *rel.Instance, deps []dep.Dependency, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		start:  start,
		opts:   opts,
		hom:    opts.homOpts(),
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	return st.run(deps, nil)
}

// RunSolutionAware performs the solution-aware chase of Definitions 6–7:
// it chases start with the dependencies, but witnesses the existential
// variables of tgds using values from the witness instance, which must
// contain start and satisfy the tgds in deps. No fresh nulls are ever
// created. The returned instance is contained in witness whenever start
// is (this is the property Lemma 2 exploits to extract small solutions).
func RunSolutionAware(start *rel.Instance, deps []dep.Dependency, witness *rel.Instance, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		start:  start,
		opts:   opts,
		hom:    opts.homOpts(),
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	return st.run(deps, witness)
}

// mark is one dependency's semi-naive watermark: the per-relation
// tuple-slot counts of its previous trigger collection (nil counts =
// never collected, or invalidated: full rescan) plus the length of the
// merge change log it had consumed at that point. Together they
// identify exactly the facts the dependency has not yet seen: the new
// segments past counts, and the old tuples the log records as rewritten
// since logPos.
type mark struct {
	counts hom.Delta
	logPos int
}

// changeEntry is one record of the merge change log: tuple slot idx of
// relation rel was rewritten in place by an egd merge. The log is
// append-only and shared by all dependencies; each consumes its own
// suffix via mark.logPos.
type changeEntry struct {
	rel string
	idx int
}

type state struct {
	inst     *rel.Instance
	start    *rel.Instance // the caller's start instance, reported on Result
	opts     Options
	hom      hom.Options // resolved homOpts(), applied to every search
	nulls    *rel.NullSource
	budget   int
	steps    int
	egdFired bool

	// Union-find egd engine state: uf records the merge history (nil
	// until the first merge, unless Resume seeded it); changedLog is
	// the merge change log (entries may be stale — tombstoned or
	// re-rewritten later — consumers re-filter against the live
	// instance); merges counts merge steps in either engine.
	uf         *rel.UnionFind
	changedLog []changeEntry
	merges     int

	// Semi-naive bookkeeping, indexed by dependency position. marks[di]
	// is the watermark of dependency di's previous trigger collection.
	// The union-find engine keeps counts valid across merges (surviving
	// tuples keep their slots) and routes merge rewrites through the
	// change log, so marks are never reset; only the legacy rebuild
	// engine (Options.RebuildMerges) still resets them to nil on any
	// merge. Resume pre-seeds marks so the first round only enumerates
	// triggers touching the appended facts. uvars[di] caches the sorted
	// universal variables of tgd di; fired[di] is the oblivious chase's
	// per-tgd set of already fired triggers, keyed by compact value keys
	// instead of built strings.
	marks []mark
	uvars [][]string
	fired []map[firedKey]bool

	// Egd detection watermarks, indexed by dependency position.
	// egdMarks[di] with non-nil counts records the state at the end of
	// di's last clean pass (no active trigger). Between merges relations
	// only grow, so if none of di's body relations has grown past the
	// mark and the change log shows no rewrite into them since, the body
	// join — and hence the trigger set — is unchanged and the pass is
	// skipped without enumerating anything. (Tombstoned tuples only ever
	// leave the join, which cannot create a violation.) brels[di] caches
	// di's body relation names, for every dependency kind.
	egdMarks []mark
	brels    [][]string
}

// result packages the run's current outcome. Tombstoned slots left by
// in-place merges are compacted away here, so no caller ever observes
// them; compaction preserves the facts and their relative order, only
// the slot indexes shift (which is why watermarks must not outlive the
// run).
func (st *state) result() *Result {
	res := &Result{
		Instance:  st.inst.Compact(),
		Steps:     st.steps,
		Start:     st.start,
		EgdFired:  st.egdFired,
		UnionFind: st.uf,
		Merges:    st.merges,
	}
	if st.uf != nil {
		res.Finds = st.uf.Finds()
	}
	return res
}

// ctxErr returns a wrapped cancellation error when the chase context
// has been canceled, nil otherwise. The wrap carries both
// par.ErrCanceled and the context's own error, so errors.Is matches
// either identity.
func (st *state) ctxErr() error {
	if st.opts.Ctx == nil {
		return nil
	}
	if err := st.opts.Ctx.Err(); err != nil {
		return fmt.Errorf("chase: %w after %d steps: %w", par.ErrCanceled, st.steps, err)
	}
	return nil
}

func (st *state) run(deps []dep.Dependency, witness *rel.Instance) (*Result, error) {
	// Resume pre-seeds st.marks (and st.egdMarks) with the previous
	// fixpoint's watermarks; a fresh run starts from zero marks (full
	// first scan).
	if st.marks == nil {
		st.marks = make([]mark, len(deps))
	}
	if st.egdMarks == nil {
		st.egdMarks = make([]mark, len(deps))
	}
	st.uvars = make([][]string, len(deps))
	st.brels = make([][]string, len(deps))
	if st.opts.Oblivious {
		st.fired = make([]map[firedKey]bool, len(deps))
	}
	// Precompute per-dependency state up front so parallel speculation
	// never lazily initializes shared maps mid-flight.
	for di, d := range deps {
		var body []dep.Atom
		switch d := d.(type) {
		case dep.TGD:
			vs := append([]string(nil), d.UniversalVars()...)
			sort.Strings(vs)
			st.uvars[di] = vs
			if st.opts.Oblivious {
				st.fired[di] = make(map[firedKey]bool)
			}
			body = d.Body
		case dep.EGD:
			body = d.Body
		}
		seen := map[string]bool{}
		for _, a := range body {
			if !seen[a.Rel] {
				seen[a.Rel] = true
				st.brels[di] = append(st.brels[di], a.Rel)
			}
		}
	}
	for {
		progressed, failed, failedOn, err := st.round(deps, witness)
		if err != nil {
			return st.result(), err
		}
		// A canceled context truncates the trigger searches, so a round
		// under cancellation can masquerade as a fixpoint (or miss a
		// failure); re-check before trusting the round's outcome.
		if err := st.ctxErr(); err != nil {
			return st.result(), err
		}
		if failed {
			res := st.result()
			res.Failed, res.FailedOn = true, failedOn
			return res, nil
		}
		if !progressed {
			return st.result(), nil
		}
	}
}

// round applies one pass over all dependencies, firing every applicable
// trigger found against the instance as it evolves. It reports whether
// any step was applied.
//
// When running parallel, the triggers of every tgd in the round are
// speculatively collected up front against the round-start instance
// (see speculate); the speculation stays valid exactly as long as no
// step has fired, so each dependency either consumes its precomputed
// list or — once the instance has changed — re-collects against the
// current instance, exactly as the serial chase does. Either way the
// steps applied, their order, and the fresh nulls drawn are
// byte-identical to the serial chase.
//
// Trigger collection is semi-naive: each tgd enumerates only triggers
// that touch at least one fact added — or rewritten by a merge — since
// its own previous collection (its watermark in st.marks). This is
// lossless for the restricted chase because satisfaction of a trigger
// over unchanged old facts is preserved: tgd additions are monotone,
// and an egd merge substitutes values, mapping the satisfying head
// facts onto facts of the merged instance (the trigger's own values are
// untouched — a binding whose values a merge rewrote has, by
// definition, a changed tuple in it and is re-enumerated via the change
// log). A trigger whose facts all predate the watermark unchanged was,
// by the end of that earlier collection's firing pass, either satisfied
// (and stays satisfied) or fired (oblivious mode: recorded in st.fired,
// under a key built from values a merge never touched) — so the naive
// enumeration would have filtered it too. Under Options.RebuildMerges
// the legacy behavior remains: any egd progress resets every watermark
// to nil, a full rescan. A dependency's watermark advances only when a
// collection is actually consumed: to the round-start snapshot when its
// speculated list is used, to a fresh snapshot when it re-collects
// after the round went dirty. Discarded speculations leave the
// watermark untouched.
func (st *state) round(deps []dep.Dependency, witness *rel.Instance) (progressed, failed bool, failedOn string, err error) {
	// Snapshot the round-start sizes once; the map is shared by every
	// watermark taken from it and never mutated after this point.
	roundStart := hom.Delta(st.inst.TupleCounts())
	roundLog := len(st.changedLog)
	spec := st.speculate(deps)
	dirty := false
	for di, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			var triggers []hom.Binding
			if spec != nil && !dirty {
				triggers = spec[di]
				st.marks[di] = mark{counts: roundStart, logPos: roundLog}
			} else if !dirty {
				// Instance still equals the round start, so the shared
				// snapshot doubles as this collection's watermark.
				triggers = st.collectTriggers(di, d, st.marks[di])
				st.marks[di] = mark{counts: roundStart, logPos: roundLog}
			} else {
				triggers = st.collectTriggers(di, d, st.marks[di])
				st.marks[di] = mark{counts: hom.Delta(st.inst.TupleCounts()), logPos: len(st.changedLog)}
			}
			p, e := st.fireTriggers(di, d, triggers, witness)
			if e != nil {
				return false, false, "", e
			}
			if p {
				progressed, dirty = true, true
			}
		case dep.EGD:
			if st.egdSkip(di, roundStart, dirty) {
				continue
			}
			p, f, e := st.egdPass(d)
			if e != nil {
				return false, false, "", e
			}
			if f {
				return progressed, true, d.Label, nil
			}
			if p {
				progressed, dirty = true, true
				st.egdFired = true
				if st.opts.RebuildMerges {
					// Legacy engine: merges rebuilt the instance and
					// shuffled the tuple lists; every watermark's old/new
					// split is now meaningless.
					for i := range st.marks {
						st.marks[i] = mark{}
						st.egdMarks[i] = mark{}
					}
				}
				// Union-find engine: merges rewrote tuples in place, slots
				// and counts are untouched, and the rewrites are on the
				// change log — marks stay valid as they are.
			}
			// The pass ended with no active trigger for d: record the
			// state it was clean at, so later rounds skip the body scan
			// until one of d's relations grows or a merge rewrites into
			// them (or, under RebuildMerges, any merge resets it).
			if !st.opts.NaiveTriggers {
				if p || dirty {
					st.egdMarks[di] = mark{counts: hom.Delta(st.inst.TupleCounts()), logPos: len(st.changedLog)}
				} else {
					st.egdMarks[di] = mark{counts: roundStart, logPos: roundLog}
				}
			}
		default:
			return false, false, "", fmt.Errorf("chase: unsupported dependency type %T", d)
		}
	}
	return progressed, false, "", nil
}

// speculate collects the triggers of every tgd in the round
// concurrently against the round-start instance, which no worker
// mutates. It returns nil when the round runs serially (degree 1, or
// fewer than two tgds — a single tgd's search already fans out inside
// Enumerate). A speculated list equals what a serial scan would collect
// as long as the instance is unchanged; round discards the speculation
// once any step fires.
func (st *state) speculate(deps []dep.Dependency) [][]hom.Binding {
	degree := par.Degree(st.hom.Parallelism)
	if degree <= 1 {
		return nil
	}
	idxs := make([]int, 0, len(deps))
	for di, d := range deps {
		if _, ok := d.(dep.TGD); ok {
			idxs = append(idxs, di)
		}
	}
	if len(idxs) < 2 {
		return nil
	}
	spec := make([][]hom.Binding, len(deps))
	par.Do(len(idxs), degree, st.hom.Seed, func(k int) {
		di := idxs[k]
		spec[di] = st.collectTriggers(di, deps[di].(dep.TGD), st.marks[di])
	})
	return spec
}

// changedSince assembles the merged-value delta a dependency must
// re-enumerate: for each of its body relations, the sorted live tuple
// slots the change log records as rewritten since the mark, restricted
// to the mark's old segment (newer slots are covered by the count
// delta). Entries tombstoned by later merges are dropped — a dead slot
// matches nothing. Returns nil when the suffix holds nothing relevant.
func (st *state) changedSince(m mark, rels []string) map[string][]int {
	if m.logPos >= len(st.changedLog) {
		return nil
	}
	want := make(map[string]bool, len(rels))
	for _, name := range rels {
		want[name] = true
	}
	var out map[string][]int
	for _, e := range st.changedLog[m.logPos:] {
		if !want[e.rel] || e.idx >= m.counts[e.rel] {
			continue
		}
		if r := st.inst.Relation(e.rel); r == nil || !r.Live(e.idx) {
			continue
		}
		if out == nil {
			out = make(map[string][]int)
		}
		out[e.rel] = append(out[e.rel], e.idx)
	}
	for name, lst := range out {
		sort.Ints(lst)
		dedup := lst[:1]
		for _, idx := range lst[1:] {
			if idx != dedup[len(dedup)-1] {
				dedup = append(dedup, idx)
			}
		}
		out[name] = dedup
	}
	return out
}

// collectTriggers enumerates the triggers of d against the current
// instance that were not already satisfied (restricted chase) or fired
// (oblivious chase) at collection time, skipping — via the delta
// watermark and the merge change log — triggers whose body facts all
// predate d's previous collection unchanged. The enumeration and its
// satisfaction checks fan out across workers inside
// hom.EnumerateDeltaSpec; the list comes back in the serial
// full-enumeration order. Collection only reads st.inst, st.marks,
// st.changedLog, and st.fired, so concurrent collections for different
// dependencies are safe (marks and the log advance only in the serial
// round loop).
func (st *state) collectTriggers(di int, d dep.TGD, m mark) []hom.Binding {
	spec := hom.DeltaSpec{Old: m.counts}
	if st.opts.NaiveTriggers {
		spec = hom.DeltaSpec{}
	} else if m.counts != nil {
		spec.Changed = st.changedSince(m, st.brels[di])
	}
	if st.opts.Oblivious {
		fired, vars := st.fired[di], st.uvars[di]
		return hom.EnumerateDeltaSpec(d.Body, st.inst, nil, spec, st.hom, func(b hom.Binding) bool {
			return !fired[makeFiredKey(vars, b)]
		})
	}
	return hom.EnumerateDeltaSpec(d.Body, st.inst, nil, spec, st.hom, func(b hom.Binding) bool {
		return !hom.Exists(d.Head, st.inst, b, st.hom)
	})
}

// fireTriggers fires the collected triggers of d that are still
// applicable, serially and in collection order. Triggers were collected
// up front so the enumeration never observes its own insertions; new
// triggers created by the fired steps are picked up by the next round.
func (st *state) fireTriggers(di int, d dep.TGD, triggers []hom.Binding, witness *rel.Instance) (bool, error) {
	progressed := false
	for _, b := range triggers {
		if st.opts.Oblivious {
			key := makeFiredKey(st.uvars[di], b)
			if st.fired[di][key] {
				continue
			}
			st.fired[di][key] = true
		} else if hom.Exists(d.Head, st.inst, b, st.hom) {
			// Re-check: an earlier firing in this pass may have
			// satisfied this trigger (restricted chase).
			continue
		}
		if err := st.fire(d, b, witness); err != nil {
			return progressed, err
		}
		progressed = true
	}
	return progressed, nil
}

// fire applies one tgd step for the trigger b.
func (st *state) fire(d dep.TGD, b hom.Binding, witness *rel.Instance) error {
	if err := st.ctxErr(); err != nil {
		return err
	}
	if st.steps >= st.budget {
		return fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
	}
	st.steps++
	// Trigger bindings are consumed exactly once (fireTriggers reads the
	// fired key and re-checks satisfaction before this call), so the
	// existential extension can write into b directly instead of cloning.
	ext := b
	if exist := d.ExistentialVars(); len(exist) > 0 {
		if witness == nil {
			for _, v := range exist {
				ext[v] = st.nulls.Fresh()
			}
		} else {
			// Solution-aware step: extend the trigger homomorphism into
			// the witness, which satisfies the tgd, so an extension is
			// guaranteed when the trigger facts lie inside the witness.
			w, ok := hom.FindOne(d.Head, witness, b, st.hom)
			if !ok {
				return fmt.Errorf("chase: solution-aware step for %s found no witness extension; witness does not satisfy the tgds", d.Label)
			}
			for _, v := range exist {
				ext[v] = w[v]
			}
		}
	}
	for _, a := range d.Head {
		st.inst.AddTuple(a.Rel, groundAtom(a, ext))
	}
	return nil
}

// egdSkip reports whether egd di's detection pass can be skipped: its
// last clean pass recorded a watermark, none of the egd's body
// relations has grown since, and the merge change log shows no rewrite
// into them. Relations are append-only between merges, so equal counts
// mean no added tuples; merges only rewrite logged slots or tombstone
// tuples (which removes bindings from the body join, never creating a
// violation) — so an unchanged watermark means an unchanged trigger
// set. Under RebuildMerges any merge zeroed the mark, restoring the
// legacy always-rescan behavior.
func (st *state) egdSkip(di int, roundStart hom.Delta, dirty bool) bool {
	m := st.egdMarks[di]
	if st.opts.NaiveTriggers || m.counts == nil {
		return false
	}
	cur := roundStart
	if dirty {
		cur = hom.Delta(st.inst.TupleCounts())
	}
	for _, r := range st.brels[di] {
		if cur[r] > m.counts[r] {
			return false
		}
	}
	for _, e := range st.changedLog[m.logPos:] {
		for _, r := range st.brels[di] {
			if e.rel == r {
				return false
			}
		}
	}
	return true
}

// merge applies one egd merge step, replacing the null `from` by `to`
// throughout the instance. The union-find engine records the class
// merge, rewrites the affected tuples in place, and appends the
// rewritten slots to the change log (in relation-name order, so the log
// is deterministic); the legacy engine rebuilds the instance.
func (st *state) merge(from, to rel.Value) {
	st.merges++
	if st.opts.RebuildMerges {
		st.inst = st.inst.ReplaceValue(from, to)
		return
	}
	if st.uf == nil {
		st.uf = rel.NewUnionFind()
	}
	st.uf.Union(from, to)
	changed := st.inst.MergeValue(from, to)
	names := make([]string, 0, len(changed))
	for name := range changed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, idx := range changed[name] {
			st.changedLog = append(st.changedLog, changeEntry{rel: name, idx: idx})
		}
	}
}

// egdPass applies egd steps until d has no active trigger or the chase
// fails. A merge can create a violation lexicographically before the
// current scan position (the rewritten tuples join differently), so the
// pass restarts its trigger scan after every step — on the same
// instance either engine produces, scanned in the same live-tuple
// order, so the merge sequences of the two engines match exactly.
func (st *state) egdPass(d dep.EGD) (progressed, failed bool, err error) {
	for {
		var l, r rel.Value
		found := false
		hom.ForEach(d.Body, st.inst, nil, st.hom, func(b hom.Binding) bool {
			if b[d.Left] != b[d.Right] {
				l, r = b[d.Left], b[d.Right]
				found = true
				return false
			}
			return true
		})
		if !found {
			return progressed, false, nil
		}
		if err := st.ctxErr(); err != nil {
			return progressed, false, err
		}
		if st.steps >= st.budget {
			return progressed, false, fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
		}
		st.steps++
		if l.IsConst() && r.IsConst() {
			return progressed, true, nil
		}
		// Replace a null by the other value; if one side is a constant
		// the null is replaced by the constant.
		from, to := l, r
		if from.IsConst() {
			from, to = to, from
		}
		st.merge(from, to)
		progressed = true
	}
}

func restrict(b hom.Binding, vars []string) hom.Binding {
	out := make(hom.Binding, len(vars))
	for _, v := range vars {
		out[v] = b[v]
	}
	return out
}

func groundAtom(a dep.Atom, b hom.Binding) rel.Tuple {
	t := make(rel.Tuple, len(a.Args))
	for i, term := range a.Args {
		if term.IsConst {
			t[i] = rel.Const(term.Name)
		} else {
			v, ok := b[term.Name]
			if !ok {
				panic(fmt.Sprintf("chase: unbound variable %s grounding %s", term.Name, a))
			}
			t[i] = v
		}
	}
	return t
}

// firedKey identifies an oblivious-chase trigger of one tgd: the values
// its sorted universal variables are bound to. It is comparable, so it
// keys the per-tgd fired set directly — the common case (≤ 4 universal
// variables) stores the values inline and a lookup allocates nothing,
// unlike the string key it replaced, which built and joined
// "var=kindvalue" parts on every probe. Wider bindings spill the
// remainder into one encoded string.
type firedKey struct {
	inline [firedKeyInline]rel.Value
	rest   string
}

const firedKeyInline = 4

// makeFiredKey builds the key for b over the tgd's pre-sorted universal
// variables. Variable names are not part of the key: the fired set is
// per-dependency and the variable order is fixed, so positions alone
// disambiguate.
func makeFiredKey(vars []string, b hom.Binding) firedKey {
	var k firedKey
	n := len(vars)
	if n > firedKeyInline {
		n = firedKeyInline
	}
	for i := 0; i < n; i++ {
		k.inline[i] = b[vars[i]]
	}
	if len(vars) > firedKeyInline {
		var sb strings.Builder
		for _, v := range vars[firedKeyInline:] {
			val := b[v]
			if val.IsNull() {
				sb.WriteByte('n')
			} else {
				sb.WriteByte('c')
			}
			sb.WriteString(val.String())
			sb.WriteByte(0)
		}
		k.rest = sb.String()
	}
	return k
}
