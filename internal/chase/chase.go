// Package chase implements the chase procedure used by the peer data
// exchange paper: the standard (restricted) chase with tgds and egds of
// Fagin, Kolaitis, Miller, Popa, an oblivious variant for ablation
// studies, and the solution-aware chase of Definitions 6 and 7, which
// witnesses existential variables with values drawn from a given
// solution instead of fresh labeled nulls.
package chase

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// ErrBudgetExhausted is returned when the chase did not reach a fixpoint
// within the configured step budget. With weakly acyclic tgds this never
// happens for the default budget (the chase terminates in polynomially
// many steps, Lemma 1); with cyclic tgds it is the expected outcome.
var ErrBudgetExhausted = errors.New("chase: step budget exhausted before fixpoint")

// DefaultMaxSteps is the step budget applied when Options.MaxSteps is 0.
const DefaultMaxSteps = 200000

// BudgetHint suggests a step budget for chasing an instance of the
// given size with a weakly acyclic set of tgds, derived from the
// maximum position rank r (dep.MaxRank): the chase creates at most
// polynomially many facts with the polynomial degree governed by r, so
// the hint grows as size^(r+2), clamped to at least DefaultMaxSteps.
// For non-weakly-acyclic sets it returns DefaultMaxSteps — no finite
// budget is guaranteed to suffice, and hitting it is the expected
// diagnosis. The hint is a heuristic ceiling for honest termination
// detection, not a tight bound.
func BudgetHint(tgds []dep.TGD, size int) int {
	r, err := dep.MaxRank(tgds)
	if err != nil {
		return DefaultMaxSteps
	}
	if size < 2 {
		size = 2
	}
	budget := 1
	for e := 0; e < r+2; e++ {
		if budget > 1<<40/size {
			return 1 << 40 // saturate well below overflow
		}
		budget *= size
	}
	if budget < DefaultMaxSteps {
		return DefaultMaxSteps
	}
	return budget
}

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of chase steps; 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Oblivious switches tgd steps to the oblivious chase: a trigger
	// fires once regardless of whether the head is already satisfied.
	// Exists for the ablation benchmarks; the paper's constructions use
	// the restricted chase.
	Oblivious bool
	// Nulls supplies fresh labeled nulls; if nil, a source seeded past
	// the nulls of the start instance is created.
	Nulls *rel.NullSource
	// Hom configures the homomorphism searches.
	Hom hom.Options
}

// Result reports the outcome of a chase run.
type Result struct {
	// Instance is the chased instance: the fixpoint on success, the
	// instance at failure or budget exhaustion otherwise.
	Instance *rel.Instance
	// Steps is the number of chase steps applied.
	Steps int
	// Failed reports a failing chase: an egd tried to equate two
	// distinct constants.
	Failed bool
	// FailedOn is the label of the dependency that failed.
	FailedOn string
}

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

func (o Options) nulls(start *rel.Instance) *rel.NullSource {
	if o.Nulls != nil {
		return o.Nulls
	}
	ns := &rel.NullSource{}
	ns.SeenIn(start)
	return ns
}

// Run chases the start instance with the dependencies until fixpoint,
// failure, or budget exhaustion. The start instance is not mutated.
// Disjunctive tgds cannot be chased and cause an error.
func Run(start *rel.Instance, deps []dep.Dependency, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		opts:   opts,
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	if opts.Oblivious {
		st.fired = make(map[string]bool)
	}
	return st.run(deps, nil)
}

// RunSolutionAware performs the solution-aware chase of Definitions 6–7:
// it chases start with the dependencies, but witnesses the existential
// variables of tgds using values from the witness instance, which must
// contain start and satisfy the tgds in deps. No fresh nulls are ever
// created. The returned instance is contained in witness whenever start
// is (this is the property Lemma 2 exploits to extract small solutions).
func RunSolutionAware(start *rel.Instance, deps []dep.Dependency, witness *rel.Instance, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		opts:   opts,
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	if opts.Oblivious {
		st.fired = make(map[string]bool)
	}
	return st.run(deps, witness)
}

type state struct {
	inst   *rel.Instance
	opts   Options
	nulls  *rel.NullSource
	budget int
	steps  int
	fired  map[string]bool // oblivious mode: trigger keys already fired
}

func (st *state) run(deps []dep.Dependency, witness *rel.Instance) (*Result, error) {
	for {
		progressed, failed, failedOn, err := st.round(deps, witness)
		if err != nil {
			return &Result{Instance: st.inst, Steps: st.steps}, err
		}
		if failed {
			return &Result{Instance: st.inst, Steps: st.steps, Failed: true, FailedOn: failedOn}, nil
		}
		if !progressed {
			return &Result{Instance: st.inst, Steps: st.steps}, nil
		}
	}
}

// round applies one pass over all dependencies, firing every applicable
// trigger found against the instance as it evolves. It reports whether
// any step was applied.
func (st *state) round(deps []dep.Dependency, witness *rel.Instance) (progressed, failed bool, failedOn string, err error) {
	for _, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			p, e := st.tgdPass(d, witness)
			if e != nil {
				return false, false, "", e
			}
			progressed = progressed || p
		case dep.EGD:
			p, f, e := st.egdPass(d)
			if e != nil {
				return false, false, "", e
			}
			if f {
				return progressed, true, d.Label, nil
			}
			progressed = progressed || p
		default:
			return false, false, "", fmt.Errorf("chase: unsupported dependency type %T", d)
		}
	}
	return progressed, failed, failedOn, nil
}

// tgdPass collects the triggers of d against the current instance and
// fires those still unsatisfied. Triggers are collected up front so the
// enumeration never observes its own insertions; new triggers created by
// the fired steps are picked up by the next round.
func (st *state) tgdPass(d dep.TGD, witness *rel.Instance) (bool, error) {
	uvars := d.UniversalVars()
	var triggers []hom.Binding
	hom.ForEach(d.Body, st.inst, nil, st.opts.Hom, func(b hom.Binding) bool {
		if st.opts.Oblivious {
			key := triggerKey(d.Label, uvars, b)
			if st.fired[key] {
				return true
			}
		} else if hom.Exists(d.Head, st.inst, restrict(b, uvars), st.opts.Hom) {
			return true
		}
		triggers = append(triggers, restrict(b, uvars))
		return true
	})
	progressed := false
	for _, b := range triggers {
		if st.opts.Oblivious {
			key := triggerKey(d.Label, uvars, b)
			if st.fired[key] {
				continue
			}
			st.fired[key] = true
		} else if hom.Exists(d.Head, st.inst, b, st.opts.Hom) {
			// Re-check: an earlier firing in this pass may have
			// satisfied this trigger (restricted chase).
			continue
		}
		if err := st.fire(d, b, witness); err != nil {
			return progressed, err
		}
		progressed = true
	}
	return progressed, nil
}

// fire applies one tgd step for the trigger b.
func (st *state) fire(d dep.TGD, b hom.Binding, witness *rel.Instance) error {
	if st.steps >= st.budget {
		return fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
	}
	st.steps++
	ext := b.Clone()
	if exist := d.ExistentialVars(); len(exist) > 0 {
		if witness == nil {
			for _, v := range exist {
				ext[v] = st.nulls.Fresh()
			}
		} else {
			// Solution-aware step: extend the trigger homomorphism into
			// the witness, which satisfies the tgd, so an extension is
			// guaranteed when the trigger facts lie inside the witness.
			w, ok := hom.FindOne(d.Head, witness, b, st.opts.Hom)
			if !ok {
				return fmt.Errorf("chase: solution-aware step for %s found no witness extension; witness does not satisfy the tgds", d.Label)
			}
			for _, v := range exist {
				ext[v] = w[v]
			}
		}
	}
	for _, a := range d.Head {
		st.inst.AddTuple(a.Rel, groundAtom(a, ext))
	}
	return nil
}

// egdPass applies egd steps until d has no active trigger or the chase
// fails. Each merge rebuilds the instance, so the pass restarts its
// trigger scan after every step.
func (st *state) egdPass(d dep.EGD) (progressed, failed bool, err error) {
	for {
		var l, r rel.Value
		found := false
		hom.ForEach(d.Body, st.inst, nil, st.opts.Hom, func(b hom.Binding) bool {
			if b[d.Left] != b[d.Right] {
				l, r = b[d.Left], b[d.Right]
				found = true
				return false
			}
			return true
		})
		if !found {
			return progressed, false, nil
		}
		if st.steps >= st.budget {
			return progressed, false, fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
		}
		st.steps++
		if l.IsConst() && r.IsConst() {
			return progressed, true, nil
		}
		// Replace a null by the other value; if one side is a constant
		// the null is replaced by the constant.
		from, to := l, r
		if from.IsConst() {
			from, to = to, from
		}
		st.inst = st.inst.ReplaceValue(from, to)
		progressed = true
	}
}

func restrict(b hom.Binding, vars []string) hom.Binding {
	out := make(hom.Binding, len(vars))
	for _, v := range vars {
		out[v] = b[v]
	}
	return out
}

func groundAtom(a dep.Atom, b hom.Binding) rel.Tuple {
	t := make(rel.Tuple, len(a.Args))
	for i, term := range a.Args {
		if term.IsConst {
			t[i] = rel.Const(term.Name)
		} else {
			v, ok := b[term.Name]
			if !ok {
				panic(fmt.Sprintf("chase: unbound variable %s grounding %s", term.Name, a))
			}
			t[i] = v
		}
	}
	return t
}

func triggerKey(label string, vars []string, b hom.Binding) string {
	parts := make([]string, 0, len(vars)+1)
	parts = append(parts, label)
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	for _, v := range sorted {
		val := b[v]
		kind := "c"
		if val.IsNull() {
			kind = "n"
		}
		parts = append(parts, v+"="+kind+val.String())
	}
	return strings.Join(parts, "|")
}
