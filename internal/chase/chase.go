// Package chase implements the chase procedure used by the peer data
// exchange paper: the standard (restricted) chase with tgds and egds of
// Fagin, Kolaitis, Miller, Popa, an oblivious variant for ablation
// studies, and the solution-aware chase of Definitions 6 and 7, which
// witnesses existential variables with values drawn from a given
// solution instead of fresh labeled nulls.
package chase

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/par"
	"repro/internal/rel"
)

// ErrBudgetExhausted is returned when the chase did not reach a fixpoint
// within the configured step budget. With weakly acyclic tgds this never
// happens for the default budget (the chase terminates in polynomially
// many steps, Lemma 1); with cyclic tgds it is the expected outcome.
var ErrBudgetExhausted = errors.New("chase: step budget exhausted before fixpoint")

// DefaultMaxSteps is the step budget applied when Options.MaxSteps is 0.
const DefaultMaxSteps = 200000

// BudgetHint suggests a step budget for chasing an instance of the
// given size with a weakly acyclic set of tgds, derived from the
// maximum position rank r (dep.MaxRank): the chase creates at most
// polynomially many facts with the polynomial degree governed by r, so
// the hint grows as size^(r+2), clamped to at least DefaultMaxSteps.
// For non-weakly-acyclic sets it returns DefaultMaxSteps — no finite
// budget is guaranteed to suffice, and hitting it is the expected
// diagnosis. The hint is a heuristic ceiling for honest termination
// detection, not a tight bound.
func BudgetHint(tgds []dep.TGD, size int) int {
	r, err := dep.MaxRank(tgds)
	if err != nil {
		return DefaultMaxSteps
	}
	if size < 2 {
		size = 2
	}
	budget := 1
	for e := 0; e < r+2; e++ {
		if budget > 1<<40/size {
			return 1 << 40 // saturate well below overflow
		}
		budget *= size
	}
	if budget < DefaultMaxSteps {
		return DefaultMaxSteps
	}
	return budget
}

// Options configures a chase run.
type Options struct {
	// MaxSteps bounds the number of chase steps; 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Oblivious switches tgd steps to the oblivious chase: a trigger
	// fires once regardless of whether the head is already satisfied.
	// Exists for the ablation benchmarks; the paper's constructions use
	// the restricted chase.
	Oblivious bool
	// NaiveTriggers disables the semi-naive (delta-driven) trigger
	// collection and re-enumerates every tgd's triggers against the
	// whole instance each round. The chase produces byte-identical
	// results either way — steps, null labels, instances, verdicts —
	// so the knob exists only for the ablation benchmarks and the
	// delta-vs-naive parity gates.
	NaiveTriggers bool
	// Nulls supplies fresh labeled nulls; if nil, a source seeded past
	// the nulls of the start instance is created.
	Nulls *rel.NullSource
	// Hom configures the homomorphism searches.
	Hom hom.Options
	// Parallelism bounds the workers used for trigger search: 0 means
	// GOMAXPROCS, 1 forces the serial path. Triggers for the
	// dependencies of a round are collected in parallel against the
	// round-start instance and applied serially, so restricted-chase
	// semantics, step counts, and fresh-null labels are byte-identical
	// to the serial chase at every setting. When nonzero it overrides
	// Hom.Parallelism for the searches the chase issues.
	Parallelism int
	// Seed perturbs parallel work distribution (never results); when
	// nonzero it overrides Hom.Seed.
	Seed int64
	// Ctx, when non-nil, cancels the chase: every step checks it, and
	// the trigger searches poll it, so a canceled context stops the run
	// promptly with an error wrapping par.ErrCanceled and the context's
	// own error. nil means never canceled.
	Ctx context.Context
}

// Result reports the outcome of a chase run.
type Result struct {
	// Instance is the chased instance: the fixpoint on success, the
	// instance at failure or budget exhaustion otherwise.
	Instance *rel.Instance
	// Steps is the number of chase steps applied.
	Steps int
	// Failed reports a failing chase: an egd tried to equate two
	// distinct constants.
	Failed bool
	// FailedOn is the label of the dependency that failed.
	FailedOn string
	// Start is the instance the run was chased from (the caller's
	// argument, not the working clone; for a resumed run, the union of
	// the previous Start and the appended facts). Resume re-chases from
	// it whenever the incremental path is unsound.
	Start *rel.Instance
	// EgdFired reports that at least one egd merge was applied. A merge
	// rewrites values in place, so the fixpoint's facts are not a
	// superset of every intermediate state and Resume must fall back to
	// a full re-chase from Start.
	EgdFired bool
}

func (o Options) maxSteps() int {
	if o.MaxSteps > 0 {
		return o.MaxSteps
	}
	return DefaultMaxSteps
}

// homOpts folds the chase-level parallelism knobs into the hom options
// used for trigger search.
func (o Options) homOpts() hom.Options {
	h := o.Hom
	if o.Parallelism != 0 {
		h.Parallelism = o.Parallelism
	}
	if o.Seed != 0 {
		h.Seed = o.Seed
	}
	if h.Ctx == nil {
		h.Ctx = o.Ctx
	}
	return h
}

func (o Options) nulls(start *rel.Instance) *rel.NullSource {
	if o.Nulls != nil {
		return o.Nulls
	}
	ns := &rel.NullSource{}
	ns.SeenIn(start)
	return ns
}

// Run chases the start instance with the dependencies until fixpoint,
// failure, or budget exhaustion. The start instance is not mutated.
// Disjunctive tgds cannot be chased and cause an error.
func Run(start *rel.Instance, deps []dep.Dependency, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		start:  start,
		opts:   opts,
		hom:    opts.homOpts(),
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	return st.run(deps, nil)
}

// RunSolutionAware performs the solution-aware chase of Definitions 6–7:
// it chases start with the dependencies, but witnesses the existential
// variables of tgds using values from the witness instance, which must
// contain start and satisfy the tgds in deps. No fresh nulls are ever
// created. The returned instance is contained in witness whenever start
// is (this is the property Lemma 2 exploits to extract small solutions).
func RunSolutionAware(start *rel.Instance, deps []dep.Dependency, witness *rel.Instance, opts Options) (*Result, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	st := &state{
		inst:   start.Clone(),
		start:  start,
		opts:   opts,
		hom:    opts.homOpts(),
		nulls:  opts.nulls(start),
		budget: opts.maxSteps(),
	}
	return st.run(deps, witness)
}

type state struct {
	inst     *rel.Instance
	start    *rel.Instance // the caller's start instance, reported on Result
	opts     Options
	hom      hom.Options // resolved homOpts(), applied to every search
	nulls    *rel.NullSource
	budget   int
	steps    int
	egdFired bool

	// Semi-naive bookkeeping, indexed by dependency position. marks[di]
	// is the watermark of dependency di's previous trigger collection —
	// the per-relation tuple counts of the instance it last enumerated
	// against (nil = never collected, or invalidated by an egd merge:
	// full rescan). Resume pre-seeds marks so the first round only
	// enumerates triggers touching the appended facts. uvars[di] caches
	// the sorted universal variables of tgd di; fired[di] is the
	// oblivious chase's per-tgd set of already fired triggers, keyed by
	// compact value keys instead of built strings.
	marks []hom.Delta
	uvars [][]string
	fired []map[firedKey]bool

	// Egd detection watermarks, indexed by dependency position.
	// egdMarks[di] non-nil records the per-relation counts at the end of
	// di's last clean pass (no active trigger). Between merges relations
	// only grow, so if none of di's body relations has grown past the
	// mark, the body join — and hence the trigger set — is unchanged and
	// the pass is skipped without enumerating anything. Any merge resets
	// every egd mark (the rebuild shuffles tuple lists and may create
	// triggers without adding tuples). erels[di] caches di's body
	// relation names.
	egdMarks []hom.Delta
	erels    [][]string
}

// result packages the run's current outcome.
func (st *state) result() *Result {
	return &Result{Instance: st.inst, Steps: st.steps, Start: st.start, EgdFired: st.egdFired}
}

// ctxErr returns a wrapped cancellation error when the chase context
// has been canceled, nil otherwise. The wrap carries both
// par.ErrCanceled and the context's own error, so errors.Is matches
// either identity.
func (st *state) ctxErr() error {
	if st.opts.Ctx == nil {
		return nil
	}
	if err := st.opts.Ctx.Err(); err != nil {
		return fmt.Errorf("chase: %w after %d steps: %w", par.ErrCanceled, st.steps, err)
	}
	return nil
}

func (st *state) run(deps []dep.Dependency, witness *rel.Instance) (*Result, error) {
	// Resume pre-seeds st.marks with the previous fixpoint's watermarks;
	// a fresh run starts from nil marks (full first scan).
	if st.marks == nil {
		st.marks = make([]hom.Delta, len(deps))
	}
	st.uvars = make([][]string, len(deps))
	st.egdMarks = make([]hom.Delta, len(deps))
	st.erels = make([][]string, len(deps))
	if st.opts.Oblivious {
		st.fired = make([]map[firedKey]bool, len(deps))
	}
	// Precompute per-dependency state up front so parallel speculation
	// never lazily initializes shared maps mid-flight.
	for di, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			vs := append([]string(nil), d.UniversalVars()...)
			sort.Strings(vs)
			st.uvars[di] = vs
			if st.opts.Oblivious {
				st.fired[di] = make(map[firedKey]bool)
			}
		case dep.EGD:
			seen := map[string]bool{}
			for _, a := range d.Body {
				if !seen[a.Rel] {
					seen[a.Rel] = true
					st.erels[di] = append(st.erels[di], a.Rel)
				}
			}
		}
	}
	for {
		progressed, failed, failedOn, err := st.round(deps, witness)
		if err != nil {
			return st.result(), err
		}
		// A canceled context truncates the trigger searches, so a round
		// under cancellation can masquerade as a fixpoint (or miss a
		// failure); re-check before trusting the round's outcome.
		if err := st.ctxErr(); err != nil {
			return st.result(), err
		}
		if failed {
			res := st.result()
			res.Failed, res.FailedOn = true, failedOn
			return res, nil
		}
		if !progressed {
			return st.result(), nil
		}
	}
}

// round applies one pass over all dependencies, firing every applicable
// trigger found against the instance as it evolves. It reports whether
// any step was applied.
//
// When running parallel, the triggers of every tgd in the round are
// speculatively collected up front against the round-start instance
// (see speculate); the speculation stays valid exactly as long as no
// step has fired, so each dependency either consumes its precomputed
// list or — once the instance has changed — re-collects against the
// current instance, exactly as the serial chase does. Either way the
// steps applied, their order, and the fresh nulls drawn are
// byte-identical to the serial chase.
//
// Trigger collection is semi-naive: each tgd enumerates only triggers
// that touch at least one fact added since its own previous collection
// (its watermark in st.marks). This is lossless for the restricted
// chase because head satisfaction is monotone under tgd-only
// additions: a trigger whose facts all predate the watermark was, by
// the end of that earlier collection's firing pass, either satisfied
// (and stays satisfied) or fired (oblivious mode: recorded in
// st.fired) — so the naive enumeration would have filtered it too.
// Egd merges break the monotonicity and rebuild the instance
// (shuffling tuple indexes), so any egd progress resets every
// watermark to nil, a full rescan. A dependency's watermark advances
// only when a collection is actually consumed: to the round-start
// counts when its speculated list is used, to a fresh snapshot when it
// re-collects after the round went dirty. Discarded speculations leave
// the watermark untouched.
func (st *state) round(deps []dep.Dependency, witness *rel.Instance) (progressed, failed bool, failedOn string, err error) {
	// Snapshot the round-start sizes once; the map is shared by every
	// watermark taken from it and never mutated after this point.
	roundStart := hom.Delta(st.inst.TupleCounts())
	spec := st.speculate(deps)
	dirty := false
	for di, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			var triggers []hom.Binding
			if spec != nil && !dirty {
				triggers = spec[di]
				st.marks[di] = roundStart
			} else if !dirty {
				// Instance still equals the round start, so the shared
				// snapshot doubles as this collection's watermark.
				triggers = st.collectTriggers(di, d, st.marks[di])
				st.marks[di] = roundStart
			} else {
				triggers = st.collectTriggers(di, d, st.marks[di])
				st.marks[di] = hom.Delta(st.inst.TupleCounts())
			}
			p, e := st.fireTriggers(di, d, triggers, witness)
			if e != nil {
				return false, false, "", e
			}
			if p {
				progressed, dirty = true, true
			}
		case dep.EGD:
			if st.egdSkip(di, roundStart, dirty) {
				continue
			}
			p, f, e := st.egdPass(d)
			if e != nil {
				return false, false, "", e
			}
			if f {
				return progressed, true, d.Label, nil
			}
			if p {
				progressed, dirty = true, true
				st.egdFired = true
				// Merges rewrote values in place and rebuilt the tuple
				// lists: every watermark's old/new split is now
				// meaningless, and satisfaction may have regressed.
				for i := range st.marks {
					st.marks[i] = nil
					st.egdMarks[i] = nil
				}
			}
			// The pass ended with no active trigger for d: record the
			// counts it was clean at, so later rounds skip the body scan
			// until one of d's relations grows (or a merge resets it).
			if !st.opts.NaiveTriggers {
				if p || dirty {
					st.egdMarks[di] = hom.Delta(st.inst.TupleCounts())
				} else {
					st.egdMarks[di] = roundStart
				}
			}
		default:
			return false, false, "", fmt.Errorf("chase: unsupported dependency type %T", d)
		}
	}
	return progressed, false, "", nil
}

// speculate collects the triggers of every tgd in the round
// concurrently against the round-start instance, which no worker
// mutates. It returns nil when the round runs serially (degree 1, or
// fewer than two tgds — a single tgd's search already fans out inside
// Enumerate). A speculated list equals what a serial scan would collect
// as long as the instance is unchanged; round discards the speculation
// once any step fires.
func (st *state) speculate(deps []dep.Dependency) [][]hom.Binding {
	degree := par.Degree(st.hom.Parallelism)
	if degree <= 1 {
		return nil
	}
	idxs := make([]int, 0, len(deps))
	for di, d := range deps {
		if _, ok := d.(dep.TGD); ok {
			idxs = append(idxs, di)
		}
	}
	if len(idxs) < 2 {
		return nil
	}
	spec := make([][]hom.Binding, len(deps))
	par.Do(len(idxs), degree, st.hom.Seed, func(k int) {
		di := idxs[k]
		spec[di] = st.collectTriggers(di, deps[di].(dep.TGD), st.marks[di])
	})
	return spec
}

// collectTriggers enumerates the triggers of d against the current
// instance that were not already satisfied (restricted chase) or fired
// (oblivious chase) at collection time, skipping — via the delta
// watermark — triggers whose body facts all predate d's previous
// collection. The enumeration and its satisfaction checks fan out
// across workers inside hom.EnumerateDelta; the list comes back in the
// serial full-enumeration order. Collection only reads st.inst,
// st.marks, and st.fired, so concurrent collections for different
// dependencies are safe (marks advance only in the serial round loop).
func (st *state) collectTriggers(di int, d dep.TGD, delta hom.Delta) []hom.Binding {
	if st.opts.NaiveTriggers {
		delta = nil
	}
	if st.opts.Oblivious {
		fired, vars := st.fired[di], st.uvars[di]
		return hom.EnumerateDelta(d.Body, st.inst, nil, delta, st.hom, func(b hom.Binding) bool {
			return !fired[makeFiredKey(vars, b)]
		})
	}
	return hom.EnumerateDelta(d.Body, st.inst, nil, delta, st.hom, func(b hom.Binding) bool {
		return !hom.Exists(d.Head, st.inst, b, st.hom)
	})
}

// fireTriggers fires the collected triggers of d that are still
// applicable, serially and in collection order. Triggers were collected
// up front so the enumeration never observes its own insertions; new
// triggers created by the fired steps are picked up by the next round.
func (st *state) fireTriggers(di int, d dep.TGD, triggers []hom.Binding, witness *rel.Instance) (bool, error) {
	progressed := false
	for _, b := range triggers {
		if st.opts.Oblivious {
			key := makeFiredKey(st.uvars[di], b)
			if st.fired[di][key] {
				continue
			}
			st.fired[di][key] = true
		} else if hom.Exists(d.Head, st.inst, b, st.hom) {
			// Re-check: an earlier firing in this pass may have
			// satisfied this trigger (restricted chase).
			continue
		}
		if err := st.fire(d, b, witness); err != nil {
			return progressed, err
		}
		progressed = true
	}
	return progressed, nil
}

// fire applies one tgd step for the trigger b.
func (st *state) fire(d dep.TGD, b hom.Binding, witness *rel.Instance) error {
	if err := st.ctxErr(); err != nil {
		return err
	}
	if st.steps >= st.budget {
		return fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
	}
	st.steps++
	// Trigger bindings are consumed exactly once (fireTriggers reads the
	// fired key and re-checks satisfaction before this call), so the
	// existential extension can write into b directly instead of cloning.
	ext := b
	if exist := d.ExistentialVars(); len(exist) > 0 {
		if witness == nil {
			for _, v := range exist {
				ext[v] = st.nulls.Fresh()
			}
		} else {
			// Solution-aware step: extend the trigger homomorphism into
			// the witness, which satisfies the tgd, so an extension is
			// guaranteed when the trigger facts lie inside the witness.
			w, ok := hom.FindOne(d.Head, witness, b, st.hom)
			if !ok {
				return fmt.Errorf("chase: solution-aware step for %s found no witness extension; witness does not satisfy the tgds", d.Label)
			}
			for _, v := range exist {
				ext[v] = w[v]
			}
		}
	}
	for _, a := range d.Head {
		st.inst.AddTuple(a.Rel, groundAtom(a, ext))
	}
	return nil
}

// egdSkip reports whether egd di's detection pass can be skipped: its
// last clean pass recorded a watermark, no merge has invalidated it,
// and none of the egd's body relations has grown since. Relations are
// append-only between merges, so equal counts mean identical tuple
// sets, an unchanged body join, and therefore no new trigger.
func (st *state) egdSkip(di int, roundStart hom.Delta, dirty bool) bool {
	if st.opts.NaiveTriggers || st.egdMarks[di] == nil {
		return false
	}
	cur := roundStart
	if dirty {
		cur = hom.Delta(st.inst.TupleCounts())
	}
	mark := st.egdMarks[di]
	for _, r := range st.erels[di] {
		if cur[r] > mark[r] {
			return false
		}
	}
	return true
}

// egdPass applies egd steps until d has no active trigger or the chase
// fails. Each merge rebuilds the instance, so the pass restarts its
// trigger scan after every step.
func (st *state) egdPass(d dep.EGD) (progressed, failed bool, err error) {
	for {
		var l, r rel.Value
		found := false
		hom.ForEach(d.Body, st.inst, nil, st.hom, func(b hom.Binding) bool {
			if b[d.Left] != b[d.Right] {
				l, r = b[d.Left], b[d.Right]
				found = true
				return false
			}
			return true
		})
		if !found {
			return progressed, false, nil
		}
		if err := st.ctxErr(); err != nil {
			return progressed, false, err
		}
		if st.steps >= st.budget {
			return progressed, false, fmt.Errorf("%w (after %d steps, chasing %s)", ErrBudgetExhausted, st.steps, d.Label)
		}
		st.steps++
		if l.IsConst() && r.IsConst() {
			return progressed, true, nil
		}
		// Replace a null by the other value; if one side is a constant
		// the null is replaced by the constant.
		from, to := l, r
		if from.IsConst() {
			from, to = to, from
		}
		st.inst = st.inst.ReplaceValue(from, to)
		progressed = true
	}
}

func restrict(b hom.Binding, vars []string) hom.Binding {
	out := make(hom.Binding, len(vars))
	for _, v := range vars {
		out[v] = b[v]
	}
	return out
}

func groundAtom(a dep.Atom, b hom.Binding) rel.Tuple {
	t := make(rel.Tuple, len(a.Args))
	for i, term := range a.Args {
		if term.IsConst {
			t[i] = rel.Const(term.Name)
		} else {
			v, ok := b[term.Name]
			if !ok {
				panic(fmt.Sprintf("chase: unbound variable %s grounding %s", term.Name, a))
			}
			t[i] = v
		}
	}
	return t
}

// firedKey identifies an oblivious-chase trigger of one tgd: the values
// its sorted universal variables are bound to. It is comparable, so it
// keys the per-tgd fired set directly — the common case (≤ 4 universal
// variables) stores the values inline and a lookup allocates nothing,
// unlike the string key it replaced, which built and joined
// "var=kindvalue" parts on every probe. Wider bindings spill the
// remainder into one encoded string.
type firedKey struct {
	inline [firedKeyInline]rel.Value
	rest   string
}

const firedKeyInline = 4

// makeFiredKey builds the key for b over the tgd's pre-sorted universal
// variables. Variable names are not part of the key: the fired set is
// per-dependency and the variable order is fixed, so positions alone
// disambiguate.
func makeFiredKey(vars []string, b hom.Binding) firedKey {
	var k firedKey
	n := len(vars)
	if n > firedKeyInline {
		n = firedKeyInline
	}
	for i := 0; i < n; i++ {
		k.inline[i] = b[vars[i]]
	}
	if len(vars) > firedKeyInline {
		var sb strings.Builder
		for _, v := range vars[firedKeyInline:] {
			val := b[v]
			if val.IsNull() {
				sb.WriteByte('n')
			} else {
				sb.WriteByte('c')
			}
			sb.WriteString(val.String())
			sb.WriteByte(0)
		}
		k.rest = sb.String()
	}
	return k
}
