package chase

// Resuming a finished chase after new facts arrive. The append-only
// watermark invariant (relations only grow while no egd merges, and the
// old prefix is immutable) means a finished restricted chase over pure
// tgds can continue from its own fixpoint: every trigger whose body
// facts predate the fixpoint was satisfied when the run ended and stays
// satisfied under further additions, so only triggers touching the
// appended facts need enumeration. Whenever that reasoning does not
// apply — an egd merged values during the previous run, egds (which
// could fire) are present now, or the previous run was oblivious (its
// fired sets are not retained) — Resume falls back to a full re-chase
// from the previous run's true start united with the appended facts.

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// Resumable reports whether a previous chase result can be resumed
// incrementally for the given dependencies and options. It requires a
// successful restricted-chase fixpoint whose run never merged values,
// and a dependency set in which no egd could fire (pure tgds).
func Resumable(prev *Result, deps []dep.Dependency, opts Options) bool {
	if prev == nil || prev.Instance == nil || prev.Failed || prev.EgdFired || opts.Oblivious {
		return false
	}
	for _, d := range deps {
		if _, ok := d.(dep.TGD); !ok {
			return false
		}
	}
	return true
}

// Resume continues a finished chase after appending the facts of
// appended to its start. When the incremental path is sound (see
// Resumable) it seeds every tgd's delta watermark with the previous
// fixpoint's tuple counts, so the first round enumerates only triggers
// touching the appended facts; otherwise it re-chases from
// Union(prev.Start, appended). The returned bool reports which path
// ran. Neither prev's instances nor appended are mutated, and the
// result's Steps counts only the steps of this run. The resumed
// fixpoint is a chase result of Union(prev.Start, appended): continuing
// a terminated chase with more facts is itself a valid chase sequence
// of the enlarged start.
func Resume(prev *Result, deps []dep.Dependency, appended *rel.Instance, opts Options) (*Result, bool, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, false, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	if prev == nil || prev.Start == nil {
		return nil, false, fmt.Errorf("chase: cannot resume a result without its start instance")
	}
	start := rel.Union(prev.Start, appended)
	if !Resumable(prev, deps, opts) {
		res, err := Run(start, deps, opts)
		return res, false, err
	}
	inst := prev.Instance.Clone()
	// The seed watermark is the fixpoint's counts, snapshotted before
	// the appended facts land: every tgd "has already enumerated" the
	// old prefix.
	seed := hom.Delta(inst.TupleCounts())
	for _, f := range appended.Facts() {
		inst.AddTuple(f.Rel, f.Args.Clone())
	}
	st := &state{
		inst:   inst,
		start:  start,
		opts:   opts,
		hom:    opts.homOpts(),
		nulls:  opts.nulls(inst),
		budget: opts.maxSteps(),
		marks:  make([]hom.Delta, len(deps)),
	}
	for i := range st.marks {
		st.marks[i] = seed
	}
	res, err := st.run(deps, nil)
	return res, true, err
}
