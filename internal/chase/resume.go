package chase

// Resuming a finished chase after new facts arrive. The append-only
// watermark invariant (the old prefix of every relation is immutable
// except for in-place merge rewrites, which the change log records)
// means a finished restricted chase can continue from its own fixpoint:
// every trigger whose body facts predate the fixpoint was satisfied
// when the run ended and stays satisfied under further additions, so
// only triggers touching the appended facts need enumeration.
//
// With the union-find egd engine this extends to key-shaped egds
// (dep.EGD.KeyShaped): the fixpoint satisfies every egd, so the egd
// detection passes over old facts alone are clean, and the previous
// run's merge history is retained as Result.UnionFind — appended facts
// are canonicalized through it before landing, so a fact mentioning a
// merged-away null joins the class its survivor represents. The
// continuation then runs the ordinary chase with pre-seeded watermarks;
// any new merges it performs rewrite old tuples in place and re-enter
// them through the change log, exactly as in a cold run. Whenever that
// reasoning does not apply — a non-key egd is present, the previous run
// merged values but retained no union-find (legacy rebuild engine), the
// run failed, or it was oblivious (fired sets are not retained) —
// Resume falls back to a full re-chase from the previous run's true
// start united with the appended facts.

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// Fallback reasons reported by FallbackReason; the empty string means
// the incremental path is sound. Servers aggregate these as metric
// labels, so the strings are part of the observable surface.
const (
	// FallbackNone: resumable, no fallback.
	FallbackNone = ""
	// FallbackNoPrev: no previous result (or no retained fixpoint) to
	// resume from.
	FallbackNoPrev = "no-previous-result"
	// FallbackFailed: the previous run failed; there is no fixpoint.
	FallbackFailed = "failed"
	// FallbackOblivious: oblivious chase requested; per-tgd fired sets
	// are not retained across runs.
	FallbackOblivious = "oblivious"
	// FallbackEgd: an egd blocks the incremental path — a non-key-shaped
	// egd is present, the legacy rebuild engine is selected, or the
	// previous run merged values without retaining its union-find.
	FallbackEgd = "egd"
	// FallbackUnsupported: the dependency set contains kinds the chase
	// cannot resume (disjunctive tgds).
	FallbackUnsupported = "unsupported"
)

// FallbackReason explains why a previous chase result cannot be resumed
// incrementally for the given dependencies and options, or returns
// FallbackNone ("") when it can. The non-empty reasons are the Fallback*
// constants; when several apply the most fundamental wins (no previous
// result, then failure, then obliviousness, then dependency shape).
func FallbackReason(prev *Result, deps []dep.Dependency, opts Options) string {
	if prev == nil || prev.Instance == nil {
		return FallbackNoPrev
	}
	if prev.Failed {
		return FallbackFailed
	}
	if opts.Oblivious {
		return FallbackOblivious
	}
	if prev.EgdFired && prev.UnionFind == nil {
		return FallbackEgd
	}
	for _, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
		case dep.EGD:
			if opts.RebuildMerges || !d.KeyShaped() {
				return FallbackEgd
			}
		default:
			return FallbackUnsupported
		}
	}
	return FallbackNone
}

// Resumable reports whether a previous chase result can be resumed
// incrementally for the given dependencies and options. It requires a
// successful restricted-chase fixpoint over tgds and key-shaped egds
// (dep.EGD.KeyShaped), with the previous run's union-find retained
// whenever it merged values. FallbackReason names the blocking
// condition when this returns false.
func Resumable(prev *Result, deps []dep.Dependency, opts Options) bool {
	return FallbackReason(prev, deps, opts) == FallbackNone
}

// Resume continues a finished chase after appending the facts of
// appended to its start. When the incremental path is sound (see
// Resumable) it seeds every dependency's delta watermark with the
// previous fixpoint's tuple counts — so the first round enumerates only
// triggers touching the appended facts — and canonicalizes each
// appended fact through the previous run's union-find before adding it;
// otherwise it re-chases from Union(prev.Start, appended). The returned
// bool reports which path ran. Neither prev's instances nor appended
// are mutated, and the result's Steps and Merges count only this run.
// The resumed fixpoint is a chase result of Union(prev.Start, appended):
// the previous sequence replayed on the enlarged start reaches the
// fixpoint plus the canonicalized appended facts (the old merges
// substitute through the appended facts exactly as Find does), and
// continuing a terminated chase with more facts is itself a valid chase
// sequence of the enlarged start.
func Resume(prev *Result, deps []dep.Dependency, appended *rel.Instance, opts Options) (*Result, bool, error) {
	for _, d := range deps {
		if _, ok := d.(dep.DisjunctiveTGD); ok {
			return nil, false, fmt.Errorf("chase: cannot chase disjunctive tgd %s", d.DepLabel())
		}
	}
	if prev == nil || prev.Start == nil {
		return nil, false, fmt.Errorf("chase: cannot resume a result without its start instance")
	}
	start := rel.Union(prev.Start, appended)
	if !Resumable(prev, deps, opts) {
		res, err := Run(start, deps, opts)
		return res, false, err
	}
	inst := prev.Instance.Clone()
	// The seed watermark is the fixpoint's counts, snapshotted before
	// the appended facts land: every dependency "has already seen" the
	// old prefix — tgd triggers over it are satisfied, egd passes over
	// it are clean — and the change log starts empty (logPos 0).
	seed := hom.Delta(inst.TupleCounts())
	uf := prev.UnionFind.Clone()
	for _, f := range appended.Facts() {
		t := f.Args.Clone()
		if uf != nil {
			for i, v := range t {
				t[i] = uf.Find(v)
			}
		}
		inst.AddTuple(f.Rel, t)
	}
	nulls := opts.nulls(inst)
	if uf != nil {
		// Nulls merged away by the previous run no longer occur in the
		// fixpoint; their labels must stay retired or Find would identify
		// a fresh null with an old class.
		nulls.Seen(uf.MaxNullID())
	}
	st := &state{
		inst:     inst,
		start:    start,
		opts:     opts,
		hom:      opts.homOpts(),
		nulls:    nulls,
		budget:   opts.maxSteps(),
		egdFired: prev.EgdFired,
		uf:       uf,
		marks:    make([]mark, len(deps)),
		egdMarks: make([]mark, len(deps)),
	}
	for i := range st.marks {
		st.marks[i] = mark{counts: seed}
		st.egdMarks[i] = mark{counts: seed}
	}
	res, err := st.run(deps, nil)
	return res, true, err
}
