package chase_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chase"
	"repro/internal/workload"
)

// TestChaseParallelMatchesSerial: on random weakly acyclic dependency
// sets, the parallel chase produces a byte-identical Result — the same
// instance (including null labels), step count, and failure report — as
// the serial chase, at every parallelism level and seed, in both
// restricted and oblivious mode.
func TestChaseParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 60; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		inst.Freeze()
		for _, oblivious := range []bool{false, true} {
			ref, refErr := chase.Run(inst, deps, chase.Options{Oblivious: oblivious, Parallelism: 1})
			for _, par := range []int{2, 4} {
				for _, seed := range []int64{0, 19} {
					got, err := chase.Run(inst, deps, chase.Options{Oblivious: oblivious, Parallelism: par, Seed: seed})
					if (refErr == nil) != (err == nil) {
						t.Fatalf("trial %d obl=%v par=%d: err=%v, serial err=%v", trial, oblivious, par, err, refErr)
					}
					if refErr != nil {
						continue
					}
					if got.Steps != ref.Steps || got.Failed != ref.Failed || got.FailedOn != ref.FailedOn {
						t.Fatalf("trial %d obl=%v par=%d seed=%d: (steps=%d failed=%v on=%q), serial (steps=%d failed=%v on=%q)",
							trial, oblivious, par, seed, got.Steps, got.Failed, got.FailedOn, ref.Steps, ref.Failed, ref.FailedOn)
					}
					if got.Instance.String() != ref.Instance.String() {
						t.Fatalf("trial %d obl=%v par=%d seed=%d: instances differ\nparallel:\n%s\nserial:\n%s",
							trial, oblivious, par, seed, got.Instance, ref.Instance)
					}
				}
			}
		}
	}
}

// TestChaseSolutionAwareParallelMatchesSerial: the solution-aware chase
// is byte-identical under parallelism too.
func TestChaseSolutionAwareParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		wres, err := chase.Run(inst, deps, chase.Options{})
		if err != nil || wres.Failed {
			continue
		}
		witness := wres.Instance
		witness.Freeze()
		inst.Freeze()
		ref, refErr := chase.RunSolutionAware(inst, deps, witness, chase.Options{Parallelism: 1})
		got, err := chase.RunSolutionAware(inst, deps, witness, chase.Options{Parallelism: 4})
		if (refErr == nil) != (err == nil) {
			t.Fatalf("trial %d: err=%v, serial err=%v", trial, err, refErr)
		}
		if refErr != nil {
			continue
		}
		if got.Steps != ref.Steps || got.Instance.String() != ref.Instance.String() {
			t.Fatalf("trial %d: parallel solution-aware chase diverged (steps %d vs %d)", trial, got.Steps, ref.Steps)
		}
	}
}

// TestChaseConcurrentStress: many goroutines chase the same frozen
// start instance with the same dependencies concurrently; every run
// must agree with the serial reference. Run under -race this validates
// the freeze-after-build discipline end to end.
func TestChaseConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	deps := workload.RandomWeaklyAcyclicDeps(rng)
	inst := workload.RandomLayerInstance(rng)
	inst.Freeze()
	ref, refErr := chase.Run(inst, deps, chase.Options{Parallelism: 1})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([]*chase.Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = chase.Run(inst, deps, chase.Options{Parallelism: 2, Seed: int64(g)})
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if (refErr == nil) != (errs[g] == nil) {
			t.Fatalf("goroutine %d: err=%v, serial err=%v", g, errs[g], refErr)
		}
		if refErr != nil {
			continue
		}
		if results[g].Steps != ref.Steps || results[g].Instance.String() != ref.Instance.String() {
			t.Fatalf("goroutine %d diverged from the serial chase", g)
		}
	}
	if !inst.Frozen() {
		t.Fatal("shared instance lost its frozen mark")
	}
}
