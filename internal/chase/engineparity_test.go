package chase_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
	"repro/internal/workload"
)

// resultFingerprint captures every observable surface of a chase run
// that the union-find engine promises to keep byte-identical to the
// legacy rebuild-on-merge engine.
type resultFingerprint struct {
	inst     string
	steps    int
	failed   bool
	failedOn string
	egdFired bool
	err      string
}

func fingerprint(res *chase.Result, err error) resultFingerprint {
	fp := resultFingerprint{}
	if err != nil {
		fp.err = err.Error()
	}
	if res == nil {
		return fp
	}
	fp.steps = res.Steps
	fp.failed = res.Failed
	fp.failedOn = res.FailedOn
	fp.egdFired = res.EgdFired
	if res.Instance != nil {
		fp.inst = res.Instance.String()
	}
	return fp
}

// injectNullDrafts seeds key violations into a random layer instance:
// for a handful of first-column values that already appear, it adds a
// second fact with a labeled null in the dependent column. Restricted
// chases only fire merges on violations present in (or derived from)
// the start instance, so without these drafts most random trials never
// exercise the merge path at all.
func injectNullDrafts(rng *rand.Rand, inst *rel.Instance) {
	next := 1
	for _, name := range []string{"L0", "L1"} {
		r := inst.Relation(name)
		if r == nil || r.Len() == 0 {
			continue
		}
		for d := 0; d < 1+rng.Intn(2); d++ {
			key := r.TupleAt(rng.Intn(r.Len()))[0]
			inst.Add(name, key, rel.Null(next))
			next++
			if rng.Intn(2) == 0 {
				inst.Add(name, key, rel.Null(next))
				next++
			}
		}
	}
}

// TestEngineParityProperty is the parity property suite for the
// union-find egd engine: over random egd-bearing settings and start
// instances, the default engine and the RebuildMerges ablation must
// produce byte-identical instances, step counts, failure verdicts, and
// EgdFired flags — in restricted, oblivious, and solution-aware modes,
// at Parallelism 1 and 4.
func TestEngineParityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 40
	merged := 0
	for trial := 0; trial < trials; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		injectNullDrafts(rng, inst)

		// Solution-aware witness: the fixpoint of a plain restricted
		// chase satisfies all deps and contains the start instance.
		witness, werr := func() (*rel.Instance, error) {
			res, err := chase.Run(inst, deps, chase.Options{})
			if err != nil || res.Failed {
				return nil, err
			}
			return res.Instance, nil
		}()

		for _, par := range []int{1, 4} {
			for _, mode := range []string{"restricted", "oblivious", "solution-aware"} {
				name := fmt.Sprintf("trial %d mode %s par %d", trial, mode, par)
				run := func(opts chase.Options) (*chase.Result, error) {
					switch mode {
					case "oblivious":
						opts.Oblivious = true
						return chase.Run(inst, deps, opts)
					case "solution-aware":
						if witness == nil {
							return nil, nil
						}
						return chase.RunSolutionAware(inst, deps, witness, opts)
					default:
						return chase.Run(inst, deps, opts)
					}
				}
				if mode == "solution-aware" && (witness == nil || werr != nil) {
					continue
				}

				ufRes, ufErr := run(chase.Options{Parallelism: par})
				rbRes, rbErr := run(chase.Options{Parallelism: par, RebuildMerges: true})

				got := fingerprint(ufRes, ufErr)
				want := fingerprint(rbRes, rbErr)
				if got != want {
					t.Fatalf("%s: engines diverge:\n  uf:      %+v\n  rebuild: %+v", name, got, want)
				}
				if ufRes == nil || ufRes.Failed || ufErr != nil {
					continue
				}
				if ufRes.Merges > 0 {
					merged++
					if ufRes.UnionFind == nil {
						t.Fatalf("%s: merging run retained no union-find", name)
					}
				}
				if rbRes.UnionFind != nil {
					t.Fatalf("%s: rebuild run must not retain a union-find", name)
				}
				if !chase.Check(ufRes.Instance, deps, hom.Options{Parallelism: par}) {
					t.Fatalf("%s: union-find fixpoint violates deps", name)
				}
			}
		}
	}
	if merged == 0 {
		t.Fatal("property suite never exercised the merge path; strengthen injectNullDrafts")
	}
}

// TestEngineParityKeyedLAV pins parity on the structured egd-heavy
// workload used by the benchmarks, where every person contributes
// exactly one merge.
func TestEngineParityKeyedLAV(t *testing.T) {
	s := workload.KeyedLAVSetting()
	deps := append(append([]dep.Dependency{}, s.StDeps()...), s.T...)
	i, j := workload.KeyedLAVInstance(80)
	start := rel.Union(i, j)
	for _, par := range []int{1, 4} {
		uf, err := chase.Run(start, deps, chase.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("par %d: uf engine: %v", par, err)
		}
		rb, err := chase.Run(start, deps, chase.Options{Parallelism: par, RebuildMerges: true})
		if err != nil {
			t.Fatalf("par %d: rebuild engine: %v", par, err)
		}
		if got, want := fingerprint(uf, nil), fingerprint(rb, nil); got != want {
			t.Fatalf("par %d: engines diverge:\n  uf:      %+v\n  rebuild: %+v", par, got, want)
		}
		if uf.Merges == 0 {
			t.Fatalf("par %d: keyed LAV workload produced no merges", par)
		}
	}
}
