package chase

import (
	"errors"
	"testing"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

func pathToH() dep.TGD {
	return dep.TGD{
		Label: "st",
		Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("z")), dep.NewAtom("E", dep.Var("z"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("H", dep.Var("x"), dep.Var("y"))},
	}
}

func existBTgd() dep.TGD {
	return dep.TGD{
		Label: "ex",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
	}
}

func TestChaseFullTGD(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	inst.Add("E", rel.Const("b"), rel.Const("c"))
	res, err := Run(inst, []dep.Dependency{pathToH()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.Contains(rel.Fact{Rel: "H", Args: rel.Tuple{rel.Const("a"), rel.Const("c")}}) {
		t.Errorf("H(a,c) not derived:\n%s", res.Instance)
	}
	if res.Steps != 1 {
		t.Errorf("steps = %d, want 1", res.Steps)
	}
	if inst.Relation("H") != nil {
		t.Error("Run mutated its input")
	}
}

func TestChaseExistentialCreatesNull(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	res, err := Run(inst, []dep.Dependency{existBTgd()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Instance.Relation("B")
	if b == nil || b.Len() != 1 {
		t.Fatalf("B not populated:\n%s", res.Instance)
	}
	tup := b.TupleAt(0)
	if tup[0] != rel.Const("a") || !tup[1].IsNull() {
		t.Errorf("B tuple = %v, want (a, null)", tup)
	}
}

func TestRestrictedChaseSkipsSatisfiedTrigger(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	inst.Add("B", rel.Const("a"), rel.Const("b"))
	res, err := Run(inst, []dep.Dependency{existBTgd()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || res.Instance.NumFacts() != 2 {
		t.Errorf("restricted chase fired on satisfied trigger: steps=%d\n%s", res.Steps, res.Instance)
	}
}

func TestObliviousChaseFiresAnyway(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	inst.Add("B", rel.Const("a"), rel.Const("b"))
	res, err := Run(inst, []dep.Dependency{existBTgd()}, Options{Oblivious: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 {
		t.Errorf("oblivious chase steps = %d, want 1", res.Steps)
	}
	if res.Instance.Relation("B").Len() != 2 {
		t.Errorf("oblivious chase should add a second B tuple:\n%s", res.Instance)
	}
	// And it must not refire the same trigger forever.
	res2, err := Run(inst, []dep.Dependency{existBTgd()}, Options{Oblivious: true, MaxSteps: 50})
	if err != nil {
		t.Fatalf("oblivious chase diverged: %v", err)
	}
	if res2.Steps != 1 {
		t.Errorf("oblivious trigger fired %d times", res2.Steps)
	}
}

func TestEGDMergesNullWithConstant(t *testing.T) {
	egd := dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	inst := rel.NewInstance()
	inst.Add("B", rel.Const("a"), rel.Const("b"))
	inst.Add("B", rel.Const("a"), rel.Null(1))
	res, err := Run(inst, []dep.Dependency{egd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("merge with null must not fail")
	}
	if res.Instance.NumFacts() != 1 {
		t.Errorf("expected 1 fact after merge:\n%s", res.Instance)
	}
	if res.Instance.HasNulls() {
		t.Error("null survived the merge")
	}
}

func TestEGDFailsOnDistinctConstants(t *testing.T) {
	egd := dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	inst := rel.NewInstance()
	inst.Add("B", rel.Const("a"), rel.Const("b"))
	inst.Add("B", rel.Const("a"), rel.Const("c"))
	res, err := Run(inst, []dep.Dependency{egd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.FailedOn != "key" {
		t.Errorf("expected failing chase, got %+v", res)
	}
}

func TestEGDMergesTwoNulls(t *testing.T) {
	egd := dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	inst := rel.NewInstance()
	inst.Add("B", rel.Const("a"), rel.Null(1))
	inst.Add("B", rel.Const("a"), rel.Null(2))
	res, err := Run(inst, []dep.Dependency{egd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Instance.NumFacts() != 1 {
		t.Errorf("null/null merge wrong: failed=%v\n%s", res.Failed, res.Instance)
	}
}

func TestCyclicChaseExhaustsBudget(t *testing.T) {
	cyc := dep.TGD{
		Label: "cyc",
		Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
	}
	if dep.WeaklyAcyclic([]dep.TGD{cyc}) {
		t.Fatal("test dependency should be cyclic")
	}
	inst := rel.NewInstance()
	inst.Add("T", rel.Const("a"), rel.Const("b"))
	_, err := Run(inst, []dep.Dependency{cyc}, Options{MaxSteps: 100})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
}

func TestWeaklyAcyclicChaseTerminates(t *testing.T) {
	chain := []dep.Dependency{
		dep.TGD{
			Label: "c1",
			Body:  []dep.Atom{dep.NewAtom("T0", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T1", dep.Var("y"), dep.Var("z"))},
		},
		dep.TGD{
			Label: "c2",
			Body:  []dep.Atom{dep.NewAtom("T1", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("T2", dep.Var("y"), dep.Var("z"))},
		},
	}
	inst := rel.NewInstance()
	for i := 0; i < 10; i++ {
		inst.Add("T0", rel.Const(string(rune('a'+i))), rel.Const(string(rune('b'+i))))
	}
	res, err := Run(inst, chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Check(res.Instance, chain, hom.Options{}) {
		t.Error("chase fixpoint does not satisfy dependencies")
	}
	if res.Steps != 20 {
		t.Errorf("steps = %d, want 20", res.Steps)
	}
}

func TestChaseResultSatisfiesDeps(t *testing.T) {
	deps := []dep.Dependency{pathToH(), existBTgd()}
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	inst.Add("E", rel.Const("b"), rel.Const("c"))
	inst.Add("E", rel.Const("c"), rel.Const("a"))
	inst.Add("A", rel.Const("q"))
	res, err := Run(inst, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Check(res.Instance, deps, hom.Options{}) {
		t.Errorf("fixpoint violates dependencies:\n%s", res.Instance)
	}
}

func TestSolutionAwareChaseUsesWitnessValues(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	witness := rel.NewInstance()
	witness.Add("A", rel.Const("a"))
	witness.Add("B", rel.Const("a"), rel.Const("w"))
	res, err := RunSolutionAware(inst, []dep.Dependency{existBTgd()}, witness, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance.HasNulls() {
		t.Error("solution-aware chase created a null")
	}
	if !witness.ContainsAll(res.Instance) {
		t.Errorf("solution-aware result not contained in witness:\n%s", res.Instance)
	}
	if !res.Instance.Contains(rel.Fact{Rel: "B", Args: rel.Tuple{rel.Const("a"), rel.Const("w")}}) {
		t.Error("witness value not used")
	}
}

func TestSolutionAwareChaseBadWitness(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	witness := rel.NewInstance()
	witness.Add("A", rel.Const("a")) // violates the tgd: no B fact
	_, err := RunSolutionAware(inst, []dep.Dependency{existBTgd()}, witness, Options{})
	if err == nil {
		t.Error("expected error for witness violating the tgds")
	}
}

func TestChaseRejectsDisjunctive(t *testing.T) {
	d := dep.DisjunctiveTGD{
		Label:     "d",
		Body:      []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Disjuncts: [][]dep.Atom{{dep.NewAtom("B", dep.Var("x"), dep.Var("x"))}},
	}
	if _, err := Run(rel.NewInstance(), []dep.Dependency{d}, Options{}); err == nil {
		t.Error("chase must reject disjunctive tgds")
	}
	if _, err := RunSolutionAware(rel.NewInstance(), []dep.Dependency{d}, rel.NewInstance(), Options{}); err == nil {
		t.Error("solution-aware chase must reject disjunctive tgds")
	}
}

func TestCheckViolations(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	viols := Violations(inst, []dep.Dependency{existBTgd()}, hom.Options{})
	if len(viols) != 1 || viols[0].Dep != "ex" {
		t.Errorf("violations = %v", viols)
	}
	if Check(inst, []dep.Dependency{existBTgd()}, hom.Options{}) {
		t.Error("Check passed a violated instance")
	}
}

func TestCheckDisjunctiveTGD(t *testing.T) {
	d := dep.DisjunctiveTGD{
		Label: "color",
		Body:  []dep.Atom{dep.NewAtom("V", dep.Var("x"))},
		Disjuncts: [][]dep.Atom{
			{dep.NewAtom("R", dep.Var("x"))},
			{dep.NewAtom("B", dep.Var("x"))},
		},
	}
	inst := rel.NewInstance()
	inst.Add("V", rel.Const("v1"))
	inst.Add("B", rel.Const("v1"))
	if !Check(inst, []dep.Dependency{d}, hom.Options{}) {
		t.Error("satisfied disjunct not recognized")
	}
	inst2 := rel.NewInstance()
	inst2.Add("V", rel.Const("v1"))
	if Check(inst2, []dep.Dependency{d}, hom.Options{}) {
		t.Error("violated disjunctive tgd passed")
	}
}

func TestCheckEGD(t *testing.T) {
	egd := dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	ok := rel.NewInstance()
	ok.Add("B", rel.Const("a"), rel.Const("b"))
	if !Check(ok, []dep.Dependency{egd}, hom.Options{}) {
		t.Error("satisfied egd reported violated")
	}
	bad := rel.NewInstance()
	bad.Add("B", rel.Const("a"), rel.Const("b"))
	bad.Add("B", rel.Const("a"), rel.Const("c"))
	viols := Violations(bad, []dep.Dependency{egd}, hom.Options{})
	if len(viols) == 0 {
		t.Error("violated egd not reported")
	}
}

func TestViolationStringRendering(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	viols := Violations(inst, []dep.Dependency{existBTgd()}, hom.Options{})
	if len(viols) != 1 {
		t.Fatal("expected one violation")
	}
	if viols[0].String() == "" {
		t.Error("empty violation string")
	}
}

// Lemma 1 shape: the solution-aware chase length is bounded by a
// polynomial in |K| for weakly acyclic dependencies. Here: linear for a
// copy tgd.
func TestSolutionAwareChaseLengthLinear(t *testing.T) {
	copyTgd := dep.TGD{
		Label: "copy",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
	}
	for _, n := range []int{5, 10, 20} {
		inst := rel.NewInstance()
		witness := rel.NewInstance()
		for i := 0; i < n; i++ {
			v := rel.Const(string(rune('a' + i)))
			inst.Add("A", v)
			witness.Add("A", v)
			witness.Add("B", v, rel.Const("w"))
		}
		res, err := RunSolutionAware(inst, []dep.Dependency{copyTgd}, witness, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != n {
			t.Errorf("n=%d: steps = %d, want %d", n, res.Steps, n)
		}
	}
}
