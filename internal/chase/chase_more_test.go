package chase

import (
	"errors"
	"testing"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// TestEGDBudgetExhaustion: egd steps also consume the budget, so a
// pathological merge cascade cannot spin forever.
func TestEGDBudgetExhaustion(t *testing.T) {
	egd := dep.EGD{
		Label: "key",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	inst := rel.NewInstance()
	for k := 0; k < 50; k++ {
		inst.Add("B", rel.Const("a"), rel.Null(k+1))
	}
	// 49 merges needed; a budget of 10 must trip.
	_, err := Run(inst, []dep.Dependency{egd}, Options{MaxSteps: 10})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
	// With enough budget the cascade converges to one fact.
	res, err := Run(inst, []dep.Dependency{egd}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance.NumFacts() != 1 || res.Steps != 49 {
		t.Errorf("facts=%d steps=%d, want 1 fact in 49 steps", res.Instance.NumFacts(), res.Steps)
	}
}

// TestMixedTGDandEGDConvergence: tgds create facts whose nulls an egd
// then merges; the chase must interleave to a fixpoint satisfying both.
func TestMixedTGDandEGDConvergence(t *testing.T) {
	deps := []dep.Dependency{
		dep.TGD{
			Label: "mk",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("u"))},
		},
		dep.EGD{
			Label: "key",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		},
	}
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	inst.Add("B", rel.Const("a"), rel.Const("v"))
	res, err := Run(inst, deps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal("unexpected failure")
	}
	if !Check(res.Instance, deps, hom.Options{}) {
		t.Errorf("fixpoint violates dependencies:\n%s", res.Instance)
	}
	// The existing B(a,v) satisfies the tgd, so no new fact and no
	// merge should have been needed (restricted chase).
	if res.Instance.NumFacts() != 2 {
		t.Errorf("facts = %d:\n%s", res.Instance.NumFacts(), res.Instance)
	}
}

// TestChaseConstantsInDependency: constants in bodies restrict triggers
// and constants in heads are emitted verbatim.
func TestChaseConstantsInDependency(t *testing.T) {
	d := dep.TGD{
		Label: "admins",
		Body:  []dep.Atom{dep.NewAtom("User", dep.Var("u"), dep.Cst("admin"))},
		Head:  []dep.Atom{dep.NewAtom("Audit", dep.Var("u"), dep.Cst("flagged"))},
	}
	inst := rel.NewInstance()
	inst.Add("User", rel.Const("ada"), rel.Const("admin"))
	inst.Add("User", rel.Const("bob"), rel.Const("guest"))
	res, err := Run(inst, []dep.Dependency{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rel.Fact{Rel: "Audit", Args: rel.Tuple{rel.Const("ada"), rel.Const("flagged")}}
	if !res.Instance.Contains(want) {
		t.Errorf("missing %v:\n%s", want, res.Instance)
	}
	if res.Instance.Relation("Audit").Len() != 1 {
		t.Errorf("guest row should not trigger:\n%s", res.Instance)
	}
}

// TestSolutionAwareWithEGDs: egd steps never apply when the start
// instance is contained in a witness satisfying the egds.
func TestSolutionAwareWithEGDs(t *testing.T) {
	deps := []dep.Dependency{
		dep.TGD{
			Label: "mk",
			Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("u"))},
		},
		dep.EGD{
			Label: "key",
			Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		},
	}
	start := rel.NewInstance()
	start.Add("A", rel.Const("a"))
	witness := rel.NewInstance()
	witness.Add("A", rel.Const("a"))
	witness.Add("B", rel.Const("a"), rel.Const("w"))
	res, err := RunSolutionAware(start, deps, witness, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Instance.HasNulls() {
		t.Errorf("solution-aware run wrong: %+v\n%s", res, res.Instance)
	}
	if !witness.ContainsAll(res.Instance) {
		t.Error("result escaped the witness")
	}
}

// TestMultipleHeadAtomsShareExistential: one chase step grounds every
// head atom with the same fresh null for a shared existential variable.
func TestMultipleHeadAtomsShareExistential(t *testing.T) {
	d := dep.TGD{
		Label: "pair",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Head: []dep.Atom{
			dep.NewAtom("L", dep.Var("x"), dep.Var("u")),
			dep.NewAtom("R", dep.Var("u"), dep.Var("x")),
		},
	}
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("a"))
	res, err := Run(inst, []dep.Dependency{d}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Instance.Relation("L").TupleAt(0)
	r := res.Instance.Relation("R").TupleAt(0)
	if !l[1].IsNull() || l[1] != r[0] {
		t.Errorf("existential not shared across head atoms: L=%v R=%v", l, r)
	}
}

// TestObliviousTriggerKeyDistinguishesKinds: a constant named like a
// null's rendering must not collide in the fired-trigger bookkeeping.
func TestObliviousTriggerKeyDistinguishesKinds(t *testing.T) {
	d := dep.TGD{
		Label: "mk",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("u"))},
	}
	inst := rel.NewInstance()
	inst.Add("A", rel.Const("_N1")) // adversarial constant text
	inst.Add("A", rel.Null(1))
	res, err := Run(inst, []dep.Dependency{d}, Options{Oblivious: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2 distinct trigger firings", res.Steps)
	}
}

// TestEgdOnlyFailedOnReported: the failing dependency label is surfaced.
func TestEgdOnlyFailedOnReported(t *testing.T) {
	egd1 := dep.EGD{
		Label: "harmless",
		Body:  []dep.Atom{dep.NewAtom("C", dep.Var("x"), dep.Var("y")), dep.NewAtom("C", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	egd2 := dep.EGD{
		Label: "violated",
		Body:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y")), dep.NewAtom("B", dep.Var("x"), dep.Var("z"))},
		Left:  "y", Right: "z",
	}
	inst := rel.NewInstance()
	inst.Add("B", rel.Const("a"), rel.Const("b"))
	inst.Add("B", rel.Const("a"), rel.Const("c"))
	res, err := Run(inst, []dep.Dependency{egd1, egd2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.FailedOn != "violated" {
		t.Errorf("FailedOn = %q (failed=%v)", res.FailedOn, res.Failed)
	}
}

// TestChaseSharedNullSource: two chases sharing one NullSource never
// produce colliding labels.
func TestChaseSharedNullSource(t *testing.T) {
	d := dep.TGD{
		Label: "mk",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"))},
		Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("u"))},
	}
	ns := &rel.NullSource{}
	i1 := rel.NewInstance()
	i1.Add("A", rel.Const("a"))
	r1, err := Run(i1, []dep.Dependency{d}, Options{Nulls: ns})
	if err != nil {
		t.Fatal(err)
	}
	i2 := rel.NewInstance()
	i2.Add("A", rel.Const("b"))
	r2, err := Run(i2, []dep.Dependency{d}, Options{Nulls: ns})
	if err != nil {
		t.Fatal(err)
	}
	n1 := r1.Instance.Relation("B").TupleAt(0)[1]
	n2 := r2.Instance.Relation("B").TupleAt(0)[1]
	if n1 == n2 {
		t.Errorf("null labels collided across chases: %v", n1)
	}
}

// TestBudgetHint: rank-based budgets dominate the default for deep
// chains and saturate rather than overflow.
func TestBudgetHint(t *testing.T) {
	full := []dep.TGD{{
		Label: "full",
		Body:  []dep.Atom{dep.NewAtom("A", dep.Var("x"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("B", dep.Var("x"), dep.Var("y"))},
	}}
	if got := BudgetHint(full, 100); got != DefaultMaxSteps {
		t.Errorf("full tgds hint = %d, want default (rank 0, 100^2 < default)", got)
	}
	var chain []dep.TGD
	names := []string{"T0", "T1", "T2", "T3", "T4"}
	for i := 0; i+1 < len(names); i++ {
		chain = append(chain, dep.TGD{
			Label: "c",
			Body:  []dep.Atom{dep.NewAtom(names[i], dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom(names[i+1], dep.Var("y"), dep.Var("z"))},
		})
	}
	if got := BudgetHint(chain, 100); got <= DefaultMaxSteps {
		t.Errorf("deep chain hint = %d, should exceed the default", got)
	}
	// Saturation instead of overflow on huge inputs.
	if got := BudgetHint(chain, 1<<20); got != 1<<40 {
		t.Errorf("hint = %d, want saturation at 2^40", got)
	}
	// Cyclic sets fall back to the default.
	cyc := []dep.TGD{{
		Label: "cyc",
		Body:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("y"))},
		Head:  []dep.Atom{dep.NewAtom("T", dep.Var("y"), dep.Var("z"))},
	}}
	if got := BudgetHint(cyc, 100); got != DefaultMaxSteps {
		t.Errorf("cyclic hint = %d, want default", got)
	}
}

// TestChaseWithinBudgetHint: the actual chase length of the chain
// family stays within its hint.
func TestChaseWithinBudgetHint(t *testing.T) {
	var chain []dep.TGD
	names := []string{"T0", "T1", "T2", "T3"}
	for i := 0; i+1 < len(names); i++ {
		chain = append(chain, dep.TGD{
			Label: "c",
			Body:  []dep.Atom{dep.NewAtom(names[i], dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom(names[i+1], dep.Var("y"), dep.Var("z"))},
		})
	}
	deps := make([]dep.Dependency, len(chain))
	for i, d := range chain {
		deps[i] = d
	}
	inst := rel.NewInstance()
	for k := 0; k < 30; k++ {
		inst.Add("T0", rel.Const(string(rune('a'+k%26))+string(rune('0'+k/26))), rel.Const("b"))
	}
	hint := BudgetHint(chain, inst.NumFacts())
	res, err := Run(inst, deps, Options{MaxSteps: hint})
	if err != nil {
		t.Fatalf("chase exceeded its budget hint %d: %v", hint, err)
	}
	if res.Steps > hint {
		t.Errorf("steps %d > hint %d", res.Steps, hint)
	}
}
