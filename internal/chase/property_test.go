package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// randomWeaklyAcyclicDeps generates a random mix of full tgds, acyclic
// inclusion dependencies with existentials, and key egds over a layered
// schema L0, L1, L2 (edges only go up the layers, so the set is weakly
// acyclic by construction).
func randomWeaklyAcyclicDeps(rng *rand.Rand) []dep.Dependency {
	layers := []string{"L0", "L1", "L2"}
	var out []dep.Dependency
	n := 1 + rng.Intn(4)
	for k := 0; k < n; k++ {
		from := rng.Intn(len(layers) - 1)
		to := from + 1 + rng.Intn(len(layers)-from-1)
		switch rng.Intn(3) {
		case 0: // full copy up
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("full%d", k),
				Body:  []dep.Atom{dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom(layers[to], dep.Var("x"), dep.Var("y"))},
			})
		case 1: // inclusion with existential
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("inc%d", k),
				Body:  []dep.Atom{dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom(layers[to], dep.Var("y"), dep.Var("z"))},
			})
		default: // join body, full head
			out = append(out, dep.TGD{
				Label: fmt.Sprintf("join%d", k),
				Body: []dep.Atom{
					dep.NewAtom(layers[from], dep.Var("x"), dep.Var("y")),
					dep.NewAtom(layers[from], dep.Var("y"), dep.Var("z")),
				},
				Head: []dep.Atom{dep.NewAtom(layers[to], dep.Var("x"), dep.Var("z"))},
			})
		}
	}
	if rng.Intn(2) == 0 {
		lvl := layers[rng.Intn(len(layers))]
		out = append(out, dep.EGD{
			Label: "key-" + lvl,
			Body:  []dep.Atom{dep.NewAtom(lvl, dep.Var("x"), dep.Var("y")), dep.NewAtom(lvl, dep.Var("x"), dep.Var("z"))},
			Left:  "y", Right: "z",
		})
	}
	return out
}

func randomLayerInstance(rng *rand.Rand) *rel.Instance {
	inst := rel.NewInstance()
	dom := []rel.Value{rel.Const("a"), rel.Const("b"), rel.Const("c")}
	for f := 0; f < 1+rng.Intn(5); f++ {
		inst.Add("L0", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
	}
	if rng.Intn(3) == 0 {
		inst.Add("L1", dom[rng.Intn(len(dom))], dom[rng.Intn(len(dom))])
	}
	return inst
}

// TestChaseSoundnessProperty: on random weakly acyclic dependency sets,
// the chase either fails (egd conflict) or reaches a fixpoint that
// satisfies every dependency, contains the input (modulo egd merges of
// nulls — the inputs here are null-free, so containment is exact unless
// the chase failed), and never exhausts the rank-derived budget.
func TestChaseSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		deps := randomWeaklyAcyclicDeps(rng)
		if !dep.WeaklyAcyclic(dep.TGDs(deps)) {
			t.Fatalf("trial %d: generator produced a non-weakly-acyclic set", trial)
		}
		inst := randomLayerInstance(rng)
		budget := BudgetHint(dep.TGDs(deps), inst.NumFacts())
		res, err := Run(inst, deps, Options{MaxSteps: budget})
		if err != nil {
			t.Fatalf("trial %d: weakly acyclic chase exhausted its budget %d: %v\ndeps: %v", trial, budget, err, deps)
		}
		if res.Failed {
			// egd failure on all-constant data is legitimate; nothing
			// further to check.
			continue
		}
		if !Check(res.Instance, deps, hom.Options{}) {
			t.Fatalf("trial %d: fixpoint violates dependencies\ndeps: %v\nresult:\n%s", trial, deps, res.Instance)
		}
		if !res.Instance.ContainsAll(inst) {
			t.Fatalf("trial %d: chase lost input facts", trial)
		}
		// Restricted chase never does more steps than the oblivious one.
		obl, err := Run(inst, deps, Options{MaxSteps: budget, Oblivious: true})
		if err == nil && !obl.Failed && res.Steps > obl.Steps {
			t.Fatalf("trial %d: restricted steps %d > oblivious steps %d", trial, res.Steps, obl.Steps)
		}
	}
}

// TestChaseDeterminismProperty: chasing the same input twice yields the
// same instance up to null renaming (we compare via mutual
// homomorphisms, which is exactly hom-equivalence for chase results).
func TestChaseDeterminismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 50; trial++ {
		deps := randomWeaklyAcyclicDeps(rng)
		inst := randomLayerInstance(rng)
		r1, err1 := Run(inst, deps, Options{})
		r2, err2 := Run(inst, deps, Options{})
		if (err1 == nil) != (err2 == nil) || (err1 == nil && r1.Failed != r2.Failed) {
			t.Fatalf("trial %d: nondeterministic outcome", trial)
		}
		if err1 != nil || r1.Failed {
			continue
		}
		if r1.Steps != r2.Steps || r1.Instance.NumFacts() != r2.Instance.NumFacts() {
			t.Fatalf("trial %d: runs diverged: %d/%d steps, %d/%d facts",
				trial, r1.Steps, r2.Steps, r1.Instance.NumFacts(), r2.Instance.NumFacts())
		}
		if !hom.InstanceHomExists(r1.Instance, r2.Instance, hom.Options{}) ||
			!hom.InstanceHomExists(r2.Instance, r1.Instance, hom.Options{}) {
			t.Fatalf("trial %d: results not hom-equivalent", trial)
		}
	}
}
