// The property suites live in an external test package so they can use
// the internal/workload generators: workload imports core, which
// imports chase, so an in-package test would be an import cycle.
package chase_test

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/workload"
)

// TestChaseSoundnessProperty: on random weakly acyclic dependency sets,
// the chase either fails (egd conflict) or reaches a fixpoint that
// satisfies every dependency, contains the input (modulo egd merges of
// nulls — the inputs here are null-free, so containment is exact unless
// the chase failed), and never exhausts the rank-derived budget.
func TestChaseSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		if !dep.WeaklyAcyclic(dep.TGDs(deps)) {
			t.Fatalf("trial %d: generator produced a non-weakly-acyclic set", trial)
		}
		inst := workload.RandomLayerInstance(rng)
		budget := chase.BudgetHint(dep.TGDs(deps), inst.NumFacts())
		res, err := chase.Run(inst, deps, chase.Options{MaxSteps: budget})
		if err != nil {
			t.Fatalf("trial %d: weakly acyclic chase exhausted its budget %d: %v\ndeps: %v", trial, budget, err, deps)
		}
		if res.Failed {
			// egd failure on all-constant data is legitimate; nothing
			// further to check.
			continue
		}
		if !chase.Check(res.Instance, deps, hom.Options{}) {
			t.Fatalf("trial %d: fixpoint violates dependencies\ndeps: %v\nresult:\n%s", trial, deps, res.Instance)
		}
		if !res.Instance.ContainsAll(inst) {
			t.Fatalf("trial %d: chase lost input facts", trial)
		}
		// Restricted chase never does more steps than the oblivious one.
		obl, err := chase.Run(inst, deps, chase.Options{MaxSteps: budget, Oblivious: true})
		if err == nil && !obl.Failed && res.Steps > obl.Steps {
			t.Fatalf("trial %d: restricted steps %d > oblivious steps %d", trial, res.Steps, obl.Steps)
		}
	}
}

// TestChaseDeterminismProperty: chasing the same input twice yields the
// same instance up to null renaming (we compare via mutual
// homomorphisms, which is exactly hom-equivalence for chase results).
func TestChaseDeterminismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 50; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		r1, err1 := chase.Run(inst, deps, chase.Options{})
		r2, err2 := chase.Run(inst, deps, chase.Options{})
		if (err1 == nil) != (err2 == nil) || (err1 == nil && r1.Failed != r2.Failed) {
			t.Fatalf("trial %d: nondeterministic outcome", trial)
		}
		if err1 != nil || r1.Failed {
			continue
		}
		if r1.Steps != r2.Steps || r1.Instance.NumFacts() != r2.Instance.NumFacts() {
			t.Fatalf("trial %d: runs diverged: %d/%d steps, %d/%d facts",
				trial, r1.Steps, r2.Steps, r1.Instance.NumFacts(), r2.Instance.NumFacts())
		}
		if !hom.InstanceHomExists(r1.Instance, r2.Instance, hom.Options{}) ||
			!hom.InstanceHomExists(r2.Instance, r1.Instance, hom.Options{}) {
			t.Fatalf("trial %d: results not hom-equivalent", trial)
		}
	}
}
