// Resume property tests live in the external test package for the same
// reason as the other property suites: they draw workloads from
// internal/workload, which imports core → chase.
package chase_test

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
	"repro/internal/workload"
)

// tgdsOnly strips a random dependency set down to its tgds, the shape
// Resume can continue incrementally.
func tgdsOnly(deps []dep.Dependency) []dep.Dependency {
	out := make([]dep.Dependency, 0, len(deps))
	for _, d := range deps {
		if _, ok := d.(dep.TGD); ok {
			out = append(out, d)
		}
	}
	return out
}

// TestChaseResumeProperty: on random pure-tgd workloads, resuming a
// finished chase with an appended batch takes the incremental path and
// lands on a fixpoint of the enlarged start: it satisfies every
// dependency, contains Union(base, appended), and is hom-equivalent to
// a from-scratch chase of the union. Null labels may differ between the
// two runs (the scratch run interleaves firings differently), so the
// comparison is mutual homomorphism, the right notion of equality for
// chase results.
func TestChaseResumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	resumedSome := false
	for trial := 0; trial < 60; trial++ {
		deps := tgdsOnly(workload.RandomWeaklyAcyclicDeps(rng))
		if len(deps) == 0 {
			continue
		}
		base := workload.RandomLayerInstance(rng)
		appended := workload.RandomLayerInstance(rng)
		base.Freeze()
		appended.Freeze()
		for _, par := range []int{1, 4} {
			opts := chase.Options{Parallelism: par}
			prev, err := chase.Run(base, deps, opts)
			if err != nil {
				t.Fatalf("trial %d: base chase errored: %v", trial, err)
			}
			if prev.EgdFired || prev.Failed {
				t.Fatalf("trial %d: pure-tgd chase reported EgdFired=%v Failed=%v", trial, prev.EgdFired, prev.Failed)
			}
			res, resumed, err := chase.Resume(prev, deps, appended, opts)
			if err != nil {
				t.Fatalf("trial %d: resume errored: %v", trial, err)
			}
			if !resumed {
				t.Fatalf("trial %d: pure-tgd resume fell back to a full re-chase", trial)
			}
			resumedSome = true
			union := rel.Union(base, appended)
			if !res.Instance.ContainsAll(union) {
				t.Fatalf("trial %d: resumed fixpoint lost facts of the enlarged start", trial)
			}
			if !chase.Check(res.Instance, deps, hom.Options{}) {
				t.Fatalf("trial %d: resumed fixpoint violates dependencies\ndeps: %v\nresult:\n%s", trial, deps, res.Instance)
			}
			scratch, err := chase.Run(union, deps, opts)
			if err != nil {
				t.Fatalf("trial %d: scratch chase errored: %v", trial, err)
			}
			if !hom.InstanceHomExists(res.Instance, scratch.Instance, hom.Options{}) ||
				!hom.InstanceHomExists(scratch.Instance, res.Instance, hom.Options{}) {
				t.Fatalf("trial %d: resumed and scratch fixpoints not hom-equivalent\nresumed:\n%s\nscratch:\n%s",
					trial, res.Instance, scratch.Instance)
			}
			if res.Steps > scratch.Steps {
				t.Fatalf("trial %d: resume fired %d steps, scratch only %d", trial, res.Steps, scratch.Steps)
			}
		}
	}
	if !resumedSome {
		t.Fatal("no trial exercised the incremental path")
	}
}

// TestChaseResumeEmptyAppend: appending nothing to a fixpoint is a
// no-op — zero steps, identical facts.
func TestChaseResumeEmptyAppend(t *testing.T) {
	deps := workload.ChainDeps(4)
	inst := workload.ChainInstance(30)
	inst.Freeze()
	prev, err := chase.Run(inst, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, resumed, err := chase.Resume(prev, deps, rel.NewInstance(), chase.Options{})
	if err != nil || !resumed {
		t.Fatalf("empty-append resume: resumed=%v err=%v", resumed, err)
	}
	if res.Steps != 0 {
		t.Fatalf("empty-append resume fired %d steps, want 0", res.Steps)
	}
	if !res.Instance.Equal(prev.Instance) {
		t.Fatal("empty-append resume changed the fixpoint")
	}
}

// TestChaseResumeFallback: dependency sets containing an egd (which
// could fire) and results from runs where an egd did fire both force
// the fallback, and the fallback result is byte-identical to an
// independent from-scratch chase of the union.
func TestChaseResumeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	fellBack := 0
	for trial := 0; trial < 80; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		hasEGD := false
		for _, d := range deps {
			if _, ok := d.(dep.EGD); ok {
				hasEGD = true
			}
		}
		if !hasEGD {
			continue
		}
		base := workload.RandomLayerInstance(rng)
		appended := workload.RandomLayerInstance(rng)
		base.Freeze()
		appended.Freeze()
		prev, err := chase.Run(base, deps, chase.Options{})
		if err != nil || prev.Failed {
			continue
		}
		if chase.Resumable(prev, deps, chase.Options{}) {
			t.Fatalf("trial %d: egd-bearing set reported resumable", trial)
		}
		res, resumed, err := chase.Resume(prev, deps, appended, chase.Options{})
		if err != nil {
			continue // budget exhaustion on the union is possible and fine
		}
		if resumed {
			t.Fatalf("trial %d: egd-bearing set took the incremental path", trial)
		}
		fellBack++
		scratch, err := chase.Run(rel.Union(base, appended), deps, chase.Options{})
		if err != nil {
			t.Fatalf("trial %d: scratch chase errored after fallback succeeded: %v", trial, err)
		}
		if res.Steps != scratch.Steps || res.Failed != scratch.Failed {
			t.Fatalf("trial %d: fallback (steps=%d failed=%v) differs from scratch (steps=%d failed=%v)",
				trial, res.Steps, res.Failed, scratch.Steps, scratch.Failed)
		}
		if res.Instance.String() != scratch.Instance.String() {
			t.Fatalf("trial %d: fallback instance differs from scratch", trial)
		}
	}
	if fellBack == 0 {
		t.Fatal("no trial exercised the fallback path")
	}
}

// TestChaseResumeOblivious: an oblivious previous run is not resumable
// (its fired sets are not retained), so Resume falls back.
func TestChaseResumeOblivious(t *testing.T) {
	deps := workload.ChainDeps(3)
	inst := workload.ChainInstance(10)
	inst.Freeze()
	opts := chase.Options{Oblivious: true}
	prev, err := chase.Run(inst, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if chase.Resumable(prev, deps, opts) {
		t.Fatal("oblivious result reported resumable")
	}
	more := rel.NewInstance()
	more.Add("T0", rel.Const("x"), rel.Const("y"))
	more.Freeze()
	if _, resumed, err := chase.Resume(prev, deps, more, opts); err != nil || resumed {
		t.Fatalf("oblivious resume: resumed=%v err=%v", resumed, err)
	}
}

// TestChaseEgdWatermarkParity: egd-heavy workloads where the detection
// watermark actually skips passes (several rounds of tgd growth in
// relations no egd reads) stay byte-identical to the naive pass. The
// random suite in delta_test.go covers the mixed case; this pins the
// shape the satellite optimization targets.
func TestChaseEgdWatermarkParity(t *testing.T) {
	// Deep chain cascade (one layer per round) whose egd watches only
	// the seed layer: after the egd's first clean pass, every later
	// round grows T1..T4 but never T0, so the delta path skips the egd
	// body scan in every round after the first.
	deps := workload.DeepChainDeps(4)
	deps = append(deps, dep.EGD{
		Label: "t0-key",
		Body: []dep.Atom{
			dep.NewAtom("T0", dep.Var("x"), dep.Var("y")),
			dep.NewAtom("T0", dep.Var("x"), dep.Var("z")),
		},
		Left: "y", Right: "z",
	})
	inst := workload.ChainInstance(25)
	inst.Freeze()
	naive, nerr := chase.Run(inst, deps, chase.Options{NaiveTriggers: true})
	semi, serr := chase.Run(inst, deps, chase.Options{})
	if nerr != nil || serr != nil {
		t.Fatalf("egd-watermark chase errored: naive=%v semi=%v", nerr, serr)
	}
	if naive.Steps != semi.Steps || naive.Failed != semi.Failed {
		t.Fatalf("egd-watermark parity broken: naive steps=%d failed=%v, semi steps=%d failed=%v",
			naive.Steps, naive.Failed, semi.Steps, semi.Failed)
	}
	if naive.Instance.String() != semi.Instance.String() {
		t.Fatalf("egd-watermark instances diverged\nnaive:\n%s\nsemi:\n%s", naive.Instance, semi.Instance)
	}
}
