// Resume property tests live in the external test package for the same
// reason as the other property suites: they draw workloads from
// internal/workload, which imports core → chase.
package chase_test

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
	"repro/internal/workload"
)

// tgdsOnly strips a random dependency set down to its tgds, the shape
// Resume can continue incrementally.
func tgdsOnly(deps []dep.Dependency) []dep.Dependency {
	out := make([]dep.Dependency, 0, len(deps))
	for _, d := range deps {
		if _, ok := d.(dep.TGD); ok {
			out = append(out, d)
		}
	}
	return out
}

// TestChaseResumeProperty: on random pure-tgd workloads, resuming a
// finished chase with an appended batch takes the incremental path and
// lands on a fixpoint of the enlarged start: it satisfies every
// dependency, contains Union(base, appended), and is hom-equivalent to
// a from-scratch chase of the union. Null labels may differ between the
// two runs (the scratch run interleaves firings differently), so the
// comparison is mutual homomorphism, the right notion of equality for
// chase results.
func TestChaseResumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	resumedSome := false
	for trial := 0; trial < 60; trial++ {
		deps := tgdsOnly(workload.RandomWeaklyAcyclicDeps(rng))
		if len(deps) == 0 {
			continue
		}
		base := workload.RandomLayerInstance(rng)
		appended := workload.RandomLayerInstance(rng)
		base.Freeze()
		appended.Freeze()
		for _, par := range []int{1, 4} {
			opts := chase.Options{Parallelism: par}
			prev, err := chase.Run(base, deps, opts)
			if err != nil {
				t.Fatalf("trial %d: base chase errored: %v", trial, err)
			}
			if prev.EgdFired || prev.Failed {
				t.Fatalf("trial %d: pure-tgd chase reported EgdFired=%v Failed=%v", trial, prev.EgdFired, prev.Failed)
			}
			res, resumed, err := chase.Resume(prev, deps, appended, opts)
			if err != nil {
				t.Fatalf("trial %d: resume errored: %v", trial, err)
			}
			if !resumed {
				t.Fatalf("trial %d: pure-tgd resume fell back to a full re-chase", trial)
			}
			resumedSome = true
			union := rel.Union(base, appended)
			if !res.Instance.ContainsAll(union) {
				t.Fatalf("trial %d: resumed fixpoint lost facts of the enlarged start", trial)
			}
			if !chase.Check(res.Instance, deps, hom.Options{}) {
				t.Fatalf("trial %d: resumed fixpoint violates dependencies\ndeps: %v\nresult:\n%s", trial, deps, res.Instance)
			}
			scratch, err := chase.Run(union, deps, opts)
			if err != nil {
				t.Fatalf("trial %d: scratch chase errored: %v", trial, err)
			}
			if !hom.InstanceHomExists(res.Instance, scratch.Instance, hom.Options{}) ||
				!hom.InstanceHomExists(scratch.Instance, res.Instance, hom.Options{}) {
				t.Fatalf("trial %d: resumed and scratch fixpoints not hom-equivalent\nresumed:\n%s\nscratch:\n%s",
					trial, res.Instance, scratch.Instance)
			}
			if res.Steps > scratch.Steps {
				t.Fatalf("trial %d: resume fired %d steps, scratch only %d", trial, res.Steps, scratch.Steps)
			}
		}
	}
	if !resumedSome {
		t.Fatal("no trial exercised the incremental path")
	}
}

// TestChaseResumeEmptyAppend: appending nothing to a fixpoint is a
// no-op — zero steps, identical facts.
func TestChaseResumeEmptyAppend(t *testing.T) {
	deps := workload.ChainDeps(4)
	inst := workload.ChainInstance(30)
	inst.Freeze()
	prev, err := chase.Run(inst, deps, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, resumed, err := chase.Resume(prev, deps, rel.NewInstance(), chase.Options{})
	if err != nil || !resumed {
		t.Fatalf("empty-append resume: resumed=%v err=%v", resumed, err)
	}
	if res.Steps != 0 {
		t.Fatalf("empty-append resume fired %d steps, want 0", res.Steps)
	}
	if !res.Instance.Equal(prev.Instance) {
		t.Fatal("empty-append resume changed the fixpoint")
	}
}

// TestChaseResumeFallback: conditions that make the incremental path
// unsound force the fallback — here, the legacy rebuild engine
// (Options.RebuildMerges retains no union-find) — and the fallback
// result is byte-identical to an independent from-scratch chase of the
// union under the same options.
func TestChaseResumeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	fellBack := 0
	for trial := 0; trial < 80; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		hasEGD := false
		for _, d := range deps {
			if _, ok := d.(dep.EGD); ok {
				hasEGD = true
			}
		}
		if !hasEGD {
			continue
		}
		base := workload.RandomLayerInstance(rng)
		appended := workload.RandomLayerInstance(rng)
		base.Freeze()
		appended.Freeze()
		opts := chase.Options{RebuildMerges: true}
		prev, err := chase.Run(base, deps, opts)
		if err != nil || prev.Failed {
			continue
		}
		if chase.Resumable(prev, deps, opts) {
			t.Fatalf("trial %d: egd-bearing set under RebuildMerges reported resumable", trial)
		}
		if reason := chase.FallbackReason(prev, deps, opts); reason != chase.FallbackEgd {
			t.Fatalf("trial %d: fallback reason = %q, want %q", trial, reason, chase.FallbackEgd)
		}
		res, resumed, err := chase.Resume(prev, deps, appended, opts)
		if err != nil {
			continue // budget exhaustion on the union is possible and fine
		}
		if resumed {
			t.Fatalf("trial %d: RebuildMerges resume took the incremental path", trial)
		}
		fellBack++
		scratch, err := chase.Run(rel.Union(base, appended), deps, opts)
		if err != nil {
			t.Fatalf("trial %d: scratch chase errored after fallback succeeded: %v", trial, err)
		}
		if res.Steps != scratch.Steps || res.Failed != scratch.Failed {
			t.Fatalf("trial %d: fallback (steps=%d failed=%v) differs from scratch (steps=%d failed=%v)",
				trial, res.Steps, res.Failed, scratch.Steps, scratch.Failed)
		}
		if res.Instance.String() != scratch.Instance.String() {
			t.Fatalf("trial %d: fallback instance differs from scratch", trial)
		}
	}
	if fellBack == 0 {
		t.Fatal("no trial exercised the fallback path")
	}
}

// TestChaseResumeKeyedProperty: egd-bearing random workloads — whose
// egds are all key-shaped — now take the incremental path, and the
// resumed fixpoint is a correct chase result of the enlarged start:
// dependency-satisfying, containing the (canonicalized) union, and
// hom-equivalent to a from-scratch chase of the union. Null labels and
// merge interleavings may differ between the two runs, so the
// comparison is mutual homomorphism.
func TestChaseResumeKeyedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	resumedSome := false
	for trial := 0; trial < 60; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		hasEGD := false
		for _, d := range deps {
			if e, ok := d.(dep.EGD); ok {
				hasEGD = true
				if !e.KeyShaped() {
					t.Fatalf("trial %d: workload egd %s is not key-shaped", trial, e.Label)
				}
			}
		}
		if !hasEGD {
			continue
		}
		base := workload.RandomLayerInstance(rng)
		appended := workload.RandomLayerInstance(rng)
		base.Freeze()
		appended.Freeze()
		for _, par := range []int{1, 4} {
			opts := chase.Options{Parallelism: par}
			prev, err := chase.Run(base, deps, opts)
			if err != nil || prev.Failed {
				continue
			}
			if reason := chase.FallbackReason(prev, deps, opts); reason != chase.FallbackNone {
				t.Fatalf("trial %d: keyed set not resumable, reason %q", trial, reason)
			}
			res, resumed, err := chase.Resume(prev, deps, appended, opts)
			if err != nil {
				continue // budget exhaustion on the union is possible and fine
			}
			if !resumed {
				t.Fatalf("trial %d: keyed resume fell back to a full re-chase", trial)
			}
			resumedSome = true
			scratch, err := chase.Run(rel.Union(base, appended), deps, opts)
			if err != nil {
				t.Fatalf("trial %d: scratch chase errored after resume succeeded: %v", trial, err)
			}
			if res.Failed != scratch.Failed {
				t.Fatalf("trial %d: resumed failed=%v, scratch failed=%v", trial, res.Failed, scratch.Failed)
			}
			if res.Failed {
				continue
			}
			if !chase.Check(res.Instance, deps, hom.Options{}) {
				t.Fatalf("trial %d: resumed fixpoint violates dependencies\ndeps: %v\nresult:\n%s", trial, deps, res.Instance)
			}
			if !hom.InstanceHomExists(res.Instance, scratch.Instance, hom.Options{}) ||
				!hom.InstanceHomExists(scratch.Instance, res.Instance, hom.Options{}) {
				t.Fatalf("trial %d: resumed and scratch fixpoints not hom-equivalent\nresumed:\n%s\nscratch:\n%s",
					trial, res.Instance, scratch.Instance)
			}
		}
	}
	if !resumedSome {
		t.Fatal("no trial exercised the keyed incremental path")
	}
}

// TestChaseResumeNonKeyEgdFallback: an egd that is not key-shaped (its
// body joins two different relations) keeps the dependency set
// resume-ineligible with reason "egd".
func TestChaseResumeNonKeyEgdFallback(t *testing.T) {
	deps := []dep.Dependency{dep.EGD{
		Label: "cross-rel",
		Body: []dep.Atom{
			dep.NewAtom("L0", dep.Var("x"), dep.Var("y")),
			dep.NewAtom("L1", dep.Var("x"), dep.Var("z")),
		},
		Left: "y", Right: "z",
	}}
	inst := rel.NewInstance()
	inst.Add("L0", rel.Const("a"), rel.Null(1))
	inst.Add("L1", rel.Const("a"), rel.Const("c"))
	inst.Freeze()
	prev, err := chase.Run(inst, deps, chase.Options{})
	if err != nil || prev.Failed {
		t.Fatalf("cross-rel chase: failed=%v err=%v", prev != nil && prev.Failed, err)
	}
	if reason := chase.FallbackReason(prev, deps, chase.Options{}); reason != chase.FallbackEgd {
		t.Fatalf("non-key egd fallback reason = %q, want %q", reason, chase.FallbackEgd)
	}
	more := rel.NewInstance()
	more.Add("L0", rel.Const("b"), rel.Const("d"))
	more.Freeze()
	if _, resumed, err := chase.Resume(prev, deps, more, chase.Options{}); err != nil || resumed {
		t.Fatalf("non-key egd resume: resumed=%v err=%v", resumed, err)
	}
}

// TestChaseResumePrevRebuildFallback: a previous run that merged values
// under the legacy rebuild engine retained no union-find, so even with
// the union-find engine selected now, its result cannot seed a resume.
func TestChaseResumePrevRebuildFallback(t *testing.T) {
	deps := []dep.Dependency{dep.EGD{
		Label: "r-key",
		Body: []dep.Atom{
			dep.NewAtom("R", dep.Var("x"), dep.Var("y")),
			dep.NewAtom("R", dep.Var("x"), dep.Var("z")),
		},
		Left: "y", Right: "z",
	}}
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("a"), rel.Null(1))
	inst.Add("R", rel.Const("a"), rel.Const("c"))
	inst.Freeze()
	prev, err := chase.Run(inst, deps, chase.Options{RebuildMerges: true})
	if err != nil || prev.Failed {
		t.Fatal(err)
	}
	if !prev.EgdFired || prev.UnionFind != nil {
		t.Fatalf("rebuild-engine run: EgdFired=%v UnionFind=%v", prev.EgdFired, prev.UnionFind)
	}
	if reason := chase.FallbackReason(prev, deps, chase.Options{}); reason != chase.FallbackEgd {
		t.Fatalf("prev-rebuild fallback reason = %q, want %q", reason, chase.FallbackEgd)
	}
}

// TestChaseResumeCanonicalizesAppended: an appended fact mentioning a
// null the previous run merged away lands on the class representative,
// and fresh nulls drawn by the resumed run never reuse a merged-away
// label.
func TestChaseResumeCanonicalizesAppended(t *testing.T) {
	deps := []dep.Dependency{
		dep.EGD{
			Label: "r-key",
			Body: []dep.Atom{
				dep.NewAtom("R", dep.Var("x"), dep.Var("y")),
				dep.NewAtom("R", dep.Var("x"), dep.Var("z")),
			},
			Left: "y", Right: "z",
		},
		dep.TGD{
			Label: "s-wit",
			Body:  []dep.Atom{dep.NewAtom("S", dep.Var("x"), dep.Var("x"))},
			Head:  []dep.Atom{dep.NewAtom("T", dep.Var("x"), dep.Var("u"))},
		},
	}
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("a"), rel.Null(5))
	inst.Add("R", rel.Const("a"), rel.Const("c"))
	inst.Freeze()
	prev, err := chase.Run(inst, deps, chase.Options{})
	if err != nil || prev.Failed {
		t.Fatal(err)
	}
	if !prev.EgdFired || prev.UnionFind == nil {
		t.Fatalf("keyed run: EgdFired=%v UnionFind=%v", prev.EgdFired, prev.UnionFind)
	}
	more := rel.NewInstance()
	more.Add("R", rel.Const("b"), rel.Null(5)) // mentions the merged-away null
	more.Add("S", rel.Const("b"), rel.Const("b"))
	more.Freeze()
	res, resumed, err := chase.Resume(prev, deps, more, chase.Options{})
	if err != nil || !resumed {
		t.Fatalf("keyed resume: resumed=%v err=%v", resumed, err)
	}
	r := res.Instance.Relation("R")
	wantFact := rel.Tuple{rel.Const("b"), rel.Const("c")}
	foundCanon := false
	for i := 0; i < r.Len(); i++ {
		tup := r.TupleAt(i)
		if tup[0] == rel.Const("b") {
			if tup[1] == rel.Null(5) {
				t.Fatal("appended fact kept the merged-away null _N5")
			}
			if tup[1] == wantFact[1] {
				foundCanon = true
			}
		}
	}
	if !foundCanon {
		t.Fatalf("appended fact was not canonicalized to R(b, c):\n%s", res.Instance)
	}
	tt := res.Instance.Relation("T")
	if tt == nil || tt.Len() != 1 {
		t.Fatalf("tgd did not fire exactly once on the appended S fact:\n%s", res.Instance)
	}
	fresh := tt.TupleAt(0)[1]
	if !fresh.IsNull() || fresh.NullID() <= 5 {
		t.Fatalf("fresh null %v does not clear the merged-away label _N5", fresh)
	}
}

// TestChaseResumeOblivious: an oblivious previous run is not resumable
// (its fired sets are not retained), so Resume falls back.
func TestChaseResumeOblivious(t *testing.T) {
	deps := workload.ChainDeps(3)
	inst := workload.ChainInstance(10)
	inst.Freeze()
	opts := chase.Options{Oblivious: true}
	prev, err := chase.Run(inst, deps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if chase.Resumable(prev, deps, opts) {
		t.Fatal("oblivious result reported resumable")
	}
	more := rel.NewInstance()
	more.Add("T0", rel.Const("x"), rel.Const("y"))
	more.Freeze()
	if _, resumed, err := chase.Resume(prev, deps, more, opts); err != nil || resumed {
		t.Fatalf("oblivious resume: resumed=%v err=%v", resumed, err)
	}
}

// TestChaseEgdWatermarkParity: egd-heavy workloads where the detection
// watermark actually skips passes (several rounds of tgd growth in
// relations no egd reads) stay byte-identical to the naive pass. The
// random suite in delta_test.go covers the mixed case; this pins the
// shape the satellite optimization targets.
func TestChaseEgdWatermarkParity(t *testing.T) {
	// Deep chain cascade (one layer per round) whose egd watches only
	// the seed layer: after the egd's first clean pass, every later
	// round grows T1..T4 but never T0, so the delta path skips the egd
	// body scan in every round after the first.
	deps := workload.DeepChainDeps(4)
	deps = append(deps, dep.EGD{
		Label: "t0-key",
		Body: []dep.Atom{
			dep.NewAtom("T0", dep.Var("x"), dep.Var("y")),
			dep.NewAtom("T0", dep.Var("x"), dep.Var("z")),
		},
		Left: "y", Right: "z",
	})
	inst := workload.ChainInstance(25)
	inst.Freeze()
	naive, nerr := chase.Run(inst, deps, chase.Options{NaiveTriggers: true})
	semi, serr := chase.Run(inst, deps, chase.Options{})
	if nerr != nil || serr != nil {
		t.Fatalf("egd-watermark chase errored: naive=%v semi=%v", nerr, serr)
	}
	if naive.Steps != semi.Steps || naive.Failed != semi.Failed {
		t.Fatalf("egd-watermark parity broken: naive steps=%d failed=%v, semi steps=%d failed=%v",
			naive.Steps, naive.Failed, semi.Steps, semi.Failed)
	}
	if naive.Instance.String() != semi.Instance.String() {
		t.Fatalf("egd-watermark instances diverged\nnaive:\n%s\nsemi:\n%s", naive.Instance, semi.Instance)
	}
}
