package chase_test

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/workload"
)

// TestChaseSemiNaiveMatchesNaiveProperty: on random weakly acyclic
// dependency sets (mixing full tgds, existential inclusions, join
// bodies, and key egds), the semi-naive chase is byte-identical to the
// naive chase — same instances (including null labels), step counts,
// and failure verdicts — in restricted and oblivious mode, at
// Parallelism 1 and 4. This is the correctness contract of the
// delta-driven trigger collection: it may only skip triggers the naive
// keep filter would reject anyway.
func TestChaseSemiNaiveMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	trials := 60
	for trial := 0; trial < trials; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		inst.Freeze()
		for _, oblivious := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				naive, nerr := chase.Run(inst, deps, chase.Options{Oblivious: oblivious, Parallelism: par, NaiveTriggers: true})
				semi, serr := chase.Run(inst, deps, chase.Options{Oblivious: oblivious, Parallelism: par})
				if (nerr == nil) != (serr == nil) {
					t.Fatalf("trial %d obl=%v par=%d: naive err=%v, semi-naive err=%v\ndeps: %v", trial, oblivious, par, nerr, serr, deps)
				}
				if nerr != nil {
					continue
				}
				if naive.Steps != semi.Steps || naive.Failed != semi.Failed || naive.FailedOn != semi.FailedOn {
					t.Fatalf("trial %d obl=%v par=%d: naive (steps=%d failed=%v on=%q), semi-naive (steps=%d failed=%v on=%q)\ndeps: %v",
						trial, oblivious, par, naive.Steps, naive.Failed, naive.FailedOn, semi.Steps, semi.Failed, semi.FailedOn, deps)
				}
				if naive.Instance.String() != semi.Instance.String() {
					t.Fatalf("trial %d obl=%v par=%d: instances differ\nnaive:\n%s\nsemi-naive:\n%s\ndeps: %v",
						trial, oblivious, par, naive.Instance, semi.Instance, deps)
				}
			}
		}
	}
}

// TestChaseSemiNaiveMatchesNaiveSolutionAware: the parity holds for the
// solution-aware chase of Definitions 6–7 as well.
func TestChaseSemiNaiveMatchesNaiveSolutionAware(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 50; trial++ {
		deps := workload.RandomWeaklyAcyclicDeps(rng)
		inst := workload.RandomLayerInstance(rng)
		wres, err := chase.Run(inst, deps, chase.Options{})
		if err != nil || wres.Failed {
			continue
		}
		witness := wres.Instance
		witness.Freeze()
		inst.Freeze()
		for _, par := range []int{1, 4} {
			naive, nerr := chase.RunSolutionAware(inst, deps, witness, chase.Options{Parallelism: par, NaiveTriggers: true})
			semi, serr := chase.RunSolutionAware(inst, deps, witness, chase.Options{Parallelism: par})
			if (nerr == nil) != (serr == nil) {
				t.Fatalf("trial %d par=%d: naive err=%v, semi-naive err=%v", trial, par, nerr, serr)
			}
			if nerr != nil {
				continue
			}
			if naive.Steps != semi.Steps || naive.Instance.String() != semi.Instance.String() {
				t.Fatalf("trial %d par=%d: solution-aware parity broken (steps %d vs %d)\nnaive:\n%s\nsemi-naive:\n%s",
					trial, par, naive.Steps, semi.Steps, naive.Instance, semi.Instance)
			}
		}
	}
}

// TestChaseSemiNaiveDeepChain: the deep-recursion shape the semi-naive
// chase exists for — a chain tgd cascade where each round adds one
// layer of facts — still produces the exact naive result. The chain
// chase fires depth × n steps over depth+1 rounds, so deltas shrink to
// a sliver of the instance in every round after the first.
func TestChaseSemiNaiveDeepChain(t *testing.T) {
	deps := workload.ChainDeps(6)
	inst := workload.ChainInstance(40)
	inst.Freeze()
	naive, nerr := chase.Run(inst, deps, chase.Options{NaiveTriggers: true})
	semi, serr := chase.Run(inst, deps, chase.Options{})
	if nerr != nil || serr != nil {
		t.Fatalf("chain chase errored: naive=%v semi=%v", nerr, serr)
	}
	if naive.Steps != semi.Steps {
		t.Fatalf("chain steps diverged: naive %d, semi-naive %d", naive.Steps, semi.Steps)
	}
	if want := 6 * 40; semi.Steps != want {
		t.Fatalf("chain chase fired %d steps, want %d", semi.Steps, want)
	}
	if naive.Instance.String() != semi.Instance.String() {
		t.Fatal("chain instances diverged")
	}
}
