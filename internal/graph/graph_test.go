package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge not symmetric")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestCompletePathCycle(t *testing.T) {
	k4 := Complete(4)
	if k4.NumEdges() != 6 {
		t.Errorf("K4 edges = %d", k4.NumEdges())
	}
	p4 := Path(4)
	if p4.NumEdges() != 3 {
		t.Errorf("P4 edges = %d", p4.NumEdges())
	}
	c5 := Cycle(5)
	if c5.NumEdges() != 5 {
		t.Errorf("C5 edges = %d", c5.NumEdges())
	}
	if !c5.HasEdge(4, 0) {
		t.Error("cycle closure missing")
	}
}

func TestHasCliqueBasics(t *testing.T) {
	k5 := Complete(5)
	for k := 0; k <= 5; k++ {
		if !k5.HasClique(k) {
			t.Errorf("K5 must have a %d-clique", k)
		}
	}
	if k5.HasClique(6) {
		t.Error("K5 has no 6-clique")
	}
	p5 := Path(5)
	if !p5.HasClique(2) {
		t.Error("path has 2-cliques")
	}
	if p5.HasClique(3) {
		t.Error("path has no triangle")
	}
	empty := New(4)
	if empty.HasClique(2) {
		t.Error("empty graph has no 2-clique")
	}
	if !empty.HasClique(1) {
		t.Error("nonempty vertex set has 1-cliques")
	}
	if !empty.HasClique(0) {
		t.Error("0-clique always exists")
	}
}

func TestCycleCliqueAndColoring(t *testing.T) {
	c5 := Cycle(5)
	if c5.HasClique(3) {
		t.Error("C5 has no triangle")
	}
	if !c5.Is3Colorable() {
		t.Error("odd cycle is 3-colorable")
	}
	k4 := Complete(4)
	if k4.Is3Colorable() {
		t.Error("K4 is not 3-colorable")
	}
	if !Complete(3).Is3Colorable() {
		t.Error("K3 is 3-colorable")
	}
	if !Path(6).Is3Colorable() {
		t.Error("paths are 2-colorable hence 3-colorable")
	}
}

func TestPlantCliqueGuaranteesClique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := Random(12, 0.2, rng)
		verts := PlantClique(g, 4, rng)
		if len(verts) != 4 {
			t.Fatalf("planted %d vertices", len(verts))
		}
		if !g.HasClique(4) {
			t.Error("planted clique not found")
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if !g.HasEdge(verts[i], verts[j]) {
					t.Errorf("planted vertices %d,%d not adjacent", verts[i], verts[j])
				}
			}
		}
	}
}

func TestRandomGraphDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Random(40, 0.0, rng)
	if g.NumEdges() != 0 {
		t.Error("p=0 graph has edges")
	}
	g = Random(40, 1.0, rng)
	if g.NumEdges() != 40*39/2 {
		t.Error("p=1 graph is not complete")
	}
}

func TestEdgesSortedAndConsistent(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 1) //nolint:errcheck
	g.AddEdge(0, 3) //nolint:errcheck
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != [2]int{0, 3} || edges[1] != [2]int{1, 2} {
		t.Errorf("edges not normalized/sorted: %v", edges)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4) //nolint:errcheck
	g.AddEdge(2, 0) //nolint:errcheck
	g.AddEdge(2, 3) //nolint:errcheck
	ns := g.Neighbors(2)
	if len(ns) != 3 || ns[0] != 0 || ns[1] != 3 || ns[2] != 4 {
		t.Errorf("Neighbors = %v", ns)
	}
	if g.Degree(2) != 3 {
		t.Errorf("Degree = %d", g.Degree(2))
	}
}

// Property: HasClique agrees with an independent exhaustive check on
// small random graphs.
func TestHasCliqueAgainstExhaustive(t *testing.T) {
	exhaustive := func(g *Graph, k int) bool {
		n := g.N()
		var pick func(start int, chosen []int) bool
		pick = func(start int, chosen []int) bool {
			if len(chosen) == k {
				return true
			}
			for v := start; v < n; v++ {
				ok := true
				for _, u := range chosen {
					if !g.HasEdge(u, v) {
						ok = false
						break
					}
				}
				if ok && pick(v+1, append(chosen, v)) {
					return true
				}
			}
			return false
		}
		return pick(0, nil)
	}
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(8, 0.45, rng)
		k := int(kRaw%4) + 2
		return g.HasClique(k) == exhaustive(g, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: 3-colorability is monotone under edge removal (we check the
// contrapositive on subgraphs).
func TestColoringMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Random(7, 0.5, rng)
		if g.Is3Colorable() {
			return true
		}
		// Add edges: still not 3-colorable.
		g2 := New(7)
		for _, e := range g.Edges() {
			g2.AddEdge(e[0], e[1]) //nolint:errcheck
		}
		for v := 1; v < 7; v++ {
			g2.AddEdge(0, v) //nolint:errcheck
		}
		return !g2.Is3Colorable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
