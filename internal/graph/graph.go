// Package graph provides the graph substrate for the hardness
// experiments of the peer data exchange paper: simple undirected graphs
// (symmetric, irreflexive edge relations, as in the CLIQUE reduction of
// Theorem 3), random graph generators, a brute-force k-clique decider,
// and a 3-colorability decider for the disjunctive boundary example of
// Section 4.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected
// (the paper's graphs are irreflexive).
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d, %d) out of range [0, %d)", u, v, g.n)
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	return u >= 0 && u < g.n && g.adj[u][v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

// Neighbors returns the sorted neighbors of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Random returns an Erdős–Rényi random graph G(n, p).
func Random(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v) //nolint:errcheck // in-range, no self-loop
			}
		}
	}
	return g
}

// PlantClique adds a clique on k random distinct vertices and returns
// the chosen vertices. It panics if k exceeds the vertex count.
func PlantClique(g *Graph, k int, rng *rand.Rand) []int {
	if k > g.n {
		panic("graph: planted clique larger than graph")
	}
	perm := rng.Perm(g.n)[:k]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(perm[i], perm[j]) //nolint:errcheck // distinct, in-range
		}
	}
	sort.Ints(perm)
	return perm
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v) //nolint:errcheck // distinct, in-range
		}
	}
	return g
}

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	g := New(n)
	for u := 0; u+1 < n; u++ {
		g.AddEdge(u, u+1) //nolint:errcheck // distinct, in-range
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0) //nolint:errcheck // distinct, in-range
	}
	return g
}

// HasClique reports whether the graph contains a clique of size k, by
// backtracking over candidate extensions ordered by degree. This is the
// reference decider the reduction experiments compare against.
func (g *Graph) HasClique(k int) bool {
	if k <= 0 {
		return true
	}
	if k == 1 {
		return g.n > 0
	}
	// Candidates must have degree >= k-1.
	var cands []int
	for v := 0; v < g.n; v++ {
		if g.Degree(v) >= k-1 {
			cands = append(cands, v)
		}
	}
	var clique []int
	var extend func(cands []int) bool
	extend = func(cands []int) bool {
		if len(clique) == k {
			return true
		}
		if len(clique)+len(cands) < k {
			return false
		}
		for idx, v := range cands {
			var next []int
			for _, u := range cands[idx+1:] {
				if g.adj[v][u] {
					next = append(next, u)
				}
			}
			clique = append(clique, v)
			if extend(next) {
				return true
			}
			clique = clique[:len(clique)-1]
		}
		return false
	}
	return extend(cands)
}

// Is3Colorable reports whether the graph admits a proper 3-coloring, by
// backtracking. It is the reference decider for the disjunctive
// boundary experiment.
func (g *Graph) Is3Colorable() bool {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	var assign func(v int) bool
	assign = func(v int) bool {
		if v == g.n {
			return true
		}
		for c := 0; c < 3; c++ {
			ok := true
			for u := range g.adj[v] {
				if colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if assign(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	return assign(0)
}
