package rel

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	c := Const("a")
	n := Null(3)
	if !c.IsConst() || c.IsNull() {
		t.Errorf("Const(a) kind wrong: %v", c.Kind())
	}
	if !n.IsNull() || n.IsConst() {
		t.Errorf("Null(3) kind wrong: %v", n.Kind())
	}
	if c.ConstText() != "a" {
		t.Errorf("ConstText = %q, want a", c.ConstText())
	}
	if n.NullID() != 3 {
		t.Errorf("NullID = %d, want 3", n.NullID())
	}
}

func TestValueStringRendering(t *testing.T) {
	if got := Const("swissprot").String(); got != "swissprot" {
		t.Errorf("Const string = %q", got)
	}
	if got := Null(7).String(); got != "_N7" {
		t.Errorf("Null string = %q", got)
	}
}

func TestValueComparable(t *testing.T) {
	m := map[Value]int{
		Const("a"): 1,
		Null(1):    2,
	}
	if m[Const("a")] != 1 || m[Null(1)] != 2 {
		t.Fatal("Value not usable as map key")
	}
	if Const("1") == Null(1) {
		t.Error("constant '1' must differ from null 1")
	}
	if Const("a") != Const("a") {
		t.Error("equal constants must compare equal")
	}
}

func TestValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ConstText on null must panic")
		}
	}()
	_ = Null(1).ConstText()
}

func TestNullIDPanicsOnConst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NullID on const must panic")
		}
	}()
	_ = Const("x").NullID()
}

func TestValueLessTotalOrder(t *testing.T) {
	vals := []Value{Const("a"), Const("b"), Null(1), Null(2)}
	for i := range vals {
		for j := range vals {
			if i < j && !vals[i].Less(vals[j]) {
				t.Errorf("expected %v < %v", vals[i], vals[j])
			}
			if i >= j && vals[i].Less(vals[j]) {
				t.Errorf("unexpected %v < %v", vals[i], vals[j])
			}
		}
	}
}

func TestNullSourceFresh(t *testing.T) {
	var ns NullSource
	a := ns.Fresh()
	b := ns.Fresh()
	if a == b {
		t.Fatal("Fresh returned duplicate nulls")
	}
	if !a.IsNull() || !b.IsNull() {
		t.Fatal("Fresh must return nulls")
	}
}

func TestNullSourceSeen(t *testing.T) {
	var ns NullSource
	ns.Seen(10)
	v := ns.Fresh()
	if v.NullID() <= 10 {
		t.Errorf("Fresh after Seen(10) returned %v", v)
	}
	// Seen with a smaller id must not regress.
	ns.Seen(2)
	w := ns.Fresh()
	if w.NullID() <= v.NullID() {
		t.Errorf("Fresh regressed after Seen(2): %v then %v", v, w)
	}
}

func TestNullSourceSeenIn(t *testing.T) {
	inst := NewInstance()
	inst.Add("R", Const("a"), Null(42))
	var ns NullSource
	ns.SeenIn(inst)
	if v := ns.Fresh(); v.NullID() <= 42 {
		t.Errorf("Fresh after SeenIn returned %v", v)
	}
}

func TestNullSourceDistinctProperty(t *testing.T) {
	// Property: any sequence of Fresh calls yields pairwise distinct nulls.
	f := func(n uint8) bool {
		var ns NullSource
		seen := make(map[Value]bool)
		for i := 0; i < int(n); i++ {
			v := ns.Fresh()
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := Tuple{Const("a"), Const("b")}
	c := orig.Clone()
	c[0] = Const("z")
	if orig[0] != Const("a") {
		t.Error("Clone shares backing array")
	}
}

func TestFactString(t *testing.T) {
	f := Fact{Rel: "E", Args: Tuple{Const("a"), Null(2)}}
	if got := f.String(); got != "E(a, _N2)" {
		t.Errorf("Fact string = %q", got)
	}
}

func TestFactKeyDistinguishesKinds(t *testing.T) {
	f1 := Fact{Rel: "R", Args: Tuple{Const("1")}}
	f2 := Fact{Rel: "R", Args: Tuple{Null(1)}}
	if f1.key() == f2.key() {
		t.Error("fact keys must distinguish Const(\"1\") from Null(1)")
	}
}

func TestTupleKeyInjectiveProperty(t *testing.T) {
	// Property: distinct tuples over a small vocabulary have distinct keys.
	mk := func(codes []uint8) Tuple {
		t := make(Tuple, len(codes))
		for i, c := range codes {
			if c%2 == 0 {
				t[i] = Const(string(rune('a' + c%26)))
			} else {
				t[i] = Null(int(c))
			}
		}
		return t
	}
	f := func(a, b []uint8) bool {
		ta, tb := mk(a), mk(b)
		sameKey := tupleKey(ta) == tupleKey(tb)
		same := len(ta) == len(tb)
		if same {
			for i := range ta {
				if ta[i] != tb[i] {
					same = false
					break
				}
			}
		}
		return sameKey == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyOfInjectiveProperty(t *testing.T) {
	// Property: KeyOf keys are equal exactly when the tuples are equal,
	// across the inline/spill boundary.
	mk := func(codes []uint8) Tuple {
		t := make(Tuple, len(codes))
		for i, c := range codes {
			if c%2 == 0 {
				t[i] = Const(string(rune('a' + c%26)))
			} else {
				t[i] = Null(int(c))
			}
		}
		return t
	}
	f := func(a, b []uint8) bool {
		ta, tb := mk(a), mk(b)
		sameKey := KeyOf(ta) == KeyOf(tb)
		same := len(ta) == len(tb)
		if same {
			for i := range ta {
				if ta[i] != tb[i] {
					same = false
					break
				}
			}
		}
		return sameKey == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyOfZeroAllocsInline(t *testing.T) {
	// The certain-answer hot loops key every candidate tuple; tuples up
	// to the inline width must key without allocating.
	tup := Tuple{Const("a"), Null(2), Const("b"), Const("c")}
	if avg := testing.AllocsPerRun(100, func() {
		_ = KeyOf(tup)
	}); avg != 0 {
		t.Fatalf("KeyOf(arity-4) allocates %.1f per run, want 0", avg)
	}
	seen := make(map[TupleKey]bool, 4)
	seen[KeyOf(tup)] = true
	if avg := testing.AllocsPerRun(100, func() {
		if !seen[KeyOf(tup)] {
			t.Fatal("lookup miss")
		}
	}); avg != 0 {
		t.Fatalf("map lookup by KeyOf allocates %.1f per run, want 0", avg)
	}
}
