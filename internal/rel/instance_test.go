package rel

import (
	"testing"
	"testing/quick"
)

func TestInstanceAddDedup(t *testing.T) {
	inst := NewInstance()
	if !inst.Add("E", Const("a"), Const("b")) {
		t.Fatal("first Add must report true")
	}
	if inst.Add("E", Const("a"), Const("b")) {
		t.Fatal("duplicate Add must report false")
	}
	if inst.NumFacts() != 1 {
		t.Fatalf("NumFacts = %d, want 1", inst.NumFacts())
	}
}

func TestInstanceArityMismatchPanics(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	inst.Add("E", Const("a"))
}

func TestInstanceContains(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	if !inst.Contains(Fact{"E", Tuple{Const("a"), Const("b")}}) {
		t.Error("Contains missed an added fact")
	}
	if inst.Contains(Fact{"E", Tuple{Const("b"), Const("a")}}) {
		t.Error("Contains found an absent fact")
	}
	if inst.Contains(Fact{"H", Tuple{Const("a"), Const("b")}}) {
		t.Error("Contains found a fact in an absent relation")
	}
}

func TestInstanceFactsDeterministic(t *testing.T) {
	inst := NewInstance()
	inst.Add("H", Const("x"), Const("y"))
	inst.Add("E", Const("a"), Const("b"))
	inst.Add("E", Const("b"), Const("c"))
	facts := inst.Facts()
	if len(facts) != 3 {
		t.Fatalf("got %d facts", len(facts))
	}
	if facts[0].Rel != "E" || facts[1].Rel != "E" || facts[2].Rel != "H" {
		t.Errorf("facts not sorted by relation: %v", facts)
	}
}

func TestInstanceCloneIndependence(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	c := inst.Clone()
	c.Add("E", Const("b"), Const("c"))
	if inst.NumFacts() != 1 {
		t.Error("Clone shares storage with original")
	}
	if c.NumFacts() != 2 {
		t.Error("Clone lost facts")
	}
}

func TestUnionAndContainsAll(t *testing.T) {
	a := NewInstance()
	a.Add("E", Const("a"), Const("b"))
	b := NewInstance()
	b.Add("H", Const("a"), Const("b"))
	u := Union(a, b)
	if u.NumFacts() != 2 {
		t.Fatalf("union has %d facts", u.NumFacts())
	}
	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Error("union must contain both operands")
	}
	if a.ContainsAll(u) {
		t.Error("operand must not contain strict superset")
	}
}

func TestInstanceEqual(t *testing.T) {
	a := NewInstance()
	a.Add("E", Const("a"), Const("b"))
	b := NewInstance()
	b.Add("E", Const("a"), Const("b"))
	if !a.Equal(b) {
		t.Error("equal instances reported unequal")
	}
	b.Add("E", Const("b"), Const("c"))
	if a.Equal(b) {
		t.Error("unequal instances reported equal")
	}
}

func TestInstanceRestrict(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	inst.Add("H", Const("x"), Const("y"))
	s := SchemaOf("E", 2)
	r := inst.Restrict(s)
	if r.NumFacts() != 1 || r.Relation("H") != nil {
		t.Errorf("Restrict kept wrong facts: %v", r)
	}
}

func TestActiveDomainAndNulls(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Null(1))
	inst.Add("E", Null(1), Null(2))
	dom := inst.ActiveDomain()
	if len(dom) != 3 {
		t.Errorf("active domain size = %d, want 3", len(dom))
	}
	nulls := inst.Nulls()
	if len(nulls) != 2 {
		t.Errorf("nulls size = %d, want 2", len(nulls))
	}
	if !inst.HasNulls() {
		t.Error("HasNulls = false")
	}
	ground := NewInstance()
	ground.Add("E", Const("a"), Const("b"))
	if ground.HasNulls() {
		t.Error("ground instance reports nulls")
	}
}

func TestReplaceValueMergesTuples(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Null(1), Const("b"))
	inst.Add("E", Const("a"), Const("b"))
	out := inst.ReplaceValue(Null(1), Const("a"))
	if out.NumFacts() != 1 {
		t.Errorf("ReplaceValue should merge duplicate tuples, got %d facts:\n%s", out.NumFacts(), out)
	}
	if inst.NumFacts() != 2 {
		t.Error("ReplaceValue mutated its receiver")
	}
}

func TestMapValues(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Null(1), Null(2))
	m := map[Value]Value{Null(1): Const("a")}
	out := inst.MapValues(m)
	want := Fact{"E", Tuple{Const("a"), Null(2)}}
	if !out.Contains(want) {
		t.Errorf("MapValues result missing %v:\n%s", want, out)
	}
}

func TestValidateAgainst(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	if err := inst.ValidateAgainst(SchemaOf("E", 2)); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	if err := inst.ValidateAgainst(SchemaOf("E", 3)); err == nil {
		t.Error("arity mismatch not detected")
	}
	if err := inst.ValidateAgainst(SchemaOf("H", 2)); err == nil {
		t.Error("undeclared relation not detected")
	}
}

func TestPositionIndexConsistency(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	inst.Add("E", Const("a"), Const("c"))
	inst.Add("E", Const("b"), Const("c"))
	r := inst.Relation("E")
	idxs := r.MatchingAt(0, Const("a"))
	if len(idxs) != 2 {
		t.Fatalf("MatchingAt(0,a) returned %d tuples, want 2", len(idxs))
	}
	for _, i := range idxs {
		if r.TupleAt(i)[0] != Const("a") {
			t.Errorf("index returned wrong tuple %v", r.TupleAt(i))
		}
	}
	if len(r.MatchingAt(1, Const("a"))) != 0 {
		t.Error("MatchingAt(1,a) should be empty")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema()
	if err := s.Add("E", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("E", 2); err != nil {
		t.Errorf("idempotent redeclare rejected: %v", err)
	}
	if err := s.Add("E", 3); err == nil {
		t.Error("conflicting redeclare accepted")
	}
	if ar, ok := s.Arity("E"); !ok || ar != 2 {
		t.Errorf("Arity(E) = %d,%v", ar, ok)
	}
	if s.Has("H") {
		t.Error("Has(H) true for undeclared relation")
	}
}

func TestSchemaDisjointUnion(t *testing.T) {
	src := SchemaOf("E", 2, "D", 2)
	tgt := SchemaOf("H", 2)
	if !src.Disjoint(tgt) {
		t.Error("disjoint schemas reported overlapping")
	}
	overlap := SchemaOf("E", 2)
	if src.Disjoint(overlap) {
		t.Error("overlapping schemas reported disjoint")
	}
	u, err := src.Union(tgt)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 3 {
		t.Errorf("union has %d relations, want 3", u.Len())
	}
	conflicting := SchemaOf("E", 3)
	if _, err := src.Union(conflicting); err == nil {
		t.Error("conflicting union accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := SchemaOf("H", 2, "E", 2)
	if got := s.String(); got != "E/2, H/2" {
		t.Errorf("schema string = %q", got)
	}
}

// Property: Add/Contains agree with a reference map implementation.
func TestInstanceSetSemanticsProperty(t *testing.T) {
	f := func(ops []struct {
		A, B uint8
	}) bool {
		inst := NewInstance()
		ref := make(map[[2]uint8]bool)
		for _, op := range ops {
			added := inst.Add("R", Const(string(rune('a'+op.A%8))), Const(string(rune('a'+op.B%8))))
			key := [2]uint8{op.A % 8, op.B % 8}
			if added == ref[key] {
				return false // added must be !present
			}
			ref[key] = true
		}
		return inst.NumFacts() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative and idempotent on fact sets.
func TestUnionPropertyCommutative(t *testing.T) {
	build := func(pairs []struct{ A, B uint8 }) *Instance {
		inst := NewInstance()
		for _, p := range pairs {
			inst.Add("R", Const(string(rune('a'+p.A%6))), Const(string(rune('a'+p.B%6))))
		}
		return inst
	}
	f := func(xs, ys []struct{ A, B uint8 }) bool {
		a, b := build(xs), build(ys)
		ab := Union(a, b)
		ba := Union(b, a)
		return ab.Equal(ba) && Union(a, a).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
