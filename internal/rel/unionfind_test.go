package rel

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	n1, n2, n3 := Null(1), Null(2), Null(3)
	if got := u.Find(n1); got != n1 {
		t.Fatalf("Find on fresh value = %v, want %v", got, n1)
	}
	if !u.Union(n1, n2) {
		t.Fatal("Union of distinct classes reported no-op")
	}
	if got := u.Find(n1); got != n2 {
		t.Errorf("Find(n1) = %v, want survivor n2", got)
	}
	if got := u.Find(n2); got != n2 {
		t.Errorf("Find(n2) = %v, want n2", got)
	}
	if u.Union(n2, n1) {
		t.Error("Union within one class reported a merge")
	}
	// Chain another merge: the latest target survives for the whole class.
	u.Union(n2, n3)
	for _, v := range []Value{n1, n2, n3} {
		if got := u.Find(v); got != n3 {
			t.Errorf("Find(%v) = %v, want n3", v, got)
		}
	}
	if u.Merges() != 2 {
		t.Errorf("Merges = %d, want 2", u.Merges())
	}
	if u.Finds() == 0 {
		t.Error("Finds counter never advanced")
	}
}

func TestUnionFindConstantSurvives(t *testing.T) {
	u := NewUnionFind()
	n1, n2 := Null(1), Null(2)
	c := Const("a")
	u.Union(n1, c)
	// Merging the constant-represented class into a null class must keep
	// the constant, regardless of which side is the union target.
	u.Union(c, n2)
	for _, v := range []Value{n1, n2, c} {
		if got := u.Find(v); got != c {
			t.Errorf("Find(%v) = %v, want constant a", v, got)
		}
	}
}

func TestUnionFindPathCompressionAndRank(t *testing.T) {
	u := NewUnionFind()
	// Build a long chain; afterwards every Find must point straight at
	// the root (parent map flattened by compression).
	const n = 64
	for i := 1; i < n; i++ {
		u.Union(Null(i), Null(i+1))
	}
	for i := 1; i <= n; i++ {
		if got := u.Find(Null(i)); got != Null(n) {
			t.Fatalf("Find(_N%d) = %v, want _N%d", i, got, n)
		}
	}
	for v, p := range u.parent {
		r := u.root(v)
		if p != r && u.root(p) != r {
			t.Fatalf("parent chain of %v not compressed toward root", v)
		}
		if u.parent[v] != r {
			t.Errorf("path not compressed for %v after Find", v)
		}
	}
	// Union by rank keeps trees shallow: the max rank of a union-find
	// with n elements is O(log n).
	for v, rk := range u.rank {
		if rk > 7 {
			t.Errorf("rank[%v] = %d, exceeds log2(%d)", v, rk, n)
		}
	}
}

func TestUnionFindSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		u := NewUnionFind()
		pool := make([]Value, 20)
		for i := range pool {
			if i%4 == 0 {
				pool[i] = Const(string(rune('a' + i)))
			} else {
				pool[i] = Null(i)
			}
		}
		for m := 0; m < 15; m++ {
			from := u.Find(pool[rng.Intn(len(pool))])
			to := u.Find(pool[rng.Intn(len(pool))])
			if from == to || (from.IsConst() && to.IsConst()) {
				continue
			}
			if from.IsConst() { // mirror the chase's orientation
				from, to = to, from
			}
			u.Union(from, to)
		}
		snap := u.Snapshot()
		back := UnionFindFromSnapshot(snap)
		for _, v := range pool {
			if u.Find(v) != back.Find(v) {
				t.Fatalf("trial %d: Find(%v) diverges after round-trip: %v vs %v",
					trial, v, u.Find(v), back.Find(v))
			}
		}
		if !reflect.DeepEqual(snap, back.Snapshot()) {
			t.Fatalf("trial %d: snapshot not canonical across round-trip", trial)
		}
	}
}

func TestUnionFindClone(t *testing.T) {
	u := NewUnionFind()
	u.Union(Null(1), Null(2))
	c := u.Clone()
	c.Union(Null(2), Null(3))
	if got := u.Find(Null(1)); got != Null(2) {
		t.Errorf("original mutated by clone's union: Find(_N1) = %v", got)
	}
	if got := c.Find(Null(1)); got != Null(3) {
		t.Errorf("clone Find(_N1) = %v, want _N3", got)
	}
	if u.Merges() != 1 || c.Merges() != 2 {
		t.Errorf("merge counters: orig %d want 1, clone %d want 2", u.Merges(), c.Merges())
	}
	var nilUF *UnionFind
	if nilUF.Clone() != nil {
		t.Error("Clone of nil union-find not nil")
	}
}
