package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is the extension of one relation symbol inside an instance:
// a set of tuples with a fixed arity, plus indexes that accelerate
// trigger and homomorphism search.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	seen   map[TupleKey]int // canonical tuple key -> index into tuples

	// posIndex[i] maps a value to the indexes of tuples carrying that
	// value at position i. Maintained incrementally by add; rebuilt by
	// replaceValue. Lists hold live indexes only: mergeValue removes
	// tombstoned tuples from every list they belong to.
	posIndex []map[Value][]int

	// dead marks tuple slots tombstoned by mergeValue: a merge that
	// makes two tuples collide keeps the earlier copy and tombstones
	// the later one instead of compacting, so surviving tuples keep
	// their indexes (the chase's watermark invariant). dead is nil
	// until the first tombstone and may be shorter than tuples —
	// slots beyond its length are live. Compact drops dead slots.
	dead  []bool
	nDead int
}

func newRelation(name string, arity int) *Relation {
	r := &Relation{
		name:     name,
		arity:    arity,
		seen:     make(map[TupleKey]int),
		posIndex: make([]map[Value][]int, arity),
	}
	for i := range r.posIndex {
		r.posIndex[i] = make(map[Value][]int)
	}
	return r
}

// Name returns the relation symbol.
func (r *Relation) Name() string { return r.name }

// Arity returns the arity of the relation.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuple slots, including tombstoned ones.
// Tuple indexes range over [0, Len); use Live to skip dead slots.
func (r *Relation) Len() int { return len(r.tuples) }

// LiveLen returns the number of live (non-tombstoned) tuples.
func (r *Relation) LiveLen() int { return len(r.tuples) - r.nDead }

// Live reports whether the tuple slot at index i is live, i.e. not
// tombstoned by a merge.
func (r *Relation) Live(i int) bool {
	return i >= len(r.dead) || !r.dead[i]
}

// Tuples returns the relation's tuples. The returned slice and its
// tuples are owned by the relation and must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.seen[KeyOf(t)]
	return ok
}

// MatchingAt returns the indexes of tuples whose i-th position holds v.
// The returned slice is owned by the relation and must not be mutated.
func (r *Relation) MatchingAt(i int, v Value) []int {
	return r.posIndex[i][v]
}

// TupleAt returns the tuple at the given index.
func (r *Relation) TupleAt(i int) Tuple { return r.tuples[i] }

// popLast removes the most recently added tuple and returns it. It
// panics when the relation is empty. Because tuple indexes grow
// monotonically and position-index lists are append-only, the popped
// tuple's index sits at the end of every list it belongs to, making the
// removal O(arity).
func (r *Relation) popLast() Tuple {
	n := len(r.tuples)
	if n == 0 {
		panic("rel: popLast on empty relation")
	}
	if r.nDead > 0 {
		// Backtracking solvers never run on merged (tombstoned)
		// relations; refusing keeps the LIFO index argument intact.
		panic("rel: popLast on relation with tombstoned tuples")
	}
	t := r.tuples[n-1]
	r.tuples = r.tuples[:n-1]
	delete(r.seen, KeyOf(t))
	for i, v := range t {
		lst := r.posIndex[i][v]
		if len(lst) == 0 || lst[len(lst)-1] != n-1 {
			panic("rel: position index corrupted during popLast")
		}
		if len(lst) == 1 {
			delete(r.posIndex[i], v)
		} else {
			r.posIndex[i][v] = lst[:len(lst)-1]
		}
	}
	return t
}

// clone returns a structural copy of the relation. The containers —
// the tuple slice, the seen map, the position-index maps and their
// index lists — are copied, so either copy can add or pop tuples
// without disturbing the other; the stored Tuple arrays are shared,
// which is safe because tuples are never mutated in place once added
// (add stores a private Clone; popLast only drops the last entry).
// Compared with re-adding every fact, this skips the per-tuple key
// construction and tuple copy that dominate chase-side instance
// cloning.
func (r *Relation) clone() *Relation {
	c := &Relation{
		name:     r.name,
		arity:    r.arity,
		tuples:   append(make([]Tuple, 0, len(r.tuples)), r.tuples...),
		seen:     make(map[TupleKey]int, len(r.seen)),
		posIndex: make([]map[Value][]int, len(r.posIndex)),
		nDead:    r.nDead,
	}
	if r.dead != nil {
		c.dead = append(make([]bool, 0, len(r.dead)), r.dead...)
	}
	for k, v := range r.seen {
		c.seen[k] = v
	}
	for i, idx := range r.posIndex {
		m := make(map[Value][]int, len(idx))
		for v, lst := range idx {
			m[v] = append(make([]int, 0, len(lst)), lst...)
		}
		c.posIndex[i] = m
	}
	return c
}

func (r *Relation) add(t Tuple) bool {
	k := KeyOf(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	r.insert(k, t.Clone())
	return true
}

// addOwned is add for tuples whose ownership transfers to the relation:
// the defensive copy is skipped, so the caller must never mutate t
// afterwards.
func (r *Relation) addOwned(t Tuple) bool {
	k := KeyOf(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	r.insert(k, t)
	return true
}

func (r *Relation) insert(k TupleKey, t Tuple) {
	idx := len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.seen[k] = idx
	for i, v := range t {
		r.posIndex[i][v] = append(r.posIndex[i][v], idx)
	}
}

// removeFromIndex drops idx from the position-index list of v at
// position pos. The list is sorted ascending (add appends monotonically
// growing indexes and removals preserve order), so the slot is found by
// binary search; a miss means the index is corrupted.
func (r *Relation) removeFromIndex(pos int, v Value, idx int) {
	lst := r.posIndex[pos][v]
	at := sort.SearchInts(lst, idx)
	if at >= len(lst) || lst[at] != idx {
		panic("rel: position index corrupted during merge")
	}
	if len(lst) == 1 {
		delete(r.posIndex[pos], v)
		return
	}
	r.posIndex[pos][v] = append(lst[:at], lst[at+1:]...)
}

// insertIntoIndex adds idx to the position-index list of v at position
// pos, keeping the list sorted.
func (r *Relation) insertIntoIndex(pos int, v Value, idx int) {
	lst := r.posIndex[pos][v]
	at := sort.SearchInts(lst, idx)
	lst = append(lst, 0)
	copy(lst[at+1:], lst[at:])
	lst[at] = idx
	r.posIndex[pos][v] = lst
}

// tombstone marks the tuple slot at idx dead: its canonical key and
// position-index entries are removed so lookups never see it, but the
// slot itself stays so later tuples keep their indexes.
func (r *Relation) tombstone(idx int) {
	t := r.tuples[idx]
	delete(r.seen, KeyOf(t))
	for i, v := range t {
		r.removeFromIndex(i, v, idx)
	}
	if len(r.dead) < len(r.tuples) {
		grown := make([]bool, len(r.tuples))
		copy(grown, r.dead)
		r.dead = grown
	}
	r.dead[idx] = true
	r.nDead++
}

// mergeValue rewrites every live tuple carrying from so it holds to
// instead, in place. A rewrite that collides with an existing tuple
// keeps the copy with the smaller index and tombstones the other —
// exactly the first-occurrence-wins dedup a full rebuild (ReplaceValue)
// performs, so the surviving tuples and their relative order match the
// rebuild byte for byte, while surviving indexes stay put. It returns
// the sorted indexes of live tuples whose content changed.
func (r *Relation) mergeValue(from, to Value) []int {
	var affected []int
	for i := 0; i < r.arity; i++ {
		affected = append(affected, r.posIndex[i][from]...)
	}
	if len(affected) == 0 {
		return nil
	}
	sort.Ints(affected)
	changed := make([]int, 0, len(affected))
	prev := -1
	for _, idx := range affected {
		if idx == prev { // same tuple matched at several positions
			continue
		}
		prev = idx
		old := r.tuples[idx]
		neu := old.Clone()
		for i, v := range neu {
			if v == from {
				neu[i] = to
			}
		}
		delete(r.seen, KeyOf(old))
		k := KeyOf(neu)
		if j, ok := r.seen[k]; ok {
			if j < idx {
				// The earlier copy survives unchanged; idx dies.
				r.tombstone(idx)
				continue
			}
			// idx survives the collision; the later copy dies.
			// (j's key is k; tombstone removes it before rewrite
			// re-binds k to idx.)
			r.tombstone(j)
		}
		r.tuples[idx] = neu
		r.seen[k] = idx
		for i, v := range old {
			if v == from {
				r.removeFromIndex(i, v, idx)
				r.insertIntoIndex(i, to, idx)
			}
		}
		changed = append(changed, idx)
	}
	return changed
}

// Instance is a finite set of facts over a set of relations. The zero
// value is not usable; construct instances with NewInstance.
//
// Concurrency: an Instance is safe for concurrent reads as long as no
// goroutine mutates it. The parallel search paths (hom, chase, core)
// rely on a freeze-after-build discipline: instances are fully built by
// one goroutine, then only read while shared. Freeze turns that
// discipline into a checked invariant.
type Instance struct {
	rels   map[string]*Relation
	frozen bool
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]*Relation)}
}

// Add inserts the fact R(args) and reports whether it was newly added.
// The relation is created on first use with arity len(args); adding a
// tuple of different arity to an existing relation panics, because it
// indicates a schema violation upstream that must not be masked.
func (inst *Instance) Add(relName string, args ...Value) bool {
	return inst.AddTuple(relName, Tuple(args))
}

// Freeze marks the instance immutable: any subsequent mutation panics.
// Freezing is idempotent and cannot be undone. It exists to enforce the
// freeze-after-build discipline of the parallel search paths: an
// instance handed to concurrent workers must already be frozen, or at
// least never mutated while shared. Clones of a frozen instance are
// mutable again.
func (inst *Instance) Freeze() { inst.frozen = true }

// Frozen reports whether Freeze has been called.
func (inst *Instance) Frozen() bool { return inst.frozen }

func (inst *Instance) mutable(op string) {
	if inst.frozen {
		panic("rel: " + op + " on frozen instance")
	}
}

// AddTuple inserts the fact R(t) and reports whether it was newly added.
func (inst *Instance) AddTuple(relName string, t Tuple) bool {
	return inst.relFor(relName, len(t), "AddTuple").add(t)
}

// AddOwnedTuple is AddTuple for callers that transfer ownership of t:
// the tuple is stored without the defensive copy, so the caller must
// never mutate it afterwards. Decoders that build instances from
// freshly allocated memory use it to avoid doubling their tuple
// allocations.
func (inst *Instance) AddOwnedTuple(relName string, t Tuple) bool {
	return inst.relFor(relName, len(t), "AddOwnedTuple").addOwned(t)
}

// Reserve pre-sizes the relation for n tuples of the given arity,
// creating it if absent: the tuple slice, the dedup map, and the
// position-index maps are allocated once instead of growing
// incrementally. Loaders that know tuple counts up front (the snapshot
// decoder) call it before inserting.
func (inst *Instance) Reserve(relName string, arity, n int) {
	inst.mutable("Reserve")
	r, ok := inst.rels[relName]
	if !ok {
		r = &Relation{
			name:     relName,
			arity:    arity,
			tuples:   make([]Tuple, 0, n),
			seen:     make(map[TupleKey]int, n),
			posIndex: make([]map[Value][]int, arity),
		}
		for i := range r.posIndex {
			r.posIndex[i] = make(map[Value][]int, n)
		}
		inst.rels[relName] = r
		return
	}
	if r.arity != arity {
		panic(fmt.Sprintf("rel: arity mismatch reserving %s/%d in relation of arity %d", relName, arity, r.arity))
	}
	if free := cap(r.tuples) - len(r.tuples); free < n {
		grown := make([]Tuple, len(r.tuples), len(r.tuples)+n)
		copy(grown, r.tuples)
		r.tuples = grown
	}
}

func (inst *Instance) relFor(relName string, arity int, op string) *Relation {
	inst.mutable(op)
	r, ok := inst.rels[relName]
	if !ok {
		r = newRelation(relName, arity)
		inst.rels[relName] = r
	}
	if r.arity != arity {
		panic(fmt.Sprintf("rel: arity mismatch adding %s/%d to relation of arity %d", relName, arity, r.arity))
	}
	return r
}

// AddFact inserts the fact and reports whether it was newly added.
func (inst *Instance) AddFact(f Fact) bool {
	return inst.AddTuple(f.Rel, f.Args)
}

// AddAll inserts every fact of other into inst and returns the number of
// newly added facts.
func (inst *Instance) AddAll(other *Instance) int {
	n := 0
	for _, f := range other.Facts() {
		if inst.AddFact(f) {
			n++
		}
	}
	return n
}

// RemoveLastTuple removes the most recently added tuple of the relation
// and returns it. It supports the LIFO undo discipline of backtracking
// solvers; removing anything but the last-added tuple is not supported.
// It panics when the relation is absent or empty.
func (inst *Instance) RemoveLastTuple(relName string) Tuple {
	inst.mutable("RemoveLastTuple")
	r, ok := inst.rels[relName]
	if !ok {
		panic(fmt.Sprintf("rel: RemoveLastTuple on absent relation %s", relName))
	}
	return r.popLast()
}

// Relation returns the extension of the relation, or nil if the instance
// has no facts for it.
func (inst *Instance) Relation(name string) *Relation {
	return inst.rels[name]
}

// Contains reports whether the fact is present.
func (inst *Instance) Contains(f Fact) bool {
	r, ok := inst.rels[f.Rel]
	return ok && r.Contains(f.Args)
}

// RelationNames returns the names of relations with at least one tuple,
// sorted.
func (inst *Instance) RelationNames() []string {
	names := make([]string, 0, len(inst.rels))
	for n, r := range inst.rels {
		if r.LiveLen() > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NumFacts returns the total number of facts (live tuples).
func (inst *Instance) NumFacts() int {
	n := 0
	for _, r := range inst.rels {
		n += r.LiveLen()
	}
	return n
}

// IsEmpty reports whether the instance holds no facts.
func (inst *Instance) IsEmpty() bool { return inst.NumFacts() == 0 }

// TupleCounts returns the current tuple slot count of every relation,
// keyed by name. Relations grow append-only (AddTuple appends; only
// RemoveLastTuple and the ReplaceValue/MapValues rebuilds disturb the
// order), so a snapshot of the counts splits each relation into a
// stable old prefix and a new suffix until the next non-append
// mutation — this is the watermark the semi-naive chase keeps per
// dependency (see hom.Delta). Tombstoned slots are counted: MergeValue
// keeps slot indexes stable precisely so these watermarks survive egd
// merges. Empty relations are included.
func (inst *Instance) TupleCounts() map[string]int {
	counts := make(map[string]int, len(inst.rels))
	for name, r := range inst.rels {
		counts[name] = len(r.tuples)
	}
	return counts
}

// Facts returns all facts in deterministic order (relations sorted by
// name, tuples in insertion order). The tuples are owned by the instance
// and must not be mutated.
func (inst *Instance) Facts() []Fact {
	out := make([]Fact, 0, inst.NumFacts())
	for _, name := range inst.RelationNames() {
		r := inst.rels[name]
		for i, t := range r.tuples {
			if !r.Live(i) {
				continue
			}
			out = append(out, Fact{Rel: name, Args: t})
		}
	}
	return out
}

// Clone returns a deep copy of the instance: mutations of either copy
// never affect the other. (The immutable tuple arrays are shared
// internally; see Relation.clone.)
func (inst *Instance) Clone() *Instance {
	c := NewInstance()
	for name, r := range inst.rels {
		c.rels[name] = r.clone()
	}
	return c
}

// Union returns a new instance holding the facts of both instances.
func Union(a, b *Instance) *Instance {
	u := a.Clone()
	u.AddAll(b)
	return u
}

// ContainsAll reports whether every fact of sub is present in inst.
func (inst *Instance) ContainsAll(sub *Instance) bool {
	for _, f := range sub.Facts() {
		if !inst.Contains(f) {
			return false
		}
	}
	return true
}

// Equal reports whether the two instances hold exactly the same facts.
func (inst *Instance) Equal(other *Instance) bool {
	return inst.NumFacts() == other.NumFacts() && inst.ContainsAll(other)
}

// Restrict returns a new instance holding only the facts whose relations
// belong to the given schema.
func (inst *Instance) Restrict(s *Schema) *Instance {
	out := NewInstance()
	for name, r := range inst.rels {
		if s.Has(name) {
			out.rels[name] = r.clone()
		}
	}
	return out
}

// ActiveDomain returns the set of values occurring in the instance.
func (inst *Instance) ActiveDomain() map[Value]struct{} {
	dom := make(map[Value]struct{})
	for _, r := range inst.rels {
		for i, t := range r.tuples {
			if !r.Live(i) {
				continue
			}
			for _, v := range t {
				dom[v] = struct{}{}
			}
		}
	}
	return dom
}

// Nulls returns the set of labeled nulls occurring in the instance.
func (inst *Instance) Nulls() map[Value]struct{} {
	nulls := make(map[Value]struct{})
	for _, r := range inst.rels {
		for i, t := range r.tuples {
			if !r.Live(i) {
				continue
			}
			for _, v := range t {
				if v.IsNull() {
					nulls[v] = struct{}{}
				}
			}
		}
	}
	return nulls
}

// HasNulls reports whether the instance contains any labeled null.
func (inst *Instance) HasNulls() bool {
	for _, r := range inst.rels {
		for i, t := range r.tuples {
			if !r.Live(i) {
				continue
			}
			for _, v := range t {
				if v.IsNull() {
					return true
				}
			}
		}
	}
	return false
}

// ReplaceValue returns a new instance with every occurrence of from
// replaced by to. It is used by equality-generating dependency chase
// steps, which identify a null with a constant or with another null.
func (inst *Instance) ReplaceValue(from, to Value) *Instance {
	out := NewInstance()
	for _, f := range inst.Facts() {
		t := f.Args.Clone()
		for i, v := range t {
			if v == from {
				t[i] = to
			}
		}
		out.AddTuple(f.Rel, t)
	}
	return out
}

// MergeValue substitutes to for every occurrence of from, in place.
// It is the union-find egd engine's counterpart of ReplaceValue: where
// ReplaceValue rebuilds the whole instance (shuffling every tuple
// index), MergeValue rewrites only the tuples that carry from and
// tombstones rewrites that collide with an existing tuple (keeping the
// copy with the smaller index, matching ReplaceValue's
// first-occurrence-wins dedup). Surviving tuples keep their indexes,
// so TupleCounts watermarks taken before the merge stay valid.
//
// The result maps each relation to the sorted indexes of live tuples
// whose content changed; relations without changes are absent. The
// chase feeds these indexes to hom.EnumerateDeltaSpec so only bindings
// touching a merged class are re-enumerated.
func (inst *Instance) MergeValue(from, to Value) map[string][]int {
	inst.mutable("MergeValue")
	if from == to {
		return nil
	}
	var out map[string][]int
	for name, r := range inst.rels {
		if ch := r.mergeValue(from, to); len(ch) > 0 {
			if out == nil {
				out = make(map[string][]int)
			}
			out[name] = ch
		}
	}
	return out
}

// Compact returns inst unchanged when no tuple slot is tombstoned, and
// otherwise a fresh instance holding exactly the live tuples in their
// current order. Facts (and hence String) render identically either
// way; only the tuple indexes shift, so callers must not mix
// pre-compaction watermarks with the compacted instance.
func (inst *Instance) Compact() *Instance {
	dirty := false
	for _, r := range inst.rels {
		if r.nDead > 0 {
			dirty = true
			break
		}
	}
	if !dirty {
		return inst
	}
	out := NewInstance()
	for name, r := range inst.rels {
		nr := newRelation(r.name, r.arity)
		for i, t := range r.tuples {
			if r.Live(i) {
				nr.add(t)
			}
		}
		out.rels[name] = nr
	}
	return out
}

// MapValues returns a new instance with every value v replaced by m(v).
// Values not in m are kept unchanged. This implements taking the
// homomorphic image h(K) of an instance.
func (inst *Instance) MapValues(m map[Value]Value) *Instance {
	out := NewInstance()
	for _, f := range inst.Facts() {
		t := f.Args.Clone()
		for i, v := range t {
			if w, ok := m[v]; ok {
				t[i] = w
			}
		}
		out.AddTuple(f.Rel, t)
	}
	return out
}

// ValidateAgainst checks that every relation of the instance is declared
// in the schema with a matching arity.
func (inst *Instance) ValidateAgainst(s *Schema) error {
	for name, r := range inst.rels {
		if r.Len() == 0 {
			continue
		}
		ar, ok := s.Arity(name)
		if !ok {
			return fmt.Errorf("rel: relation %s not declared in schema", name)
		}
		if ar != r.arity {
			return fmt.Errorf("rel: relation %s has arity %d, schema declares %d", name, r.arity, ar)
		}
	}
	return nil
}

// String renders the instance as a sorted list of facts, one per line.
func (inst *Instance) String() string {
	facts := inst.Facts()
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = f.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
