package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is the extension of one relation symbol inside an instance:
// a set of tuples with a fixed arity, plus indexes that accelerate
// trigger and homomorphism search.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	seen   map[string]int // canonical tuple key -> index into tuples

	// posIndex[i] maps a value to the indexes of tuples carrying that
	// value at position i. Maintained incrementally by add; rebuilt by
	// replaceValue.
	posIndex []map[Value][]int
}

func newRelation(name string, arity int) *Relation {
	r := &Relation{
		name:     name,
		arity:    arity,
		seen:     make(map[string]int),
		posIndex: make([]map[Value][]int, arity),
	}
	for i := range r.posIndex {
		r.posIndex[i] = make(map[Value][]int)
	}
	return r
}

// Name returns the relation symbol.
func (r *Relation) Name() string { return r.name }

// Arity returns the arity of the relation.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the relation's tuples. The returned slice and its
// tuples are owned by the relation and must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Contains reports whether the tuple is present.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.seen[tupleKey(t)]
	return ok
}

// MatchingAt returns the indexes of tuples whose i-th position holds v.
// The returned slice is owned by the relation and must not be mutated.
func (r *Relation) MatchingAt(i int, v Value) []int {
	return r.posIndex[i][v]
}

// TupleAt returns the tuple at the given index.
func (r *Relation) TupleAt(i int) Tuple { return r.tuples[i] }

// popLast removes the most recently added tuple and returns it. It
// panics when the relation is empty. Because tuple indexes grow
// monotonically and position-index lists are append-only, the popped
// tuple's index sits at the end of every list it belongs to, making the
// removal O(arity).
func (r *Relation) popLast() Tuple {
	n := len(r.tuples)
	if n == 0 {
		panic("rel: popLast on empty relation")
	}
	t := r.tuples[n-1]
	r.tuples = r.tuples[:n-1]
	delete(r.seen, tupleKey(t))
	for i, v := range t {
		lst := r.posIndex[i][v]
		if len(lst) == 0 || lst[len(lst)-1] != n-1 {
			panic("rel: position index corrupted during popLast")
		}
		if len(lst) == 1 {
			delete(r.posIndex[i], v)
		} else {
			r.posIndex[i][v] = lst[:len(lst)-1]
		}
	}
	return t
}

// clone returns a structural copy of the relation. The containers —
// the tuple slice, the seen map, the position-index maps and their
// index lists — are copied, so either copy can add or pop tuples
// without disturbing the other; the stored Tuple arrays and the key
// strings are shared, which is safe because tuples are never mutated
// in place once added (add stores a private Clone; popLast only drops
// the last entry). Compared with re-adding every fact, this skips the
// per-tuple key construction and tuple copy that dominate chase-side
// instance cloning.
func (r *Relation) clone() *Relation {
	c := &Relation{
		name:     r.name,
		arity:    r.arity,
		tuples:   append(make([]Tuple, 0, len(r.tuples)), r.tuples...),
		seen:     make(map[string]int, len(r.seen)),
		posIndex: make([]map[Value][]int, len(r.posIndex)),
	}
	for k, v := range r.seen {
		c.seen[k] = v
	}
	for i, idx := range r.posIndex {
		m := make(map[Value][]int, len(idx))
		for v, lst := range idx {
			m[v] = append(make([]int, 0, len(lst)), lst...)
		}
		c.posIndex[i] = m
	}
	return c
}

func (r *Relation) add(t Tuple) bool {
	k := tupleKey(t)
	if _, ok := r.seen[k]; ok {
		return false
	}
	idx := len(r.tuples)
	r.tuples = append(r.tuples, t.Clone())
	r.seen[k] = idx
	for i, v := range t {
		r.posIndex[i][v] = append(r.posIndex[i][v], idx)
	}
	return true
}

// Instance is a finite set of facts over a set of relations. The zero
// value is not usable; construct instances with NewInstance.
//
// Concurrency: an Instance is safe for concurrent reads as long as no
// goroutine mutates it. The parallel search paths (hom, chase, core)
// rely on a freeze-after-build discipline: instances are fully built by
// one goroutine, then only read while shared. Freeze turns that
// discipline into a checked invariant.
type Instance struct {
	rels   map[string]*Relation
	frozen bool
}

// NewInstance returns an empty instance.
func NewInstance() *Instance {
	return &Instance{rels: make(map[string]*Relation)}
}

// Add inserts the fact R(args) and reports whether it was newly added.
// The relation is created on first use with arity len(args); adding a
// tuple of different arity to an existing relation panics, because it
// indicates a schema violation upstream that must not be masked.
func (inst *Instance) Add(relName string, args ...Value) bool {
	return inst.AddTuple(relName, Tuple(args))
}

// Freeze marks the instance immutable: any subsequent mutation panics.
// Freezing is idempotent and cannot be undone. It exists to enforce the
// freeze-after-build discipline of the parallel search paths: an
// instance handed to concurrent workers must already be frozen, or at
// least never mutated while shared. Clones of a frozen instance are
// mutable again.
func (inst *Instance) Freeze() { inst.frozen = true }

// Frozen reports whether Freeze has been called.
func (inst *Instance) Frozen() bool { return inst.frozen }

func (inst *Instance) mutable(op string) {
	if inst.frozen {
		panic("rel: " + op + " on frozen instance")
	}
}

// AddTuple inserts the fact R(t) and reports whether it was newly added.
func (inst *Instance) AddTuple(relName string, t Tuple) bool {
	inst.mutable("AddTuple")
	r, ok := inst.rels[relName]
	if !ok {
		r = newRelation(relName, len(t))
		inst.rels[relName] = r
	}
	if r.arity != len(t) {
		panic(fmt.Sprintf("rel: arity mismatch adding %s/%d to relation of arity %d", relName, len(t), r.arity))
	}
	return r.add(t)
}

// AddFact inserts the fact and reports whether it was newly added.
func (inst *Instance) AddFact(f Fact) bool {
	return inst.AddTuple(f.Rel, f.Args)
}

// AddAll inserts every fact of other into inst and returns the number of
// newly added facts.
func (inst *Instance) AddAll(other *Instance) int {
	n := 0
	for _, f := range other.Facts() {
		if inst.AddFact(f) {
			n++
		}
	}
	return n
}

// RemoveLastTuple removes the most recently added tuple of the relation
// and returns it. It supports the LIFO undo discipline of backtracking
// solvers; removing anything but the last-added tuple is not supported.
// It panics when the relation is absent or empty.
func (inst *Instance) RemoveLastTuple(relName string) Tuple {
	inst.mutable("RemoveLastTuple")
	r, ok := inst.rels[relName]
	if !ok {
		panic(fmt.Sprintf("rel: RemoveLastTuple on absent relation %s", relName))
	}
	return r.popLast()
}

// Relation returns the extension of the relation, or nil if the instance
// has no facts for it.
func (inst *Instance) Relation(name string) *Relation {
	return inst.rels[name]
}

// Contains reports whether the fact is present.
func (inst *Instance) Contains(f Fact) bool {
	r, ok := inst.rels[f.Rel]
	return ok && r.Contains(f.Args)
}

// RelationNames returns the names of relations with at least one tuple,
// sorted.
func (inst *Instance) RelationNames() []string {
	names := make([]string, 0, len(inst.rels))
	for n, r := range inst.rels {
		if r.Len() > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// NumFacts returns the total number of facts.
func (inst *Instance) NumFacts() int {
	n := 0
	for _, r := range inst.rels {
		n += r.Len()
	}
	return n
}

// IsEmpty reports whether the instance holds no facts.
func (inst *Instance) IsEmpty() bool { return inst.NumFacts() == 0 }

// TupleCounts returns the current tuple count of every relation, keyed
// by name. Relations grow append-only (AddTuple appends; only
// RemoveLastTuple and the ReplaceValue/MapValues rebuilds disturb the
// order), so a snapshot of the counts splits each relation into a
// stable old prefix and a new suffix until the next non-append
// mutation — this is the watermark the semi-naive chase keeps per
// dependency (see hom.Delta). Empty relations are included.
func (inst *Instance) TupleCounts() map[string]int {
	counts := make(map[string]int, len(inst.rels))
	for name, r := range inst.rels {
		counts[name] = len(r.tuples)
	}
	return counts
}

// Facts returns all facts in deterministic order (relations sorted by
// name, tuples in insertion order). The tuples are owned by the instance
// and must not be mutated.
func (inst *Instance) Facts() []Fact {
	out := make([]Fact, 0, inst.NumFacts())
	for _, name := range inst.RelationNames() {
		for _, t := range inst.rels[name].tuples {
			out = append(out, Fact{Rel: name, Args: t})
		}
	}
	return out
}

// Clone returns a deep copy of the instance: mutations of either copy
// never affect the other. (The immutable tuple arrays are shared
// internally; see Relation.clone.)
func (inst *Instance) Clone() *Instance {
	c := NewInstance()
	for name, r := range inst.rels {
		c.rels[name] = r.clone()
	}
	return c
}

// Union returns a new instance holding the facts of both instances.
func Union(a, b *Instance) *Instance {
	u := a.Clone()
	u.AddAll(b)
	return u
}

// ContainsAll reports whether every fact of sub is present in inst.
func (inst *Instance) ContainsAll(sub *Instance) bool {
	for _, f := range sub.Facts() {
		if !inst.Contains(f) {
			return false
		}
	}
	return true
}

// Equal reports whether the two instances hold exactly the same facts.
func (inst *Instance) Equal(other *Instance) bool {
	return inst.NumFacts() == other.NumFacts() && inst.ContainsAll(other)
}

// Restrict returns a new instance holding only the facts whose relations
// belong to the given schema.
func (inst *Instance) Restrict(s *Schema) *Instance {
	out := NewInstance()
	for name, r := range inst.rels {
		if s.Has(name) {
			out.rels[name] = r.clone()
		}
	}
	return out
}

// ActiveDomain returns the set of values occurring in the instance.
func (inst *Instance) ActiveDomain() map[Value]struct{} {
	dom := make(map[Value]struct{})
	for _, r := range inst.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				dom[v] = struct{}{}
			}
		}
	}
	return dom
}

// Nulls returns the set of labeled nulls occurring in the instance.
func (inst *Instance) Nulls() map[Value]struct{} {
	nulls := make(map[Value]struct{})
	for _, r := range inst.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() {
					nulls[v] = struct{}{}
				}
			}
		}
	}
	return nulls
}

// HasNulls reports whether the instance contains any labeled null.
func (inst *Instance) HasNulls() bool {
	for _, r := range inst.rels {
		for _, t := range r.tuples {
			for _, v := range t {
				if v.IsNull() {
					return true
				}
			}
		}
	}
	return false
}

// ReplaceValue returns a new instance with every occurrence of from
// replaced by to. It is used by equality-generating dependency chase
// steps, which identify a null with a constant or with another null.
func (inst *Instance) ReplaceValue(from, to Value) *Instance {
	out := NewInstance()
	for _, f := range inst.Facts() {
		t := f.Args.Clone()
		for i, v := range t {
			if v == from {
				t[i] = to
			}
		}
		out.AddTuple(f.Rel, t)
	}
	return out
}

// MapValues returns a new instance with every value v replaced by m(v).
// Values not in m are kept unchanged. This implements taking the
// homomorphic image h(K) of an instance.
func (inst *Instance) MapValues(m map[Value]Value) *Instance {
	out := NewInstance()
	for _, f := range inst.Facts() {
		t := f.Args.Clone()
		for i, v := range t {
			if w, ok := m[v]; ok {
				t[i] = w
			}
		}
		out.AddTuple(f.Rel, t)
	}
	return out
}

// ValidateAgainst checks that every relation of the instance is declared
// in the schema with a matching arity.
func (inst *Instance) ValidateAgainst(s *Schema) error {
	for name, r := range inst.rels {
		if r.Len() == 0 {
			continue
		}
		ar, ok := s.Arity(name)
		if !ok {
			return fmt.Errorf("rel: relation %s not declared in schema", name)
		}
		if ar != r.arity {
			return fmt.Errorf("rel: relation %s has arity %d, schema declares %d", name, r.arity, ar)
		}
	}
	return nil
}

// String renders the instance as a sorted list of facts, one per line.
func (inst *Instance) String() string {
	facts := inst.Facts()
	lines := make([]string, len(facts))
	for i, f := range facts {
		lines[i] = f.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
