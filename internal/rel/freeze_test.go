package rel

import "testing"

func TestFreezeBlocksMutation(t *testing.T) {
	inst := NewInstance()
	inst.Add("R", Const("a"), Const("b"))
	if inst.Frozen() {
		t.Fatal("fresh instance reports frozen")
	}
	inst.Freeze()
	if !inst.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	mustPanic(t, "AddTuple", func() { inst.Add("R", Const("c"), Const("d")) })
	mustPanic(t, "RemoveLastTuple", func() { inst.RemoveLastTuple("R") })
}

func TestFrozenInstanceStillReadable(t *testing.T) {
	inst := NewInstance()
	inst.Add("R", Const("a"), Null(1))
	inst.Freeze()
	if inst.NumFacts() != 1 || !inst.Contains(Fact{Rel: "R", Args: Tuple{Const("a"), Null(1)}}) {
		t.Fatal("reads broken after Freeze")
	}
	if len(inst.Facts()) != 1 {
		t.Fatal("Facts broken after Freeze")
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	inst := NewInstance()
	inst.Add("R", Const("a"), Const("b"))
	inst.Freeze()
	c := inst.Clone()
	if c.Frozen() {
		t.Fatal("clone inherited frozen flag")
	}
	if !c.Add("R", Const("c"), Const("d")) {
		t.Fatal("clone refused mutation")
	}
	if inst.NumFacts() != 1 {
		t.Fatal("mutating the clone changed the frozen original")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on frozen instance did not panic", name)
		}
	}()
	f()
}
