package rel

import (
	"math/rand"
	"testing"
)

func TestRemoveLastTupleBasic(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	inst.Add("E", Const("b"), Const("c"))
	got := inst.RemoveLastTuple("E")
	if got[0] != Const("b") || got[1] != Const("c") {
		t.Errorf("removed %v, want (b, c)", got)
	}
	if inst.NumFacts() != 1 {
		t.Errorf("facts = %d", inst.NumFacts())
	}
	if inst.Contains(Fact{"E", Tuple{Const("b"), Const("c")}}) {
		t.Error("removed tuple still present")
	}
	if !inst.Contains(Fact{"E", Tuple{Const("a"), Const("b")}}) {
		t.Error("remaining tuple lost")
	}
}

func TestRemoveLastTupleIndexConsistency(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	inst.Add("E", Const("a"), Const("c"))
	inst.RemoveLastTuple("E")
	r := inst.Relation("E")
	if got := r.MatchingAt(0, Const("a")); len(got) != 1 {
		t.Errorf("index after removal: %v", got)
	}
	if got := r.MatchingAt(1, Const("c")); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	// Re-adding after removal works and indexes stay coherent.
	inst.Add("E", Const("a"), Const("c"))
	if got := r.MatchingAt(1, Const("c")); len(got) != 1 {
		t.Errorf("index after re-add: %v", got)
	}
}

func TestRemoveLastTuplePanics(t *testing.T) {
	inst := NewInstance()
	t.Run("absent relation", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for absent relation")
			}
		}()
		inst.RemoveLastTuple("E")
	})
	t.Run("empty relation", func(t *testing.T) {
		inst.Add("E", Const("a"), Const("b"))
		inst.RemoveLastTuple("E")
		defer func() {
			if recover() == nil {
				t.Error("no panic for empty relation")
			}
		}()
		inst.RemoveLastTuple("E")
	})
}

func TestRemoveLastTupleRepeatedValue(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("a"))
	inst.RemoveLastTuple("E")
	if inst.NumFacts() != 0 {
		t.Error("repeated-value tuple not removed")
	}
	r := inst.Relation("E")
	if len(r.MatchingAt(0, Const("a")))+len(r.MatchingAt(1, Const("a"))) != 0 {
		t.Error("stale index entries for repeated value")
	}
}

// Property: a random interleaving of LIFO add/remove operations keeps
// the instance equal to a reference stack-based model.
func TestRemoveLastTupleLIFOProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		inst := NewInstance()
		var stack []Tuple
		for op := 0; op < 60; op++ {
			if len(stack) > 0 && rng.Intn(3) == 0 {
				got := inst.RemoveLastTuple("R")
				want := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if got.String() != want.String() {
					t.Fatalf("pop mismatch: got %v want %v", got, want)
				}
				continue
			}
			tup := Tuple{Const(string(rune('a' + rng.Intn(5)))), Const(string(rune('a' + rng.Intn(5))))}
			if inst.AddTuple("R", tup) {
				stack = append(stack, tup)
			}
		}
		if inst.NumFacts() != len(stack) {
			t.Fatalf("size mismatch: %d vs %d", inst.NumFacts(), len(stack))
		}
		for _, tup := range stack {
			if !inst.Contains(Fact{"R", tup}) {
				t.Fatalf("missing %v", tup)
			}
		}
		// Index sanity: every stacked tuple is reachable through its
		// position index.
		r := inst.Relation("R")
		for _, tup := range stack {
			found := false
			for _, idx := range r.MatchingAt(0, tup[0]) {
				if r.TupleAt(idx).String() == tup.String() {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("tuple %v not indexed", tup)
			}
		}
	}
}

func TestStringDeterministic(t *testing.T) {
	a := NewInstance()
	a.Add("B", Const("x"), Const("y"))
	a.Add("A", Const("q"))
	b := NewInstance()
	b.Add("A", Const("q"))
	b.Add("B", Const("x"), Const("y"))
	if a.String() != b.String() {
		t.Errorf("String not insertion-order independent:\n%s\nvs\n%s", a, b)
	}
}

func TestRestrictEmptyAndFull(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	empty := inst.Restrict(NewSchema())
	if !empty.IsEmpty() {
		t.Error("restrict to empty schema kept facts")
	}
	full := inst.Restrict(SchemaOf("E", 2))
	if !full.Equal(inst) {
		t.Error("restrict to full schema lost facts")
	}
}
