package rel

import "testing"

// TestTupleCounts: counts snapshot the per-relation sizes, include
// empty relations, and stay stable while the instance grows — the
// append-only property the semi-naive chase watermarks rely on: tuples
// at indexes below a snapshot's count are unchanged by later AddTuple
// calls.
func TestTupleCounts(t *testing.T) {
	inst := NewInstance()
	inst.Add("R", Const("a"), Const("b"))
	inst.Add("R", Const("b"), Const("c"))
	inst.Add("S", Const("a"))
	inst.AddTuple("Empty", nil)
	inst.RemoveLastTuple("Empty")

	counts := inst.TupleCounts()
	if counts["R"] != 2 || counts["S"] != 1 {
		t.Fatalf("counts = %v, want R:2 S:1", counts)
	}
	if n, ok := counts["Empty"]; !ok || n != 0 {
		t.Fatalf("empty relation missing from counts: %v", counts)
	}

	before := make([]Tuple, counts["R"])
	r := inst.Relation("R")
	for i := range before {
		before[i] = r.TupleAt(i)
	}
	inst.Add("R", Const("c"), Const("d"))
	inst.Add("S", Const("b"))
	if counts["R"] != 2 || counts["S"] != 1 {
		t.Fatalf("snapshot mutated by later adds: %v", counts)
	}
	for i, want := range before {
		if got := inst.Relation("R").TupleAt(i); got.String() != want.String() {
			t.Fatalf("old prefix changed at %d: %v != %v", i, got, want)
		}
	}
	if got := inst.TupleCounts(); got["R"] != 3 || got["S"] != 2 {
		t.Fatalf("fresh counts = %v, want R:3 S:2", got)
	}
}
