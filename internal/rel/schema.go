package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is a finite collection of relation symbols, each with a fixed
// arity.
type Schema struct {
	arities map[string]int
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{arities: make(map[string]int)}
}

// SchemaOf builds a schema from name/arity pairs. It panics on duplicate
// relation names with conflicting arities; it is intended for literals in
// tests and examples.
func SchemaOf(pairs ...any) *Schema {
	if len(pairs)%2 != 0 {
		panic("rel: SchemaOf requires name/arity pairs")
	}
	s := NewSchema()
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic("rel: SchemaOf name must be a string")
		}
		ar, ok := pairs[i+1].(int)
		if !ok {
			panic("rel: SchemaOf arity must be an int")
		}
		if err := s.Add(name, ar); err != nil {
			panic(err)
		}
	}
	return s
}

// Add declares a relation with the given arity. Redeclaring a relation
// with the same arity is a no-op; a conflicting arity is an error.
func (s *Schema) Add(name string, arity int) error {
	if name == "" {
		return fmt.Errorf("rel: empty relation name")
	}
	if arity < 0 {
		return fmt.Errorf("rel: relation %s: negative arity %d", name, arity)
	}
	if prev, ok := s.arities[name]; ok {
		if prev != arity {
			return fmt.Errorf("rel: relation %s redeclared with arity %d (was %d)", name, arity, prev)
		}
		return nil
	}
	s.arities[name] = arity
	return nil
}

// Arity returns the arity of the relation and whether it is declared.
func (s *Schema) Arity(name string) (int, bool) {
	ar, ok := s.arities[name]
	return ar, ok
}

// Has reports whether the relation is declared in the schema.
func (s *Schema) Has(name string) bool {
	_, ok := s.arities[name]
	return ok
}

// Relations returns the declared relation names in sorted order.
func (s *Schema) Relations() []string {
	names := make([]string, 0, len(s.arities))
	for n := range s.arities {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of declared relations.
func (s *Schema) Len() int { return len(s.arities) }

// Disjoint reports whether the two schemas share no relation names. The
// source and target schemas of a peer data exchange setting must be
// disjoint.
func (s *Schema) Disjoint(t *Schema) bool {
	for n := range s.arities {
		if t.Has(n) {
			return false
		}
	}
	return true
}

// Union returns a new schema containing the relations of both schemas.
// It returns an error on arity conflicts.
func (s *Schema) Union(t *Schema) (*Schema, error) {
	u := NewSchema()
	for n, a := range s.arities {
		if err := u.Add(n, a); err != nil {
			return nil, err
		}
	}
	for n, a := range t.arities {
		if err := u.Add(n, a); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := NewSchema()
	for n, a := range s.arities {
		c.arities[n] = a
	}
	return c
}

// String renders the schema as a comma-separated list of name/arity
// declarations in sorted order.
func (s *Schema) String() string {
	var b strings.Builder
	for i, n := range s.Relations() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s/%d", n, s.arities[n])
	}
	return b.String()
}
