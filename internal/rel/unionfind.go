package rel

import "sort"

// UnionFind maintains the equivalence classes over values that egd
// chase steps create: each merge "from = to" joins the two classes and
// designates a surviving representative. The chase substitutes the
// survivor into the instance eagerly (Instance.MergeValue), so the
// union-find is not consulted on the instance hot path; it exists to
//
//   - remember the full merge history of a run, so a resumed chase can
//     canonicalize newly appended facts through Find before adding them
//     (a fact mentioning a merged-away null must land on the class
//     representative the previous run substituted everywhere else), and
//   - expose merge/find counters for the benchmark suite.
//
// The structure is the textbook one — path compression plus union by
// rank — with one twist: the representative of a class is not the tree
// root but an explicitly designated survivor value, because the chase's
// substitution semantics (constants win; otherwise the merge target
// survives) must not depend on tree shape.
//
// UnionFind is not safe for concurrent use.
type UnionFind struct {
	parent map[Value]Value // tree edges; values absent from the map are their own root
	rank   map[Value]int
	rep    map[Value]Value // tree root -> designated class representative
	merges int
	finds  int
}

// NewUnionFind returns an empty union-find: every value is initially in
// its own singleton class with itself as representative.
func NewUnionFind() *UnionFind {
	return &UnionFind{
		parent: make(map[Value]Value),
		rank:   make(map[Value]int),
		rep:    make(map[Value]Value),
	}
}

// root returns the tree root of v's class, compressing the path.
func (u *UnionFind) root(v Value) Value {
	p, ok := u.parent[v]
	if !ok || p == v {
		return v
	}
	r := u.root(p)
	u.parent[v] = r
	return r
}

// Find returns the representative of v's equivalence class; a value
// never merged is its own representative.
func (u *UnionFind) Find(v Value) Value {
	u.finds++
	r := u.root(v)
	if rep, ok := u.rep[r]; ok {
		return rep
	}
	return r
}

// Union merges the classes of from and to and makes the representative
// of to's class survive — unless from's class is represented by a
// constant and to's is not, in which case the constant survives (a
// labeled null can be identified with a constant, never the other way
// around). It reports whether the two were in distinct classes. The
// chase always calls Union with already-resolved values, so the
// constant-wins clause is a safety net rather than a hot path.
func (u *UnionFind) Union(from, to Value) bool {
	ra, rb := u.root(from), u.root(to)
	if ra == rb {
		return false
	}
	survivor := u.repOf(rb)
	if fromRep := u.repOf(ra); fromRep.IsConst() && !survivor.IsConst() {
		survivor = fromRep
	}
	// Union by rank: hang the shallower tree under the deeper one.
	if u.rank[ra] > u.rank[rb] {
		ra, rb = rb, ra
	} else if u.rank[ra] == u.rank[rb] {
		u.rank[rb]++
	}
	u.parent[ra] = rb
	delete(u.rep, ra)
	u.rep[rb] = survivor
	u.merges++
	return true
}

func (u *UnionFind) repOf(root Value) Value {
	if rep, ok := u.rep[root]; ok {
		return rep
	}
	return root
}

// Merges returns the number of Union calls that joined distinct classes.
func (u *UnionFind) Merges() int { return u.merges }

// Finds returns the number of Find calls served so far.
func (u *UnionFind) Finds() int { return u.finds }

// Len returns the number of values that belong to a non-singleton class.
func (u *UnionFind) Len() int { return len(u.parent) }

// MaxNullID returns the largest labeled-null id occurring anywhere in
// the union-find (members or representatives), or 0 when it holds no
// nulls. A resumed chase seeds its null source past this mark: a null
// merged away by a previous run no longer occurs in the compacted
// fixpoint, but reissuing its label would make Find silently identify
// the fresh null with the old class.
func (u *UnionFind) MaxNullID() int {
	max := 0
	see := func(v Value) {
		if v.IsNull() && v.NullID() > max {
			max = v.NullID()
		}
	}
	for v, p := range u.parent {
		see(v)
		see(p)
	}
	for root, rep := range u.rep {
		see(root)
		see(rep)
	}
	return max
}

// Snapshot returns the union-find's state as a canonical list of
// (member, representative) pairs — one per value whose representative is
// not itself — sorted by member. Two union-finds with the same classes
// and representatives produce identical snapshots regardless of the
// merge order that built them.
func (u *UnionFind) Snapshot() [][2]Value {
	// Non-trivial members are the keys of parent (non-roots) plus roots
	// whose designated representative is another value.
	members := make(map[Value]struct{}, len(u.parent)+len(u.rep))
	for v := range u.parent {
		members[v] = struct{}{}
	}
	for root := range u.rep {
		members[root] = struct{}{}
	}
	out := make([][2]Value, 0, len(members))
	for v := range members {
		if rep := u.repOf(u.root(v)); rep != v {
			out = append(out, [2]Value{v, rep})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Less(out[j][0]) })
	return out
}

// UnionFindFromSnapshot reconstructs a union-find from a Snapshot. The
// counters start at zero; only the classes and representatives are
// restored.
func UnionFindFromSnapshot(pairs [][2]Value) *UnionFind {
	u := NewUnionFind()
	for _, p := range pairs {
		member, rep := p[0], p[1]
		u.parent[member] = rep
		u.parent[rep] = rep
		u.rep[rep] = rep
	}
	return u
}

// Clone returns an independent copy: unions on either copy never affect
// the other. Counters are copied as well.
func (u *UnionFind) Clone() *UnionFind {
	if u == nil {
		return nil
	}
	c := &UnionFind{
		parent: make(map[Value]Value, len(u.parent)),
		rank:   make(map[Value]int, len(u.rank)),
		rep:    make(map[Value]Value, len(u.rep)),
		merges: u.merges,
		finds:  u.finds,
	}
	for k, v := range u.parent {
		c.parent[k] = v
	}
	for k, v := range u.rank {
		c.rank[k] = v
	}
	for k, v := range u.rep {
		c.rep[k] = v
	}
	return c
}
