package rel

import (
	"math/rand"
	"sort"
	"testing"
)

func TestMergeValueRewritesInPlace(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Null(1))
	inst.Add("E", Const("b"), Const("c"))
	inst.Add("F", Null(1), Null(2))
	changed := inst.MergeValue(Null(1), Const("x"))
	wantE, wantF := []int{0}, []int{0}
	if !equalInts(changed["E"], wantE) || !equalInts(changed["F"], wantF) {
		t.Fatalf("changed = %v, want E:%v F:%v", changed, wantE, wantF)
	}
	if !inst.Contains(Fact{"E", Tuple{Const("a"), Const("x")}}) {
		t.Error("rewritten E tuple missing")
	}
	if inst.Contains(Fact{"E", Tuple{Const("a"), Null(1)}}) {
		t.Error("pre-merge E tuple still present")
	}
	// Untouched tuple keeps its index; indexes stay coherent.
	r := inst.Relation("E")
	if got := r.MatchingAt(0, Const("b")); len(got) != 1 || got[0] != 1 {
		t.Errorf("untouched tuple index disturbed: %v", got)
	}
	if got := r.MatchingAt(1, Const("x")); len(got) != 1 || got[0] != 0 {
		t.Errorf("index for merged-in value: %v", got)
	}
	if got := r.MatchingAt(1, Null(1)); len(got) != 0 {
		t.Errorf("stale index entry for merged-away null: %v", got)
	}
}

func TestMergeValueTombstonesCollisions(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("x")) // index 0: survivor of the collision below
	inst.Add("E", Const("a"), Null(1))    // index 1: rewrites into index 0's tuple
	inst.Add("E", Const("b"), Null(1))    // index 2: plain rewrite
	changed := inst.MergeValue(Null(1), Const("x"))
	if !equalInts(changed["E"], []int{2}) {
		t.Fatalf("changed = %v, want E:[2]", changed)
	}
	r := inst.Relation("E")
	if r.Len() != 3 || r.LiveLen() != 2 || inst.NumFacts() != 2 {
		t.Fatalf("Len=%d LiveLen=%d NumFacts=%d, want 3/2/2", r.Len(), r.LiveLen(), inst.NumFacts())
	}
	if r.Live(1) {
		t.Error("collided tuple not tombstoned")
	}
	if !r.Live(0) || !r.Live(2) {
		t.Error("survivor tombstoned")
	}
	// The later-copy collision: a tuple already equal to a rewrite target
	// with a LARGER index dies, and the smaller rewritten index survives.
	inst2 := NewInstance()
	inst2.Add("E", Const("a"), Null(1))    // index 0: rewrite survives
	inst2.Add("E", Const("a"), Const("x")) // index 1: dies to index 0's rewrite
	ch2 := inst2.MergeValue(Null(1), Const("x"))
	if !equalInts(ch2["E"], []int{0}) {
		t.Fatalf("changed = %v, want E:[0]", ch2)
	}
	r2 := inst2.Relation("E")
	if r2.Live(1) || !r2.Live(0) {
		t.Errorf("wrong collision survivor: live = [%v %v], want [true false]",
			r2.Live(0), r2.Live(1))
	}
	// Compaction drops the dead slot and renders identically.
	if got := inst2.Compact().NumFacts(); got != 1 {
		t.Errorf("compacted facts = %d, want 1", got)
	}
}

func TestCompactNoTombstonesReturnsSame(t *testing.T) {
	inst := NewInstance()
	inst.Add("E", Const("a"), Const("b"))
	if inst.Compact() != inst {
		t.Error("Compact of tombstone-free instance allocated a copy")
	}
}

// TestMergeValueMatchesReplaceValue is the parity property the chase
// engine rests on: a sequence of in-place merges followed by one final
// compaction yields byte-for-byte the instance that the rebuild path
// (ReplaceValue) produces, with live tuples in the same relative order.
func TestMergeValueMatchesReplaceValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		merged := NewInstance()
		pool := make([]Value, 0, 12)
		for i := 0; i < 6; i++ {
			pool = append(pool, Const(string(rune('a'+i))), Null(i+1))
		}
		rels := []string{"E", "F", "G"}
		for n := 0; n < 30; n++ {
			name := rels[rng.Intn(len(rels))]
			ar := 2 + len(name)%2
			tup := make(Tuple, ar)
			for i := range tup {
				tup[i] = pool[rng.Intn(len(pool))]
			}
			merged.AddTuple(name, tup)
		}
		rebuilt := merged.Clone()
		for m := 0; m < 4; m++ {
			from := Null(1 + rng.Intn(6))
			to := pool[rng.Intn(len(pool))]
			if from == to {
				continue
			}
			merged.MergeValue(from, to)
			rebuilt = rebuilt.ReplaceValue(from, to)
		}
		compact := merged.Compact()
		if compact.String() != rebuilt.String() {
			t.Fatalf("trial %d: merged/compacted instance diverges from rebuild:\n%s\n--- vs ---\n%s",
				trial, compact.String(), rebuilt.String())
		}
		// Relative order of live tuples matches the rebuild, fact by fact.
		cf, rf := compact.Facts(), rebuilt.Facts()
		if len(cf) != len(rf) {
			t.Fatalf("trial %d: fact counts diverge: %d vs %d", trial, len(cf), len(rf))
		}
		for i := range cf {
			if cf[i].key() != rf[i].key() {
				t.Fatalf("trial %d: fact order diverges at %d: %v vs %v", trial, i, cf[i], rf[i])
			}
		}
		checkIndexCoherence(t, merged)
	}
}

// checkIndexCoherence verifies that seen and posIndex agree exactly
// with the live tuples.
func checkIndexCoherence(t *testing.T, inst *Instance) {
	t.Helper()
	for _, name := range inst.RelationNames() {
		r := inst.Relation(name)
		live := 0
		for i := 0; i < r.Len(); i++ {
			if !r.Live(i) {
				continue
			}
			live++
			tup := r.TupleAt(i)
			if got, ok := r.seen[KeyOf(tup)]; !ok || got != i {
				t.Fatalf("%s: seen[%v] = %d,%v, want %d", name, tup, got, ok, i)
			}
			for p, v := range tup {
				lst := r.MatchingAt(p, v)
				at := sort.SearchInts(lst, i)
				if at >= len(lst) || lst[at] != i {
					t.Fatalf("%s: posIndex[%d][%v] missing live index %d: %v", name, p, v, i, lst)
				}
			}
		}
		if live != r.LiveLen() {
			t.Fatalf("%s: LiveLen=%d but %d live slots", name, r.LiveLen(), live)
		}
		if len(r.seen) != live {
			t.Fatalf("%s: seen has %d keys for %d live tuples", name, len(r.seen), live)
		}
		for p := 0; p < r.Arity(); p++ {
			total := 0
			for v, lst := range r.posIndex[p] {
				if len(lst) == 0 {
					t.Fatalf("%s: empty index list kept for %v at %d", name, v, p)
				}
				total += len(lst)
				for _, idx := range lst {
					if !r.Live(idx) {
						t.Fatalf("%s: dead index %d in posIndex[%d][%v]", name, idx, p, v)
					}
					if r.TupleAt(idx)[p] != v {
						t.Fatalf("%s: posIndex[%d][%v] points at tuple %v", name, p, v, r.TupleAt(idx))
					}
				}
			}
			if total != live {
				t.Fatalf("%s: posIndex[%d] covers %d entries for %d live tuples", name, p, total, live)
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
