// Package rel implements the relational model used throughout the peer
// data exchange library: values (constants and labeled nulls), tuples,
// facts, schemas, and instances.
//
// Instances follow the model of Fagin, Kolaitis, Miller, Popa ("Data
// exchange: semantics and query answering") as used by the peer data
// exchange paper: a finite set of facts over a relational schema whose
// values are either constants or labeled nulls. Labeled nulls stand for
// unknown values introduced by the chase to witness existential
// quantifiers.
package rel

import (
	"fmt"
	"strconv"
)

// Kind discriminates constants from labeled nulls.
type Kind uint8

const (
	// KindConst is an ordinary constant value.
	KindConst Kind = iota
	// KindNull is a labeled null.
	KindNull
)

// Value is either a constant (a string) or a labeled null (an integer
// label). The zero Value is the empty constant. Value is comparable and
// may be used as a map key.
type Value struct {
	kind Kind
	str  string
	id   int
}

// Const returns the constant value with the given text.
func Const(s string) Value { return Value{kind: KindConst, str: s} }

// Null returns the labeled null with the given label.
func Null(id int) Value { return Value{kind: KindNull, id: id} }

// Kind reports whether v is a constant or a null.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is a labeled null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v.kind == KindConst }

// ConstText returns the text of a constant value. It panics if v is a
// null; callers must check IsConst first.
func (v Value) ConstText() string {
	if v.kind != KindConst {
		panic("rel: ConstText on labeled null")
	}
	return v.str
}

// NullID returns the label of a null value. It panics if v is a
// constant; callers must check IsNull first.
func (v Value) NullID() int {
	if v.kind != KindNull {
		panic("rel: NullID on constant")
	}
	return v.id
}

// String renders the value: constants as their text, nulls as _N<label>.
func (v Value) String() string {
	if v.kind == KindNull {
		return "_N" + strconv.Itoa(v.id)
	}
	return v.str
}

// Less imposes a total order on values: constants before nulls,
// constants by text, nulls by label. Used only for deterministic output.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	if v.kind == KindNull {
		return v.id < w.id
	}
	return v.str < w.str
}

// NullSource hands out fresh labeled nulls. The zero value is ready to
// use; Fresh returns nulls with labels 1, 2, 3, ...
//
// A single NullSource should be shared by all chase runs that may feed
// facts into the same instance, so labels never collide.
type NullSource struct {
	next int
}

// Fresh returns a labeled null that has not been returned before by this
// source.
func (ns *NullSource) Fresh() Value {
	ns.next++
	return Null(ns.next)
}

// Seen informs the source that the given label is already in use, so
// subsequent Fresh calls avoid it.
func (ns *NullSource) Seen(id int) {
	if id > ns.next {
		ns.next = id
	}
}

// State returns the source's high-water mark: the largest label handed
// out or marked seen so far. Together with SetState it lets a cache
// freeze a chase's null-naming state and restore it later, so resumed
// runs draw exactly the labels a from-scratch run would have drawn next.
func (ns *NullSource) State() int { return ns.next }

// SetState restores a high-water mark previously obtained from State.
// Subsequent Fresh calls return labels strictly above it.
func (ns *NullSource) SetState(next int) { ns.next = next }

// SeenIn scans an instance and marks every null label occurring in it as
// used.
func (ns *NullSource) SeenIn(inst *Instance) {
	for _, f := range inst.Facts() {
		for _, v := range f.Args {
			if v.IsNull() {
				ns.Seen(v.NullID())
			}
		}
	}
}

// Tuple is an ordered list of values.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as (v1, ..., vn).
func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// tupleKeyInline is how many leading values a TupleKey holds directly;
// longer tuples spill the remainder into an encoded string.
const tupleKeyInline = 4

// TupleKey is a compact comparable key identifying a tuple's exact
// value sequence, for map-based deduplication without the per-call
// allocations of a string encoding: tuples of arity ≤ 4 key with zero
// allocations. Two keys are == exactly when the tuples are equal
// value-for-value.
type TupleKey struct {
	n      int
	inline [tupleKeyInline]Value
	rest   string
}

// KeyOf returns the comparable key of the tuple.
func KeyOf(t Tuple) TupleKey {
	k := TupleKey{n: len(t)}
	for i, v := range t {
		if i == tupleKeyInline {
			k.rest = tupleKey(t[tupleKeyInline:])
			break
		}
		k.inline[i] = v
	}
	return k
}

// Fact is a tuple tagged with the relation it belongs to.
type Fact struct {
	Rel  string
	Args Tuple
}

// String renders the fact as R(v1, ..., vn).
func (f Fact) String() string {
	return fmt.Sprintf("%s%s", f.Rel, f.Args.String())
}

// key returns a canonical encoding of the fact usable as a map key.
func (f Fact) key() string {
	return f.Rel + tupleKey(f.Args)
}

func tupleKey(t Tuple) string {
	buf := make([]byte, 0, 16*len(t))
	for _, v := range t {
		buf = append(buf, 0)
		if v.kind == KindNull {
			buf = append(buf, 'n')
			buf = strconv.AppendInt(buf, int64(v.id), 10)
		} else {
			buf = append(buf, 'c')
			buf = append(buf, v.str...)
		}
	}
	return string(buf)
}
