// Package depparse implements the text formats of the library: setting
// files (schemas and dependencies), instance files (facts), and query
// files (conjunctive queries). The formats are line-oriented and
// documented on the parsing functions; see also the examples directory.
package depparse

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/dep"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuoted
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokArrow     // ->
	tokEquals    // =
	tokColon     // :
	tokPipe      // |
	tokSlash     // /
	tokPeriod    // .
	tokTurnstile // :-
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokQuoted:
		return "quoted constant"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokArrow:
		return "'->'"
	case tokEquals:
		return "'='"
	case tokColon:
		return "':'"
	case tokPipe:
		return "'|'"
	case tokSlash:
		return "'/'"
	case tokPeriod:
		return "'.'"
	case tokTurnstile:
		return "':-'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// PosError is a parse error carrying its source position. Line is
// 1-based; Col is 1-based and 0 when only the line is known. All errors
// returned by the parsers either are *PosError or wrap one.
type PosError struct {
	Line int
	Col  int
	Msg  string
}

// Error renders the error with its position prefix.
func (e *PosError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("line %d, column %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
}

// posErrorf builds a *PosError from a format string.
func posErrorf(line, col int, format string, args ...any) error {
	return &PosError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer tokenizes one logical line.
type lexer struct {
	src  string
	pos  int
	line int // 1-based source line, for errors
	base int // column offset of src within the original line
}

func newLexer(src string, line int) *lexer {
	return &lexer{src: src, line: line}
}

// newLexerAt is newLexer with a column base: src starts at 0-based
// column base of the original source line, so reported columns and
// spans are file-accurate.
func newLexerAt(src string, line, base int) *lexer {
	return &lexer{src: src, line: line, base: base}
}

func (lx *lexer) errorf(pos int, format string, args ...any) error {
	return posErrorf(lx.line, lx.base+pos+1, format, args...)
}

// spanAt converts a token position to a source span.
func (lx *lexer) spanAt(pos int) dep.Span {
	return dep.Span{Line: lx.line, Col: lx.base + pos + 1}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t') {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '#':
		lx.pos = len(lx.src)
		return token{kind: tokEOF, pos: start}, nil
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == ',':
		lx.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '|':
		lx.pos++
		return token{kind: tokPipe, text: "|", pos: start}, nil
	case c == '/':
		lx.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '.':
		lx.pos++
		return token{kind: tokPeriod, text: ".", pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokEquals, text: "=", pos: start}, nil
	case c == '-':
		if strings.HasPrefix(lx.src[lx.pos:], "->") {
			lx.pos += 2
			return token{kind: tokArrow, text: "->", pos: start}, nil
		}
		return token{}, lx.errorf(start, "unexpected '-'")
	case c == ':':
		if strings.HasPrefix(lx.src[lx.pos:], ":-") {
			lx.pos += 2
			return token{kind: tokTurnstile, text: ":-", pos: start}, nil
		}
		lx.pos++
		return token{kind: tokColon, text: ":", pos: start}, nil
	case c == '\'':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.src) {
			if lx.src[lx.pos] == '\'' {
				lx.pos++
				return token{kind: tokQuoted, text: b.String(), pos: start}, nil
			}
			b.WriteByte(lx.src[lx.pos])
			lx.pos++
		}
		return token{}, lx.errorf(start, "unterminated quoted constant")
	case unicode.IsDigit(rune(c)):
		for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], pos: start}, nil
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], pos: start}, nil
	}
	return token{}, lx.errorf(start, "unexpected character %q", c)
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// peeker wraps the lexer with one-token lookahead.
type peeker struct {
	lx            *lexer
	have          bool
	ahead         token
	rememberedErr error
}

func newPeeker(lx *lexer) *peeker { return &peeker{lx: lx} }

func (p *peeker) peek() (token, error) {
	if p.rememberedErr != nil {
		return token{}, p.rememberedErr
	}
	if !p.have {
		t, err := p.lx.next()
		if err != nil {
			p.rememberedErr = err
			return token{}, err
		}
		p.ahead = t
		p.have = true
	}
	return p.ahead, nil
}

func (p *peeker) next() (token, error) {
	t, err := p.peek()
	if err != nil {
		return token{}, err
	}
	p.have = false
	return t, nil
}

func (p *peeker) expect(kind tokenKind) (token, error) {
	t, err := p.next()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, p.lx.errorf(t.pos, "expected %s, got %s %q", kind, t.kind, t.text)
	}
	return t, nil
}
