package depparse

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func TestNullaryRelations(t *testing.T) {
	src := `
source Flag/0, A/1
target Marked/0
st: Flag() -> Marked()
st: A(x) -> Marked()
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	if ar, ok := s.Source.Arity("Flag"); !ok || ar != 0 {
		t.Errorf("Flag arity = %d, %v", ar, ok)
	}
	if len(s.ST) != 2 {
		t.Fatalf("st count = %d", len(s.ST))
	}
	inst, err := ParseInstance("Flag(). A(q).")
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Contains(rel.Fact{Rel: "Flag", Args: rel.Tuple{}}) {
		t.Error("nullary fact missing")
	}
	// Round trip.
	back, err := ParseInstance(FormatInstance(inst))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(inst) {
		t.Errorf("nullary round trip mismatch:\n%s", FormatInstance(inst))
	}
}

func TestInstanceQuotedEdgeCases(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("R", rel.Const(""), rel.Const("exists"), rel.Const("_7"), rel.Const("a b'c"))
	text := FormatInstance(inst)
	back, err := ParseInstance(text)
	if err != nil {
		// The constant a b'c embeds a quote; our format cannot escape
		// it, so a parse failure here documents the limitation rather
		// than silently corrupting data.
		t.Skipf("quoted-quote limitation: %v", err)
	}
	_ = back
}

func TestInstanceRoundTripReservedWords(t *testing.T) {
	// Constants colliding with keywords or null syntax must be quoted
	// by the formatter and parse back identically.
	inst := rel.NewInstance()
	inst.Add("R", rel.Const("exists"))
	inst.Add("R", rel.Const("_12"))
	inst.Add("R", rel.Null(12))
	text := FormatInstance(inst)
	back, err := ParseInstance(text)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	if !back.Equal(inst) {
		t.Errorf("round trip mismatch:\ntext:\n%s\nhave:\n%s\nwant:\n%s", text, back, inst)
	}
}

func TestSettingCommentsAndBlankLines(t *testing.T) {
	src := `

# leading comment
setting commented
source E/2   # trailing comment on decl? no: whole-line comments only
target H/2
# a comment between dependencies
st: E(x,y) -> H(x,y)   # trailing comment after dep
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ST) != 1 {
		t.Errorf("st count = %d", len(s.ST))
	}
}

func TestQueriesWithConstants(t *testing.T) {
	qs, err := ParseQueries("q(x) :- H(x, 'new york'), H(x, 42)")
	if err != nil {
		t.Fatal(err)
	}
	body := qs[0][0].Body
	if !body[0].Args[1].IsConst || body[0].Args[1].Name != "new york" {
		t.Errorf("quoted constant = %+v", body[0].Args[1])
	}
	if !body[1].Args[1].IsConst || body[1].Args[1].Name != "42" {
		t.Errorf("numeric constant = %+v", body[1].Args[1])
	}
}

func TestDisjunctiveRoundTrip(t *testing.T) {
	src := `
source E/2, R/1, B/1
target Ep/2, C/2
st: E(x,y) -> exists u: C(x,u)
st: E(x,y) -> Ep(x,y)
tsd: Ep(x,y), C(x,u), C(y,v) -> R(u), B(v) | B(u), R(v)
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatSetting(s)
	back, err := ParseSetting(text)
	if err != nil {
		t.Fatalf("round trip failed: %v\ntext:\n%s", err, text)
	}
	if len(back.TSDisj) != 1 || len(back.TSDisj[0].Disjuncts) != 2 {
		t.Errorf("disjunctive round trip lost structure:\n%s", text)
	}
}

func TestParseSettingMultilineErrorsCarryLineNumbers(t *testing.T) {
	src := "source A/1\ntarget H/2\nst: A(x) -> H(x,x)\nts: H(x,y) -> A(x,y)" // arity error on line 4
	_, err := ParseSetting(src)
	if err == nil {
		t.Fatal("arity error not caught")
	}
	if !strings.Contains(err.Error(), "A") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestParseInstanceRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"E(a,",
		"E a b",
		"(a, b)",
		"E(a,) .",
		"E(a b)",
	} {
		if _, err := ParseInstance(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseQueriesRejectsGarbage(t *testing.T) {
	for _, src := range []string{
		"q(x) :-",
		"q( :- H(x,y)",
		":- H(x,y)",
		"q(x) :- H(x,y) extra",
	} {
		if _, err := ParseQueries(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
