package depparse

import (
	"fmt"
	"strings"

	"repro/internal/datalog"
)

// ParseDatalog parses a positive Datalog program: one rule per line in
// rule syntax, with '#' comments. Unlike query heads, rule heads are
// full atoms and may contain constants:
//
//	T(x, y)        :- E(x, y)
//	T(x, z)        :- T(x, y), E(y, z)
//	Flag(x, 'bad') :- E(x, x)
//
// Bare identifiers are variables; constants are single-quoted or
// numeric, as in dependencies.
func ParseDatalog(src string) (*datalog.Program, error) {
	p := &datalog.Program{}
	count := 0
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		count++
		rule, err := parseDatalogRule(line, lineNo+1, fmt.Sprintf("r%d", count))
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, rule)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("depparse: empty datalog program")
	}
	return p, nil
}

func parseDatalogRule(line string, lineNo int, label string) (datalog.Rule, error) {
	pk := newPeeker(newLexer(line, lineNo))
	head, err := parseAtom(pk)
	if err != nil {
		return datalog.Rule{}, err
	}
	if _, err := pk.expect(tokTurnstile); err != nil {
		return datalog.Rule{}, err
	}
	body, err := parseAtomList(pk)
	if err != nil {
		return datalog.Rule{}, err
	}
	if _, err := pk.expect(tokEOF); err != nil {
		return datalog.Rule{}, err
	}
	return datalog.Rule{Label: label, Head: head, Body: body}, nil
}

// FormatDatalog renders a program in the ParseDatalog format.
func FormatDatalog(p *datalog.Program) string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.Head.String())
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
