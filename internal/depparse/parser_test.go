package depparse

import (
	"strings"
	"testing"

	"repro/internal/dep"
	"repro/internal/rel"
)

const example1Src = `
# Example 1 of the paper
setting example1
source E/2
target H/2
st: E(x,z), E(z,y) -> H(x,y)
ts: H(x,y) -> E(x,y)
`

func TestParseSettingExample1(t *testing.T) {
	s, err := ParseSetting(example1Src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "example1" {
		t.Errorf("name = %q", s.Name)
	}
	if !s.Source.Has("E") || !s.Target.Has("H") {
		t.Error("schemas not parsed")
	}
	if len(s.ST) != 1 || len(s.TS) != 1 {
		t.Fatalf("dependency counts: st=%d ts=%d", len(s.ST), len(s.TS))
	}
	if got := s.ST[0].String(); got != "E(x, z), E(z, y) -> H(x, y)" {
		t.Errorf("st = %q", got)
	}
	if !s.Classify().InCtract {
		t.Error("parsed Example 1 should be in C_tract")
	}
}

func TestParseSettingWithExistsAndEgd(t *testing.T) {
	src := `
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
t: P(x,z,y,w), P(y,z2,y2,w2) -> w = z2
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ST[0].ExistentialVars(); len(got) != 2 {
		t.Errorf("existential vars = %v", got)
	}
	if len(s.T) != 1 {
		t.Fatalf("T = %v", s.T)
	}
	egd, ok := s.T[0].(dep.EGD)
	if !ok {
		t.Fatalf("expected egd, got %T", s.T[0])
	}
	if egd.Left != "w" || egd.Right != "z2" {
		t.Errorf("egd equates %s = %s", egd.Left, egd.Right)
	}
}

func TestParseSettingTargetTgd(t *testing.T) {
	src := `
source A/1
target H/2, G/2
st: A(x) -> H(x,x)
t: H(x,y) -> G(y,x)
t: H(x,y) -> exists u: G(x,u), G(u,y)
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.T) != 2 {
		t.Fatalf("T count = %d", len(s.T))
	}
	tgd0, ok := s.T[0].(dep.TGD)
	if !ok || len(tgd0.Head) != 1 {
		t.Errorf("first target dep wrong: %v", s.T[0])
	}
	tgd1, ok := s.T[1].(dep.TGD)
	if !ok || len(tgd1.ExistentialVars()) != 1 {
		t.Errorf("second target dep wrong: %v", s.T[1])
	}
}

func TestParseSettingDisjunctive(t *testing.T) {
	src := `
source E/2, R/1, B/1, G/1
target Ep/2, C/2
st: E(x,y) -> exists u: C(x,u)
st: E(x,y) -> Ep(x,y)
tsd: Ep(x,y), C(x,u), C(y,v) -> R(u), B(v) | R(u), G(v) | B(u), G(v)
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TSDisj) != 1 {
		t.Fatalf("TSDisj = %d", len(s.TSDisj))
	}
	if len(s.TSDisj[0].Disjuncts) != 3 {
		t.Errorf("disjuncts = %d", len(s.TSDisj[0].Disjuncts))
	}
}

func TestParseSettingErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"bad directive", "bogus: E(x) -> H(x)"},
		{"exists mismatch", "source A/1\ntarget H/2\nst: A(x) -> exists z: H(x,x)"},
		{"overlapping schemas", "source E/2\ntarget E/2\nst: E(x,y) -> E(x,y)"},
		{"arity violation", "source A/1\ntarget H/2\nst: A(x,y) -> H(x,y)"},
		{"unterminated quote", "source A/1\ntarget H/2\nst: A('oops) -> H(x,x)"},
		{"missing arrow", "source A/1\ntarget H/2\nst: A(x) H(x,x)"},
		{"egd unknown var", "source A/1\ntarget H/2\nst: A(x) -> H(x,x)\nt: H(x,y) -> y = q"},
		{"bad schema decl", "source A"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSetting(tc.src); err == nil {
				t.Errorf("no error for %q", tc.src)
			}
		})
	}
}

func TestParseSettingConstantsInDeps(t *testing.T) {
	src := `
source A/2
target H/2
st: A(x, 'admin') -> H(x, 42)
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	body := s.ST[0].Body[0]
	if !body.Args[1].IsConst || body.Args[1].Name != "admin" {
		t.Errorf("quoted constant not parsed: %v", body.Args[1])
	}
	head := s.ST[0].Head[0]
	if !head.Args[1].IsConst || head.Args[1].Name != "42" {
		t.Errorf("numeric constant not parsed: %v", head.Args[1])
	}
}

func TestParseInstance(t *testing.T) {
	src := `
# facts
E(a, b).
E(b, 'new york')
H(_3, 42).
`
	inst, err := ParseInstance(src)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumFacts() != 3 {
		t.Fatalf("facts = %d", inst.NumFacts())
	}
	if !inst.Contains(rel.Fact{Rel: "E", Args: rel.Tuple{rel.Const("a"), rel.Const("b")}}) {
		t.Error("E(a,b) missing")
	}
	if !inst.Contains(rel.Fact{Rel: "E", Args: rel.Tuple{rel.Const("b"), rel.Const("new york")}}) {
		t.Error("quoted constant fact missing")
	}
	if !inst.Contains(rel.Fact{Rel: "H", Args: rel.Tuple{rel.Null(3), rel.Const("42")}}) {
		t.Error("null fact missing")
	}
}

func TestParseInstanceMultipleFactsPerLine(t *testing.T) {
	inst, err := ParseInstance("E(a,b). E(b,c).")
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumFacts() != 2 {
		t.Errorf("facts = %d", inst.NumFacts())
	}
}

func TestParseInstanceArityConflict(t *testing.T) {
	if _, err := ParseInstance("E(a,b).\nE(a)."); err == nil {
		t.Error("arity conflict not detected")
	}
}

func TestInstanceRoundTrip(t *testing.T) {
	inst := rel.NewInstance()
	inst.Add("E", rel.Const("a"), rel.Const("b"))
	inst.Add("E", rel.Const("has space"), rel.Null(7))
	inst.Add("N", rel.Const("42"))
	text := FormatInstance(inst)
	back, err := ParseInstance(text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\ntext:\n%s", err, text)
	}
	if !back.Equal(inst) {
		t.Errorf("round trip mismatch:\nhave %s\nwant %s", back, inst)
	}
}

func TestSettingRoundTrip(t *testing.T) {
	src := `
setting rt
source D/2, S/2, E/2
target P/4
st: D(x,y) -> exists z, w: P(x,z,y,w)
ts: P(x,z,y,w) -> E(z,w)
t: P(x,z,y,w), P(y,z2,y2,w2) -> w = z2
`
	s, err := ParseSetting(src)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatSetting(s)
	back, err := ParseSetting(text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\ntext:\n%s", err, text)
	}
	if len(back.ST) != len(s.ST) || len(back.TS) != len(s.TS) || len(back.T) != len(s.T) {
		t.Errorf("round trip lost dependencies:\n%s", text)
	}
	if back.ST[0].String() != s.ST[0].String() {
		t.Errorf("st mismatch: %q vs %q", back.ST[0], s.ST[0])
	}
}

func TestParseQueries(t *testing.T) {
	src := `
q(x, y) :- H(x, y), H(y, x)
q(x, y) :- G(x, y)
boolq :- P(x, x, x, x)
`
	qs, err := ParseQueries(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("query groups = %d", len(qs))
	}
	if len(qs[0]) != 2 {
		t.Errorf("q disjuncts = %d", len(qs[0]))
	}
	if qs[0][0].Name != "q" || len(qs[0][0].Head) != 2 {
		t.Errorf("first query wrong: %v", qs[0][0])
	}
	if !qs[1][0].IsBoolean() {
		t.Error("boolq should be Boolean")
	}
}

func TestParseQueriesErrors(t *testing.T) {
	if _, err := ParseQueries("q(x) :- H(x,y)\nq :- H(x,x)"); err == nil {
		t.Error("mixed head arity not rejected")
	}
	if _, err := ParseQueries("q(x) H(x,y)"); err == nil {
		t.Error("missing ':-' not rejected")
	}
}

func TestLexerPositionsInErrors(t *testing.T) {
	_, err := ParseSetting("source A/1\ntarget H/2\nst: A(x) -> H(x,x,")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error lacks line info: %v", err)
	}
}
