package depparse

import (
	"math/rand"
	"testing"

	"repro/internal/rel"
)

// TestInstanceRoundTripProperty: random instances with adversarial
// constant texts survive Format -> Parse exactly. Constants containing
// single quotes are the documented exception (the format cannot escape
// them) and are excluded from generation.
func TestInstanceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	alphabets := []string{
		"abcXYZ019_",
		"abc -.#|/", // spaces, punctuation, comment and grammar chars
		"exists",    // keyword pieces
	}
	randomConst := func() rel.Value {
		alpha := alphabets[rng.Intn(len(alphabets))]
		n := 1 + rng.Intn(6)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alpha[rng.Intn(len(alpha))]
		}
		return rel.Const(string(buf))
	}
	for trial := 0; trial < 200; trial++ {
		inst := rel.NewInstance()
		nRels := 1 + rng.Intn(3)
		for r := 0; r < nRels; r++ {
			name := string(rune('R' + r))
			arity := 1 + rng.Intn(3)
			for f := 0; f < 1+rng.Intn(4); f++ {
				tuple := make(rel.Tuple, arity)
				for i := range tuple {
					if rng.Intn(4) == 0 {
						tuple[i] = rel.Null(1 + rng.Intn(5))
					} else {
						tuple[i] = randomConst()
					}
				}
				inst.AddTuple(name, tuple)
			}
		}
		text := FormatInstance(inst)
		back, err := ParseInstance(text)
		if err != nil {
			t.Fatalf("trial %d: parse failed: %v\ntext:\n%s", trial, err, text)
		}
		if !back.Equal(inst) {
			t.Fatalf("trial %d: round trip mismatch\ntext:\n%s\nhave:\n%s\nwant:\n%s", trial, text, back, inst)
		}
	}
}
