package depparse

import (
	"testing"

	"repro/internal/dep"
)

// TestParsedSpansAreFileAccurate: spans recorded on declarations,
// dependencies, and atoms point at the relation symbol in the original
// source, counting the directive prefix and leading whitespace.
func TestParsedSpansAreFileAccurate(t *testing.T) {
	src := "setting spans\n" + // line 1
		"source E/2, D/3\n" + // line 2: E at col 8, D at col 13
		"  target H/2\n" + // line 3: H at col 10 (indented)
		"st: E(x,z), E(z,y) -> H(x,y)\n" + // line 4: body E at 5 and 13, head H at 23
		"ts: H(x,y) -> exists w: E(x,w)\n" + // line 5
		"t:  H(x,y), H(y,x) -> x = y\n" // line 6: first body atom at col 5
	s, info, err := ParseSettingLenient(src)
	if err != nil {
		t.Fatal(err)
	}
	wantDecl := map[string]dep.Span{
		"E": {Line: 2, Col: 8},
		"D": {Line: 2, Col: 13},
	}
	for name, want := range wantDecl {
		if got := info.SourceDecls[name]; got != want {
			t.Errorf("decl span of %s = %v, want %v", name, got, want)
		}
	}
	if got := info.TargetDecls["H"]; got != (dep.Span{Line: 3, Col: 10}) {
		t.Errorf("decl span of H = %v, want 3:10", got)
	}

	st := s.ST[0]
	if st.Span != (dep.Span{Line: 4, Col: 5}) {
		t.Errorf("st1 span = %v, want 4:5", st.Span)
	}
	if got := st.Body[1].Span; got != (dep.Span{Line: 4, Col: 13}) {
		t.Errorf("second body atom span = %v, want 4:13", got)
	}
	if got := st.Head[0].Span; got != (dep.Span{Line: 4, Col: 23}) {
		t.Errorf("head atom span = %v, want 4:23", got)
	}
	if st.ExplicitExists {
		t.Error("st1 has no exists clause but ExplicitExists is set")
	}

	ts := s.TS[0]
	if ts.Span != (dep.Span{Line: 5, Col: 5}) {
		t.Errorf("ts1 span = %v, want 5:5", ts.Span)
	}
	if !ts.ExplicitExists {
		t.Error("ts1 spells out exists but ExplicitExists is false")
	}

	egd, ok := s.T[0].(dep.EGD)
	if !ok {
		t.Fatalf("t1 is %T, want EGD", s.T[0])
	}
	if egd.Span != (dep.Span{Line: 6, Col: 5}) {
		t.Errorf("egd span = %v, want 6:5", egd.Span)
	}
}

// TestLenientParseToleratesDuplicateDecl: the lenient parser records
// duplicate declarations instead of failing, while the strict parser
// still rejects them with a position.
func TestLenientParseToleratesDuplicateDecl(t *testing.T) {
	src := "source E/2, E/3\ntarget H/2\nst: E(x,y) -> H(x,y)\nts: H(x,y) -> E(x,y)"
	if _, err := ParseSetting(src); err == nil {
		t.Fatal("strict parse accepted a duplicate declaration")
	}
	s, info, err := ParseSettingLenient(src)
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if s == nil || len(info.DeclDiags) != 1 {
		t.Fatalf("DeclDiags = %+v, want exactly one", info.DeclDiags)
	}
	d := info.DeclDiags[0]
	if d.Rel != "E" || d.Span != (dep.Span{Line: 1, Col: 13}) {
		t.Errorf("decl diag = %+v, want E at 1:13", d)
	}
}
