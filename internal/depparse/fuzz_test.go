package depparse

import (
	"errors"
	"strings"
	"testing"
)

// assertPositionedError fails unless err (when non-nil) carries a
// 1-based line number: every parse error must be a *PosError.
func assertPositionedError(t *testing.T, err error, src string) {
	t.Helper()
	if err == nil {
		return
	}
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("parse error is not a PosError: %v\nsource:\n%s", err, src)
	}
	if pe.Line < 1 {
		t.Fatalf("parse error has no line number: %v\nsource:\n%s", err, src)
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Fatalf("parse error message %q does not mention a line", err)
	}
}

// FuzzParseSetting checks three invariants on arbitrary setting text:
// errors carry positions, successful parses survive a Format -> Parse
// round trip, and the lenient parser accepts everything the strict
// parser accepts (producing the same setting).
func FuzzParseSetting(f *testing.F) {
	f.Add("setting example1\nsource E/2\ntarget H/2\nst: E(x,z), E(z,y) -> H(x,y)\nts: H(x,y) -> E(x,y)\n")
	f.Add("source D/1, S/2\ntarget P/2\nst: D(c) -> exists z: P(z, c)\nts: P(x, c), P(y, c2) -> S(x, y)\n")
	f.Add("source E/2\ntarget H/2\nst: E(x,y) -> H(x,y)\nts: H(x,y) -> E(x,y)\nt: H(x,y), H(y,x) -> x = y\n")
	f.Add("source E/1\ntarget H/1\nst: E(x) -> H(x)\ntsd: H(x) -> E(x) | E(x)\nts: H(x) -> E(x)\n")
	f.Add("source E/2\ntarget H/2\nst: E('a b',y) -> H(42,y)\nts: H(x,y) -> E(x,y)\n")
	f.Add("sauce E/2\n")
	f.Fuzz(func(t *testing.T, src string) {
		// Structural (lenient-parse) errors must always be positioned;
		// strict-mode validation errors are semantic and carry no line.
		ls, _, lerr := ParseSettingLenient(src)
		assertPositionedError(t, lerr, src)
		s, err := ParseSetting(src)
		if lerr != nil {
			if err == nil {
				t.Fatalf("strict parse accepts what lenient rejects: %v\nsource:\n%s", lerr, src)
			}
			return
		}
		if err != nil {
			return // validation rejected a structurally fine setting
		}
		text := FormatSetting(s)
		back, err2 := ParseSetting(text)
		if err2 != nil {
			t.Fatalf("formatted setting does not reparse: %v\nformatted:\n%s\noriginal:\n%s", err2, text, src)
		}
		if again := FormatSetting(back); again != text {
			t.Fatalf("format not idempotent:\n%s\nvs\n%s", text, again)
		}
		if FormatSetting(ls) != text {
			t.Fatalf("lenient parse diverges from strict:\n%s\nvs\n%s", FormatSetting(ls), text)
		}
	})
}

// FuzzParseInstance checks that errors are positioned and that parsed
// instances survive a Format -> Parse round trip exactly.
func FuzzParseInstance(f *testing.F) {
	f.Add("E(a,b). E(b,c). E(a,c).")
	f.Add("P('a b', _n1, 42).\n# comment\nQ(x).")
	f.Add("E(a,b)")
	f.Add("E(a,.")
	f.Fuzz(func(t *testing.T, src string) {
		inst, err := ParseInstance(src)
		assertPositionedError(t, err, src)
		if err != nil {
			return
		}
		text := FormatInstance(inst)
		back, err2 := ParseInstance(text)
		if err2 != nil {
			t.Fatalf("formatted instance does not reparse: %v\nformatted:\n%s", err2, text)
		}
		if !back.Equal(inst) {
			t.Fatalf("round trip mismatch:\nhave %s\nwant %s\ntext:\n%s", back, inst, text)
		}
	})
}

// FuzzParseQueries checks that query-file parse errors are positioned
// and that accepted inputs produce structurally sane queries.
func FuzzParseQueries(f *testing.F) {
	f.Add("q(x,y) :- H(x,y)\nqb :- H(x,y), H(y,z)")
	f.Add("q(x) :- H(x,y)\nq(y) :- H(y,y)")
	f.Add("q(x) :- H(x,")
	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseQueries(src)
		assertPositionedError(t, err, src)
		if err != nil {
			return
		}
		for _, ucq := range qs {
			if len(ucq) == 0 {
				t.Fatal("parsed UCQ with no disjuncts")
			}
			arity := len(ucq[0].Head)
			for _, cq := range ucq {
				if cq.Name != ucq[0].Name {
					t.Fatalf("UCQ mixes head names %q and %q", cq.Name, ucq[0].Name)
				}
				if len(cq.Head) != arity {
					t.Fatalf("UCQ %s mixes head arities %d and %d", cq.Name, arity, len(cq.Head))
				}
			}
		}
	})
}
