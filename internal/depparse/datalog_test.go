package depparse

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/rel"
)

func TestParseDatalogTransitiveClosure(t *testing.T) {
	src := `
# transitive closure
T(x, y) :- E(x, y)
T(x, z) :- T(x, y), E(y, z)
`
	p, err := ParseDatalog(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if err := p.Validate(rel.SchemaOf("E", 2, "T", 2)); err != nil {
		t.Fatalf("parsed program invalid: %v", err)
	}
	edb := rel.NewInstance()
	edb.Add("E", rel.Const("a"), rel.Const("b"))
	edb.Add("E", rel.Const("b"), rel.Const("c"))
	res, err := p.Eval(edb, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(rel.Fact{Rel: "T", Args: rel.Tuple{rel.Const("a"), rel.Const("c")}}) {
		t.Errorf("closure missing:\n%s", res)
	}
}

func TestParseDatalogHeadConstants(t *testing.T) {
	p, err := ParseDatalog("Flag(x, 'bad') :- E(x, x)")
	if err != nil {
		t.Fatal(err)
	}
	head := p.Rules[0].Head
	if !head.Args[1].IsConst || head.Args[1].Name != "bad" {
		t.Errorf("head constant = %+v", head.Args[1])
	}
}

func TestParseDatalogErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"T(x,y)",
		"T(x,y) :-",
		":- E(x,y)",
		"T(x,y) :- E(x,y) trailing",
	} {
		if _, err := ParseDatalog(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDatalogRoundTrip(t *testing.T) {
	src := "T(x, y) :- E(x, y)\nT(x, z) :- T(x, y), E(y, z)\n"
	p, err := ParseDatalog(src)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatDatalog(p)
	back, err := ParseDatalog(text)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, text)
	}
	if len(back.Rules) != len(p.Rules) {
		t.Errorf("round trip lost rules:\n%s", text)
	}
	if !strings.Contains(text, "T(x, z) :- T(x, y), E(y, z)") {
		t.Errorf("format = %q", text)
	}
}
