package depparse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// ParseInstance parses an instance from its text form: one fact per
// line, optionally terminated by '.', with '#' comments:
//
//	E(a, b).
//	E(b, 'big city')
//	H(_1, c)    # _N is the labeled null with label N
//
// Unlike in dependencies, bare identifiers in instance files denote
// constants; labeled nulls are written _N with a numeric label.
func ParseInstance(src string) (*rel.Instance, error) {
	inst := rel.NewInstance()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n := lineNo + 1
		p := newPeeker(newLexer(line, n))
		for {
			t, err := p.peek()
			if err != nil {
				return nil, err
			}
			if t.kind == tokEOF {
				break
			}
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			tuple, err := parseFactArgs(p, n)
			if err != nil {
				return nil, err
			}
			if existing := inst.Relation(name.text); existing != nil && existing.Arity() != len(tuple) {
				return nil, posErrorf(n, name.pos+1, "relation %s used with arity %d, previously %d", name.text, len(tuple), existing.Arity())
			}
			inst.AddTuple(name.text, tuple)
			sep, err := p.peek()
			if err != nil {
				return nil, err
			}
			if sep.kind == tokPeriod {
				p.next() //nolint:errcheck // peeked
			}
		}
	}
	return inst, nil
}

func parseFactArgs(p *peeker, line int) (rel.Tuple, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var tuple rel.Tuple
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokRParen {
		p.next() //nolint:errcheck // peeked
		return tuple, nil
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokIdent:
			if id, ok := nullLabel(t.text); ok {
				tuple = append(tuple, rel.Null(id))
			} else {
				tuple = append(tuple, rel.Const(t.text))
			}
		case tokQuoted, tokNumber:
			tuple = append(tuple, rel.Const(t.text))
		default:
			return nil, posErrorf(line, t.pos+1, "expected value, got %q", t.text)
		}
		sep, err := p.next()
		if err != nil {
			return nil, err
		}
		if sep.kind == tokRParen {
			return tuple, nil
		}
		if sep.kind != tokComma {
			return nil, posErrorf(line, sep.pos+1, "expected ',' or ')', got %q", sep.text)
		}
	}
}

func nullLabel(text string) (int, bool) {
	if !strings.HasPrefix(text, "_") || len(text) == 1 {
		return 0, false
	}
	id, err := strconv.Atoi(text[1:])
	if err != nil {
		return 0, false
	}
	return id, true
}

// FormatInstance renders an instance in the ParseInstance format, one
// fact per line in deterministic order.
func FormatInstance(inst *rel.Instance) string {
	facts := inst.Facts()
	lines := make([]string, 0, len(facts))
	for _, f := range facts {
		var b strings.Builder
		b.WriteString(f.Rel)
		b.WriteByte('(')
		for i, v := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			if v.IsNull() {
				fmt.Fprintf(&b, "_%d", v.NullID())
			} else {
				b.WriteString(formatConst(v.ConstText()))
			}
		}
		b.WriteString(").")
		lines = append(lines, b.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func formatConst(s string) string {
	if s == "" {
		return "''"
	}
	plain := true
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			plain = false
			break
		}
	}
	if plain && isIdentStart(s[0]) {
		if _, isNull := nullLabel(s); !isNull && s != "exists" {
			return s
		}
	}
	if plain && s[0] >= '0' && s[0] <= '9' {
		return s
	}
	return "'" + s + "'"
}

// ParseQueries parses a query file: one conjunctive query per line in
// rule syntax, with '#' comments. Lines sharing a head name form a
// union of conjunctive queries.
//
//	q(x, y) :- H(x, y), H(y, x)
//	q(x, y) :- G(x, y)
//	boolq :- P(x, x, x, x)
//
// It returns the queries grouped by name, in file order.
func ParseQueries(src string) ([]certain.UCQ, error) {
	groups := make(map[string]certain.UCQ)
	var order []string
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n := lineNo + 1
		q, err := parseQueryLine(line, n)
		if err != nil {
			return nil, err
		}
		if prev, seen := groups[q.Name]; !seen {
			order = append(order, q.Name)
		} else if len(q.Head) != len(prev[0].Head) {
			// Report at the offending disjunct, not the first one.
			return nil, posErrorf(n, 0, "query %s: disjuncts have different head arities", q.Name)
		}
		groups[q.Name] = append(groups[q.Name], q)
	}
	out := make([]certain.UCQ, 0, len(order))
	for _, name := range order {
		out = append(out, groups[name])
	}
	return out, nil
}

func parseQueryLine(line string, n int) (certain.CQ, error) {
	p := newPeeker(newLexer(line, n))
	name, err := p.expect(tokIdent)
	if err != nil {
		return certain.CQ{}, err
	}
	q := certain.CQ{Name: name.text}
	t, err := p.peek()
	if err != nil {
		return certain.CQ{}, err
	}
	if t.kind == tokLParen {
		p.next() //nolint:errcheck // peeked
		for {
			v, err := p.expect(tokIdent)
			if err != nil {
				return certain.CQ{}, err
			}
			q.Head = append(q.Head, v.text)
			sep, err := p.next()
			if err != nil {
				return certain.CQ{}, err
			}
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return certain.CQ{}, posErrorf(n, sep.pos+1, "expected ',' or ')' in query head, got %q", sep.text)
			}
		}
	}
	if _, err := p.expect(tokTurnstile); err != nil {
		return certain.CQ{}, err
	}
	body, err := parseAtomList(p)
	if err != nil {
		return certain.CQ{}, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return certain.CQ{}, err
	}
	q.Body = body
	return q, nil
}

// FormatSetting renders a setting in the ParseSetting format.
func FormatSetting(s *core.Setting) string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "setting %s\n", s.Name)
	}
	if s.Source.Len() > 0 {
		fmt.Fprintf(&b, "source %s\n", s.Source)
	}
	if s.Target.Len() > 0 {
		fmt.Fprintf(&b, "target %s\n", s.Target)
	}
	for _, d := range s.ST {
		fmt.Fprintf(&b, "st: %s\n", d)
	}
	for _, d := range s.TS {
		fmt.Fprintf(&b, "ts: %s\n", d)
	}
	for _, d := range s.TSDisj {
		fmt.Fprintf(&b, "tsd: %s\n", formatDisjuncts(d))
	}
	for _, d := range s.T {
		fmt.Fprintf(&b, "t: %s\n", d)
	}
	return b.String()
}

// formatDisjuncts renders a disjunctive tgd without the parentheses the
// dep package adds around disjuncts (the parser's grammar has none).
func formatDisjuncts(d dep.DisjunctiveTGD) string {
	var b strings.Builder
	for i, a := range d.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	for i, disj := range d.Disjuncts {
		if i > 0 {
			b.WriteString(" | ")
		}
		for j, a := range disj {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	return b.String()
}
