package depparse

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/rel"
)

// ParseSetting parses a peer data exchange setting from its text form.
// The format is line-oriented; blank lines and '#' comments are ignored:
//
//	setting example1              # optional name
//	source E/2, D/2               # source relations with arities
//	target H/2
//	st: E(x,z), E(z,y) -> H(x,y)              # source-to-target tgd
//	ts: H(x,y) -> E(x,y)                      # target-to-source tgd
//	ts: H(x,y) -> exists z: E(x,z), E(z,y)    # explicit existentials
//	t:  H(x,y), H(x,z) -> y = z               # target egd
//	t:  H(x,y) -> H(y,x)                      # target tgd
//	tsd: C(x,u), C(y,v) -> R(u) | G(u), B(v)  # disjunctive ts tgd
//
// In dependencies, bare identifiers are variables; constants are
// single-quoted ('a') or numeric (42). The 'exists v1, v2:' prefix is
// optional — head variables absent from the body are existential either
// way — but when present it must list exactly those variables.
func ParseSetting(src string) (*core.Setting, error) {
	s, _, err := parseSetting(src, false)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// SettingInfo is the side information the parser collects alongside the
// AST: declaration spans for positioned diagnostics, and declaration
// problems the lenient parse tolerated.
type SettingInfo struct {
	// SourceDecls and TargetDecls map each declared relation name to the
	// span of its declaration.
	SourceDecls map[string]dep.Span
	// TargetDecls: see SourceDecls.
	TargetDecls map[string]dep.Span
	// DeclDiags records duplicate relation declarations the lenient
	// parser skipped instead of failing on.
	DeclDiags []DeclDiag
}

// DeclDiag is a tolerated schema-declaration problem.
type DeclDiag struct {
	Span dep.Span
	Rel  string
	Msg  string
	// Conflict is true when the redeclaration changed the arity (a real
	// error), false for a benign exact repeat.
	Conflict bool
}

// ParseSettingLenient parses a setting without running Setting.Validate
// and without failing on duplicate relation declarations, so that a
// linter can report those problems itself with source positions.
// Structural syntax errors still abort the parse.
func ParseSettingLenient(src string) (*core.Setting, *SettingInfo, error) {
	return parseSetting(src, true)
}

func parseSetting(src string, lenient bool) (*core.Setting, *SettingInfo, error) {
	s := &core.Setting{Source: rel.NewSchema(), Target: rel.NewSchema()}
	info := &SettingInfo{
		SourceDecls: make(map[string]dep.Span),
		TargetDecls: make(map[string]dep.Span),
	}
	counters := map[string]int{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n := lineNo + 1
		// Column base of the trimmed line within the raw line, so that
		// spans and error columns are file-accurate.
		leading := len(raw) - len(strings.TrimLeft(raw, " \t"))
		base := func(prefix string) int { return leading + len(prefix) }
		switch {
		case strings.HasPrefix(line, "setting"):
			s.Name = strings.TrimSpace(strings.TrimPrefix(line, "setting"))
		case strings.HasPrefix(line, "source"):
			if err := parseSchemaDecl(strings.TrimPrefix(line, "source"), n, base("source"), s.Source, info.SourceDecls, info, lenient); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(line, "target"):
			if err := parseSchemaDecl(strings.TrimPrefix(line, "target"), n, base("target"), s.Target, info.TargetDecls, info, lenient); err != nil {
				return nil, nil, err
			}
		case strings.HasPrefix(line, "st:"):
			counters["st"]++
			d, err := parseTGD(strings.TrimPrefix(line, "st:"), n, base("st:"), fmt.Sprintf("st%d", counters["st"]))
			if err != nil {
				return nil, nil, err
			}
			s.ST = append(s.ST, d)
		case strings.HasPrefix(line, "tsd:"):
			counters["tsd"]++
			d, err := parseDisjunctiveTGD(strings.TrimPrefix(line, "tsd:"), n, base("tsd:"), fmt.Sprintf("tsd%d", counters["tsd"]))
			if err != nil {
				return nil, nil, err
			}
			s.TSDisj = append(s.TSDisj, d)
		case strings.HasPrefix(line, "ts:"):
			counters["ts"]++
			d, err := parseTGD(strings.TrimPrefix(line, "ts:"), n, base("ts:"), fmt.Sprintf("ts%d", counters["ts"]))
			if err != nil {
				return nil, nil, err
			}
			s.TS = append(s.TS, d)
		case strings.HasPrefix(line, "t:"):
			counters["t"]++
			d, err := parseTargetDep(strings.TrimPrefix(line, "t:"), n, base("t:"), fmt.Sprintf("t%d", counters["t"]))
			if err != nil {
				return nil, nil, err
			}
			s.T = append(s.T, d)
		default:
			return nil, nil, posErrorf(n, 0, "unrecognized directive %q (want setting/source/target/st:/ts:/tsd:/t:)", line)
		}
	}
	return s, info, nil
}

// parseSchemaDecl parses "E/2, D/2" into the schema, recording the span
// of each declaration. In lenient mode a duplicate declaration is
// recorded in info.DeclDiags and skipped rather than failing the parse.
func parseSchemaDecl(src string, line, basecol int, schema *rel.Schema, decls map[string]dep.Span, info *SettingInfo, lenient bool) error {
	p := newPeeker(newLexerAt(src, line, basecol))
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		span := p.lx.spanAt(name.pos)
		if _, err := p.expect(tokSlash); err != nil {
			return err
		}
		ar, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		arity := 0
		if _, err := fmt.Sscanf(ar.text, "%d", &arity); err != nil {
			return posErrorf(line, 0, "bad arity %q", ar.text)
		}
		if err := schema.Add(name.text, arity); err != nil {
			if !lenient {
				return posErrorf(line, span.Col, "%v", err)
			}
			info.DeclDiags = append(info.DeclDiags, DeclDiag{Span: span, Rel: name.text, Msg: err.Error(), Conflict: true})
		} else if _, seen := decls[name.text]; seen {
			// Schema.Add treats a same-arity redeclaration as a no-op;
			// record it for the linter anyway.
			if lenient {
				info.DeclDiags = append(info.DeclDiags, DeclDiag{Span: span, Rel: name.text,
					Msg: fmt.Sprintf("relation %s declared more than once", name.text)})
			}
		} else {
			decls[name.text] = span
		}
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.kind == tokEOF {
			return nil
		}
		if t.kind != tokComma {
			return posErrorf(line, 0, "expected ',' between declarations, got %q", t.text)
		}
	}
}

// parseTGD parses "body -> [exists v1, v2:] head".
func parseTGD(src string, line, basecol int, label string) (dep.TGD, error) {
	p := newPeeker(newLexerAt(src, line, basecol))
	body, err := parseAtomList(p)
	if err != nil {
		return dep.TGD{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return dep.TGD{}, err
	}
	declared, err := parseOptionalExists(p)
	if err != nil {
		return dep.TGD{}, err
	}
	head, err := parseAtomList(p)
	if err != nil {
		return dep.TGD{}, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return dep.TGD{}, err
	}
	d := dep.TGD{Label: label, Body: body, Head: head, Span: body[0].Span, ExplicitExists: declared != nil}
	if declared != nil {
		if err := checkDeclaredExistentials(d, declared, line); err != nil {
			return dep.TGD{}, err
		}
	}
	return d, nil
}

// parseTargetDep parses either a target tgd or a target egd
// ("body -> x = y").
func parseTargetDep(src string, line, basecol int, label string) (dep.Dependency, error) {
	p := newPeeker(newLexerAt(src, line, basecol))
	body, err := parseAtomList(p)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	declared, err := parseOptionalExists(p)
	if err != nil {
		return nil, err
	}
	// Lookahead: "ident =" means egd; otherwise a head atom list.
	first, err := p.peek()
	if err != nil {
		return nil, err
	}
	if first.kind == tokIdent && declared == nil {
		// Could be an egd ("x = y") or an atom ("R(...)"): decide by the
		// token after the identifier.
		name, _ := p.next()
		after, err := p.peek()
		if err != nil {
			return nil, err
		}
		if after.kind == tokEquals {
			p.next() //nolint:errcheck // peeked
			right, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokEOF); err != nil {
				return nil, err
			}
			return dep.EGD{Label: label, Body: body, Left: name.text, Right: right.text, Span: body[0].Span}, nil
		}
		if after.kind != tokLParen {
			return nil, posErrorf(line, 0, "expected '=' or '(' after %q", name.text)
		}
		atom, err := parseAtomArgs(p, name.text, p.lx.spanAt(name.pos))
		if err != nil {
			return nil, err
		}
		head := []dep.Atom{atom}
		for {
			t, err := p.peek()
			if err != nil {
				return nil, err
			}
			if t.kind != tokComma {
				break
			}
			p.next() //nolint:errcheck // peeked
			a, err := parseAtom(p)
			if err != nil {
				return nil, err
			}
			head = append(head, a)
		}
		if _, err := p.expect(tokEOF); err != nil {
			return nil, err
		}
		return dep.TGD{Label: label, Body: body, Head: head, Span: body[0].Span}, nil
	}
	head, err := parseAtomList(p)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	d := dep.TGD{Label: label, Body: body, Head: head, Span: body[0].Span, ExplicitExists: declared != nil}
	if declared != nil {
		if err := checkDeclaredExistentials(d, declared, line); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseDisjunctiveTGD parses "body -> disj1 | disj2 | ...".
func parseDisjunctiveTGD(src string, line, basecol int, label string) (dep.DisjunctiveTGD, error) {
	p := newPeeker(newLexerAt(src, line, basecol))
	body, err := parseAtomList(p)
	if err != nil {
		return dep.DisjunctiveTGD{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return dep.DisjunctiveTGD{}, err
	}
	var disjuncts [][]dep.Atom
	for {
		disj, err := parseAtomList(p)
		if err != nil {
			return dep.DisjunctiveTGD{}, err
		}
		disjuncts = append(disjuncts, disj)
		t, err := p.next()
		if err != nil {
			return dep.DisjunctiveTGD{}, err
		}
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokPipe {
			return dep.DisjunctiveTGD{}, posErrorf(line, 0, "expected '|' between disjuncts, got %q", t.text)
		}
	}
	return dep.DisjunctiveTGD{Label: label, Body: body, Disjuncts: disjuncts, Span: body[0].Span}, nil
}

// parseOptionalExists consumes "exists v1, v2:" if present and returns
// the declared variables (nil when absent).
func parseOptionalExists(p *peeker) ([]string, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokIdent || t.text != "exists" {
		return nil, nil
	}
	p.next() //nolint:errcheck // peeked
	var vars []string
	for {
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		vars = append(vars, v.text)
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokColon {
			return vars, nil
		}
		if t.kind != tokComma {
			return nil, p.lx.errorf(t.pos, "expected ',' or ':' in exists list, got %q", t.text)
		}
	}
}

func checkDeclaredExistentials(d dep.TGD, declared []string, line int) error {
	actual := d.ExistentialVars()
	set := make(map[string]bool, len(actual))
	for _, v := range actual {
		set[v] = true
	}
	if len(declared) != len(actual) {
		return posErrorf(line, 0, "exists clause declares %v but the head's existential variables are %v", declared, actual)
	}
	for _, v := range declared {
		if !set[v] {
			return posErrorf(line, 0, "exists clause declares %v but the head's existential variables are %v", declared, actual)
		}
	}
	return nil
}

// parseAtomList parses "A(x,y), B(y,z)" until a token that cannot start
// another atom.
func parseAtomList(p *peeker) ([]dep.Atom, error) {
	var out []dep.Atom
	for {
		a, err := parseAtom(p)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokComma {
			return out, nil
		}
		p.next() //nolint:errcheck // peeked
	}
}

func parseAtom(p *peeker) (dep.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return dep.Atom{}, err
	}
	return parseAtomArgs(p, name.text, p.lx.spanAt(name.pos))
}

func parseAtomArgs(p *peeker, relName string, span dep.Span) (dep.Atom, error) {
	line := p.lx.line
	if _, err := p.expect(tokLParen); err != nil {
		return dep.Atom{}, err
	}
	var args []dep.Term
	t, err := p.peek()
	if err != nil {
		return dep.Atom{}, err
	}
	if t.kind == tokRParen {
		p.next() //nolint:errcheck // peeked
		return dep.Atom{Rel: relName, Args: args, Span: span}, nil
	}
	for {
		t, err := p.next()
		if err != nil {
			return dep.Atom{}, err
		}
		switch t.kind {
		case tokIdent:
			args = append(args, dep.Var(t.text))
		case tokQuoted, tokNumber:
			args = append(args, dep.Cst(t.text))
		default:
			return dep.Atom{}, posErrorf(line, 0, "expected term in %s(...), got %q", relName, t.text)
		}
		sep, err := p.next()
		if err != nil {
			return dep.Atom{}, err
		}
		if sep.kind == tokRParen {
			return dep.Atom{Rel: relName, Args: args, Span: span}, nil
		}
		if sep.kind != tokComma {
			return dep.Atom{}, posErrorf(line, 0, "expected ',' or ')' in %s(...), got %q", relName, sep.text)
		}
	}
}
