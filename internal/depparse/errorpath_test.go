package depparse

import (
	"errors"
	"strings"
	"testing"
)

// position extracts the PosError of a parse error, failing the test if
// the error is not positioned.
func position(t *testing.T, err error) (line, col int) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a parse error")
	}
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a PosError", err)
	}
	return pe.Line, pe.Col
}

func TestSettingParseErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
		contains string
	}{
		{"bad directive", "source E/2\nfrobnicate\n", 2, "unrecognized directive"},
		{"missing arity", "source E\ntarget H/2\n", 1, "expected"},
		{"bad decl separator", "source E/2; D/1\n", 1, "expected"},
		{"unterminated atom", "source E/2\ntarget H/2\nst: E(x,y -> H(x,y)\n", 3, "expected"},
		{"missing arrow", "source E/2\ntarget H/2\nst: E(x,y) H(x,y)\n", 3, "expected"},
		{"bad exists clause", "source E/2\ntarget H/2\nst: E(x,y) -> exists : H(x,y)\n", 3, "expected"},
		{"duplicate decl arity", "source E/2, E/3\n", 1, "redeclared"},
		{"bad egd", "source E/2\ntarget H/2\nst: E(x,y) -> H(x,y)\nt: H(x,y) -> x =\n", 4, "expected"},
		{"unterminated constant", "source E/2\ntarget H/2\nst: E('a,y) -> H(x,y)\n", 3, "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSetting(tc.src)
			line, _ := position(t, err)
			if line != tc.wantLine {
				t.Errorf("error %v on line %d, want %d", err, line, tc.wantLine)
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %v does not mention %q", err, tc.contains)
			}
		})
	}
}

func TestInstanceParseErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
	}{
		{"unterminated fact", "E(a,b).\nE(b,\n", 2},
		{"missing parens", "E a b\n", 1},
		{"bare paren", "E(a,b).\nE(b,c).\n(a, b)\n", 3},
		{"empty arg", "E(a,) .\n", 1},
		{"missing comma", "E(a b)\n", 1},
		{"arity drift", "E(a,b).\nE(c).\n", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseInstance(tc.src)
			line, _ := position(t, err)
			if line != tc.wantLine {
				t.Errorf("error %v on line %d, want %d", err, line, tc.wantLine)
			}
		})
	}
}

func TestQueryParseErrorPositions(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
	}{
		{"empty body", "q(x) :- H(x,y)\nq2(x) :-\n", 2},
		{"bad head", "q( :- H(x,y)\n", 1},
		{"missing head", ":- H(x,y)\n", 1},
		{"trailing garbage", "q(x) :- H(x,y) extra\n", 1},
		{"unterminated body atom", "q(x) :- H(x,y)\nq2(x) :- H(x,\n", 2},
		{"mixed disjunct arity", "q(x) :- H(x,y)\nq(x,y) :- H(x,y)\n", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseQueries(tc.src)
			line, _ := position(t, err)
			if line != tc.wantLine {
				t.Errorf("error %v on line %d, want %d", err, line, tc.wantLine)
			}
		})
	}
}

// TestErrorMessagesNameTheLine: the rendered message itself (what a CLI
// user sees) starts with "line N".
func TestErrorMessagesNameTheLine(t *testing.T) {
	_, err := ParseInstance("E(a,b).\nE(b,\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("instance error %v does not say 'line 2'", err)
	}
	_, err = ParseQueries("q(x) :- H(x,y)\nq2(x) :- H(x,\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("query error %v does not say 'line 2'", err)
	}
	_, err = ParseSetting("source E/2\ntarget H/2\nst: E(x,y -> H(x,y)\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("setting error %v does not say 'line 3'", err)
	}
}
