package depparse

import "testing"

func TestNoSpaceArrow(t *testing.T) {
	s, err := ParseSetting("source A/1\ntarget H/2\nst: A(x)->H(x,x)")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ST) != 1 {
		t.Fatal("st not parsed")
	}
}
