package dep

import (
	"strings"
	"testing"
)

// cliqueST / cliqueTS are the constraints of the Theorem 3 reduction:
//
//	Σst: D(x,y) -> exists z, w: P(x,z,y,w)
//	Σts: P(x,z,y,w) -> E(z,w)
//	     P(x,z,y,w), P(x,z2,y2,w2) -> S(z,z2)
func cliqueST() []TGD {
	return []TGD{{
		Label: "st-D",
		Body:  []Atom{NewAtom("D", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("P", Var("x"), Var("z"), Var("y"), Var("w"))},
	}}
}

func cliqueTS() []TGD {
	return []TGD{
		{
			Label: "ts-E",
			Body:  []Atom{NewAtom("P", Var("x"), Var("z"), Var("y"), Var("w"))},
			Head:  []Atom{NewAtom("E", Var("z"), Var("w"))},
		},
		{
			Label: "ts-S",
			Body: []Atom{
				NewAtom("P", Var("x"), Var("z"), Var("y"), Var("w")),
				NewAtom("P", Var("x"), Var("z2"), Var("y2"), Var("w2")),
			},
			Head: []Atom{NewAtom("S", Var("z"), Var("z2"))},
		},
	}
}

func TestMarkedPositionsCliqueSetting(t *testing.T) {
	marked := MarkedPositions(cliqueST())
	// The paper: "the marked positions are the second and the fourth
	// position of P" (1-based), i.e. P.1 and P.3 here.
	want := []Position{{"P", 1}, {"P", 3}}
	if len(marked) != 2 {
		t.Fatalf("marked positions = %v, want %v", marked, want)
	}
	for _, p := range want {
		if !marked[p] {
			t.Errorf("position %v not marked", p)
		}
	}
}

func TestMarkedVarsCliqueSetting(t *testing.T) {
	marked := MarkedPositions(cliqueST())
	ts := cliqueTS()
	// First ts tgd: marked variables are z and w.
	m1 := MarkedVars(ts[0], marked)
	if len(m1) != 2 || !m1["z"] || !m1["w"] {
		t.Errorf("marked vars of ts-E = %v, want {z, w}", SortedVarNames(m1))
	}
	// Second ts tgd: marked variables are z, w, z2, w2.
	m2 := MarkedVars(ts[1], marked)
	if len(m2) != 4 || !m2["z"] || !m2["w"] || !m2["z2"] || !m2["w2"] {
		t.Errorf("marked vars of ts-S = %v, want {z, w, z2, w2}", SortedVarNames(m2))
	}
	if m2["x"] || m2["y"] {
		t.Error("unmarked variables x/y reported marked")
	}
}

// TestMarkedVarsSectionFourExample reproduces the small illustration of
// Definition 8:
//
//	Σst: S(x1,x2) -> exists y: T(x1,y)
//	Σts: T(x1,x2) -> exists w: S(w,x2)
//
// Only the second position of T is marked; the marked variables of the
// ts tgd are x2 and w.
func TestMarkedVarsSectionFourExample(t *testing.T) {
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("S", Var("x1"), Var("x2"))},
		Head:  []Atom{NewAtom("T", Var("x1"), Var("y"))},
	}}
	ts := TGD{
		Label: "ts",
		Body:  []Atom{NewAtom("T", Var("x1"), Var("x2"))},
		Head:  []Atom{NewAtom("S", Var("w"), Var("x2"))},
	}
	marked := MarkedPositions(st)
	if len(marked) != 1 || !marked[Position{"T", 1}] {
		t.Fatalf("marked positions = %v, want {T.1}", marked)
	}
	mv := MarkedVars(ts, marked)
	if len(mv) != 2 || !mv["x2"] || !mv["w"] {
		t.Errorf("marked vars = %v, want {x2, w}", SortedVarNames(mv))
	}
}

func TestCliqueSettingOutsideCtract(t *testing.T) {
	rep := ClassifyCtract(cliqueST(), cliqueTS(), nil)
	if rep.InCtract {
		t.Fatal("clique reduction setting must be outside C_tract")
	}
	// Condition 1 holds (every marked variable appears once in each lhs).
	if !rep.Cond1 {
		t.Errorf("condition 1 should hold; violations: %v", rep.Violations)
	}
	// Condition 2.1 fails (ts-S has two body literals) and condition 2.2
	// fails (z and z2 co-occur in S(z,z2) but not in any body conjunct,
	// while both occur in the body).
	if rep.Cond21 {
		t.Error("condition 2.1 should fail")
	}
	if rep.Cond22 {
		t.Error("condition 2.2 should fail")
	}
	if !strings.Contains(rep.Summary(), "NOT in C_tract") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestLAVSettingInCtract(t *testing.T) {
	// Arbitrary Σst with existentials; Σts all LAV.
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("T", Var("x"), Var("u"), Var("v"))},
	}}
	ts := []TGD{{
		Label: "ts",
		Body:  []Atom{NewAtom("T", Var("a"), Var("b"), Var("c"))},
		Head:  []Atom{NewAtom("A", Var("a"), Var("d"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if !rep.InCtract {
		t.Fatalf("LAV ts setting must be in C_tract: %s", rep.Summary())
	}
	if !rep.Cond1 || !rep.Cond21 {
		t.Errorf("expected conditions 1 and 2.1 to hold: %+v", rep)
	}
}

func TestFullSTSettingInCtract(t *testing.T) {
	// Full Σst; Σts with joins and existentials. Per the paper, full
	// source-to-target tgds put the setting in C_tract via condition 2.2.
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("T", Var("x"), Var("y"))},
	}}
	ts := []TGD{{
		Label: "ts",
		Body:  []Atom{NewAtom("T", Var("a"), Var("b")), NewAtom("T", Var("b"), Var("c"))},
		Head:  []Atom{NewAtom("A", Var("a"), Var("u")), NewAtom("A", Var("u"), Var("v"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if !rep.InCtract {
		t.Fatalf("full-st setting must be in C_tract: %s", rep.Summary())
	}
	if !rep.Cond22 {
		t.Error("expected condition 2.2 to hold for full Σst")
	}
}

func TestCondition1Violation(t *testing.T) {
	// Marked variable repeated in the lhs: T(x,x) with T.1 marked... use
	// the paper's Lemma 5 counterexample shape: a marked variable y
	// occurring in two body literals.
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("A", Var("x"))},
		Head:  []Atom{NewAtom("T1", Var("x"), Var("y")), NewAtom("T2", Var("y"), Var("z"))},
	}}
	ts := []TGD{{
		Label: "ts",
		Body:  []Atom{NewAtom("T1", Var("x"), Var("y")), NewAtom("T2", Var("y"), Var("z"))},
		Head:  []Atom{NewAtom("A", Var("x"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if rep.Cond1 {
		t.Fatal("condition 1 must fail: marked y appears twice in lhs")
	}
	if rep.InCtract {
		t.Fatal("setting violating condition 1 must be outside C_tract")
	}
}

func TestDisjunctiveOutsideCtract(t *testing.T) {
	d := DisjunctiveTGD{
		Label:     "d",
		Body:      []Atom{NewAtom("T", Var("x"))},
		Disjuncts: [][]Atom{{NewAtom("A", Var("x"))}},
	}
	rep := ClassifyCtract(nil, nil, []DisjunctiveTGD{d})
	if rep.InCtract {
		t.Fatal("disjunctive ts must be outside C_tract")
	}
	if !rep.HasDisjunctiveTS {
		t.Error("HasDisjunctiveTS not set")
	}
}

func TestCond22PairAbsentFromLHS(t *testing.T) {
	// Two existential variables co-occurring in the head: 2.2(b) applies.
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("A", Var("x"))},
		Head:  []Atom{NewAtom("T", Var("x"))},
	}}
	ts := []TGD{{
		Label: "ts",
		Body:  []Atom{NewAtom("T", Var("x")), NewAtom("T", Var("y"))},
		Head:  []Atom{NewAtom("B", Var("u"), Var("v"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if !rep.Cond22 {
		t.Errorf("2.2(b) case should satisfy condition 2.2: %v", rep.Violations)
	}
	if !rep.InCtract {
		t.Errorf("setting should be in C_tract: %s", rep.Summary())
	}
}

func TestCond22PairTogetherInLHS(t *testing.T) {
	// Marked variables co-occur in a body conjunct: 2.2(a) applies.
	st := []TGD{{
		Label: "st",
		Body:  []Atom{NewAtom("A", Var("x"))},
		Head:  []Atom{NewAtom("T", Var("x"), Var("u"), Var("v"))},
	}}
	ts := []TGD{{
		Label: "ts",
		Body:  []Atom{NewAtom("T", Var("a"), Var("b"), Var("c"))},
		Head:  []Atom{NewAtom("B", Var("b"), Var("c"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if !rep.Cond22 {
		t.Errorf("2.2(a) case should satisfy condition 2.2: %v", rep.Violations)
	}
}

func TestEmptySettingInCtract(t *testing.T) {
	rep := ClassifyCtract(nil, nil, nil)
	if !rep.InCtract {
		t.Error("empty setting must be in C_tract")
	}
	if !strings.Contains(rep.Summary(), "in C_tract") {
		t.Errorf("summary = %q", rep.Summary())
	}
}
