package dep

import (
	"strings"
	"testing"
)

// selfLoopTGD is the classic non-weakly-acyclic tgd
// H(x,y) -> exists z: H(y,z): the special edge H.1 →̂ H.1 closes a
// cycle by itself.
func selfLoopTGD() TGD {
	return TGD{
		Label: "t1",
		Body:  []Atom{NewAtom("H", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("H", Var("y"), Var("z"))},
	}
}

// twoStepCycle is a cycle that needs an ordinary edge to close:
// A(x,y) -> exists z: B(y,z) gives the ordinary edge A.1 → B.0 (via y)
// and the special edge A.1 →̂ B.1 (via z); B(u,v) -> A(u,v) gives the
// ordinary edges B.0 → A.0 and B.1 → A.1. The special edge A.1 →̂ B.1
// closes through B.1 → A.1.
func twoStepCycle() []TGD {
	return []TGD{
		{
			Label: "t-ab",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("y"), Var("z"))},
		},
		{
			Label: "t-ba",
			Body:  []Atom{NewAtom("B", Var("u"), Var("v"))},
			Head:  []Atom{NewAtom("A", Var("u"), Var("v"))},
		},
	}
}

// verifyCycle checks that the reported cycle is a real cycle in the
// graph: consecutive, closed, every edge present with the reported
// kind, and at least one special edge.
func verifyCycle(t *testing.T, g *DependencyGraph, cycle []CycleEdge) {
	t.Helper()
	if len(cycle) == 0 {
		t.Fatal("empty cycle")
	}
	hasSpecial := false
	for i, e := range cycle {
		next := cycle[(i+1)%len(cycle)]
		if e.To != next.From {
			t.Errorf("edge %d ends at %v but edge %d starts at %v", i, e.To, (i+1)%len(cycle), next.From)
		}
		if e.Special {
			hasSpecial = true
			if !g.HasSpecialEdge(e.From, e.To) {
				t.Errorf("reported special edge %v → %v not in graph", e.From, e.To)
			}
		} else if !g.HasOrdinaryEdge(e.From, e.To) {
			t.Errorf("reported ordinary edge %v → %v not in graph", e.From, e.To)
		}
		if len(e.TGDs) == 0 {
			t.Errorf("edge %v has no tgd provenance", e)
		}
	}
	if !hasSpecial {
		t.Error("cycle traverses no special edge")
	}
}

func TestFindSpecialCycleSelfLoop(t *testing.T) {
	tgds := []TGD{selfLoopTGD()}
	if WeaklyAcyclic(tgds) {
		t.Fatal("self-loop tgd reported weakly acyclic")
	}
	cycle, acyclic := WeaklyAcyclicWitness(tgds)
	if acyclic {
		t.Fatal("witness variant disagrees with WeaklyAcyclic")
	}
	verifyCycle(t, BuildDependencyGraph(tgds), cycle)
	if len(cycle) != 1 || !cycle[0].Special || cycle[0].From != (Position{"H", 1}) {
		t.Errorf("cycle = %v, want the special self-loop at H.1", cycle)
	}
	if got := FormatCycle(cycle); got != "H.1 →̂ H.1" {
		t.Errorf("FormatCycle = %q", got)
	}
	if got := cycle[0].TGDs; len(got) != 1 || got[0] != "t1" {
		t.Errorf("provenance = %v, want [t1]", got)
	}
}

func TestFindSpecialCycleMultiEdge(t *testing.T) {
	tgds := twoStepCycle()
	if WeaklyAcyclic(tgds) {
		t.Fatal("two-step cyclic set reported weakly acyclic")
	}
	cycle, acyclic := WeaklyAcyclicWitness(tgds)
	if acyclic {
		t.Fatal("no witness cycle found")
	}
	g := BuildDependencyGraph(tgds)
	verifyCycle(t, g, cycle)
	if !cycle[0].Special {
		t.Errorf("cycle does not start with the special edge: %v", cycle)
	}
	// Determinism: two runs yield byte-identical renderings.
	again, _ := WeaklyAcyclicWitness(tgds)
	if FormatCycle(cycle) != FormatCycle(again) {
		t.Errorf("witness not deterministic: %q vs %q", FormatCycle(cycle), FormatCycle(again))
	}
}

func TestWeaklyAcyclicWitnessOnAcyclicSet(t *testing.T) {
	full := TGD{
		Label: "full",
		Body:  []Atom{NewAtom("H", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("G", Var("y"), Var("x"))},
	}
	cycle, acyclic := WeaklyAcyclicWitness([]TGD{full})
	if !acyclic || cycle != nil {
		t.Errorf("full tgd: cycle=%v acyclic=%v, want nil/true", cycle, acyclic)
	}
}

func TestCtractWitnessesCliqueSetting(t *testing.T) {
	rep := ClassifyCtract(cliqueST(), cliqueTS(), nil)
	if rep.InCtract {
		t.Fatal("clique setting must be outside C_tract")
	}
	if len(rep.Witnesses) == 0 {
		t.Fatal("no witnesses for a non-C_tract setting")
	}
	// The paper's violation: z and z2 co-occur in head conjunct S(z,z2)
	// of ts-S while both occur in the body.
	var w *CtractWitness
	for i := range rep.Witnesses {
		if rep.Witnesses[i].Cond == "2.2" && rep.Witnesses[i].TGD == "ts-S" {
			w = &rep.Witnesses[i]
		}
	}
	if w == nil {
		t.Fatalf("no 2.2 witness for ts-S: %+v", rep.Witnesses)
	}
	if w.Atom != "S(z, z2)" {
		t.Errorf("witness atom = %q, want S(z, z2)", w.Atom)
	}
	if len(w.Vars) != 2 || w.Vars[0] != "z" || w.Vars[1] != "z2" {
		t.Errorf("witness vars = %v, want [z z2]", w.Vars)
	}
	if len(w.Chains) != 2 {
		t.Fatalf("chains = %+v, want 2 entries", w.Chains)
	}
	// Both variables are marked because they sit at the marked positions
	// P.1 / P.3, which st-D's existentials marked.
	for _, c := range w.Chains {
		if c.Existential {
			t.Errorf("chain %+v claims existential marking; want positional", c)
		}
		if c.Pos != "P.1" && c.Pos != "P.3" {
			t.Errorf("chain pos = %q, want P.1 or P.3", c.Pos)
		}
		if len(c.MarkedBy) != 1 || c.MarkedBy[0] != "st-D" {
			t.Errorf("chain marked_by = %v, want [st-D]", c.MarkedBy)
		}
	}
	// Violations mirror witness messages in the same order.
	for i, v := range rep.Violations {
		if i < len(rep.Witnesses) && v != rep.Witnesses[i].Message {
			t.Errorf("violation %d = %q does not match witness message %q", i, v, rep.Witnesses[i].Message)
		}
	}
}

func TestCtractWitnessExistentialChain(t *testing.T) {
	// ts tgd with an existential variable co-occurring with a marked one.
	st := []TGD{{
		Label: "st1",
		Body:  []Atom{NewAtom("S", Var("a"))},
		Head:  []Atom{NewAtom("T", Var("a"), Var("e"))},
	}}
	ts := []TGD{{
		Label: "ts1",
		Body:  []Atom{NewAtom("T", Var("x"), Var("m")), NewAtom("T", Var("m"), Var("y"))},
		Head:  []Atom{NewAtom("S2", Var("m"), Var("w"))},
	}}
	rep := ClassifyCtract(st, ts, nil)
	if rep.InCtract {
		t.Fatal("setting should be outside C_tract")
	}
	found := false
	for _, w := range rep.Witnesses {
		for _, c := range w.Chains {
			if c.Var == "w" && c.Existential {
				found = true
			}
			if c.Var == "m" && (c.Pos != "T.1" || len(c.MarkedBy) != 1 || c.MarkedBy[0] != "st1") {
				t.Errorf("chain for m = %+v, want pos T.1 marked by st1", c)
			}
		}
	}
	if !found {
		t.Errorf("no existential chain for w in %+v", rep.Witnesses)
	}
}

func TestClassifyCtractDeterministicOrder(t *testing.T) {
	st, ts := cliqueST(), cliqueTS()
	first := ClassifyCtract(st, ts, nil)
	for trial := 0; trial < 20; trial++ {
		rep := ClassifyCtract(st, ts, nil)
		if strings.Join(rep.Violations, "|") != strings.Join(first.Violations, "|") {
			t.Fatalf("violations order changed between runs:\n%v\nvs\n%v", rep.Violations, first.Violations)
		}
		if strings.Join(rep.TSOrder, "|") != "ts-E|ts-S" {
			t.Fatalf("TSOrder = %v, want input order [ts-E ts-S]", rep.TSOrder)
		}
	}
}
