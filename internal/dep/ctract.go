package dep

import (
	"fmt"
	"sort"
	"strings"
)

// MarkedPositions computes the marked positions of the target schema per
// Definition 8: the i-th position of target relation T is marked if some
// source-to-target tgd has a head conjunct T(z1, ..., zn) where z_i is
// existentially quantified.
func MarkedPositions(st []TGD) map[Position]bool {
	marked := make(map[Position]bool)
	for _, d := range st {
		body := varSet(d.Body)
		for _, a := range d.Head {
			for i, t := range a.Args {
				if !t.IsConst && !body[t.Name] {
					marked[Position{a.Rel, i}] = true
				}
			}
		}
	}
	return marked
}

// MarkedPositionProvenance maps each marked position to the sorted
// labels of the source-to-target tgds whose existential head variables
// mark it (Definition 8). The key set equals MarkedPositions(st).
func MarkedPositionProvenance(st []TGD) map[Position][]string {
	prov := make(map[Position][]string)
	for _, d := range st {
		body := varSet(d.Body)
		for _, a := range d.Head {
			for i, t := range a.Args {
				if !t.IsConst && !body[t.Name] {
					pos := Position{a.Rel, i}
					if !containsString(prov[pos], d.Label) {
						prov[pos] = append(prov[pos], d.Label)
					}
				}
			}
		}
	}
	for _, labels := range prov {
		sort.Strings(labels)
	}
	return prov
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// MarkedVars computes the marked variables of a target-to-source tgd
// per Definition 8: a variable z is marked in alpha(x) -> exists w
// beta(x, w) if (1) z appears at a marked position of a conjunct of
// alpha, or (2) z is existentially quantified. The two cases are
// mutually exclusive (an existential variable never appears in alpha).
func MarkedVars(ts TGD, markedPos map[Position]bool) map[string]bool {
	marked := make(map[string]bool)
	for _, a := range ts.Body {
		for i, t := range a.Args {
			if !t.IsConst && markedPos[Position{a.Rel, i}] {
				marked[t.Name] = true
			}
		}
	}
	for _, v := range ts.ExistentialVars() {
		marked[v] = true
	}
	return marked
}

// MarkChain explains why one variable of a target-to-source tgd is
// marked (Definition 8): either it is existentially quantified in the
// tgd itself, or it occurs at a marked position of a body conjunct, in
// which case MarkedBy lists the source-to-target tgds whose existential
// head variables marked that position.
type MarkChain struct {
	// Var is the marked variable.
	Var string `json:"var"`
	// Existential is true when the variable is marked because it is
	// existentially quantified in the t-s tgd.
	Existential bool `json:"existential,omitempty"`
	// Pos is the marked body position the variable occurs at (e.g.
	// "P.1"), when not existential.
	Pos string `json:"pos,omitempty"`
	// Atom renders the body conjunct containing that occurrence.
	Atom string `json:"atom,omitempty"`
	// MarkedBy lists the s-t tgd labels that marked Pos.
	MarkedBy []string `json:"marked_by,omitempty"`
}

// CtractWitness is a machine-readable explanation of one C_tract
// violation: which condition failed, on which dependency, at which
// source position, and via which marked variables.
type CtractWitness struct {
	// Cond identifies the failed condition: "1", "2.2", or
	// "disjunctive".
	Cond string `json:"cond"`
	// TGD is the label of the offending target-to-source dependency.
	TGD string `json:"tgd"`
	// Span is the source position of the offending atom (or of the
	// dependency when no single atom is implicated); zero when the
	// dependency was built in code.
	Span Span `json:"-"`
	// Atom renders the offending atom: for condition 1 a body conjunct
	// with a repeated marked variable, for condition 2.2 the head
	// conjunct where the marked pair co-occurs.
	Atom string `json:"atom,omitempty"`
	// Vars are the implicated marked variables (one for condition 1, the
	// co-occurring pair for condition 2.2), sorted.
	Vars []string `json:"vars,omitempty"`
	// Chains explains why each variable in Vars is marked.
	Chains []MarkChain `json:"chains,omitempty"`
	// Message is the human-readable rendering.
	Message string `json:"message"`
}

// CtractReport is the result of classifying the source-to-target and
// target-to-source constraints of a PDE setting against Definition 9.
type CtractReport struct {
	// InCtract is true when condition 1 holds together with condition
	// 2.1 or condition 2.2.
	InCtract bool
	// Cond1 holds when, in every target-to-source tgd, every marked
	// variable appears at most once in the left-hand side.
	Cond1 bool
	// Cond21 holds when the left-hand side of every target-to-source
	// tgd consists of exactly one literal.
	Cond21 bool
	// Cond22 holds when, for every target-to-source tgd D and every pair
	// of marked variables x, y of D appearing together in a conjunct of
	// the right-hand side of D, either x and y appear together in some
	// conjunct of the left-hand side, or neither appears in the
	// left-hand side at all.
	Cond22 bool
	// HasDisjunctiveTS reports whether the setting uses disjunctive
	// target-to-source dependencies; such settings are outside C_tract
	// (Section 4 shows they encode 3-colorability).
	HasDisjunctiveTS bool
	// MarkedPositions lists the marked target positions, sorted.
	MarkedPositions []Position
	// MarkedVarsByTGD maps each target-to-source tgd label to its sorted
	// marked variables.
	MarkedVarsByTGD map[string][]string
	// TSOrder lists the target-to-source tgd labels in input order, for
	// deterministic reporting (MarkedVarsByTGD is a map).
	TSOrder []string
	// Violations holds human-readable explanations for each condition
	// that failed, in input order of the offending dependencies.
	Violations []string
	// Witnesses holds the structured counterparts of Violations, in the
	// same order.
	Witnesses []CtractWitness
}

// ClassifyCtract decides membership of a PDE setting (with no target
// constraints) in the tractable class C_tract of Definition 9, and
// explains any violations. Target constraints are not part of the
// classification: by definition C_tract requires an empty Σt, which the
// caller checks separately.
func ClassifyCtract(st, ts []TGD, tsDisj []DisjunctiveTGD) CtractReport {
	markedProv := MarkedPositionProvenance(st)
	markedPos := make(map[Position]bool, len(markedProv))
	for p := range markedProv {
		markedPos[p] = true
	}
	rep := CtractReport{
		Cond1:           true,
		Cond21:          true,
		Cond22:          true,
		MarkedVarsByTGD: make(map[string][]string),
	}
	for p := range markedPos {
		rep.MarkedPositions = append(rep.MarkedPositions, p)
	}
	sort.Slice(rep.MarkedPositions, func(i, j int) bool {
		return positionLess(rep.MarkedPositions[i], rep.MarkedPositions[j])
	})

	addWitness := func(w CtractWitness) {
		rep.Witnesses = append(rep.Witnesses, w)
		rep.Violations = append(rep.Violations, w.Message)
	}

	for _, d := range tsDisj {
		rep.HasDisjunctiveTS = true
		addWitness(CtractWitness{
			Cond:    "disjunctive",
			TGD:     d.Label,
			Span:    d.Span,
			Message: fmt.Sprintf("target-to-source dependency %s has a disjunctive head; such settings are outside C_tract", d.Label),
		})
	}

	for _, d := range ts {
		marked := MarkedVars(d, markedPos)
		rep.MarkedVarsByTGD[d.Label] = SortedVarNames(marked)
		rep.TSOrder = append(rep.TSOrder, d.Label)

		// Condition 1: every marked variable occurs at most once in the
		// left-hand side.
		occ := make(map[string]int)
		for _, a := range d.Body {
			for _, t := range a.Args {
				if !t.IsConst {
					occ[t.Name]++
				}
			}
		}
		for _, v := range SortedVarNames(marked) {
			if occ[v] <= 1 {
				continue
			}
			rep.Cond1 = false
			atom := repeatAtom(d.Body, v)
			addWitness(CtractWitness{
				Cond:   "1",
				TGD:    d.Label,
				Span:   atomSpanOr(atom, d.Span),
				Atom:   atom.String(),
				Vars:   []string{v},
				Chains: markChains(d, []string{v}, markedProv),
				Message: fmt.Sprintf(
					"condition 1: marked variable %s appears %d times in the left-hand side of %s",
					v, occ[v], d.Label),
			})
		}

		// Condition 2.1: exactly one literal in the left-hand side.
		if len(d.Body) != 1 {
			rep.Cond21 = false
		}

		// Condition 2.2: pairs of marked variables co-occurring in a
		// right-hand-side conjunct must co-occur in a left-hand-side
		// conjunct or be absent from the left-hand side entirely.
		lhsVars := varSet(d.Body)
		coLHS := coOccurrence(d.Body)
		for _, a := range d.Head {
			vars := a.Vars()
			for i := 0; i < len(vars); i++ {
				for j := i + 1; j < len(vars); j++ {
					x, y := vars[i], vars[j]
					if !marked[x] || !marked[y] {
						continue
					}
					if coLHS[pairKey(x, y)] {
						continue // 2.2(a)
					}
					if !lhsVars[x] && !lhsVars[y] {
						continue // 2.2(b)
					}
					rep.Cond22 = false
					if x > y {
						x, y = y, x
					}
					addWitness(CtractWitness{
						Cond:   "2.2",
						TGD:    d.Label,
						Span:   atomSpanOr(a, d.Span),
						Atom:   a.String(),
						Vars:   []string{x, y},
						Chains: markChains(d, []string{x, y}, markedProv),
						Message: fmt.Sprintf(
							"condition 2.2: marked variables %s and %s co-occur in head conjunct %s of %s but neither 2.2(a) nor 2.2(b) holds",
							x, y, a, d.Label),
					})
				}
			}
		}
	}

	rep.InCtract = !rep.HasDisjunctiveTS && rep.Cond1 && (rep.Cond21 || rep.Cond22)
	if !rep.Cond21 && !rep.InCtract {
		// Record the 2.1 failure only when it matters for the verdict,
		// to keep reports for 2.2-settings uncluttered.
		if rep.Cond1 && !rep.Cond22 {
			rep.Violations = append(rep.Violations,
				"condition 2.1: some target-to-source tgd has more than one literal in its left-hand side")
		}
	}
	return rep
}

// repeatAtom returns the first body atom in which the variable occurs
// at least twice, falling back to the first atom containing it at all.
func repeatAtom(body []Atom, v string) Atom {
	var first *Atom
	for i := range body {
		n := 0
		for _, t := range body[i].Args {
			if !t.IsConst && t.Name == v {
				n++
			}
		}
		if n >= 2 {
			return body[i]
		}
		if n == 1 && first == nil {
			first = &body[i]
		}
	}
	if first != nil {
		return *first
	}
	if len(body) > 0 {
		return body[0]
	}
	return Atom{}
}

// atomSpanOr returns the atom's span, or the fallback when the atom has
// no recorded position.
func atomSpanOr(a Atom, fallback Span) Span {
	if a.Span.Known() {
		return a.Span
	}
	return fallback
}

// markChains explains why each of the given variables of the t-s tgd d
// is marked, naming the marked body position and the s-t tgds that
// marked it (Definition 8).
func markChains(d TGD, vars []string, markedProv map[Position][]string) []MarkChain {
	exist := make(map[string]bool)
	for _, v := range d.ExistentialVars() {
		exist[v] = true
	}
	var out []MarkChain
	for _, v := range vars {
		if exist[v] {
			out = append(out, MarkChain{Var: v, Existential: true})
			continue
		}
		chain := MarkChain{Var: v}
		for _, a := range d.Body {
			for i, t := range a.Args {
				if t.IsConst || t.Name != v {
					continue
				}
				pos := Position{a.Rel, i}
				if labels, ok := markedProv[pos]; ok {
					chain.Pos = pos.String()
					chain.Atom = a.String()
					chain.MarkedBy = labels
				}
			}
			if chain.Pos != "" {
				break
			}
		}
		out = append(out, chain)
	}
	return out
}

// Summary renders a one-paragraph explanation of the classification.
func (r CtractReport) Summary() string {
	var b strings.Builder
	if r.InCtract {
		b.WriteString("setting is in C_tract (condition 1 holds")
		switch {
		case r.Cond21 && r.Cond22:
			b.WriteString(", conditions 2.1 and 2.2 both hold)")
		case r.Cond21:
			b.WriteString(", condition 2.1 holds)")
		default:
			b.WriteString(", condition 2.2 holds)")
		}
	} else {
		b.WriteString("setting is NOT in C_tract")
		if len(r.Violations) > 0 {
			b.WriteString(": ")
			b.WriteString(strings.Join(r.Violations, "; "))
		}
	}
	return b.String()
}

// coOccurrence returns the set of variable pairs co-occurring in at
// least one atom of the list.
func coOccurrence(atoms []Atom) map[string]bool {
	pairs := make(map[string]bool)
	for _, a := range atoms {
		vars := a.Vars()
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				pairs[pairKey(vars[i], vars[j])] = true
			}
		}
	}
	return pairs
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}
