package dep

import (
	"fmt"
	"sort"
	"strings"
)

// MarkedPositions computes the marked positions of the target schema per
// Definition 8: the i-th position of target relation T is marked if some
// source-to-target tgd has a head conjunct T(z1, ..., zn) where z_i is
// existentially quantified.
func MarkedPositions(st []TGD) map[Position]bool {
	marked := make(map[Position]bool)
	for _, d := range st {
		body := varSet(d.Body)
		for _, a := range d.Head {
			for i, t := range a.Args {
				if !t.IsConst && !body[t.Name] {
					marked[Position{a.Rel, i}] = true
				}
			}
		}
	}
	return marked
}

// MarkedVars computes the marked variables of a target-to-source tgd
// per Definition 8: a variable z is marked in alpha(x) -> exists w
// beta(x, w) if (1) z appears at a marked position of a conjunct of
// alpha, or (2) z is existentially quantified. The two cases are
// mutually exclusive (an existential variable never appears in alpha).
func MarkedVars(ts TGD, markedPos map[Position]bool) map[string]bool {
	marked := make(map[string]bool)
	for _, a := range ts.Body {
		for i, t := range a.Args {
			if !t.IsConst && markedPos[Position{a.Rel, i}] {
				marked[t.Name] = true
			}
		}
	}
	for _, v := range ts.ExistentialVars() {
		marked[v] = true
	}
	return marked
}

// CtractReport is the result of classifying the source-to-target and
// target-to-source constraints of a PDE setting against Definition 9.
type CtractReport struct {
	// InCtract is true when condition 1 holds together with condition
	// 2.1 or condition 2.2.
	InCtract bool
	// Cond1 holds when, in every target-to-source tgd, every marked
	// variable appears at most once in the left-hand side.
	Cond1 bool
	// Cond21 holds when the left-hand side of every target-to-source
	// tgd consists of exactly one literal.
	Cond21 bool
	// Cond22 holds when, for every target-to-source tgd D and every pair
	// of marked variables x, y of D appearing together in a conjunct of
	// the right-hand side of D, either x and y appear together in some
	// conjunct of the left-hand side, or neither appears in the
	// left-hand side at all.
	Cond22 bool
	// HasDisjunctiveTS reports whether the setting uses disjunctive
	// target-to-source dependencies; such settings are outside C_tract
	// (Section 4 shows they encode 3-colorability).
	HasDisjunctiveTS bool
	// MarkedPositions lists the marked target positions, sorted.
	MarkedPositions []Position
	// MarkedVarsByTGD maps each target-to-source tgd label to its sorted
	// marked variables.
	MarkedVarsByTGD map[string][]string
	// Violations holds human-readable explanations for each condition
	// that failed.
	Violations []string
}

// ClassifyCtract decides membership of a PDE setting (with no target
// constraints) in the tractable class C_tract of Definition 9, and
// explains any violations. Target constraints are not part of the
// classification: by definition C_tract requires an empty Σt, which the
// caller checks separately.
func ClassifyCtract(st, ts []TGD, tsDisj []DisjunctiveTGD) CtractReport {
	markedPos := MarkedPositions(st)
	rep := CtractReport{
		Cond1:           true,
		Cond21:          true,
		Cond22:          true,
		MarkedVarsByTGD: make(map[string][]string),
	}
	for p := range markedPos {
		rep.MarkedPositions = append(rep.MarkedPositions, p)
	}
	sort.Slice(rep.MarkedPositions, func(i, j int) bool {
		a, b := rep.MarkedPositions[i], rep.MarkedPositions[j]
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.Idx < b.Idx
	})

	if len(tsDisj) > 0 {
		rep.HasDisjunctiveTS = true
		rep.Violations = append(rep.Violations,
			"target-to-source dependencies with disjunctive heads are outside C_tract")
	}

	for _, d := range ts {
		marked := MarkedVars(d, markedPos)
		rep.MarkedVarsByTGD[d.Label] = SortedVarNames(marked)

		// Condition 1: every marked variable occurs at most once in the
		// left-hand side.
		occ := make(map[string]int)
		for _, a := range d.Body {
			for _, t := range a.Args {
				if !t.IsConst {
					occ[t.Name]++
				}
			}
		}
		for v, n := range occ {
			if marked[v] && n > 1 {
				rep.Cond1 = false
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"condition 1: marked variable %s appears %d times in the left-hand side of %s",
					v, n, d.Label))
			}
		}

		// Condition 2.1: exactly one literal in the left-hand side.
		if len(d.Body) != 1 {
			rep.Cond21 = false
		}

		// Condition 2.2: pairs of marked variables co-occurring in a
		// right-hand-side conjunct must co-occur in a left-hand-side
		// conjunct or be absent from the left-hand side entirely.
		lhsVars := varSet(d.Body)
		coLHS := coOccurrence(d.Body)
		for _, a := range d.Head {
			vars := a.Vars()
			for i := 0; i < len(vars); i++ {
				for j := i + 1; j < len(vars); j++ {
					x, y := vars[i], vars[j]
					if !marked[x] || !marked[y] {
						continue
					}
					if coLHS[pairKey(x, y)] {
						continue // 2.2(a)
					}
					if !lhsVars[x] && !lhsVars[y] {
						continue // 2.2(b)
					}
					rep.Cond22 = false
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"condition 2.2: marked variables %s and %s co-occur in head conjunct %s of %s but neither 2.2(a) nor 2.2(b) holds",
						x, y, a, d.Label))
				}
			}
		}
	}

	sort.Strings(rep.Violations)
	rep.InCtract = !rep.HasDisjunctiveTS && rep.Cond1 && (rep.Cond21 || rep.Cond22)
	if !rep.Cond21 && !rep.InCtract {
		// Record the 2.1 failure only when it matters for the verdict,
		// to keep reports for 2.2-settings uncluttered.
		if rep.Cond1 && !rep.Cond22 {
			rep.Violations = append(rep.Violations,
				"condition 2.1: some target-to-source tgd has more than one literal in its left-hand side")
		}
	}
	return rep
}

// Summary renders a one-paragraph explanation of the classification.
func (r CtractReport) Summary() string {
	var b strings.Builder
	if r.InCtract {
		b.WriteString("setting is in C_tract (condition 1 holds")
		switch {
		case r.Cond21 && r.Cond22:
			b.WriteString(", conditions 2.1 and 2.2 both hold)")
		case r.Cond21:
			b.WriteString(", condition 2.1 holds)")
		default:
			b.WriteString(", condition 2.2 holds)")
		}
	} else {
		b.WriteString("setting is NOT in C_tract")
		if len(r.Violations) > 0 {
			b.WriteString(": ")
			b.WriteString(strings.Join(r.Violations, "; "))
		}
	}
	return b.String()
}

// coOccurrence returns the set of variable pairs co-occurring in at
// least one atom of the list.
func coOccurrence(atoms []Atom) map[string]bool {
	pairs := make(map[string]bool)
	for _, a := range atoms {
		vars := a.Vars()
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				pairs[pairKey(vars[i], vars[j])] = true
			}
		}
	}
	return pairs
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "\x00" + b
}
