// Package dep implements the dependency language of the peer data
// exchange paper: tuple-generating dependencies (tgds),
// equality-generating dependencies (egds), and — for the boundary
// example of Section 4 — tgds with disjunctive right-hand sides.
//
// The package also implements the syntactic analyses the paper builds on:
// weak acyclicity of a set of tgds (Definition 5), marked positions and
// marked variables (Definition 8), and membership in the tractable class
// C_tract (Definition 9).
package dep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rel"
)

// Span is a source position (1-based line and column) attached to
// dependencies and atoms by the parser. The zero Span means "position
// unknown" (e.g. for programmatically constructed dependencies).
type Span struct {
	Line int
	Col  int
}

// Known reports whether the span carries a real position.
func (s Span) Known() bool { return s.Line > 0 }

// String renders the span as "line:col"; empty for unknown spans.
func (s Span) String() string {
	if !s.Known() {
		return ""
	}
	return fmt.Sprintf("%d:%d", s.Line, s.Col)
}

// Term is either a variable or a constant occurring in an atom of a
// dependency or query.
type Term struct {
	// IsConst reports whether the term is a constant; otherwise it is a
	// variable.
	IsConst bool
	// Name is the variable name or the constant text.
	Name string
}

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name} }

// Cst returns a constant term.
func Cst(text string) Term { return Term{IsConst: true, Name: text} }

// Value converts a constant term to a rel.Value. It panics on variables.
func (t Term) Value() rel.Value {
	if !t.IsConst {
		panic("dep: Value on variable term")
	}
	return rel.Const(t.Name)
}

// String renders the term; constants are single-quoted.
func (t Term) String() string {
	if t.IsConst {
		return "'" + t.Name + "'"
	}
	return t.Name
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel  string
	Args []Term
	// Span is the source position of the atom's relation symbol; zero
	// for atoms built in code.
	Span Span
}

// NewAtom builds an atom.
func NewAtom(relName string, args ...Term) Atom {
	return Atom{Rel: relName, Args: args}
}

// Vars returns the variable names occurring in the atom, in order of
// first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if !t.IsConst && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// String renders the atom.
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// varsOf collects the variable names of a list of atoms in order of
// first occurrence.
func varsOf(atoms []Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if !t.IsConst && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// varSet collects the variable names of a list of atoms as a set.
func varSet(atoms []Atom) map[string]bool {
	set := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				set[t.Name] = true
			}
		}
	}
	return set
}

// Dependency is a tgd or an egd. The chase dispatches on the concrete
// type.
type Dependency interface {
	// DepLabel returns a human-readable identifier for error messages
	// and traces.
	DepLabel() string
	// BodyAtoms returns the left-hand-side atoms.
	BodyAtoms() []Atom
	// String renders the dependency in the surface syntax.
	String() string
	// Validate checks well-formedness against the schema holding the
	// body relations and the schema holding the head relations (equal
	// for target dependencies).
	Validate(body, head *rel.Schema) error
}

// TGD is a tuple-generating dependency
//
//	forall x ( body(x) -> exists y head(x, y) )
//
// The universally quantified variables are exactly the variables of the
// body; head variables not occurring in the body are existentially
// quantified.
type TGD struct {
	Label string
	Body  []Atom
	Head  []Atom
	// Span is the source position of the dependency (its first body
	// atom); zero for tgds built in code.
	Span Span
	// ExplicitExists records whether the surface syntax spelled out the
	// 'exists v1, v2:' clause. Purely informational (the existential
	// variables are determined by body/head either way); the linter uses
	// it to flag implicitly existential head variables.
	ExplicitExists bool
}

// DepLabel implements Dependency.
func (d TGD) DepLabel() string { return d.Label }

// BodyAtoms implements Dependency.
func (d TGD) BodyAtoms() []Atom { return d.Body }

// UniversalVars returns the body variables in order of first occurrence.
func (d TGD) UniversalVars() []string { return varsOf(d.Body) }

// ExistentialVars returns the head variables that do not occur in the
// body, in order of first occurrence.
func (d TGD) ExistentialVars() []string {
	body := varSet(d.Body)
	var out []string
	seen := make(map[string]bool)
	for _, a := range d.Head {
		for _, t := range a.Args {
			if !t.IsConst && !body[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// IsFull reports whether the tgd has no existentially quantified
// variables (a "full tgd" in the paper's terminology).
func (d TGD) IsFull() bool { return len(d.ExistentialVars()) == 0 }

// IsLAV reports whether the tgd is a local-as-view dependency: exactly
// one body atom with no repeated variables and no constants. This is
// the shape required by condition (2.1) of C_tract together with
// condition (1).
func (d TGD) IsLAV() bool {
	if len(d.Body) != 1 {
		return false
	}
	seen := make(map[string]bool)
	for _, t := range d.Body[0].Args {
		if t.IsConst {
			return false
		}
		if seen[t.Name] {
			return false
		}
		seen[t.Name] = true
	}
	return true
}

// IsGAV reports whether the tgd is a global-as-view dependency: a single
// head atom with no existential variables.
func (d TGD) IsGAV() bool {
	return len(d.Head) == 1 && d.IsFull()
}

// String renders the tgd with explicit existential quantifiers, as the
// paper writes them.
func (d TGD) String() string {
	var b strings.Builder
	for i, a := range d.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	if ex := d.ExistentialVars(); len(ex) > 0 {
		b.WriteString("exists ")
		b.WriteString(strings.Join(ex, ", "))
		b.WriteString(": ")
	}
	for i, a := range d.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Validate implements Dependency. body is the schema the body atoms must
// belong to, head the schema for head atoms.
func (d TGD) Validate(body, head *rel.Schema) error {
	if len(d.Body) == 0 {
		return fmt.Errorf("dep: tgd %s has empty body", d.Label)
	}
	if len(d.Head) == 0 {
		return fmt.Errorf("dep: tgd %s has empty head", d.Label)
	}
	if err := validateAtoms(d.Label, d.Body, body); err != nil {
		return err
	}
	return validateAtoms(d.Label, d.Head, head)
}

// EGD is an equality-generating dependency
//
//	forall x ( body(x) -> z1 = z2 )
//
// where z1 and z2 are variables of the body.
type EGD struct {
	Label string
	Body  []Atom
	// Left and Right are the variable names equated by the dependency.
	Left, Right string
	// Span is the source position of the dependency; zero when built in
	// code.
	Span Span
}

// DepLabel implements Dependency.
func (d EGD) DepLabel() string { return d.Label }

// BodyAtoms implements Dependency.
func (d EGD) BodyAtoms() []Atom { return d.Body }

// String renders the egd.
func (d EGD) String() string {
	var b strings.Builder
	for i, a := range d.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	fmt.Fprintf(&b, " -> %s = %s", d.Left, d.Right)
	return b.String()
}

// KeyShaped reports whether the egd has the shape of a key (functional
// dependency) over a single relation: a body of exactly two atoms over
// the same relation, all arguments variables, where each position
// either shares one variable between the two atoms (a determinant
// position) or holds two distinct variables, and the equated pair
// Left/Right sits together at at least one position. Every egd emitted
// by declaring a key takes this shape — one egd per dependent column.
//
// The shape is what makes key-only settings resume-eligible
// (chase.Resumable): a key egd can only ever merge the dependent values
// of two tuples agreeing on their shared positions, so a finished
// fixpoint plus its union-find is a complete account of the merges, and
// appended facts re-trigger exactly the passes the resume seeds cover.
func (d EGD) KeyShaped() bool {
	if len(d.Body) != 2 || d.Body[0].Rel != d.Body[1].Rel {
		return false
	}
	a, b := d.Body[0], d.Body[1]
	if len(a.Args) != len(b.Args) {
		return false
	}
	pairAligned := false
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if ta.IsConst || tb.IsConst {
			return false
		}
		if ta.Name == tb.Name {
			continue // shared (determinant) position
		}
		if (ta.Name == d.Left && tb.Name == d.Right) || (ta.Name == d.Right && tb.Name == d.Left) {
			pairAligned = true
		}
	}
	return pairAligned
}

// Validate implements Dependency; egds have both sides over the same
// schema, so head is ignored.
func (d EGD) Validate(body, _ *rel.Schema) error {
	if len(d.Body) == 0 {
		return fmt.Errorf("dep: egd %s has empty body", d.Label)
	}
	if err := validateAtoms(d.Label, d.Body, body); err != nil {
		return err
	}
	vars := varSet(d.Body)
	if !vars[d.Left] {
		return fmt.Errorf("dep: egd %s equates variable %s not in body", d.Label, d.Left)
	}
	if !vars[d.Right] {
		return fmt.Errorf("dep: egd %s equates variable %s not in body", d.Label, d.Right)
	}
	return nil
}

// DisjunctiveTGD is a tgd whose right-hand side is a disjunction of
// conjunctions of atoms. The paper uses one (Section 4) to show that
// allowing disjunction in target-to-source dependencies crosses the
// intractability boundary (via 3-colorability). Disjunctive tgds are
// supported by the constraint checker and the generic solver but are not
// chased.
type DisjunctiveTGD struct {
	Label string
	Body  []Atom
	// Disjuncts are the alternative conjunctive heads; the dependency is
	// satisfied at a trigger when at least one disjunct is.
	Disjuncts [][]Atom
	// Span is the source position of the dependency; zero when built in
	// code.
	Span Span
}

// DepLabel implements Dependency.
func (d DisjunctiveTGD) DepLabel() string { return d.Label }

// BodyAtoms implements Dependency.
func (d DisjunctiveTGD) BodyAtoms() []Atom { return d.Body }

// ExistentialVars returns, per disjunct, the variables not bound by the
// body.
func (d DisjunctiveTGD) ExistentialVars(disjunct int) []string {
	body := varSet(d.Body)
	var out []string
	seen := make(map[string]bool)
	for _, a := range d.Disjuncts[disjunct] {
		for _, t := range a.Args {
			if !t.IsConst && !body[t.Name] && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// String renders the disjunctive tgd.
func (d DisjunctiveTGD) String() string {
	var b strings.Builder
	for i, a := range d.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" -> ")
	for i, disj := range d.Disjuncts {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteByte('(')
		for j, a := range disj {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Validate implements Dependency.
func (d DisjunctiveTGD) Validate(body, head *rel.Schema) error {
	if len(d.Body) == 0 {
		return fmt.Errorf("dep: disjunctive tgd %s has empty body", d.Label)
	}
	if len(d.Disjuncts) == 0 {
		return fmt.Errorf("dep: disjunctive tgd %s has no disjuncts", d.Label)
	}
	if err := validateAtoms(d.Label, d.Body, body); err != nil {
		return err
	}
	for _, disj := range d.Disjuncts {
		if len(disj) == 0 {
			return fmt.Errorf("dep: disjunctive tgd %s has an empty disjunct", d.Label)
		}
		if err := validateAtoms(d.Label, disj, head); err != nil {
			return err
		}
	}
	return nil
}

func validateAtoms(label string, atoms []Atom, s *rel.Schema) error {
	for _, a := range atoms {
		ar, ok := s.Arity(a.Rel)
		if !ok {
			return fmt.Errorf("dep: %s: relation %s not in schema {%s}", label, a.Rel, s)
		}
		if ar != len(a.Args) {
			return fmt.Errorf("dep: %s: atom %s has %d arguments, relation has arity %d", label, a, len(a.Args), ar)
		}
	}
	return nil
}

// TGDs filters a dependency list down to its tgds.
func TGDs(deps []Dependency) []TGD {
	var out []TGD
	for _, d := range deps {
		if t, ok := d.(TGD); ok {
			out = append(out, t)
		}
	}
	return out
}

// EGDs filters a dependency list down to its egds.
func EGDs(deps []Dependency) []EGD {
	var out []EGD
	for _, d := range deps {
		if e, ok := d.(EGD); ok {
			out = append(out, e)
		}
	}
	return out
}

// SortedVarNames returns the names in a set, sorted; used for
// deterministic reporting.
func SortedVarNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
