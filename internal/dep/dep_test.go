package dep

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

// pathTGD is the running example from Section 2 of the paper:
// E(x,z), E(z,y) -> H(x,y).
func pathTGD() TGD {
	return TGD{
		Label: "st1",
		Body:  []Atom{NewAtom("E", Var("x"), Var("z")), NewAtom("E", Var("z"), Var("y"))},
		Head:  []Atom{NewAtom("H", Var("x"), Var("y"))},
	}
}

// existTGD is H(x,y) -> exists z: E(x,z), E(z,y).
func existTGD() TGD {
	return TGD{
		Label: "ts1",
		Body:  []Atom{NewAtom("H", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("E", Var("x"), Var("z")), NewAtom("E", Var("z"), Var("y"))},
	}
}

func TestTGDVariableClassification(t *testing.T) {
	d := existTGD()
	if got := d.UniversalVars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("UniversalVars = %v", got)
	}
	if got := d.ExistentialVars(); len(got) != 1 || got[0] != "z" {
		t.Errorf("ExistentialVars = %v", got)
	}
	if d.IsFull() {
		t.Error("tgd with existential z reported full")
	}
	if !pathTGD().IsFull() {
		t.Error("full tgd not recognized")
	}
}

func TestTGDShapePredicates(t *testing.T) {
	lav := TGD{
		Label: "lav",
		Body:  []Atom{NewAtom("H", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("E", Var("x"), Var("y"))},
	}
	if !lav.IsLAV() {
		t.Error("single-literal no-repeat body not recognized as LAV")
	}
	repeated := TGD{
		Label: "rep",
		Body:  []Atom{NewAtom("H", Var("x"), Var("x"))},
		Head:  []Atom{NewAtom("E", Var("x"), Var("x"))},
	}
	if repeated.IsLAV() {
		t.Error("repeated variable body must not be LAV")
	}
	multi := pathTGD()
	if multi.IsLAV() {
		t.Error("two-literal body must not be LAV")
	}
	if !multi.IsGAV() {
		t.Error("single-head full tgd must be GAV")
	}
	if existTGD().IsGAV() {
		t.Error("existential tgd must not be GAV")
	}
	withConst := TGD{
		Label: "c",
		Body:  []Atom{NewAtom("H", Var("x"), Cst("a"))},
		Head:  []Atom{NewAtom("E", Var("x"), Var("x"))},
	}
	if withConst.IsLAV() {
		t.Error("body with constant must not be LAV")
	}
}

func TestTGDString(t *testing.T) {
	if got := existTGD().String(); got != "H(x, y) -> exists z: E(x, z), E(z, y)" {
		t.Errorf("String = %q", got)
	}
	if got := pathTGD().String(); strings.Contains(got, "exists") {
		t.Errorf("full tgd rendered with exists: %q", got)
	}
}

func TestTGDValidate(t *testing.T) {
	src := rel.SchemaOf("E", 2)
	tgt := rel.SchemaOf("H", 2)
	if err := pathTGD().Validate(src, tgt); err != nil {
		t.Errorf("valid tgd rejected: %v", err)
	}
	// Body relation in wrong schema.
	if err := pathTGD().Validate(tgt, src); err == nil {
		t.Error("tgd over wrong schemas accepted")
	}
	// Arity error.
	badArity := TGD{
		Label: "bad",
		Body:  []Atom{NewAtom("E", Var("x"))},
		Head:  []Atom{NewAtom("H", Var("x"), Var("x"))},
	}
	if err := badArity.Validate(src, tgt); err == nil {
		t.Error("arity-violating tgd accepted")
	}
	empty := TGD{Label: "e", Head: []Atom{NewAtom("H", Var("x"), Var("x"))}}
	if err := empty.Validate(src, tgt); err == nil {
		t.Error("empty-body tgd accepted")
	}
	noHead := TGD{Label: "h", Body: []Atom{NewAtom("E", Var("x"), Var("y"))}}
	if err := noHead.Validate(src, tgt); err == nil {
		t.Error("empty-head tgd accepted")
	}
}

func TestEGDValidate(t *testing.T) {
	tgt := rel.SchemaOf("P", 4)
	egd := EGD{
		Label: "e1",
		Body: []Atom{
			NewAtom("P", Var("x"), Var("z"), Var("y"), Var("w")),
			NewAtom("P", Var("x"), Var("z2"), Var("y2"), Var("w2")),
		},
		Left:  "z",
		Right: "z2",
	}
	if err := egd.Validate(tgt, nil); err != nil {
		t.Errorf("valid egd rejected: %v", err)
	}
	bad := egd
	bad.Left = "nope"
	if err := bad.Validate(tgt, nil); err == nil {
		t.Error("egd equating unknown variable accepted")
	}
	if got := egd.String(); !strings.Contains(got, "z = z2") {
		t.Errorf("egd String = %q", got)
	}
}

func TestDisjunctiveTGDValidate(t *testing.T) {
	tgt := rel.SchemaOf("Ep", 2, "C", 2)
	src := rel.SchemaOf("R", 1, "B", 1, "G", 1)
	d := DisjunctiveTGD{
		Label: "3col",
		Body:  []Atom{NewAtom("Ep", Var("x"), Var("y")), NewAtom("C", Var("x"), Var("u")), NewAtom("C", Var("y"), Var("v"))},
		Disjuncts: [][]Atom{
			{NewAtom("R", Var("u")), NewAtom("B", Var("v"))},
			{NewAtom("R", Var("u")), NewAtom("G", Var("v"))},
		},
	}
	if err := d.Validate(tgt, src); err != nil {
		t.Errorf("valid disjunctive tgd rejected: %v", err)
	}
	if got := d.String(); !strings.Contains(got, " | ") {
		t.Errorf("disjunctive String = %q", got)
	}
	empty := DisjunctiveTGD{Label: "x", Body: d.Body}
	if err := empty.Validate(tgt, src); err == nil {
		t.Error("disjunct-free tgd accepted")
	}
}

func TestDependencyFilters(t *testing.T) {
	deps := []Dependency{pathTGD(), EGD{Label: "e", Body: []Atom{NewAtom("H", Var("x"), Var("y"))}, Left: "x", Right: "y"}}
	if len(TGDs(deps)) != 1 {
		t.Error("TGDs filter wrong")
	}
	if len(EGDs(deps)) != 1 {
		t.Error("EGDs filter wrong")
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("P", Var("x"), Cst("c"), Var("x"), Var("y"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Errorf("Vars = %v", vars)
	}
	if got := a.String(); got != "P(x, 'c', x, y)" {
		t.Errorf("atom String = %q", got)
	}
}

func TestTermValue(t *testing.T) {
	if Cst("a").Value() != rel.Const("a") {
		t.Error("Cst Value mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("Value on variable must panic")
		}
	}()
	_ = Var("x").Value()
}
