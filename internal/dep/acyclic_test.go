package dep

import "testing"

func TestFullTGDsWeaklyAcyclic(t *testing.T) {
	// Sets of full tgds are always weakly acyclic.
	tgds := []TGD{
		{
			Label: "f1",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("y"), Var("x"))},
		},
		{
			Label: "f2",
			Body:  []Atom{NewAtom("B", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		},
	}
	if !WeaklyAcyclic(tgds) {
		t.Error("full tgds must be weakly acyclic")
	}
}

func TestSelfLoopExistentialNotWeaklyAcyclic(t *testing.T) {
	// T(x,y) -> exists z: T(y,z) creates a special self-edge on T.1.
	tgds := []TGD{{
		Label: "cyc",
		Body:  []Atom{NewAtom("T", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("T", Var("y"), Var("z"))},
	}}
	if WeaklyAcyclic(tgds) {
		t.Error("existential self-propagating tgd must not be weakly acyclic")
	}
}

func TestAcyclicInclusionWeaklyAcyclic(t *testing.T) {
	// A(x,y) -> exists z: B(x,z): special edge into B but no cycle.
	tgds := []TGD{{
		Label: "inc",
		Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("B", Var("x"), Var("z"))},
	}}
	if !WeaklyAcyclic(tgds) {
		t.Error("acyclic inclusion dependency must be weakly acyclic")
	}
}

func TestTwoTGDCycleThroughSpecialEdge(t *testing.T) {
	// A(x,y) -> exists z: B(x,z) and B(x,y) -> A(y,x):
	// special A.0 -> B.1, ordinary B.1 -> A.0 closes the cycle.
	tgds := []TGD{
		{
			Label: "t1",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("x"), Var("z"))},
		},
		{
			Label: "t2",
			Body:  []Atom{NewAtom("B", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("A", Var("y"), Var("x"))},
		},
	}
	if WeaklyAcyclic(tgds) {
		t.Error("cycle through special edge not detected")
	}
}

func TestOrdinaryCycleStillWeaklyAcyclic(t *testing.T) {
	// A cycle with no special edge is allowed: A(x,y) -> B(x,y),
	// B(x,y) -> A(x,y).
	tgds := []TGD{
		{
			Label: "t1",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("x"), Var("y"))},
		},
		{
			Label: "t2",
			Body:  []Atom{NewAtom("B", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		},
	}
	if !WeaklyAcyclic(tgds) {
		t.Error("ordinary cycle must be weakly acyclic")
	}
}

func TestDependencyGraphEdges(t *testing.T) {
	tgds := []TGD{{
		Label: "t",
		Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("B", Var("x"), Var("z"))},
	}}
	g := BuildDependencyGraph(tgds)
	if !g.HasOrdinaryEdge(Position{"A", 0}, Position{"B", 0}) {
		t.Error("missing ordinary edge A.0 -> B.0")
	}
	if !g.HasSpecialEdge(Position{"A", 0}, Position{"B", 1}) {
		t.Error("missing special edge A.0 -> B.1")
	}
	// y does not occur in the head: it contributes no edges.
	if g.HasSpecialEdge(Position{"A", 1}, Position{"B", 1}) {
		t.Error("variable absent from head contributed an edge")
	}
	if len(g.Nodes()) != 4 {
		t.Errorf("graph has %d nodes, want 4", len(g.Nodes()))
	}
}

func TestWeakAcyclicityChainDepth(t *testing.T) {
	// A chain T0 -> T1 -> ... -> Tk with existentials is weakly acyclic
	// for any depth.
	var tgds []TGD
	names := []string{"T0", "T1", "T2", "T3", "T4"}
	for i := 0; i+1 < len(names); i++ {
		tgds = append(tgds, TGD{
			Label: "chain",
			Body:  []Atom{NewAtom(names[i], Var("x"), Var("y"))},
			Head:  []Atom{NewAtom(names[i+1], Var("y"), Var("z"))},
		})
	}
	if !WeaklyAcyclic(tgds) {
		t.Error("existential chain must be weakly acyclic")
	}
}

func TestConstantsContributeNoEdges(t *testing.T) {
	tgds := []TGD{{
		Label: "c",
		Body:  []Atom{NewAtom("A", Cst("a"), Var("y"))},
		Head:  []Atom{NewAtom("A", Var("y"), Var("z"))},
	}}
	// y at A.1 occurs in head at A.0 (ordinary) and z at A.1 (special):
	// special edge A.1 -> A.1 is a self-loop -> not weakly acyclic.
	if WeaklyAcyclic(tgds) {
		t.Error("special self-loop must be detected")
	}
	g := BuildDependencyGraph(tgds)
	if g.HasOrdinaryEdge(Position{"A", 0}, Position{"A", 0}) {
		t.Error("constant position contributed an edge")
	}
}
