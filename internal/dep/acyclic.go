package dep

import (
	"fmt"
	"sort"
)

// Position identifies an attribute position (R, i) of a relation symbol:
// the i-th column (0-based) of relation Rel.
type Position struct {
	Rel string
	Idx int
}

// String renders the position as R.i.
func (p Position) String() string { return fmt.Sprintf("%s.%d", p.Rel, p.Idx) }

// DependencyGraph is the position graph of Definition 5: nodes are
// positions, edges are ordinary or special. There can be both an
// ordinary and a special edge between the same pair of nodes.
type DependencyGraph struct {
	nodes    map[Position]bool
	ordinary map[Position]map[Position]bool
	special  map[Position]map[Position]bool
}

// BuildDependencyGraph constructs the dependency graph of a set of tgds
// per Definition 5 of the paper:
//
// For every tgd body(x) -> exists y head(x, y), and every body variable x
// that occurs in the head: for every occurrence of x at a body position
// (R, Ai) add an ordinary edge to every position (S, Bj) where x occurs
// in the head, and a special edge to every position (T, Ck) where an
// existentially quantified variable occurs in the head.
func BuildDependencyGraph(tgds []TGD) *DependencyGraph {
	g := &DependencyGraph{
		nodes:    make(map[Position]bool),
		ordinary: make(map[Position]map[Position]bool),
		special:  make(map[Position]map[Position]bool),
	}
	for _, d := range tgds {
		for _, a := range d.Body {
			for i := range a.Args {
				g.nodes[Position{a.Rel, i}] = true
			}
		}
		for _, a := range d.Head {
			for i := range a.Args {
				g.nodes[Position{a.Rel, i}] = true
			}
		}
		bodyVars := varSet(d.Body)
		headVarOcc := make(map[string][]Position)
		var existPositions []Position
		for _, a := range d.Head {
			for i, t := range a.Args {
				if t.IsConst {
					continue
				}
				pos := Position{a.Rel, i}
				if bodyVars[t.Name] {
					headVarOcc[t.Name] = append(headVarOcc[t.Name], pos)
				} else {
					existPositions = append(existPositions, pos)
				}
			}
		}
		for _, a := range d.Body {
			for i, t := range a.Args {
				if t.IsConst {
					continue
				}
				// Only body variables that occur in the head contribute
				// edges.
				if _, occurs := headVarOcc[t.Name]; !occurs {
					continue
				}
				from := Position{a.Rel, i}
				for _, to := range headVarOcc[t.Name] {
					g.addEdge(from, to, false)
				}
				for _, to := range existPositions {
					g.addEdge(from, to, true)
				}
			}
		}
	}
	return g
}

func (g *DependencyGraph) addEdge(from, to Position, special bool) {
	m := g.ordinary
	if special {
		m = g.special
	}
	if m[from] == nil {
		m[from] = make(map[Position]bool)
	}
	m[from][to] = true
}

// Nodes returns the graph's positions in sorted order.
func (g *DependencyGraph) Nodes() []Position {
	out := make([]Position, 0, len(g.nodes))
	for p := range g.nodes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}

// HasOrdinaryEdge reports whether there is an ordinary edge from a to b.
func (g *DependencyGraph) HasOrdinaryEdge(a, b Position) bool {
	return g.ordinary[a][b]
}

// HasSpecialEdge reports whether there is a special edge from a to b.
func (g *DependencyGraph) HasSpecialEdge(a, b Position) bool {
	return g.special[a][b]
}

// HasCycleThroughSpecialEdge reports whether the graph contains a cycle
// that traverses at least one special edge. Per Definition 5, a set of
// tgds is weakly acyclic iff its dependency graph has no such cycle.
//
// The check: for every special edge (u, v), the set is not weakly
// acyclic iff u is reachable from v (using edges of either kind), which
// closes a cycle through the special edge. We compute reachability by
// DFS from each special-edge head; the graph is small (positions of a
// fixed setting), so this is cheap.
func (g *DependencyGraph) HasCycleThroughSpecialEdge() bool {
	for u, tos := range g.special {
		for v := range tos {
			if g.reaches(v, u) {
				return true
			}
		}
	}
	return false
}

func (g *DependencyGraph) reaches(from, to Position) bool {
	if from == to {
		return true
	}
	seen := map[Position]bool{from: true}
	stack := []Position{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, succs := range []map[Position]map[Position]bool{g.ordinary, g.special} {
			for next := range succs[cur] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
	}
	return false
}

// WeaklyAcyclic reports whether the set of tgds is weakly acyclic
// (Definition 5). Weakly acyclic sets include all sets of full tgds and
// all acyclic sets of inclusion dependencies; the chase with a weakly
// acyclic set terminates in polynomially many steps.
func WeaklyAcyclic(tgds []TGD) bool {
	return !BuildDependencyGraph(tgds).HasCycleThroughSpecialEdge()
}
