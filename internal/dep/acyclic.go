package dep

import (
	"fmt"
	"sort"
	"strings"
)

// Position identifies an attribute position (R, i) of a relation symbol:
// the i-th column (0-based) of relation Rel.
type Position struct {
	Rel string
	Idx int
}

// String renders the position as R.i.
func (p Position) String() string { return fmt.Sprintf("%s.%d", p.Rel, p.Idx) }

// DependencyGraph is the position graph of Definition 5: nodes are
// positions, edges are ordinary or special. There can be both an
// ordinary and a special edge between the same pair of nodes.
type DependencyGraph struct {
	nodes    map[Position]bool
	ordinary map[Position]map[Position]bool
	special  map[Position]map[Position]bool
	// provenance maps each edge to the labels of the tgds that
	// contributed it, for diagnostics.
	provenance map[graphEdge][]string
}

// graphEdge identifies one edge of the dependency graph.
type graphEdge struct {
	From, To Position
	Special  bool
}

// BuildDependencyGraph constructs the dependency graph of a set of tgds
// per Definition 5 of the paper:
//
// For every tgd body(x) -> exists y head(x, y), and every body variable x
// that occurs in the head: for every occurrence of x at a body position
// (R, Ai) add an ordinary edge to every position (S, Bj) where x occurs
// in the head, and a special edge to every position (T, Ck) where an
// existentially quantified variable occurs in the head.
func BuildDependencyGraph(tgds []TGD) *DependencyGraph {
	g := &DependencyGraph{
		nodes:      make(map[Position]bool),
		ordinary:   make(map[Position]map[Position]bool),
		special:    make(map[Position]map[Position]bool),
		provenance: make(map[graphEdge][]string),
	}
	for _, d := range tgds {
		for _, a := range d.Body {
			for i := range a.Args {
				g.nodes[Position{a.Rel, i}] = true
			}
		}
		for _, a := range d.Head {
			for i := range a.Args {
				g.nodes[Position{a.Rel, i}] = true
			}
		}
		bodyVars := varSet(d.Body)
		headVarOcc := make(map[string][]Position)
		var existPositions []Position
		for _, a := range d.Head {
			for i, t := range a.Args {
				if t.IsConst {
					continue
				}
				pos := Position{a.Rel, i}
				if bodyVars[t.Name] {
					headVarOcc[t.Name] = append(headVarOcc[t.Name], pos)
				} else {
					existPositions = append(existPositions, pos)
				}
			}
		}
		for _, a := range d.Body {
			for i, t := range a.Args {
				if t.IsConst {
					continue
				}
				// Only body variables that occur in the head contribute
				// edges.
				if _, occurs := headVarOcc[t.Name]; !occurs {
					continue
				}
				from := Position{a.Rel, i}
				for _, to := range headVarOcc[t.Name] {
					g.addEdge(from, to, false, d.Label)
				}
				for _, to := range existPositions {
					g.addEdge(from, to, true, d.Label)
				}
			}
		}
	}
	return g
}

func (g *DependencyGraph) addEdge(from, to Position, special bool, label string) {
	m := g.ordinary
	if special {
		m = g.special
	}
	if m[from] == nil {
		m[from] = make(map[Position]bool)
	}
	m[from][to] = true
	key := graphEdge{From: from, To: to, Special: special}
	for _, l := range g.provenance[key] {
		if l == label {
			return
		}
	}
	g.provenance[key] = append(g.provenance[key], label)
}

// EdgeTGDs returns the labels of the tgds that contributed the edge, in
// insertion order; nil when the edge does not exist.
func (g *DependencyGraph) EdgeTGDs(from, to Position, special bool) []string {
	return g.provenance[graphEdge{From: from, To: to, Special: special}]
}

// Nodes returns the graph's positions in sorted order.
func (g *DependencyGraph) Nodes() []Position {
	out := make([]Position, 0, len(g.nodes))
	for p := range g.nodes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Idx < out[j].Idx
	})
	return out
}

// HasOrdinaryEdge reports whether there is an ordinary edge from a to b.
func (g *DependencyGraph) HasOrdinaryEdge(a, b Position) bool {
	return g.ordinary[a][b]
}

// HasSpecialEdge reports whether there is a special edge from a to b.
func (g *DependencyGraph) HasSpecialEdge(a, b Position) bool {
	return g.special[a][b]
}

// HasCycleThroughSpecialEdge reports whether the graph contains a cycle
// that traverses at least one special edge. Per Definition 5, a set of
// tgds is weakly acyclic iff its dependency graph has no such cycle.
//
// The check: for every special edge (u, v), the set is not weakly
// acyclic iff u is reachable from v (using edges of either kind), which
// closes a cycle through the special edge. We compute reachability by
// DFS from each special-edge head; the graph is small (positions of a
// fixed setting), so this is cheap.
func (g *DependencyGraph) HasCycleThroughSpecialEdge() bool {
	for u, tos := range g.special {
		for v := range tos {
			if g.reaches(v, u) {
				return true
			}
		}
	}
	return false
}

func (g *DependencyGraph) reaches(from, to Position) bool {
	if from == to {
		return true
	}
	seen := map[Position]bool{from: true}
	stack := []Position{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, succs := range []map[Position]map[Position]bool{g.ordinary, g.special} {
			for next := range succs[cur] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					//lint:ignore pdxlint/mapdet DFS worklist for a boolean reachability query; visit order cannot affect the answer
					stack = append(stack, next)
				}
			}
		}
	}
	return false
}

// WeaklyAcyclic reports whether the set of tgds is weakly acyclic
// (Definition 5). Weakly acyclic sets include all sets of full tgds and
// all acyclic sets of inclusion dependencies; the chase with a weakly
// acyclic set terminates in polynomially many steps.
func WeaklyAcyclic(tgds []TGD) bool {
	return !BuildDependencyGraph(tgds).HasCycleThroughSpecialEdge()
}

// CycleEdge is one edge of a witness cycle in the dependency graph.
type CycleEdge struct {
	From, To Position
	// Special marks the Definition 5 special edges (target of an
	// existentially quantified variable).
	Special bool
	// TGDs are the labels of the tgds that contributed the edge.
	TGDs []string
}

// String renders the edge as "R.1 → S.0" (ordinary) or "R.1 →̂ S.0"
// (special).
func (e CycleEdge) String() string {
	arrow := " → "
	if e.Special {
		arrow = " →̂ "
	}
	return e.From.String() + arrow + e.To.String()
}

// FindSpecialCycle returns a cycle through at least one special edge,
// if the graph has one: the witness that the tgd set is not weakly
// acyclic. The cycle starts with a special edge and each edge's To is
// the next edge's From (the last edge closes back to the first From).
// The result is deterministic: special edges are tried in sorted order
// and the shortest closing path is returned.
func (g *DependencyGraph) FindSpecialCycle() ([]CycleEdge, bool) {
	var specials []graphEdge
	for u, tos := range g.special {
		for v := range tos {
			specials = append(specials, graphEdge{From: u, To: v, Special: true})
		}
	}
	sort.Slice(specials, func(i, j int) bool {
		a, b := specials[i], specials[j]
		if a.From != b.From {
			return positionLess(a.From, b.From)
		}
		return positionLess(a.To, b.To)
	})
	for _, sp := range specials {
		path, ok := g.shortestPath(sp.To, sp.From)
		if !ok {
			continue
		}
		cycle := []CycleEdge{{From: sp.From, To: sp.To, Special: true, TGDs: g.provenance[sp]}}
		for i := 0; i+1 < len(path); i++ {
			from, to := path[i], path[i+1]
			special := !g.ordinary[from][to] // prefer the ordinary edge when both exist
			key := graphEdge{From: from, To: to, Special: special}
			cycle = append(cycle, CycleEdge{From: from, To: to, Special: special, TGDs: g.provenance[key]})
		}
		return cycle, true
	}
	return nil, false
}

// shortestPath returns the node sequence of a shortest path from one
// position to another over edges of either kind (the one-node path when
// from == to), exploring neighbours in sorted order for determinism.
func (g *DependencyGraph) shortestPath(from, to Position) ([]Position, bool) {
	if from == to {
		return []Position{from}, true
	}
	prev := map[Position]Position{from: from}
	frontier := []Position{from}
	for len(frontier) > 0 {
		var next []Position
		for _, cur := range frontier {
			var succs []Position
			for n := range g.ordinary[cur] {
				succs = append(succs, n)
			}
			for n := range g.special[cur] {
				if !g.ordinary[cur][n] {
					succs = append(succs, n)
				}
			}
			sort.Slice(succs, func(i, j int) bool { return positionLess(succs[i], succs[j]) })
			for _, n := range succs {
				if _, seen := prev[n]; seen {
					continue
				}
				prev[n] = cur
				if n == to {
					return rebuildPath(prev, from, to), true
				}
				next = append(next, n)
			}
		}
		frontier = next
	}
	return nil, false
}

func rebuildPath(prev map[Position]Position, from, to Position) []Position {
	var rev []Position
	for cur := to; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == from {
			break
		}
	}
	path := make([]Position, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

func positionLess(a, b Position) bool {
	if a.Rel != b.Rel {
		return a.Rel < b.Rel
	}
	return a.Idx < b.Idx
}

// WeaklyAcyclicWitness decides weak acyclicity and, when the set is not
// weakly acyclic, returns a witness cycle through a special edge.
// acyclic is true iff the set is weakly acyclic (cycle is then nil).
func WeaklyAcyclicWitness(tgds []TGD) (cycle []CycleEdge, acyclic bool) {
	c, found := BuildDependencyGraph(tgds).FindSpecialCycle()
	if found {
		return c, false
	}
	return nil, true
}

// FormatCycle renders a witness cycle as a chain of positions, e.g.
// "H.1 →̂ H.0 → H.1".
func FormatCycle(cycle []CycleEdge) string {
	if len(cycle) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(cycle[0].From.String())
	for _, e := range cycle {
		if e.Special {
			b.WriteString(" →̂ ")
		} else {
			b.WriteString(" → ")
		}
		b.WriteString(e.To.String())
	}
	return b.String()
}
