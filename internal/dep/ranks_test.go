package dep

import "testing"

func TestRanksFullTgdsAreZero(t *testing.T) {
	tgds := []TGD{
		{
			Label: "f1",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("y"), Var("x"))},
		},
		{
			Label: "f2",
			Body:  []Atom{NewAtom("B", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		},
	}
	ranks, err := PositionRanks(tgds)
	if err != nil {
		t.Fatal(err)
	}
	for p, r := range ranks {
		if r != 0 {
			t.Errorf("rank(%s) = %d, want 0 for full tgds", p, r)
		}
	}
	if m, _ := MaxRank(tgds); m != 0 {
		t.Errorf("MaxRank = %d", m)
	}
}

func TestRanksChainDepth(t *testing.T) {
	// T0 -> T1 -> T2 -> T3 with an existential per hop: the existential
	// position of T_i has rank i.
	var tgds []TGD
	names := []string{"T0", "T1", "T2", "T3"}
	for i := 0; i+1 < len(names); i++ {
		tgds = append(tgds, TGD{
			Label: "chain",
			Body:  []Atom{NewAtom(names[i], Var("x"), Var("y"))},
			Head:  []Atom{NewAtom(names[i+1], Var("y"), Var("z"))},
		})
	}
	ranks, err := PositionRanks(tgds)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 1; lvl < len(names); lvl++ {
		p := Position{names[lvl], 1} // z lands at position 1
		if ranks[p] != lvl {
			t.Errorf("rank(%s) = %d, want %d", p, ranks[p], lvl)
		}
	}
	if m, _ := MaxRank(tgds); m != 3 {
		t.Errorf("MaxRank = %d, want 3", m)
	}
}

func TestRanksRejectNonWeaklyAcyclic(t *testing.T) {
	tgds := []TGD{{
		Label: "cyc",
		Body:  []Atom{NewAtom("T", Var("x"), Var("y"))},
		Head:  []Atom{NewAtom("T", Var("y"), Var("z"))},
	}}
	if _, err := PositionRanks(tgds); err == nil {
		t.Error("non-weakly-acyclic set accepted")
	}
	if _, err := MaxRank(tgds); err == nil {
		t.Error("MaxRank accepted a cyclic set")
	}
}

func TestRanksOrdinaryCycleAllowed(t *testing.T) {
	// Ordinary cycle (full tgds both ways) feeding an existential: the
	// cycle itself is rank 0, the existential target is rank 1.
	tgds := []TGD{
		{
			Label: "f1",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("B", Var("x"), Var("y"))},
		},
		{
			Label: "f2",
			Body:  []Atom{NewAtom("B", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("A", Var("x"), Var("y"))},
		},
		{
			Label: "ex",
			Body:  []Atom{NewAtom("A", Var("x"), Var("y"))},
			Head:  []Atom{NewAtom("C", Var("x"), Var("w"))},
		},
	}
	ranks, err := PositionRanks(tgds)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[Position{"A", 0}] != 0 || ranks[Position{"B", 0}] != 0 {
		t.Errorf("cycle positions should be rank 0: %v", ranks)
	}
	if ranks[Position{"C", 1}] != 1 {
		t.Errorf("rank(C.1) = %d, want 1", ranks[Position{"C", 1}])
	}
}

func TestRanksDiamond(t *testing.T) {
	// Two paths into D.1: one with 1 special edge, one with 2; the rank
	// takes the max.
	tgds := []TGD{
		{ // A.0 -> D.1 special via one hop path A->D
			Label: "short",
			Body:  []Atom{NewAtom("A", Var("x"))},
			Head:  []Atom{NewAtom("D", Var("x"), Var("w"))},
		},
		{ // A.0 -> M.1 special
			Label: "mid",
			Body:  []Atom{NewAtom("A", Var("x"))},
			Head:  []Atom{NewAtom("M", Var("x"), Var("w"))},
		},
		{ // M.1 -> D.1 special (w existential, m propagated)
			Label: "long",
			Body:  []Atom{NewAtom("M", Var("x"), Var("m"))},
			Head:  []Atom{NewAtom("D", Var("m"), Var("w"))},
		},
	}
	ranks, err := PositionRanks(tgds)
	if err != nil {
		t.Fatal(err)
	}
	if ranks[Position{"D", 1}] != 2 {
		t.Errorf("rank(D.1) = %d, want 2 (long path)", ranks[Position{"D", 1}])
	}
	if ranks[Position{"D", 0}] != 1 {
		t.Errorf("rank(D.0) = %d, want 1 (carries M's existential)", ranks[Position{"D", 0}])
	}
}
