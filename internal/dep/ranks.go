package dep

import "fmt"

// PositionRanks computes, for a weakly acyclic set of tgds, the rank of
// every position: the maximum number of special edges on any path of
// the dependency graph ending at that position. Ranks are the quantity
// behind the polynomial chase bound of Fagin et al. (and hence the
// paper's Lemma 1): values created at a rank-r position are at most
// polynomially many in the input, with the polynomial degree growing
// with r.
//
// It returns an error when the set is not weakly acyclic (some cycle
// goes through a special edge), in which case ranks are unbounded.
//
// Algorithm: Tarjan-style strongly connected components of the
// dependency graph; weak acyclicity means no special edge connects two
// positions of the same component. The condensation is a DAG, over
// which the longest special-edge count is a simple memoized traversal.
func PositionRanks(tgds []TGD) (map[Position]int, error) {
	g := BuildDependencyGraph(tgds)
	nodes := g.Nodes()
	index := make(map[Position]int, len(nodes))
	for i, p := range nodes {
		index[p] = i
	}

	// adjacency with special flags
	type edge struct {
		to      int
		special bool
	}
	adj := make([][]edge, len(nodes))
	for i, p := range nodes {
		for _, q := range nodes {
			if g.HasOrdinaryEdge(p, q) {
				adj[i] = append(adj[i], edge{index[q], false})
			}
			if g.HasSpecialEdge(p, q) {
				adj[i] = append(adj[i], edge{index[q], true})
			}
		}
	}

	// Iterative Tarjan SCC.
	const unvisited = -1
	idx := make([]int, len(nodes))
	low := make([]int, len(nodes))
	comp := make([]int, len(nodes))
	onStack := make([]bool, len(nodes))
	for i := range idx {
		idx[i], comp[i] = unvisited, unvisited
	}
	var stack []int
	counter, nComp := 0, 0

	type frame struct{ v, ei int }
	for start := range nodes {
		if idx[start] != unvisited {
			continue
		}
		frames := []frame{{start, 0}}
		idx[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if idx[w] == unvisited {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == idx[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	// Weak acyclicity check at the component level, plus condensed
	// edges.
	type cedge struct {
		to      int
		special bool
	}
	cadj := make([][]cedge, nComp)
	for v := range nodes {
		for _, e := range adj[v] {
			if comp[v] == comp[e.to] {
				if e.special {
					return nil, fmt.Errorf("dep: not weakly acyclic: special edge inside a cycle at %s", nodes[v])
				}
				continue
			}
			cadj[comp[v]] = append(cadj[comp[v]], cedge{comp[e.to], e.special})
		}
	}

	// Longest special-edge count INTO each component: reverse view via
	// memoized forward computation of "max specials along any path
	// ending here" = max over incoming (rank(src) + special). Compute
	// with a reverse adjacency.
	rin := make([][]cedge, nComp)
	for c, outs := range cadj {
		for _, e := range outs {
			rin[e.to] = append(rin[e.to], cedge{c, e.special})
		}
	}
	rank := make([]int, nComp)
	state := make([]int, nComp) // 0 = unset, 1 = computing, 2 = done
	var rankOf func(c int) int
	rankOf = func(c int) int {
		if state[c] == 2 {
			return rank[c]
		}
		if state[c] == 1 {
			// Cannot happen: condensation is a DAG.
			panic("dep: cycle in condensation")
		}
		state[c] = 1
		best := 0
		for _, e := range rin[c] {
			r := rankOf(e.to)
			if e.special {
				r++
			}
			if r > best {
				best = r
			}
		}
		rank[c] = best
		state[c] = 2
		return best
	}
	out := make(map[Position]int, len(nodes))
	for i, p := range nodes {
		out[p] = rankOf(comp[i])
	}
	return out, nil
}

// MaxRank returns the largest position rank of a weakly acyclic set of
// tgds, or an error when the set is not weakly acyclic. Sets of full
// tgds have rank 0; acyclic inclusion dependency chains of depth d have
// rank d.
func MaxRank(tgds []TGD) (int, error) {
	ranks, err := PositionRanks(tgds)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, r := range ranks {
		if r > max {
			max = r
		}
	}
	return max, nil
}
