package lint

import (
	"repro/internal/dep"
)

// deadcodeAnalyzer finds declared-but-unused relations and dependencies
// that can never fire: a dependency whose body mentions a target
// relation that no source-to-target tgd (directly or through target
// tgds) can ever populate is dead weight when exchange starts from a
// source instance alone.
var deadcodeAnalyzer = &Analyzer{
	Name:   "deadcode",
	Doc:    "unused relations and dependencies unfirable from the source schema",
	Checks: []string{"unused-relation", "unfirable-tgd"},
	Run:    runDeadcode,
}

func runDeadcode(p *Pass) {
	s := p.Setting

	used := make(map[string]bool)
	mark := func(atoms []dep.Atom) {
		for _, a := range atoms {
			used[a.Rel] = true
		}
	}
	for _, d := range s.ST {
		mark(d.Body)
		mark(d.Head)
	}
	for _, d := range s.TS {
		mark(d.Body)
		mark(d.Head)
	}
	for _, d := range s.TSDisj {
		mark(d.Body)
		for _, disj := range d.Disjuncts {
			mark(disj)
		}
	}
	for _, td := range s.T {
		switch d := td.(type) {
		case dep.TGD:
			mark(d.Body)
			mark(d.Head)
		case dep.EGD:
			mark(d.Body)
		}
	}
	for _, name := range s.Source.Relations() {
		if !used[name] {
			p.reportUnused(name, "source", p.Info.SourceDecls[name])
		}
	}
	for _, name := range s.Target.Relations() {
		if !used[name] {
			p.reportUnused(name, "target", p.Info.TargetDecls[name])
		}
	}

	// Target relations reachable from the source schema: seeded by the
	// heads of the s-t tgds, closed under the target tgds.
	reach := make(map[string]bool)
	for _, d := range s.ST {
		for _, a := range d.Head {
			reach[a.Rel] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, td := range s.T {
			d, ok := td.(dep.TGD)
			if !ok || !allReachable(d.Body, reach) {
				continue
			}
			for _, a := range d.Head {
				if !reach[a.Rel] {
					reach[a.Rel] = true
					changed = true
				}
			}
		}
	}

	for _, d := range s.TS {
		p.reportUnfirable(d.Label, d.Body, d.Span, reach)
	}
	for _, d := range s.TSDisj {
		p.reportUnfirable(d.Label, d.Body, d.Span, reach)
	}
	for _, td := range s.T {
		switch d := td.(type) {
		case dep.TGD:
			p.reportUnfirable(d.Label, d.Body, d.Span, reach)
		case dep.EGD:
			p.reportUnfirable(d.Label, d.Body, d.Span, reach)
		}
	}
}

func allReachable(atoms []dep.Atom, reach map[string]bool) bool {
	for _, a := range atoms {
		if !reach[a.Rel] {
			return false
		}
	}
	return true
}

func (p *Pass) reportUnused(name, side string, span dep.Span) {
	p.Report(Diagnostic{
		Check:    "unused-relation",
		Severity: SeverityInfo,
		Line:     span.Line,
		Col:      span.Col,
		Message:  name + " is declared in the " + side + " schema but appears in no dependency",
		Witness:  &Witness{Relation: name},
	})
}

// reportUnfirable flags a dependency whose body mentions a target
// relation no s-t tgd can reach. Body atoms over the *source* schema
// (e.g. the head side of mixed declarations) are always satisfiable and
// ignored here.
func (p *Pass) reportUnfirable(label string, body []dep.Atom, span dep.Span, reach map[string]bool) {
	for _, a := range body {
		if !p.Setting.Target.Has(a.Rel) {
			continue // not a target relation; not subject to reachability
		}
		if reach[a.Rel] {
			continue
		}
		at := a.Span
		if !at.Known() {
			at = span
		}
		p.Report(Diagnostic{
			Check:    "unfirable-tgd",
			Severity: SeverityInfo,
			Line:     at.Line,
			Col:      at.Col,
			Message: label + ": body atom " + a.String() + " can never be satisfied — no source-to-target tgd populates " +
				a.Rel + " (assuming exchange starts from a source instance alone)",
			Witness: &Witness{TGD: label, Atom: a.String(), Relation: a.Rel},
		})
		return // one finding per dependency is enough
	}
}
