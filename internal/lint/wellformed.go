package lint

import (
	"fmt"
	"strings"

	"repro/internal/dep"
	"repro/internal/rel"
)

// wellformedAnalyzer re-checks everything core.Setting.Validate checks —
// but with source positions, and without stopping at the first problem —
// plus a few shape warnings Validate is silent about.
var wellformedAnalyzer = &Analyzer{
	Name: "wellformed",
	Doc:  "schema and dependency well-formedness with positions",
	Checks: []string{
		"duplicate-relation", "schema-overlap", "undeclared-relation",
		"arity-mismatch", "egd-unbound-var", "duplicate-atom", "implicit-exists",
	},
	Run: runWellformed,
}

func runWellformed(p *Pass) {
	s := p.Setting

	for _, d := range p.Info.DeclDiags {
		sev := SeverityWarn
		if d.Conflict {
			sev = SeverityError
		}
		p.Reportf("duplicate-relation", sev, d.Span, "%s", d.Msg)
	}

	for _, name := range s.Source.Relations() {
		if s.Target.Has(name) {
			span := p.Info.TargetDecls[name]
			p.Report(Diagnostic{
				Check:    "schema-overlap",
				Severity: SeverityError,
				Line:     span.Line,
				Col:      span.Col,
				Message:  fmt.Sprintf("relation %s is declared in both the source and the target schema; peer schemas must be disjoint", name),
				Witness:  &Witness{Relation: name},
			})
		}
	}

	for _, d := range s.ST {
		p.checkAtoms(d.Label, d.Body, s.Source, "source")
		p.checkAtoms(d.Label, d.Head, s.Target, "target")
		p.checkShape(d)
	}
	for _, d := range s.TS {
		p.checkAtoms(d.Label, d.Body, s.Target, "target")
		p.checkAtoms(d.Label, d.Head, s.Source, "source")
		p.checkShape(d)
	}
	for _, d := range s.TSDisj {
		p.checkAtoms(d.Label, d.Body, s.Target, "target")
		for _, disj := range d.Disjuncts {
			p.checkAtoms(d.Label, disj, s.Source, "source")
		}
	}
	for _, td := range s.T {
		switch d := td.(type) {
		case dep.TGD:
			p.checkAtoms(d.Label, d.Body, s.Target, "target")
			p.checkAtoms(d.Label, d.Head, s.Target, "target")
			p.checkShape(d)
		case dep.EGD:
			p.checkAtoms(d.Label, d.Body, s.Target, "target")
			vars := make(map[string]bool)
			for _, a := range d.Body {
				for _, t := range a.Args {
					if !t.IsConst {
						vars[t.Name] = true
					}
				}
			}
			for _, v := range []string{d.Left, d.Right} {
				if !vars[v] {
					p.Report(Diagnostic{
						Check:    "egd-unbound-var",
						Severity: SeverityError,
						Line:     d.Span.Line,
						Col:      d.Span.Col,
						Message:  fmt.Sprintf("egd %s equates variable %s that does not occur in its body", d.Label, v),
						Witness:  &Witness{TGD: d.Label, Vars: []string{v}},
					})
				}
			}
		}
	}
}

// checkAtoms verifies that every atom names a declared relation of the
// expected schema with the declared arity.
func (p *Pass) checkAtoms(label string, atoms []dep.Atom, schema *rel.Schema, side string) {
	for _, a := range atoms {
		ar, ok := schema.Arity(a.Rel)
		if !ok {
			p.Report(Diagnostic{
				Check:    "undeclared-relation",
				Severity: SeverityError,
				Line:     a.Span.Line,
				Col:      a.Span.Col,
				Message:  fmt.Sprintf("%s: relation %s is not declared in the %s schema {%s}", label, a.Rel, side, schema),
				Witness:  &Witness{TGD: label, Atom: a.String(), Relation: a.Rel},
			})
			continue
		}
		if ar != len(a.Args) {
			p.Report(Diagnostic{
				Check:    "arity-mismatch",
				Severity: SeverityError,
				Line:     a.Span.Line,
				Col:      a.Span.Col,
				Message:  fmt.Sprintf("%s: atom %s has %d argument(s), but relation %s is declared with arity %d", label, a, len(a.Args), a.Rel, ar),
				Witness:  &Witness{TGD: label, Atom: a.String(), Relation: a.Rel},
			})
		}
	}
}

// checkShape flags duplicate body conjuncts and implicitly existential
// head variables of a tgd.
func (p *Pass) checkShape(d dep.TGD) {
	seen := make(map[string]bool, len(d.Body))
	for _, a := range d.Body {
		key := a.String()
		if seen[key] {
			p.Report(Diagnostic{
				Check:    "duplicate-atom",
				Severity: SeverityWarn,
				Line:     a.Span.Line,
				Col:      a.Span.Col,
				Message:  fmt.Sprintf("%s: duplicate body conjunct %s", d.Label, a),
				Witness:  &Witness{TGD: d.Label, Atom: a.String()},
			})
		}
		seen[key] = true
	}
	if ex := d.ExistentialVars(); len(ex) > 0 && !d.ExplicitExists {
		// Head variables absent from the body are existential either
		// way, but an explicit clause distinguishes intent from typo.
		atom := headAtomWith(d.Head, ex[0])
		p.Report(Diagnostic{
			Check:    "implicit-exists",
			Severity: SeverityInfo,
			Line:     atom.Span.Line,
			Col:      atom.Span.Col,
			Message: fmt.Sprintf("%s: head variable(s) %s do not occur in the body and are implicitly existential; write 'exists %s:' to make the quantification explicit",
				d.Label, strings.Join(ex, ", "), strings.Join(ex, ", ")),
			Witness: &Witness{TGD: d.Label, Atom: atom.String(), Vars: ex},
		})
	}
}

// headAtomWith returns the first head atom containing the variable,
// falling back to the first head atom.
func headAtomWith(head []dep.Atom, v string) dep.Atom {
	for _, a := range head {
		for _, t := range a.Args {
			if !t.IsConst && t.Name == v {
				return a
			}
		}
	}
	if len(head) > 0 {
		return head[0]
	}
	return dep.Atom{}
}
