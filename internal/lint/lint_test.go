package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// find returns the diagnostics with the given check ID.
func find(r *Report, check string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Check == check {
			out = append(out, d)
		}
	}
	return out
}

func TestVetCleanSetting(t *testing.T) {
	src := "setting clean\n" +
		"source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n"
	r := Vet(src, "clean.pde")
	if len(r.Diagnostics) != 0 {
		t.Fatalf("clean setting produced diagnostics: %v", r.Diagnostics)
	}
	if r.HasErrors() {
		t.Error("HasErrors on empty report")
	}
}

// TestVetNonCtract is the acceptance scenario: on a setting outside
// C_tract, vet names the violating head atom and the marked-variable
// pair, positioned at the atom in the file.
func TestVetNonCtract(t *testing.T) {
	// The marked variables x and y (both at marked position P.0) co-occur
	// in the head conjunct S(x, y) but in different body conjuncts, so
	// neither 2.2(a) nor 2.2(b) holds; condition 2.1 fails too (two body
	// literals).
	src := "setting nonctract\n" +
		"source D/1, S/2\n" +
		"target P/2\n" +
		"st: D(c) -> exists z: P(z, c)\n" +
		"ts: P(x, c), P(y, c2) -> S(x, y)\n"
	r := Vet(src, "nonctract.pde")
	diags := find(r, "ctract-cond-2.2")
	if len(diags) != 1 {
		t.Fatalf("ctract-cond-2.2 diagnostics = %v, want exactly one", r.Diagnostics)
	}
	d := diags[0]
	if d.Severity != SeverityWarn {
		t.Errorf("severity = %s, want warn", d.Severity)
	}
	// The violating head atom S(x, y) sits on line 5 at column 26.
	if d.Line != 5 || d.Col != 26 {
		t.Errorf("position = %d:%d, want 5:26", d.Line, d.Col)
	}
	if d.Witness == nil || d.Witness.Atom != "S(x, y)" {
		t.Fatalf("witness = %+v, want atom S(x, y)", d.Witness)
	}
	if got := d.Witness.Vars; len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("witness vars = %v, want [x y]", got)
	}
	if len(d.Witness.Chains) != 2 {
		t.Errorf("witness chains = %+v, want provenance for both variables", d.Witness.Chains)
	}
	for _, c := range d.Witness.Chains {
		if len(c.MarkedBy) != 1 || c.MarkedBy[0] != "st1" {
			t.Errorf("chain %+v not marked by st1", c)
		}
	}
	if !strings.Contains(d.String(), "nonctract.pde:5:26: warn: ") {
		t.Errorf("String() = %q lacks file:line:col prefix", d.String())
	}
	if r.HasErrors() {
		t.Error("warnings must not count as errors")
	}
}

func TestVetWellformedErrors(t *testing.T) {
	src := "source E/2, E/2\n" +
		"target H/2\n" +
		"st: E(x,y,w) -> G(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n"
	r := Vet(src, "bad.pde")
	if !r.HasErrors() {
		t.Fatalf("no errors reported: %v", r.Diagnostics)
	}
	if d := find(r, "duplicate-relation"); len(d) != 1 || d[0].Line != 1 || d[0].Col != 13 {
		t.Errorf("duplicate-relation = %v, want one at 1:13", d)
	}
	if d := find(r, "arity-mismatch"); len(d) != 1 || d[0].Line != 3 || d[0].Col != 5 {
		t.Errorf("arity-mismatch = %v, want one at 3:5", d)
	}
	if d := find(r, "undeclared-relation"); len(d) != 1 || d[0].Line != 3 || d[0].Col != 17 {
		t.Errorf("undeclared-relation = %v, want one at 3:17", d)
	}
}

func TestVetSchemaOverlap(t *testing.T) {
	src := "source E/2\n" +
		"target E/2\n" +
		"st: E(x,y) -> E(x,y)\n" +
		"ts: E(x,y) -> E(x,y)\n"
	r := Vet(src, "overlap.pde")
	d := find(r, "schema-overlap")
	if len(d) != 1 || d[0].Line != 2 || d[0].Col != 8 {
		t.Fatalf("schema-overlap = %v, want one at 2:8", d)
	}
}

func TestVetWeakAcyclicityWitness(t *testing.T) {
	src := "source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n" +
		"t: H(x,y) -> exists z: H(y,z)\n"
	r := Vet(src, "cyclic.pde")
	d := find(r, "weak-acyclicity")
	if len(d) != 1 {
		t.Fatalf("weak-acyclicity = %v, want exactly one", r.Diagnostics)
	}
	if !strings.Contains(d[0].Message, "H.1 →̂ H.1") {
		t.Errorf("message %q lacks the rendered cycle", d[0].Message)
	}
	if d[0].Line != 5 {
		t.Errorf("position line = %d, want 5 (the t: line)", d[0].Line)
	}
	if d[0].Witness == nil || len(d[0].Witness.Cycle) == 0 {
		t.Errorf("witness = %+v, want a cycle", d[0].Witness)
	}
	if tc := find(r, "ctract-target-constraints"); len(tc) != 1 {
		t.Errorf("ctract-target-constraints = %v, want one (Σt nonempty)", tc)
	}
}

func TestVetDeadcode(t *testing.T) {
	src := "source E/2, U/1\n" +
		"target H/2, Z/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: Z(x,y) -> E(x,y)\n"
	r := Vet(src, "dead.pde")
	d := find(r, "unused-relation")
	if len(d) != 1 || d[0].Witness == nil || d[0].Witness.Relation != "U" {
		t.Fatalf("unused-relation = %v, want exactly U", d)
	}
	if d[0].Line != 1 || d[0].Col != 13 {
		t.Errorf("unused-relation position = %d:%d, want 1:13", d[0].Line, d[0].Col)
	}
	u := find(r, "unfirable-tgd")
	if len(u) != 1 || u[0].Witness == nil || u[0].Witness.TGD != "ts1" || u[0].Witness.Relation != "Z" {
		t.Fatalf("unfirable-tgd = %v, want ts1 blocked on Z", u)
	}
}

func TestVetDeadcodeThroughTargetTGDs(t *testing.T) {
	// Z is reachable only through the target tgd t1, so ts1 can fire.
	src := "source E/2\n" +
		"target H/2, Z/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"t: H(x,y) -> Z(y,x)\n" +
		"ts: Z(x,y) -> E(x,y)\n"
	r := Vet(src, "reach.pde")
	if u := find(r, "unfirable-tgd"); len(u) != 0 {
		t.Fatalf("unfirable-tgd = %v, want none (Z reachable via t1)", u)
	}
}

func TestVetRedundantTGD(t *testing.T) {
	src := "source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n" +
		"ts: H(x,y), H(y,z) -> exists w: E(x,w)\n"
	r := Vet(src, "red.pde")
	d := find(r, "redundant-tgd")
	if len(d) != 1 {
		t.Fatalf("redundant-tgd = %v, want exactly one", r.Diagnostics)
	}
	w := d[0].Witness
	if w == nil || w.TGD != "ts2" || len(w.ImpliedBy) != 1 || w.ImpliedBy[0] != "ts1" {
		t.Fatalf("witness = %+v, want ts2 implied by [ts1]", w)
	}
	if d[0].Severity != SeverityInfo {
		t.Errorf("severity = %s, want info", d[0].Severity)
	}
	if d[0].Line != 5 {
		t.Errorf("line = %d, want 5", d[0].Line)
	}
}

func TestVetRedundantNotOverReported(t *testing.T) {
	// Neither tgd implies the other: different head relations.
	src := "source E/2, F/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n" +
		"ts: H(x,y) -> F(x,y)\n"
	r := Vet(src, "indep.pde")
	if d := find(r, "redundant-tgd"); len(d) != 0 {
		t.Fatalf("redundant-tgd = %v, want none", d)
	}
}

func TestVetImplicitExists(t *testing.T) {
	src := "source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,w)\n" +
		"ts: H(x,y) -> E(x,y)\n"
	r := Vet(src, "impl.pde")
	d := find(r, "implicit-exists")
	if len(d) != 1 || d[0].Severity != SeverityInfo {
		t.Fatalf("implicit-exists = %v, want one info", d)
	}
	if d[0].Witness == nil || len(d[0].Witness.Vars) != 1 || d[0].Witness.Vars[0] != "w" {
		t.Errorf("witness = %+v, want var w", d[0].Witness)
	}
}

func TestVetParseError(t *testing.T) {
	r := Vet("sauce E/2\n", "syntax.pde")
	if len(r.Diagnostics) != 1 || r.Diagnostics[0].Check != "parse-error" {
		t.Fatalf("diagnostics = %v, want a single parse-error", r.Diagnostics)
	}
	if r.Diagnostics[0].Line != 1 {
		t.Errorf("parse-error line = %d, want 1", r.Diagnostics[0].Line)
	}
	if !r.HasErrors() {
		t.Error("parse errors must count as errors")
	}
}

func TestVetJSONRoundTrip(t *testing.T) {
	src := "source D/1, S/2\n" +
		"target P/2\n" +
		"st: D(c) -> exists z: P(z, c)\n" +
		"ts: P(x, c), P(y, c2) -> S(x, y)\n" +
		"t: P(x,y) -> exists w: P(y,w)\n"
	r := Vet(src, "round.pde")
	if len(r.Diagnostics) == 0 {
		t.Fatal("expected diagnostics to round-trip")
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("round trip changed the report:\n%+v\nvs\n%+v", *r, back)
	}
}

func TestVetDeterministic(t *testing.T) {
	src := "source E/2, E/2, U/1\n" +
		"target H/2, Z/2\n" +
		"st: E(x,y) -> H(x,w)\n" +
		"ts: Z(x,y) -> E(x,y)\n" +
		"ts: H(x,y) -> exists v: E(x,v)\n" +
		"t: H(x,y) -> exists z: H(y,z)\n"
	first, err := json.Marshal(Vet(src, "det.pde"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		again, _ := json.Marshal(Vet(src, "det.pde"))
		if string(first) != string(again) {
			t.Fatalf("vet output not byte-stable:\n%s\nvs\n%s", first, again)
		}
	}
}

func TestAnalyzersDeclareTheirChecks(t *testing.T) {
	declared := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		for _, c := range a.Checks {
			if declared[c] {
				t.Errorf("check %s declared by two analyzers", c)
			}
			declared[c] = true
		}
	}
	// Every check a vet run can emit must be declared by its analyzer.
	srcs := []string{
		"source E/2, E/2\ntarget E/2\nst: E(x,y,z) -> G(x,w)\nts: E(x,y) -> E(x,y)\nt: E(x,y), E(x,y) -> x = y\n",
		"source D/1, S/2\ntarget P/2\nst: D(c) -> exists z: P(z, c)\nts: P(x, c), P(y, c2) -> S(x, y)\nts: P(x, c) -> S(x, x)\n",
	}
	for _, src := range srcs {
		for _, d := range Vet(src, "x.pde").Diagnostics {
			if !declared[d.Check] && d.Check != "parse-error" {
				t.Errorf("emitted check %s is not declared by any analyzer", d.Check)
			}
		}
	}
}

func TestVetResumeIneligible(t *testing.T) {
	src := "setting crossed\n" +
		"source A/2\n" +
		"target T/2, U/2\n" +
		"st: A(x,y) -> T(x,y)\n" +
		"ts: T(x,y) -> A(x,y)\n" +
		"t: T(x,y), U(x,z) -> y = z\n"
	r := Vet(src, "crossed.pde")
	d := find(r, "resume-ineligible")
	if len(d) != 1 {
		t.Fatalf("got %d resume-ineligible diagnostics, want 1: %v", len(d), r.Diagnostics)
	}
	if d[0].Severity != SeverityWarn {
		t.Errorf("severity = %s, want warn", d[0].Severity)
	}
	if d[0].Line != 6 {
		t.Errorf("position line = %d, want 6 (the t: line)", d[0].Line)
	}
	if d[0].Witness == nil || d[0].Witness.TGD == "" {
		t.Fatalf("missing witness: %+v", d[0])
	}
	if got := d[0].Witness.Vars; !reflect.DeepEqual(got, []string{"y", "z"}) {
		t.Errorf("witness vars = %v, want [y z]", got)
	}

	// A key-shaped egd stays silent: the union-find engine keeps keyed
	// settings resume-eligible.
	keyed := "setting keyed\n" +
		"source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n" +
		"t: H(x,y), H(x,z) -> y = z\n"
	if d := find(Vet(keyed, "keyed.pde"), "resume-ineligible"); len(d) != 0 {
		t.Errorf("key-shaped egd flagged non-resumable: %v", d)
	}

	// Pure target tgds stay silent: only egds break resumability.
	pure := "setting pure\n" +
		"source E/2\n" +
		"target H/2\n" +
		"st: E(x,y) -> H(x,y)\n" +
		"ts: H(x,y) -> E(x,y)\n" +
		"t: H(x,y) -> H(y,x)\n"
	if d := find(Vet(pure, "pure.pde"), "resume-ineligible"); len(d) != 0 {
		t.Errorf("pure-tgd setting flagged non-resumable: %v", d)
	}
}

// TestVetResumeIneligibleOverExamples pins the check's behavior on the
// shipped example settings: exactly the fd-cross example (the one with
// a non-key target egd) is flagged — the keyed example's key-shaped
// egd is resume-eligible and stays silent.
func TestVetResumeIneligibleOverExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "settings", "*.pde"))
	if err != nil || len(files) == 0 {
		t.Fatalf("globbing example settings: %v (%d files)", err, len(files))
	}
	flagged := map[string]bool{}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r := Vet(string(src), filepath.Base(f))
		if r.HasErrors() {
			t.Errorf("%s: example setting has vet errors: %v", f, r.Diagnostics)
		}
		if len(find(r, "resume-ineligible")) > 0 {
			flagged[filepath.Base(f)] = true
		}
	}
	if !reflect.DeepEqual(flagged, map[string]bool{"fd-cross.pde": true}) {
		t.Errorf("resume-ineligible flagged %v, want exactly fd-cross.pde", flagged)
	}
}
