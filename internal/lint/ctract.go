package lint

import (
	"fmt"
	"strings"

	"repro/internal/dep"
)

// ctractAnalyzer reports why a setting falls outside the tractable
// class C_tract (Definition 9), one positioned diagnostic per violation
// witness. Outside C_tract the solver falls back to the complete
// backtracking search (NP per Theorem 3), so these are warnings, not
// errors.
var ctractAnalyzer = &Analyzer{
	Name: "ctract",
	Doc:  "C_tract membership (Definition 9) with violation witnesses",
	Checks: []string{
		"ctract-cond-1", "ctract-cond-2.2", "ctract-disjunctive", "ctract-target-constraints",
	},
	Run: runCtract,
}

func runCtract(p *Pass) {
	s := p.Setting
	rep := dep.ClassifyCtract(s.ST, s.TS, s.TSDisj)
	for _, w := range rep.Witnesses {
		check := "ctract-cond-" + w.Cond
		if w.Cond == "disjunctive" {
			check = "ctract-disjunctive"
		}
		msg := w.Message
		if chain := renderChains(w.Chains); chain != "" {
			msg += " (" + chain + ")"
		}
		p.Report(Diagnostic{
			Check:    check,
			Severity: SeverityWarn,
			Line:     w.Span.Line,
			Col:      w.Span.Col,
			Message:  msg,
			Witness: &Witness{
				TGD:    w.TGD,
				Atom:   w.Atom,
				Vars:   w.Vars,
				Chains: w.Chains,
			},
		})
	}
	if len(s.T) > 0 {
		span := firstTargetDepSpan(s.T)
		p.Reportf("ctract-target-constraints", SeverityWarn, span,
			"C_tract requires no target constraints (Σt must be empty); the solver will use the complete backtracking search")
	}
}

// renderChains renders marking provenance as a parenthetical, e.g.
// "z marked via P.1 by st-D; w marked as existential".
func renderChains(chains []dep.MarkChain) string {
	var parts []string
	for _, c := range chains {
		switch {
		case c.Existential:
			parts = append(parts, fmt.Sprintf("%s marked as existential", c.Var))
		case c.Pos != "":
			parts = append(parts, fmt.Sprintf("%s marked via position %s of %s by %s",
				c.Var, c.Pos, c.Atom, strings.Join(c.MarkedBy, ", ")))
		}
	}
	return strings.Join(parts, "; ")
}

func firstTargetDepSpan(deps []dep.Dependency) dep.Span {
	for _, d := range deps {
		switch d := d.(type) {
		case dep.TGD:
			return d.Span
		case dep.EGD:
			return d.Span
		}
	}
	return dep.Span{}
}
