package lint

import (
	"fmt"

	"repro/internal/dep"
)

// acyclicAnalyzer checks weak acyclicity (Definition 5) of the target
// tgds Σt — the condition under which the solution-aware chase is
// guaranteed to terminate (Lemma 1, Theorem 1) — and renders the actual
// position cycle through a special edge when it fails.
var acyclicAnalyzer = &Analyzer{
	Name:   "acyclic",
	Doc:    "weak acyclicity of target tgds with a cycle witness",
	Checks: []string{"weak-acyclicity"},
	Run:    runAcyclic,
}

func runAcyclic(p *Pass) {
	tgds := dep.TGDs(p.Setting.T)
	cycle, acyclic := dep.WeaklyAcyclicWitness(tgds)
	if acyclic {
		return
	}
	// Anchor the diagnostic at a tgd contributing the special edge.
	span := dep.Span{}
	labels := make(map[string]bool)
	for _, e := range cycle {
		for _, l := range e.TGDs {
			labels[l] = true
		}
	}
	for _, d := range tgds {
		if labels[d.Label] && d.Span.Known() {
			span = d.Span
			break
		}
	}
	rendered := make([]string, len(cycle))
	for i, e := range cycle {
		rendered[i] = e.String()
	}
	p.Report(Diagnostic{
		Check:    "weak-acyclicity",
		Severity: SeverityWarn,
		Line:     span.Line,
		Col:      span.Col,
		Message: fmt.Sprintf(
			"target tgds are not weakly acyclic: the dependency graph has the cycle %s through a special edge; the chase may not terminate",
			dep.FormatCycle(cycle)),
		Witness: &Witness{Cycle: rendered, ImpliedBy: dep.SortedVarNames(labels)},
	})
}
