package lint

import (
	"strings"

	"repro/internal/dep"
	"repro/internal/hom"
	"repro/internal/rel"
)

// redundantAnalyzer finds t-s tgds that are logically implied by the
// other t-s tgds, via the standard freezing test: freeze the candidate's
// body into a canonical target instance, fire the remaining t-s tgds
// over it once (their heads land in the source schema, so no chaining is
// possible), and ask whether the frozen head is already entailed. A hit
// means the dependency adds no constraint and can be dropped.
var redundantAnalyzer = &Analyzer{
	Name:   "redundant",
	Doc:    "t-s tgds implied by the other t-s tgds",
	Checks: []string{"redundant-tgd"},
	Run:    runRedundant,
}

func runRedundant(p *Pass) {
	ts := p.Setting.TS
	if len(ts) < 2 {
		return
	}
	for i, d := range ts {
		frozen, binding := freezeBody(d)
		// Derive, per other tgd, the source facts it forces on the
		// frozen target instance.
		var derived []*rel.Instance
		var labels []string
		for j, e := range ts {
			if j == i {
				continue
			}
			derived = append(derived, applyOnce(e, frozen))
			labels = append(labels, e.Label)
		}
		impliedBy := implies(d, derived, labels, binding)
		if impliedBy == nil {
			continue
		}
		p.Report(Diagnostic{
			Check:    "redundant-tgd",
			Severity: SeverityInfo,
			Line:     d.Span.Line,
			Col:      d.Span.Col,
			Message: d.Label + " is implied by " + strings.Join(impliedBy, ", ") +
				" and can be removed without changing the set of solutions",
			Witness: &Witness{TGD: d.Label, ImpliedBy: impliedBy},
		})
	}
}

// implies reports which other t-s tgds entail the candidate's head over
// its frozen body: first each single tgd (for a minimal witness), then
// all of them jointly.
func implies(d dep.TGD, derived []*rel.Instance, labels []string, binding hom.Binding) []string {
	for j, inst := range derived {
		if hom.Exists(d.Head, inst, binding, hom.Options{}) {
			return []string{labels[j]}
		}
	}
	if len(derived) < 2 {
		return nil
	}
	joint := rel.NewInstance()
	for _, inst := range derived {
		joint.AddAll(inst)
	}
	if hom.Exists(d.Head, joint, binding, hom.Options{}) {
		return append([]string(nil), labels...)
	}
	return nil
}

// freezeBody builds the canonical instance of a tgd body: every
// variable becomes a distinct frozen constant (prefixed so it cannot
// collide with user constants), every constant stays itself.
func freezeBody(d dep.TGD) (*rel.Instance, hom.Binding) {
	inst := rel.NewInstance()
	binding := hom.Binding{}
	for _, a := range d.Body {
		tuple := make(rel.Tuple, len(a.Args))
		for k, t := range a.Args {
			if t.IsConst {
				tuple[k] = rel.Const(t.Name)
				continue
			}
			v, ok := binding[t.Name]
			if !ok {
				v = rel.Const("\x00frz:" + t.Name)
				binding[t.Name] = v
			}
			tuple[k] = v
		}
		inst.AddTuple(a.Rel, tuple)
	}
	return inst, binding
}

// applyOnce fires a t-s tgd over the target instance, materializing its
// head (with fresh nulls for existentials) for every body match.
func applyOnce(e dep.TGD, target *rel.Instance) *rel.Instance {
	out := rel.NewInstance()
	var nulls rel.NullSource
	hom.ForEach(e.Body, target, nil, hom.Options{}, func(b hom.Binding) bool {
		for _, a := range e.Head {
			tuple := make(rel.Tuple, len(a.Args))
			for k, t := range a.Args {
				switch {
				case t.IsConst:
					tuple[k] = rel.Const(t.Name)
				default:
					v, ok := b[t.Name]
					if !ok {
						v = nulls.Fresh()
						b[t.Name] = v
					}
					tuple[k] = v
				}
			}
			out.AddTuple(a.Rel, tuple)
		}
		return true
	})
	return out
}
