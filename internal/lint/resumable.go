package lint

import (
	"fmt"

	"repro/internal/dep"
)

// resumableAnalyzer warns when a setting cannot use the incremental
// resume path of the chase (chase.Resume / the pdxd chased-instance
// cache). The append-only watermark argument behind Resume holds only
// for pure tgds: an egd among the target constraints means a previous
// run may have merged values (Result.EgdFired) and, worse, that a
// future run could — so Resumable rejects the setting up front and
// every append degrades to a full re-chase. Serving workloads that
// lean on the chase cache lose the incremental speedup silently; this
// check makes the degradation visible at vet time.
var resumableAnalyzer = &Analyzer{
	Name:   "resumable",
	Doc:    "warn when egds make chase results non-resumable",
	Checks: []string{"resume-ineligible"},
	Run:    runResumable,
}

func runResumable(p *Pass) {
	var egds []dep.EGD
	for _, d := range p.Setting.T {
		if e, ok := d.(dep.EGD); ok {
			egds = append(egds, e)
		}
	}
	if len(egds) == 0 {
		return
	}
	// One diagnostic per egd: each carries its own span, and fixing one
	// does not fix the others.
	for _, e := range egds {
		p.Report(Diagnostic{
			Check:    "resume-ineligible",
			Severity: SeverityWarn,
			Line:     e.Span.Line,
			Col:      e.Span.Col,
			Message: fmt.Sprintf(
				"target egd %s makes chase results non-resumable: appends fall back to a full re-chase (chase.Resume requires pure tgds), so the serving chase cache loses its incremental path",
				e.Label),
			Witness: &Witness{TGD: e.Label, Vars: []string{e.Left, e.Right}},
		})
	}
}
