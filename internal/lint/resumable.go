package lint

import (
	"fmt"

	"repro/internal/dep"
)

// resumableAnalyzer warns when a setting cannot use the incremental
// resume path of the chase (chase.Resume / the pdxd chased-instance
// cache). The union-find egd engine extends the append-only watermark
// argument behind Resume to key-shaped egds (dep.EGD.KeyShaped): a
// finished fixpoint plus its retained merge classes fully accounts for
// what a key constraint did, so keyed settings resume incrementally.
// Any other egd shape still defeats the argument — a previous run may
// have merged values in ways the union-find seed cannot replay — so
// chase.Resumable rejects the setting up front and every append
// degrades to a full re-chase. Serving workloads that lean on the
// chase cache lose the incremental speedup silently; this check makes
// the degradation visible at vet time.
var resumableAnalyzer = &Analyzer{
	Name:   "resumable",
	Doc:    "warn when non-key egds make chase results non-resumable",
	Checks: []string{"resume-ineligible"},
	Run:    runResumable,
}

func runResumable(p *Pass) {
	var egds []dep.EGD
	for _, d := range p.Setting.T {
		if e, ok := d.(dep.EGD); ok && !e.KeyShaped() {
			egds = append(egds, e)
		}
	}
	if len(egds) == 0 {
		return
	}
	// One diagnostic per non-key egd: each carries its own span, and
	// fixing one does not fix the others.
	for _, e := range egds {
		p.Report(Diagnostic{
			Check:    "resume-ineligible",
			Severity: SeverityWarn,
			Line:     e.Span.Line,
			Col:      e.Span.Col,
			Message: fmt.Sprintf(
				"target egd %s is not key-shaped and makes chase results non-resumable: appends fall back to a full re-chase (chase.Resume resumes tgds and key egds only), so the serving chase cache loses its incremental path",
				e.Label),
			Witness: &Witness{TGD: e.Label, Vars: []string{e.Left, e.Right}},
		})
	}
}
