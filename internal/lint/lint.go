// Package lint is the static-analysis pass over peer data exchange
// settings: a pipeline of analyzers, each inspecting the parsed setting
// (and the spans the parser recorded) and emitting structured,
// positioned diagnostics. It is the engine behind `pdx vet`.
//
// The design follows `go vet`: every analyzer lives in its own file,
// has a stable name, and registers the checks it can report; the driver
// runs them all and merges the diagnostics into one deterministic
// report. Severities:
//
//   - error: the setting is ill-formed (Setting.Validate would reject
//     it) — exchange cannot run at all;
//   - warn: the setting is legal but loses a guarantee the paper cares
//     about (outside C_tract per Definition 9, target tgds not weakly
//     acyclic per Definition 5);
//   - info: style and dead-weight findings (redundant or unfirable
//     dependencies, unused relations, implicit existentials).
package lint

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/depparse"
)

// Severity grades a diagnostic.
type Severity string

// The three severity levels, ordered error > warn > info.
const (
	SeverityError Severity = "error"
	SeverityWarn  Severity = "warn"
	SeverityInfo  Severity = "info"
)

// Witness is the machine-readable payload of a diagnostic: which
// dependency, atom, variables, cycle, or relations are implicated. All
// fields are optional; analyzers fill what applies.
type Witness struct {
	// TGD is the label of the implicated dependency.
	TGD string `json:"tgd,omitempty"`
	// Atom renders the implicated atom.
	Atom string `json:"atom,omitempty"`
	// Vars lists the implicated variable names.
	Vars []string `json:"vars,omitempty"`
	// Relation is the implicated relation name.
	Relation string `json:"relation,omitempty"`
	// Cycle renders a weak-acyclicity witness cycle, one edge per
	// element ("H.1 →̂ H.1").
	Cycle []string `json:"cycle,omitempty"`
	// Chains explains variable markings (Definition 8 provenance).
	Chains []dep.MarkChain `json:"chains,omitempty"`
	// ImpliedBy lists the dependency labels that imply a redundant one.
	ImpliedBy []string `json:"implied_by,omitempty"`
}

// IsZero reports whether the witness carries no payload.
func (w Witness) IsZero() bool {
	return w.TGD == "" && w.Atom == "" && len(w.Vars) == 0 && w.Relation == "" &&
		len(w.Cycle) == 0 && len(w.Chains) == 0 && len(w.ImpliedBy) == 0
}

// Diagnostic is one finding: a stable check ID, a severity, a source
// position, a message, and an optional machine-readable witness.
type Diagnostic struct {
	// Check is the stable check identifier (see the catalog in the
	// README), e.g. "ctract-cond-2.2" or "undeclared-relation".
	Check string `json:"check"`
	// Severity is error, warn, or info.
	Severity Severity `json:"severity"`
	// File is the setting file name as given to Vet.
	File string `json:"file,omitempty"`
	// Line and Col are 1-based; 0 when unknown.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message is the human-readable finding.
	Message string `json:"message"`
	// Witness is the machine-readable payload.
	Witness *Witness `json:"witness,omitempty"`
}

// String renders the diagnostic in the conventional
// file:line:col: severity: message [check] form.
func (d Diagnostic) String() string {
	pos := d.File
	switch {
	case d.Line > 0 && d.Col > 0:
		pos = fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
	case d.Line > 0:
		pos = fmt.Sprintf("%s:%d", d.File, d.Line)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Check)
}

// Report is the result of a vet run over one setting file.
type Report struct {
	// File is the vetted file name.
	File string `json:"file"`
	// Diagnostics, sorted by position then check ID.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Counts returns the number of diagnostics per severity.
func (r *Report) Counts() (errs, warns, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SeverityError:
			errs++
		case SeverityWarn:
			warns++
		case SeverityInfo:
			infos++
		}
	}
	return
}

// HasErrors reports whether any diagnostic has error severity.
func (r *Report) HasErrors() bool {
	errs, _, _ := r.Counts()
	return errs > 0
}

// Pass is the per-run state handed to each analyzer.
type Pass struct {
	// File is the setting file name, copied into diagnostics.
	File string
	// Setting is the (leniently) parsed setting.
	Setting *core.Setting
	// Info carries the declaration spans and tolerated declaration
	// problems from the parser.
	Info *depparse.SettingInfo

	diags *[]Diagnostic
}

// Report emits a diagnostic. The file name is filled in by the driver.
func (p *Pass) Report(d Diagnostic) {
	d.File = p.File
	if d.Witness != nil && d.Witness.IsZero() {
		d.Witness = nil
	}
	*p.diags = append(*p.diags, d)
}

// Reportf emits a witness-less diagnostic at a span.
func (p *Pass) Reportf(check string, sev Severity, span dep.Span, format string, args ...any) {
	p.Report(Diagnostic{
		Check:    check,
		Severity: sev,
		Line:     span.Line,
		Col:      span.Col,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static-analysis pass, in the style of go/analysis.
type Analyzer struct {
	// Name identifies the analyzer in docs and traces.
	Name string
	// Doc is a one-line description.
	Doc string
	// Checks lists the check IDs the analyzer can emit.
	Checks []string
	// Run inspects the pass and reports diagnostics.
	Run func(*Pass)
}

// Analyzers returns the full pipeline in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		wellformedAnalyzer,
		ctractAnalyzer,
		acyclicAnalyzer,
		deadcodeAnalyzer,
		redundantAnalyzer,
		resumableAnalyzer,
	}
}

// Vet parses the setting source and runs every analyzer, returning a
// deterministic report. Parse failures do not return an error: they
// become a single "parse-error" diagnostic, so callers can treat every
// outcome uniformly.
func Vet(src, file string) *Report {
	rep := &Report{File: file}
	setting, info, err := depparse.ParseSettingLenient(src)
	if err != nil {
		line, col, msg := errorPosition(err)
		rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
			Check:    "parse-error",
			Severity: SeverityError,
			File:     file,
			Line:     line,
			Col:      col,
			Message:  msg,
		})
		return rep
	}
	pass := &Pass{File: file, Setting: setting, Info: info, diags: &rep.Diagnostics}
	for _, a := range Analyzers() {
		a.Run(pass)
	}
	sortDiagnostics(rep.Diagnostics)
	return rep
}

// errorPosition extracts the position and bare message of a parse error
// (all parser errors are or wrap *depparse.PosError); the position moves
// into the diagnostic, so the message must not repeat it.
func errorPosition(err error) (line, col int, msg string) {
	var pe *depparse.PosError
	if errors.As(err, &pe) {
		return pe.Line, pe.Col, pe.Msg
	}
	return 0, 0, err.Error()
}

func sortDiagnostics(diags []Diagnostic) {
	severityRank := map[Severity]int{SeverityError: 0, SeverityWarn: 1, SeverityInfo: 2}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if severityRank[a.Severity] != severityRank[b.Severity] {
			return severityRank[a.Severity] < severityRank[b.Severity]
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
