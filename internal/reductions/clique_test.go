package reductions

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestCliqueSettingValidates(t *testing.T) {
	for _, s := range []*core.Setting{CliqueSetting(), BoundaryEgdSetting(), BoundaryFullTgdSetting(), ThreeColSetting()} {
		if err := s.Validate(); err != nil {
			t.Errorf("setting %s invalid: %v", s.Name, err)
		}
	}
}

func TestCliqueSettingClassification(t *testing.T) {
	// Theorem 3's setting: condition 1 holds, conditions 2.1 and 2.2
	// both fail — outside C_tract.
	rep := CliqueSetting().Classify()
	if rep.InCtract {
		t.Fatal("clique setting must be outside C_tract")
	}
	if !rep.Cond1 {
		t.Errorf("condition 1 should hold: %v", rep.Violations)
	}
	if rep.Cond21 || rep.Cond22 {
		t.Errorf("conditions 2.1/2.2 should fail: 2.1=%v 2.2=%v", rep.Cond21, rep.Cond22)
	}

	// Both Section 4 boundary settings: Σst/Σts satisfy conditions 1 and
	// 2.1; only Σt pushes them out of C_tract.
	for _, s := range []*core.Setting{BoundaryEgdSetting(), BoundaryFullTgdSetting()} {
		rep := s.Classify()
		if rep.InCtract {
			t.Errorf("%s must be outside C_tract (has Σt)", s.Name)
		}
		if !rep.Cond1 || !rep.Cond21 {
			t.Errorf("%s: Σst/Σts should satisfy conditions 1 and 2.1: %+v", s.Name, rep.Violations)
		}
	}

	// 3-colorability setting: conditions 1 and 2.2 hold for the
	// non-disjunctive fragment, but the disjunction excludes it.
	rep3 := ThreeColSetting().Classify()
	if rep3.InCtract || !rep3.HasDisjunctiveTS {
		t.Errorf("3col setting classification wrong: %+v", rep3)
	}
}

// solveClique runs the generic solver on the Theorem 3 reduction.
func solveClique(t *testing.T, s *core.Setting, g *graph.Graph, k int) bool {
	t.Helper()
	i, j := CliqueInstance(g, k)
	got, witness, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 50_000_000})
	if err != nil {
		t.Fatalf("solver error on %s: %v", s.Name, err)
	}
	if got && !s.IsSolution(i, j, witness) {
		t.Fatalf("witness is not a solution on %s: %v", s.Name, s.SolutionViolations(i, j, witness))
	}
	return got
}

func TestTheorem3SmallGraphs(t *testing.T) {
	s := CliqueSetting()
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"triangle-k3", graph.Complete(3), 3},
		{"path4-k3", graph.Path(4), 3},
		{"k4-k4", graph.Complete(4), 4},
		{"k4-minus-edge-k4", k4MinusEdge(), 4},
		{"cycle5-k3", graph.Cycle(5), 3},
		{"k5-k4", graph.Complete(5), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.g.HasClique(tc.k)
			got := solveClique(t, s, tc.g, tc.k)
			if got != want {
				t.Errorf("SOL=%v but HasClique=%v", got, want)
			}
		})
	}
}

func k4MinusEdge() *graph.Graph {
	g := graph.Complete(4)
	g2 := graph.New(4)
	for _, e := range g.Edges() {
		if e != [2]int{0, 1} {
			g2.AddEdge(e[0], e[1]) //nolint:errcheck
		}
	}
	return g2
}

func TestTheorem3RandomGraphs(t *testing.T) {
	s := CliqueSetting()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		g := graph.Random(7, 0.4, rng)
		if trial%2 == 0 {
			graph.PlantClique(g, 3, rng)
		}
		k := 3
		want := g.HasClique(k)
		got := solveClique(t, s, g, k)
		if got != want {
			t.Errorf("trial %d: SOL=%v HasClique=%v", trial, got, want)
		}
	}
}

// TestTheorem5OnCliqueSetting checks the Theorem 5 characterization on
// the clique setting, which satisfies condition 1 (but not condition 2,
// so the block homomorphism checks are not polynomial — they are still
// correct): the Figure 3 algorithm must agree with the generic solver.
func TestTheorem5OnCliqueSetting(t *testing.T) {
	s := CliqueSetting()
	cases := []struct {
		g *graph.Graph
		k int
	}{
		{graph.Complete(3), 3},
		{graph.Path(4), 3},
		{graph.Cycle(5), 3},
		{graph.Complete(4), 4},
	}
	for _, tc := range cases {
		i, j := CliqueInstance(tc.g, tc.k)
		want := tc.g.HasClique(tc.k)
		got, trace, err := core.ExistsSolutionTractable(s, i, j, core.TractableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("k=%d: Figure 3 algorithm = %v, HasClique = %v (blocks=%d maxNulls=%d)",
				tc.k, got, want, trace.Blocks, trace.MaxBlockNulls)
		}
		// Outside C_tract the block null counts grow with the input —
		// the source of intractability (contrast with Theorem 6).
		if want && trace.MaxBlockNulls < 2 {
			t.Errorf("expected multi-null blocks on the clique setting, got %d", trace.MaxBlockNulls)
		}
	}
}

func TestBoundaryEgdSetting(t *testing.T) {
	s := BoundaryEgdSetting()
	cases := []struct {
		g *graph.Graph
		k int
	}{
		{graph.Complete(3), 3},
		{graph.Path(4), 3},
		{graph.Complete(4), 4},
		{graph.Cycle(5), 3},
	}
	for _, tc := range cases {
		want := tc.g.HasClique(tc.k)
		got := solveClique(t, s, tc.g, tc.k)
		if got != want {
			t.Errorf("egd boundary: k=%d SOL=%v HasClique=%v", tc.k, got, want)
		}
	}
}

func TestBoundaryFullTgdSetting(t *testing.T) {
	s := BoundaryFullTgdSetting()
	cases := []struct {
		g *graph.Graph
		k int
	}{
		{graph.Complete(3), 3},
		{graph.Path(4), 3},
		{graph.Cycle(5), 3},
	}
	for _, tc := range cases {
		want := tc.g.HasClique(tc.k)
		got := solveClique(t, s, tc.g, tc.k)
		if got != want {
			t.Errorf("full-tgd boundary: k=%d SOL=%v HasClique=%v", tc.k, got, want)
		}
	}
}

func TestThreeColReduction(t *testing.T) {
	s := ThreeColSetting()
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"triangle", graph.Complete(3)},
		{"k4", graph.Complete(4)},
		{"cycle5", graph.Cycle(5)},
		{"path5", graph.Path(5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i, j := ThreeColInstance(tc.g)
			want := tc.g.Is3Colorable()
			got, witness, _, err := core.ExistsSolutionGeneric(s, i, j, core.SolveOptions{MaxNodes: 50_000_000})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("SOL=%v but Is3Colorable=%v", got, want)
			}
			if got && !s.IsSolution(i, j, witness) {
				t.Errorf("witness is not a solution: %v", s.SolutionViolations(i, j, witness))
			}
		})
	}
}

func TestCliqueInstanceShape(t *testing.T) {
	g := graph.Complete(3)
	i, j := CliqueInstance(g, 3)
	if !j.IsEmpty() {
		t.Error("target instance must be empty")
	}
	if i.Relation("D").Len() != 6 {
		t.Errorf("D has %d tuples, want k(k-1)=6", i.Relation("D").Len())
	}
	if i.Relation("S").Len() != 3 {
		t.Errorf("S has %d tuples, want |V|=3", i.Relation("S").Len())
	}
	if i.Relation("E").Len() != 6 {
		t.Errorf("E has %d tuples, want 2*|edges|=6", i.Relation("E").Len())
	}
}

func TestCliqueInstanceOverVerticesShape(t *testing.T) {
	g := graph.Path(2) // 2 vertices, need k=3 -> V extended
	i, _ := CliqueInstanceOverVertices(g, 3)
	if i.Relation("S").Len() != 3 {
		t.Errorf("S extended to %d vertices, want 3", i.Relation("S").Len())
	}
	if i.Relation("D").Len() != 6 {
		t.Errorf("D has %d tuples, want 6", i.Relation("D").Len())
	}
}
