package reductions

import (
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/rel"
)

// ThreeColSetting returns the final Section 4 boundary setting: Σst and
// Σts satisfy conditions (1) and (2.2) of C_tract and there are no
// target constraints, yet allowing disjunction in the right-hand side of
// a target-to-source dependency makes SOL(P) NP-hard via 3-colorability:
//
//	Σst: E(x,y) -> exists u: C(x,u)
//	     E(x,y) -> Ep(x,y)
//	Σts: Ep(x,y), C(x,u), C(y,v) ->
//	       (R(u) ∧ B(v)) ∨ (R(u) ∧ G(v)) ∨ (B(u) ∧ G(v)) ∨
//	       (B(u) ∧ R(v)) ∨ (G(u) ∧ R(v)) ∨ (G(u) ∧ B(v))
//
// (Ep stands for the paper's E'.) The source relations are E, R, B, G;
// the target relations are Ep and C.
func ThreeColSetting() *core.Setting {
	colorPairs := [][2]string{
		{"R", "B"}, {"R", "G"}, {"B", "G"}, {"B", "R"}, {"G", "R"}, {"G", "B"},
	}
	disjuncts := make([][]dep.Atom, 0, len(colorPairs))
	for _, p := range colorPairs {
		disjuncts = append(disjuncts, []dep.Atom{
			dep.NewAtom(p[0], dep.Var("u")),
			dep.NewAtom(p[1], dep.Var("v")),
		})
	}
	return &core.Setting{
		Name:   "boundary-3col",
		Source: rel.SchemaOf("E", 2, "R", 1, "B", 1, "G", 1),
		Target: rel.SchemaOf("Ep", 2, "C", 2),
		ST: []dep.TGD{
			{
				Label: "st-C",
				Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom("C", dep.Var("x"), dep.Var("u"))},
			},
			{
				Label: "st-Ep",
				Body:  []dep.Atom{dep.NewAtom("E", dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom("Ep", dep.Var("x"), dep.Var("y"))},
			},
		},
		TSDisj: []dep.DisjunctiveTGD{{
			Label: "ts-color",
			Body: []dep.Atom{
				dep.NewAtom("Ep", dep.Var("x"), dep.Var("y")),
				dep.NewAtom("C", dep.Var("x"), dep.Var("u")),
				dep.NewAtom("C", dep.Var("y"), dep.Var("v")),
			},
			Disjuncts: disjuncts,
		}},
	}
}

// ThreeColInstance builds the source instance for a graph: E holds both
// directions of every edge (so every endpoint receives a color via
// st-C), and R, G, B hold one color constant each. The target instance
// is empty. A solution exists iff the graph is 3-colorable.
func ThreeColInstance(g *graph.Graph) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	for _, e := range g.Edges() {
		i.Add("E", vertex(e[0]), vertex(e[1]))
		i.Add("E", vertex(e[1]), vertex(e[0]))
	}
	i.Add("R", rel.Const("red"))
	i.Add("G", rel.Const("green"))
	i.Add("B", rel.Const("blue"))
	return i, rel.NewInstance()
}
