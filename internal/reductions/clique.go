// Package reductions implements the reductions of the peer data
// exchange paper: the CLIQUE reduction of Theorem 3 (NP-hardness of
// SOL(P) and coNP-hardness of certain answers), the two Section 4
// boundary settings with target constraints (a single target egd; a
// single full target tgd), and the disjunctive Σts setting encoding
// 3-colorability.
package reductions

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/graph"
	"repro/internal/rel"
)

// CliqueSetting returns the PDE setting of Theorem 3:
//
//	S = {D/2, S/2, E/2},  T = {P/4},  Σt = ∅
//	Σst: D(x,y) -> exists z, w: P(x,z,y,w)
//	Σts: P(x,z,y,w)                      -> E(z,w)
//	     P(x,z,y,w), P(y,z2,y2,w2)       -> S(w,z2)
//
// G has a k-clique iff SOL has a solution for (I(G,k), ∅).
//
// Erratum note. The PODS 2005 paper prints the second target-to-source
// tgd as P(x,z,y,w) ∧ P(x,z',y',w') -> S(z,z'), joining the two atoms on
// the first anchor x. That version does not make the reduction sound: a
// graph with a single edge (u,v) admits the solution
// {P(a_i, u, a_j, v) : i != j} for every k, because nothing couples the
// fourth component of a fact to the key of its second anchor. We use the
// corrected join through the (unmarked) second anchor y, which forces
// w = key(y) and makes {key(a_1), ..., key(a_k)} a k-clique. The
// corrected tgd has exactly the structural properties the paper's
// Section 4 discussion relies on: its marked variables (w and z2 here)
// each occur once in the left-hand side (condition 1 holds), they
// co-occur in the right-hand side but not in any body conjunct while
// both occur in the body (condition 2.2 fails), they sit at distance two
// in the Gaifman graph connected via an unmarked join variable, and the
// left-hand side has two literals (condition 2.1 fails).
func CliqueSetting() *core.Setting {
	return &core.Setting{
		Name:   "clique-thm3",
		Source: rel.SchemaOf("D", 2, "S", 2, "E", 2),
		Target: rel.SchemaOf("P", 4),
		ST: []dep.TGD{{
			Label: "st-D",
			Body:  []dep.Atom{dep.NewAtom("D", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
		}},
		TS: []dep.TGD{
			{
				Label: "ts-E",
				Body:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
				Head:  []dep.Atom{dep.NewAtom("E", dep.Var("z"), dep.Var("w"))},
			},
			{
				Label: "ts-S",
				Body: []dep.Atom{
					dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w")),
					dep.NewAtom("P", dep.Var("y"), dep.Var("z2"), dep.Var("y2"), dep.Var("w2")),
				},
				Head: []dep.Atom{dep.NewAtom("S", dep.Var("w"), dep.Var("z2"))},
			},
		},
	}
}

// vertex renders graph vertex v as the constant "v<idx>".
func vertex(v int) rel.Value { return rel.Const(fmt.Sprintf("v%d", v)) }

// anchor renders the i-th of the k distinct elements a_1, ..., a_k.
func anchor(i int) rel.Value { return rel.Const(fmt.Sprintf("a%d", i)) }

// CliqueInstance builds the source instance I(G, k) of the Theorem 3
// reduction: D is the inequality relation on {a_1, ..., a_k}, S is the
// equality relation on the vertices of G, and E holds the (symmetric,
// irreflexive) edges of G. The target instance is empty.
func CliqueInstance(g *graph.Graph, k int) (*rel.Instance, *rel.Instance) {
	i := rel.NewInstance()
	for a := 1; a <= k; a++ {
		for b := 1; b <= k; b++ {
			if a != b {
				i.Add("D", anchor(a), anchor(b))
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		i.Add("S", vertex(v), vertex(v))
	}
	for _, e := range g.Edges() {
		i.Add("E", vertex(e[0]), vertex(e[1]))
		i.Add("E", vertex(e[1]), vertex(e[0]))
	}
	return i, rel.NewInstance()
}

// CliqueInstanceOverVertices builds the variant used for the
// coNP-hardness of certain answers in the Theorem 3 proof: the k
// distinct elements are drawn from the vertex set of G itself (V is
// extended with fresh vertices when it has fewer than k). The Boolean
// query q = exists x: P(x,x,x,x) then satisfies
// certain(q, (I(G,k), ∅)) = false iff G has a k-clique.
func CliqueInstanceOverVertices(g *graph.Graph, k int) (*rel.Instance, *rel.Instance) {
	n := g.N()
	if n < k {
		n = k
	}
	i := rel.NewInstance()
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a != b {
				i.Add("D", vertex(a), vertex(b))
			}
		}
	}
	for v := 0; v < n; v++ {
		i.Add("S", vertex(v), vertex(v))
	}
	for _, e := range g.Edges() {
		i.Add("E", vertex(e[0]), vertex(e[1]))
		i.Add("E", vertex(e[1]), vertex(e[0]))
	}
	return i, rel.NewInstance()
}

// CliqueQuery returns the Boolean conjunctive query
// q = exists x: P(x,x,x,x) from the coNP-hardness part of Theorem 3.
func CliqueQuery() []dep.Atom {
	return []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("x"), dep.Var("x"), dep.Var("x"))}
}

// BoundaryEgdSetting returns the first Section 4 boundary setting: Σst
// and Σts satisfy conditions (1) and (2.1) of C_tract, yet a single
// target egd makes SOL(P) NP-hard:
//
//	Σst: D(x,y) -> exists z, w: P(x,z,y,w)
//	Σt:  P(x,z,y,w), P(y,z2,y2,w2) -> w = z2
//	Σts: P(x,z,y,w) -> E(z,w)
//
// The same CliqueInstance encoding reduces CLIQUE to SOL(P): the egd
// plays the role of the ts-S tgd, forcing the fourth component of each
// fact to equal the key of its second anchor (the same erratum
// correction as in CliqueSetting applies: the paper prints the egd
// joined on x with head z = z2, which does not couple the anchors).
func BoundaryEgdSetting() *core.Setting {
	return &core.Setting{
		Name:   "boundary-egd",
		Source: rel.SchemaOf("D", 2, "S", 2, "E", 2),
		Target: rel.SchemaOf("P", 4),
		ST: []dep.TGD{{
			Label: "st-D",
			Body:  []dep.Atom{dep.NewAtom("D", dep.Var("x"), dep.Var("y"))},
			Head:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
		}},
		TS: []dep.TGD{{
			Label: "ts-E",
			Body:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
			Head:  []dep.Atom{dep.NewAtom("E", dep.Var("z"), dep.Var("w"))},
		}},
		T: []dep.Dependency{dep.EGD{
			Label: "t-key",
			Body: []dep.Atom{
				dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w")),
				dep.NewAtom("P", dep.Var("y"), dep.Var("z2"), dep.Var("y2"), dep.Var("w2")),
			},
			Left: "w", Right: "z2",
		}},
	}
}

// BoundaryFullTgdSetting returns the second Section 4 boundary setting:
// a single full target tgd crosses the intractability boundary.
//
//	Σst: S(z,w)  -> S2(z,w)
//	     D(x,y)  -> exists z, w: P(x,z,y,w)
//	Σt:  P(x,z,y,w), P(y,z2,y2,w2) -> S2(w,z2)
//	Σts: S2(z,z2) -> S(z,z2)
//	     P(x,z,y,w) -> E(z,w)
//
// (S2 stands for the paper's S'; the full target tgd carries the same
// erratum correction as CliqueSetting — the join runs through the second
// anchor y so that S holds between the fourth component and the key of
// y, which S ⊆ {(v,v)} turns into equality.)
func BoundaryFullTgdSetting() *core.Setting {
	return &core.Setting{
		Name:   "boundary-full-tgd",
		Source: rel.SchemaOf("D", 2, "S", 2, "E", 2),
		Target: rel.SchemaOf("P", 4, "S2", 2),
		ST: []dep.TGD{
			{
				Label: "st-S",
				Body:  []dep.Atom{dep.NewAtom("S", dep.Var("z"), dep.Var("w"))},
				Head:  []dep.Atom{dep.NewAtom("S2", dep.Var("z"), dep.Var("w"))},
			},
			{
				Label: "st-D",
				Body:  []dep.Atom{dep.NewAtom("D", dep.Var("x"), dep.Var("y"))},
				Head:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
			},
		},
		TS: []dep.TGD{
			{
				Label: "ts-S2",
				Body:  []dep.Atom{dep.NewAtom("S2", dep.Var("z"), dep.Var("z2"))},
				Head:  []dep.Atom{dep.NewAtom("S", dep.Var("z"), dep.Var("z2"))},
			},
			{
				Label: "ts-E",
				Body:  []dep.Atom{dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w"))},
				Head:  []dep.Atom{dep.NewAtom("E", dep.Var("z"), dep.Var("w"))},
			},
		},
		T: []dep.Dependency{dep.TGD{
			Label: "t-S2",
			Body: []dep.Atom{
				dep.NewAtom("P", dep.Var("x"), dep.Var("z"), dep.Var("y"), dep.Var("w")),
				dep.NewAtom("P", dep.Var("y"), dep.Var("z2"), dep.Var("y2"), dep.Var("w2")),
			},
			Head: []dep.Atom{dep.NewAtom("S2", dep.Var("w"), dep.Var("z2"))},
		}},
	}
}
