package qplan

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/certain"
	"repro/internal/core"
	"repro/internal/workload"
)

// enumBudget bounds the image-solution count a parity case may force on
// the enumeration path: a canonical target with k nulls over an active
// domain of size a has up to (a+1)^k image solutions.
const enumBudget = 200000

// TestCompiledParityRandom is the property suite behind the compiled
// path: over ≥50 random settings inside the compilable fragment, a
// random open and a random Boolean query must produce byte-identical
// results to the chase-backed enumeration, at Parallelism 1 and 4.
func TestCompiledParityRandom(t *testing.T) {
	const wantCases = 50
	evaluated := 0
	for seed := int64(0); evaluated < wantCases; seed++ {
		if seed > 10*wantCases {
			t.Fatalf("only %d/%d cases evaluated after %d seeds", evaluated, wantCases, seed)
		}
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomCompilableSetting(rng)
		if r := ClassifySetting(s); r != FallbackNone {
			t.Fatalf("seed %d: generator left the fragment: %s", seed, r)
		}
		sp, err := CompileSetting(s)
		if err != nil {
			t.Fatalf("seed %d: CompileSetting: %v", seed, err)
		}
		i, j := workload.RandomCompilableInstance(rng)

		// Chase once; skip the case when enumerating its image solutions
		// would be infeasible for the reference path.
		ct, err := core.ChaseCanonicalTarget(s, i, j, core.SolveOptions{})
		if err != nil {
			t.Fatalf("seed %d: chase: %v", seed, err)
		}
		nulls := len(ct.JCan.Nulls())
		adom := len(ct.JCan.ActiveDomain()) + len(i.ActiveDomain())
		if math.Pow(float64(adom+1), float64(nulls)) > enumBudget {
			continue
		}
		opts := certain.Options{Canonical: ct}

		for _, boolean := range []bool{false, true} {
			q := workload.RandomTargetQuery(rng, boolean)
			p, err := sp.CompileQuery(q)
			if err != nil {
				t.Fatalf("seed %d boolean=%v: CompileQuery: %v", seed, boolean, err)
			}
			var want certain.Result
			if boolean {
				want, err = certain.Boolean(s, i, j, q, opts)
			} else {
				want, err = certain.Answers(s, i, j, q, opts)
			}
			if err != nil {
				t.Fatalf("seed %d boolean=%v: enumeration: %v", seed, boolean, err)
			}
			for _, par := range []int{1, 4} {
				got, err := p.Eval(i, j, EvalOptions{Parallelism: par, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d boolean=%v par=%d: compiled: %v", seed, boolean, par, err)
				}
				if got.SolutionExists != want.SolutionExists ||
					got.Certain != want.Certain ||
					!reflect.DeepEqual(got.Answers, want.Answers) {
					t.Fatalf("seed %d boolean=%v par=%d:\nsetting: %v\nquery: %v\ncompiled:   %+v\nenumerated: %+v\nplan:\n%s",
						seed, boolean, par, s, q, got, want, p)
				}
			}
		}
		evaluated++
	}
	t.Logf("parity held on %d random settings", evaluated)
}
